#!/usr/bin/env python3
"""Structural validator for portalint's SARIF 2.1.0 output.

CI gates the `portalint --sarif` artifact on this script so a renderer
regression cannot silently ship an uningestable report.  It checks the
subset of the SARIF 2.1.0 schema that code-scanning consumers actually
require -- document envelope, tool.driver rule table, and the result /
location shapes -- using only the standard library (no jsonschema
dependency in the lint job).

Usage: validate_sarif.py report.sarif
"""
import json
import sys

SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
LEVELS = {"none", "note", "warning", "error"}

_errors = []


def err(path, msg):
    _errors.append(f"{path}: {msg}")


def expect(cond, path, msg):
    if not cond:
        err(path, msg)
    return cond


def is_str(v):
    return isinstance(v, str) and v != ""


def check_location(loc, path, rule_files):
    if not expect(isinstance(loc, dict), path, "location must be an object"):
        return
    phys = loc.get("physicalLocation")
    if not expect(isinstance(phys, dict), path, "missing physicalLocation"):
        return
    art = phys.get("artifactLocation")
    if expect(isinstance(art, dict), path, "missing artifactLocation"):
        expect(is_str(art.get("uri")), path, "artifactLocation.uri must be a non-empty string")
        expect("\\" not in art.get("uri", ""), path, "uri must use forward slashes")
        expect(is_str(art.get("uriBaseId")), path, "artifactLocation.uriBaseId missing")
        if is_str(art.get("uri")):
            rule_files.add(art["uri"])
    region = phys.get("region")
    if expect(isinstance(region, dict), path, "missing region"):
        line = region.get("startLine")
        expect(isinstance(line, int) and line >= 1, path,
               f"region.startLine must be an int >= 1, got {line!r}")
        snippet = region.get("snippet")
        if snippet is not None:
            expect(isinstance(snippet, dict) and isinstance(snippet.get("text"), str),
                   path, "region.snippet.text must be a string")
    msg = loc.get("message")
    if msg is not None:
        expect(isinstance(msg, dict) and is_str(msg.get("text")),
               path, "location message.text must be a non-empty string")


def check_run(run, path):
    driver = run.get("tool", {}).get("driver")
    if not expect(isinstance(driver, dict), path, "missing tool.driver"):
        return
    expect(is_str(driver.get("name")), path, "tool.driver.name must be a non-empty string")

    rules = driver.get("rules")
    rule_ids = []
    if expect(isinstance(rules, list) and rules, path, "tool.driver.rules must be non-empty"):
        for i, rule in enumerate(rules):
            rpath = f"{path}.rules[{i}]"
            if not expect(isinstance(rule, dict), rpath, "rule must be an object"):
                continue
            expect(is_str(rule.get("id")), rpath, "rule id must be a non-empty string")
            short = rule.get("shortDescription")
            expect(isinstance(short, dict) and is_str(short.get("text")),
                   rpath, "shortDescription.text must be a non-empty string")
            rule_ids.append(rule.get("id"))
    expect(len(set(rule_ids)) == len(rule_ids), path, "duplicate rule ids")

    bases = run.get("originalUriBaseIds")
    expect(isinstance(bases, dict) and bases, path, "originalUriBaseIds must be non-empty")

    results = run.get("results")
    files = set()
    if not expect(isinstance(results, list), path, "results must be a list (may be empty)"):
        return
    for i, res in enumerate(results):
        rpath = f"{path}.results[{i}]"
        if not expect(isinstance(res, dict), rpath, "result must be an object"):
            continue
        rid = res.get("ruleId")
        expect(rid in rule_ids, rpath, f"ruleId {rid!r} not in tool.driver.rules")
        idx = res.get("ruleIndex")
        if idx is not None:
            ok = isinstance(idx, int) and 0 <= idx < len(rule_ids)
            expect(ok and rule_ids[idx] == rid, rpath,
                   f"ruleIndex {idx!r} does not point at ruleId {rid!r}")
        expect(res.get("level") in LEVELS, rpath,
               f"level must be one of {sorted(LEVELS)}, got {res.get('level')!r}")
        msg = res.get("message")
        expect(isinstance(msg, dict) and is_str(msg.get("text")),
               rpath, "message.text must be a non-empty string")
        locs = res.get("locations")
        if expect(isinstance(locs, list) and locs, rpath, "locations must be non-empty"):
            for k, loc in enumerate(locs):
                check_location(loc, f"{rpath}.locations[{k}]", files)
        for k, loc in enumerate(res.get("relatedLocations", [])):
            check_location(loc, f"{rpath}.relatedLocations[{k}]", files)
    return len(results), len(rule_ids)


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: {argv[1]}: not readable JSON: {e}", file=sys.stderr)
        return 1

    expect(doc.get("$schema") == SCHEMA_URI, "$schema",
           f"expected {SCHEMA_URI}, got {doc.get('$schema')!r}")
    expect(doc.get("version") == "2.1.0", "version",
           f"expected '2.1.0', got {doc.get('version')!r}")
    runs = doc.get("runs")
    stats = None
    if expect(isinstance(runs, list) and runs, "runs", "must be a non-empty array"):
        for i, run in enumerate(runs):
            stats = check_run(run, f"runs[{i}]")

    if _errors:
        for e in _errors:
            print(f"FAIL: {e}", file=sys.stderr)
        return 1
    nresults, nrules = stats
    print(f"OK: {argv[1]} is structurally valid SARIF 2.1.0 "
          f"({nrules} rules, {nresults} results)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
