#!/usr/bin/env bash
# Reproduction analogue of the paper's Fig. 9 launch script (Wombat GPU,
# Julia CUDA.jl): sweep matrix sizes for the Julia frontend on the
# simulated A100, one log per size — same loop structure as the original
# `salloc ... srun julia gemm-dense-cuda.jl $M $M $M 5` driver.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results/wombat-julia}"
mkdir -p "$OUT"

# The original sweeps 4096..20480; functional simulation keeps sizes
# host-tractable — the modeled series for paper sizes comes from
# bench/fig7_wombat_gpu.
Ms=(64 128 256 384 512)
for M in "${Ms[@]}"; do
  "$BUILD"/examples/gemm_sweep \
    --platform=wombat-gpu --precision=fp64 --sizes="$M" --reps=5 \
    > "$OUT/A100-Julia-${M}M_5s_F64.csv"
done
echo "logs in $OUT/"
