#!/usr/bin/env bash
# Reproduction analogue of the paper's Fig. 8 launch script (Wombat/
# Crusher CPU, C/OpenMP): the original exports OMP_NUM_THREADS,
# OMP_PROC_BIND=true, OMP_PLACES=threads and loops a size sweep; here the
# binding policy is part of the machine model and the sweep drives the
# functional frontends.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results/crusher-openmp}"
mkdir -p "$OUT"

for precision in fp64 fp32; do
  "$BUILD"/examples/gemm_sweep \
    --platform=crusher-cpu --precision="$precision" \
    --sizes=64,128,256,384 --reps=10 \
    > "$OUT/EPYC-OpenMP-${precision}.csv"
done
echo "logs in $OUT/"
