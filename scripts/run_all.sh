#!/usr/bin/env bash
# Regenerate every table, figure, and ablation of the study (the
# reproduction's equivalent of the paper's Appendix A launch scripts).
# Usage: scripts/run_all.sh [build-dir] [output-dir]
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"
mkdir -p "$OUT"

status=0
for bench in "$BUILD"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  echo "== $name"
  if ! "$bench" > "$OUT/$name.txt" 2>&1; then
    echo "   FAILED (see $OUT/$name.txt)"
    status=1
  fi
done

echo "results written to $OUT/"
exit "$status"
