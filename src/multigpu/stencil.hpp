// Multi-device stencil: halo-exchanged slabs with cross-device events.
//
// The grid's rows are cut into one contiguous slab per device; each slab
// is stored with one halo row per interior neighbor.  Every Jacobi
// iteration runs the 5-point sweep on the device's owned interior rows
// (the exact per-row SIMD kernel of stencil::sweep_simd, bit-identical
// to sweep_serial), then exchanges boundary rows with the neighbors by
// peer_copy_async over the topology's D2D links.  Ordering is done
// entirely with Events across devices:
//
//   copy(d -> nbr) on d's transfer stream waits compute_done[d][t]
//   compute[d][t+1] on d's compute stream waits every halo_in event of
//   iteration t (recorded on the *neighbors'* transfer streams)
//
// so a device cannot start iteration t+1 until its halos hold the
// neighbors' iteration-t rows, and a neighbor cannot ship a row before
// it computed it.  This is the cross-device event-ordering surface the
// multi-device tests pin.
//
// Boundary semantics match the host oracle: both ping-pong buffers start
// as copies of the initial grid, sweeps write interior points only, so
// global boundary rows/columns keep their initial values through every
// iteration.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/timer.hpp"
#include "gpusim/batch.hpp"
#include "gpusim/copy.hpp"
#include "gpusim/pipeline.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/topology.hpp"
#include "stencil/kernels.hpp"

namespace portabench::multigpu {

struct StencilShardOptions {
  std::size_t iterations = 1;
  bool numa_aware_staging = true;
  double modeled_sweep_s = 0.0;  ///< modeled seconds per device sweep
};

/// Host oracle: `iterations` Jacobi sweeps over two full-grid buffers
/// initialized from `grid` (rows x cols, row-major); returns the final
/// grid.  Boundary cells keep their initial values.
inline std::vector<double> stencil_iterated_oracle(std::span<const double> grid,
                                                   std::size_t rows, std::size_t cols,
                                                   std::size_t iterations) {
  PB_EXPECTS(grid.size() == rows * cols);
  std::vector<double> ping(grid.begin(), grid.end());
  std::vector<double> pong(grid.begin(), grid.end());
  for (std::size_t t = 0; t < iterations; ++t) {
    const simrt::RawView2<const double> in(ping.data(), rows, cols);
    simrt::RawView2<double> out(pong.data(), rows, cols);
    stencil::sweep_serial(in, out);
    std::swap(ping, pong);
  }
  return ping;
}

/// `iterations` sweeps of the 5-point stencil over `grid` (rows x cols,
/// row-major host storage, updated in place), slab-sharded across every
/// device of `topo` with halo exchange between neighbors.  Returns
/// wall/modeled timings shaped like the pipeline drivers'.
inline gpusim::PipelineStats stencil_sharded(gpusim::DeviceTopology& topo,
                                             std::span<double> grid, std::size_t rows,
                                             std::size_t cols,
                                             const StencilShardOptions& opt = {}) {
  PB_EXPECTS(grid.size() == rows * cols);
  gpusim::PipelineStats stats;
  if (rows < 3 || cols < 3 || opt.iterations == 0) {
    stats.panels = 0;
    return stats;
  }

  const std::size_t devices = topo.devices();
  // Contiguous row slabs, near-even (leading devices take the remainder).
  std::vector<std::size_t> r0(devices + 1, 0);
  for (std::size_t d = 0; d < devices; ++d) {
    r0[d + 1] = r0[d] + rows / devices + (d < rows % devices ? 1 : 0);
  }

  struct Slab {
    std::size_t lo = 0, hi = 0;        // global rows stored: [lo, hi)
    std::size_t gstart = 0, gend = 0;  // global interior rows computed
    gpusim::DeviceBuffer<double> buf[2];
    std::unique_ptr<gpusim::Stream> comp, xfer;
  };
  std::vector<Slab> slab(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    Slab& s = slab[d];
    s.lo = r0[d] == 0 ? 0 : r0[d] - 1;            // halo row above
    s.hi = r0[d + 1] == rows ? rows : r0[d + 1] + 1;  // halo row below
    s.gstart = std::max<std::size_t>(r0[d], 1);
    s.gend = std::min(r0[d + 1], rows - 1);
    gpusim::DeviceContext& ctx = topo.context(d);
    s.buf[0] = gpusim::DeviceBuffer<double>(ctx, (s.hi - s.lo) * cols);
    s.buf[1] = gpusim::DeviceBuffer<double>(ctx, (s.hi - s.lo) * cols);
    s.comp = std::make_unique<gpusim::Stream>(ctx, gpusim::StreamMode::kAsync);
    s.xfer = std::make_unique<gpusim::Stream>(ctx, gpusim::StreamMode::kAsync);
  }

  const auto domain_of = [&](std::size_t d) {
    return opt.numa_aware_staging ? topo.numa_domain_of(d) : std::size_t{0};
  };
  const stencil::stencil_detail::sweep_row_fn row_fn =
      stencil::stencil_detail::pick_sweep_row();

  Timer wall;
  // Upload: both ping-pong slabs start as the initial grid slice, so
  // boundary rows/columns and halos hold real values from iteration 0.
  std::vector<gpusim::Event> uploaded(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    Slab& s = slab[d];
    const std::span<const double> src(grid.data() + s.lo * cols, (s.hi - s.lo) * cols);
    gpusim::copy_to_device_async(topo, d, *s.comp, s.buf[0], 0, src, domain_of(d));
    gpusim::copy_to_device_async(topo, d, *s.comp, s.buf[1], 0, src, domain_of(d));
    s.comp->record(uploaded[d]);
  }
  // A device's first halo copy writes into the *neighbor's* slab; without
  // this edge it can race ahead of the neighbor's own upload, which would
  // then clobber the delivered halo with initial data.  (Iteration t >= 1
  // copies are transitively ordered behind the uploads through the
  // compute_done -> halo_in chain; only iteration 0 needs the edge.)
  for (std::size_t d = 0; d < devices; ++d) {
    if (d > 0) slab[d].xfer->wait(uploaded[d - 1]);
    if (d + 1 < devices) slab[d].xfer->wait(uploaded[d + 1]);
  }

  // halo_in[d]: events guarding the halo rows device d received for the
  // previous iteration (recorded on the neighbors' transfer streams).
  std::vector<std::vector<gpusim::Event>> halo_in(devices);
  std::vector<gpusim::Event> compute_done(devices);

  for (std::size_t t = 0; t < opt.iterations; ++t) {
    const std::size_t cur = t % 2;
    const std::size_t nxt = 1 - cur;
    // Sweep every device's owned interior rows: in = buf[cur],
    // out = buf[nxt].
    for (std::size_t d = 0; d < devices; ++d) {
      Slab& s = slab[d];
      for (gpusim::Event& ev : halo_in[d]) s.comp->wait(ev);
      halo_in[d].clear();
      const std::size_t nrows = s.gend > s.gstart ? s.gend - s.gstart : 0;
      const double* in_base = s.buf[cur].data();
      double* out_base = s.buf[nxt].data();
      const std::size_t lo = s.lo;
      const std::size_t gstart = s.gstart;
      gpusim::LaunchEngine* engine = &topo.engine(d);
      gpusim::DeviceContext* ctx = &topo.context(d);
      s.comp->enqueue(opt.modeled_sweep_s, [=] {
        if (nrows == 0) return;
        ctx->note_launch(gpusim::Dim3{nrows, 1, 1}, gpusim::Dim3{cols, 1, 1});
        gpusim::run_batch(*engine, nrows, nrows * cols,
                          [=](std::size_t, std::size_t i) {
                            const std::size_t li = gstart - lo + i;  // local row
                            row_fn(in_base + (li - 1) * cols, in_base + li * cols,
                                   in_base + (li + 1) * cols, out_base + li * cols, cols);
                          });
      });
      s.comp->record(compute_done[d]);
    }
    // Halo exchange on buf[nxt]: my edge rows become the neighbors' halo
    // rows.  The copy waits for my sweep; the neighbor's next sweep
    // waits for the copy (via halo_in).  Fixed device-major order.
    for (std::size_t d = 0; d < devices; ++d) {
      Slab& s = slab[d];
      if (d > 0 && s.gend > s.gstart) {
        Slab& up = slab[d - 1];
        s.xfer->wait(compute_done[d]);
        // My first computed row gstart is row index (gstart - up.lo) in
        // the upper neighbor's slab (its bottom halo when gstart == up.hi-1).
        gpusim::peer_copy_async(topo, d, d - 1, *s.xfer, up.buf[nxt],
                                (s.gstart - up.lo) * cols, s.buf[nxt],
                                (s.gstart - s.lo) * cols, cols);
        gpusim::Event ev;
        s.xfer->record(ev);
        halo_in[d - 1].push_back(ev);
      }
      if (d + 1 < devices && s.gend > s.gstart) {
        Slab& dn = slab[d + 1];
        s.xfer->wait(compute_done[d]);
        gpusim::peer_copy_async(topo, d, d + 1, *s.xfer, dn.buf[nxt],
                                (s.gend - 1 - dn.lo) * cols, s.buf[nxt],
                                (s.gend - 1 - s.lo) * cols, cols);
        gpusim::Event ev;
        s.xfer->record(ev);
        halo_in[d + 1].push_back(ev);
      }
    }
  }

  // Land each device's owned rows from the final buffer back into the
  // host grid, fixed device-major combination order.
  const std::size_t fin = opt.iterations % 2;
  for (std::size_t d = 0; d < devices; ++d) {
    Slab& s = slab[d];
    if (s.gend <= s.gstart) continue;
    for (gpusim::Event& ev : halo_in[d]) s.comp->wait(ev);  // final halos irrelevant, but drain order-safe
    s.comp->wait(compute_done[d]);
    gpusim::copy_to_host_async(
        topo, d, *s.comp,
        std::span<double>(grid.data() + s.gstart * cols, (s.gend - s.gstart) * cols),
        s.buf[fin], (s.gstart - s.lo) * cols, domain_of(d));
  }

  double modeled = 0.0;
  for (std::size_t d = 0; d < devices; ++d) {
    modeled = std::max(modeled, slab[d].comp->synchronize());
    modeled = std::max(modeled, slab[d].xfer->synchronize());
  }
  stats.modeled_s = modeled;
  stats.wall_s = wall.seconds();
  stats.panels = devices * opt.iterations;
  return stats;
}

}  // namespace portabench::multigpu
