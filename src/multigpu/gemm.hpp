// Multi-device GEMM: panel-split C = A * B across the topology.
//
// Decomposition: the M dimension is cut into ShardPlan row panels;
// device d streams its contiguous panel range through the double-
// buffered pipeline (gpusim/pipeline.hpp) — H2D of A panel k+1 overlaps
// the tiled kernel on panel k, D2H of C panel k-1 overlaps both.  B is
// broadcast to every device once, on the copy-in stream ahead of the
// first panel, so its upload cost rides the same modeled NUMA link as
// the panels.
//
// Bitwise contract: inside gemm_tiled_serial_scratch, the accumulation
// order of any C(i,j) is the KC-block sequence over k — it does not
// depend on how rows are grouped into MC blocks or panels.  KC is a
// frozen fp-order knob (src/tune/params), so every panel split, every
// device count, and every per-device MC choice produces bit-identical C
// to the single-device serial oracle (gemm_tiled_serial_scratch over the
// whole matrix).  tests/multigpu pins exactly that.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "gemm/kernels_tiled.hpp"
#include "gpusim/batch.hpp"
#include "gpusim/copy.hpp"
#include "gpusim/pipeline.hpp"
#include "multigpu/shard.hpp"
#include "simrt/mdarray.hpp"

namespace portabench::multigpu {

struct GemmShardOptions {
  std::size_t panel_rows = 0;  ///< 0: 2 * tile.mc
  std::size_t slots = 2;
  bool overlap = true;
  /// Stage host panels from each device's own NUMA domain (the pinned
  /// placement makes this the natural home); false models naive staging
  /// where everything lives in domain 0 and remote devices pay the
  /// cross-socket H2D link.
  bool numa_aware_staging = true;
  /// Modeled kernel seconds per full panel (0: transfers-only modeled
  /// makespan).  The overlap bench feeds the perfmodel GEMM time here so
  /// the modeled and measured pipelines describe the same schedule.
  double modeled_panel_kernel_s = 0.0;
  /// Tile schedule per device; index d used for device d (empty: default
  /// TileConfig for every device).  MC is pure work partitioning —
  /// per-device tiles cannot break the bitwise contract (KC is frozen).
  std::vector<gemm::TileConfig> tiles;
};

/// C = A * B (C overwritten), sharded across every device of `topo`.
/// A, B, C are dense row-major host matrices; A and C row ranges are
/// staged per panel, so only B and two panel slots are resident per
/// device.  Returns the pipeline timing summary.
template <class T>
gpusim::PipelineStats gemm_sharded(gpusim::DeviceTopology& topo,
                                   simrt::RawView2<const T> A, simrt::RawView2<const T> B,
                                   simrt::RawView2<T> C, const GemmShardOptions& opt = {}) {
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  PB_EXPECTS(B.extent(0) == k && C.extent(0) == m && C.extent(1) == n);
  // Panel staging copies whole row ranges: views must be dense row-major.
  PB_EXPECTS(A.stride(1) == 1 && A.stride(0) == k);
  PB_EXPECTS(B.stride(1) == 1 && B.stride(0) == n);
  PB_EXPECTS(C.stride(1) == 1 && C.stride(0) == n);
  PB_EXPECTS(opt.tiles.empty() || opt.tiles.size() >= topo.devices());

  const gemm::TileConfig default_tile{};
  const auto tile_of = [&](std::size_t d) -> const gemm::TileConfig& {
    return opt.tiles.empty() ? default_tile : opt.tiles[d];
  };
  std::size_t panel_rows = opt.panel_rows;
  if (panel_rows == 0) panel_rows = 2 * tile_of(0).mc;
  if (m == 0 || n == 0 || k == 0) return {};

  const ShardPlan plan = ShardPlan::rows(m, panel_rows, topo.devices());

  struct DeviceState {
    std::vector<gpusim::DeviceBuffer<T>> a_slots;
    std::vector<gpusim::DeviceBuffer<T>> c_slots;
    gpusim::DeviceBuffer<T> b;
  };
  std::vector<DeviceState> dev(topo.devices());
  for (std::size_t d = 0; d < topo.devices(); ++d) {
    if (plan.panels_of(d) == 0) continue;
    gpusim::DeviceContext& ctx = topo.context(d);
    for (std::size_t s = 0; s < opt.slots; ++s) {
      dev[d].a_slots.emplace_back(ctx, panel_rows * k);
      dev[d].c_slots.emplace_back(ctx, panel_rows * n);
    }
    dev[d].b = gpusim::DeviceBuffer<T>(ctx, k * n);
  }

  const auto domain_of = [&](std::size_t d) {
    return opt.numa_aware_staging ? topo.numa_domain_of(d) : std::size_t{0};
  };

  const auto h2d = [&](gpusim::Stream& s, std::size_t d, std::size_t kk, std::size_t slot) {
    if (kk == 0) {
      // Broadcast B ahead of the first panel on the same copy-in queue.
      gpusim::copy_to_device_async(topo, d, s, dev[d].b, 0,
                                   std::span<const T>(B.data(), k * n), domain_of(d));
    }
    const Panel& p = plan.panel(d, kk);
    gpusim::copy_to_device_async(
        topo, d, s, dev[d].a_slots[slot], 0,
        std::span<const T>(A.data() + p.begin * k, p.rows() * k), domain_of(d));
  };

  const auto compute = [&](gpusim::Stream& s, std::size_t d, std::size_t kk,
                           std::size_t slot) {
    const Panel& p = plan.panel(d, kk);
    const gemm::TileConfig tile = tile_of(d);
    T* a_ptr = dev[d].a_slots[slot].data();
    T* c_ptr = dev[d].c_slots[slot].data();
    T* b_ptr = dev[d].b.data();
    gpusim::LaunchEngine* engine = &topo.engine(d);
    gpusim::DeviceContext* ctx = &topo.context(d);
    const std::size_t rows = p.rows();
    s.enqueue(opt.modeled_panel_kernel_s, [=] {
      // One MC row block per batch item: per-element accumulation order
      // is KC-major regardless of the row grouping, so this forked
      // schedule matches the serial oracle bit for bit.
      const std::size_t blocks = (rows + tile.mc - 1) / tile.mc;
      ctx->note_launch(gpusim::Dim3{blocks, 1, 1},
                       gpusim::Dim3{ctx->spec().warp_size, 1, 1});
      std::memset(c_ptr, 0, rows * n * sizeof(T));
      gpusim::run_batch(*engine, blocks, rows * n, [=](std::size_t worker, std::size_t b) {
        const std::size_t r0 = b * tile.mc;
        const std::size_t r1 = std::min(rows, r0 + tile.mc);
        const simrt::RawView2<const T> Ab(a_ptr + r0 * k, r1 - r0, k);
        const simrt::RawView2<const T> Bv(b_ptr, k, n);
        simrt::RawView2<T> Cb(c_ptr + r0 * n, r1 - r0, n);
        const std::size_t bytes =
            gemm::gemm_tiled_scratch_bytes<T>(r1 - r0, n, k, tile);
        auto scratch = gpusim::batch_scratch(*engine, worker, bytes);
        gemm::gemm_tiled_serial_scratch<T>(Ab, Bv, Cb, scratch, tile);
      });
    });
  };

  const auto d2h = [&](gpusim::Stream& s, std::size_t d, std::size_t kk, std::size_t slot) {
    const Panel& p = plan.panel(d, kk);
    gpusim::copy_to_host_async(topo, d, s,
                               std::span<T>(C.data() + p.begin * n, p.rows() * n),
                               dev[d].c_slots[slot], 0, domain_of(d));
  };

  gpusim::PipelineOptions popt;
  popt.slots = opt.slots;
  popt.overlap = opt.overlap;
  return gpusim::run_sharded_pipeline(topo, plan.panels_per_device(), popt, h2d, compute,
                                      d2h);
}

/// Single-device serial oracle for gemm_sharded: the whole matrix through
/// gemm_tiled_serial_scratch with the default tile, C overwritten.
template <class T>
void gemm_sharded_oracle(simrt::RawView2<const T> A, simrt::RawView2<const T> B,
                         simrt::RawView2<T> C) {
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  std::vector<std::byte> scratch(gemm::gemm_tiled_scratch_bytes<T>(m, n, k));
  std::fill_n(C.data(), m * n, T{});
  gemm::gemm_tiled_serial_scratch<T>(A, B, C, scratch);
}

}  // namespace portabench::multigpu
