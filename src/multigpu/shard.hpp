// Work decomposition across the devices of a DeviceTopology.
//
// The bitwise-replay contract for sharded execution rests on one idea:
// the *global* panel decomposition is fixed by the problem (total rows
// and panel size), never by the device count.  Devices own contiguous,
// disjoint panel ranges — the dist_edge_list partitioning idiom — so
// every output element is produced by exactly one panel with exactly the
// arithmetic the single-device serial oracle uses, and shard results
// combine in a fixed order (disjoint host ranges, device-major).
// Varying the device count redistributes whole panels; it cannot change
// any element's floating-point history.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace portabench::multigpu {

/// One panel: a contiguous row range [begin, end).
struct Panel {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t rows() const noexcept { return end - begin; }
};

/// Global panel decomposition dealt to devices in contiguous runs.
struct ShardPlan {
  std::size_t total_rows = 0;
  std::size_t panel_rows = 0;
  std::vector<Panel> panels;                    ///< global, device-independent
  std::vector<std::size_t> first_panel;         ///< device d owns [first_panel[d], first_panel[d+1])

  [[nodiscard]] std::size_t devices() const noexcept { return first_panel.size() - 1; }
  [[nodiscard]] std::size_t panels_of(std::size_t device) const {
    PB_EXPECTS(device + 1 < first_panel.size());
    return first_panel[device + 1] - first_panel[device];
  }
  /// Global panel index of device-local panel k on `device`.
  [[nodiscard]] std::size_t global_panel(std::size_t device, std::size_t k) const {
    PB_EXPECTS(k < panels_of(device));
    return first_panel[device] + k;
  }
  [[nodiscard]] const Panel& panel(std::size_t device, std::size_t k) const {
    return panels[global_panel(device, k)];
  }
  /// Per-device panel counts in the shape run_sharded_pipeline takes.
  [[nodiscard]] std::vector<std::size_t> panels_per_device() const {
    std::vector<std::size_t> out(devices());
    for (std::size_t d = 0; d < out.size(); ++d) out[d] = panels_of(d);
    return out;
  }

  /// Split `total_rows` into ceil(total/panel_rows) panels of
  /// `panel_rows` rows (last one ragged), dealt contiguously and near
  /// evenly to `devices` devices (leading devices get the remainder).
  [[nodiscard]] static ShardPlan rows(std::size_t total_rows, std::size_t panel_rows,
                                      std::size_t devices) {
    PB_EXPECTS(panel_rows > 0 && devices > 0);
    ShardPlan plan;
    plan.total_rows = total_rows;
    plan.panel_rows = panel_rows;
    const std::size_t n_panels = (total_rows + panel_rows - 1) / panel_rows;
    plan.panels.reserve(n_panels);
    for (std::size_t p = 0; p < n_panels; ++p) {
      const std::size_t begin = p * panel_rows;
      plan.panels.push_back({begin, std::min(total_rows, begin + panel_rows)});
    }
    plan.first_panel.resize(devices + 1, 0);
    const std::size_t base = n_panels / devices;
    const std::size_t extra = n_panels % devices;
    for (std::size_t d = 0; d < devices; ++d) {
      plan.first_panel[d + 1] = plan.first_panel[d] + base + (d < extra ? 1 : 0);
    }
    return plan;
  }
};

}  // namespace portabench::multigpu
