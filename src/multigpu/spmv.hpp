// Multi-device SpMV: CSR row blocks across the topology.
//
// Row-block decomposition over the ShardPlan: device d streams its
// contiguous panels of rows through the pipeline — for each panel the
// H2D stage ships the row_ptr slice plus exactly the col_idx/values
// window [row_ptr[begin], row_ptr[end]) that those rows touch, the
// kernel walks rows with spmv_reference's accumulation order, and the
// D2H stage lands the y block.  x is broadcast whole to every device
// ahead of the first panel (column indices are global).
//
// Bitwise contract: y[r] is a single ordered dot product over row r's
// entries; the row-block split changes only which device walks the row.
// tests/multigpu pins y identical to spmv_reference for every device
// count.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "gpusim/batch.hpp"
#include "gpusim/copy.hpp"
#include "gpusim/pipeline.hpp"
#include "multigpu/shard.hpp"
#include "spmv/kernels.hpp"

namespace portabench::multigpu {

struct SpmvShardOptions {
  std::size_t panel_rows = 2048;
  std::size_t slots = 2;
  bool overlap = true;
  bool numa_aware_staging = true;
  /// Rows per batch item inside a panel (device-side parallelism grain).
  std::size_t rows_per_block = 256;
  double modeled_panel_kernel_s = 0.0;
};

/// y = A * x, row blocks sharded across every device of `topo`.
template <class T>
gpusim::PipelineStats spmv_sharded(gpusim::DeviceTopology& topo,
                                   const spmv::CsrMatrix<T>& A, std::span<const T> x,
                                   std::span<T> y, const SpmvShardOptions& opt = {}) {
  PB_EXPECTS(x.size() == A.cols && y.size() == A.rows);
  PB_EXPECTS(opt.panel_rows > 0 && opt.rows_per_block > 0);
  if (A.rows == 0) return {};

  const ShardPlan plan = ShardPlan::rows(A.rows, opt.panel_rows, topo.devices());

  // Widest col_idx/values window any panel needs: slots are sized once.
  std::size_t max_panel_nnz = 0;
  for (const Panel& p : plan.panels) {
    max_panel_nnz = std::max(max_panel_nnz, A.row_ptr[p.end] - A.row_ptr[p.begin]);
  }

  struct DeviceState {
    std::vector<gpusim::DeviceBuffer<std::size_t>> rp_slots;
    std::vector<gpusim::DeviceBuffer<std::size_t>> ci_slots;
    std::vector<gpusim::DeviceBuffer<T>> val_slots;
    std::vector<gpusim::DeviceBuffer<T>> y_slots;
    gpusim::DeviceBuffer<T> x;
  };
  std::vector<DeviceState> dev(topo.devices());
  for (std::size_t d = 0; d < topo.devices(); ++d) {
    if (plan.panels_of(d) == 0) continue;
    gpusim::DeviceContext& ctx = topo.context(d);
    for (std::size_t s = 0; s < opt.slots; ++s) {
      dev[d].rp_slots.emplace_back(ctx, opt.panel_rows + 1);
      dev[d].ci_slots.emplace_back(ctx, std::max<std::size_t>(1, max_panel_nnz));
      dev[d].val_slots.emplace_back(ctx, std::max<std::size_t>(1, max_panel_nnz));
      dev[d].y_slots.emplace_back(ctx, opt.panel_rows);
    }
    dev[d].x = gpusim::DeviceBuffer<T>(ctx, A.cols);
  }

  const auto domain_of = [&](std::size_t d) {
    return opt.numa_aware_staging ? topo.numa_domain_of(d) : std::size_t{0};
  };

  const auto h2d = [&](gpusim::Stream& s, std::size_t d, std::size_t kk, std::size_t slot) {
    if (kk == 0) {
      gpusim::copy_to_device_async(topo, d, s, dev[d].x, 0,
                                   std::span<const T>(x.data(), x.size()), domain_of(d));
    }
    const Panel& p = plan.panel(d, kk);
    const std::size_t e0 = A.row_ptr[p.begin];
    const std::size_t e1 = A.row_ptr[p.end];
    gpusim::copy_to_device_async(
        topo, d, s, dev[d].rp_slots[slot], 0,
        std::span<const std::size_t>(A.row_ptr.data() + p.begin, p.rows() + 1),
        domain_of(d));
    gpusim::copy_to_device_async(
        topo, d, s, dev[d].ci_slots[slot], 0,
        std::span<const std::size_t>(A.col_idx.data() + e0, e1 - e0), domain_of(d));
    gpusim::copy_to_device_async(topo, d, s, dev[d].val_slots[slot], 0,
                                 std::span<const T>(A.values.data() + e0, e1 - e0),
                                 domain_of(d));
  };

  const auto compute = [&](gpusim::Stream& s, std::size_t d, std::size_t kk,
                           std::size_t slot) {
    const Panel& p = plan.panel(d, kk);
    const std::size_t rows = p.rows();
    const std::size_t base = A.row_ptr[p.begin];
    const std::size_t rpb = opt.rows_per_block;
    const std::size_t* rp = dev[d].rp_slots[slot].data();
    const std::size_t* ci = dev[d].ci_slots[slot].data();
    const T* val = dev[d].val_slots[slot].data();
    const T* xd = dev[d].x.data();
    T* yd = dev[d].y_slots[slot].data();
    gpusim::LaunchEngine* engine = &topo.engine(d);
    gpusim::DeviceContext* ctx = &topo.context(d);
    s.enqueue(opt.modeled_panel_kernel_s, [=] {
      const std::size_t blocks = (rows + rpb - 1) / rpb;
      ctx->note_launch(gpusim::Dim3{blocks, 1, 1},
                       gpusim::Dim3{ctx->spec().warp_size, 1, 1});
      gpusim::run_batch(*engine, blocks, rows, [=](std::size_t, std::size_t b) {
        const std::size_t r0 = b * rpb;
        const std::size_t r1 = std::min(rows, r0 + rpb);
        for (std::size_t r = r0; r < r1; ++r) {
          T sum{};
          // row_ptr entries are global; the entry window was rebased to
          // `base` when it was staged.
          for (std::size_t e = rp[r]; e < rp[r + 1]; ++e) {
            sum += val[e - base] * xd[ci[e - base]];
          }
          yd[r] = sum;
        }
      });
    });
  };

  const auto d2h = [&](gpusim::Stream& s, std::size_t d, std::size_t kk, std::size_t slot) {
    const Panel& p = plan.panel(d, kk);
    gpusim::copy_to_host_async(topo, d, s, y.subspan(p.begin, p.rows()),
                               dev[d].y_slots[slot], 0, domain_of(d));
  };

  gpusim::PipelineOptions popt;
  popt.slots = opt.slots;
  popt.overlap = opt.overlap;
  return gpusim::run_sharded_pipeline(topo, plan.panels_per_device(), popt, h2d, compute,
                                      d2h);
}

}  // namespace portabench::multigpu
