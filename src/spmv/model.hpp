// SpMV performance model: the memory-bound counterpart of the GEMM
// roofline.  SpMV moves ~(value + index) bytes per FMA with essentially
// no reuse of A, so every platform lands deep in the bandwidth-bound
// regime — a deliberately different roofline placement from GEMM that
// widens the reproduction's workload coverage.
#pragma once

#include <cstddef>

#include "perfmodel/device_specs.hpp"

namespace portabench::spmv {

struct SpmvPrediction {
  double bytes = 0.0;     ///< modeled DRAM traffic
  double flops = 0.0;     ///< 2 * nnz
  double seconds = 0.0;
  double gflops = 0.0;
  double arithmetic_intensity = 0.0;
};

/// Traffic model: A streams once (values + column indices + row pointers),
/// y writes once; x gathers cost `x_reuse` in (0, 1]: 1 = every gather
/// from DRAM, ->0 = x cache-resident.  The default assumes x fits in LLC
/// (the common case for nnz_per_row << rows).
[[nodiscard]] SpmvPrediction predict_spmv_cpu(const perfmodel::CpuSpec& cpu,
                                              std::size_t rows, std::size_t nnz,
                                              std::size_t value_bytes = 8,
                                              std::size_t index_bytes = 8,
                                              double x_dram_fraction = 0.05);

[[nodiscard]] SpmvPrediction predict_spmv_gpu(const perfmodel::GpuPerfSpec& gpu,
                                              std::size_t rows, std::size_t nnz,
                                              std::size_t value_bytes = 8,
                                              std::size_t index_bytes = 8,
                                              double x_dram_fraction = 0.10);

}  // namespace portabench::spmv
