// Sparse matrix containers: CSR and CSC.
//
// The "more complex HPC workloads" extension (Section VI future work):
// sparse matrix-vector multiplication is the memory-bound counterpart of
// the paper's compute-bound GEMM, and the storage convention splits the
// same way the dense layouts did — C/OpenMP, Numba (scipy), and Kokkos
// use CSR; Julia's SparseMatrixCSC is compressed *columns*.  Both are
// implemented so the frontends keep their native formats.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace portabench::spmv {

/// Compressed sparse row.
template <class T>
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_ptr;  ///< rows + 1 entries
  std::vector<std::size_t> col_idx;  ///< nnz entries, ascending within a row
  std::vector<T> values;             ///< nnz entries

  [[nodiscard]] std::size_t nnz() const noexcept { return values.size(); }

  /// Validate structural invariants; throws on violation.
  void validate() const {
    PB_EXPECTS(row_ptr.size() == rows + 1);
    PB_EXPECTS(row_ptr.front() == 0 && row_ptr.back() == values.size());
    PB_EXPECTS(col_idx.size() == values.size());
    for (std::size_t r = 0; r < rows; ++r) {
      PB_EXPECTS(row_ptr[r] <= row_ptr[r + 1]);
      for (std::size_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
        PB_EXPECTS(col_idx[e] < cols);
        if (e > row_ptr[r]) PB_EXPECTS(col_idx[e] > col_idx[e - 1]);
      }
    }
  }
};

/// Compressed sparse column (Julia's SparseMatrixCSC).
template <class T>
struct CscMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> col_ptr;  ///< cols + 1 entries
  std::vector<std::size_t> row_idx;  ///< nnz entries, ascending within a column
  std::vector<T> values;

  [[nodiscard]] std::size_t nnz() const noexcept { return values.size(); }
};

/// Random matrix with ~nnz_per_row uniformly placed entries per row,
/// values in [0, 1).  Deterministic for a seed.
template <class T>
CsrMatrix<T> random_csr(std::size_t rows, std::size_t cols, std::size_t nnz_per_row,
                        std::uint64_t seed) {
  PB_EXPECTS(rows > 0 && cols > 0 && nnz_per_row > 0 && nnz_per_row <= cols);
  CsrMatrix<T> m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.resize(rows + 1, 0);
  Xoshiro256 rng(seed);

  std::vector<std::size_t> row_cols;
  for (std::size_t r = 0; r < rows; ++r) {
    row_cols.clear();
    // Sample distinct columns: stride-jitter placement keeps it O(nnz).
    const std::size_t stride = cols / nnz_per_row;
    for (std::size_t e = 0; e < nnz_per_row; ++e) {
      const std::size_t base = e * stride;
      const std::size_t jitter = stride > 1 ? rng() % stride : 0;
      row_cols.push_back(std::min(base + jitter, cols - 1));
    }
    std::sort(row_cols.begin(), row_cols.end());
    row_cols.erase(std::unique(row_cols.begin(), row_cols.end()), row_cols.end());
    for (std::size_t c : row_cols) {
      m.col_idx.push_back(c);
      m.values.push_back(static_cast<T>(rng.uniform()));
    }
    m.row_ptr[r + 1] = m.values.size();
  }
  return m;
}

/// Banded matrix: entries at |i - j| <= half_bandwidth (a PDE-stencil
/// shape, the paper's Trixi.jl/solver context).
template <class T>
CsrMatrix<T> banded_csr(std::size_t n, std::size_t half_bandwidth, std::uint64_t seed) {
  PB_EXPECTS(n > 0);
  CsrMatrix<T> m;
  m.rows = n;
  m.cols = n;
  m.row_ptr.resize(n + 1, 0);
  Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half_bandwidth ? i - half_bandwidth : 0;
    const std::size_t hi = std::min(i + half_bandwidth, n - 1);
    for (std::size_t j = lo; j <= hi; ++j) {
      m.col_idx.push_back(j);
      m.values.push_back(static_cast<T>(rng.uniform()));
    }
    m.row_ptr[i + 1] = m.values.size();
  }
  return m;
}

/// Convert CSR to CSC (the Julia frontend's ingestion step).
template <class T>
CscMatrix<T> csr_to_csc(const CsrMatrix<T>& csr) {
  CscMatrix<T> csc;
  csc.rows = csr.rows;
  csc.cols = csr.cols;
  csc.col_ptr.assign(csr.cols + 1, 0);
  // Count entries per column.
  for (std::size_t c : csr.col_idx) ++csc.col_ptr[c + 1];
  for (std::size_t c = 0; c < csr.cols; ++c) csc.col_ptr[c + 1] += csc.col_ptr[c];
  csc.row_idx.resize(csr.nnz());
  csc.values.resize(csr.nnz());
  std::vector<std::size_t> cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (std::size_t r = 0; r < csr.rows; ++r) {
    for (std::size_t e = csr.row_ptr[r]; e < csr.row_ptr[r + 1]; ++e) {
      const std::size_t c = csr.col_idx[e];
      csc.row_idx[cursor[c]] = r;
      csc.values[cursor[c]] = csr.values[e];
      ++cursor[c];
    }
  }
  return csc;
}

}  // namespace portabench::spmv
