// SpMV kernels per programming model, plus the GPU variants.
//
// y = A * x.  The frontends keep their native conventions:
//   - C/OpenMP, Kokkos, Numba: CSR, row-parallel (one row per iteration
//     of the parallel loop — embarrassingly parallel, like the dense
//     kernels' row mapping);
//   - Julia: CSC (SparseMatrixCSC), column traversal; the threaded
//     version privatizes y per thread and reduces, since columns scatter
//     into shared rows;
//   - GPU scalar: one thread per row (the canonical naive CUDA SpMV);
//   - GPU vector: one warp-sized block per row, cooperative reduction —
//     the standard fix for long rows, built on block_reduce_sum.
#pragma once

#include <span>

#include "gpusim/batch.hpp"
#include "gpusim/block_primitives.hpp"
#include "gpusim/memory.hpp"
#include "simrt/parallel.hpp"
#include "sparse.hpp"

namespace portabench::spmv {

/// Serial reference.
template <class T>
void spmv_reference(const CsrMatrix<T>& A, std::span<const T> x, std::span<T> y) {
  PB_EXPECTS(x.size() == A.cols && y.size() == A.rows);
  for (std::size_t r = 0; r < A.rows; ++r) {
    T sum{};
    for (std::size_t e = A.row_ptr[r]; e < A.row_ptr[r + 1]; ++e) {
      sum += A.values[e] * x[A.col_idx[e]];
    }
    y[r] = sum;
  }
}

/// C/OpenMP / Kokkos / Numba shape: row-parallel CSR.  x and y are any
/// indexable vector types (span, View1, shadow view); the sparse structure
/// itself is read-only host data and stays un-instrumented.
template <class T, class Space, class XV, class YV>
void spmv_csr_row_parallel(const Space& space, const CsrMatrix<T>& A, const XV& x, YV&& y) {
  PB_EXPECTS(x.size() == A.cols && y.size() == A.rows);
  simrt::parallel_for(space, simrt::RangePolicy(0, A.rows), [&](std::size_t r) {
    T sum{};
    for (std::size_t e = A.row_ptr[r]; e < A.row_ptr[r + 1]; ++e) {
      sum += A.values[e] * static_cast<T>(x[A.col_idx[e]]);
    }
    y[r] = sum;
  });
}

/// Julia shape: CSC columns with per-thread y privatization, joined in
/// thread order (deterministic for a fixed thread count).
template <class T, class XV, class YV>
void spmv_csc_column_parallel(const simrt::ThreadsSpace& space, const CscMatrix<T>& A,
                              const XV& x, YV&& y) {
  PB_EXPECTS(x.size() == A.cols && y.size() == A.rows);
  const std::size_t nt = space.concurrency();
  std::vector<std::vector<T>> partial(nt, std::vector<T>(A.rows, T{}));

  space.pool().run_auto([&](std::size_t t) {
    auto block = simrt::detail::static_block(A.cols, nt, t);
    std::vector<T>& mine = partial[t];
    for (std::size_t c = block.begin; c < block.end; ++c) {
      const T xc = static_cast<T>(x[c]);
      for (std::size_t e = A.col_ptr[c]; e < A.col_ptr[c + 1]; ++e) {
        mine[A.row_idx[e]] += A.values[e] * xc;
      }
    }
  }, A.cols);

  // The join runs on the caller after the region: index-wise so shadow
  // views (no iterators) work as y.
  for (std::size_t r = 0; r < A.rows; ++r) {
    T sum{};
    for (std::size_t t = 0; t < nt; ++t) sum += partial[t][r];
    y[r] = sum;
  }
}

/// GPU scalar kernel: one thread per row.
template <class T, class BX, class BY>
void spmv_gpu_scalar(gpusim::DeviceContext& ctx, const CsrMatrix<T>& A, const BX& x, BY&& y,
                     std::size_t threads_per_block = 128) {
  PB_EXPECTS(x.size() == A.cols && y.size() == A.rows);
  const std::size_t* row_ptr = A.row_ptr.data();
  const std::size_t* col_idx = A.col_idx.data();
  const T* values = A.values.data();
  const std::size_t rows = A.rows;

  gpusim::launch(ctx, {gpusim::blocks_for(rows, threads_per_block), 1, 1},
                 {threads_per_block, 1, 1}, [&](const gpusim::ThreadCtx& tc) {
                   const std::size_t r = tc.global_x();
                   if (r < rows) {
                     T sum{};
                     for (std::size_t e = row_ptr[r]; e < row_ptr[r + 1]; ++e) {
                       sum += values[e] * static_cast<T>(x[col_idx[e]]);
                     }
                     y[r] = sum;
                   }
                 });
}

/// GPU vector kernel: one warp-wide block per row, lanes stride the row's
/// entries, cooperative sum via shared memory.
template <class T, class BX, class BY>
void spmv_gpu_vector(gpusim::DeviceContext& ctx, const CsrMatrix<T>& A, const BX& x, BY&& y) {
  PB_EXPECTS(x.size() == A.cols && y.size() == A.rows);
  const std::size_t warp = ctx.spec().warp_size;
  const std::size_t* row_ptr = A.row_ptr.data();
  const std::size_t* col_idx = A.col_idx.data();
  const T* values = A.values.data();

  gpusim::launch_blocks(
      ctx, {A.rows, 1, 1}, {warp, 1, 1}, warp * sizeof(T), [&](gpusim::BlockCtx& bc) {
        const std::size_t r = bc.block_idx().x;
        auto scratch = bc.template shared<T>(warp);
        const T total = gpusim::block_reduce_sum<T>(bc, scratch, [&](const gpusim::ThreadCtx& tc) {
          T sum{};
          for (std::size_t e = row_ptr[r] + tc.thread_idx.x; e < row_ptr[r + 1]; e += warp) {
            sum += values[e] * static_cast<T>(x[col_idx[e]]);
          }
          return sum;
        });
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          if (tc.thread_idx.x == 0) y[r] = total;
        });
      });
}

// ---------------------------------------------------------------------------
// Batched entry point (serving layer).
// ---------------------------------------------------------------------------

/// One CSR SpMV of a batch over raw, caller-owned storage (arena slices:
/// no container types so the path stays allocation-free).
template <class T>
struct SpmvBatchItem {
  const std::size_t* row_ptr = nullptr;  ///< rows + 1 entries
  const std::size_t* col_idx = nullptr;
  const T* values = nullptr;
  const T* x = nullptr;
  T* y = nullptr;
  std::size_t rows = 0;
};

/// Run every item as one engine launch (one item per block).  Each item's
/// rows are walked in order with the exact accumulation of
/// spmv_reference / spmv_csr_row_parallel, so y is bit-identical to the
/// serial frontend result.  Under portacheck the batch executes as a
/// seed-permuted serial schedule with one lane per item.
template <class T>
void spmv_csr_batched(gpusim::LaunchEngine& engine, std::span<const SpmvBatchItem<T>> items) {
  std::size_t total_threads = 0;
  for (const auto& item : items) total_threads += item.rows;
  gpusim::run_batch(engine, items.size(), total_threads,
                    [items](std::size_t, std::size_t idx) {
                      const SpmvBatchItem<T>& item = items[idx];
                      for (std::size_t r = 0; r < item.rows; ++r) {
                        T sum{};
                        for (std::size_t e = item.row_ptr[r]; e < item.row_ptr[r + 1]; ++e) {
                          sum += item.values[e] * static_cast<T>(item.x[item.col_idx[e]]);
                        }
                        item.y[r] = sum;
                      }
                    });
}

}  // namespace portabench::spmv
