#include "model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace portabench::spmv {

namespace {

SpmvPrediction predict(double peak_gflops, double bw_gbs, double kernel_bw_eff,
                       std::size_t rows, std::size_t nnz, std::size_t value_bytes,
                       std::size_t index_bytes, double x_dram_fraction) {
  PB_EXPECTS(rows > 0 && nnz > 0);
  PB_EXPECTS(x_dram_fraction >= 0.0 && x_dram_fraction <= 1.0);
  SpmvPrediction p;
  const double dnnz = static_cast<double>(nnz);
  const double drows = static_cast<double>(rows);
  p.flops = 2.0 * dnnz;
  p.bytes = dnnz * static_cast<double>(value_bytes + index_bytes)  // A values + col idx
            + drows * static_cast<double>(index_bytes)             // row pointers
            + drows * static_cast<double>(value_bytes)             // y write
            + dnnz * static_cast<double>(value_bytes) * x_dram_fraction;  // x gathers
  p.arithmetic_intensity = p.flops / p.bytes;

  const double mem_s = p.bytes / (bw_gbs * 1.0e9 * kernel_bw_eff);
  const double compute_s = p.flops / (peak_gflops * 1.0e9);
  p.seconds = std::max(mem_s, compute_s);
  p.gflops = p.flops / p.seconds / 1.0e9;
  return p;
}

}  // namespace

SpmvPrediction predict_spmv_cpu(const perfmodel::CpuSpec& cpu, std::size_t rows,
                                std::size_t nnz, std::size_t value_bytes,
                                std::size_t index_bytes, double x_dram_fraction) {
  return predict(cpu.peak_gflops(Precision::kDouble), cpu.mem_bw_gbs, 0.80, rows, nnz,
                 value_bytes, index_bytes, x_dram_fraction);
}

SpmvPrediction predict_spmv_gpu(const perfmodel::GpuPerfSpec& gpu, std::size_t rows,
                                std::size_t nnz, std::size_t value_bytes,
                                std::size_t index_bytes, double x_dram_fraction) {
  return predict(gpu.peak_fp64_gflops, gpu.mem_bw_gbs, 0.70, rows, nnz, value_bytes,
                 index_bytes, x_dram_fraction);
}

}  // namespace portabench::spmv
