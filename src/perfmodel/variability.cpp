#include "variability.hpp"

#include <cmath>

#include "common/error.hpp"

namespace portabench::perfmodel {

VariabilitySpec VariabilitySpec::for_platform(Platform p) {
  VariabilitySpec v;
  switch (p) {
    case Platform::kCrusherCpu:
      v.cv = 0.030;  // 4 NUMA domains, OS noise across 64 cores
      v.cold_start_factor = 0.60;
      break;
    case Platform::kWombatCpu:
      v.cv = 0.020;
      v.cold_start_factor = 0.50;
      break;
    case Platform::kCrusherGpu:
      // Fig. 6b: Julia's small FP32 advantage "could simply be the
      // variability on this particular system" — a visible but small CV.
      v.cv = 0.015;
      v.cold_start_factor = 2.0;  // first kernel pays module load / warm clocks
      break;
    case Platform::kWombatGpu:
      v.cv = 0.008;
      v.cold_start_factor = 2.0;
      break;
  }
  return v;
}

std::vector<double> sample_timings(const VariabilitySpec& spec, double modeled_seconds,
                                   std::size_t reps, std::uint64_t seed) {
  PB_EXPECTS(modeled_seconds > 0.0);
  PB_EXPECTS(spec.cv >= 0.0);
  std::vector<double> out;
  out.reserve(reps);
  Xoshiro256 rng(seed);

  // Log-normal with median modeled_seconds: exp(sigma * z), sigma ~ cv
  // for small cv.  z from the Box-Muller transform.
  const double sigma = spec.cv;
  auto draw = [&] {
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return modeled_seconds * std::exp(sigma * z);
  };

  for (std::size_t r = 0; r < reps; ++r) {
    double t = draw();
    if (r == 0) t += modeled_seconds * spec.cold_start_factor;
    out.push_back(t);
  }
  return out;
}

}  // namespace portabench::perfmodel
