#include "device_specs.hpp"

#include "common/error.hpp"

namespace portabench::perfmodel {

double CpuSpec::flops_per_cycle(Precision prec) const {
  const double lanes64 = static_cast<double>(simd_bits) / 64.0;
  switch (prec) {
    case Precision::kDouble:
      return 2.0 * static_cast<double>(fma_pipes) * lanes64;
    case Precision::kSingle:
      return 2.0 * static_cast<double>(fma_pipes) * lanes64 * 2.0;
    case Precision::kHalfIn:
      // With native FP16 the vector is twice as wide again; without it,
      // every element converts through FP32, so the rate is the FP32 rate
      // (conversion cost is modeled separately in the traits).
      return 2.0 * static_cast<double>(fma_pipes) * lanes64 * (native_fp16 ? 8.0 : 4.0) / 2.0;
  }
  return 0.0;
}

double CpuSpec::peak_gflops(Precision prec) const {
  return static_cast<double>(cores) * freq_ghz * flops_per_cycle(prec);
}

CpuSpec CpuSpec::epyc_7a53() {
  CpuSpec s;
  s.name = "AMD EPYC 7A53 (Trento, Zen 3)";
  s.cores = 64;
  s.numa_domains = 4;
  s.freq_ghz = 2.0;
  s.simd_bits = 256;  // AVX2
  s.fma_pipes = 2;
  s.mem_bw_gbs = 205.0;  // 8-channel DDR4-3200
  s.l3_bytes = 256.0e6;
  s.l2_per_core_bytes = 512e3;
  s.fork_join_us = 18.0;  // 64 threads across 4 NUMA domains
  s.native_fp16 = false;
  return s;
}

CpuSpec CpuSpec::ampere_altra() {
  CpuSpec s;
  s.name = "Ampere Altra (Neoverse N1)";
  s.cores = 80;
  s.numa_domains = 1;
  s.freq_ghz = 3.0;
  s.simd_bits = 128;  // 2x NEON
  s.fma_pipes = 2;
  s.mem_bw_gbs = 204.0;  // 8-channel DDR4-3200
  s.l3_bytes = 32.0e6;   // system-level cache
  s.l2_per_core_bytes = 1024e3;
  s.fork_join_us = 12.0;
  s.native_fp16 = true;  // Armv8.2 FP16 arithmetic
  return s;
}

double GpuPerfSpec::peak_gflops(Precision prec) const {
  switch (prec) {
    case Precision::kDouble: return peak_fp64_gflops;
    case Precision::kSingle: return peak_fp32_gflops;
    case Precision::kHalfIn: return peak_fp16_gflops;
  }
  return 0.0;
}

GpuPerfSpec GpuPerfSpec::a100() {
  GpuPerfSpec s;
  s.name = "NVIDIA A100 (SXM4 40GB)";
  s.peak_fp64_gflops = 9700.0;
  s.peak_fp32_gflops = 19500.0;
  s.peak_fp16_gflops = 39000.0;  // vector FP16 (no tensor cores in naive kernels)
  s.mem_bw_gbs = 1555.0;
  s.launch_latency_us = 4.0;
  s.sm_count = 108;
  s.warp_size = 32;
  s.l2_bytes = 40e6;
  return s;
}

GpuPerfSpec GpuPerfSpec::mi250x_gcd() {
  GpuPerfSpec s;
  s.name = "AMD MI250X (one GCD)";
  s.peak_fp64_gflops = 23950.0;
  // CDNA2 vector FP32 nominally matches FP64, but packed (v_pk) FP32
  // dual-issue lifts the achievable rate on multiply-add streams; the
  // paper observes "all models provide an increase in performance" at
  // FP32 on the MI250X, which this effective peak reflects.
  s.peak_fp32_gflops = 35900.0;
  s.peak_fp16_gflops = 47900.0;  // packed vector FP16
  s.mem_bw_gbs = 1600.0;
  s.launch_latency_us = 6.0;
  s.sm_count = 110;
  s.warp_size = 64;
  s.l2_bytes = 8e6;
  return s;
}

std::vector<SpecRow> table1_rows() {
  return {
      {"Model", "Ampere Altra 80-core, 1-NUMA", "AMD Epyc 7A53 64-core, 4-NUMA"},
      {"C OpenMP compiler", "ArmClang22", "AMDClang14"},
      {"C OpenMP flags", "-O3 -fopenmp", "-O3 -fopenmp -march=native"},
      {"C++ Kokkos", "v3.6.01", "v3.6.01"},
      {"KOKKOS_DEVICES", "OpenMP", "OpenMP"},
      {"KOKKOS_ARCH", "Armv8-TX2", "Zen 3"},
      {"Kokkos compiler", "ArmClang++22", "AMDClang++14"},
      {"Kokkos flags", "-O3 -fopenmp", "-O3 -fopenmp -march=native"},
      {"Julia", "v1.7.2", "v1.8.0-rc1"},
      {"Julia ENV", "JULIA_EXCLUSIVE=1", "JULIA_EXCLUSIVE=1"},
      {"Python", "v3.9.9", "v3.9.9"},
      {"Numba", "v0.55.1", "v0.55.1"},
      {"Numba ENV", "NUMBA_OPT=3 (default)", "NUMBA_OPT=3 (default)"},
      {"OpenMP thread ENV", "OMP_PROC_BIND=true OMP_PLACES=threads",
       "OMP_PROC_BIND=true OMP_PLACES=threads"},
  };
}

std::vector<SpecRow> table2_rows() {
  return {
      {"Model", "A100 Ampere", "MI250X"},
      {"C CUDA/HIP compiler", "nvcc v11.5.1", "hipcc v14.0.0"},
      {"C CUDA/HIP flags", "-arch=sm_80", "-amdgpu-target=gfx908"},
      {"C++ Kokkos", "v3.6.01", "v3.6.01"},
      {"KOKKOS_DEVICES", "Cuda", "Hip"},
      {"KOKKOS_ARCH", "Ampere80", "Vega908"},
      {"Kokkos compiler", "CUDA v11.5.1", "HIP v14.0.0"},
      {"Kokkos flags", "-expt-extended-lambda -Xcudafe -arch=sm_80",
       "-amdgpu-target=gfx908"},
      {"Julia", "v1.7.2 (CUDA.jl)", "v1.8.0-rc1 (AMDGPU.jl)"},
      {"Python", "v3.9.9", "v3.9.9"},
      {"Numba", "v0.55.1", "Not supported"},
  };
}

}  // namespace portabench::perfmodel
