// Host<->device interconnect model and end-to-end GEMM timing.
//
// The paper's protocol measures kernel time only — the warm-up exclusion
// "also discards initial communication (threads and GPUs)" (Section IV).
// A downstream user porting this methodology to a real workflow needs the
// transfers back: this model supplies the link characteristics of both
// systems (PCIe4 on Wombat, Infinity Fabric on Crusher) and composes them
// with the kernel model, serially or overlapped (double buffering), which
// the transfer-overlap ablation quantifies.
#pragma once

#include <cstddef>
#include <string>

#include "common/precision.hpp"
#include "machine_model.hpp"

namespace portabench::perfmodel {

/// A host<->device link.
struct LinkSpec {
  std::string name;
  double bw_gbs = 16.0;      ///< sustained one-direction bandwidth
  double latency_us = 5.0;   ///< per-transfer setup cost
  bool duplex = true;        ///< H2D and D2H can proceed concurrently

  /// Seconds to move `bytes` one way.
  [[nodiscard]] double transfer_seconds(double bytes) const {
    return latency_us * 1.0e-6 + bytes / (bw_gbs * 1.0e9);
  }

  static LinkSpec pcie4_x16();        ///< Wombat: A100 over PCIe 4.0 x16
  static LinkSpec infinity_fabric();  ///< Crusher: CPU<->GCD Infinity Fabric
};

/// End-to-end timing decomposition for one device GEMM including data
/// movement (A and B in, C out).
struct EndToEndTime {
  double h2d_s = 0.0;
  double kernel_s = 0.0;
  double d2h_s = 0.0;
  double serial_s = 0.0;     ///< H2D; kernel; D2H strictly ordered
  double overlapped_s = 0.0; ///< pipelined over `batches` chunks
};

/// Compose link + kernel model for a batch of `batches` independent n^3
/// GEMMs (batches >= 1).  Overlap assumes double buffering: chunk i+1's
/// H2D overlaps chunk i's kernel, and D2H overlaps the next kernel when
/// the link is duplex.
[[nodiscard]] EndToEndTime end_to_end_gemm(const GpuMachineModel& model, const LinkSpec& link,
                                           Precision prec, std::size_t n,
                                           std::size_t batches = 1);

}  // namespace portabench::perfmodel
