// Hardware specifications of the four targets (Tables I and II), plus the
// software-stack rows the spec tables print.
//
// Peak rates use public vendor figures; the model never claims to match
// the authors' absolute measurements (DESIGN.md "Non-goals"), it uses the
// peaks to produce physically shaped GFLOPS-vs-size curves.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/precision.hpp"
#include "platform.hpp"
#include "simrt/affinity.hpp"

namespace portabench::perfmodel {

/// CPU node model.
struct CpuSpec {
  std::string name;
  std::size_t cores = 1;
  std::size_t numa_domains = 1;
  double freq_ghz = 1.0;
  std::size_t simd_bits = 128;       ///< vector width (AVX2: 256, NEON: 128)
  std::size_t fma_pipes = 2;         ///< FMA-capable pipes per core
  double mem_bw_gbs = 100.0;         ///< aggregate DRAM bandwidth
  double l3_bytes = 32.0e6;          ///< shared last-level cache
  double l2_per_core_bytes = 512e3;
  double fork_join_us = 15.0;        ///< parallel-region open/close cost
  bool native_fp16 = false;          ///< Arm has FP16 NEON; x86 Zen 3 does not

  /// FLOPs per core per cycle at a precision (2 ops per FMA lane).
  [[nodiscard]] double flops_per_cycle(Precision prec) const;
  /// Aggregate peak GFLOP/s at a precision.
  [[nodiscard]] double peak_gflops(Precision prec) const;
  [[nodiscard]] simrt::CpuTopology topology() const { return {cores, numa_domains}; }

  static CpuSpec epyc_7a53();     ///< Crusher: 64-core Zen 3 "Trento", 4 NUMA
  static CpuSpec ampere_altra();  ///< Wombat: 80-core Neoverse N1, 1 NUMA
};

/// GPU device model (performance side; functional side is gpusim::GpuSpec).
struct GpuPerfSpec {
  std::string name;
  double peak_fp64_gflops = 0.0;
  double peak_fp32_gflops = 0.0;
  double peak_fp16_gflops = 0.0;  ///< vector (non-tensor/matrix-core) rate
  double mem_bw_gbs = 0.0;
  double launch_latency_us = 5.0;
  std::size_t sm_count = 1;
  std::size_t warp_size = 32;
  double l2_bytes = 40e6;

  [[nodiscard]] double peak_gflops(Precision prec) const;

  static GpuPerfSpec a100();        ///< Wombat: A100 SXM4 40 GB
  static GpuPerfSpec mi250x_gcd();  ///< Crusher: one MI250X GCD
};

/// One row of the Table I / Table II software-stack dump.
struct SpecRow {
  std::string item;
  std::string wombat;
  std::string crusher;
};

/// Rows of Table I (CPU experiment specs): compilers, flags, versions, ENV.
[[nodiscard]] std::vector<SpecRow> table1_rows();
/// Rows of Table II (GPU experiment specs).
[[nodiscard]] std::vector<SpecRow> table2_rows();

}  // namespace portabench::perfmodel
