// Prediction API: the single entry point benches and examples use to
// obtain modeled GFLOPS for any (platform, family, precision, size).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "machine_model.hpp"
#include "platform.hpp"
#include "traits.hpp"

namespace portabench::perfmodel {

/// The matrix-size sweeps of the paper's figures: CPU figures sweep
/// 1024..16384; GPU figures sweep 4096..20480 in steps of 1024
/// (Appendix A launch scripts).
[[nodiscard]] std::vector<std::size_t> standard_sizes(Platform p);

/// One predicted point.
struct Prediction {
  double gflops = 0.0;        ///< modeled rate of the requested model
  double ref_gflops = 0.0;    ///< vendor reference rate at the same point
  double efficiency = 0.0;    ///< gflops / ref_gflops (Eq. 2)
  TimeBreakdown reference;    ///< decomposed vendor-reference prediction
};

/// Predict the modeled performance of (family, precision) on a platform
/// at matrix size n.  Returns std::nullopt for unsupported combinations.
[[nodiscard]] std::optional<Prediction> predict(Platform p, Family f, Precision prec,
                                                std::size_t n);

/// Predict a whole size sweep (standard sizes); unsupported combinations
/// yield an empty vector.
[[nodiscard]] std::vector<Prediction> predict_sweep(Platform p, Family f, Precision prec);

/// Access to the underlying machine models (ablation benches vary their
/// parameters directly).
[[nodiscard]] CpuMachineModel cpu_model_for(Platform p);
[[nodiscard]] GpuMachineModel gpu_model_for(Platform p);

}  // namespace portabench::perfmodel
