#include "predict.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace portabench::perfmodel {

std::vector<std::size_t> standard_sizes(Platform p) {
  std::vector<std::size_t> sizes;
  if (is_gpu(p)) {
    for (std::size_t n = 4096; n <= 20480; n += 1024) sizes.push_back(n);
  } else {
    for (std::size_t n = 1024; n <= 16384; n += 1024) sizes.push_back(n);
  }
  return sizes;
}

CpuMachineModel cpu_model_for(Platform p) {
  PB_EXPECTS(!is_gpu(p));
  if (p == Platform::kCrusherCpu) return CpuMachineModel(CpuSpec::epyc_7a53());
  return CpuMachineModel(CpuSpec::ampere_altra());
}

GpuMachineModel gpu_model_for(Platform p) {
  PB_EXPECTS(is_gpu(p));
  if (p == Platform::kCrusherGpu) return GpuMachineModel(GpuPerfSpec::mi250x_gcd());
  return GpuMachineModel(GpuPerfSpec::a100());
}

namespace {

/// Position of n within the standard sweep, in [0, 1].
double sweep_position(Platform p, std::size_t n) {
  const auto sizes = standard_sizes(p);
  const double lo = static_cast<double>(sizes.front());
  const double hi = static_cast<double>(sizes.back());
  return std::clamp((static_cast<double>(n) - lo) / (hi - lo), 0.0, 1.0);
}

/// Effective efficiency at size n: plateau value, linear sweep drift
/// (zero-mean), and the largest-size dip.
double efficiency_at(Platform p, const ModelTraits& t, std::size_t n) {
  const double pos = sweep_position(p, n);
  double eff = t.rel_eff * (1.0 + t.sweep_slope * (pos - 0.5));
  if (n >= standard_sizes(p).back()) eff *= t.largest_size_factor;
  return eff;
}

TimeBreakdown reference_breakdown(Platform p, Precision prec, std::size_t n) {
  if (is_gpu(p)) {
    return gpu_model_for(p).reference_time(prec, n);
  }
  const CpuMachineModel model = cpu_model_for(p);
  return model.reference_time(prec, n, model.spec().cores, simrt::BindPolicy::kClose);
}

}  // namespace

std::optional<Prediction> predict(Platform p, Family f, Precision prec, std::size_t n) {
  PB_EXPECTS(n > 0);
  const auto traits = traits_for(p, f, prec);
  if (!traits) return std::nullopt;

  // FP16: no vendor reference exists; anchor to the family's own FP32
  // curve and apply the calibrated FP16-vs-FP32 factor (Section IV).
  if (prec == Precision::kHalfIn) {
    auto fp32 = predict(p, f, Precision::kSingle, n);
    if (!fp32) return std::nullopt;
    Prediction out = *fp32;
    out.gflops = fp32->gflops * fp16_vs_fp32_factor(p, f);
    out.ref_gflops = fp32->ref_gflops;
    out.efficiency = out.gflops / out.ref_gflops;
    out.reference = reference_breakdown(p, Precision::kHalfIn, n);
    return out;
  }

  Prediction out;
  out.reference = reference_breakdown(p, prec, n);
  out.ref_gflops = out.reference.gflops;

  const double eff = efficiency_at(p, *traits, n);
  const double flops = gemm_flops(n, n, n);
  const double ref_time = out.reference.total_s;
  // Model time: reference scaled by efficiency plus the model's fixed
  // dispatch overhead.
  const double model_time = ref_time / eff + traits->overhead_us * 1.0e-6;
  out.gflops = gflops(flops, model_time);
  out.efficiency = out.gflops / out.ref_gflops;
  return out;
}

std::vector<Prediction> predict_sweep(Platform p, Family f, Precision prec) {
  std::vector<Prediction> out;
  for (std::size_t n : standard_sizes(p)) {
    auto pt = predict(p, f, prec, n);
    if (!pt) return {};
    out.push_back(*pt);
  }
  return out;
}

}  // namespace portabench::perfmodel
