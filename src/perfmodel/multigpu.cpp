#include "multigpu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace portabench::perfmodel {

namespace {

/// Effective per-device link bandwidth when `devices` stage concurrently:
/// each device has its own link, but all links drain the same host
/// memory, capping the aggregate at host_bw_gbs.
double contended_bw(const LinkSpec& link, std::size_t devices, double host_bw_gbs) {
  const double aggregate = std::min(link.bw_gbs * static_cast<double>(devices), host_bw_gbs);
  return aggregate / static_cast<double>(devices);
}

MultiGpuPoint make_point(std::size_t devices, double kernel_s, double transfer_s,
                         double base_total) {
  MultiGpuPoint p;
  p.devices = devices;
  p.kernel_s = kernel_s;
  p.transfer_s = transfer_s;
  p.total_s = kernel_s + transfer_s;
  p.speedup = base_total / p.total_s;
  p.efficiency = p.speedup / static_cast<double>(devices);
  return p;
}

}  // namespace

std::vector<MultiGpuPoint> strong_scaling_gemm(const GpuMachineModel& model,
                                               const LinkSpec& link, Precision prec,
                                               std::size_t n, std::size_t max_devices,
                                               double host_bw_gbs) {
  PB_EXPECTS(n > 0 && max_devices >= 1);
  std::vector<MultiGpuPoint> out;
  const double nn = static_cast<double>(n);
  const double in_b = static_cast<double>(input_bytes(prec));
  const double out_b = static_cast<double>(output_bytes(prec));

  double base_total = 0.0;
  for (std::size_t g = 1; g <= max_devices; ++g) {
    // Per-device block: m/G rows of A + all of B in, m/G rows of C out.
    const double rows = nn / static_cast<double>(g);
    const double bytes_in = rows * nn * in_b + nn * nn * in_b;  // A block + full B
    const double bytes_out = rows * nn * out_b;
    const double bw = contended_bw(link, g, host_bw_gbs);
    const double transfer =
        link.latency_us * 1.0e-6 + (bytes_in + bytes_out) / (bw * 1.0e9);

    // Per-device kernel: an (n/G) x n x n GEMM.  Approximate its time by
    // scaling the full kernel's FLOP share while keeping the full kernel's
    // rate at this n (the row partition keeps the inner dimensions).
    const double full_kernel = model.reference_time(prec, n).total_s;
    const double kernel = full_kernel / static_cast<double>(g);

    if (g == 1) base_total = kernel + transfer;
    out.push_back(make_point(g, kernel, transfer, base_total));
  }
  return out;
}

std::vector<MultiGpuPoint> weak_scaling_gemm(const GpuMachineModel& model,
                                             const LinkSpec& link, Precision prec,
                                             std::size_t n, std::size_t max_devices,
                                             double host_bw_gbs) {
  PB_EXPECTS(n > 0 && max_devices >= 1);
  std::vector<MultiGpuPoint> out;
  const double nn = static_cast<double>(n);
  const double bytes_in = 2.0 * nn * nn * static_cast<double>(input_bytes(prec));
  const double bytes_out = nn * nn * static_cast<double>(output_bytes(prec));
  const double kernel = model.reference_time(prec, n).total_s;

  double base_total = 0.0;
  for (std::size_t g = 1; g <= max_devices; ++g) {
    const double bw = contended_bw(link, g, host_bw_gbs);
    const double transfer =
        link.latency_us * 1.0e-6 + (bytes_in + bytes_out) / (bw * 1.0e9);
    if (g == 1) base_total = kernel + transfer;
    // Weak scaling: throughput metric — speedup counts problems solved.
    MultiGpuPoint p = make_point(g, kernel, transfer, base_total);
    p.speedup = static_cast<double>(g) * base_total / p.total_s;
    p.efficiency = p.speedup / static_cast<double>(g);
    out.push_back(p);
  }
  return out;
}

NodeShape NodeShape::crusher(std::size_t devices) {
  NodeShape s;
  s.devices = devices;
  s.numa_domains = 4;
  return s;  // link terms default to the Crusher numbers
}

NodeShape NodeShape::wombat(std::size_t devices) {
  NodeShape s;
  s.devices = devices;
  s.numa_domains = 1;
  // PCIe4 x16-class links both ways; no near/far D2D asymmetry.
  s.h2d_local = {16.0, 5.0};
  s.h2d_remote = {16.0, 5.0};
  s.d2d_near = {16.0, 5.0};
  s.d2d_far = {16.0, 5.0};
  s.host_bw_gbs = 150.0;
  return s;
}

std::vector<ShardedPipelinePoint> sharded_pipeline_gemm(const GpuMachineModel& model,
                                                        const NodeShape& shape,
                                                        Precision prec,
                                                        const ShardedGemmParams& params,
                                                        std::size_t max_devices) {
  PB_EXPECTS(params.n > 0 && params.panel_rows > 0 && max_devices >= 1);
  const double nn = static_cast<double>(params.n);
  const double in_b = static_cast<double>(input_bytes(prec));
  const double out_b = static_cast<double>(output_bytes(prec));
  // Panel kernel time scales the full n^3 kernel by its row share: the
  // row partition keeps both inner dimensions, so the per-row rate holds.
  const double full_kernel = model.reference_time(prec, params.n).total_s;

  std::vector<ShardedPipelinePoint> out;
  double base_total = 0.0;
  for (std::size_t g = 1; g <= max_devices; ++g) {
    NodeShape node = shape;
    node.devices = g;  // the domain map follows the swept device count

    ShardedPipelinePoint p;
    p.devices = g;
    // Host-link contention: every device stages concurrently during the
    // fill, so scale each link's bandwidth by the aggregate ceiling.
    double aggregate = 0.0;
    for (std::size_t d = 0; d < g; ++d) {
      const std::size_t dom = params.numa_aware_staging ? node.numa_domain_of(d) : 0;
      aggregate += node.h2d(d, dom).bw_gbs;
    }
    const double share = aggregate > node.host_bw_gbs ? node.host_bw_gbs / aggregate : 1.0;

    double makespan = 0.0;
    for (std::size_t d = 0; d < g; ++d) {
      // Same near-even contiguous deal the sharded driver uses.
      const std::size_t lo = d * params.n / g;
      const std::size_t hi = (d + 1) * params.n / g;
      const std::size_t rows = hi - lo;
      if (rows == 0) continue;
      const std::size_t panels = (rows + params.panel_rows - 1) / params.panel_rows;

      const std::size_t dom = params.numa_aware_staging ? node.numa_domain_of(d) : 0;
      if (dom != node.numa_domain_of(d)) ++p.remote_devices;
      LinkTerm link = node.h2d(d, dom);
      link.bw_gbs *= share;

      const double rows_per_panel = static_cast<double>(rows) / static_cast<double>(panels);
      const double h2d_panel = link.seconds(rows_per_panel * nn * in_b);
      const double d2h_panel = link.seconds(rows_per_panel * nn * out_b);
      const double kernel_panel = full_kernel * rows_per_panel / nn;
      const double broadcast = link.seconds(nn * nn * in_b);  // full B once

      const double kernel_d = kernel_panel * static_cast<double>(panels);
      const double xfer_d = (h2d_panel + d2h_panel) * static_cast<double>(panels);
      double total_d;
      if (params.overlap) {
        // Double-buffered: fill with the first panel's upload, steady
        // state runs at max(kernel, transfers) per panel, drain with the
        // last panel's download.
        total_d = broadcast + h2d_panel +
                  std::max(kernel_panel, h2d_panel + d2h_panel) *
                      static_cast<double>(panels - 1) +
                  kernel_panel + d2h_panel;
      } else {
        total_d = broadcast + kernel_d + xfer_d;
      }

      p.broadcast_s = std::max(p.broadcast_s, broadcast);
      p.kernel_s = std::max(p.kernel_s, kernel_d);
      p.transfer_s = std::max(p.transfer_s, xfer_d);
      makespan = std::max(makespan, total_d);
    }

    p.total_s = makespan;
    if (g == 1) base_total = makespan;
    p.speedup = base_total / p.total_s;
    p.efficiency = p.speedup / static_cast<double>(g);
    out.push_back(p);
  }
  return out;
}

bool ranks_agree(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  // Identical ranking <=> no discordant pair; ties in either accept both
  // orders, so only strict inversions count.
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      if ((a[i] < a[j] && b[i] > b[j]) || (a[i] > a[j] && b[i] < b[j])) return false;
    }
  }
  return true;
}

}  // namespace portabench::perfmodel
