#include "multigpu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace portabench::perfmodel {

namespace {

/// Effective per-device link bandwidth when `devices` stage concurrently:
/// each device has its own link, but all links drain the same host
/// memory, capping the aggregate at host_bw_gbs.
double contended_bw(const LinkSpec& link, std::size_t devices, double host_bw_gbs) {
  const double aggregate = std::min(link.bw_gbs * static_cast<double>(devices), host_bw_gbs);
  return aggregate / static_cast<double>(devices);
}

MultiGpuPoint make_point(std::size_t devices, double kernel_s, double transfer_s,
                         double base_total) {
  MultiGpuPoint p;
  p.devices = devices;
  p.kernel_s = kernel_s;
  p.transfer_s = transfer_s;
  p.total_s = kernel_s + transfer_s;
  p.speedup = base_total / p.total_s;
  p.efficiency = p.speedup / static_cast<double>(devices);
  return p;
}

}  // namespace

std::vector<MultiGpuPoint> strong_scaling_gemm(const GpuMachineModel& model,
                                               const LinkSpec& link, Precision prec,
                                               std::size_t n, std::size_t max_devices,
                                               double host_bw_gbs) {
  PB_EXPECTS(n > 0 && max_devices >= 1);
  std::vector<MultiGpuPoint> out;
  const double nn = static_cast<double>(n);
  const double in_b = static_cast<double>(input_bytes(prec));
  const double out_b = static_cast<double>(output_bytes(prec));

  double base_total = 0.0;
  for (std::size_t g = 1; g <= max_devices; ++g) {
    // Per-device block: m/G rows of A + all of B in, m/G rows of C out.
    const double rows = nn / static_cast<double>(g);
    const double bytes_in = rows * nn * in_b + nn * nn * in_b;  // A block + full B
    const double bytes_out = rows * nn * out_b;
    const double bw = contended_bw(link, g, host_bw_gbs);
    const double transfer =
        link.latency_us * 1.0e-6 + (bytes_in + bytes_out) / (bw * 1.0e9);

    // Per-device kernel: an (n/G) x n x n GEMM.  Approximate its time by
    // scaling the full kernel's FLOP share while keeping the full kernel's
    // rate at this n (the row partition keeps the inner dimensions).
    const double full_kernel = model.reference_time(prec, n).total_s;
    const double kernel = full_kernel / static_cast<double>(g);

    if (g == 1) base_total = kernel + transfer;
    out.push_back(make_point(g, kernel, transfer, base_total));
  }
  return out;
}

std::vector<MultiGpuPoint> weak_scaling_gemm(const GpuMachineModel& model,
                                             const LinkSpec& link, Precision prec,
                                             std::size_t n, std::size_t max_devices,
                                             double host_bw_gbs) {
  PB_EXPECTS(n > 0 && max_devices >= 1);
  std::vector<MultiGpuPoint> out;
  const double nn = static_cast<double>(n);
  const double bytes_in = 2.0 * nn * nn * static_cast<double>(input_bytes(prec));
  const double bytes_out = nn * nn * static_cast<double>(output_bytes(prec));
  const double kernel = model.reference_time(prec, n).total_s;

  double base_total = 0.0;
  for (std::size_t g = 1; g <= max_devices; ++g) {
    const double bw = contended_bw(link, g, host_bw_gbs);
    const double transfer =
        link.latency_us * 1.0e-6 + (bytes_in + bytes_out) / (bw * 1.0e9);
    if (g == 1) base_total = kernel + transfer;
    // Weak scaling: throughput metric — speedup counts problems solved.
    MultiGpuPoint p = make_point(g, kernel, transfer, base_total);
    p.speedup = static_cast<double>(g) * base_total / p.total_s;
    p.efficiency = p.speedup / static_cast<double>(g);
    out.push_back(p);
  }
  return out;
}

}  // namespace portabench::perfmodel
