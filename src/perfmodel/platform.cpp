#include "platform.hpp"

namespace portabench::perfmodel {

std::string_view implementation_name(Platform p, Family f) {
  switch (f) {
    case Family::kVendor:
      switch (p) {
        case Platform::kCrusherCpu:
        case Platform::kWombatCpu: return "C/OpenMP";
        case Platform::kCrusherGpu: return "HIP";
        case Platform::kWombatGpu: return "CUDA";
      }
      break;
    case Family::kKokkos:
      switch (p) {
        case Platform::kCrusherCpu:
        case Platform::kWombatCpu: return "Kokkos/OpenMP";
        case Platform::kCrusherGpu: return "Kokkos/HIP";
        case Platform::kWombatGpu: return "Kokkos/CUDA";
      }
      break;
    case Family::kJulia:
      switch (p) {
        case Platform::kCrusherCpu:
        case Platform::kWombatCpu: return "Julia Threads";
        case Platform::kCrusherGpu: return "Julia AMDGPU.jl";
        case Platform::kWombatGpu: return "Julia CUDA.jl";
      }
      break;
    case Family::kNumba:
      switch (p) {
        case Platform::kCrusherCpu:
        case Platform::kWombatCpu: return "Python/Numba";
        case Platform::kCrusherGpu: return "Python/Numba (unsupported)";
        case Platform::kWombatGpu: return "Numba CUDA";
      }
      break;
  }
  return "?";
}

bool supported(Platform p, Family f, Precision prec) {
  // Numba's AMD GPU target is deprecated (Section II-a, footnote 3).
  if (f == Family::kNumba && p == Platform::kCrusherGpu) return false;

  if (prec == Precision::kHalfIn) {
    // Half precision (Section IV): seamless in Julia on every platform
    // (low performance on AMD CPUs, but it runs); available in
    // Python/Numba with the matrices-of-ones workaround on CPU and on
    // NVIDIA GPUs; not provided by the vendor C kernels or Kokkos in the
    // paper's setup.
    switch (f) {
      case Family::kJulia: return true;
      case Family::kNumba: return p != Platform::kCrusherGpu;
      case Family::kVendor:
      case Family::kKokkos: return false;
    }
  }
  return true;
}

std::vector<Family> figure_families(Platform p, Precision prec) {
  std::vector<Family> out;
  for (Family f : kAllFamilies) {
    if (supported(p, f, prec)) out.push_back(f);
  }
  return out;
}

}  // namespace portabench::perfmodel
