#include "codegen.hpp"

#include <algorithm>

namespace portabench::perfmodel {

CodegenProfile CodegenProfile::vendor_cpu(const CpuSpec& cpu) {
  return {4, cpu.simd_bits, false, true, true};
}

CodegenProfile CodegenProfile::julia_cpu(const CpuSpec& cpu) {
  // @inbounds + @threads: LLVM vectorizes the stride-1 axpy loop fully;
  // Julia does not apply -ffast-math globally but the accumulation here
  // is independent per element, so contraction suffices.
  return {4, cpu.simd_bits, false, true, false};
}

CodegenProfile CodegenProfile::numba_cpu(const CpuSpec& cpu) {
  // fastmath=True is set in the decorator (Fig. 2d), but Numba 0.55 keeps
  // numpy's checked indexing on the fallback paths and vectorizes at
  // reduced width on this loop shape.
  return {2, cpu.simd_bits / 2, true, true, true};
}

CodegenProfile CodegenProfile::vendor_gpu() { return {4, 0, false, true, true}; }

CodegenProfile CodegenProfile::julia_gpu() {
  // The Section IV-B PTX observation: 2 unrolled iterations vs 4.
  return {2, 0, false, true, true};
}

CodegenProfile CodegenProfile::numba_gpu() { return {1, 0, true, true, true}; }

double cpu_inner_loop_efficiency(const CodegenProfile& profile, const CpuSpec& cpu) {
  // Vector width: fraction of the machine's SIMD lanes actually used.
  const double vec = profile.vector_bits == 0
                         ? 1.0 / (static_cast<double>(cpu.simd_bits) / 64.0)
                         : std::min(1.0, static_cast<double>(profile.vector_bits) /
                                             static_cast<double>(cpu.simd_bits));
  // Bounds checks insert a compare+branch per access: ~35% on this
  // 3-load/1-store loop (empirically what `--check-bounds=yes` costs
  // Julia on axpy-like loops).
  const double checks = profile.bounds_checked ? 0.65 : 1.0;
  // Without FMA contraction the mul and add issue separately.
  const double fma = profile.fma_contraction ? 1.0 : 0.55;
  // Unroll hides load latency; below 2 chains the FMA pipe starves.
  const double unroll = profile.unroll >= 4 ? 1.0 : (profile.unroll >= 2 ? 0.92 : 0.75);
  return vec * checks * fma * unroll;
}

double gpu_inner_loop_efficiency(const CodegenProfile& profile) {
  // Dependent-FMA pipeline model: a fraction alpha of issue slots is
  // covered by other warps (memory-latency hiding); the exposed fraction
  // needs `kLatencyChains` independent chains to saturate.
  constexpr double kAlpha = 0.734;
  constexpr double kLatencyChains = 4.0;
  const double chains = std::max(1, profile.unroll);
  const double pipeline = kAlpha + (1.0 - kAlpha) * std::min(1.0, chains / kLatencyChains);
  const double checks = profile.bounds_checked ? 0.80 : 1.0;  // predicated, cheaper than CPU
  return pipeline * checks;
}

double julia_a100_unroll_ratio() {
  return gpu_inner_loop_efficiency(CodegenProfile::julia_gpu()) /
         gpu_inner_loop_efficiency(CodegenProfile::vendor_gpu());
}

}  // namespace portabench::perfmodel
