#include "interconnect.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace portabench::perfmodel {

LinkSpec LinkSpec::pcie4_x16() {
  LinkSpec l;
  l.name = "PCIe 4.0 x16";
  l.bw_gbs = 26.0;  // sustained (of 32 theoretical)
  l.latency_us = 6.0;
  l.duplex = true;
  return l;
}

LinkSpec LinkSpec::infinity_fabric() {
  LinkSpec l;
  l.name = "Infinity Fabric (CPU-GCD)";
  l.bw_gbs = 36.0;
  l.latency_us = 4.0;
  l.duplex = true;
  return l;
}

EndToEndTime end_to_end_gemm(const GpuMachineModel& model, const LinkSpec& link,
                             Precision prec, std::size_t n, std::size_t batches) {
  PB_EXPECTS(n > 0 && batches >= 1);
  EndToEndTime t;
  const double nn = static_cast<double>(n);
  const double in_bytes = 2.0 * nn * nn * static_cast<double>(input_bytes(prec));  // A + B
  const double out_bytes = nn * nn * static_cast<double>(output_bytes(prec));      // C

  t.h2d_s = link.transfer_seconds(in_bytes);
  t.d2h_s = link.transfer_seconds(out_bytes);
  t.kernel_s = model.reference_time(prec, n).total_s;

  const double b = static_cast<double>(batches);
  t.serial_s = b * (t.h2d_s + t.kernel_s + t.d2h_s);

  // Double-buffered pipeline: steady state is limited by the slowest
  // stage; fill/drain add one leading H2D and one trailing D2H.  On a
  // half-duplex link H2D and D2H share the wire and serialize.
  const double stage_xfer = link.duplex ? std::max(t.h2d_s, t.d2h_s) : t.h2d_s + t.d2h_s;
  const double bottleneck = std::max(t.kernel_s, stage_xfer);
  t.overlapped_s = t.h2d_s + b * bottleneck + t.d2h_s;
  // Pipelining can never lose to the serial schedule.
  t.overlapped_s = std::min(t.overlapped_s, t.serial_s);
  return t;
}

}  // namespace portabench::perfmodel
