// Calibrated programming-model traits.
//
// Each (platform, family, precision) combination carries the parameters
// that transform the vendor-reference curve of machine_model.hpp into the
// portable model's curve.  The plateau efficiency values are calibrated
// against Table III of the paper; the shape parameters encode the
// qualitative observations of Section IV (constant overheads, the Kokkos
// MI250X largest-size dip, the declining Kokkos FP32 trend, ...).  Every
// value is documented against the paper sentence that motivates it in
// calibration.cpp.
#pragma once

#include <optional>

#include "common/precision.hpp"
#include "platform.hpp"
#include "simrt/affinity.hpp"

namespace portabench::perfmodel {

struct ModelTraits {
  /// Plateau efficiency vs. the vendor reference (Eq. 2 ratio).  1.0 for
  /// the vendor model itself.
  double rel_eff = 1.0;

  /// Fixed per-invocation dispatch overhead (JIT-warmed; the warm-up
  /// repetitions of Section IV have already absorbed compilation).
  double overhead_us = 0.0;

  /// Linear efficiency drift across the standard size sweep, expressed as
  /// the total relative change from the first to the last sweep point,
  /// centred so the sweep mean stays at rel_eff (e.g. -0.4 means the
  /// efficiency falls from rel_eff*1.2 to rel_eff*0.8 across the sweep).
  double sweep_slope = 0.0;

  /// Extra multiplier applied only at the largest sweep size (models the
  /// "repeatable slowdown at the largest size" of Kokkos/HIP FP64).
  double largest_size_factor = 1.0;

  /// Thread binding the model can express (CPU platforms): OpenMP and
  /// Julia pin; Numba cannot (Section III-A).  Informs the NUMA ablation.
  simrt::BindPolicy bind = simrt::BindPolicy::kClose;

  /// Unrolled inner-loop factor observed in generated code (Section IV-B:
  /// PTX shows 2 for CUDA.jl vs 4 for native CUDA on the A100).
  // portalint: tn-magic-tile-ok(observed vendor PTX unroll, Section IV-B; a modeled fact, not a knob)
  int unroll = 4;

  /// Paper sentence or table cell motivating these values.
  const char* provenance = "";
};

/// Look up the calibrated traits.  Returns std::nullopt when the paper's
/// support matrix says the combination cannot run (Numba on AMD GPUs,
/// FP16 outside Julia/Numba).
[[nodiscard]] std::optional<ModelTraits> traits_for(Platform p, Family f, Precision prec);

/// For FP16 the paper has no vendor reference; model curves are anchored
/// to the same family's FP32 curve instead.  This returns the calibrated
/// FP16-vs-own-FP32 factor (Section IV: "no performance gains over the
/// single-precision counterparts" on GPUs; native-FP16 speedup on Arm;
/// "very low performance" on AMD CPUs).
[[nodiscard]] double fp16_vs_fp32_factor(Platform p, Family f);

}  // namespace portabench::perfmodel
