// Platform / programming-model taxonomy of the study.
//
// Four hardware targets (Table I/II) x four portable-model families, with
// the vendor-specific model (C/OpenMP on CPUs, CUDA/HIP on GPUs) as the
// efficiency reference of Eq. (2).  The support() predicate encodes the
// paper's compatibility matrix, including Numba's deprecated AMD GPU
// support and the half-precision caveats of Sections IV-A/IV-B.
#pragma once

#include <string_view>
#include <vector>

#include "common/precision.hpp"

namespace portabench::perfmodel {

/// The four single-node targets of Tables I and II.
enum class Platform {
  kCrusherCpu,  ///< AMD EPYC 7A53, 64 cores, 4 NUMA domains
  kWombatCpu,   ///< Ampere Altra (Arm Neoverse), 80 cores, 1 NUMA domain
  kCrusherGpu,  ///< AMD MI250X (one GCD)
  kWombatGpu,   ///< NVIDIA A100
};

/// Programming-model family.  kVendor is the architecture-specific
/// reference: C/OpenMP on CPU platforms, CUDA on NVIDIA, HIP on AMD.
enum class Family {
  kVendor,
  kKokkos,
  kJulia,
  kNumba,
};

inline constexpr Platform kAllPlatforms[] = {Platform::kCrusherCpu, Platform::kWombatCpu,
                                             Platform::kCrusherGpu, Platform::kWombatGpu};
inline constexpr Family kAllFamilies[] = {Family::kVendor, Family::kKokkos, Family::kJulia,
                                          Family::kNumba};
inline constexpr Family kPortableFamilies[] = {Family::kKokkos, Family::kJulia, Family::kNumba};

[[nodiscard]] constexpr bool is_gpu(Platform p) noexcept {
  return p == Platform::kCrusherGpu || p == Platform::kWombatGpu;
}

[[nodiscard]] constexpr std::string_view name(Platform p) noexcept {
  switch (p) {
    case Platform::kCrusherCpu: return "Crusher EPYC 7A53";
    case Platform::kWombatCpu: return "Wombat Ampere Altra";
    case Platform::kCrusherGpu: return "Crusher MI250X";
    case Platform::kWombatGpu: return "Wombat A100";
  }
  return "?";
}

/// Short architecture label as used in Table III rows (e_{...}).
[[nodiscard]] constexpr std::string_view arch_label(Platform p) noexcept {
  switch (p) {
    case Platform::kCrusherCpu: return "Epyc 7A53";
    case Platform::kWombatCpu: return "Ampere Altra";
    case Platform::kCrusherGpu: return "MI250x";
    case Platform::kWombatGpu: return "A100";
  }
  return "?";
}

/// Family name in the abstract sense ("Kokkos", "Julia", ...).
[[nodiscard]] constexpr std::string_view name(Family f) noexcept {
  switch (f) {
    case Family::kVendor: return "Vendor";
    case Family::kKokkos: return "Kokkos";
    case Family::kJulia: return "Julia";
    case Family::kNumba: return "Python/Numba";
  }
  return "?";
}

/// Concrete implementation name of a family on a platform, e.g.
/// (kJulia, kCrusherGpu) -> "Julia AMDGPU.jl", (kVendor, kWombatGpu) ->
/// "CUDA".  Returns the paper's Figs. 4-7 legend strings.
[[nodiscard]] std::string_view implementation_name(Platform p, Family f);

/// True when the paper ran (or could run) this combination.  Numba has no
/// AMD GPU path; FP16 is Julia-only on GPUs plus Numba-CUDA on A100, and
/// Julia/Numba on CPUs (vendor C and Kokkos have no seamless FP16 story,
/// Section IV).
[[nodiscard]] bool supported(Platform p, Family f, Precision prec);

/// Platforms, in figure order, with the families each figure plots.
[[nodiscard]] std::vector<Family> figure_families(Platform p, Precision prec);

}  // namespace portabench::perfmodel
