#include "paper_data.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "predict.hpp"

namespace portabench::perfmodel {

namespace {

struct Cell {
  Family family;
  Precision precision;
  Platform platform;
  double value;
};

// Table III of the paper, verbatim.
constexpr Cell kTable3[] = {
    // Double precision.
    {Family::kKokkos, Precision::kDouble, Platform::kCrusherCpu, 0.994},
    {Family::kKokkos, Precision::kDouble, Platform::kWombatCpu, 0.854},
    {Family::kKokkos, Precision::kDouble, Platform::kCrusherGpu, 0.842},
    {Family::kKokkos, Precision::kDouble, Platform::kWombatGpu, 0.260},
    {Family::kJulia, Precision::kDouble, Platform::kCrusherCpu, 0.912},
    {Family::kJulia, Precision::kDouble, Platform::kWombatCpu, 0.907},
    {Family::kJulia, Precision::kDouble, Platform::kCrusherGpu, 0.903},
    {Family::kJulia, Precision::kDouble, Platform::kWombatGpu, 0.867},
    {Family::kNumba, Precision::kDouble, Platform::kCrusherCpu, 0.550},
    {Family::kNumba, Precision::kDouble, Platform::kWombatCpu, 0.713},
    {Family::kNumba, Precision::kDouble, Platform::kWombatGpu, 0.130},
    // Single precision.
    {Family::kKokkos, Precision::kSingle, Platform::kCrusherCpu, 1.014},
    {Family::kKokkos, Precision::kSingle, Platform::kWombatCpu, 0.836},
    {Family::kKokkos, Precision::kSingle, Platform::kCrusherGpu, 0.677},
    {Family::kKokkos, Precision::kSingle, Platform::kWombatGpu, 0.208},
    {Family::kJulia, Precision::kSingle, Platform::kCrusherCpu, 0.976},
    {Family::kJulia, Precision::kSingle, Platform::kWombatCpu, 0.900},
    {Family::kJulia, Precision::kSingle, Platform::kCrusherGpu, 1.050},
    {Family::kJulia, Precision::kSingle, Platform::kWombatGpu, 0.600},
    {Family::kNumba, Precision::kSingle, Platform::kCrusherCpu, 0.655},
    {Family::kNumba, Precision::kSingle, Platform::kWombatCpu, 0.400},
    {Family::kNumba, Precision::kSingle, Platform::kWombatGpu, 0.095},
};

struct PhiRow {
  Family family;
  Precision precision;
  double value;
};

constexpr PhiRow kPhi[] = {
    {Family::kKokkos, Precision::kDouble, 0.738}, {Family::kJulia, Precision::kDouble, 0.897},
    {Family::kNumba, Precision::kDouble, 0.348},  {Family::kKokkos, Precision::kSingle, 0.684},
    {Family::kJulia, Precision::kSingle, 0.882},  {Family::kNumba, Precision::kSingle, 0.288},
};

}  // namespace

std::optional<double> paper_table3_efficiency(Family f, Precision prec, Platform p) {
  for (const auto& cell : kTable3) {
    if (cell.family == f && cell.precision == prec && cell.platform == p) return cell.value;
  }
  return std::nullopt;
}

double paper_table3_phi(Family f, Precision prec) {
  for (const auto& row : kPhi) {
    if (row.family == f && row.precision == prec) return row.value;
  }
  return 0.0;
}

std::vector<Deviation> table3_deviation_report() {
  std::vector<Deviation> out;
  for (const auto& cell : kTable3) {
    const auto model = predict_sweep(cell.platform, cell.family, cell.precision);
    const auto vendor = predict_sweep(cell.platform, Family::kVendor, cell.precision);
    if (model.empty() || vendor.empty()) continue;
    std::vector<double> eff;
    for (std::size_t i = 0; i < model.size(); ++i) {
      eff.push_back(model[i].gflops / vendor[i].gflops);
    }
    out.push_back({cell.family, cell.precision, cell.platform, cell.value, mean_of(eff)});
  }
  std::sort(out.begin(), out.end(),
            [](const Deviation& a, const Deviation& b) { return a.abs_error() > b.abs_error(); });
  return out;
}

}  // namespace portabench::perfmodel
