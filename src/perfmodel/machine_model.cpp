#include "machine_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace portabench::perfmodel {

namespace {

/// NUMA bandwidth derate: remote accesses deliver roughly half the local
/// bandwidth on Zen-3-class fabrics, so effective bandwidth scales by
/// (1 - remote_fraction / 2).
double numa_bw_factor(const CpuSpec& spec, simrt::BindPolicy bind, std::size_t threads) {
  const simrt::CpuTopology topo = spec.topology();
  const simrt::Placement placement = simrt::compute_placement(topo, threads, bind);
  const double remote = simrt::remote_access_fraction(topo, placement);
  return 1.0 - 0.5 * remote;
}

}  // namespace

double CpuMachineModel::dram_traffic_bytes(Precision prec, std::size_t n,
                                           std::size_t threads) const {
  PB_EXPECTS(n > 0 && threads > 0);
  const double nn = static_cast<double>(n);
  const double in_b = static_cast<double>(input_bytes(prec));
  const double out_b = static_cast<double>(output_bytes(prec));

  // Compulsory traffic: read A and B once, write C once (C is also read
  // because the kernels accumulate, hence the factor 2 on out_b).
  const double compulsory = nn * nn * (2.0 * in_b + 2.0 * out_b);

  // B panel re-streaming: the i-parallel kernels walk all of B once per
  // round of `threads` concurrent output rows; only the share of B that
  // does not fit in the shared LLC hits DRAM again.
  const double b_bytes = nn * nn * in_b;
  const double uncached = std::clamp(1.0 - spec_.l3_bytes / b_bytes, 0.0, 1.0);
  const double rounds = std::max(1.0, nn / static_cast<double>(threads) - 1.0);
  const double restream = b_bytes * uncached * rounds;

  return compulsory + restream;
}

double CpuMachineModel::utilization(std::size_t n, std::size_t threads) const {
  PB_EXPECTS(threads > 0);
  const double rows_per_thread =
      static_cast<double>(n) / static_cast<double>(threads);
  if (rows_per_thread >= 4.0) return 1.0;
  if (rows_per_thread <= 0.0) return 1.0 / static_cast<double>(threads);
  // Between 0 and 4 rows/thread, imbalance costs up to the ceil/floor gap.
  const double busy = std::min(1.0, rows_per_thread);
  return busy * (0.75 + 0.25 * rows_per_thread / 4.0);
}

TimeBreakdown CpuMachineModel::reference_time(Precision prec, std::size_t n,
                                              std::size_t threads,
                                              simrt::BindPolicy bind) const {
  PB_EXPECTS(n > 0 && threads > 0);
  TimeBreakdown out;
  const double flops = gemm_flops(n, n, n);

  const double rate =
      spec_.peak_gflops(prec) * 1.0e9 * compute_eff_ * utilization(n, threads) *
      (static_cast<double>(threads) / static_cast<double>(spec_.cores));
  out.compute_s = flops / rate;

  out.dram_bytes = dram_traffic_bytes(prec, n, threads);
  const double bw =
      spec_.mem_bw_gbs * 1.0e9 * bw_eff_ * numa_bw_factor(spec_, bind, threads);
  out.memory_s = out.dram_bytes / bw;

  out.overhead_s = spec_.fork_join_us * 1.0e-6;
  out.memory_bound = out.memory_s > out.compute_s;
  out.total_s = std::max(out.compute_s, out.memory_s) + out.overhead_s;
  out.gflops = gflops(flops, out.total_s);
  return out;
}

double GpuMachineModel::dram_traffic_bytes(Precision prec, std::size_t n,
                                           std::size_t tile) const {
  PB_EXPECTS(n > 0 && tile > 0);
  const double nn = static_cast<double>(n);
  const double in_b = static_cast<double>(input_bytes(prec));
  const double out_b = static_cast<double>(output_bytes(prec));
  const double tiles_per_side = std::ceil(nn / static_cast<double>(tile));

  // Per output tile: tile rows of A (length n) + tile columns of B
  // (length n).  Tile-to-tile reuse through L2 is limited; we model the
  // A panel as L2-resident across a row of tiles (it is read by every
  // tile in that row back-to-back) when it fits.
  const double a_panel_bytes = static_cast<double>(tile) * nn * in_b;
  const double a_reuse = (a_panel_bytes <= spec_.l2_bytes) ? tiles_per_side : 1.0;
  const double a_traffic = tiles_per_side * tiles_per_side * a_panel_bytes / a_reuse;
  const double b_traffic = tiles_per_side * tiles_per_side * static_cast<double>(tile) * nn * in_b;
  const double c_traffic = nn * nn * out_b;
  return a_traffic + b_traffic + c_traffic;
}

TimeBreakdown GpuMachineModel::reference_time(Precision prec, std::size_t n,
                                              std::size_t tile) const {
  PB_EXPECTS(n > 0 && tile > 0);
  TimeBreakdown out;
  const double flops = gemm_flops(n, n, n);

  out.compute_s = flops / (spec_.peak_gflops(prec) * 1.0e9 * compute_eff_);
  out.dram_bytes = dram_traffic_bytes(prec, n, tile);
  out.memory_s = out.dram_bytes / (spec_.mem_bw_gbs * 1.0e9 * bw_eff_);

  // Wave quantization: few-block grids underfill the device.
  const double tiles = std::ceil(static_cast<double>(n) / static_cast<double>(tile));
  const double blocks = tiles * tiles;
  const double fill = std::min(1.0, blocks / static_cast<double>(spec_.sm_count));
  out.compute_s /= fill;

  out.overhead_s = spec_.launch_latency_us * 1.0e-6;
  out.memory_bound = out.memory_s > out.compute_s;
  out.total_s = std::max(out.compute_s, out.memory_s) + out.overhead_s;
  out.gflops = gflops(flops, out.total_s);
  return out;
}

}  // namespace portabench::perfmodel
