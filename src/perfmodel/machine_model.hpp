// Analytical machine model for the naive GEMM kernels.
//
// Produces the *vendor-reference* GFLOPS-vs-size curves (C/OpenMP on CPUs,
// CUDA/HIP on GPUs) from first principles: a roofline of peak FLOP rate
// vs. cache-aware DRAM traffic, plus fork-join / kernel-launch overheads
// and a small-problem utilization term.  Portable-model curves are then
// derived from these references through the calibrated ModelTraits
// (traits.hpp), mirroring how the paper reports portable models as
// efficiencies against the vendor implementation (Eq. 2).
#pragma once

#include <cstddef>

#include "common/precision.hpp"
#include "device_specs.hpp"
#include "simrt/affinity.hpp"

namespace portabench::perfmodel {

/// Decomposed prediction for one GEMM execution.
struct TimeBreakdown {
  double compute_s = 0.0;   ///< FLOP-limited time
  double memory_s = 0.0;    ///< DRAM-traffic-limited time
  double overhead_s = 0.0;  ///< fork-join / launch latency
  double total_s = 0.0;     ///< max(compute, memory) + overhead
  bool memory_bound = false;
  double gflops = 0.0;      ///< 2 n^3 / total
  double dram_bytes = 0.0;  ///< modeled DRAM traffic
};

/// Model of a CPU platform running the multithreaded naive GEMM of
/// Fig. 2 with the vendor C/OpenMP implementation.
class CpuMachineModel {
 public:
  /// @param kernel_compute_eff fraction of SIMD peak the vendor-compiled
  ///        naive axpy inner loop sustains (vectorized but untiled).
  /// @param kernel_bw_eff achieved fraction of STREAM bandwidth.
  CpuMachineModel(CpuSpec spec, double kernel_compute_eff = 0.55,
                  double kernel_bw_eff = 0.75)
      : spec_(std::move(spec)),
        compute_eff_(kernel_compute_eff),
        bw_eff_(kernel_bw_eff) {}

  [[nodiscard]] const CpuSpec& spec() const noexcept { return spec_; }

  /// Modeled DRAM traffic (bytes) of an n^3 GEMM: compulsory 3 n^2 plus
  /// the un-cached share of B re-streamed once per round of `threads`
  /// output rows (threads progressing together share the B stream through
  /// the common last-level cache).
  [[nodiscard]] double dram_traffic_bytes(Precision prec, std::size_t n,
                                          std::size_t threads) const;

  /// Fraction of the thread team with useful work: row-parallel GEMM only
  /// feeds min(n, threads) threads, and very small per-thread slices lose
  /// additional efficiency to load imbalance.
  [[nodiscard]] double utilization(std::size_t n, std::size_t threads) const;

  /// Vendor-reference execution time at `threads` threads under `bind`.
  [[nodiscard]] TimeBreakdown reference_time(Precision prec, std::size_t n,
                                             std::size_t threads,
                                             simrt::BindPolicy bind) const;

 private:
  CpuSpec spec_;
  double compute_eff_;
  double bw_eff_;
};

/// Model of a GPU platform running the fine-granularity naive GEMM of
/// Fig. 3 (one thread per C element, 32x32 blocks) with the vendor
/// CUDA/HIP implementation.
class GpuMachineModel {
 public:
  GpuMachineModel(GpuPerfSpec spec, double kernel_compute_eff = 0.45,
                  double kernel_bw_eff = 0.85)
      : spec_(std::move(spec)),
        compute_eff_(kernel_compute_eff),
        bw_eff_(kernel_bw_eff) {}

  [[nodiscard]] const GpuPerfSpec& spec() const noexcept { return spec_; }

  /// Modeled DRAM traffic: per 32x32 output tile the block reads 32 rows
  /// of A and 32 columns of B (A reads are warp-broadcast, B reads are
  /// coalesced; reuse beyond the tile is captured by L2 only for the A
  /// panel), plus the C writeback.
  [[nodiscard]] double dram_traffic_bytes(
      Precision prec, std::size_t n,
      std::size_t tile = 32) const;  // portalint: tn-magic-tile-ok(the paper's hand-picked 32x32 reference tile)

  /// Vendor-reference execution time for an n^3 GEMM with `tile`^2 blocks.
  [[nodiscard]] TimeBreakdown reference_time(
      Precision prec, std::size_t n,
      std::size_t tile = 32) const;  // portalint: tn-magic-tile-ok(the paper's hand-picked 32x32 reference tile)

 private:
  GpuPerfSpec spec_;
  double compute_eff_;
  double bw_eff_;
};

}  // namespace portabench::perfmodel
