// Inner-loop code-generation model.
//
// The paper traces its A100 Julia gap to generated code: "The generated
// low-level PTX ... indicated a difference in unrolled loop instructions,
// 2 for CUDA.jl and 4 in the native CUDA" (Section IV-B).  All four
// frontends are LLVM-based, so their performance differences on a fixed
// kernel largely reduce to code-generation choices: unroll factor,
// vectorization, bounds checks, FMA contraction.  This model makes those
// choices explicit and quantifies each one's efficiency cost, grounding
// the calibrated ModelTraits in mechanism rather than in bare constants.
#pragma once

#include <cstddef>

#include "device_specs.hpp"

namespace portabench::perfmodel {

/// What the compiler emitted for the innermost GEMM loop.
struct CodegenProfile {
  // portalint: tn-magic-tile-ok(models what the compiler emitted; the gpu-unroll tuning space varies it)
  int unroll = 4;                 ///< independent accumulation chains
  std::size_t vector_bits = 256;  ///< vector width used (0 = scalar)
  bool bounds_checked = false;    ///< per-access bounds tests (Numba, Julia w/o @inbounds)
  bool fma_contraction = true;    ///< mul+add fused into FMA
  bool fastmath = true;           ///< reassociation allowed (enables vector reductions)

  /// The profiles the paper's stacks produce on this kernel.
  static CodegenProfile vendor_cpu(const CpuSpec& cpu);  ///< -O3 -fopenmp -march=native
  static CodegenProfile julia_cpu(const CpuSpec& cpu);   ///< @threads + @inbounds
  static CodegenProfile numba_cpu(const CpuSpec& cpu);   ///< @njit(parallel, fastmath)
  static CodegenProfile vendor_gpu();                    ///< nvcc/hipcc: unroll 4
  static CodegenProfile julia_gpu();                     ///< CUDA.jl: unroll 2 (the PTX finding)
  static CodegenProfile numba_gpu();                     ///< nvvm with checked indexing
};

/// Efficiency (0, 1] of a CPU inner loop relative to the ideal profile
/// (full vector width, unrolled, unchecked, contracted).
[[nodiscard]] double cpu_inner_loop_efficiency(const CodegenProfile& profile,
                                               const CpuSpec& cpu);

/// Efficiency (0, 1] of a GPU inner loop relative to the ideal profile.
/// Models the dependent-FMA pipeline: with unroll u independent chains
/// against an exposed-latency fraction (1 - alpha), sustained issue rate
/// is alpha + (1 - alpha) * min(1, u / latency_chains).
[[nodiscard]] double gpu_inner_loop_efficiency(const CodegenProfile& profile);

/// The unroll-2-vs-4 ratio the paper measured on the A100 (Julia CUDA.jl
/// FP64 efficiency ~0.867) falls out of gpu_inner_loop_efficiency:
/// gpu_inner_loop_efficiency(julia_gpu()) / gpu_inner_loop_efficiency(vendor_gpu()).
[[nodiscard]] double julia_a100_unroll_ratio();

}  // namespace portabench::perfmodel
