// The paper's published numbers, as data.
//
// Table III of Godoy et al. (IPDPSW 2023) verbatim: the per-architecture
// performance efficiencies of each portable model and the Phi_M values.
// Used by the Table III bench for side-by-side reporting and by the
// deviation report that EXPERIMENTS.md quotes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "platform.hpp"

namespace portabench::perfmodel {

/// e_i from the paper's Table III; nullopt where the paper prints "-"
/// (Numba on the MI250X).
[[nodiscard]] std::optional<double> paper_table3_efficiency(Family f, Precision prec,
                                                            Platform p);

/// Phi_M from the paper's Table III.
[[nodiscard]] double paper_table3_phi(Family f, Precision prec);

/// One row of the model-vs-paper comparison.
struct Deviation {
  Family family;
  Precision precision;
  Platform platform;
  double paper = 0.0;
  double modeled = 0.0;
  [[nodiscard]] double abs_error() const { return modeled > paper ? modeled - paper : paper - modeled; }
};

/// Compare the calibrated model's sweep-mean efficiencies against every
/// paper cell; sorted worst-first.
[[nodiscard]] std::vector<Deviation> table3_deviation_report();

}  // namespace portabench::perfmodel
