// Calibration tables: every constant here is tied to a specific statement
// or table cell of the paper (cited in `provenance`).  This file is the
// single place where paper-derived numbers live.
#include "traits.hpp"

namespace portabench::perfmodel {

namespace {

ModelTraits vendor_ref() {
  ModelTraits t;
  t.rel_eff = 1.0;
  t.overhead_us = 0.0;
  t.bind = simrt::BindPolicy::kClose;  // OMP_PROC_BIND=true OMP_PLACES=threads
  t.unroll = 4;  // portalint: tn-magic-tile-ok(observed vendor PTX fact, Section IV-B; not a search knob)
  t.provenance = "Eq. (2): vendor implementation is the efficiency reference";
  return t;
}

}  // namespace

std::optional<ModelTraits> traits_for(Platform p, Family f, Precision prec) {
  if (!supported(p, f, prec)) return std::nullopt;
  if (f == Family::kVendor && prec != Precision::kHalfIn) return vendor_ref();

  ModelTraits t;
  const bool fp32 = prec == Precision::kSingle;

  switch (p) {
    // -----------------------------------------------------------------
    // Crusher CPU — AMD EPYC 7A53, reference: AMDClang C/OpenMP (Fig. 4)
    // -----------------------------------------------------------------
    case Platform::kCrusherCpu:
      switch (f) {
        case Family::kKokkos:
          t.rel_eff = fp32 ? 1.014 : 0.994;
          t.overhead_us = 4.0;  // parallel_for dispatch over the OpenMP back end
          t.provenance =
              "Table III e_{Epyc 7A53}; Fig. 4: 'Kokkos/OpenMP and Julia threads "
              "perform comparably with the vendor C/OpenMP implementation'";
          break;
        case Family::kJulia:
          t.rel_eff = fp32 ? 0.976 : 0.912;
          t.overhead_us = 8.0;  // @threads task spawn via partr
          t.provenance =
              "Table III e_{Epyc 7A53}; JULIA_EXCLUSIVE=1 pins threads (Table I)";
          break;
        case Family::kNumba:
          t.rel_eff = fp32 ? 0.655 : 0.550;
          t.overhead_us = 25.0;  // workqueue threading layer dispatch
          t.bind = simrt::BindPolicy::kNone;
          t.provenance =
              "Table III e_{Epyc 7A53}; Section IV-A: thread binding 'is not "
              "available in the Python/Numba APIs' — costly on a 4-NUMA part";
          break;
        default: return std::nullopt;
      }
      break;

    // -----------------------------------------------------------------
    // Wombat CPU — Ampere Altra, reference: ArmClang C/OpenMP (Fig. 5)
    // -----------------------------------------------------------------
    case Platform::kWombatCpu:
      switch (f) {
        case Family::kKokkos:
          t.rel_eff = fp32 ? 0.836 : 0.854;
          t.overhead_us = 4.0;
          t.provenance =
              "Table III e_{Ampere Altra}; Fig. 5: 'Kokkos, which is using the "
              "OpenMP back end, experiences a slowdown in both cases'";
          break;
        case Family::kJulia:
          t.rel_eff = fp32 ? 0.900 : 0.907;
          t.overhead_us = 8.0;
          t.provenance =
              "Table III e_{Ampere Altra}; Fig. 5: 'Julia's performance is "
              "almost on par with the vendor OpenMP implementations'";
          break;
        case Family::kNumba:
          t.rel_eff = fp32 ? 0.400 : 0.713;
          t.overhead_us = 25.0;
          t.bind = simrt::BindPolicy::kNone;
          t.provenance = "Table III e_{Ampere Altra}; no pinning API in Numba";
          break;
        default: return std::nullopt;
      }
      break;

    // -----------------------------------------------------------------
    // Crusher GPU — MI250X, reference: HIP (Fig. 6)
    // -----------------------------------------------------------------
    case Platform::kCrusherGpu:
      switch (f) {
        case Family::kKokkos:
          if (fp32) {
            t.rel_eff = 0.677;
            t.sweep_slope = -0.35;  // "Kokkos + HIP exhibits a consistent decrease"
          } else {
            t.rel_eff = 0.842;
            t.largest_size_factor = 0.70;  // "repeatable slowdown at the largest size"
          }
          t.overhead_us = 15.0;
          t.provenance =
              "Table III e_{MI250x}; Fig. 6a: 'Kokkos has a repeatable slowdown "
              "at the largest size'; Fig. 6b: 'Kokkos + HIP exhibits a "
              "consistent decrease'";
          break;
        case Family::kJulia:
          if (fp32) {
            t.rel_eff = 1.050;
            t.sweep_slope = -0.08;  // advantage shrinks for larger sizes
          } else {
            t.rel_eff = 0.903;
          }
          t.overhead_us = 20.0;  // AMDGPU.jl dispatch; "overheads ... appear constant"
          t.provenance =
              "Table III e_{MI250x}; Fig. 6b: 'Julia with AMDGPU.jl shows "
              "slightly better performance than the vendor HIP implementation, "
              "although the differences become small for larger matrix sizes'";
          break;
        default: return std::nullopt;  // Numba: AMD support deprecated
      }
      break;

    // -----------------------------------------------------------------
    // Wombat GPU — A100, reference: CUDA (Fig. 7)
    // -----------------------------------------------------------------
    case Platform::kWombatGpu:
      switch (f) {
        case Family::kKokkos:
          t.rel_eff = fp32 ? 0.208 : 0.260;
          t.overhead_us = 15.0;
          t.provenance =
              "Table III e_{A100}; Fig. 7: 'Kokkos and Python/Numba using a "
              "CUDA back end consistently underperform, which raises questions "
              "about the configuration' — Kokkos' template-time block heuristics "
              "pick a flat configuration with poor coalescing on this kernel";
          break;
        case Family::kJulia:
          t.rel_eff = fp32 ? 0.600 : 0.867;
          t.overhead_us = 20.0;
          t.unroll = 2;  // portalint: tn-magic-tile-ok(observed CUDA.jl PTX fact, Section IV-B; not a search knob)
          t.provenance =
              "Table III e_{A100}; Fig. 7a: 'Julia using CUDA.jl has a constant "
              "overhead'; PTX shows '2 [unrolled iterations] for CUDA.jl and 4 "
              "in the native CUDA' — the FP32 gap (0.600) is the paper's open "
              "question on generated PTX";
          break;
        case Family::kNumba:
          t.rel_eff = fp32 ? 0.095 : 0.130;
          t.overhead_us = 40.0;
          t.provenance =
              "Table III e_{A100}; Section IV-B: Numba-CUDA 'consistently "
              "underperform[s]', corroborated as real GPU runs via nvprof";
          break;
        default: return std::nullopt;
      }
      break;
  }

  // FP16 rows reuse the family's FP32 plateau scaled by the FP16 factor;
  // predict.cpp applies fp16_vs_fp32_factor() on top of the FP32 traits,
  // so here FP16 returns the FP32 calibration.
  return t;
}

double fp16_vs_fp32_factor(Platform p, Family f) {
  switch (p) {
    case Platform::kCrusherCpu:
      // "We obtained very low performance on Crusher AMD CPUs (not
      // reported in this work)" — Julia FP16 on Zen 3 falls off a cliff
      // (software conversions in the innermost loop).
      if (f == Family::kJulia) return 0.06;
      // Numba FP16 runs (matrices of ones) but gains nothing without
      // native FP16; conversions cost ~20%.
      if (f == Family::kNumba) return 0.80;
      return 0.0;
    case Platform::kWombatCpu:
      // "The Julia threads implementation on Arm worked seamlessly and
      // provided the expected levels of performance" — Armv8.2 native
      // FP16 vectors give a real speedup over FP32.
      if (f == Family::kJulia) return 1.55;
      if (f == Family::kNumba) return 0.80;
      return 0.0;
    case Platform::kCrusherGpu:
      // Fig. 6c: "No noticeable improvements ... when compared to
      // single-precision runs."
      if (f == Family::kJulia) return 1.00;
      return 0.0;
    case Platform::kWombatGpu:
      // Section IV-B: "we observed no performance gains over the
      // single-precision counterparts" (Julia and Numba).
      if (f == Family::kJulia) return 1.00;
      if (f == Family::kNumba) return 1.00;
      return 0.0;
  }
  return 0.0;
}

}  // namespace portabench::perfmodel
