// Run-to-run variability model.
//
// Section IV: "the results are the most likely performance value without
// doing an exhaustive variability analysis ... We consider that
// variability is at face value a characteristic of the system, rather
// than an effect of the programming model per-se."  This module supplies
// that system characteristic: a deterministic (seeded) log-normal jitter
// around the modeled time, with coefficients of variation taken per
// platform class, so harnesses can report mean +/- stddev bands and tests
// can exercise the measurement protocol end to end.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "platform.hpp"

namespace portabench::perfmodel {

/// Variability characteristics of one platform.
struct VariabilitySpec {
  /// Coefficient of variation of repeated kernel timings.
  double cv = 0.01;
  /// Relative magnitude of the cold-start (first repetition) excess —
  /// the warm-up the paper's protocol discards.
  double cold_start_factor = 1.0;

  /// The per-platform characteristics: dedicated GPU runs are tight
  /// (~1%), multi-NUMA CPU runs wander more (~3%), single-NUMA Arm sits
  /// between.
  static VariabilitySpec for_platform(Platform p);
};

/// Draw `reps` simulated timings around `modeled_seconds`: the first
/// repetition carries the cold-start excess, the rest are log-normal
/// jitter with the spec's CV.  Deterministic for a fixed seed.
[[nodiscard]] std::vector<double> sample_timings(const VariabilitySpec& spec,
                                                 double modeled_seconds, std::size_t reps,
                                                 std::uint64_t seed);

}  // namespace portabench::perfmodel
