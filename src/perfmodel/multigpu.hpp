// Multi-device scaling model.
//
// The paper measures single-GPU performance, but the nodes it describes
// carry more: Crusher has 8 MI250X GCDs and Wombat 2 A100s (Section I).
// This extension models the obvious next experiment — splitting the GEMM
// across G devices — with the two effects that dominate in practice:
// host-link contention (all devices share host memory bandwidth when
// staging operands) and the per-device efficiency loss when the partition
// shrinks the per-device problem.
#pragma once

#include <cstddef>
#include <vector>

#include "interconnect.hpp"
#include "machine_model.hpp"

namespace portabench::perfmodel {

struct MultiGpuPoint {
  std::size_t devices = 1;
  double kernel_s = 0.0;       ///< slowest device's kernel time
  double transfer_s = 0.0;     ///< staging time under link contention
  double total_s = 0.0;
  double speedup = 1.0;        ///< vs the 1-device total
  double efficiency = 1.0;     ///< speedup / devices
};

/// Strong-scaling sweep: one n x n GEMM row-partitioned across
/// 1..max_devices devices.  Each device computes an m/G x n block
/// (reading its A rows and all of B), links share `host_bw_share` of the
/// aggregate host bandwidth when more than one device stages at once.
[[nodiscard]] std::vector<MultiGpuPoint> strong_scaling_gemm(
    const GpuMachineModel& model, const LinkSpec& link, Precision prec, std::size_t n,
    std::size_t max_devices, double host_bw_gbs = 170.0);

/// Weak-scaling sweep: every device gets its own full n x n GEMM
/// (batched independent problems), contending only for the host link.
[[nodiscard]] std::vector<MultiGpuPoint> weak_scaling_gemm(
    const GpuMachineModel& model, const LinkSpec& link, Precision prec, std::size_t n,
    std::size_t max_devices, double host_bw_gbs = 170.0);

// --- NUMA-aware sharded-pipeline model -------------------------------
//
// Mirrors gpusim::DeviceTopology's link shape (perfmodel stays a pure
// analytical layer — it never links gpusim) so the multi-GCD benches can
// compare the measured sharded pipeline against a predicted curve built
// from the same per-link terms the simulator charges.

/// One directed link term: latency + bandwidth (gpusim::LinkModel's shape).
struct LinkTerm {
  double bw_gbs = 16.0;
  double latency_us = 5.0;

  [[nodiscard]] double seconds(double bytes) const noexcept {
    return latency_us * 1.0e-6 + bytes / (bw_gbs * 1.0e9);
  }
};

/// Node shape for the sharded-pipeline model: device count, host NUMA
/// domains, and the four link classes of the topology (NUMA-local vs
/// remote H2D, near vs far D2D).  Defaults are the Crusher terms.
struct NodeShape {
  std::size_t devices = 1;
  std::size_t numa_domains = 1;
  LinkTerm h2d_local{36.0, 5.0};
  LinkTerm h2d_remote{12.0, 8.0};
  LinkTerm d2d_near{200.0, 2.0};
  LinkTerm d2d_far{50.0, 3.0};
  double host_bw_gbs = 170.0;  ///< aggregate host-memory ceiling

  /// NUMA domain that feeds a device (Crusher: GCD g -> domain g/2).
  [[nodiscard]] std::size_t numa_domain_of(std::size_t device) const noexcept {
    return devices == 0 ? 0 : device * numa_domains / devices;
  }
  /// H2D link a device sees given the staging buffer's home domain.
  [[nodiscard]] const LinkTerm& h2d(std::size_t device, std::size_t staging_domain) const noexcept {
    return staging_domain == numa_domain_of(device) ? h2d_local : h2d_remote;
  }

  /// Crusher node: `devices` MI250X GCDs behind a 4-NUMA EPYC 7A53.
  [[nodiscard]] static NodeShape crusher(std::size_t devices = 8);
  /// Wombat-style node: A100s behind a single-domain host over PCIe4.
  [[nodiscard]] static NodeShape wombat(std::size_t devices = 2);
};

/// Knobs of the modeled sharded GEMM pipeline, matching
/// multigpu::gemm_sharded: B broadcast once per device, then per-panel
/// A-rows in / C-rows out double-buffered against the panel kernels.
struct ShardedGemmParams {
  std::size_t n = 1024;          ///< square GEMM edge
  std::size_t panel_rows = 128;  ///< rows per pipeline panel
  bool numa_aware_staging = true;  ///< stage each device from its own domain
  bool overlap = true;             ///< double-buffered vs strictly ordered
};

/// Predicted node time for the sharded pipeline at one device count.
struct ShardedPipelinePoint {
  std::size_t devices = 1;
  double broadcast_s = 0.0;  ///< slowest device's B upload
  double kernel_s = 0.0;     ///< slowest device's summed panel kernels
  double transfer_s = 0.0;   ///< slowest device's summed panel A-in/C-out
  double total_s = 0.0;      ///< pipeline makespan (max over devices)
  double speedup = 1.0;      ///< vs the 1-device point of the sweep
  double efficiency = 1.0;   ///< speedup / devices
  std::size_t remote_devices = 0;  ///< devices staging over the remote link
};

/// Sweep the sharded pipeline over 1..max_devices devices on `shape`
/// (shape.devices caps nothing here; each sweep point deals the panels
/// across `g` devices fed per shape's domain map).  Host-link contention
/// caps the aggregate H2D draw at shape.host_bw_gbs, NUMA-remote staging
/// rides the narrow link, and overlap hides per-panel transfers behind
/// the neighbor panel's kernel the way the double-buffered driver does.
[[nodiscard]] std::vector<ShardedPipelinePoint> sharded_pipeline_gemm(
    const GpuMachineModel& model, const NodeShape& shape, Precision prec,
    const ShardedGemmParams& params, std::size_t max_devices);

/// True when two curves rank their points identically (the bench gate:
/// the predicted multi-GCD curve must match the measured curve's shape,
/// i.e. sorting by predicted time and by measured time agree).  Ties in
/// either curve accept any order within the tie.
[[nodiscard]] bool ranks_agree(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace portabench::perfmodel
