// Multi-device scaling model.
//
// The paper measures single-GPU performance, but the nodes it describes
// carry more: Crusher has 8 MI250X GCDs and Wombat 2 A100s (Section I).
// This extension models the obvious next experiment — splitting the GEMM
// across G devices — with the two effects that dominate in practice:
// host-link contention (all devices share host memory bandwidth when
// staging operands) and the per-device efficiency loss when the partition
// shrinks the per-device problem.
#pragma once

#include <cstddef>
#include <vector>

#include "interconnect.hpp"
#include "machine_model.hpp"

namespace portabench::perfmodel {

struct MultiGpuPoint {
  std::size_t devices = 1;
  double kernel_s = 0.0;       ///< slowest device's kernel time
  double transfer_s = 0.0;     ///< staging time under link contention
  double total_s = 0.0;
  double speedup = 1.0;        ///< vs the 1-device total
  double efficiency = 1.0;     ///< speedup / devices
};

/// Strong-scaling sweep: one n x n GEMM row-partitioned across
/// 1..max_devices devices.  Each device computes an m/G x n block
/// (reading its A rows and all of B), links share `host_bw_share` of the
/// aggregate host bandwidth when more than one device stages at once.
[[nodiscard]] std::vector<MultiGpuPoint> strong_scaling_gemm(
    const GpuMachineModel& model, const LinkSpec& link, Precision prec, std::size_t n,
    std::size_t max_devices, double host_bw_gbs = 170.0);

/// Weak-scaling sweep: every device gets its own full n x n GEMM
/// (batched independent problems), contending only for the host link.
[[nodiscard]] std::vector<MultiGpuPoint> weak_scaling_gemm(
    const GpuMachineModel& model, const LinkSpec& link, Precision prec, std::size_t n,
    std::size_t max_devices, double host_bw_gbs = 170.0);

}  // namespace portabench::perfmodel
