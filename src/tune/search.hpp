// Search harness: exhaustive on small spaces, greedy hill-climb with
// restarts on large ones, with honest timing.
//
// Measurement discipline (the bench harness's protocol, reused):
//   - every config is evaluated warmup + reps times; the score is the
//     median (RunStats-style warmup exclusion, median-of-k);
//   - a noise floor (interquartile spread of the default config's
//     samples, with a relative epsilon) gates adoption: a challenger is
//     adopted only when it beats the default by MORE than the floor.
// The default config is always measured first, so tune_space can never
// return something worse than the default: when nothing clears the
// floor, the result IS the default (improved == false, speedup == 1).
//
// Frozen (order-affecting) parameters are pinned to their defaults —
// the search varies schedules, never fp combination order.
#pragma once

#include <cstdint>
#include <functional>

#include "params.hpp"

namespace portabench::tune {

/// One evaluation of a candidate config; returns the cost in
/// milliseconds (or any smaller-is-better modeled cost).
using Objective = std::function<double(const Config&)>;

struct SearchOptions {
  int reps = 5;         ///< samples per config (median taken)
  int warmup = 1;       ///< discarded leading samples per config
  double budget_ms = 2000.0;   ///< wall-clock budget for the whole search
  std::size_t exhaustive_limit = 64;  ///< combos <= this: enumerate all
  std::size_t restarts = 2;    ///< extra hill-climb starting points
  std::uint64_t seed = 1234;   ///< restart-point selection (xorshift)
  bool deterministic = false;  ///< modeled objective: 1 rep, zero floor
};

struct TuneResult {
  Config best;            ///< winning config (== default when !improved)
  double best_ms = 0.0;
  double default_ms = 0.0;
  double noise_ms = 0.0;  ///< adoption floor that was applied
  std::size_t evaluated = 0;  ///< configs actually measured
  bool improved = false;  ///< best beat default beyond the noise floor
  bool budget_exhausted = false;
};

/// Median + IQR-based noise floor of `reps` calls to `once` (after
/// `warmup` discarded calls).  Exposed for the benches.
struct Measurement {
  double median_ms = 0.0;
  double noise_ms = 0.0;
};
[[nodiscard]] Measurement measure(const std::function<double()>& once, int reps, int warmup);

/// Search `space` for the config minimizing `objective`.
[[nodiscard]] TuneResult tune_space(const SpaceDesc& space, const Objective& objective,
                                    const SearchOptions& options = {});

}  // namespace portabench::tune
