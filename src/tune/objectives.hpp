// Timed tuner objectives over the real kernels.
//
// Each factory returns an Objective closure that owns its workload state
// (matrices, sinks, an engine) so repeated evaluations measure the same
// work; one call = one timed evaluation in milliseconds.  The process-
// wide tunables an objective exercises (dispatch/launch) are set from
// the candidate config for the duration of the evaluation and restored
// afterwards — tuning measurements never leak scheduling state into the
// caller.
//
// These live in a separate library (portabench_tune_objectives) because
// the serve-batch objective needs the serving layer, and serve itself
// links the tune core — the split keeps the dependency graph acyclic.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/precision.hpp"
#include "search.hpp"

namespace portabench::tune {

/// Tiled-GEMM schedule objective: one n x n GEMM at precision `p` over a
/// persistent thread team; candidate configs name "mc"/"kc"/"tier".
[[nodiscard]] Objective gemm_tile_objective(Precision p, std::size_t n);

/// simrt dispatch objective: small trivial-work parallel regions (static
/// + dynamic) of `extent` iterations — the regime where fork cost
/// dominates; candidates name "fork_cutoff"/"chunks_per_thread"/
/// "min_grain".
[[nodiscard]] Objective dispatch_objective(std::size_t extent = 8192);

/// gpusim launch objective: `blocks` trivial blocks of `block_threads`
/// simulated threads; candidates name "fork_cutoff"/"chunks_per_worker".
[[nodiscard]] Objective launch_objective(std::size_t blocks = 512,
                                         std::size_t block_threads = 64);

/// Serving objective: stream `jobs` tiled-GEMM jobs of size `n` through
/// a fresh ServeEngine per evaluation; candidates name "batch_jobs".
[[nodiscard]] Objective serve_batch_objective(std::size_t jobs = 2048, std::uint32_t n = 48);

/// Device radix-sort objective: sort `n` random uint64 keys (key-value,
/// the serve flush shape) under the candidate schedule; candidates name
/// "radix_bits"/"chunk"/"lanes".  Every knob is schedule-only, so the
/// objective asserts nothing about values — the bitwise pin lives in
/// bench/tuned_vs_default.
[[nodiscard]] Objective primitives_radix_objective(std::size_t n = 1u << 18);

/// Device scan+reduce objective: exclusive double scan plus sum reduce
/// over `n` elements under the candidate schedule; candidates name
/// "chunk"/"lanes"/"items_per_lane" (and the frozen "segment").
[[nodiscard]] Objective primitives_scan_objective(std::size_t n = 1u << 20);

}  // namespace portabench::tune
