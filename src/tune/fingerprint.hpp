// Machine fingerprint for the tuning cache.
//
// A tuned winner is only trustworthy on the machine class it was measured
// on (the paper's whole point: unroll-2 wins on A100, unroll-4 on
// MI250X).  Cache entries therefore carry a fingerprint of (cpu model,
// core count, dispatched SIMD tier); lookups ignore entries whose
// fingerprint differs from the local one, so a cache file can travel with
// a checkout without poisoning a different machine.
#pragma once

#include <cstdint>
#include <string>

namespace portabench::tune {

struct MachineFingerprint {
  std::string cpu_model;   ///< /proc/cpuinfo "model name" (or "unknown-cpu")
  std::size_t cores = 0;   ///< hardware_concurrency
  std::string simd_tier;   ///< simd_tier_name(simd_dispatch_tier())
};

/// Fingerprint of the machine this process runs on (cached per process;
/// the SIMD tier honors PORTABENCH_SIMD_TIER clamp-down, so a clamped
/// run tunes — and caches — as the machine class it emulates).
[[nodiscard]] const MachineFingerprint& local_fingerprint();

/// Human-readable key: "model|cores|tier".
[[nodiscard]] std::string fingerprint_key(const MachineFingerprint& fp);

/// Stable FNV-1a hash of fingerprint_key (what cache entries store).
[[nodiscard]] std::uint64_t fingerprint_hash(const MachineFingerprint& fp);

/// Parse helper exposed for tests: first "model name : ..." value in
/// cpuinfo-formatted text, or "unknown-cpu" when absent.
[[nodiscard]] std::string cpu_model_from_cpuinfo(const std::string& cpuinfo_text);

}  // namespace portabench::tune
