// Tuning-parameter registry: the typed descriptors every other tuning
// piece (search, cache, CLI, benches) agrees on.
//
// The paper's A100-vs-MI250X result (unroll-2 vs unroll-4 winning on
// different GPUs, Godoy et al. Section IV) is the motivating fact: the
// best configuration is machine-dependent, so the knobs that used to be
// compile-time constants are described here as searchable spaces and
// resolved per machine by the autotuner (docs/TUNING.md).
//
// Determinism contract: a parameter is *frozen* when varying it would
// change floating-point combination order (e.g. the GEMM KC blocking).
// Frozen parameters are pinned to their default by the search — they are
// listed so the descriptor is honest about the full knob surface, not so
// they can move.  Everything searchable is schedule-only: results stay
// bitwise-identical across every candidate.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace portabench::tune {

/// One tunable parameter: an explicit, ordered candidate list (every
/// space here is small and discrete; ranges/steps are expanded to
/// choices at registry construction so the search is uniform).
struct ParamSpec {
  std::string name;
  std::vector<long> choices;  ///< ascending candidate values
  long def = 0;               ///< default; always a member of choices
  bool frozen = false;        ///< order-affecting: search pins to def
  std::string note;           ///< why the range / why frozen
};

/// A named search space (one workload's knob set).
struct SpaceDesc {
  std::string name;               ///< e.g. "gemm-tile"
  std::string what;               ///< one-line description
  std::vector<ParamSpec> params;
};

/// A concrete assignment of every parameter in a space.
using Config = std::map<std::string, long>;

/// The space's default configuration (every param at its default).
[[nodiscard]] Config default_config(const SpaceDesc& space);

/// Number of searchable combinations (frozen params count as 1).
[[nodiscard]] std::size_t combinations(const SpaceDesc& space);

/// True when `config` assigns every param of `space` one of its choices.
[[nodiscard]] bool config_valid(const SpaceDesc& space, const Config& config);

/// Value of `name` in `config`, or the space default when absent.
[[nodiscard]] long config_value(const SpaceDesc& space, const Config& config,
                                std::string_view name);

/// All tunable spaces this build knows about.  Built once per process;
/// the gemm-tile tier candidates are limited to what the host can
/// actually dispatch, so a cached winner is always runnable locally
/// (cross-machine staleness is handled by the fingerprint, cache.hpp).
[[nodiscard]] const std::vector<SpaceDesc>& registry();

/// Space lookup by name; nullptr when unknown.
[[nodiscard]] const SpaceDesc* find_space(std::string_view name);

}  // namespace portabench::tune
