// Persisted tuning cache: versioned JSON, loaded defensively.
//
// Schema (docs/TUNING.md):
//   {
//     "schema_version": 1,
//     "entries": [
//       { "space": "gemm-tile", "precision": "FP32", "size_class": 5,
//         "fingerprint": "0x9f...", "machine": "model|cores|tier",
//         "config": {"mc": 128, "kc": 256, "tier": -1},
//         "tuned_ms": 0.42, "default_ms": 0.55 }, ... ]
//   }
//
// The loader NEVER aborts on bad input: a missing, corrupt, truncated,
// version-mismatched or schema-violating file loads as an empty cache
// with a typed CacheLoadStatus + warning string, and the process runs on
// defaults — a stale cache must degrade performance at worst, never
// correctness or availability.
//
// Lookups filter on machine fingerprint (fingerprint.hpp): entries tuned
// on machine A are carried in the file but ignored on machine B.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "params.hpp"

namespace portabench::tune {

inline constexpr int kCacheSchemaVersion = 1;

enum class CacheLoadStatus {
  kOk,               ///< parsed and every entry schema-valid
  kMissing,          ///< file absent / unreadable (fresh machine: not an error)
  kParseError,       ///< not valid JSON (corrupt or truncated)
  kVersionMismatch,  ///< schema_version != kCacheSchemaVersion
  kSchemaError,      ///< valid JSON, wrong shape
};

[[nodiscard]] std::string_view cache_status_name(CacheLoadStatus s) noexcept;

/// One tuned winner.  `precision` is a Precision::name() string ("FP64",
/// "FP32", "FP16") or "-" for precision-free spaces; `size_class` is the
/// serve shape bucket (0 for size-free spaces).
struct CacheEntry {
  std::string space;
  std::string precision = "-";
  std::uint32_t size_class = 0;
  std::uint64_t fingerprint = 0;
  std::string machine;  ///< human-readable fingerprint key (diagnostics)
  Config config;
  double tuned_ms = 0.0;
  double default_ms = 0.0;
};

struct CacheLoadResult {
  CacheLoadStatus status = CacheLoadStatus::kMissing;
  std::string warning;  ///< non-empty whenever status != kOk
};

class TuningCache {
 public:
  /// Load `path`, replacing current contents.  Any failure leaves the
  /// cache empty and returns a typed status + warning; never throws.
  CacheLoadResult load(const std::string& path);

  /// Parse cache text (the load() body, file I/O factored out for tests).
  CacheLoadResult load_text(std::string_view text, const std::string& origin);

  /// Serialize to the schema above.
  [[nodiscard]] std::string serialize() const;

  /// Write serialize() to `path`; false on I/O failure (never throws).
  bool save(const std::string& path) const;

  /// Entry for (space, precision, size_class) tuned on `fingerprint`;
  /// nullptr when absent or tuned on a different machine.
  [[nodiscard]] const CacheEntry* find(std::string_view space, std::string_view precision,
                                       std::uint32_t size_class,
                                       std::uint64_t fingerprint) const;

  /// Insert or replace the entry with the same (space, precision,
  /// size_class, fingerprint) key.
  void put(CacheEntry entry);

  [[nodiscard]] const std::vector<CacheEntry>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

 private:
  std::vector<CacheEntry> entries_;
};

}  // namespace portabench::tune
