#include "params.hpp"

#include <algorithm>

#include "gemm/kernels_tiled.hpp"
#include "gpusim/tunables.hpp"
#include "primitives/tunables.hpp"
#include "simrt/simd.hpp"
#include "simrt/tunables.hpp"

namespace portabench::tune {

Config default_config(const SpaceDesc& space) {
  Config c;
  for (const ParamSpec& p : space.params) c[p.name] = p.def;
  return c;
}

std::size_t combinations(const SpaceDesc& space) {
  std::size_t total = 1;
  for (const ParamSpec& p : space.params) {
    if (!p.frozen) total *= std::max<std::size_t>(1, p.choices.size());
  }
  return total;
}

bool config_valid(const SpaceDesc& space, const Config& config) {
  for (const ParamSpec& p : space.params) {
    const auto it = config.find(p.name);
    if (it == config.end()) return false;
    if (std::find(p.choices.begin(), p.choices.end(), it->second) == p.choices.end()) {
      return false;
    }
    if (p.frozen && it->second != p.def) return false;
  }
  return config.size() == space.params.size();
}

long config_value(const SpaceDesc& space, const Config& config, std::string_view name) {
  const auto it = config.find(std::string(name));
  if (it != config.end()) return it->second;
  for (const ParamSpec& p : space.params) {
    if (p.name == name) return p.def;
  }
  return 0;
}

namespace {

std::vector<SpaceDesc> build_registry() {
  std::vector<SpaceDesc> spaces;

  {
    SpaceDesc s;
    s.name = "gemm-tile";
    s.what = "tiled GEMM schedule: MC row-block grain, frozen KC, SIMD tier";
    s.params.push_back({"mc",
                        {16, 32, 64, 128, 256},
                        static_cast<long>(gemm::tiled::kMC),
                        false,
                        "rows per parallel unit; pure work partitioning"});
    s.params.push_back({"kc",
                        {static_cast<long>(gemm::tiled::kKC)},
                        static_cast<long>(gemm::tiled::kKC),
                        true,
                        "ORDER-AFFECTING: KC grouping changes fp accumulation order"});
    // Tier candidates: -1 (host dispatch tier) plus every tier this host
    // can run; all are contract-pinned bit-identical, so tier is a pure
    // speed knob.
    ParamSpec tier{"tier", {-1}, -1, false,
                   "micro-kernel SIMD tier; -1 = host dispatch tier"};
    const int top = static_cast<int>(simrt::simd_dispatch_tier());
    for (int t = 0; t <= top; ++t) tier.choices.push_back(t);
    s.params.push_back(std::move(tier));
    spaces.push_back(std::move(s));
  }

  {
    // Per-GCD variant of the tile space: the multi-device serve/bench
    // paths resolve their panel kernels through this space so a node
    // tune can pick a different MC grain for the sharded regime (smaller
    // per-device worker pools shift the sweet spot) without disturbing
    // the single-device "gemm-tile" winners.  GCDs are homogeneous, so
    // one tuned config serves every device index.  KC stays frozen: MC
    // is pure work partitioning and cannot change fp accumulation order,
    // which is what keeps per-device tiles inside the bitwise-replay
    // contract (tests/multigpu pins it).
    SpaceDesc s;
    s.name = "gemm-tile-gcd";
    s.what = "per-GCD tiled GEMM schedule for sharded multi-device runs";
    s.params.push_back({"mc",
                        {16, 32, 64, 128, 256},
                        static_cast<long>(gemm::tiled::kMC),
                        false,
                        "rows per parallel unit on one GCD; pure work partitioning"});
    s.params.push_back({"kc",
                        {static_cast<long>(gemm::tiled::kKC)},
                        static_cast<long>(gemm::tiled::kKC),
                        true,
                        "ORDER-AFFECTING: KC grouping changes fp accumulation order"});
    ParamSpec tier{"tier", {-1}, -1, false,
                   "micro-kernel SIMD tier; -1 = host dispatch tier"};
    const int top = static_cast<int>(simrt::simd_dispatch_tier());
    for (int t = 0; t <= top; ++t) tier.choices.push_back(t);
    s.params.push_back(std::move(tier));
    spaces.push_back(std::move(s));
  }

  {
    SpaceDesc s;
    s.name = "dispatch";
    s.what = "simrt fork-elision grain and dynamic-chunk heuristic";
    s.params.push_back({"fork_cutoff",
                        {256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 262144},
                        static_cast<long>(simrt::kDefaultForkCutoff),
                        false,
                        "work items below which a region runs inline"});
    s.params.push_back({"chunks_per_thread",
                        {2, 4, 8, 16, 32},
                        static_cast<long>(simrt::kDefaultChunksPerThread),
                        false,
                        "target dynamic chunks per thread"});
    s.params.push_back({"min_grain",
                        {1, 2, 4, 8, 16, 32},
                        static_cast<long>(simrt::kDefaultMinGrain),
                        false,
                        "minimum iterations per dynamic chunk"});
    spaces.push_back(std::move(s));
  }

  {
    SpaceDesc s;
    s.name = "launch";
    s.what = "gpusim block-engine fork cutoff and block dealing";
    s.params.push_back({"fork_cutoff",
                        {256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 262144},
                        static_cast<long>(simrt::kDefaultForkCutoff),
                        false,
                        "simulated threads below which a launch walks serially"});
    s.params.push_back({"chunks_per_worker",
                        {2, 4, 8, 16, 32},
                        static_cast<long>(gpusim::kDefaultLaunchChunksPerWorker),
                        false,
                        "target block chunks per pool worker"});
    spaces.push_back(std::move(s));
  }

  {
    SpaceDesc s;
    s.name = "serve-batch";
    s.what = "ServeEngine jobs per flushed batch";
    s.params.push_back({"batch_jobs",
                        {8, 16, 32, 64, 128},
                        32,
                        false,
                        "jobs per shard flush; larger batches amortize launches, "
                        "smaller ones bound latency"});
    s.params.push_back({"sort_radix",
                        {0, 1},
                        0,
                        false,
                        "flush-batch ordering kernel: 0 = std::sort, 1 = the "
                        "primitives LSD radix path (same (bucket, id) order "
                        "either way — stability makes them interchangeable)"});
    spaces.push_back(std::move(s));
  }

  {
    // Device-wide radix sort schedule.  Every knob is schedule-only: the
    // keys are integers after the radix bijection, so any digit width,
    // tile size, or lane count yields the identical (stable) sorted
    // output — tuned_vs_default pins that bitwise.
    SpaceDesc s;
    s.name = "primitives-radix";
    s.what = "device radix sort: digit width, block tile, privatized lanes";
    s.params.push_back({"radix_bits",
                        {2, 4, 8},
                        static_cast<long>(primitives::kDefaultRadixBits),
                        false,
                        "LSD digit width; wider digits mean fewer passes but "
                        "bigger privatized histograms"});
    s.params.push_back({"chunk",
                        {2048, 4096, 8192, 16384, 32768},
                        static_cast<long>(primitives::kDefaultSortChunk),
                        false,
                        "elements per count/scatter block tile"});
    s.params.push_back({"lanes",
                        {8, 16, 32, 64},
                        static_cast<long>(primitives::kDefaultSortLanes),
                        false,
                        "lanes per block (clamped by shared-memory limit)"});
    spaces.push_back(std::move(s));
  }

  {
    // Device-wide scan/reduce schedule.  The association unit (segment)
    // is FROZEN — fp results are a pure function of (T, op, n, segment),
    // exactly the gemm kc contract — while chunk/lanes/items_per_lane
    // only remap segments onto blocks and lanes.
    SpaceDesc s;
    s.name = "primitives-scan";
    s.what = "device scan/reduce: block tile, lanes, reduce grain";
    s.params.push_back({"chunk",
                        {1024, 2048, 4096, 8192, 16384},
                        static_cast<long>(primitives::kDefaultScanChunk),
                        false,
                        "elements per scan block tile (whole segments)"});
    s.params.push_back({"lanes",
                        {32, 64, 128, 256},
                        static_cast<long>(primitives::kDefaultLanes),
                        false,
                        "lanes per block for the partials passes"});
    s.params.push_back({"items_per_lane",
                        {1, 2, 4, 8},
                        static_cast<long>(primitives::kDefaultItemsPerLane),
                        false,
                        "segments each lane folds in the reduce pass"});
    s.params.push_back({"segment",
                        {static_cast<long>(primitives::kSegment)},
                        static_cast<long>(primitives::kSegment),
                        true,
                        "ORDER-AFFECTING: fp slice-fold unit; frozen like "
                        "gemm kc"});
    spaces.push_back(std::move(s));
  }

  {
    SpaceDesc s;
    s.name = "gpu-unroll";
    s.what = "modeled GPU inner-loop unroll factor (paper Fig. 5 ablation)";
    s.params.push_back({"unroll",
                        {1, 2, 4, 8},
                        4,
                        false,
                        "the paper's A100-vs-MI250X knob; objective is the "
                        "perfmodel sustained-issue model"});
    spaces.push_back(std::move(s));
  }

  {
    SpaceDesc s;
    s.name = "gpu-block";
    s.what = "modeled GPU block edge for the tiled device GEMM";
    s.params.push_back({"block_edge",
                        {4, 8, 16, 32},
                        32,
                        false,
                        "square block edge; objective couples occupancy, DRAM "
                        "traffic and coalescing expansion"});
    spaces.push_back(std::move(s));
  }

  return spaces;
}

}  // namespace

const std::vector<SpaceDesc>& registry() {
  static const std::vector<SpaceDesc> spaces = build_registry();
  return spaces;
}

const SpaceDesc* find_space(std::string_view name) {
  for (const SpaceDesc& s : registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace portabench::tune
