// Model-based tuner objectives, shared with the ablation benches.
//
// The gpu-unroll and gpu-block registry spaces have no host kernel to
// time — they model the paper's device-side findings (unroll-2 vs
// unroll-4 PTX, block-geometry traffic).  Their objectives come from the
// calibrated perfmodel/gpusim analytics, and bench/ablation_unroll and
// bench/ablation_block_size emit the SAME functions into their
// BENCH_*.json artifacts, so the tuner and the ablation figures can
// never drift apart.
//
// Header-only on purpose: consumers must link portabench::perfmodel and
// portabench::gpusim (the tune core library does not take a perfmodel
// dependency just to host two inline formulas).
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/precision.hpp"
#include "gpusim/coalescing.hpp"
#include "gpusim/occupancy.hpp"
#include "perfmodel/codegen.hpp"
#include "perfmodel/device_specs.hpp"
#include "perfmodel/machine_model.hpp"

namespace portabench::tune {

/// Modeled sustained-issue efficiency of the device inner loop at a
/// given unroll factor (vendor-GPU profile; the paper's Fig. 5 knob).
[[nodiscard]] inline double modeled_unroll_efficiency(long unroll) {
  perfmodel::CodegenProfile p = perfmodel::CodegenProfile::vendor_gpu();
  p.unroll = static_cast<int>(std::max<long>(1, unroll));
  return perfmodel::gpu_inner_loop_efficiency(p);
}

/// Tuner objective for the "gpu-unroll" space: smaller-is-better cost
/// (inverse efficiency).
[[nodiscard]] inline double modeled_unroll_cost(long unroll) {
  return 1.0 / std::max(1e-9, modeled_unroll_efficiency(unroll));
}

/// Per-shape analytics for one square block edge of the naive device
/// GEMM on the A100 model (the ablation table's columns).
struct BlockModelStats {
  double occupancy = 0.0;
  double traffic_bytes = 0.0;    ///< modeled DRAM traffic at n = kBlockModelN
  double expansion = 1.0;        ///< weighted coalescing sector expansion
};

/// Problem size the block-geometry model is evaluated at (the paper's
/// largest Fig. 2 size).
inline constexpr std::size_t kBlockModelN = 8192;

[[nodiscard]] inline BlockModelStats modeled_block_stats(long block_edge) {
  const auto spec = gpusim::GpuSpec::a100();
  const perfmodel::GpuMachineModel model(perfmodel::GpuPerfSpec::a100());
  const std::size_t edge =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::max<long>(1, block_edge)));
  const gpusim::Dim3 block{static_cast<unsigned>(edge), static_cast<unsigned>(edge), 1};
  const gpusim::KernelResources res{block.volume(), 32, 0};
  BlockModelStats out;
  out.occupancy = gpusim::compute_occupancy(spec, res).fraction;
  out.traffic_bytes = model.dram_traffic_bytes(Precision::kDouble, kBlockModelN, edge);
  out.expansion = gpusim::analyze_gemm_coalescing(spec, block, kBlockModelN,
                                                  sizeof(double))
                      .weighted_expansion(kBlockModelN);
  return out;
}

/// Tuner objective for the "gpu-block" space: modeled time-proxy —
/// traffic inflated by poor coalescing, deflated by occupancy.
[[nodiscard]] inline double modeled_block_cost(long block_edge) {
  const BlockModelStats s = modeled_block_stats(block_edge);
  return s.traffic_bytes * s.expansion / std::max(1e-3, s.occupancy);
}

}  // namespace portabench::tune
