#include "tuned.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fingerprint.hpp"
#include "gpusim/tunables.hpp"
#include "simrt/tunables.hpp"

namespace portabench::tune {

namespace {

/// Clamp a cached long into a sane std::size_t knob value.
std::size_t as_size_knob(long v, std::size_t fallback, std::size_t lo = 1) {
  if (v < static_cast<long>(lo)) return fallback;
  return static_cast<std::size_t>(v);
}

bool env_set(const char* name) { return std::getenv(name) != nullptr; }

}  // namespace

Tuned& Tuned::instance() {
  static Tuned* t = new Tuned();  // leaked: lookups may outlive main()
  return *t;
}

Tuned::~Tuned() { free_slots(); }

void Tuned::free_slots() noexcept {
  for (auto& slot : tile_slots_) {
    delete slot.exchange(nullptr, std::memory_order_acq_rel);
  }
  for (auto& slot : gcd_tile_slots_) {
    delete slot.exchange(nullptr, std::memory_order_acq_rel);
  }
}

void Tuned::ensure_loaded() {
  std::lock_guard<TuneMutex> lock(mutex_);
  if (loaded_) return;
  loaded_ = true;
  fingerprint_ = fingerprint_hash(local_fingerprint());
  const char* disable = std::getenv("PORTABENCH_TUNE_DISABLE");
  disabled_ = disable != nullptr && disable[0] == '1';
  std::string path = explicit_path_;
  if (path.empty()) {
    const char* env = std::getenv("PORTABENCH_TUNE_CACHE");
    if (env != nullptr) path = env;
  }
  if (disabled_ || path.empty()) {
    cache_.clear();
    load_result_ = CacheLoadResult{};  // kMissing, no warning needed
    return;
  }
  load_result_ = cache_.load(path);
  if (load_result_.status != CacheLoadStatus::kOk &&
      load_result_.status != CacheLoadStatus::kMissing) {
    // Typed warning, never an abort: a bad cache degrades to defaults.
    std::fprintf(stderr, "[portabench::tune] %s\n", load_result_.warning.c_str());
  }
}

const gemm::TileConfig& Tuned::gemm_tile(Precision p, std::uint32_t size_class) noexcept {
  const std::size_t pi = std::min<std::size_t>(static_cast<std::size_t>(p),
                                               kNumPrecisions - 1);
  const std::size_t sc = std::min<std::size_t>(size_class, kSizeClasses - 1);
  std::atomic<const gemm::TileConfig*>& slot = tile_slots_[pi * kSizeClasses + sc];

  if (const gemm::TileConfig* hit = slot.load(std::memory_order_acquire)) {
    return *hit;  // warm path: one load, no allocation
  }

  ensure_loaded();
  gemm::TileConfig cfg;
  {
    std::lock_guard<TuneMutex> lock(mutex_);
    if (!disabled_) {
      const CacheEntry* e =
          cache_.find("gemm-tile", name(p), size_class, fingerprint_);
      if (e != nullptr) {
        const auto mc = e->config.find("mc");
        if (mc != e->config.end()) cfg.mc = as_size_knob(mc->second, cfg.mc);
        // kc is frozen in the registry; still clamp-read it so a hand-
        // edited cache cannot smuggle in a zero.
        const auto kc = e->config.find("kc");
        if (kc != e->config.end()) cfg.kc = as_size_knob(kc->second, cfg.kc);
        const auto tier = e->config.find("tier");
        if (tier != e->config.end() && tier->second >= -1 && tier->second <= 3) {
          cfg.tier = static_cast<int>(tier->second);
        }
      }
    }
  }

  const auto* fresh = new gemm::TileConfig(cfg);
  const gemm::TileConfig* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, fresh, std::memory_order_release,
                                    std::memory_order_acquire)) {
    delete fresh;  // another first-use racer won; adopt its slot
    return *expected;
  }
  slot_fills_.fetch_add(1, std::memory_order_relaxed);
  return *fresh;
}

const gemm::TileConfig& Tuned::gemm_tile_device(std::size_t /*device*/, Precision p,
                                                std::uint32_t size_class) noexcept {
  const std::size_t pi = std::min<std::size_t>(static_cast<std::size_t>(p),
                                               kNumPrecisions - 1);
  const std::size_t sc = std::min<std::size_t>(size_class, kSizeClasses - 1);
  std::atomic<const gemm::TileConfig*>& slot = gcd_tile_slots_[pi * kSizeClasses + sc];

  if (const gemm::TileConfig* hit = slot.load(std::memory_order_acquire)) {
    return *hit;  // warm path: one load, no allocation
  }

  // Fallback is the single-device winner (itself defaulting to
  // TileConfig{}); a gemm-tile-gcd cache entry overlays it.
  gemm::TileConfig cfg = gemm_tile(p, size_class);
  ensure_loaded();
  {
    std::lock_guard<TuneMutex> lock(mutex_);
    if (!disabled_) {
      const CacheEntry* e =
          cache_.find("gemm-tile-gcd", name(p), size_class, fingerprint_);
      if (e != nullptr) {
        const auto mc = e->config.find("mc");
        if (mc != e->config.end()) cfg.mc = as_size_knob(mc->second, cfg.mc);
        const auto kc = e->config.find("kc");
        if (kc != e->config.end()) cfg.kc = as_size_knob(kc->second, cfg.kc);
        const auto tier = e->config.find("tier");
        if (tier != e->config.end() && tier->second >= -1 && tier->second <= 3) {
          cfg.tier = static_cast<int>(tier->second);
        }
      }
    }
  }

  const auto* fresh = new gemm::TileConfig(cfg);
  const gemm::TileConfig* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, fresh, std::memory_order_release,
                                    std::memory_order_acquire)) {
    delete fresh;  // another first-use racer won; adopt its slot
    return *expected;
  }
  slot_fills_.fetch_add(1, std::memory_order_relaxed);
  return *fresh;
}

std::size_t Tuned::serve_batch_jobs(std::size_t fallback) noexcept {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  if (disabled_) return fallback;
  const CacheEntry* e = cache_.find("serve-batch", "-", 0, fingerprint_);
  if (e == nullptr) return fallback;
  const auto it = e->config.find("batch_jobs");
  if (it == e->config.end()) return fallback;
  return as_size_knob(it->second, fallback);
}

bool Tuned::serve_sort_radix(bool fallback) noexcept {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  if (disabled_) return fallback;
  const CacheEntry* e = cache_.find("serve-batch", "-", 0, fingerprint_);
  if (e == nullptr) return fallback;
  const auto it = e->config.find("sort_radix");
  if (it == e->config.end()) return fallback;
  return it->second != 0;
}

primitives::SortConfig Tuned::radix_sort_config(primitives::SortConfig fallback) noexcept {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  if (disabled_) return fallback;
  const CacheEntry* e = cache_.find("primitives-radix", "-", 0, fingerprint_);
  if (e == nullptr) return fallback;
  primitives::SortConfig cfg = fallback;
  const auto bits = e->config.find("radix_bits");
  if (bits != e->config.end() && bits->second >= 1 && bits->second <= 8) {
    cfg.radix_bits = static_cast<unsigned>(bits->second);
  }
  const auto chunk = e->config.find("chunk");
  if (chunk != e->config.end()) cfg.chunk = as_size_knob(chunk->second, cfg.chunk);
  const auto lanes = e->config.find("lanes");
  if (lanes != e->config.end()) cfg.lanes = as_size_knob(lanes->second, cfg.lanes);
  return cfg;
}

primitives::ScanConfig Tuned::scan_config(primitives::ScanConfig fallback) noexcept {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  if (disabled_) return fallback;
  const CacheEntry* e = cache_.find("primitives-scan", "-", 0, fingerprint_);
  if (e == nullptr) return fallback;
  primitives::ScanConfig cfg = fallback;
  const auto chunk = e->config.find("chunk");
  if (chunk != e->config.end()) cfg.chunk = as_size_knob(chunk->second, cfg.chunk);
  const auto lanes = e->config.find("lanes");
  if (lanes != e->config.end()) cfg.lanes = as_size_knob(lanes->second, cfg.lanes);
  return cfg;
}

primitives::ReduceConfig Tuned::reduce_config(primitives::ReduceConfig fallback) noexcept {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  if (disabled_) return fallback;
  const CacheEntry* e = cache_.find("primitives-scan", "-", 0, fingerprint_);
  if (e == nullptr) return fallback;
  primitives::ReduceConfig cfg = fallback;
  const auto lanes = e->config.find("lanes");
  if (lanes != e->config.end()) cfg.lanes = as_size_knob(lanes->second, cfg.lanes);
  const auto grain = e->config.find("items_per_lane");
  if (grain != e->config.end()) {
    cfg.items_per_lane = as_size_knob(grain->second, cfg.items_per_lane);
  }
  return cfg;
}

void Tuned::apply_process_tunables() noexcept {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  if (disabled_) return;
  if (const CacheEntry* e = cache_.find("dispatch", "-", 0, fingerprint_)) {
    simrt::DispatchTunables t = simrt::dispatch_tunables();
    const auto get = [&](const char* knob, const char* env, std::size_t current) {
      if (env_set(env)) return current;  // explicit env wins over cache
      const auto it = e->config.find(knob);
      return it == e->config.end() ? current
                                   : as_size_knob(it->second, current, 0);
    };
    t.fork_cutoff = get("fork_cutoff", "PORTABENCH_TUNE_FORK_CUTOFF", t.fork_cutoff);
    t.chunks_per_thread = get("chunks_per_thread", "PORTABENCH_TUNE_CHUNK",
                              t.chunks_per_thread);
    t.min_grain = get("min_grain", "PORTABENCH_TUNE_MIN_GRAIN", t.min_grain);
    simrt::set_dispatch_tunables(t);
  }
  if (const CacheEntry* e = cache_.find("launch", "-", 0, fingerprint_)) {
    gpusim::LaunchTunables t = gpusim::launch_tunables();
    const auto get = [&](const char* knob, const char* env, std::size_t current) {
      if (env_set(env)) return current;
      const auto it = e->config.find(knob);
      return it == e->config.end() ? current
                                   : as_size_knob(it->second, current, 0);
    };
    t.fork_cutoff = get("fork_cutoff", "PORTABENCH_TUNE_LAUNCH_CUTOFF", t.fork_cutoff);
    t.chunks_per_worker = get("chunks_per_worker", "PORTABENCH_TUNE_LAUNCH_CHUNKS",
                              t.chunks_per_worker);
    gpusim::set_launch_tunables(t);
  }
}

CacheLoadStatus Tuned::load_status() {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  return load_result_.status;
}

std::string Tuned::load_warning() {
  ensure_loaded();
  std::lock_guard<TuneMutex> lock(mutex_);
  return load_result_.warning;
}

void Tuned::reset_for_testing(const std::string& cache_path) {
  {
    std::lock_guard<TuneMutex> lock(mutex_);
    loaded_ = false;
    disabled_ = false;
    explicit_path_ = cache_path;
    cache_.clear();
    load_result_ = CacheLoadResult{};
  }
  free_slots();
  slot_fills_.store(0, std::memory_order_relaxed);
}

}  // namespace portabench::tune
