// Dispatch-facing tuned-configuration resolver.
//
// This is the piece the hot paths touch, so it is built for the warm
// case: resolving a tuned TileConfig for (precision, size bucket) is ONE
// acquire load of an atomic slot pointer — no lock, no allocation, no
// map.  The first lookup per slot walks the loaded cache (fingerprint-
// filtered), heap-allocates the resolved config once, and installs it
// with a CAS; a losing racer frees its copy and adopts the winner's, so
// concurrent first-use lookups from the serve shards race cleanly (the
// sanitized tier pins this).  Installed slots are never replaced or
// freed outside reset_for_testing(), which is why returning references
// into them is safe.
//
// Environment:
//   PORTABENCH_TUNE_CACHE    path of the persisted cache to consult
//   PORTABENCH_TUNE_DISABLE  "1" = ignore the cache, run pure defaults
//
// Process-wide scheduling knobs (simrt dispatch + gpusim launch) are not
// per-call lookups; apply_process_tunables() pushes cached winners into
// simrt/gpusim tunables once, with explicit PORTABENCH_TUNE_* env
// overrides keeping precedence over the cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "cache.hpp"
#include "common/precision.hpp"
#include "gemm/kernels_tiled.hpp"
#include "primitives/reduce.hpp"
#include "primitives/scan.hpp"
#include "primitives/sort.hpp"

namespace portabench::tune {

/// The resolver's slow path (cache load + slot install) is genuinely
/// concurrent across serve shards and needs a real lock; the warm path
/// never touches it.
using TuneMutex = std::mutex;  // portalint: raw-thread-ok(first-use cache load races across serve shards; warm path is lock-free)

class Tuned {
 public:
  /// Process-wide instance (what dispatch consults).
  [[nodiscard]] static Tuned& instance();

  /// Tuned tiled-GEMM schedule for one (precision, serve size-class)
  /// bucket; TileConfig{} when the cache has no matching entry for this
  /// machine.  Warm calls: one acquire load, zero allocation.
  [[nodiscard]] const gemm::TileConfig& gemm_tile(Precision p,
                                                  std::uint32_t size_class) noexcept;

  /// Per-GCD tiled-GEMM schedule for sharded multi-device runs: consults
  /// the "gemm-tile-gcd" space, falling back to the single-device
  /// gemm_tile() winner when untuned.  GCDs are homogeneous, so one
  /// resolved config serves every device index; `device` is accepted for
  /// future heterogeneous nodes and does not key the lookup today.  Warm
  /// calls: one acquire load, zero allocation.
  [[nodiscard]] const gemm::TileConfig& gemm_tile_device(std::size_t device, Precision p,
                                                         std::uint32_t size_class) noexcept;

  /// Tuned ServeEngine batch size, or `fallback` when untuned.
  [[nodiscard]] std::size_t serve_batch_jobs(std::size_t fallback) noexcept;

  /// Tuned ServeEngine flush-sort kernel choice ("serve-batch" space,
  /// sort_radix knob), or `fallback` when untuned.
  [[nodiscard]] bool serve_sort_radix(bool fallback) noexcept;

  /// Tuned device radix-sort schedule ("primitives-radix" space)
  /// overlaid on `fallback`.  Every knob is schedule-only: the sorted
  /// output is identical for any valid config.
  [[nodiscard]] primitives::SortConfig radix_sort_config(
      primitives::SortConfig fallback = {}) noexcept;

  /// Tuned device scan schedule ("primitives-scan" space: chunk, lanes).
  [[nodiscard]] primitives::ScanConfig scan_config(
      primitives::ScanConfig fallback = {}) noexcept;

  /// Tuned device reduce schedule ("primitives-scan" space: lanes,
  /// items_per_lane).
  [[nodiscard]] primitives::ReduceConfig reduce_config(
      primitives::ReduceConfig fallback = {}) noexcept;

  /// Push cached "dispatch" / "launch" winners into the simrt and gpusim
  /// runtime tunables.  Explicit PORTABENCH_TUNE_* environment variables
  /// win over the cache (a set variable blocks the cache for that knob).
  void apply_process_tunables() noexcept;

  // -- diagnostics / test hooks --------------------------------------

  /// Cache-load outcome (triggers the lazy load).
  [[nodiscard]] CacheLoadStatus load_status();
  [[nodiscard]] std::string load_warning();

  /// Slow-path slot installs so far: stable once warm — the soak-style
  /// no-steady-state-allocation check asserts this stops growing.
  [[nodiscard]] std::uint64_t slot_fills() const noexcept {
    return slot_fills_.load(std::memory_order_relaxed);
  }

  /// Drop all memoized slots and reload from `cache_path` (empty =
  /// PORTABENCH_TUNE_CACHE).  NOT safe against concurrent lookups; test
  /// and CLI use only.
  void reset_for_testing(const std::string& cache_path = {});

  ~Tuned();

 private:
  Tuned() = default;
  void ensure_loaded();
  void free_slots() noexcept;

  static constexpr std::size_t kNumPrecisions = 3;
  /// size_class is log2-bucketed from a uint32 job dimension, so < 32.
  static constexpr std::size_t kSizeClasses = 32;

  std::atomic<const gemm::TileConfig*> tile_slots_[kNumPrecisions * kSizeClasses] = {};
  /// Homogeneous GCDs: one slot bank for the per-GCD space, not one per
  /// device index.
  std::atomic<const gemm::TileConfig*> gcd_tile_slots_[kNumPrecisions * kSizeClasses] = {};
  std::atomic<std::uint64_t> slot_fills_{0};

  TuneMutex mutex_;  ///< guards the load + the fields below
  bool loaded_ = false;
  bool disabled_ = false;
  std::string explicit_path_;
  TuningCache cache_;
  std::uint64_t fingerprint_ = 0;
  CacheLoadResult load_result_;
};

}  // namespace portabench::tune
