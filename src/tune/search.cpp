#include "search.hpp"

#include <algorithm>
#include <vector>

#include "common/stats.hpp"
#include "common/timer.hpp"

namespace portabench::tune {

Measurement measure(const std::function<double()>& once, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) (void)once();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(std::max(1, reps)));
  for (int i = 0; i < std::max(1, reps); ++i) samples.push_back(once());
  std::sort(samples.begin(), samples.end());
  Measurement m;
  m.median_ms = percentile_of(samples, 50.0);
  m.noise_ms = std::max(0.0, percentile_of(samples, 75.0) - percentile_of(samples, 25.0));
  return m;
}

namespace {

/// Deterministic xorshift64* for restart-point selection: the search must
/// be reproducible under a fixed seed (no global RNG state).
std::uint64_t next_rand(std::uint64_t* state) {
  std::uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 2685821657736338717ull;
}

/// Index of each param's value within its choices list.
std::vector<std::size_t> indices_of(const SpaceDesc& space, const Config& config) {
  std::vector<std::size_t> idx(space.params.size(), 0);
  for (std::size_t p = 0; p < space.params.size(); ++p) {
    const ParamSpec& spec = space.params[p];
    const long v = config_value(space, config, spec.name);
    const auto it = std::find(spec.choices.begin(), spec.choices.end(), v);
    idx[p] = it == spec.choices.end() ? 0
                                      : static_cast<std::size_t>(it - spec.choices.begin());
  }
  return idx;
}

Config config_from_indices(const SpaceDesc& space, const std::vector<std::size_t>& idx) {
  Config c;
  for (std::size_t p = 0; p < space.params.size(); ++p) {
    const ParamSpec& spec = space.params[p];
    c[spec.name] = spec.frozen ? spec.def : spec.choices[idx[p]];
  }
  return c;
}

struct Evaluator {
  const Objective& objective;
  const SearchOptions& options;
  Timer budget_clock;
  std::size_t evaluated = 0;
  bool budget_exhausted = false;

  // Already-scored configs: spaces are small, so a linear scan beats the
  // bookkeeping of a real map and keeps Config usable as-is.
  std::vector<std::pair<Config, double>> seen;

  [[nodiscard]] bool over_budget() const {
    return budget_clock.seconds() * 1000.0 > options.budget_ms;
  }

  /// Median score of `config`; caches so revisits are free.  Returns
  /// false without evaluating when the budget is gone.
  bool score(const Config& config, double* out) {
    for (const auto& [c, v] : seen) {
      if (c == config) {
        *out = v;
        return true;
      }
    }
    if (over_budget()) {
      budget_exhausted = true;
      return false;
    }
    const int reps = options.deterministic ? 1 : options.reps;
    const int warmup = options.deterministic ? 0 : options.warmup;
    const Measurement m = measure([&] { return objective(config); }, reps, warmup);
    ++evaluated;
    seen.emplace_back(config, m.median_ms);
    *out = m.median_ms;
    return true;
  }
};

}  // namespace

TuneResult tune_space(const SpaceDesc& space, const Objective& objective,
                      const SearchOptions& options) {
  TuneResult result;
  result.best = default_config(space);

  Evaluator ev{objective, options, Timer{}, 0, false, {}};

  // Default first — always measured, and with the noise floor taken from
  // its own sample spread so the floor reflects this machine's jitter.
  {
    const int reps = options.deterministic ? 1 : options.reps;
    const int warmup = options.deterministic ? 0 : options.warmup;
    const Measurement m =
        measure([&] { return objective(result.best); }, reps, warmup);
    ++ev.evaluated;
    ev.seen.emplace_back(result.best, m.median_ms);
    result.default_ms = m.median_ms;
    result.best_ms = m.median_ms;
    result.noise_ms = options.deterministic
                          ? 0.0
                          : std::max(m.noise_ms, 0.02 * m.median_ms);
  }

  Config challenger = result.best;
  double challenger_ms = result.default_ms;

  const auto consider = [&](const Config& c, double ms) {
    if (ms < challenger_ms) {
      challenger = c;
      challenger_ms = ms;
    }
  };

  if (combinations(space) <= options.exhaustive_limit) {
    // Exhaustive: odometer over the non-frozen choice lists.
    std::vector<std::size_t> idx(space.params.size(), 0);
    for (;;) {
      const Config c = config_from_indices(space, idx);
      double ms = 0.0;
      if (!ev.score(c, &ms)) break;
      consider(c, ms);
      std::size_t p = 0;
      for (; p < space.params.size(); ++p) {
        if (space.params[p].frozen) continue;
        if (++idx[p] < space.params[p].choices.size()) break;
        idx[p] = 0;
      }
      if (p == space.params.size()) break;  // odometer wrapped: done
    }
  } else {
    // Greedy hill-climb with restarts: from each start, repeatedly move
    // to the best single-param ±1-step neighbour until no move improves.
    std::uint64_t rng = options.seed;
    for (std::size_t attempt = 0; attempt <= options.restarts; ++attempt) {
      std::vector<std::size_t> at;
      if (attempt == 0) {
        at = indices_of(space, default_config(space));
      } else {
        at.resize(space.params.size());
        for (std::size_t p = 0; p < space.params.size(); ++p) {
          const std::size_t n = space.params[p].choices.size();
          at[p] = space.params[p].frozen
                      ? indices_of(space, default_config(space))[p]
                      : static_cast<std::size_t>(next_rand(&rng) % n);
        }
      }
      double at_ms = 0.0;
      if (!ev.score(config_from_indices(space, at), &at_ms)) break;
      consider(config_from_indices(space, at), at_ms);

      bool moved = true;
      while (moved && !ev.budget_exhausted) {
        moved = false;
        for (std::size_t p = 0; p < space.params.size(); ++p) {
          const ParamSpec& spec = space.params[p];
          if (spec.frozen) continue;
          for (const int dir : {-1, +1}) {
            if (dir < 0 && at[p] == 0) continue;
            if (dir > 0 && at[p] + 1 >= spec.choices.size()) continue;
            std::vector<std::size_t> n = at;
            n[p] += static_cast<std::size_t>(dir);
            double ms = 0.0;
            if (!ev.score(config_from_indices(space, n), &ms)) break;
            consider(config_from_indices(space, n), ms);
            if (ms < at_ms) {
              at = std::move(n);
              at_ms = ms;
              moved = true;
            }
          }
        }
      }
      if (ev.budget_exhausted) break;
    }
  }

  result.evaluated = ev.evaluated;
  result.budget_exhausted = ev.budget_exhausted;

  // Adoption gate: the challenger must clear the noise floor, otherwise
  // the default stands (tuned >= default by construction).
  if (challenger_ms < result.default_ms - result.noise_ms) {
    result.best = challenger;
    result.best_ms = challenger_ms;
    result.improved = true;
  }
  return result;
}

}  // namespace portabench::tune
