#include "fingerprint.hpp"

#include <fstream>
#include <sstream>
#include <thread>

#include "simrt/simd.hpp"

namespace portabench::tune {

std::string cpu_model_from_cpuinfo(const std::string& cpuinfo_text) {
  std::istringstream in(cpuinfo_text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string key = line.substr(0, colon);
    // Trim the key; cpuinfo pads with tabs/spaces before the colon.
    while (!key.empty() && (key.back() == ' ' || key.back() == '\t')) key.pop_back();
    if (key != "model name") continue;
    std::size_t start = colon + 1;
    while (start < line.size() && (line[start] == ' ' || line[start] == '\t')) ++start;
    std::string value = line.substr(start);
    while (!value.empty() && (value.back() == ' ' || value.back() == '\r')) value.pop_back();
    if (!value.empty()) return value;
  }
  return "unknown-cpu";
}

namespace {

MachineFingerprint read_fingerprint() {
  MachineFingerprint fp;
  std::ifstream in("/proc/cpuinfo");
  if (in) {
    std::ostringstream text;
    text << in.rdbuf();
    fp.cpu_model = cpu_model_from_cpuinfo(text.str());
  } else {
    fp.cpu_model = "unknown-cpu";
  }
  fp.cores = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  fp.simd_tier = std::string(simrt::simd_tier_name(simrt::simd_dispatch_tier()));
  return fp;
}

}  // namespace

const MachineFingerprint& local_fingerprint() {
  static const MachineFingerprint fp = read_fingerprint();
  return fp;
}

std::string fingerprint_key(const MachineFingerprint& fp) {
  return fp.cpu_model + "|" + std::to_string(fp.cores) + "|" + fp.simd_tier;
}

std::uint64_t fingerprint_hash(const MachineFingerprint& fp) {
  // FNV-1a, 64-bit: stable across builds and platforms (the hash is
  // persisted in cache files, so it must not depend on std::hash).
  const std::string key = fingerprint_key(fp);
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace portabench::tune
