#include "cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hpp"

namespace portabench::tune {

std::string_view cache_status_name(CacheLoadStatus s) noexcept {
  switch (s) {
    case CacheLoadStatus::kOk: return "ok";
    case CacheLoadStatus::kMissing: return "missing";
    case CacheLoadStatus::kParseError: return "parse-error";
    case CacheLoadStatus::kVersionMismatch: return "version-mismatch";
    case CacheLoadStatus::kSchemaError: return "schema-error";
  }
  return "unknown";
}

namespace {

CacheLoadResult fail(CacheLoadStatus status, const std::string& origin,
                     const std::string& detail) {
  CacheLoadResult r;
  r.status = status;
  r.warning = "tuning cache " + origin + ": " + std::string(cache_status_name(status)) +
              ": " + detail + " (starting empty)";
  return r;
}

/// Integral field with range check; false on absence / wrong kind /
/// non-integral / out-of-range values.
bool integral_at(const JsonValue& obj, const std::string& key, double lo, double hi,
                 double* out) {
  const auto v = obj.number_at(key);
  if (!v.has_value()) return false;
  const double d = *v;
  if (d != static_cast<double>(static_cast<long long>(d))) return false;
  if (d < lo || d > hi) return false;
  *out = d;
  return true;
}

bool parse_entry(const JsonValue& e, CacheEntry* out) {
  if (!e.is_object()) return false;
  const auto space = e.string_at("space");
  if (!space.has_value() || space->empty()) return false;
  out->space = *space;
  out->precision = e.string_at("precision").value_or("-");
  double num = 0.0;
  if (!integral_at(e, "size_class", 0.0, 4294967295.0, &num)) return false;
  out->size_class = static_cast<std::uint32_t>(num);
  // The 64-bit fingerprint hash does not fit a double losslessly, so it
  // is persisted as a hex string.
  const auto fp = e.string_at("fingerprint");
  if (!fp.has_value()) return false;
  unsigned long long parsed = 0;
  if (std::sscanf(fp->c_str(), "0x%llx", &parsed) != 1) return false;
  out->fingerprint = parsed;
  out->machine = e.string_at("machine").value_or("");
  const JsonValue* config = e.find("config");
  if (config == nullptr || !config->is_object()) return false;
  for (const auto& [name, value] : config->as_object()) {
    if (!value.is_number()) return false;
    const double d = value.as_number();
    if (d != static_cast<double>(static_cast<long>(d))) return false;
    out->config[name] = static_cast<long>(d);
  }
  out->tuned_ms = e.number_at("tuned_ms").value_or(0.0);
  out->default_ms = e.number_at("default_ms").value_or(0.0);
  return true;
}

}  // namespace

CacheLoadResult TuningCache::load(const std::string& path) {
  entries_.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(CacheLoadStatus::kMissing, path, "cannot open file");
  std::ostringstream text;
  text << in.rdbuf();
  return load_text(text.str(), path);
}

CacheLoadResult TuningCache::load_text(std::string_view text, const std::string& origin) {
  entries_.clear();
  const JsonParseResult parsed = parse_json(text);
  if (!parsed.ok) return fail(CacheLoadStatus::kParseError, origin, parsed.error);
  const JsonValue& root = parsed.value;
  if (!root.is_object()) {
    return fail(CacheLoadStatus::kSchemaError, origin, "root is not an object");
  }
  const auto version = root.number_at("schema_version");
  if (!version.has_value()) {
    return fail(CacheLoadStatus::kSchemaError, origin, "missing schema_version");
  }
  if (*version != static_cast<double>(kCacheSchemaVersion)) {
    return fail(CacheLoadStatus::kVersionMismatch, origin,
                "schema_version " + std::to_string(static_cast<long>(*version)) +
                    " != " + std::to_string(kCacheSchemaVersion));
  }
  const JsonValue* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return fail(CacheLoadStatus::kSchemaError, origin, "missing entries array");
  }
  std::vector<CacheEntry> loaded;
  for (std::size_t i = 0; i < entries->as_array().size(); ++i) {
    CacheEntry entry;
    if (!parse_entry(entries->as_array()[i], &entry)) {
      // One malformed entry poisons the whole file: a partially-applied
      // cache is harder to reason about than an empty one.
      return fail(CacheLoadStatus::kSchemaError, origin,
                  "malformed entry at index " + std::to_string(i));
    }
    loaded.push_back(std::move(entry));
  }
  entries_ = std::move(loaded);
  CacheLoadResult r;
  r.status = CacheLoadStatus::kOk;
  return r;
}

std::string TuningCache::serialize() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version");
  w.value(static_cast<long>(kCacheSchemaVersion));
  w.key("entries");
  w.begin_array();
  for (const CacheEntry& e : entries_) {
    w.begin_object();
    w.key("space");
    w.value(e.space);
    w.key("precision");
    w.value(e.precision);
    w.key("size_class");
    w.value(static_cast<std::size_t>(e.size_class));
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(e.fingerprint));
    w.key("fingerprint");
    w.value(std::string(hex));
    w.key("machine");
    w.value(e.machine);
    w.key("config");
    w.begin_object();
    for (const auto& [name, value] : e.config) {
      w.key(name);
      w.value(value);
    }
    w.end_object();
    w.key("tuned_ms");
    w.value(e.tuned_ms);
    w.key("default_ms");
    w.value(e.default_ms);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool TuningCache::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << serialize() << '\n';
  return static_cast<bool>(out);
}

const CacheEntry* TuningCache::find(std::string_view space, std::string_view precision,
                                    std::uint32_t size_class,
                                    std::uint64_t fingerprint) const {
  for (const CacheEntry& e : entries_) {
    if (e.space == space && e.precision == precision && e.size_class == size_class &&
        e.fingerprint == fingerprint) {
      return &e;
    }
  }
  return nullptr;
}

void TuningCache::put(CacheEntry entry) {
  for (CacheEntry& e : entries_) {
    if (e.space == entry.space && e.precision == entry.precision &&
        e.size_class == entry.size_class && e.fingerprint == entry.fingerprint) {
      e = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

}  // namespace portabench::tune
