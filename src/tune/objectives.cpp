#include "objectives.hpp"

#include <memory>
#include <thread>
#include <vector>

#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gemm/kernels_tiled.hpp"
#include "gpusim/device.hpp"
#include "gpusim/engine.hpp"
#include "gpusim/tunables.hpp"
#include "primitives/reduce.hpp"
#include "primitives/scan.hpp"
#include "primitives/sort.hpp"
#include "serve/engine.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"
#include "simrt/tunables.hpp"

namespace portabench::tune {

namespace {

std::size_t knob(const Config& cfg, const char* knob_name, std::size_t fallback) {
  const auto it = cfg.find(knob_name);
  if (it == cfg.end() || it->second < 1) return fallback;
  return static_cast<std::size_t>(it->second);
}

gemm::TileConfig tile_from_config(const Config& cfg) {
  gemm::TileConfig tc;
  tc.mc = knob(cfg, "mc", tc.mc);
  tc.kc = knob(cfg, "kc", tc.kc);
  const auto tier = cfg.find("tier");
  if (tier != cfg.end() && tier->second >= -1 && tier->second <= 3) {
    tc.tier = static_cast<int>(tier->second);
  }
  return tc;
}

template <class T, class Acc>
Objective make_gemm_objective(std::size_t n) {
  struct State {
    explicit State(std::size_t size)
        : space(std::max<std::size_t>(2, std::thread::hardware_concurrency())),
          a(size * size),
          b(size * size),
          c(size * size),
          n(size) {}
    simrt::ThreadsSpace space;
    std::vector<T> a, b;
    std::vector<Acc> c;
    std::size_t n;
  };
  auto st = std::make_shared<State>(n);
  Xoshiro256 rng(42);
  for (std::size_t i = 0; i < n * n; ++i) {
    st->a[i] = static_cast<T>(rng.uniform() - 0.5);
    st->b[i] = static_cast<T>(rng.uniform() - 0.5);
  }
  return [st](const Config& cfg) -> double {
    const gemm::TileConfig tc = tile_from_config(cfg);
    std::fill(st->c.begin(), st->c.end(), Acc{});
    const simrt::RawView2<const T> A(st->a.data(), st->n, st->n);
    const simrt::RawView2<const T> B(st->b.data(), st->n, st->n);
    simrt::RawView2<Acc> C(st->c.data(), st->n, st->n);
    Timer timer;
    gemm::gemm_tiled<Acc>(st->space, A, B, C, tc);
    return timer.seconds() * 1e3;
  };
}

}  // namespace

Objective gemm_tile_objective(Precision p, std::size_t n) {
  switch (p) {
    case Precision::kDouble: return make_gemm_objective<double, double>(n);
    case Precision::kSingle: return make_gemm_objective<float, float>(n);
    case Precision::kHalfIn: return make_gemm_objective<half, float>(n);
  }
  return make_gemm_objective<double, double>(n);
}

Objective dispatch_objective(std::size_t extent) {
  struct State {
    explicit State(std::size_t size)
        : space(std::max<std::size_t>(2, std::thread::hardware_concurrency())),
          data(size, 1.0) {}
    simrt::ThreadsSpace space;
    std::vector<double> data;
  };
  auto st = std::make_shared<State>(extent);
  return [st, extent](const Config& cfg) -> double {
    const simrt::DispatchTunables prev = simrt::dispatch_tunables();
    simrt::DispatchTunables t = prev;
    t.fork_cutoff = knob(cfg, "fork_cutoff", prev.fork_cutoff);
    t.chunks_per_thread = knob(cfg, "chunks_per_thread", prev.chunks_per_thread);
    t.min_grain = knob(cfg, "min_grain", prev.min_grain);
    simrt::set_dispatch_tunables(t);

    double* const data = st->data.data();
    Timer timer;
    // Many small trivial regions: the fork-vs-inline decision IS the
    // cost here (same regime bench/micro_dispatch measures).  Writes are
    // per-index disjoint, so the result is schedule-invariant.
    constexpr int kStaticIters = 48;
    for (int it = 0; it < kStaticIters; ++it) {
      simrt::parallel_for(st->space, simrt::RangePolicy(0, extent),
                          [data](std::size_t i) {
                            data[i] = data[i] * 0.999999 + static_cast<double>(i & 7);
                          });
    }
    constexpr int kDynamicIters = 16;
    simrt::RangePolicy dynamic_policy(0, extent);
    dynamic_policy.schedule = simrt::Schedule::kDynamic;
    for (int it = 0; it < kDynamicIters; ++it) {
      simrt::parallel_for(st->space, dynamic_policy, [data](std::size_t i) {
        data[i] = data[i] * 0.999999 + 1.0;
      });
    }
    const double ms = timer.seconds() * 1e3;
    simrt::set_dispatch_tunables(prev);
    return ms;
  };
}

Objective launch_objective(std::size_t blocks, std::size_t block_threads) {
  struct State {
    explicit State(std::size_t nblocks) : sink(nblocks, 0.0) {}
    std::vector<double> sink;
  };
  auto st = std::make_shared<State>(blocks);
  return [st, blocks, block_threads](const Config& cfg) -> double {
    const gpusim::LaunchTunables prev = gpusim::launch_tunables();
    gpusim::LaunchTunables t = prev;
    t.fork_cutoff = knob(cfg, "fork_cutoff", prev.fork_cutoff);
    t.chunks_per_worker = knob(cfg, "chunks_per_worker", prev.chunks_per_worker);
    gpusim::set_launch_tunables(t);

    gpusim::LaunchEngine& engine = gpusim::LaunchEngine::shared();
    double* const sink = st->sink.data();
    Timer timer;
    constexpr int kIters = 24;
    for (int it = 0; it < kIters; ++it) {
      engine.run_blocks(blocks, blocks * block_threads,
                        [sink](std::size_t, std::size_t b) { sink[b] += 1.0; });
    }
    const double ms = timer.seconds() * 1e3;
    gpusim::set_launch_tunables(prev);
    return ms;
  };
}

Objective serve_batch_objective(std::size_t jobs, std::uint32_t n) {
  return [jobs, n](const Config& cfg) -> double {
    serve::ServeConfig sc;
    sc.batch_jobs = knob(cfg, "batch_jobs", 32);
    sc.queue_capacity = jobs + 1;
    serve::ServeEngine engine(sc);
    Timer timer;
    for (std::size_t i = 0; i < jobs; ++i) {
      serve::JobDesc d;
      d.id = i;
      d.kind = serve::JobKind::kGemm;
      d.frontend = serve::Frontend::kTiled;
      d.precision = Precision::kDouble;
      d.n = n;
      d.seed = i * 2654435761u + 17;
      (void)engine.try_submit(d);
    }
    engine.drain();
    return timer.seconds() * 1e3;
  };
}

Objective primitives_radix_objective(std::size_t n) {
  struct State {
    explicit State(std::size_t size)
        : ctx(gpusim::GpuSpec::a100()), keys(size), values(size),
          key_seed(size), value_seed(size) {}
    gpusim::DeviceContext ctx;
    std::vector<std::uint64_t> keys, values;
    std::vector<std::uint64_t> key_seed, value_seed;
  };
  auto st = std::make_shared<State>(n);
  Xoshiro256 rng(1234);
  for (std::size_t i = 0; i < n; ++i) {
    st->key_seed[i] = rng();
    st->value_seed[i] = i;
  }
  return [st](const Config& cfg) -> double {
    primitives::SortConfig sc;
    const auto bits = cfg.find("radix_bits");
    if (bits != cfg.end() && bits->second >= 1 && bits->second <= 8) {
      sc.radix_bits = static_cast<unsigned>(bits->second);
    }
    sc.chunk = knob(cfg, "chunk", sc.chunk);
    sc.lanes = knob(cfg, "lanes", sc.lanes);
    st->keys = st->key_seed;
    st->values = st->value_seed;
    Timer timer;
    primitives::device_radix_sort_pairs<std::uint64_t, std::uint64_t>(
        st->ctx, std::span<std::uint64_t>(st->keys),
        std::span<std::uint64_t>(st->values), sc);
    return timer.seconds() * 1e3;
  };
}

Objective primitives_scan_objective(std::size_t n) {
  struct State {
    explicit State(std::size_t size)
        : ctx(gpusim::GpuSpec::a100()), in(size), out(size) {}
    gpusim::DeviceContext ctx;
    std::vector<double> in, out;
  };
  auto st = std::make_shared<State>(n);
  Xoshiro256 rng(5678);
  for (std::size_t i = 0; i < n; ++i) st->in[i] = rng.uniform() - 0.5;
  return [st](const Config& cfg) -> double {
    primitives::ScanConfig sc;
    sc.chunk = knob(cfg, "chunk", sc.chunk);
    sc.lanes = knob(cfg, "lanes", sc.lanes);
    primitives::ReduceConfig rc;
    rc.lanes = sc.lanes;
    rc.items_per_lane = knob(cfg, "items_per_lane", rc.items_per_lane);
    Timer timer;
    primitives::device_exclusive_scan(st->ctx, std::span<const double>(st->in),
                                      std::span<double>(st->out),
                                      primitives::SumOp<double>{}, sc);
    // The reduce runs through real launches — it cannot be elided; the
    // value itself is pinned elsewhere (tuned_vs_default, oracle tests).
    (void)primitives::device_reduce(st->ctx, std::span<const double>(st->in),
                                    primitives::SumOp<double>{}, rc);
    return timer.seconds() * 1e3;
  };
}

}  // namespace portabench::tune
