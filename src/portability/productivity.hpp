// Productivity analysis (the paper "comments on ... productivity",
// Sections I/V/VI), made quantitative.
//
// For each programming model we record the observable effort properties
// of the paper's own Fig. 2/3 kernels: source lines, parallelization
// mechanism and its invasiveness, whether thread placement is
// controllable, build-time vs run-time specialization, and half-precision
// ergonomics.  From these we derive a relative-effort score and the
// combined performance-productivity plot coordinates used by the
// productivity bench.
#pragma once

#include <string>
#include <vector>

#include "metric.hpp"

namespace portabench::portability {

/// How a model expresses parallelism (Section III's classification).
enum class Mechanism {
  kPragma,     ///< #pragma omp parallel for (C/OpenMP)
  kLambda,     ///< parallel dispatch of a C++ lambda (Kokkos)
  kMacro,      ///< @threads macro on a loop (Julia)
  kDecorator,  ///< @njit(parallel=True) + prange (Numba)
  kKernel,     ///< explicit device kernel + launch (CUDA/HIP, GPU frontends)
};

[[nodiscard]] std::string_view name(Mechanism m);

/// Effort profile of one implementation (one Fig. 2/3 snippet).
struct EffortProfile {
  Family family;
  bool gpu = false;
  std::string implementation;    ///< legend name
  std::size_t kernel_sloc = 0;   ///< lines of the kernel itself
  std::size_t harness_sloc = 0;  ///< allocation + launch + transfer boilerplate
  Mechanism mechanism = Mechanism::kPragma;
  bool thread_pinning_api = false;  ///< can the user bind threads?
  bool needs_rebuild_per_target = false;  ///< Kokkos: KOKKOS_DEVICES at compile time
  bool seamless_fp16 = false;    ///< FP16 with random init "just works"
  std::size_t compile_seconds = 0;  ///< AOT build or first-call JIT latency
};

/// The study's effort profiles, derived from the Fig. 2/3 code and the
/// Tables I/II stacks.  CPU and GPU variants are separate entries.
[[nodiscard]] std::vector<EffortProfile> study_profiles();

/// Total source burden of a profile.
[[nodiscard]] std::size_t total_sloc(const EffortProfile& p);

/// Relative effort vs the vendor model on the same target class
/// (C/OpenMP for CPU entries, CUDA/HIP for GPU entries): ratio of total
/// SLOC, plus a +20% penalty when per-target rebuilds are required and a
/// -10% credit for seamless FP16.
[[nodiscard]] double relative_effort(const EffortProfile& p,
                                     const std::vector<EffortProfile>& all);

/// Performance-productivity score: Phi / relative_effort.  > Phi means
/// the model is *cheaper* than the vendor baseline per unit performance.
[[nodiscard]] double pp_score(double phi, double rel_effort);

}  // namespace portabench::portability
