#include "snippets.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace portabench::portability {

namespace {

// --- Fig. 2: CPU kernels ---------------------------------------------------

constexpr std::string_view kFig2aCOpenMP = R"(// C/OpenMP (Fig. 2a)
#pragma omp parallel for private(temp)
for (size_t i = 0; i < A_rows; ++i) {
  for (size_t k = 0; k < A_cols; ++k) {
    temp = A[i * A_cols + k];
    for (size_t j = 0; j < B_cols; ++j) {
      C[i * B_cols + j] += temp * B[k * B_cols + j];
    }
  }
}
)";

constexpr std::string_view kFig2bKokkos = R"(// Kokkos (Fig. 2b)
Kokkos::parallel_for(
    "gemm", Kokkos::MDRangePolicy<Kokkos::Rank<2>>({0, 0}, {A_rows, B_cols}),
    KOKKOS_LAMBDA(const size_t i, const size_t j) {
      double sum = 0.0;
      for (size_t k = 0; k < A_cols; ++k) {
        sum += A(i, k) * B(k, j);
      }
      C(i, j) += sum;
    });
)";

constexpr std::string_view kFig2cJulia = R"(# Julia threads (Fig. 2c)
import Base.Threads: @threads
function gemm(A, B, C)
    @threads for j in 1:B_cols
        for l in 1:A_cols
            @inbounds temp = B[l, j]
            for i in 1:A_rows
                @inbounds C[i, j] += temp * A[i, l]
            end
        end
    end
end
)";

constexpr std::string_view kFig2dNumba = R"(# Python/Numba (Fig. 2d)
from numba import njit, prange
import numpy as np

@njit(parallel=True, nogil=True, fastmath=True)
def gemm(A, B, C):
    for i in prange(0, A_rows):
        for k in range(0, A_cols):
            temp = A[i, k]
            for j in range(0, B_cols):
                C[i, j] += temp * B[k, j]
)";

// --- Fig. 3: GPU kernels ---------------------------------------------------

constexpr std::string_view kFig3aCudaHip = R"(// CUDA/HIP (Fig. 3a)
__global__ void gemm(const double* A, const double* B, double* C,
                     int n, int k) {
  int row = blockIdx.y * blockDim.y + threadIdx.y;
  int col = blockIdx.x * blockDim.x + threadIdx.x;
  double sum = 0.0;
  if (row < A_rows && col < B_cols) {
    for (int i = 0; i < n; i++) {
      sum += A[row * n + i] * B[i * k + col];
    }
    C[row * k + col] = sum;
  }
}
)";

constexpr std::string_view kFig3bKokkosGpu = R"(// Kokkos CUDA/HIP back end (same source as Fig. 2b)
Kokkos::parallel_for(
    "gemm", Kokkos::MDRangePolicy<Kokkos::Rank<2>>({0, 0}, {A_rows, B_cols}),
    KOKKOS_LAMBDA(const size_t i, const size_t j) {
      double sum = 0.0;
      for (size_t k = 0; k < A_cols; ++k) {
        sum += A(i, k) * B(k, j);
      }
      C(i, j) += sum;
    });
)";

constexpr std::string_view kFig3bcJuliaGpu = R"(# Julia CUDA.jl / AMDGPU.jl (Figs. 3b/3c)
function gemm!(A, B, C)
    i = (blockIdx().x - 1) * blockDim().x + threadIdx().x
    j = (blockIdx().y - 1) * blockDim().y + threadIdx().y
    if i <= size(C, 1) && j <= size(C, 2)
        tmp = zero(eltype(C))
        for l in 1:size(A, 2)
            @inbounds tmp += A[i, l] * B[l, j]
        end
        @inbounds C[i, j] = tmp
    end
    return
end
)";

constexpr std::string_view kFig3dNumbaCuda = R"(# Numba CUDA (Fig. 3d)
from numba import cuda
from numba.cuda.cudadrv.devicearray import DeviceNDArray
import numpy as np

@cuda.jit
def gemm(A, B, C):
    i, j = cuda.grid(2)
    if i < C.shape[0] and j < C.shape[1]:
        tmp = 0.
        for k in range(A.shape[1]):
            tmp += A[i, k] * B[k, j]
        C[i, j] = tmp
)";

}  // namespace

std::size_t count_sloc(std::string_view source, Language language) {
  std::size_t sloc = 0;
  bool in_block_comment = false;

  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t eol = std::min(source.find('\n', pos), source.size());
    std::string_view line = source.substr(pos, eol - pos);
    pos = eol + 1;

    bool has_code = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (language == Language::kC && i + 1 < line.size() && line[i] == '*' &&
            line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        } else if (language == Language::kJulia && i + 1 < line.size() && line[i] == '=' &&
                   line[i + 1] == '#') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      const char ch = line[i];
      if (ch == ' ' || ch == '\t' || ch == '\r') continue;
      if (language == Language::kC && ch == '/' && i + 1 < line.size()) {
        if (line[i + 1] == '/') break;  // rest of line is comment
        if (line[i + 1] == '*') {
          in_block_comment = true;
          ++i;
          continue;
        }
      }
      if ((language == Language::kJulia || language == Language::kPython) && ch == '#') {
        if (language == Language::kJulia && i + 1 < line.size() && line[i + 1] == '=') {
          in_block_comment = true;
          ++i;
          continue;
        }
        break;  // line comment
      }
      has_code = true;
    }
    if (has_code) ++sloc;
    if (eol == source.size()) break;
  }
  return sloc;
}

const std::vector<Snippet>& paper_snippets() {
  using perfmodel::Family;
  static const std::vector<Snippet> snippets = {
      {Family::kVendor, false, "Fig. 2a", Language::kC, kFig2aCOpenMP},
      {Family::kKokkos, false, "Fig. 2b", Language::kC, kFig2bKokkos},
      {Family::kJulia, false, "Fig. 2c", Language::kJulia, kFig2cJulia},
      {Family::kNumba, false, "Fig. 2d", Language::kPython, kFig2dNumba},
      {Family::kVendor, true, "Fig. 3a", Language::kC, kFig3aCudaHip},
      {Family::kKokkos, true, "Fig. 3b (source of 2b)", Language::kC, kFig3bKokkosGpu},
      {Family::kJulia, true, "Figs. 3b/3c", Language::kJulia, kFig3bcJuliaGpu},
      {Family::kNumba, true, "Fig. 3d", Language::kPython, kFig3dNumbaCuda},
  };
  return snippets;
}

std::size_t snippet_sloc(perfmodel::Family family, bool gpu) {
  for (const auto& s : paper_snippets()) {
    if (s.family == family && s.gpu == gpu) return count_sloc(s.source, s.language);
  }
  throw precondition_error("no paper listing for this family/target");
}

}  // namespace portabench::portability
