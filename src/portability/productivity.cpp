#include "productivity.hpp"

#include "common/error.hpp"
#include "snippets.hpp"

namespace portabench::portability {

std::string_view name(Mechanism m) {
  switch (m) {
    case Mechanism::kPragma: return "pragma";
    case Mechanism::kLambda: return "lambda";
    case Mechanism::kMacro: return "macro";
    case Mechanism::kDecorator: return "decorator";
    case Mechanism::kKernel: return "device kernel";
  }
  return "?";
}

std::vector<EffortProfile> study_profiles() {
  // Kernel SLOC is *counted from the paper's own Fig. 2 / Fig. 3
  // listings* (snippets.cpp); only the allocation/launch harness
  // estimates are asserted here.
  auto sloc = [](Family f, bool gpu) { return snippet_sloc(f, gpu); };
  return {
      // --- CPU (Fig. 2) ---
      {Family::kVendor, false, "C/OpenMP", sloc(Family::kVendor, false), 8,
       Mechanism::kPragma, /*pin*/ true, /*rebuild*/ false, /*fp16*/ false, /*compile*/ 3},
      {Family::kKokkos, false, "Kokkos/OpenMP", sloc(Family::kKokkos, false), 14,
       Mechanism::kLambda, true, true, false, 45},
      {Family::kJulia, false, "Julia Threads", sloc(Family::kJulia, false), 4,
       Mechanism::kMacro, true, false, true, 1},
      {Family::kNumba, false, "Python/Numba", sloc(Family::kNumba, false), 5,
       Mechanism::kDecorator, false, false, false, 1},
      // --- GPU (Fig. 3) ---
      {Family::kVendor, true, "CUDA/HIP", sloc(Family::kVendor, true), 16,
       Mechanism::kKernel, false, true, false, 8},
      {Family::kKokkos, true, "Kokkos/CUDA-HIP", sloc(Family::kKokkos, true), 14,
       Mechanism::kLambda, false, true, false, 90},
      {Family::kJulia, true, "Julia CUDA.jl/AMDGPU.jl", sloc(Family::kJulia, true), 6,
       Mechanism::kKernel, false, false, true, 3},
      {Family::kNumba, true, "Numba CUDA", sloc(Family::kNumba, true), 6,
       Mechanism::kKernel, false, false, false, 2},
  };
}

std::size_t total_sloc(const EffortProfile& p) { return p.kernel_sloc + p.harness_sloc; }

double relative_effort(const EffortProfile& p, const std::vector<EffortProfile>& all) {
  const EffortProfile* reference = nullptr;
  for (const auto& candidate : all) {
    if (candidate.family == Family::kVendor && candidate.gpu == p.gpu) reference = &candidate;
  }
  PB_EXPECTS(reference != nullptr);
  double effort = static_cast<double>(total_sloc(p)) /
                  static_cast<double>(total_sloc(*reference));
  if (p.needs_rebuild_per_target) effort *= 1.20;
  if (p.seamless_fp16) effort *= 0.90;
  return effort;
}

double pp_score(double phi, double rel_effort) {
  PB_EXPECTS(rel_effort > 0.0);
  return phi / rel_effort;
}

}  // namespace portabench::portability
