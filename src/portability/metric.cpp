#include "metric.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "perfmodel/predict.hpp"

namespace portabench::portability {

double series_efficiency(std::span<const double> model_gflops,
                         std::span<const double> vendor_gflops) {
  PB_EXPECTS(model_gflops.size() == vendor_gflops.size());
  PB_EXPECTS(!model_gflops.empty());
  std::vector<double> ratios;
  ratios.reserve(model_gflops.size());
  for (std::size_t i = 0; i < model_gflops.size(); ++i) {
    PB_EXPECTS(vendor_gflops[i] > 0.0);
    ratios.push_back(model_gflops[i] / vendor_gflops[i]);
  }
  return mean_of(ratios);
}

double ceiling_efficiency(double model_seconds, double ceiling_seconds) {
  PB_EXPECTS(model_seconds > 0.0 && ceiling_seconds > 0.0);
  return ceiling_seconds / model_seconds;
}

double phi_arithmetic(std::span<const EfficiencyEntry> entries) {
  if (entries.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : entries) {
    if (e.supported) sum += e.efficiency;  // unsupported contributes 0 to the numerator
  }
  return sum / static_cast<double>(entries.size());
}

double phi_pennycook(std::span<const EfficiencyEntry> entries) {
  std::vector<double> values;
  for (const auto& e : entries) {
    if (!e.supported) return 0.0;  // fails anywhere => not portable
    values.push_back(e.efficiency);
  }
  return harmonic_mean_of(values);
}

double phi_harmonic_supported(std::span<const EfficiencyEntry> entries) {
  std::vector<double> supported;
  for (const auto& e : entries) {
    if (e.supported) supported.push_back(e.efficiency);
  }
  return harmonic_mean_of(supported);
}

std::vector<FamilyPortability> build_table3() {
  using perfmodel::kAllPlatforms;
  using perfmodel::kPortableFamilies;
  std::vector<FamilyPortability> out;

  for (Precision prec : {Precision::kDouble, Precision::kSingle}) {
    for (Family family : kPortableFamilies) {
      FamilyPortability fp;
      fp.family = family;
      fp.precision = prec;
      for (Platform platform : kAllPlatforms) {
        EfficiencyEntry entry;
        entry.platform = platform;
        const auto model = perfmodel::predict_sweep(platform, family, prec);
        const auto vendor = perfmodel::predict_sweep(platform, Family::kVendor, prec);
        if (model.empty() || vendor.empty()) {
          entry.supported = false;
        } else {
          std::vector<double> m;
          std::vector<double> v;
          for (const auto& pt : model) m.push_back(pt.gflops);
          for (const auto& pt : vendor) v.push_back(pt.gflops);
          entry.efficiency = series_efficiency(m, v);
        }
        fp.entries.push_back(entry);
      }
      fp.phi = phi_arithmetic(fp.entries);
      out.push_back(std::move(fp));
    }
  }
  return out;
}

std::vector<double> cascade(std::span<const EfficiencyEntry> entries) {
  std::vector<double> effs;
  for (const auto& e : entries) {
    if (e.supported) effs.push_back(e.efficiency);
  }
  std::sort(effs.rbegin(), effs.rend());
  std::vector<double> out;
  std::vector<double> prefix;
  for (double e : effs) {
    prefix.push_back(e);
    out.push_back(mean_of(prefix));
  }
  return out;
}

}  // namespace portabench::portability
