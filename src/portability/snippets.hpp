// The paper's kernel listings (Figs. 2 and 3), verbatim, plus a
// language-aware SLOC counter.
//
// The productivity analysis should measure the *actual code* the paper
// shows, not hand-asserted counts.  This module stores each listing as a
// string constant and counts source lines the way productivity studies
// do: blank lines and comment-only lines excluded, continuation glued by
// the language's syntax left as-is.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "perfmodel/platform.hpp"

namespace portabench::portability {

/// Comment syntax families for the SLOC counter.
enum class Language {
  kC,       ///< // and /* */ comments (C, C++, CUDA, HIP)
  kJulia,   ///< # comments, #= =# blocks
  kPython,  ///< # comments (docstrings counted as code, as SLOCCount does)
};

/// Count source lines of code: non-blank lines that contain anything
/// other than comments.
[[nodiscard]] std::size_t count_sloc(std::string_view source, Language language);

/// One of the paper's listings.
struct Snippet {
  perfmodel::Family family;
  bool gpu;
  std::string_view figure;  ///< "Fig. 2a" ... "Fig. 3d"
  Language language;
  std::string_view source;
};

/// All eight listings of Figs. 2-3.
[[nodiscard]] const std::vector<Snippet>& paper_snippets();

/// SLOC of the listing for (family, gpu); throws if the paper has no such
/// listing (e.g. Numba on GPU exists, Vendor GPU maps to the CUDA/HIP
/// kernel of Fig. 3a).
[[nodiscard]] std::size_t snippet_sloc(perfmodel::Family family, bool gpu);

}  // namespace portabench::portability
