// Performance-portability metrics (Section V).
//
// Implements the paper's Eq. (1): Phi_M = sum_i e_i(a) / |T| over the set
// of platforms T that support model M, with e_i the ratio of the portable
// model's performance to the vendor implementation on platform i
// (Eq. (2)).  Also provides Pennycook's original harmonic-mean variant
// [57] and the zero-for-unsupported convention, so the metric-definition
// ablation can contrast the choices the literature debates [58].
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/precision.hpp"
#include "perfmodel/platform.hpp"

namespace portabench::portability {

using perfmodel::Family;
using perfmodel::Platform;

/// Efficiency of one (model, platform) pair: Eq. (2).
struct EfficiencyEntry {
  Platform platform;
  double efficiency = 0.0;  ///< model perf / vendor perf, averaged over the sweep
  bool supported = true;
};

/// e_i from two aligned performance series (model and vendor reference
/// at the same sizes): the mean of the pointwise ratios.
[[nodiscard]] double series_efficiency(std::span<const double> model_gflops,
                                       std::span<const double> vendor_gflops);

/// Eq.-2 efficiency from *measured host timings* against the optimized
/// C++ tiled-GEMM ceiling (gemm/kernels_tiled.hpp, OptimizedCppRunner):
/// the fraction of the ceiling's rate a model's naive kernel reaches on
/// an identical problem, i.e. ceiling_seconds / model_seconds.  Values
/// above 1 mean the model beat the ceiling.  Both timings must be > 0.
[[nodiscard]] double ceiling_efficiency(double model_seconds, double ceiling_seconds);

/// Phi_M per the paper's Eq. (1): arithmetic mean of e_i over all |T|
/// platforms, with unsupported platforms contributing zero.  This is the
/// convention Table III uses: Numba's Phi of 0.348 is
/// (0.550 + 0.713 + 0 + 0.130) / 4, charging the missing AMD GPU backend
/// against the model.
[[nodiscard]] double phi_arithmetic(std::span<const EfficiencyEntry> entries);

/// Pennycook's original metric [57]: harmonic mean over supported
/// platforms, but 0 if *any* platform in the set is unsupported.
[[nodiscard]] double phi_pennycook(std::span<const EfficiencyEntry> entries);

/// Harmonic mean over supported platforms only (the relaxed variant
/// discussed by Marowka [58]).
[[nodiscard]] double phi_harmonic_supported(std::span<const EfficiencyEntry> entries);

/// One row block of Table III for a family at a precision.
struct FamilyPortability {
  Family family;
  Precision precision;
  std::vector<EfficiencyEntry> entries;  ///< one per platform, Table III order
  double phi = 0.0;                      ///< Eq. (1)
};

/// Build the modeled Table III: per portable family and precision
/// (double, single), efficiencies on the four platforms and Phi_M.
[[nodiscard]] std::vector<FamilyPortability> build_table3();

/// Performance-portability "cascade" (Pennycook): Phi as a function of
/// the number of platforms included, sorted best-first.  Shows how each
/// added platform erodes a model's score.
[[nodiscard]] std::vector<double> cascade(std::span<const EfficiencyEntry> entries);

}  // namespace portabench::portability
