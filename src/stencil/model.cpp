#include "model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace portabench::stencil {

namespace {

StencilPrediction predict(double peak_gflops, double bw_gbs, double bw_eff,
                          std::size_t rows, std::size_t cols, double bytes_per_point) {
  PB_EXPECTS(rows >= 3 && cols >= 3);
  StencilPrediction p;
  const double points = static_cast<double>(rows - 2) * static_cast<double>(cols - 2);
  p.flops = 4.0 * points;  // 3 adds + 1 multiply
  p.bytes = bytes_per_point * points;
  p.arithmetic_intensity = p.flops / p.bytes;
  const double mem_s = p.bytes / (bw_gbs * 1.0e9 * bw_eff);
  const double compute_s = p.flops / (peak_gflops * 1.0e9);
  p.seconds = std::max(mem_s, compute_s);
  p.gflops = p.flops / p.seconds / 1.0e9;
  p.sweeps_per_second = 1.0 / p.seconds;
  return p;
}

}  // namespace

StencilPrediction predict_stencil_cpu(const perfmodel::CpuSpec& cpu, std::size_t rows,
                                      std::size_t cols) {
  // Rolling 3-row window fits every cache of interest: in read once,
  // out written once (streaming stores still read-for-ownership: 3x8).
  return predict(cpu.peak_gflops(Precision::kDouble), cpu.mem_bw_gbs, 0.80, rows, cols,
                 3.0 * 8.0);
}

StencilPrediction predict_stencil_gpu(const perfmodel::GpuPerfSpec& gpu, std::size_t rows,
                                      std::size_t cols, bool tiled) {
  // Naive: each input cell is loaded by up to 4 neighbouring threads;
  // L2 catches about half of that on a 2-D block.  Tiled: shared memory
  // restores the ideal 2 transfers per point.
  const double bytes_per_point = tiled ? 2.0 * 8.0 : 3.2 * 8.0;
  return predict(gpu.peak_fp64_gflops, gpu.mem_bw_gbs, 0.80, rows, cols, bytes_per_point);
}

}  // namespace portabench::stencil
