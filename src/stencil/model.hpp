// Stencil roofline: the middle of the arithmetic-intensity spectrum.
//
// A 5-point Jacobi sweep does 4 flops per point against ~2 doubles of
// streaming traffic (read in once — neighbours come from cache — write
// out once): AI ~ 0.25 flop/byte, between SpMV (~0.12) and cached GEMM
// (>1).  Completes the three-workload roofline coverage.
#pragma once

#include <cstddef>

#include "perfmodel/device_specs.hpp"

namespace portabench::stencil {

struct StencilPrediction {
  double flops = 0.0;
  double bytes = 0.0;
  double seconds = 0.0;
  double gflops = 0.0;
  double arithmetic_intensity = 0.0;
  double sweeps_per_second = 0.0;
};

/// Model one sweep over an rows x cols grid of FP64 values.
/// `cache_resident_rows` models the rolling window of `in` rows the cache
/// retains (3 rows needed for full reuse; below that, neighbours re-hit
/// DRAM).
[[nodiscard]] StencilPrediction predict_stencil_cpu(const perfmodel::CpuSpec& cpu,
                                                    std::size_t rows, std::size_t cols);

[[nodiscard]] StencilPrediction predict_stencil_gpu(const perfmodel::GpuPerfSpec& gpu,
                                                    std::size_t rows, std::size_t cols,
                                                    bool tiled = false);

}  // namespace portabench::stencil
