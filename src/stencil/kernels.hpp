// Jacobi sweep kernels across the substrates.
//
// One mathematical sweep — out(i,j) = average of in's four neighbours —
// expressed the way each programming model writes it: a serial loop nest,
// an MDRange dispatch (the Kokkos/host shape), an explicit-SIMD host
// sweep (simrt::simd row kernels, tier-dispatched), a fine-granularity
// device kernel (the Fig. 3 shape), and a shared-memory tiled cooperative
// device kernel (the optimization the naive version leaves out; its halo
// loads exercise the simulator's barrier semantics).
#pragma once

#include "gpusim/batch.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "grid.hpp"
#include "simrt/simd.hpp"

namespace portabench::stencil {

/// Serial reference sweep.  View-generic (plain or shadow views).
template <class VIn, class VOut>
void sweep_serial(const VIn& in, VOut& out) {
  static_assert(VIn::is_row_major && VOut::is_row_major);
  for (std::size_t i = 1; i + 1 < in.extent(0); ++i) {
    for (std::size_t j = 1; j + 1 < in.extent(1); ++j) {
      out(i, j) = 0.25 * (in(i - 1, j) + in(i + 1, j) + in(i, j - 1) + in(i, j + 1));
    }
  }
}

/// Host-parallel sweep via MDRangePolicy (the Kokkos shape).
template <class Space, class VIn, class VOut>
void sweep_mdrange(const Space& space, const VIn& in, VOut& out) {
  static_assert(VIn::is_row_major && VOut::is_row_major);
  simrt::parallel_for(space,
                      simrt::MDRangePolicy2({1, 1}, {in.extent(0) - 1, in.extent(1) - 1}),
                      [&](std::size_t i, std::size_t j) {
                        out(i, j) = 0.25 * (in(i - 1, j) + in(i + 1, j) + in(i, j - 1) +
                                            in(i, j + 1));
                      });
}

namespace stencil_detail {

/// One interior row of the 5-point sweep over raw row pointers:
/// out[j] = 0.25 * (((up[j] + dn[j]) + mid[j-1]) + mid[j+1]) for
/// j in [1, cols-1) — the exact association order of the scalar sweep
/// expression, per lane, so every width gives the scalar bits (the op
/// is pure per-element; no accumulation crosses lanes).
template <std::size_t W>
inline void sweep_row_w(const double* up, const double* mid, const double* dn, double* out,
                        std::size_t cols) noexcept {
  using V = simrt::simd<double, W>;
  const V quarter(0.25);
  const std::size_t end = cols - 1;
  std::size_t j = 1;
  for (; j + W <= end; j += W) {
    const V s =
        ((V::load(up + j) + V::load(dn + j)) + V::load(mid + j - 1)) + V::load(mid + j + 1);
    (quarter * s).store(out + j);
  }
  for (; j < end; ++j) {
    out[j] = 0.25 * (up[j] + dn[j] + mid[j - 1] + mid[j + 1]);
  }
}

using sweep_row_fn = void (*)(const double*, const double*, const double*, double*,
                              std::size_t);

#if PORTABENCH_SIMD_HAS_X86_TIERS
PORTABENCH_SIMD_TARGET_AVX2 inline void sweep_row_avx2(const double* up, const double* mid,
                                                       const double* dn, double* out,
                                                       std::size_t cols) noexcept {
  sweep_row_w<4>(up, mid, dn, out, cols);
}
PORTABENCH_SIMD_TARGET_AVX512 inline void sweep_row_avx512(const double* up, const double* mid,
                                                           const double* dn, double* out,
                                                           std::size_t cols) noexcept {
  sweep_row_w<8>(up, mid, dn, out, cols);
}
#endif

/// Row kernel for an explicit tier (tests pin every tier bit-for-bit).
[[nodiscard]] inline sweep_row_fn sweep_row_for_tier(simrt::SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == simrt::SimdTier::kAvx512) return &sweep_row_avx512;
  if (tier == simrt::SimdTier::kAvx2) return &sweep_row_avx2;
#endif
  (void)tier;
  return &sweep_row_w<simrt::native_lanes<double>>;
}

[[nodiscard]] inline sweep_row_fn pick_sweep_row() noexcept {
  static const sweep_row_fn fn = sweep_row_for_tier(simrt::simd_dispatch_tier());
  return fn;
}

}  // namespace stencil_detail

/// Explicit-SIMD host sweep over raw row-major views: the simrt::simd
/// row kernel above, tier-dispatched once per process, parallelized over
/// interior rows.  Bit-identical to sweep_serial/sweep_mdrange on every
/// tier (pinned per-lane association order; the sanitized suite checks).
template <class Space>
void sweep_simd(const Space& space, const simrt::View2<double, simrt::LayoutRight>& in,
                simrt::View2<double, simrt::LayoutRight>& out) {
  PB_EXPECTS(in.extent(0) == out.extent(0) && in.extent(1) == out.extent(1));
  PB_EXPECTS(in.stride(1) == 1 && out.stride(1) == 1);
  const std::size_t rows = in.extent(0);
  const std::size_t cols = in.extent(1);
  if (rows < 3 || cols < 3) return;
  const stencil_detail::sweep_row_fn row = stencil_detail::pick_sweep_row();
  const double* ibase = in.data();
  double* obase = out.data();
  const std::size_t istr = in.stride(0);
  const std::size_t ostr = out.stride(0);
  simrt::parallel_for(space, simrt::RangePolicy(1, rows - 1), [=](std::size_t i) {
    row(ibase + (i - 1) * istr, ibase + i * istr, ibase + (i + 1) * istr, obase + i * ostr,
        cols);
  });
}

/// Naive device sweep: one thread per interior point, global loads only.
/// `in`/`out` are anything flat-indexable (raw pointers or shadow device
/// buffers), row-major linearized.
template <class PIn, class POut>
void sweep_gpu_naive(gpusim::DeviceContext& ctx, const PIn& in, POut&& out,
                     std::size_t rows, std::size_t cols,
                     const gpusim::Dim3& block = {32, 8, 1}) {
  const gpusim::Dim3 grid{gpusim::blocks_for(cols, block.x),
                          gpusim::blocks_for(rows, block.y), 1};
  gpusim::launch(ctx, grid, block, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t i = tc.global_y();
    const std::size_t j = tc.global_x();
    if (i >= 1 && i + 1 < rows && j >= 1 && j + 1 < cols) {
      out[i * cols + j] = 0.25 * (in[(i - 1) * cols + j] + in[(i + 1) * cols + j] +
                                  in[i * cols + j - 1] + in[i * cols + j + 1]);
    }
  });
}

/// Shared-memory tiled device sweep: each block cooperatively stages its
/// tile plus halo, then computes from shared memory — the classic stencil
/// optimization, expressed with the simulator's barrier semantics.
template <class PIn, class POut>
void sweep_gpu_tiled(gpusim::DeviceContext& ctx, const PIn& in, POut&& out,
                     std::size_t rows, std::size_t cols,
                     std::size_t tile = 16) {  // portalint: tn-magic-tile-ok(device smem tile bound by the modeled 48KB budget, not host-tunable)
  PB_EXPECTS(tile >= 2);
  const std::size_t halo = tile + 2;
  const gpusim::Dim3 block{tile, tile, 1};
  const gpusim::Dim3 grid{gpusim::blocks_for(cols, tile), gpusim::blocks_for(rows, tile), 1};
  const std::size_t shared_bytes = halo * halo * sizeof(double);

  gpusim::launch_blocks(ctx, grid, block, shared_bytes, [&](gpusim::BlockCtx& bc) {
    auto shared = bc.shared<double>(halo * halo);
    const std::size_t base_i = bc.block_idx().y * tile;  // tile origin (interior coords)
    const std::size_t base_j = bc.block_idx().x * tile;

    // Phase 1: cooperative halo load — each lane loads its cell plus a
    // strided share of the halo ring.
    bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
      for (std::size_t idx = tc.lane_in_block(); idx < halo * halo;
           idx += tc.block_dim.volume()) {
        const std::size_t li = idx / halo;
        const std::size_t lj = idx % halo;
        const std::size_t gi = base_i + li;  // global row of shared(li, lj)
        const std::size_t gj = base_j + lj;
        shared[idx] = (gi < rows && gj < cols) ? in[gi * cols + gj] : 0.0;
      }
    });

    // Phase 2 (after the implicit barrier): compute from shared memory.
    bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
      const std::size_t li = tc.thread_idx.y + 1;  // interior of the halo tile
      const std::size_t lj = tc.thread_idx.x + 1;
      const std::size_t gi = base_i + li;
      const std::size_t gj = base_j + lj;
      if (gi >= 1 && gi + 1 < rows && gj >= 1 && gj + 1 < cols) {
        out[gi * cols + gj] = 0.25 * (shared[(li - 1) * halo + lj] +
                                      shared[(li + 1) * halo + lj] +
                                      shared[li * halo + lj - 1] +
                                      shared[li * halo + lj + 1]);
      }
    });
  });
}

// ---------------------------------------------------------------------------
// Batched entry point (serving layer).
// ---------------------------------------------------------------------------

/// One 5-point sweep of a batch: dense row-major n x n raw buffers.
struct StencilBatchItem {
  const double* in = nullptr;
  double* out = nullptr;
  std::size_t n = 0;
};

/// Run every item as one engine launch (one item per block), each item a
/// serial row walk through the tier-dispatched SIMD row kernel — which is
/// pinned bit-identical to sweep_serial on every tier, so the batch
/// result matches the serial frontend byte for byte.  Under portacheck
/// the batch executes as a seed-permuted serial schedule.
inline void sweep_batched(gpusim::LaunchEngine& engine,
                          std::span<const StencilBatchItem> items) {
  const stencil_detail::sweep_row_fn row = stencil_detail::pick_sweep_row();
  std::size_t total_threads = 0;
  for (const auto& item : items) total_threads += item.n * item.n;
  gpusim::run_batch(engine, items.size(), total_threads,
                    [items, row](std::size_t, std::size_t idx) {
                      const StencilBatchItem& item = items[idx];
                      const std::size_t n = item.n;
                      if (n < 3) return;
                      for (std::size_t i = 1; i + 1 < n; ++i) {
                        row(item.in + (i - 1) * n, item.in + i * n, item.in + (i + 1) * n,
                            item.out + i * n, n);
                      }
                    });
}

/// Run Jacobi to convergence: sweeps until the max-norm update falls
/// below `tolerance` or `max_sweeps` is hit.  Returns the sweep count.
template <class Space>
std::size_t solve_jacobi(const Space& space, Grid2D& grid, double tolerance,
                         std::size_t max_sweeps) {
  PB_EXPECTS(tolerance > 0.0 && max_sweeps > 0);
  for (std::size_t sweep = 1; sweep <= max_sweeps; ++sweep) {
    sweep_simd(space, grid.front(), grid.back());
    const double r = residual_max(space, grid.front(), grid.back());
    grid.swap();
    if (r < tolerance) return sweep;
  }
  return max_sweeps;
}

}  // namespace portabench::stencil
