// Structured 2-D grids for the stencil workload.
//
// The third workload family (after GEMM and SpMV): a 5-point Jacobi
// iteration, the hyperbolic/elliptic-PDE shape behind the Julia
// applications the paper cites (Trixi.jl, Section II-a).  Grid2D bundles
// the ping-pong buffer pair, Dirichlet boundary handling, and the norms
// the solver loop needs.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "primitives/reduce.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"
#include "simrt/reducers.hpp"
#include "simrt/simd_reduce.hpp"

namespace portabench::stencil {

/// Ping-pong pair of row-major fields with fixed (Dirichlet) boundaries.
class Grid2D {
 public:
  Grid2D(std::size_t rows, std::size_t cols)
      : a_(rows, cols), b_(rows, cols) {
    PB_EXPECTS(rows >= 3 && cols >= 3);  // need an interior
  }

  [[nodiscard]] std::size_t rows() const noexcept { return a_.extent(0); }
  [[nodiscard]] std::size_t cols() const noexcept { return a_.extent(1); }

  /// Current (front) and next (back) fields; swap() after each sweep.
  [[nodiscard]] simrt::View2<double, simrt::LayoutRight>& front() noexcept { return a_; }
  [[nodiscard]] simrt::View2<double, simrt::LayoutRight>& back() noexcept { return b_; }
  void swap() noexcept { std::swap(a_, b_); }

  /// Apply a hot-top-edge boundary (value on row 0, zero elsewhere) to
  /// both buffers — the canonical heat-plate setup.
  void set_hot_top(double value) {
    for (std::size_t j = 0; j < cols(); ++j) {
      a_(0, j) = value;
      b_(0, j) = value;
    }
  }

  /// Sum over interior points of the front buffer (a cheap fingerprint).
  [[nodiscard]] double interior_sum() const {
    double sum = 0.0;
    for (std::size_t i = 1; i + 1 < rows(); ++i) {
      for (std::size_t j = 1; j + 1 < cols(); ++j) sum += a_(i, j);
    }
    return sum;
  }

 private:
  simrt::View2<double, simrt::LayoutRight> a_;
  simrt::View2<double, simrt::LayoutRight> b_;
};

/// Max-norm of the difference between two fields' interiors: the Jacobi
/// convergence residual.  The per-row partial runs through the SIMD
/// max-abs-diff reduction (simrt/simd_reduce.hpp) — max is exact, so the
/// blocked form returns the identical value to the scalar j loop.
template <class Space>
double residual_max(const Space& space, const simrt::View2<double, simrt::LayoutRight>& u,
                    const simrt::View2<double, simrt::LayoutRight>& v) {
  PB_EXPECTS(u.extent(0) == v.extent(0) && u.extent(1) == v.extent(1));
  const std::size_t rows = u.extent(0);
  const std::size_t cols = u.extent(1);
  const double* ubase = u.data();
  const double* vbase = v.data();
  const std::size_t ustr = u.stride(0);
  const std::size_t vstr = v.stride(0);
  return simrt::parallel_reduce(
      space, simrt::RangePolicy(1, rows - 1), simrt::Max<double>{},
      [=](std::size_t i, double& acc) {
        if (cols > 2) {
          acc = simrt::Max<double>::join(
              acc, simrt::simd_max_abs_diff(ubase + i * ustr + 1, vbase + i * vstr + 1,
                                            cols - 2));
        }
      });
}

/// Device-side residual: the interior-row partials run through the SAME
/// pinned-width simrt::simd_max_abs_diff kernel as the host path, and
/// the row partials combine through the primitives' hierarchical
/// (warp-tree) max reduce.  Max is exact, so this returns a value
/// bitwise-identical to residual_max for every space and schedule.
inline double residual_max_device(gpusim::DeviceContext& ctx,
                                  const simrt::View2<double, simrt::LayoutRight>& u,
                                  const simrt::View2<double, simrt::LayoutRight>& v) {
  PB_EXPECTS(u.extent(0) == v.extent(0) && u.extent(1) == v.extent(1));
  const std::size_t rows = u.extent(0);
  const std::size_t cols = u.extent(1);
  if (rows <= 2 || cols <= 2) return 0.0;
  const double* ubase = u.data();
  const double* vbase = v.data();
  const std::size_t ustr = u.stride(0);
  const std::size_t vstr = v.stride(0);
  return primitives::device_transform_reduce<double>(
      ctx, rows - 2, primitives::MaxOp<double>{}, [=](std::size_t r) {
        return simrt::simd_max_abs_diff(ubase + (r + 1) * ustr + 1,
                                        vbase + (r + 1) * vstr + 1, cols - 2);
      });
}

}  // namespace portabench::stencil
