// parallel_for / parallel_reduce over execution spaces.
//
// This is the mini-Kokkos dispatch layer used by the Kokkos frontend
// (Fig. 2b) and, under the hood, by the OpenMP/Julia/Numba CPU frontends
// (which differ in loop order, layout, scheduling, and pinning — not in
// the fork-join mechanism).  Serial and Threads host spaces are provided;
// the GPU spaces live in gpusim and share the same functor style.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

#include "policy.hpp"
#include "portacheck/hooks.hpp"
#include "thread_pool.hpp"

namespace portabench::simrt {

/// Trivial execution space: runs the functor inline on the caller.
class SerialSpace {
 public:
  static constexpr const char* label = "Serial";
  [[nodiscard]] std::size_t concurrency() const noexcept { return 1; }
};

/// Host-parallel execution space backed by a persistent ThreadPool.
/// Copies share the pool (cheap handles, like Kokkos execution space
/// instances).
class ThreadsSpace {
 public:
  static constexpr const char* label = "Threads";

  explicit ThreadsSpace(std::size_t num_threads, Placement placement = {})
      : pool_(std::make_shared<ThreadPool>(num_threads, std::move(placement))) {}

  [[nodiscard]] std::size_t concurrency() const noexcept { return pool_->size(); }
  [[nodiscard]] ThreadPool& pool() const noexcept { return *pool_; }

 private:
  std::shared_ptr<ThreadPool> pool_;
};

namespace detail {

/// Contiguous block [begin, end) owned by thread t of n under static
/// scheduling; remainder spread one-each over the leading threads
/// (OpenMP static schedule semantics).
struct Block {
  std::size_t begin;
  std::size_t end;
};

inline Block static_block(std::size_t extent, std::size_t num_threads, std::size_t t) {
  const std::size_t base = extent / num_threads;
  const std::size_t rem = extent % num_threads;
  const std::size_t begin = t * base + std::min(t, rem);
  const std::size_t len = base + (t < rem ? 1 : 0);
  return {begin, begin + len};
}

inline std::size_t default_chunk(std::size_t extent, std::size_t num_threads) {
  // Aim for ~chunks_per_thread chunks per thread (load balance), but
  // never chunks so small that per-chunk scheduling overhead exceeds the
  // work: at least min_grain iterations per chunk, relaxed to extent/nt
  // when the extent is too small to give every thread even one such
  // chunk (so all threads still participate).  Both knobs come from the
  // runtime tunables (simrt/tunables.hpp) so the autotuner can retune
  // them; chunking only repartitions iterations, so results stay
  // bitwise-identical across any setting.
  const DispatchTunables tn = dispatch_tunables();
  const std::size_t nt = std::max<std::size_t>(1, num_threads);
  const std::size_t cpt = std::max<std::size_t>(1, tn.chunks_per_thread);
  const std::size_t balanced = (extent + nt * cpt - 1) / (nt * cpt);  // ceil
  const std::size_t per_thread = std::max<std::size_t>(1, extent / nt);
  return std::max(balanced, std::min(std::max<std::size_t>(1, tn.min_grain), per_thread));
}

/// Per-thread chunk queue for dynamic scheduling: a contiguous range of
/// chunk indices drained from the front via fetch_add.  Padded so each
/// owner's hot counter lives on its own cache line — a thief touches a
/// remote line only when its own queue is empty (the old dispatch
/// funnelled every chunk of every thread through one shared counter).
struct alignas(kCacheLineBytes) ChunkQueue {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

/// Execute body(thread, chunk) for every chunk index in [0, nchunks).
/// Chunks are dealt to per-thread queues in contiguous blocks (so the
/// common case preserves locality); a thread drains its own queue, then
/// steals round-robin from its right neighbour's.  A steal uses the same
/// fetch_add pop as the owner, so the protocol stays lock-free; the
/// overshoot past `end` from racing pops is benign.  Work is fixed up
/// front, so after one full pass over all queues a thread can retire.
/// `work_hint` is the region's total iteration count, used for grain-based
/// fork elision (ThreadPool::run_auto): a sub-cutoff region drains all the
/// queues on the caller instead of forking.
template <class Body>
void work_steal_run(ThreadPool& pool, std::size_t nchunks, std::size_t work_hint,
                    Body&& body) {
  if (nchunks == 0) return;
  const std::size_t nt = pool.size();
  std::vector<ChunkQueue> queues(nt);
  for (std::size_t t = 0; t < nt; ++t) {
    const Block b = static_block(nchunks, nt, t);
    queues[t].next.store(b.begin, std::memory_order_relaxed);
    queues[t].end = b.end;
  }
  pool.run_auto([&](std::size_t t) {
    for (std::size_t v = 0; v < nt; ++v) {
      ChunkQueue& q = queues[(t + v) % nt];
      for (;;) {
        const std::size_t c = q.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= q.end) break;
        body(t, c);
      }
    }
  }, work_hint);
}

/// Cache-line-padded accumulator slot: per-thread reduce partials must
/// not share lines, or the join's writes ping-pong the line between
/// cores while the region is still running.
template <class T>
struct alignas(kCacheLineBytes) PaddedSlot {
  T value{};
};

// --- portacheck sanitized dispatch (see docs/SANITIZER.md) -----------------
//
// Under PORTABENCH_CHECK each parallel region opens a fresh shadow epoch,
// every logical iteration runs under its own lane id (iterations of one
// region are unordered, so per-iteration lanes flag conflicts even when
// two iterations land on the same pool thread), and the iteration chunks
// are executed in a seed-permuted order to prove schedule independence.

/// Chunked, seed-permuted execution of f over [0, extent) with lane ==
/// iteration index.  Threads grab permuted chunks from a shared counter.
template <class F>
void checked_range_run(ThreadPool& pool, std::size_t extent, std::size_t chunk, F& f) {
  const std::size_t nchunks = (extent + chunk - 1) / chunk;
  const auto order = portacheck::permutation(nchunks, portacheck::order_seed());
  std::atomic<std::size_t> next{0};
  pool.run([&](std::size_t) {
    for (;;) {
      const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
      if (slot >= nchunks) return;
      const std::size_t start = order[slot] * chunk;
      const std::size_t stop = std::min(start + chunk, extent);
      for (std::size_t i = start; i < stop; ++i) {
        portacheck::LaneScope lane(i);
        f(i);
      }
    }
  });
}

}  // namespace detail

// ---------------------------------------------------------------------------
// parallel_for — RangePolicy
// ---------------------------------------------------------------------------

/// Serial: f(i) for i in [begin, end).
template <class F>
void parallel_for(const SerialSpace&, const RangePolicy& policy, F&& f) {
  if (portacheck::active()) {
    portacheck::begin_region();
    const std::size_t extent = policy.extent();
    const auto order = portacheck::permutation(extent, portacheck::order_seed());
    for (std::size_t slot = 0; slot < extent; ++slot) {
      const std::size_t i = order[slot];
      portacheck::LaneScope lane(i);
      f(policy.begin + i);
    }
    return;
  }
  for (std::size_t i = policy.begin; i < policy.end; ++i) f(i);
}

/// Threads: iterations distributed per the policy's schedule.
template <class F>
void parallel_for(const ThreadsSpace& space, const RangePolicy& policy, F&& f) {
  const std::size_t extent = policy.extent();
  if (extent == 0) return;
  ThreadPool& pool = space.pool();
  const std::size_t nt = pool.size();

  if (portacheck::active()) {
    portacheck::begin_region();
    const std::size_t chunk =
        policy.chunk != 0 ? policy.chunk : detail::default_chunk(extent, nt);
    auto body = [&](std::size_t i) { f(policy.begin + i); };
    detail::checked_range_run(pool, extent, chunk, body);
    return;
  }

  if (policy.schedule == Schedule::kStatic) {
    pool.run_auto([&](std::size_t t) {
      const auto block = detail::static_block(extent, nt, t);
      for (std::size_t i = block.begin; i < block.end; ++i) f(policy.begin + i);
    }, extent);
    return;
  }

  const std::size_t chunk =
      policy.chunk != 0 ? policy.chunk : detail::default_chunk(extent, nt);
  const std::size_t nchunks = (extent + chunk - 1) / chunk;
  detail::work_steal_run(pool, nchunks, extent, [&](std::size_t, std::size_t c) {
    const std::size_t start = c * chunk;
    const std::size_t stop = std::min(start + chunk, extent);
    for (std::size_t i = start; i < stop; ++i) f(policy.begin + i);
  });
}

// ---------------------------------------------------------------------------
// parallel_for — MDRangePolicy2 (tile-by-tile)
// ---------------------------------------------------------------------------

namespace detail {

inline std::array<std::size_t, 2> effective_tile(const MDRangePolicy2& policy) {
  // Kokkos' host MDRange default: tile the fast dimension wide enough to
  // vectorize, keep the slow dimension small.
  std::array<std::size_t, 2> t = policy.tile;
  if (t[0] == 0) t[0] = 4;
  if (t[1] == 0) t[1] = 64;
  t[0] = std::min(t[0], std::max<std::size_t>(1, policy.extent(0)));
  t[1] = std::min(t[1], std::max<std::size_t>(1, policy.extent(1)));
  return t;
}

template <class F>
void run_tile(const MDRangePolicy2& policy, const std::array<std::size_t, 2>& tile,
              std::size_t tile_index, std::size_t tiles1, F& f) {
  const std::size_t t0 = tile_index / tiles1;
  const std::size_t t1 = tile_index % tiles1;
  const std::size_t i0 = policy.lower[0] + t0 * tile[0];
  const std::size_t j0 = policy.lower[1] + t1 * tile[1];
  const std::size_t i1 = std::min(i0 + tile[0], policy.upper[0]);
  const std::size_t j1 = std::min(j0 + tile[1], policy.upper[1]);
  for (std::size_t i = i0; i < i1; ++i) {
    for (std::size_t j = j0; j < j1; ++j) f(i, j);
  }
}

/// run_tile under the sanitizer: each (i, j) iteration gets its own lane,
/// linearized over the full iteration rectangle (not the tile).
template <class F>
void checked_run_tile(const MDRangePolicy2& policy, const std::array<std::size_t, 2>& tile,
                      std::size_t tile_index, std::size_t tiles1, F& f) {
  auto body = [&](std::size_t i, std::size_t j) {
    portacheck::LaneScope lane((i - policy.lower[0]) * policy.extent(1) +
                               (j - policy.lower[1]));
    f(i, j);
  };
  run_tile(policy, tile, tile_index, tiles1, body);
}

}  // namespace detail

template <class F>
void parallel_for(const SerialSpace&, const MDRangePolicy2& policy, F&& f) {
  if (portacheck::active()) {
    if (policy.extent(0) == 0 || policy.extent(1) == 0) return;
    portacheck::begin_region();
    const auto tile = detail::effective_tile(policy);
    const std::size_t tiles1 = (policy.extent(1) + tile[1] - 1) / tile[1];
    const std::size_t num_tiles =
        ((policy.extent(0) + tile[0] - 1) / tile[0]) * tiles1;
    const auto order = portacheck::permutation(num_tiles, portacheck::order_seed());
    for (std::size_t slot = 0; slot < num_tiles; ++slot) {
      detail::checked_run_tile(policy, tile, order[slot], tiles1, f);
    }
    return;
  }
  for (std::size_t i = policy.lower[0]; i < policy.upper[0]; ++i) {
    for (std::size_t j = policy.lower[1]; j < policy.upper[1]; ++j) f(i, j);
  }
}

template <class F>
void parallel_for(const ThreadsSpace& space, const MDRangePolicy2& policy, F&& f) {
  if (policy.extent(0) == 0 || policy.extent(1) == 0) return;
  const auto tile = detail::effective_tile(policy);
  const std::size_t tiles0 = (policy.extent(0) + tile[0] - 1) / tile[0];
  const std::size_t tiles1 = (policy.extent(1) + tile[1] - 1) / tile[1];
  const std::size_t num_tiles = tiles0 * tiles1;

  ThreadPool& pool = space.pool();
  const std::size_t nt = pool.size();
  if (portacheck::active()) {
    portacheck::begin_region();
    const auto order = portacheck::permutation(num_tiles, portacheck::order_seed());
    std::atomic<std::size_t> next{0};
    pool.run([&](std::size_t) {
      for (;;) {
        const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
        if (slot >= num_tiles) return;
        detail::checked_run_tile(policy, tile, order[slot], tiles1, f);
      }
    });
    return;
  }
  const std::size_t total_iters = policy.extent(0) * policy.extent(1);
  if (policy.schedule == Schedule::kStatic) {
    pool.run_auto([&](std::size_t t) {
      const auto block = detail::static_block(num_tiles, nt, t);
      for (std::size_t ti = block.begin; ti < block.end; ++ti) {
        detail::run_tile(policy, tile, ti, tiles1, f);
      }
    }, total_iters);
    return;
  }
  detail::work_steal_run(pool, num_tiles, total_iters, [&](std::size_t, std::size_t ti) {
    detail::run_tile(policy, tile, ti, tiles1, f);
  });
}

// ---------------------------------------------------------------------------
// parallel_for — TeamPolicy
// ---------------------------------------------------------------------------

template <class F>
void parallel_for(const SerialSpace&, const TeamPolicy& policy, F&& f) {
  // Allocation check hoisted out of the league loop: scratch-free teams
  // (the common case for the Fig. 2 kernels) pay neither the allocation
  // nor the per-team std::fill.
  const bool has_scratch = policy.scratch_bytes != 0;
  std::vector<std::byte> scratch;
  if (has_scratch) scratch.resize(policy.scratch_bytes);
  if (portacheck::active()) {
    portacheck::begin_region();
    const auto order = portacheck::permutation(policy.league, portacheck::order_seed());
    for (std::size_t slot = 0; slot < policy.league; ++slot) {
      const std::size_t league = order[slot];
      if (has_scratch) std::fill(scratch.begin(), scratch.end(), std::byte{0});
      // Teams are the unordered unit: lanes of one team run sequentially and
      // may legitimately share scratch, so the shadow lane is the league rank.
      portacheck::LaneScope lane_scope(league);
      for (std::size_t lane = 0; lane < policy.team_size; ++lane) {
        f(TeamMember(league, lane, policy.team_size, scratch.data(), scratch.size()));
      }
    }
    return;
  }
  for (std::size_t league = 0; league < policy.league; ++league) {
    if (has_scratch) std::fill(scratch.begin(), scratch.end(), std::byte{0});  // fresh per team
    for (std::size_t lane = 0; lane < policy.team_size; ++lane) {
      f(TeamMember(league, lane, policy.team_size, scratch.data(), scratch.size()));
    }
  }
}

template <class F>
void parallel_for(const ThreadsSpace& space, const TeamPolicy& policy, F&& f) {
  if (policy.league == 0) return;
  ThreadPool& pool = space.pool();
  const std::size_t nt = pool.size();
  const bool has_scratch = policy.scratch_bytes != 0;
  if (portacheck::active()) {
    portacheck::begin_region();
    const auto order = portacheck::permutation(policy.league, portacheck::order_seed());
    std::atomic<std::size_t> next{0};
    pool.run([&](std::size_t) {
      std::vector<std::byte> scratch;
      if (has_scratch) scratch.resize(policy.scratch_bytes);
      for (;;) {
        const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
        if (slot >= policy.league) return;
        const std::size_t league = order[slot];
        if (has_scratch) std::fill(scratch.begin(), scratch.end(), std::byte{0});
        portacheck::LaneScope lane_scope(league);
        for (std::size_t lane = 0; lane < policy.team_size; ++lane) {
          f(TeamMember(league, lane, policy.team_size, scratch.data(), scratch.size()));
        }
      }
    });
    return;
  }
  const std::size_t team_iters = policy.league * policy.team_size;
  if (policy.schedule == Schedule::kDynamic) {
    // Teams stolen chunk-by-chunk: one league rank per chunk, per-thread
    // scratch arenas allocated lazily on first use.
    std::vector<std::vector<std::byte>> arenas(nt);
    detail::work_steal_run(pool, policy.league, team_iters,
                           [&](std::size_t t, std::size_t league) {
      std::vector<std::byte>& scratch = arenas[t];
      if (has_scratch) {
        if (scratch.empty()) scratch.resize(policy.scratch_bytes);
        std::fill(scratch.begin(), scratch.end(), std::byte{0});
      }
      for (std::size_t lane = 0; lane < policy.team_size; ++lane) {
        f(TeamMember(league, lane, policy.team_size, scratch.data(), scratch.size()));
      }
    });
    return;
  }
  pool.run_auto([&](std::size_t t) {
    // One scratch arena per pool thread: teams on the same thread run
    // back-to-back and each gets a zeroed arena.  The allocation check is
    // hoisted: scratch-free leagues skip both the allocation and the fill.
    std::vector<std::byte> scratch;
    if (has_scratch) scratch.resize(policy.scratch_bytes);
    const auto block = detail::static_block(policy.league, nt, t);
    for (std::size_t league = block.begin; league < block.end; ++league) {
      if (has_scratch) std::fill(scratch.begin(), scratch.end(), std::byte{0});
      // Host lowering: one pool thread executes all lanes of its team
      // sequentially (Kokkos OpenMP back end behaviour for TeamThreadRange).
      for (std::size_t lane = 0; lane < policy.team_size; ++lane) {
        f(TeamMember(league, lane, policy.team_size, scratch.data(), scratch.size()));
      }
    }
  }, team_iters);
}

// ---------------------------------------------------------------------------
// parallel_reduce — sum reductions over RangePolicy
// ---------------------------------------------------------------------------

namespace detail {
/// True for reducer types (Sum/Min/Max/... in reducers.hpp); used to keep
/// the plain sum-reduce overloads from capturing reducer arguments.
template <class F>
concept NotReducer = !requires { typename std::remove_cvref_t<F>::value_type; };
}  // namespace detail

/// Serial sum-reduce: f(i, acc) accumulates into acc.
template <detail::NotReducer F, class T>
void parallel_reduce(const SerialSpace&, const RangePolicy& policy, F&& f, T& result) {
  if (portacheck::active()) {
    // No permutation: a serial reduction's accumulation order is part of its
    // contract (fp determinism), but each iteration still gets a lane so
    // side-channel writes from inside reduce bodies are race-checked.
    portacheck::begin_region();
    T acc{};
    for (std::size_t i = policy.begin; i < policy.end; ++i) {
      portacheck::LaneScope lane(i - policy.begin);
      f(i, acc);
    }
    result = acc;
    return;
  }
  T acc{};
  for (std::size_t i = policy.begin; i < policy.end; ++i) f(i, acc);
  result = acc;
}

/// Threaded sum-reduce: per-thread partials joined in thread order, so the
/// result is deterministic for a fixed thread count (as with OpenMP
/// reductions under static scheduling).
template <detail::NotReducer F, class T>
void parallel_reduce(const ThreadsSpace& space, const RangePolicy& policy, F&& f, T& result) {
  const std::size_t extent = policy.extent();
  ThreadPool& pool = space.pool();
  const std::size_t nt = pool.size();
  // Padded partials: each thread's accumulator slot owns a full cache
  // line, so the end-of-block stores never contend.  The join still walks
  // the slots in thread order — results stay bitwise-identical to the
  // unpadded layout.
  std::vector<detail::PaddedSlot<T>> partial(nt);
  if (extent != 0) {
    if (portacheck::active()) {
      // Permute which pool thread owns which static block, but keep each
      // block's iteration order and the block-ordered join: the checked run
      // reshuffles the schedule without perturbing fp summation order, so
      // results stay bitwise-identical across seeds.
      portacheck::begin_region();
      const auto order = portacheck::permutation(nt, portacheck::order_seed());
      pool.run([&](std::size_t t) {
        const std::size_t b = order[t];
        T acc{};
        const auto block = detail::static_block(extent, nt, b);
        for (std::size_t i = block.begin; i < block.end; ++i) {
          portacheck::LaneScope lane(i);
          f(policy.begin + i, acc);
        }
        partial[b].value = acc;
      });
    } else {
      pool.run_auto([&](std::size_t t) {
        T acc{};
        const auto block = detail::static_block(extent, nt, t);
        for (std::size_t i = block.begin; i < block.end; ++i) f(policy.begin + i, acc);
        partial[t].value = acc;
      }, extent);
    }
  }
  T total{};
  for (const auto& p : partial) total += p.value;
  result = total;
}

}  // namespace portabench::simrt
