#include "affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace portabench::simrt {

Placement compute_placement(const CpuTopology& topo, std::size_t num_threads, BindPolicy policy) {
  PB_EXPECTS(num_threads > 0);
  Placement p;
  p.core_of_thread.resize(num_threads, Placement::kUnpinned);

  switch (policy) {
    case BindPolicy::kNone:
      break;  // leave everything unpinned
    case BindPolicy::kClose:
      for (std::size_t t = 0; t < num_threads; ++t) {
        p.core_of_thread[t] = t % topo.cores;
      }
      break;
    case BindPolicy::kSpread: {
      // Round-robin over domains; within a domain, pack consecutively.
      const std::size_t cpd = topo.cores_per_domain();
      std::vector<std::size_t> next_in_domain(topo.numa_domains, 0);
      for (std::size_t t = 0; t < num_threads; ++t) {
        const std::size_t dom = t % topo.numa_domains;
        const std::size_t slot = next_in_domain[dom]++ % cpd;
        p.core_of_thread[t] = dom * cpd + slot;
      }
      break;
    }
  }
  return p;
}

Placement domain_placement(const CpuTopology& topo, std::size_t num_threads,
                           std::size_t domain) {
  PB_EXPECTS(num_threads > 0);
  PB_EXPECTS(domain < topo.numa_domains);
  const std::size_t cpd = topo.cores_per_domain();
  Placement p;
  p.core_of_thread.resize(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    p.core_of_thread[t] = domain * cpd + t % cpd;
  }
  return p;
}

bool bind_current_thread(std::size_t core) noexcept {
  if (core == Placement::kUnpinned) return false;
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hw), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)core;
  return false;
#endif
}

double remote_access_fraction(const CpuTopology& topo, const Placement& placement) {
  if (topo.numa_domains <= 1) return 0.0;
  const double domains = static_cast<double>(topo.numa_domains);

  if (!placement.pinned()) {
    // Migrating threads touch pages spread over all domains: a random
    // access lands on a remote domain with probability (d-1)/d.
    return (domains - 1.0) / domains;
  }

  // Pinned threads: with parallel first-touch initialization each thread's
  // working set is local, so the remote fraction comes only from threads
  // whose compute placement differs from the initializing placement.  For
  // the identical placement used here that is zero; we still account the
  // shared B-matrix panel, which is touched by one domain but read by all:
  // a 1/d share is local, (d-1)/d remote, weighted by B's share (~1/3) of
  // traffic.
  constexpr double kSharedPanelTrafficShare = 1.0 / 3.0;
  return kSharedPanelTrafficShare * (domains - 1.0) / domains;
}

}  // namespace portabench::simrt
