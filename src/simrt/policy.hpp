// Execution policies: the mini-Kokkos dispatch vocabulary.
//
// RangePolicy / MDRangePolicy / TeamPolicy mirror the Kokkos constructs
// the paper's Fig. 2b kernel uses (`Kokkos::RangePolicy`), including
// static vs. dynamic scheduling (OpenMP `schedule(...)`) and chunk size.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "common/error.hpp"

namespace portabench::simrt {

/// Loop scheduling discipline for the Threads space.
enum class Schedule {
  kStatic,   ///< contiguous block per thread (OpenMP default; what the paper's kernels get)
  kDynamic,  ///< threads grab fixed-size chunks from a shared counter
};

/// 1-D half-open iteration range [begin, end).
struct RangePolicy {
  std::size_t begin = 0;
  std::size_t end = 0;
  Schedule schedule = Schedule::kStatic;
  /// Chunk size for dynamic scheduling; 0 picks a heuristic.
  std::size_t chunk = 0;

  [[nodiscard]] std::size_t extent() const noexcept { return end - begin; }

  RangePolicy() = default;
  RangePolicy(std::size_t b, std::size_t e, Schedule s = Schedule::kStatic, std::size_t c = 0)
      : begin(b), end(e), schedule(s), chunk(c) {
    PB_EXPECTS(b <= e);
  }
};

/// 2-D rectangular iteration space with tiling, iterated tile-by-tile.
/// Mirrors Kokkos::MDRangePolicy<Rank<2>>.
struct MDRangePolicy2 {
  std::array<std::size_t, 2> lower{0, 0};
  std::array<std::size_t, 2> upper{0, 0};
  /// Tile extents; 0 picks a heuristic.
  std::array<std::size_t, 2> tile{0, 0};
  Schedule schedule = Schedule::kStatic;

  MDRangePolicy2() = default;
  MDRangePolicy2(std::array<std::size_t, 2> lo, std::array<std::size_t, 2> up,
                 std::array<std::size_t, 2> t = {0, 0})
      : lower(lo), upper(up), tile(t) {
    PB_EXPECTS(lo[0] <= up[0] && lo[1] <= up[1]);
  }

  [[nodiscard]] std::size_t extent(std::size_t dim) const {
    PB_EXPECTS(dim < 2);
    return upper[dim] - lower[dim];
  }
};

/// Hierarchical league-of-teams policy (Kokkos::TeamPolicy): `league`
/// teams of `team_size` threads each.  On the host each team maps to one
/// pool thread and team lanes execute sequentially, which is exactly how
/// Kokkos' OpenMP back end lowers TeamThreadRange on CPUs.
/// `scratch_bytes` requests per-team scratch memory (Kokkos team_scratch
/// level 0): a buffer shared by all lanes of one team.
struct TeamPolicy {
  std::size_t league = 0;
  std::size_t team_size = 1;
  std::size_t scratch_bytes = 0;
  /// kStatic keeps the contiguous block-per-thread lowering; kDynamic
  /// deals leagues to per-thread steal queues (for leagues with uneven
  /// per-team cost, e.g. batched GEMM over mixed sizes).
  Schedule schedule = Schedule::kStatic;

  TeamPolicy() = default;
  TeamPolicy(std::size_t l, std::size_t t, std::size_t scratch = 0,
             Schedule s = Schedule::kStatic)
      : league(l), team_size(t), scratch_bytes(scratch), schedule(s) {
    PB_EXPECTS(t >= 1);
  }
};

/// Handle passed to team-policy functors, identifying the team and lane
/// and carrying the team's scratch allocation.
class TeamMember {
 public:
  TeamMember(std::size_t league_rank, std::size_t team_rank, std::size_t team_size,
             std::byte* scratch = nullptr, std::size_t scratch_bytes = 0) noexcept
      : league_rank_(league_rank),
        team_rank_(team_rank),
        team_size_(team_size),
        scratch_(scratch),
        scratch_bytes_(scratch_bytes) {}

  [[nodiscard]] std::size_t league_rank() const noexcept { return league_rank_; }
  [[nodiscard]] std::size_t team_rank() const noexcept { return team_rank_; }
  [[nodiscard]] std::size_t team_size() const noexcept { return team_size_; }

  /// Typed span into the team's scratch (shared across the team's lanes;
  /// lanes execute sequentially on the host, so no synchronization is
  /// needed within a team).
  template <class T>
  [[nodiscard]] std::span<T> scratch(std::size_t count, std::size_t byte_offset = 0) const {
    PB_EXPECTS(byte_offset % alignof(T) == 0);
    PB_EXPECTS(byte_offset + count * sizeof(T) <= scratch_bytes_);
    return {reinterpret_cast<T*>(scratch_ + byte_offset), count};
  }

  [[nodiscard]] std::size_t scratch_bytes() const noexcept { return scratch_bytes_; }

 private:
  std::size_t league_rank_;
  std::size_t team_rank_;
  std::size_t team_size_;
  std::byte* scratch_ = nullptr;
  std::size_t scratch_bytes_ = 0;
};

/// TeamThreadRange analogue: lane `member.team_rank()` handles indices
/// team_rank, team_rank + team_size, ... of [0, extent).
template <class F>
void team_thread_range(const TeamMember& member, std::size_t extent, F&& f) {
  for (std::size_t i = member.team_rank(); i < extent; i += member.team_size()) f(i);
}

}  // namespace portabench::simrt
