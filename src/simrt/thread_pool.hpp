// Persistent fork-join worker pool.
//
// This is the engine under the Threads execution space: the analogue of
// the OpenMP runtime's thread team (C/OpenMP and Kokkos frontends) and of
// Julia's task scheduler threads.  Workers are created once and reused
// across parallel regions — matching the paper's protocol where thread
// counts are fixed per run (OMP_NUM_THREADS / JULIA_NUM_THREADS /
// NUMBA_NUM_THREADS) and warm-up iterations absorb team start-up cost.
//
// Dispatch protocol (see docs/PERF.md): the pool is epoch-based and
// lock-free on the region hot path.  Each worker owns a cache-line-padded
// slot holding a "go" epoch; the caller publishes a region by storing the
// new epoch into every slot, workers detect it by spinning briefly and
// then parking on a condvar (spin-then-park), and the join is a single
// shared arrival counter the caller spins on.  The mutex/condvar pair is
// touched only on the park/unpark slow path, never on a region where all
// participants are running hot — the old implementation paid a mutex +
// notify_all + condvar rendezvous on *every* region, which dominated
// small-region latency (bench/micro_dispatch.cpp measures the difference).
//
// On top of the cheap fork-join, run_auto() adds grain-based fork
// elision: a region whose total work is below kForkCutoff executes all
// logical lanes serially on the caller with identical lane decomposition
// (so results are bitwise-identical to the forked path) and touches no
// shared state at all.  The simrt dispatch layer (parallel.hpp) routes
// every parallel_* region through run_auto with the region's iteration
// count as the hint.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "affinity.hpp"
#include "tunables.hpp"
#include "common/buffer.hpp"

namespace portabench::simrt {

class ThreadPool {
 public:
  /// Spawn a pool of `num_threads` logical threads (>= 1).  The calling
  /// thread acts as thread 0, so num_threads-1 workers are created.  The
  /// placement is recorded (and applied where the host OS allows) so the
  /// performance model can reason about locality even when the simulation
  /// host has fewer cores than the modeled machine.
  explicit ThreadPool(std::size_t num_threads, Placement placement = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return num_threads_; }
  [[nodiscard]] const Placement& placement() const noexcept { return placement_; }

  /// Execute task(thread_id) once on every logical thread (ids
  /// 0..size()-1) and block until all complete.  The first exception
  /// thrown by any thread is rethrown on the caller.  Not reentrant: a
  /// task must not call run() on the same pool.
  ///
  /// Templated: the functor is erased to a raw (function pointer, context)
  /// pair — no std::function, no allocation, no virtual dispatch on the
  /// region hot path.  Any callable with signature void(std::size_t) works.
  template <class F>
  void run(F&& task) {
    using Fn = std::remove_reference_t<F>;
    run_impl(
        [](void* ctx, std::size_t tid) { (*static_cast<Fn*>(ctx))(tid); },
        const_cast<std::remove_const_t<Fn>*>(std::addressof(task)));
  }

  /// Below this many work items a parallel region costs more to fork than
  /// to run: the rendezvous is a few microseconds even on the lock-free
  /// path (worker wake-up + join), which is thousands of cheap iterations.
  /// OpenMP's `if` clause and Kokkos' host back ends make the same call.
  /// This is the compile-time default; the runtime value run_auto()
  /// actually compares against comes from dispatch_tunables() so the
  /// autotuner / PORTABENCH_TUNE_FORK_CUTOFF can retune it per machine.
  static constexpr std::size_t kForkCutoff = kDefaultForkCutoff;

  /// run() with grain-based fork elision: regions whose total work is
  /// below kForkCutoff execute all logical lanes serially on the caller
  /// (same per-lane closures, same arithmetic, bitwise-identical results
  /// — only the execution strategy changes); larger regions fork as run()
  /// does.  Lanes of a sub-cutoff region share the caller's OS thread, so
  /// use run() directly when distinct OS threads are part of the contract.
  template <class F>
  void run_auto(F&& task, std::size_t work_hint) {
    using Fn = std::remove_reference_t<F>;
    auto* ctx = const_cast<std::remove_const_t<Fn>*>(std::addressof(task));
    auto* fn = +[](void* c, std::size_t tid) { (*static_cast<Fn*>(c))(tid); };
    if (work_hint < dispatch_fork_cutoff()) {
      run_inline(fn, ctx);
    } else {
      run_impl(fn, ctx);
    }
  }

 private:
  /// Raw erased task: fn(ctx, thread_id).
  using TaskFn = void (*)(void*, std::size_t);

  /// Per-worker dispatch slot, padded so each worker spins on its own
  /// cache line.  `go` is the epoch the worker should run next; `parked`
  /// tells the caller whether a condvar notify is needed at all.
  struct alignas(kCacheLineBytes) WorkerSlot {
    std::atomic<std::uint64_t> go{0};
    std::atomic<std::uint32_t> parked{0};
  };

  void run_impl(TaskFn fn, void* ctx);
  /// Execute every logical lane serially on the caller (fork elision for
  /// sub-cutoff regions).  Workers are never signalled: the region leaves
  /// no trace in the epoch protocol.
  void run_inline(TaskFn fn, void* ctx);
  void worker_loop(std::size_t thread_id);
  /// Stash std::current_exception() as the region's first error (cold path).
  void record_error() noexcept;
  /// Spin-then-park until the slot's go epoch reaches `epoch` or shutdown.
  /// Returns false on shutdown.
  bool await_epoch(WorkerSlot& slot, std::uint64_t epoch);

  std::size_t num_threads_;
  Placement placement_;
  std::vector<std::thread> workers_;
  std::vector<WorkerSlot> slots_;  // one per worker (thread ids 1..n-1)

  // Join state: workers arrive with one fetch_add each; the caller waits
  // for num_threads_-1 arrivals.  Padded: the arrival counter is the only
  // line workers write on the join path, and it must not share a line
  // with the fields the caller reads while spinning.
  alignas(kCacheLineBytes) std::atomic<std::size_t> arrived_{0};
  alignas(kCacheLineBytes) std::atomic<bool> caller_parked_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> in_flight_{false};
  std::atomic<bool> has_error_{false};

  // Published task for the current epoch; read by workers after an
  // acquire load of their slot's go epoch.
  TaskFn task_fn_ = nullptr;
  void* task_ctx_ = nullptr;
  std::uint64_t epoch_ = 0;  // caller-owned region counter

  // Slow path only: park/unpark of workers (start_cv_) and caller
  // (done_cv_).  Never touched on a region where everyone is spinning.
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace portabench::simrt
