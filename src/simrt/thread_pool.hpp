// Persistent fork-join worker pool.
//
// This is the engine under the Threads execution space: the analogue of
// the OpenMP runtime's thread team (C/OpenMP and Kokkos frontends) and of
// Julia's task scheduler threads.  Workers are created once and reused
// across parallel regions — matching the paper's protocol where thread
// counts are fixed per run (OMP_NUM_THREADS / JULIA_NUM_THREADS /
// NUMBA_NUM_THREADS) and warm-up iterations absorb team start-up cost.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "affinity.hpp"

namespace portabench::simrt {

class ThreadPool {
 public:
  /// Spawn a pool of `num_threads` logical threads (>= 1).  The calling
  /// thread acts as thread 0, so num_threads-1 workers are created.  The
  /// placement is recorded (and applied where the host OS allows) so the
  /// performance model can reason about locality even when the simulation
  /// host has fewer cores than the modeled machine.
  explicit ThreadPool(std::size_t num_threads, Placement placement = {});

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return num_threads_; }
  [[nodiscard]] const Placement& placement() const noexcept { return placement_; }

  /// Execute task(thread_id) once on every logical thread (ids
  /// 0..size()-1) and block until all complete.  The first exception
  /// thrown by any thread is rethrown on the caller.  Not reentrant: a
  /// task must not call run() on the same pool.
  void run(const std::function<void(std::size_t)>& task);

 private:
  void worker_loop(std::size_t thread_id);

  std::size_t num_threads_;
  Placement placement_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace portabench::simrt
