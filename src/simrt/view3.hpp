// Rank-3 views: the batched-GEMM container (one matrix per batch slot).
//
// Layout follows the rank-2 convention extended one axis: LayoutRight is
// C-order (batch slowest), LayoutLeft is Fortran-order (batch fastest is
// NOT used — Julia stacks matrices along the *last* axis, so LayoutLeft
// rank-3 keeps dim0 fastest, matching Array{T,3}).
#pragma once

#include "mdarray.hpp"

namespace portabench::simrt {

template <class T, class Layout = LayoutRight>
class View3 {
 public:
  using value_type = T;
  using layout_type = Layout;
  static constexpr bool is_row_major = std::is_same_v<Layout, LayoutRight>;

  View3() = default;

  View3(std::size_t n0, std::size_t n1, std::size_t n2)
      : data_(detail::allocate_shared_array<T>(n0 * n1 * n2)), n0_(n0), n1_(n1), n2_(n2) {
    if constexpr (is_row_major) {
      stride0_ = n1 * n2;
      stride1_ = n2;
      stride2_ = 1;
    } else {
      stride0_ = 1;
      stride1_ = n0;
      stride2_ = n0 * n1;
    }
  }

  [[nodiscard]] std::size_t extent(std::size_t dim) const {
    PB_EXPECTS(dim < 3);
    return dim == 0 ? n0_ : (dim == 1 ? n1_ : n2_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return n0_ * n1_ * n2_; }

  [[nodiscard]] T& operator()(std::size_t i, std::size_t j, std::size_t k) const noexcept {
    return data_[offset_ + i * stride0_ + j * stride1_ + k * stride2_];
  }

  [[nodiscard]] T& at(std::size_t i, std::size_t j, std::size_t k) const {
    PB_EXPECTS(i < n0_ && j < n1_ && k < n2_);
    return (*this)(i, j, k);
  }

  [[nodiscard]] T* data() const noexcept { return data_.get() + offset_; }

  /// Rank-2 slice along the batch axis.  LayoutRight batches along dim 0
  /// (C convention: batch[b] = view(b, :, :)); LayoutLeft batches along
  /// dim 2 (Julia convention: A[:, :, b]).  The returned View2 aliases
  /// this view's storage.
  [[nodiscard]] View2<T, Layout> slice(std::size_t batch) const {
    if constexpr (is_row_major) {
      PB_EXPECTS(batch < n0_);
      return remake_slice(n1_, n2_, offset_ + batch * stride0_, stride1_, stride2_);
    } else {
      PB_EXPECTS(batch < n2_);
      return remake_slice(n0_, n1_, offset_ + batch * stride2_, stride0_, stride1_);
    }
  }

 private:
  /// Build an aliasing View2 with explicit geometry.
  View2<T, Layout> remake_slice(std::size_t rows, std::size_t cols, std::size_t offset,
                                std::size_t s0, std::size_t s1) const {
    return View2<T, Layout>(data_, offset, rows, cols, s0, s1);
  }

  std::shared_ptr<T[]> data_;
  std::size_t offset_ = 0;
  std::size_t n0_ = 0;
  std::size_t n1_ = 0;
  std::size_t n2_ = 0;
  std::size_t stride0_ = 0;
  std::size_t stride1_ = 0;
  std::size_t stride2_ = 0;
};

}  // namespace portabench::simrt
