// Typed reducers for parallel_reduce (Kokkos::Sum/Min/Max/Prod analogue).
//
// parallel_reduce's plain overload hard-codes summation; real Kokkos code
// reduces under arbitrary monoids.  A Reducer bundles the identity
// element and the join operation; the threaded implementation combines
// per-thread partials in thread order, keeping results deterministic for
// a fixed thread count.
#pragma once

#include <algorithm>
#include <limits>
#include <vector>

#include "parallel.hpp"  // spaces, policies, detail::static_block

namespace portabench::simrt {

/// Sum monoid.
template <class T>
struct Sum {
  using value_type = T;
  static constexpr T identity() noexcept { return T{}; }
  static constexpr T join(T a, T b) noexcept { return a + b; }
};

/// Product monoid.
template <class T>
struct Prod {
  using value_type = T;
  static constexpr T identity() noexcept { return T{1}; }
  static constexpr T join(T a, T b) noexcept { return a * b; }
};

/// Minimum monoid.
template <class T>
struct Min {
  using value_type = T;
  static constexpr T identity() noexcept { return std::numeric_limits<T>::max(); }
  static constexpr T join(T a, T b) noexcept { return a < b ? a : b; }
};

/// Maximum monoid.
template <class T>
struct Max {
  using value_type = T;
  static constexpr T identity() noexcept { return std::numeric_limits<T>::lowest(); }
  static constexpr T join(T a, T b) noexcept { return a > b ? a : b; }
};

/// Min + location (Kokkos::MinLoc).
template <class T>
struct MinLoc {
  struct value_type {
    T value;
    std::size_t index;
  };
  static constexpr value_type identity() noexcept {
    return {std::numeric_limits<T>::max(), static_cast<std::size_t>(-1)};
  }
  static constexpr value_type join(value_type a, value_type b) noexcept {
    return b.value < a.value ? b : a;
  }
};

/// Reduce f(i, acc) over [policy.begin, policy.end) under Reducer R,
/// serially.
template <class R, class F>
typename R::value_type parallel_reduce(const SerialSpace&, const RangePolicy& policy, R,
                                       F&& f) {
  typename R::value_type acc = R::identity();
  for (std::size_t i = policy.begin; i < policy.end; ++i) f(i, acc);
  return acc;
}

/// Threaded reduction under Reducer R: per-thread partials start at the
/// identity and join in thread order.
template <class R, class F>
typename R::value_type parallel_reduce(const ThreadsSpace& space, const RangePolicy& policy,
                                       R, F&& f) {
  using V = typename R::value_type;
  const std::size_t extent = policy.extent();
  ThreadPool& pool = space.pool();
  const std::size_t nt = pool.size();
  std::vector<V> partial(nt, R::identity());
  if (extent != 0) {
    pool.run_auto([&](std::size_t t) {
      V acc = R::identity();
      const auto block = detail::static_block(extent, nt, t);
      for (std::size_t i = block.begin; i < block.end; ++i) f(policy.begin + i, acc);
      partial[t] = acc;
    }, extent);
  }
  V total = R::identity();
  for (const V& p : partial) total = R::join(total, p);
  return total;
}

}  // namespace portabench::simrt
