// Thread-affinity policy model.
//
// The paper controls thread placement with OMP_PROC_BIND=true /
// OMP_PLACES=threads for C/OpenMP and JULIA_EXCLUSIVE=1 for Julia, and
// notes that Numba exposes *no* pinning mechanism — a difference it uses
// to explain part of Numba's CPU gap.  This header reproduces the
// placement computation: given a machine topology (cores, NUMA domains)
// and a bind policy, produce the core each thread lands on.  On the real
// systems this is what the OpenMP runtime computes; here it both drives
// the (simulated) pinning and feeds the NUMA-traffic term of the CPU
// performance model.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace portabench::simrt {

/// How software threads are bound to hardware cores.
enum class BindPolicy {
  kNone,    ///< OS free to migrate (Numba's only option)
  kClose,   ///< pack threads onto consecutive cores (OMP_PROC_BIND=close / JULIA_EXCLUSIVE)
  kSpread,  ///< spread threads evenly across NUMA domains (OMP_PROC_BIND=spread)
};

[[nodiscard]] constexpr std::string_view name(BindPolicy p) noexcept {
  switch (p) {
    case BindPolicy::kNone: return "none";
    case BindPolicy::kClose: return "close";
    case BindPolicy::kSpread: return "spread";
  }
  return "?";
}

/// Host CPU topology: `cores` physical cores split evenly over
/// `numa_domains` domains (matching EPYC 7A53: 64 cores / 4 NUMA, and
/// Ampere Altra: 80 cores / 1 NUMA).
struct CpuTopology {
  std::size_t cores = 1;
  std::size_t numa_domains = 1;

  [[nodiscard]] std::size_t cores_per_domain() const {
    PB_EXPECTS(numa_domains > 0 && cores % numa_domains == 0);
    return cores / numa_domains;
  }

  /// NUMA domain that owns a given core id.
  [[nodiscard]] std::size_t domain_of(std::size_t core) const {
    PB_EXPECTS(core < cores);
    return core / cores_per_domain();
  }
};

/// Placement of `num_threads` threads: thread i runs on placement[i]
/// (a core id), or kUnpinned when the policy leaves it to the OS.
struct Placement {
  static constexpr std::size_t kUnpinned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> core_of_thread;

  [[nodiscard]] bool pinned() const noexcept {
    return !core_of_thread.empty() && core_of_thread.front() != kUnpinned;
  }
};

/// Compute thread placement under a bind policy.
/// - kNone: all threads unpinned.
/// - kClose: thread i -> core i % cores (consecutive packing).
/// - kSpread: threads round-robin across NUMA domains, packing within.
[[nodiscard]] Placement compute_placement(const CpuTopology& topo, std::size_t num_threads,
                                          BindPolicy policy);

/// Placement restricted to one NUMA domain: thread i -> core
/// `domain*cores_per_domain + i % cores_per_domain`.  This is the GCD
/// feeding pattern on Crusher (each MI250X GCD is driven from the EPYC
/// domain it is attached to); DeviceTopology uses it to pin each
/// device's workers close to that device's host staging memory.
[[nodiscard]] Placement domain_placement(const CpuTopology& topo, std::size_t num_threads,
                                         std::size_t domain);

/// Bind the calling thread to one OS CPU, best-effort.  Core ids wrap
/// modulo the host's actual CPU count, so a modeled 64-core EPYC
/// placement still yields a valid (if aliased) binding on a smaller
/// simulation host.  Returns true when the OS accepted the mask; false
/// where unsupported (non-Linux) or rejected — callers treat pinning as
/// advisory either way, matching the "applied where the host OS allows"
/// ThreadPool contract.
bool bind_current_thread(std::size_t core) noexcept;

/// Fraction of memory accesses that cross a NUMA boundary for a
/// first-touch-initialized array traversed by the given placement.
/// Unpinned threads are assumed to migrate, touching all domains evenly.
/// Returns 0 for single-domain machines.
[[nodiscard]] double remote_access_fraction(const CpuTopology& topo, const Placement& placement);

}  // namespace portabench::simrt
