// parallel_scan: inclusive/exclusive prefix sums (Kokkos::parallel_scan
// analogue).
//
// The threaded implementation uses the classic three-phase scheme: each
// thread scans its static block, block totals are scanned serially, and a
// second pass adds each block's offset.  Deterministic for a fixed thread
// count, and exact for integer types.
#pragma once

#include <span>
#include <vector>

#include "parallel.hpp"

namespace portabench::simrt {

/// Exclusive scan: out[i] = sum of in[0..i).  The functor style follows
/// Kokkos: f(i, partial, is_final) must add element i's contribution to
/// `partial` and, when is_final, record `partial` (the prefix *before*
/// adding i) via its own output — here simplified to value-in/value-out
/// spans since the study's kernels operate on flat arrays.
template <class T>
void exclusive_scan(const SerialSpace&, std::span<const T> in, std::span<T> out) {
  PB_EXPECTS(in.size() == out.size());
  PB_EXPECTS(in.empty() || in.data() != static_cast<const T*>(out.data()));  // no in-place scan
  T running{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = running;
    running = running + in[i];
  }
}

template <class T>
void inclusive_scan(const SerialSpace& space, std::span<const T> in, std::span<T> out) {
  exclusive_scan(space, in, out);
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = out[i] + in[i];
}

template <class T>
void exclusive_scan(const ThreadsSpace& space, std::span<const T> in, std::span<T> out) {
  PB_EXPECTS(in.size() == out.size());
  PB_EXPECTS(in.empty() || in.data() != static_cast<const T*>(out.data()));  // no in-place scan
  const std::size_t extent = in.size();
  if (extent == 0) return;
  ThreadPool& pool = space.pool();
  const std::size_t nt = pool.size();

  // Phase 1: per-block local exclusive scan + block totals.
  std::vector<T> block_total(nt, T{});
  pool.run_auto([&](std::size_t t) {
    const auto block = detail::static_block(extent, nt, t);
    T running{};
    for (std::size_t i = block.begin; i < block.end; ++i) {
      out[i] = running;
      running = running + in[i];
    }
    block_total[t] = running;
  }, extent);

  // Phase 2: serial scan of block totals (nt elements — negligible).
  std::vector<T> block_offset(nt, T{});
  T running{};
  for (std::size_t t = 0; t < nt; ++t) {
    block_offset[t] = running;
    running = running + block_total[t];
  }

  // Phase 3: add offsets.
  pool.run_auto([&](std::size_t t) {
    const auto block = detail::static_block(extent, nt, t);
    const T offset = block_offset[t];
    for (std::size_t i = block.begin; i < block.end; ++i) out[i] = out[i] + offset;
  }, extent);
}

template <class T>
void inclusive_scan(const ThreadsSpace& space, std::span<const T> in, std::span<T> out) {
  exclusive_scan(space, in, out);
  parallel_for(space, RangePolicy(0, in.size()),
               [&](std::size_t i) { out[i] = out[i] + in[i]; });
}

// ---------------------------------------------------------------------------
// Kokkos-style functor scan: parallel_scan(space, policy, f) where
// f(i, partial, is_final) contributes element i to `partial` and, on the
// final pass, may consume the exclusive prefix (the value of `partial`
// *before* its own contribution).  Runs two passes like Kokkos' host
// back ends: a reduce pass collecting block totals, then the final pass
// with per-block offsets.
// ---------------------------------------------------------------------------

template <class T, class F>
T parallel_scan(const SerialSpace&, const RangePolicy& policy, F&& f) {
  T partial{};
  for (std::size_t i = policy.begin; i < policy.end; ++i) f(i, partial, true);
  return partial;
}

template <class T, class F>
T parallel_scan(const ThreadsSpace& space, const RangePolicy& policy, F&& f) {
  const std::size_t extent = policy.extent();
  ThreadPool& pool = space.pool();
  const std::size_t nt = pool.size();
  if (extent == 0) return T{};

  // Pass 1: per-block totals (is_final = false: contributions only).
  std::vector<T> block_total(nt, T{});
  pool.run_auto([&](std::size_t t) {
    const auto block = detail::static_block(extent, nt, t);
    T partial{};
    for (std::size_t i = block.begin; i < block.end; ++i) {
      f(policy.begin + i, partial, false);
    }
    block_total[t] = partial;
  }, extent);

  // Serial scan of block totals.
  std::vector<T> block_offset(nt, T{});
  T running{};
  for (std::size_t t = 0; t < nt; ++t) {
    block_offset[t] = running;
    running = running + block_total[t];
  }

  // Pass 2: final pass with offsets.
  pool.run_auto([&](std::size_t t) {
    const auto block = detail::static_block(extent, nt, t);
    T partial = block_offset[t];
    for (std::size_t i = block.begin; i < block.end; ++i) {
      f(policy.begin + i, partial, true);
    }
  }, extent);
  return running;
}

}  // namespace portabench::simrt
