#include "tunables.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>

namespace portabench::simrt {

namespace {

std::atomic<std::size_t> g_fork_cutoff{kDefaultForkCutoff};
std::atomic<std::size_t> g_chunks_per_thread{kDefaultChunksPerThread};
std::atomic<std::size_t> g_min_grain{kDefaultMinGrain};

std::once_flag g_env_once;

void store(const DispatchTunables& t) noexcept {
  g_fork_cutoff.store(t.fork_cutoff, std::memory_order_relaxed);
  g_chunks_per_thread.store(std::max<std::size_t>(1, t.chunks_per_thread),
                            std::memory_order_relaxed);
  g_min_grain.store(std::max<std::size_t>(1, t.min_grain), std::memory_order_relaxed);
}

void apply_env() noexcept {
  store(parse_dispatch_env(DispatchTunables{},
                           [](const char* name) { return std::getenv(name); }));
}

void ensure_env_applied() noexcept { std::call_once(g_env_once, apply_env); }

}  // namespace

bool parse_tunable_size(const char* text, std::size_t* out) noexcept {
  if (text == nullptr || *text == '\0' || *text == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

DispatchTunables parse_dispatch_env(const DispatchTunables& base, const EnvLookup& lookup) {
  DispatchTunables t = base;
  (void)parse_tunable_size(lookup("PORTABENCH_TUNE_FORK_CUTOFF"), &t.fork_cutoff);
  (void)parse_tunable_size(lookup("PORTABENCH_TUNE_CHUNK"), &t.chunks_per_thread);
  (void)parse_tunable_size(lookup("PORTABENCH_TUNE_MIN_GRAIN"), &t.min_grain);
  return t;
}

DispatchTunables dispatch_tunables() noexcept {
  ensure_env_applied();
  DispatchTunables t;
  t.fork_cutoff = g_fork_cutoff.load(std::memory_order_relaxed);
  t.chunks_per_thread = g_chunks_per_thread.load(std::memory_order_relaxed);
  t.min_grain = g_min_grain.load(std::memory_order_relaxed);
  return t;
}

std::size_t dispatch_fork_cutoff() noexcept {
  ensure_env_applied();
  return g_fork_cutoff.load(std::memory_order_relaxed);
}

void set_dispatch_tunables(const DispatchTunables& t) noexcept {
  ensure_env_applied();  // fixed env-vs-setter precedence: setter wins
  store(t);
}

void reset_dispatch_tunables() noexcept {
  ensure_env_applied();
  apply_env();
}

}  // namespace portabench::simrt
