#include "thread_pool.hpp"

#include "common/error.hpp"
#include "portacheck/hooks.hpp"

namespace portabench::simrt {

namespace {

/// One spin-loop iteration's worth of politeness: a pipeline hint on
/// architectures that have one, a scheduler yield elsewhere.
inline void cpu_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

// Spin budget before falling back to a condvar park.  The pause phase
// covers the multicore fast path (the signal arrives within tens of
// cycles); the yield phase covers oversubscribed hosts, where the peer
// needs the core to make progress at all.
constexpr int kPauseSpins = 128;
constexpr int kYieldSpins = 512;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, Placement placement)
    : num_threads_(num_threads),
      placement_(std::move(placement)),
      slots_(num_threads == 0 ? 0 : num_threads - 1) {
  PB_EXPECTS(num_threads >= 1);
  PB_EXPECTS(placement_.core_of_thread.empty() ||
             placement_.core_of_thread.size() >= num_threads);
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  // Drain before shutdown: if the last handle to the pool is dropped on
  // one thread while another still has a run() in flight (e.g. a
  // parallel_reduce chunk mid-execution), the region must retire before
  // workers are told to exit — otherwise its join would wait on threads
  // that already left.
  while (in_flight_.load(std::memory_order_acquire)) std::this_thread::yield();
  {
    // shutdown_ is flipped under the park mutex so a worker evaluating its
    // park predicate cannot miss it (the store and the predicate are
    // ordered by the lock).  release, not seq_cst: the lock orders the
    // parked path, and the unlocked fast-path load in await_epoch only
    // needs acquire/release — shutdown_ is not part of a Dekker pair.
    std::lock_guard lock(mutex_);
    shutdown_.store(true, std::memory_order_release);
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::record_error() noexcept {
  std::lock_guard lock(error_mutex_);
  if (!has_error_.load(std::memory_order_relaxed)) {
    first_error_ = std::current_exception();
    has_error_.store(true, std::memory_order_release);
  }
}

bool ThreadPool::await_epoch(WorkerSlot& slot, std::uint64_t epoch) {
  int spins = 0;
  for (;;) {
    if (slot.go.load(std::memory_order_acquire) >= epoch) return true;
    if (shutdown_.load(std::memory_order_acquire)) return false;
    if (spins < kPauseSpins) {
      cpu_pause();
    } else if (spins < kPauseSpins + kYieldSpins) {
      std::this_thread::yield();
    } else {
      break;  // spin budget exhausted: park
    }
    ++spins;
  }
  std::unique_lock lock(mutex_);
  // seq_cst Dekker pair with run_impl: the caller stores go then loads
  // parked; we store parked then load go.  At least one side must see the
  // other's store, so either the caller notifies or the predicate is
  // already true and we never sleep.
  slot.parked.store(1, std::memory_order_seq_cst);  // portalint: mo-ok(Dekker store side; pairs with run_impl's go-store/parked-load)
  start_cv_.wait(lock, [&] {
    // shutdown_ may be relaxed here: its store happens under this same
    // mutex, so the lock orders it.  go stays seq_cst — it is the load
    // side of the Dekker pair and must not hoist above the parked store.
    return shutdown_.load(std::memory_order_relaxed) ||
           slot.go.load(std::memory_order_seq_cst) >= epoch;  // portalint: mo-ok(Dekker load side)
  });
  slot.parked.store(0, std::memory_order_relaxed);
  return slot.go.load(std::memory_order_acquire) >= epoch;
}

void ThreadPool::worker_loop(std::size_t thread_id) {
  // Apply the recorded placement to this OS thread, best-effort.  Only
  // workers are bound: logical thread 0 is the caller's thread, which
  // the pool does not own (pinning it would leak policy into code that
  // merely forked a region).  bind_current_thread wraps core ids modulo
  // the host CPU count, so modeled-machine placements stay valid on
  // smaller simulation hosts.
  if (placement_.pinned() && thread_id < placement_.core_of_thread.size()) {
    bind_current_thread(placement_.core_of_thread[thread_id]);
  }
  WorkerSlot& slot = slots_[thread_id - 1];
  std::uint64_t epoch = 0;
  for (;;) {
    ++epoch;
    if (!await_epoch(slot, epoch)) return;
    // task_fn_/task_ctx_ were published before the slot's go store; the
    // acquire load in await_epoch orders these plain reads after it.
    const TaskFn fn = task_fn_;
    void* const ctx = task_ctx_;
    try {
      // Default shadow lane for tasks submitted via run() directly; the
      // checked parallel_* paths override this per logical iteration.
      portacheck::LaneScope lane(thread_id);
      fn(ctx, thread_id);
    } catch (...) {
      record_error();
    }
    const std::size_t prev = arrived_.fetch_add(1, std::memory_order_seq_cst);  // portalint: mo-ok(Dekker store side; pairs with run_impl's caller_parked-store/arrived-load)
    if (prev + 1 == num_threads_ - 1 &&
        caller_parked_.load(std::memory_order_seq_cst)) {  // portalint: mo-ok(Dekker load side)
      // Empty critical section: the caller either holds the mutex inside
      // wait() (notify after we acquire+release is ordered correctly) or
      // has not parked yet, in which case its predicate will see arrived_.
      { std::lock_guard lock(mutex_); }
      done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_inline(TaskFn fn, void* ctx) {
  PB_EXPECTS(fn != nullptr);
  PB_EXPECTS(!in_flight_.load(std::memory_order_relaxed));  // non-reentrant
  // in_flight_ still guards the destructor drain: the pool must not tear
  // down while another thread is mid-region, even a caller-only one.
  in_flight_.store(true, std::memory_order_relaxed);
  // Same lane decomposition and error contract as the forked path: every
  // lane runs (a throw does not skip the rest), first error is rethrown.
  for (std::size_t t = 0; t < num_threads_; ++t) {
    try {
      portacheck::LaneScope lane(t);
      fn(ctx, t);
    } catch (...) {
      record_error();
    }
  }
  in_flight_.store(false, std::memory_order_release);
  if (has_error_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard lock(error_mutex_);
      err = first_error_;
      first_error_ = nullptr;
      has_error_.store(false, std::memory_order_relaxed);
    }
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_impl(TaskFn fn, void* ctx) {
  PB_EXPECTS(fn != nullptr);
  if (num_threads_ == 1) {
    // Degenerate pool: the caller is the whole team, no signaling at all.
    portacheck::LaneScope lane(0);
    fn(ctx, 0);
    return;
  }

  PB_EXPECTS(!in_flight_.load(std::memory_order_relaxed));  // non-reentrant
  in_flight_.store(true, std::memory_order_relaxed);
  task_fn_ = fn;
  task_ctx_ = ctx;
  arrived_.store(0, std::memory_order_relaxed);

  // Publish the region: one padded line per worker, then a condvar nudge
  // only if someone actually parked.
  const std::uint64_t epoch = ++epoch_;
  bool any_parked = false;
  for (WorkerSlot& slot : slots_) {
    slot.go.store(epoch, std::memory_order_seq_cst);  // portalint: mo-ok(Dekker store side; pairs with await_epoch's parked-store/go-load)
    any_parked |= slot.parked.load(std::memory_order_seq_cst) != 0;  // portalint: mo-ok(Dekker load side)
  }
  if (any_parked) {
    { std::lock_guard lock(mutex_); }
    start_cv_.notify_all();
  }

  // The caller participates as logical thread 0 (like an OpenMP master).
  try {
    portacheck::LaneScope lane(0);
    fn(ctx, 0);
  } catch (...) {
    record_error();
  }

  // Join: spin on the arrival counter, then park on done_cv_.
  const std::size_t expect = num_threads_ - 1;
  int spins = 0;
  while (arrived_.load(std::memory_order_acquire) != expect) {
    if (spins < kPauseSpins) {
      cpu_pause();
    } else if (spins < kPauseSpins + kYieldSpins) {
      std::this_thread::yield();
    } else {
      std::unique_lock lock(mutex_);
      caller_parked_.store(true, std::memory_order_seq_cst);  // portalint: mo-ok(Dekker store side; pairs with worker_loop's arrived-add/caller_parked-load)
      done_cv_.wait(lock, [&] {
        return arrived_.load(std::memory_order_seq_cst) == expect;  // portalint: mo-ok(Dekker load side)
      });
      caller_parked_.store(false, std::memory_order_relaxed);
      break;
    }
    ++spins;
  }
  in_flight_.store(false, std::memory_order_release);

  if (has_error_.load(std::memory_order_acquire)) {
    std::exception_ptr err;
    {
      std::lock_guard lock(error_mutex_);
      err = first_error_;
      first_error_ = nullptr;
      has_error_.store(false, std::memory_order_relaxed);
    }
    std::rethrow_exception(err);
  }
}

}  // namespace portabench::simrt
