#include "thread_pool.hpp"

#include "common/error.hpp"
#include "portacheck/hooks.hpp"

namespace portabench::simrt {

ThreadPool::ThreadPool(std::size_t num_threads, Placement placement)
    : num_threads_(num_threads), placement_(std::move(placement)) {
  PB_EXPECTS(num_threads >= 1);
  PB_EXPECTS(placement_.core_of_thread.empty() ||
             placement_.core_of_thread.size() >= num_threads);
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Drain before shutdown: if the last handle to the pool is dropped on
    // one thread while another still has a run() in flight (e.g. a
    // parallel_reduce chunk mid-execution), workers must finish and join
    // that region before being told to exit — otherwise the region's
    // rendezvous would wait on threads that already left.
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return task_ == nullptr && remaining_ == 0; });
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(std::size_t)>& task) {
  {
    std::lock_guard lock(mutex_);
    PB_EXPECTS(task_ == nullptr);  // non-reentrant
    task_ = &task;
    remaining_ = num_threads_ - 1;
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();

  // The caller participates as logical thread 0 (like an OpenMP master).
  try {
    portacheck::LaneScope lane(0);
    task(0);
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }

  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
  // Wake a destructor that may be draining on another thread.
  done_cv_.notify_all();
  if (first_error_) {
    auto err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t thread_id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    try {
      // Default shadow lane for tasks submitted via run() directly; the
      // checked parallel_* paths override this per logical iteration.
      portacheck::LaneScope lane(thread_id);
      (*task)(thread_id);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      // notify_all: both run()'s rendezvous and a draining destructor may
      // be waiting on done_cv_.
      if (--remaining_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace portabench::simrt
