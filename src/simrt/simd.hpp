// simrt::simd — the portable explicit-SIMD value type (mini Kokkos-SIMD).
//
// The paper's portable models answer inner-loop throughput with a
// width-generic SIMD abstraction (Kokkos::Experimental::simd); this is
// our from-scratch equivalent for the simulation host.  `simd<T, W>` is
// a value type of W lanes of T with loads/stores (aligned, unaligned,
// masked tail), lane-wise arithmetic, fused-shape fma (a*b + c, never a
// hardware FMA — see the determinism contract), min/max, lane shuffles,
// and horizontal reductions whose lane-combination order is pinned.
//
// Two backends, one semantics (docs/PERF.md "Portable SIMD layer"):
//   scalar      fixed-trip loops over a lane array; always available,
//               the bit-exact reference.
//   vector_ext  GCC `__attribute__((vector_size))` generic vectors;
//               selected at configure time (CMake compile-checks the
//               extension and defines PORTABENCH_SIMD_HAS_VECTOR_EXT
//               for the whole build; self-detection is the fallback for
//               installed-header consumers).  W == 1 always uses the
//               scalar backend.
//
// Determinism contract:
//   * Lane ops are IEEE-754 operations, identical across backends and
//     ISA tiers; FMA contraction is disabled (repo-wide -ffp-contract=off
//     plus the explicit attribute on AVX-512 tier wrappers, whose target
//     otherwise enables it).
//   * hsum/hmin/hmax combine lanes strictly in ascending lane order, so
//     a reduction's value depends only on (W, element order) — never on
//     the instruction set executing it.
//   * Kernels that widen with the ISA (e.g. the tiled GEMM microkernel)
//     must keep the per-element accumulation order independent of W;
//     kernels that cannot (block reductions) pin W to the values below
//     regardless of the runtime tier.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <type_traits>

#include "simd_backends/scalar.hpp"

// --- backend selection ------------------------------------------------------
// PORTABENCH_SIMD_HAS_VECTOR_EXT: 1 when the GCC generic-vector backend
// is compiled in.  CMake sets it globally after a compile check (see the
// top-level CMakeLists); when absent (installed headers, ad-hoc builds)
// detect from the compiler.  PORTABENCH_SIMD_FORCE_SCALAR overrides.
#if defined(PORTABENCH_SIMD_FORCE_SCALAR)
#undef PORTABENCH_SIMD_HAS_VECTOR_EXT
#define PORTABENCH_SIMD_HAS_VECTOR_EXT 0
#endif
#ifndef PORTABENCH_SIMD_HAS_VECTOR_EXT
#if defined(__GNUC__) || defined(__clang__)
#define PORTABENCH_SIMD_HAS_VECTOR_EXT 1
#else
#define PORTABENCH_SIMD_HAS_VECTOR_EXT 0
#endif
#endif

// PORTABENCH_SIMD_HAS_X86_TIERS: 1 when per-function ISA targeting
// (__attribute__((target))) and __builtin_cpu_supports are available, so
// hot loops can be compiled per tier and dispatched at runtime.
#ifndef PORTABENCH_SIMD_HAS_X86_TIERS
#if PORTABENCH_SIMD_HAS_VECTOR_EXT && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define PORTABENCH_SIMD_HAS_X86_TIERS 1
#else
#define PORTABENCH_SIMD_HAS_X86_TIERS 0
#endif
#endif

#if PORTABENCH_SIMD_HAS_VECTOR_EXT
#include "simd_backends/vector_ext.hpp"
#endif

// Tier-wrapper attributes: recompile a generic body for a wider ISA.
// flatten forces the (template) body to inline so it actually picks up
// the wider target; fp-contract=off keeps AVX-512 (whose target implies
// FMA) from contracting a*b + c and breaking cross-tier bit identity.
#if PORTABENCH_SIMD_HAS_X86_TIERS
#define PORTABENCH_SIMD_TARGET_AVX2 \
  __attribute__((target("avx2"), flatten, optimize("fp-contract=off")))
#define PORTABENCH_SIMD_TARGET_AVX512 \
  __attribute__((target("avx512f"), flatten, optimize("fp-contract=off")))
#endif

namespace portabench::simrt {

namespace detail_simd {

template <class T, std::size_t W>
struct pick_backend {
  using type = simd_backends::ScalarPack<T, W>;
};

#if PORTABENCH_SIMD_HAS_VECTOR_EXT
template <class T, std::size_t W>
  requires(W >= 2)
struct pick_backend<T, W> {
  using type = simd_backends::VecPack<T, W>;
};
#endif

}  // namespace detail_simd

/// Width policy: one 256-bit register's worth of lanes.  This is the
/// *semantic* width kernels with pinned lane order use on every machine;
/// ISA tiers may execute it in halves (SSE2) or one op (AVX2) but never
/// change it.  Width-order-free kernels (the GEMM microkernel) may pick
/// wider geometries per tier.
inline constexpr std::size_t kSimdRegisterBytes = 32;

template <class T>
inline constexpr std::size_t native_lanes = kSimdRegisterBytes / sizeof(T);

template <class T, std::size_t W>
class simd {
 public:
  using value_type = T;
  using backend_type = typename detail_simd::pick_backend<T, W>::type;
  using mask_type = simd<simd_backends::mask_element_t<T>, W>;
  static constexpr std::size_t width = W;

  simd() noexcept : b_(backend_type::broadcast(T{})) {}
  explicit simd(T broadcast_value) noexcept : b_(backend_type::broadcast(broadcast_value)) {}
  explicit simd(const backend_type& b) noexcept : b_(b) {}

  [[nodiscard]] const backend_type& backend() const noexcept { return b_; }

  // --- loads / stores -------------------------------------------------------
  static simd load(const T* p) noexcept { return simd(backend_type::load(p)); }
  static simd load_aligned(const T* p) noexcept { return simd(backend_type::load_aligned(p)); }
  /// Masked-tail load: lanes [0, n) from p, remaining lanes zero.
  static simd load_partial(const T* p, std::size_t n) noexcept {
    simd r;
    for (std::size_t w = 0; w < W && w < n; ++w) r.b_.set(w, p[w]);
    return r;
  }
  void store(T* p) const noexcept { b_.store(p); }
  void store_aligned(T* p) const noexcept { b_.store_aligned(p); }
  /// Masked-tail store: lanes [0, n) to p; nothing else is touched.
  void store_partial(T* p, std::size_t n) const noexcept {
    for (std::size_t w = 0; w < W && w < n; ++w) p[w] = b_.get(w);
  }

  [[nodiscard]] T operator[](std::size_t w) const noexcept { return b_.get(w); }
  void set_lane(std::size_t w, T v) noexcept { b_.set(w, v); }

  // --- lane-wise arithmetic -------------------------------------------------
  friend simd operator+(const simd& a, const simd& b) noexcept {
    return simd(backend_type::add(a.b_, b.b_));
  }
  friend simd operator-(const simd& a, const simd& b) noexcept {
    return simd(backend_type::sub(a.b_, b.b_));
  }
  friend simd operator*(const simd& a, const simd& b) noexcept {
    return simd(backend_type::mul(a.b_, b.b_));
  }
  friend simd operator/(const simd& a, const simd& b) noexcept {
    return simd(backend_type::div(a.b_, b.b_));
  }
  friend simd operator-(const simd& a) noexcept { return simd(backend_type::neg(a.b_)); }
  simd& operator+=(const simd& o) noexcept { return *this = *this + o; }
  simd& operator-=(const simd& o) noexcept { return *this = *this - o; }
  simd& operator*=(const simd& o) noexcept { return *this = *this * o; }
  simd& operator/=(const simd& o) noexcept { return *this = *this / o; }

  friend simd min(const simd& a, const simd& b) noexcept {
    return simd(backend_type::min(a.b_, b.b_));
  }
  friend simd max(const simd& a, const simd& b) noexcept {
    return simd(backend_type::max(a.b_, b.b_));
  }
  /// a*b + c as two rounded IEEE operations — deliberately *not* a
  /// hardware FMA, so every tier and backend produces the same bits.
  friend simd fma(const simd& a, const simd& b, const simd& c) noexcept {
    return a * b + c;
  }

  // --- lane-wise bit ops (integral lanes) -----------------------------------
  friend simd operator&(const simd& a, const simd& b) noexcept
    requires std::is_integral_v<T>
  {
    return simd(backend_type::band(a.b_, b.b_));
  }
  friend simd operator|(const simd& a, const simd& b) noexcept
    requires std::is_integral_v<T>
  {
    return simd(backend_type::bor(a.b_, b.b_));
  }
  friend simd operator^(const simd& a, const simd& b) noexcept
    requires std::is_integral_v<T>
  {
    return simd(backend_type::bxor(a.b_, b.b_));
  }
  friend simd operator~(const simd& a) noexcept
    requires std::is_integral_v<T>
  {
    return simd(backend_type::bnot(a.b_));
  }
  friend simd operator<<(const simd& a, unsigned n) noexcept
    requires std::is_integral_v<T>
  {
    return simd(backend_type::shl(a.b_, n));
  }
  friend simd operator>>(const simd& a, unsigned n) noexcept
    requires std::is_integral_v<T>
  {
    return simd(backend_type::shr(a.b_, n));
  }

  // --- comparisons / select -------------------------------------------------
  // Named (not operator==) so a lane-mask result is never mistaken for a
  // bool.  Masks are canonical all-ones/all-zeros unsigned lanes.
  [[nodiscard]] mask_type eq(const simd& o) const noexcept {
    return mask_type(backend_type::cmp_eq(b_, o.b_));
  }
  [[nodiscard]] mask_type lt(const simd& o) const noexcept {
    return mask_type(backend_type::cmp_lt(b_, o.b_));
  }
  [[nodiscard]] mask_type le(const simd& o) const noexcept {
    return mask_type(backend_type::cmp_le(b_, o.b_));
  }
  static simd select(const mask_type& m, const simd& a, const simd& b) noexcept {
    return simd(backend_type::select(m.backend(), a.b_, b.b_));
  }

  // --- conversions ----------------------------------------------------------
  /// Lane-wise static_cast to U (widen/narrow/int<->float).
  template <class U>
  [[nodiscard]] simd<U, W> convert_to() const noexcept {
    return simd<U, W>(b_.template convert<U>());
  }
  /// Bit-level reinterpretation to a same-total-size pack.
  template <class U>
  [[nodiscard]] simd<U, W> bit_cast_to() const noexcept {
    static_assert(sizeof(U) == sizeof(T), "bit_cast_to keeps the lane layout");
    // Copy backend-to-backend: the packs are trivial standard-layout
    // structs of raw lane storage, so memcpy is the defined bit cast.
    typename simd<U, W>::backend_type rb;
    static_assert(sizeof(rb) == sizeof(b_));
    std::memcpy(&rb, &b_, sizeof(rb));
    return simd<U, W>(rb);
  }

  // --- lane shuffles --------------------------------------------------------
  [[nodiscard]] simd reverse_lanes() const noexcept { return simd(b_.reverse()); }
  /// Result lane w = input lane (w + n) % W.
  [[nodiscard]] simd rotate_lanes(std::size_t n) const noexcept { return simd(b_.rotate(n)); }

  // --- horizontal reductions (pinned order) ---------------------------------
  /// ((lane0 + lane1) + lane2) + ... — ascending lane order, every
  /// backend and tier.  The only reassociation simd introduces is this
  /// documented one.
  [[nodiscard]] T hsum() const noexcept {
    T acc = b_.get(0);
    for (std::size_t w = 1; w < W; ++w) acc = static_cast<T>(acc + b_.get(w));
    return acc;
  }
  [[nodiscard]] T hmin() const noexcept {
    T acc = b_.get(0);
    for (std::size_t w = 1; w < W; ++w) acc = b_.get(w) < acc ? b_.get(w) : acc;
    return acc;
  }
  [[nodiscard]] T hmax() const noexcept {
    T acc = b_.get(0);
    for (std::size_t w = 1; w < W; ++w) acc = acc < b_.get(w) ? b_.get(w) : acc;
    return acc;
  }

 private:
  backend_type b_;
};

// --- runtime ISA tiers ------------------------------------------------------

/// Instruction tiers the dispatched kernels are compiled for.  kVector
/// is the baseline-ISA generic-vector build (whatever -march the TU got,
/// SSE2 on stock x86-64); kScalar means the vector backend is compiled
/// out entirely.  Tier choice NEVER changes results: every tier of every
/// dispatched kernel is bit-identical (tests pin this).
enum class SimdTier : int { kScalar = 0, kVector = 1, kAvx2 = 2, kAvx512 = 3 };

[[nodiscard]] constexpr std::string_view simd_tier_name(SimdTier t) noexcept {
  switch (t) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kVector: return "vector";
    case SimdTier::kAvx2: return "avx2";
    case SimdTier::kAvx512: return "avx512";
  }
  return "unknown";
}

namespace detail_simd {

inline SimdTier detect_simd_tier() noexcept {
#if PORTABENCH_SIMD_HAS_VECTOR_EXT
  SimdTier best = SimdTier::kVector;
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (__builtin_cpu_supports("avx2")) best = SimdTier::kAvx2;
  if (__builtin_cpu_supports("avx512f")) best = SimdTier::kAvx512;
#endif
  // PORTABENCH_SIMD_TIER clamps the dispatch tier (debugging / perf
  // triage); results are identical at every tier by contract.
  if (const char* env = std::getenv("PORTABENCH_SIMD_TIER")) {
    const std::string_view want(env);
    for (const SimdTier t : {SimdTier::kScalar, SimdTier::kVector, SimdTier::kAvx2,
                             SimdTier::kAvx512}) {
      if (want == simd_tier_name(t) && static_cast<int>(t) <= static_cast<int>(best)) {
        return t;
      }
    }
  }
  return best;
#else
  return SimdTier::kScalar;
#endif
}

}  // namespace detail_simd

/// The best tier this process can dispatch to (cached after first call).
[[nodiscard]] inline SimdTier simd_dispatch_tier() noexcept {
  static const SimdTier tier = detail_simd::detect_simd_tier();
  return tier;
}

/// True when `t` can execute on this host (t <= simd_dispatch_tier()
/// modulo the env clamp — the clamp lowers this too, keeping bench/tests
/// honest about what they exercised).
[[nodiscard]] inline bool simd_tier_available(SimdTier t) noexcept {
  return static_cast<int>(t) <= static_cast<int>(simd_dispatch_tier());
}

}  // namespace portabench::simrt
