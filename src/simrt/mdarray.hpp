// Multi-dimensional array views with layout polymorphism.
//
// The study hinges on layout: Julia is column-major, numpy/C row-major,
// and the paper's CPU kernels pick their loop nests per layout "to ensure
// equivalent computational workloads" (Section III).  View2 reproduces
// Kokkos::View semantics: a reference-counted handle over shared storage
// (copies alias), compile-time layout, unchecked operator() plus a checked
// at() so frontends can model Julia's @inbounds on/off distinction.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace portabench::simrt {

/// Row-major storage: element (i, j) at offset i*n1 + j (C, numpy).
struct LayoutRight {
  static constexpr const char* label = "LayoutRight";
};

/// Column-major storage: element (i, j) at offset i + j*n0 (Julia, BLAS).
struct LayoutLeft {
  static constexpr const char* label = "LayoutLeft";
};

namespace detail {

template <class T>
std::shared_ptr<T[]> allocate_shared_array(std::size_t count) {
  // 64-byte aligned allocation with value-initialized (zeroed) contents,
  // shared so view copies alias the same storage (Kokkos::View semantics).
  void* raw = ::operator new[](count * sizeof(T), std::align_val_t{kCacheLineBytes});
  T* typed = static_cast<T*>(raw);
  std::uninitialized_value_construct_n(typed, count);
  return std::shared_ptr<T[]>(typed, [](T* p) {
    ::operator delete[](p, std::align_val_t{kCacheLineBytes});
  });
}

}  // namespace detail

/// Rank-1 view.
template <class T>
class View1 {
 public:
  View1() = default;

  /// Allocate owning storage for `n` zero-initialized elements.
  explicit View1(std::size_t n) : data_(detail::allocate_shared_array<T>(n)), size_(n) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t extent(std::size_t dim) const {
    PB_EXPECTS(dim == 0);
    return size_;
  }

  [[nodiscard]] T& operator()(std::size_t i) const noexcept { return data_[offset_ + i]; }

  [[nodiscard]] T& at(std::size_t i) const {
    PB_EXPECTS(i < size_);
    return data_[offset_ + i];
  }

  [[nodiscard]] T* data() const noexcept { return data_.get() + offset_; }
  [[nodiscard]] std::span<T> span() const noexcept { return {data(), size_}; }

  /// Subview of [begin, end).
  [[nodiscard]] View1 subview(std::size_t begin, std::size_t end) const {
    PB_EXPECTS(begin <= end && end <= size_);
    View1 v = *this;
    v.offset_ += begin;
    v.size_ = end - begin;
    return v;
  }

 private:
  std::shared_ptr<T[]> data_;
  std::size_t offset_ = 0;
  std::size_t size_ = 0;
};

/// Rank-2 view with compile-time layout.
template <class T, class Layout = LayoutRight>
class View2 {
 public:
  using value_type = T;
  using layout_type = Layout;
  static constexpr bool is_row_major = std::is_same_v<Layout, LayoutRight>;

  View2() = default;

  /// Allocate owning storage for an n0 x n1 zero-initialized matrix.
  View2(std::size_t n0, std::size_t n1)
      : data_(detail::allocate_shared_array<T>(n0 * n1)), n0_(n0), n1_(n1) {
    if constexpr (is_row_major) {
      stride0_ = n1;
      stride1_ = 1;
    } else {
      stride0_ = 1;
      stride1_ = n0;
    }
  }

  [[nodiscard]] std::size_t extent(std::size_t dim) const {
    PB_EXPECTS(dim < 2);
    return dim == 0 ? n0_ : n1_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n0_ * n1_; }
  [[nodiscard]] std::size_t stride(std::size_t dim) const {
    PB_EXPECTS(dim < 2);
    return dim == 0 ? stride0_ : stride1_;
  }

  /// True when the view covers its storage contiguously (no subview gaps).
  [[nodiscard]] bool contiguous() const noexcept {
    if constexpr (is_row_major) {
      return stride1_ == 1 && stride0_ == n1_;
    } else {
      return stride0_ == 1 && stride1_ == n0_;
    }
  }

  /// Unchecked access (the @inbounds / raw-pointer path).
  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[offset_ + i * stride0_ + j * stride1_];
  }

  /// Bounds-checked access (the default Julia / debug path).
  [[nodiscard]] T& at(std::size_t i, std::size_t j) const {
    PB_EXPECTS(i < n0_ && j < n1_);
    return (*this)(i, j);
  }

  /// Pointer to element (0,0) of this view.
  [[nodiscard]] T* data() const noexcept { return data_.get() + offset_; }

  /// Rectangular subview [r0, r1) x [c0, c1) aliasing the same storage.
  [[nodiscard]] View2 subview(std::size_t r0, std::size_t r1, std::size_t c0,
                              std::size_t c1) const {
    PB_EXPECTS(r0 <= r1 && r1 <= n0_ && c0 <= c1 && c1 <= n1_);
    View2 v = *this;
    v.offset_ += r0 * stride0_ + c0 * stride1_;
    v.n0_ = r1 - r0;
    v.n1_ = c1 - c0;
    return v;
  }

  /// Row i as a rank-1 view (only contiguous for LayoutRight).
  [[nodiscard]] bool same_storage(const View2& other) const noexcept {
    return data_ == other.data_;
  }

 private:
  template <class U, class L>
  friend class View3;

  /// Aliasing constructor with explicit geometry (used by View3::slice).
  View2(std::shared_ptr<T[]> data, std::size_t offset, std::size_t n0, std::size_t n1,
        std::size_t stride0, std::size_t stride1)
      : data_(std::move(data)), offset_(offset), n0_(n0), n1_(n1), stride0_(stride0),
        stride1_(stride1) {}

  std::shared_ptr<T[]> data_;
  std::size_t offset_ = 0;
  std::size_t n0_ = 0;
  std::size_t n1_ = 0;
  std::size_t stride0_ = 0;
  std::size_t stride1_ = 0;
};

/// Non-owning rank-2 view over caller-provided storage, with View2's
/// access surface (value_type/layout_type/is_row_major, extent/stride,
/// operator()/at, data).  The view-generic kernels (gemm/kernels_cpu.hpp,
/// stencil sweeps) accept it unchanged, which is what lets the serving
/// layer run the frontend loop nests over pooled arena memory with zero
/// steady-state allocation — the same arithmetic, byte for byte, as the
/// owning-View2 path.
template <class T, class Layout = LayoutRight>
class RawView2 {
 public:
  using value_type = T;
  using layout_type = Layout;
  static constexpr bool is_row_major = std::is_same_v<Layout, LayoutRight>;

  RawView2() = default;

  /// Wrap `data` as a dense n0 x n1 matrix in this view's layout.  The
  /// caller owns the storage and must keep it alive past the view.
  RawView2(T* data, std::size_t n0, std::size_t n1) noexcept
      : data_(data), n0_(n0), n1_(n1) {
    if constexpr (is_row_major) {
      stride0_ = n1;
      stride1_ = 1;
    } else {
      stride0_ = 1;
      stride1_ = n0;
    }
  }

  [[nodiscard]] std::size_t extent(std::size_t dim) const {
    PB_EXPECTS(dim < 2);
    return dim == 0 ? n0_ : n1_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return n0_ * n1_; }
  [[nodiscard]] std::size_t stride(std::size_t dim) const {
    PB_EXPECTS(dim < 2);
    return dim == 0 ? stride0_ : stride1_;
  }

  [[nodiscard]] T& operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * stride0_ + j * stride1_];
  }

  [[nodiscard]] T& at(std::size_t i, std::size_t j) const {
    PB_EXPECTS(i < n0_ && j < n1_);
    return (*this)(i, j);
  }

  [[nodiscard]] T* data() const noexcept { return data_; }
  [[nodiscard]] std::span<T> span() const noexcept { return {data_, n0_ * n1_}; }

 private:
  T* data_ = nullptr;
  std::size_t n0_ = 0;
  std::size_t n1_ = 0;
  std::size_t stride0_ = 0;
  std::size_t stride1_ = 0;
};

template <class T, class Layout>
class View3;

/// Element-wise copy between views of any layout combination
/// (Kokkos::deep_copy analogue).  Extents must match.
template <class T, class LDst, class LSrc>
void deep_copy(View2<T, LDst>& dst, const View2<T, LSrc>& src) {
  PB_EXPECTS(dst.extent(0) == src.extent(0) && dst.extent(1) == src.extent(1));
  for (std::size_t i = 0; i < dst.extent(0); ++i) {
    for (std::size_t j = 0; j < dst.extent(1); ++j) dst(i, j) = src(i, j);
  }
}

}  // namespace portabench::simrt
