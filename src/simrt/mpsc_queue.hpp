// Bounded lock-free multi-producer queue (Vyukov's bounded MPMC ring).
//
// The serving layer (src/serve) admits requests from many submitter
// threads into per-shard queues that a single flusher drains in batches.
// The classic Vyukov ring fits exactly: one atomic sequence word per
// cell makes both push and pop a single CAS-free fetch-sub-free
// compare_exchange on the position counter plus one cell handshake, the
// capacity is fixed at construction (bounded-queue backpressure is the
// *point* — a full queue is a typed reject, not a resize), and the only
// allocation ever performed is the cell array in the constructor.
//
// The queue is in fact MPMC-safe (both ends use the same protocol); the
// name records the serving layer's usage — many producers, one consumer
// per shard — and under the sanitized tier (eager streams) the "single
// consumer" can be whichever submitter triggered the flush, which is why
// the pop side must be multi-consumer-correct too.
//
// Memory ordering follows the published algorithm: positions are claimed
// with relaxed CAS, cell sequence numbers transfer the payload with
// acquire/release.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace portabench::simrt {

template <class T>
class BoundedMpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (>= 2): the ring
  /// index is a mask, not a modulo.
  explicit BoundedMpscQueue(std::size_t capacity)
      : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Enqueue by move; returns false when the ring is full (backpressure:
  /// the caller turns this into a typed reject).  Never blocks, never
  /// allocates.
  [[nodiscard]] bool try_push(T value) {
    Cell* cell = nullptr;
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the cell is still occupied by a lap-old element: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeue into `out`; returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    Cell* cell = nullptr;
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    out = std::move(cell->value);
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact only when no push/pop is in flight);
  /// used for diagnostics and flush-threshold checks, never correctness.
  [[nodiscard]] std::size_t size_approx() const noexcept {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
    return enq >= deq ? enq - deq : 0;
  }

 private:
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  static constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  std::size_t capacity_;
  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineBytes) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(kCacheLineBytes) std::atomic<std::size_t> dequeue_pos_{0};
};

}  // namespace portabench::simrt
