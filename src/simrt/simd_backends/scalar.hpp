// Scalar-unrolled SIMD backend: the always-available reference.
//
// Every lane operation is a plain fixed-trip-count loop over a small
// array — the shape compiler auto-vectorizers digest best, and the
// semantic reference the vector-extension backend must match bit for
// bit.  Nothing here is allowed to reassociate: lane w of the result
// depends only on lane w of the inputs (horizontal reductions live in
// simd.hpp, where the lane-combination order is pinned and documented).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace portabench::simrt::simd_backends {

/// Unsigned integer type with the same size as T (mask element type).
template <class T>
using mask_element_t =
    std::conditional_t<sizeof(T) == 2, std::uint16_t,
                       std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>>;

template <class T, std::size_t W>
struct ScalarPack {
  static_assert(W >= 1 && (W & (W - 1)) == 0, "lane count must be a power of two");
  using value_type = T;
  static constexpr std::size_t width = W;
  using mask_pack = ScalarPack<mask_element_t<T>, W>;

  // Match the vector backend's natural alignment so the aligned-load
  // contract is identical under either backend.
  alignas(sizeof(T) * W) T lane[W];

  static ScalarPack broadcast(T s) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = s;
    return r;
  }
  static ScalarPack load(const T* p) noexcept {
    ScalarPack r;
    std::memcpy(r.lane, p, sizeof(r.lane));
    return r;
  }
  static ScalarPack load_aligned(const T* p) noexcept { return load(p); }
  void store(T* p) const noexcept { std::memcpy(p, lane, sizeof(lane)); }
  void store_aligned(T* p) const noexcept { store(p); }

  [[nodiscard]] T get(std::size_t w) const noexcept { return lane[w]; }
  void set(std::size_t w, T v) noexcept { lane[w] = v; }

  static ScalarPack add(const ScalarPack& a, const ScalarPack& b) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] + b.lane[w]);
    return r;
  }
  static ScalarPack sub(const ScalarPack& a, const ScalarPack& b) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] - b.lane[w]);
    return r;
  }
  static ScalarPack mul(const ScalarPack& a, const ScalarPack& b) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] * b.lane[w]);
    return r;
  }
  static ScalarPack div(const ScalarPack& a, const ScalarPack& b) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] / b.lane[w]);
    return r;
  }
  static ScalarPack neg(const ScalarPack& a) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(-a.lane[w]);
    return r;
  }
  // min/max mirror std::min/std::max: the first argument wins ties (and
  // unordered comparisons), so NaN/-0.0 behaviour matches a scalar loop.
  static ScalarPack min(const ScalarPack& a, const ScalarPack& b) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = b.lane[w] < a.lane[w] ? b.lane[w] : a.lane[w];
    return r;
  }
  static ScalarPack max(const ScalarPack& a, const ScalarPack& b) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = a.lane[w] < b.lane[w] ? b.lane[w] : a.lane[w];
    return r;
  }

  static ScalarPack band(const ScalarPack& a, const ScalarPack& b) noexcept
    requires std::is_integral_v<T>
  {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] & b.lane[w]);
    return r;
  }
  static ScalarPack bor(const ScalarPack& a, const ScalarPack& b) noexcept
    requires std::is_integral_v<T>
  {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] | b.lane[w]);
    return r;
  }
  static ScalarPack bxor(const ScalarPack& a, const ScalarPack& b) noexcept
    requires std::is_integral_v<T>
  {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] ^ b.lane[w]);
    return r;
  }
  static ScalarPack bnot(const ScalarPack& a) noexcept
    requires std::is_integral_v<T>
  {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(~a.lane[w]);
    return r;
  }
  static ScalarPack shl(const ScalarPack& a, unsigned n) noexcept
    requires std::is_integral_v<T>
  {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] << n);
    return r;
  }
  static ScalarPack shr(const ScalarPack& a, unsigned n) noexcept
    requires std::is_integral_v<T>
  {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<T>(a.lane[w] >> n);
    return r;
  }

  /// All-ones / all-zeros lane masks (same layout as vector-ext compares).
  static mask_pack cmp_eq(const ScalarPack& a, const ScalarPack& b) noexcept {
    using M = mask_element_t<T>;
    mask_pack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = a.lane[w] == b.lane[w] ? static_cast<M>(~M{0}) : M{0};
    return r;
  }
  static mask_pack cmp_lt(const ScalarPack& a, const ScalarPack& b) noexcept {
    using M = mask_element_t<T>;
    mask_pack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = a.lane[w] < b.lane[w] ? static_cast<M>(~M{0}) : M{0};
    return r;
  }
  static mask_pack cmp_le(const ScalarPack& a, const ScalarPack& b) noexcept {
    using M = mask_element_t<T>;
    mask_pack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = a.lane[w] <= b.lane[w] ? static_cast<M>(~M{0}) : M{0};
    return r;
  }

  /// Per-lane mask select: lane w of the result is a's lane where the
  /// mask lane is all-ones, b's where it is zero.
  static ScalarPack select(const mask_pack& m, const ScalarPack& a, const ScalarPack& b) noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = m.lane[w] ? a.lane[w] : b.lane[w];
    return r;
  }

  /// Lane-wise value conversion (static_cast per lane).
  template <class U>
  [[nodiscard]] ScalarPack<U, W> convert() const noexcept {
    ScalarPack<U, W> r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = static_cast<U>(lane[w]);
    return r;
  }

  [[nodiscard]] ScalarPack reverse() const noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = lane[W - 1 - w];
    return r;
  }
  /// Rotate lanes left by n: result lane w = input lane (w + n) % W.
  [[nodiscard]] ScalarPack rotate(std::size_t n) const noexcept {
    ScalarPack r;
    for (std::size_t w = 0; w < W; ++w) r.lane[w] = lane[(w + n) % W];
    return r;
  }
};

}  // namespace portabench::simrt::simd_backends
