// GCC vector-extension SIMD backend.
//
// The one place in the tree allowed to touch raw
// `__attribute__((vector_size))` types (enforced by the portalint
// `simd-raw-vector-ext` rule): everything else goes through
// simrt::simd.  Lane semantics are defined to be identical to the
// scalar backend — same IEEE operations per lane, same mask layout
// (all-ones/all-zeros integer lanes), same min/max tie rules — which
// the simd_test property suites pin against the scalar loops.
//
// Loads and stores go through memcpy, so the pointer passed in is
// treated as a byte address: packing half/bfloat16 storage through a
// uint16_t* stays well-defined.  Codegen note: the ISA these ops lower
// to is whatever the enclosing function targets — the tier-dispatch
// wrappers in simd.hpp (PORTABENCH_SIMD_TARGET_*) recompile the same
// generic body for AVX2/AVX-512 without changing a single lane result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "scalar.hpp"  // mask_element_t

namespace portabench::simrt::simd_backends {

template <class T, std::size_t W>
struct VecPack {
  static_assert(W >= 2 && (W & (W - 1)) == 0, "lane count must be a power of two >= 2");
  using value_type = T;
  static constexpr std::size_t width = W;
  using mask_pack = VecPack<mask_element_t<T>, W>;

  typedef T Vec __attribute__((vector_size(sizeof(T) * W)));
  Vec v;

  static VecPack broadcast(T s) noexcept {
    // Vector + scalar broadcasts the scalar across lanes (one vbroadcast).
    return {Vec{} + s};
  }
  static VecPack load(const T* p) noexcept {
    VecPack r;
    std::memcpy(&r.v, p, sizeof(Vec));
    return r;
  }
  static VecPack load_aligned(const T* p) noexcept {
    return load(static_cast<const T*>(__builtin_assume_aligned(p, sizeof(Vec))));
  }
  void store(T* p) const noexcept { std::memcpy(p, &v, sizeof(Vec)); }
  void store_aligned(T* p) const noexcept {
    std::memcpy(static_cast<T*>(__builtin_assume_aligned(p, sizeof(Vec))), &v, sizeof(Vec));
  }

  [[nodiscard]] T get(std::size_t w) const noexcept { return v[w]; }
  void set(std::size_t w, T x) noexcept { v[w] = x; }

  static VecPack add(const VecPack& a, const VecPack& b) noexcept { return {a.v + b.v}; }
  static VecPack sub(const VecPack& a, const VecPack& b) noexcept { return {a.v - b.v}; }
  static VecPack mul(const VecPack& a, const VecPack& b) noexcept { return {a.v * b.v}; }
  static VecPack div(const VecPack& a, const VecPack& b) noexcept { return {a.v / b.v}; }
  static VecPack neg(const VecPack& a) noexcept { return {-a.v}; }
  static VecPack min(const VecPack& a, const VecPack& b) noexcept {
    return select(cmp_lt(b, a), b, a);
  }
  static VecPack max(const VecPack& a, const VecPack& b) noexcept {
    return select(cmp_lt(a, b), b, a);
  }

  static VecPack band(const VecPack& a, const VecPack& b) noexcept
    requires std::is_integral_v<T>
  {
    return {a.v & b.v};
  }
  static VecPack bor(const VecPack& a, const VecPack& b) noexcept
    requires std::is_integral_v<T>
  {
    return {a.v | b.v};
  }
  static VecPack bxor(const VecPack& a, const VecPack& b) noexcept
    requires std::is_integral_v<T>
  {
    return {a.v ^ b.v};
  }
  static VecPack bnot(const VecPack& a) noexcept
    requires std::is_integral_v<T>
  {
    return {~a.v};
  }
  static VecPack shl(const VecPack& a, unsigned n) noexcept
    requires std::is_integral_v<T>
  {
    return {a.v << n};
  }
  static VecPack shr(const VecPack& a, unsigned n) noexcept
    requires std::is_integral_v<T>
  {
    return {a.v >> n};
  }

  // Vector comparisons yield signed -1/0 lanes; reinterpret to the
  // unsigned mask layout shared with the scalar backend.
  static mask_pack cmp_eq(const VecPack& a, const VecPack& b) noexcept {
    return as_mask(a.v == b.v);
  }
  static mask_pack cmp_lt(const VecPack& a, const VecPack& b) noexcept {
    return as_mask(a.v < b.v);
  }
  static mask_pack cmp_le(const VecPack& a, const VecPack& b) noexcept {
    return as_mask(a.v <= b.v);
  }

  static VecPack select(const mask_pack& m, const VecPack& a, const VecPack& b) noexcept {
    using UV = typename mask_pack::Vec;
    UV ua;
    UV ub;
    std::memcpy(&ua, &a.v, sizeof(UV));
    std::memcpy(&ub, &b.v, sizeof(UV));
    const UV r = (ua & m.v) | (ub & ~m.v);
    VecPack out;
    std::memcpy(&out.v, &r, sizeof(Vec));
    return out;
  }

  template <class U>
  [[nodiscard]] VecPack<U, W> convert() const noexcept {
    VecPack<U, W> r;
    r.v = __builtin_convertvector(v, typename VecPack<U, W>::Vec);
    return r;
  }

  [[nodiscard]] VecPack reverse() const noexcept {
    typename mask_pack::Vec idx;
    for (std::size_t w = 0; w < W; ++w) idx[w] = static_cast<mask_element_t<T>>(W - 1 - w);
    return {__builtin_shuffle(v, idx)};
  }
  [[nodiscard]] VecPack rotate(std::size_t n) const noexcept {
    typename mask_pack::Vec idx;
    for (std::size_t w = 0; w < W; ++w) idx[w] = static_cast<mask_element_t<T>>((w + n) % W);
    return {__builtin_shuffle(v, idx)};
  }

 private:
  template <class CmpVec>
  static mask_pack as_mask(const CmpVec& c) noexcept {
    static_assert(sizeof(CmpVec) == sizeof(typename mask_pack::Vec));
    mask_pack m;
    std::memcpy(&m.v, &c, sizeof(m.v));
    return m;
  }
};

}  // namespace portabench::simrt::simd_backends
