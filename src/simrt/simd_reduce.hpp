// SIMD block reductions with a pinned combination order.
//
// Reductions are where vectorization usually breaks determinism: the
// lane count changes how partial sums associate, so the "same" sum on
// two machines (or two ISA tiers of one machine) can differ in the last
// bit.  This header pins the reassociation instead of forbidding it:
//
//   simd_sum        W lane-strided partial sums over the full blocks
//                   (partial[w] accumulates p[i*W + w] in ascending i),
//                   combined in ascending lane order (hsum), then the
//                   tail elements appended sequentially.  W is FIXED per
//                   element type — native_lanes<T>, one 256-bit
//                   register's worth (8 float / 4 double) — regardless
//                   of which ISA tier executes it, so the value depends
//                   only on (T, element order), never on the hardware.
//   simd_max /      order-free: max is associative, commutative, and
//   simd_max_abs_diff  exact, so any blocking gives the identical value
//                   (bit-identical too; lanes are combined with the same
//                   a < b tie rule as the scalar loop).
//
// The *_tier forms take an explicit tier so tests can cross-check every
// tier the host supports; the bare forms dispatch once per process.
// Tier choice only changes codegen (AVX2/AVX-512 recompiles of the same
// fixed-W body), never the arithmetic — the sanitized test tier pins
// scalar vs every available tier bit-for-bit.
#pragma once

#include <cstddef>

#include "simrt/simd.hpp"

namespace portabench::simrt {

namespace detail_reduce {

template <class T, std::size_t W>
[[nodiscard]] inline T sum_w(const T* p, std::size_t n) noexcept {
  using V = simd<T, W>;
  V acc;
  std::size_t i = 0;
  for (; i + W <= n; i += W) acc += V::load(p + i);
  T s = acc.hsum();
  for (; i < n; ++i) s = static_cast<T>(s + p[i]);
  return s;
}

template <class T, std::size_t W>
[[nodiscard]] inline T max_w(const T* p, std::size_t n) noexcept {
  using V = simd<T, W>;
  std::size_t i = 1;
  T m = p[0];
  if (n >= W) {
    V acc = V::load(p);
    for (i = W; i + W <= n; i += W) acc = max(acc, V::load(p + i));
    m = acc.hmax();
  }
  for (; i < n; ++i) m = m < p[i] ? p[i] : m;
  return m;
}

template <class T, std::size_t W>
[[nodiscard]] inline T max_abs_diff_w(const T* u, const T* v, std::size_t n) noexcept {
  using V = simd<T, W>;
  V acc;  // zero: |d| >= 0, so the identity is safe
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const V d = V::load(u + i) - V::load(v + i);
    acc = max(acc, max(d, -d));
  }
  T m = acc.hmax();
  for (; i < n; ++i) {
    const T d = static_cast<T>(u[i] - v[i]);
    const T ad = d < T{} ? static_cast<T>(-d) : d;
    m = m < ad ? ad : m;
  }
  return m;
}

#if PORTABENCH_SIMD_HAS_X86_TIERS
// Tier recompiles of the same fixed-width bodies.  The width stays
// native_lanes<T> on every tier (the pinned-order contract); AVX-512
// merely executes the 256-bit pack in half a register.
PORTABENCH_SIMD_TARGET_AVX2 inline float sum_avx2(const float* p, std::size_t n) noexcept {
  return sum_w<float, native_lanes<float>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline float sum_avx512(const float* p, std::size_t n) noexcept {
  return sum_w<float, native_lanes<float>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline double sum_avx2(const double* p, std::size_t n) noexcept {
  return sum_w<double, native_lanes<double>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline double sum_avx512(const double* p,
                                                       std::size_t n) noexcept {
  return sum_w<double, native_lanes<double>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline float max_avx2(const float* p, std::size_t n) noexcept {
  return max_w<float, native_lanes<float>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline float max_avx512(const float* p, std::size_t n) noexcept {
  return max_w<float, native_lanes<float>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline double max_avx2(const double* p, std::size_t n) noexcept {
  return max_w<double, native_lanes<double>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline double max_avx512(const double* p,
                                                       std::size_t n) noexcept {
  return max_w<double, native_lanes<double>>(p, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline float max_abs_diff_avx2(const float* u, const float* v,
                                                           std::size_t n) noexcept {
  return max_abs_diff_w<float, native_lanes<float>>(u, v, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline float max_abs_diff_avx512(const float* u, const float* v,
                                                               std::size_t n) noexcept {
  return max_abs_diff_w<float, native_lanes<float>>(u, v, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline double max_abs_diff_avx2(const double* u, const double* v,
                                                            std::size_t n) noexcept {
  return max_abs_diff_w<double, native_lanes<double>>(u, v, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline double max_abs_diff_avx512(const double* u,
                                                                const double* v,
                                                                std::size_t n) noexcept {
  return max_abs_diff_w<double, native_lanes<double>>(u, v, n);
}
#endif

}  // namespace detail_reduce

// --- explicit-tier entry points (float / double) ----------------------------

template <class T>
  requires(std::is_same_v<T, float> || std::is_same_v<T, double>)
[[nodiscard]] inline T simd_sum_tier(const T* p, std::size_t n, SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == SimdTier::kAvx512) return detail_reduce::sum_avx512(p, n);
  if (tier == SimdTier::kAvx2) return detail_reduce::sum_avx2(p, n);
#endif
  (void)tier;
  return detail_reduce::sum_w<T, native_lanes<T>>(p, n);
}

template <class T>
  requires(std::is_same_v<T, float> || std::is_same_v<T, double>)
[[nodiscard]] inline T simd_max_tier(const T* p, std::size_t n, SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == SimdTier::kAvx512) return detail_reduce::max_avx512(p, n);
  if (tier == SimdTier::kAvx2) return detail_reduce::max_avx2(p, n);
#endif
  (void)tier;
  return detail_reduce::max_w<T, native_lanes<T>>(p, n);
}

template <class T>
  requires(std::is_same_v<T, float> || std::is_same_v<T, double>)
[[nodiscard]] inline T simd_max_abs_diff_tier(const T* u, const T* v, std::size_t n,
                                              SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == SimdTier::kAvx512) return detail_reduce::max_abs_diff_avx512(u, v, n);
  if (tier == SimdTier::kAvx2) return detail_reduce::max_abs_diff_avx2(u, v, n);
#endif
  (void)tier;
  return detail_reduce::max_abs_diff_w<T, native_lanes<T>>(u, v, n);
}

// --- dispatched entry points ------------------------------------------------

/// Pinned-order sum of p[0..n): see the header comment for the exact
/// combination order (it is a documented function of T and n only).
template <class T>
[[nodiscard]] inline T simd_sum(const T* p, std::size_t n) noexcept {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    return simd_sum_tier(p, n, simd_dispatch_tier());
  } else {
    return detail_reduce::sum_w<T, native_lanes<T>>(p, n);
  }
}

/// Max of p[0..n), n >= 1.  Value-exact: identical to the scalar loop.
template <class T>
[[nodiscard]] inline T simd_max(const T* p, std::size_t n) noexcept {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    return simd_max_tier(p, n, simd_dispatch_tier());
  } else {
    return detail_reduce::max_w<T, native_lanes<T>>(p, n);
  }
}

/// max |u[i] - v[i]| over [0, n); 0 for n == 0.  Value-exact.
template <class T>
[[nodiscard]] inline T simd_max_abs_diff(const T* u, const T* v, std::size_t n) noexcept {
  if constexpr (std::is_same_v<T, float> || std::is_same_v<T, double>) {
    return simd_max_abs_diff_tier(u, v, n, simd_dispatch_tier());
  } else {
    return detail_reduce::max_abs_diff_w<T, native_lanes<T>>(u, v, n);
  }
}

}  // namespace portabench::simrt
