// Runtime-configurable dispatch tunables.
//
// The fork-elision grain (ThreadPool::run_auto) and the dynamic-schedule
// chunk heuristic (detail::default_chunk) used to be translation-unit
// constants.  The paper's own cross-machine results (unroll-2 vs unroll-4
// winning on different GPUs) show the best scheduling point is
// machine-dependent, so these knobs are now process-global runtime values
// that the autotuner (src/tune, docs/TUNING.md) or the environment can
// override:
//
//   PORTABENCH_TUNE_FORK_CUTOFF   work items below which a region runs
//                                 inline instead of forking
//   PORTABENCH_TUNE_CHUNK         target chunks per thread for dynamic
//                                 schedules
//   PORTABENCH_TUNE_MIN_GRAIN     minimum iterations per dynamic chunk
//
// Environment overrides are applied once, on first access; explicit
// set_dispatch_tunables() calls (the autotuner's path) win over the
// environment from that point on.  All values only change *scheduling* —
// lane decomposition and reduction join order are invariant, so results
// stay bitwise-identical across any setting (tunables_test pins this).
//
// Reads are relaxed atomics: a racing set_dispatch_tunables() simply means
// some in-flight region uses the old grain, which is benign by the same
// argument.
#pragma once

#include <cstddef>
#include <functional>

namespace portabench::simrt {

/// Compile-time defaults (the historical constants).  These live here —
/// the tuning surface — so every hard-coded scheduling literal has one
/// sanctioned home (portalint tn-magic-tile enforces this elsewhere).
inline constexpr std::size_t kDefaultForkCutoff = 4096;
inline constexpr std::size_t kDefaultChunksPerThread = 8;
inline constexpr std::size_t kDefaultMinGrain = 8;

/// Snapshot of the dispatch scheduling knobs.
struct DispatchTunables {
  std::size_t fork_cutoff = kDefaultForkCutoff;        ///< 0 = always fork
  std::size_t chunks_per_thread = kDefaultChunksPerThread;  ///< clamped >= 1
  std::size_t min_grain = kDefaultMinGrain;            ///< clamped >= 1
};

/// Current process-wide tunables (defaults + env on first access, or the
/// last set_dispatch_tunables()).
[[nodiscard]] DispatchTunables dispatch_tunables() noexcept;

/// Fast accessor for the hot run_auto() path: one relaxed atomic load.
[[nodiscard]] std::size_t dispatch_fork_cutoff() noexcept;

/// Install new tunables (clamped: chunks_per_thread/min_grain >= 1).
void set_dispatch_tunables(const DispatchTunables& t) noexcept;

/// Back to defaults, then re-apply environment overrides (test hook).
void reset_dispatch_tunables() noexcept;

/// Environment lookup signature (injectable for tests: the round-trip
/// regression feeds a fake environment instead of mutating the real one).
using EnvLookup = std::function<const char*(const char*)>;

/// `base` with any PORTABENCH_TUNE_{FORK_CUTOFF,CHUNK,MIN_GRAIN} values
/// from `lookup` applied on top.  Unparseable values are ignored.
[[nodiscard]] DispatchTunables parse_dispatch_env(const DispatchTunables& base,
                                                  const EnvLookup& lookup);

/// Parse a non-negative size from env text; false (and *out untouched) on
/// empty/garbage/negative input.  Shared by the gpusim launch tunables.
[[nodiscard]] bool parse_tunable_size(const char* text, std::size_t* out) noexcept;

}  // namespace portabench::simrt
