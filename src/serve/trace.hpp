// Deterministic trace generation for the serving layer.
//
// TraceGen turns one seed into an unbounded stream of JobDescs — the
// mixed small-job load the bench and the stress tiers replay.  Every
// field of every job is a pure function of (config, id): the trace
// stream itself uses xoshiro256** seeded from the config, and each
// job's *data* seed is splitmix64(config.seed ^ id), so a job replayed
// in isolation (serve::run_serial) fills exactly the inputs the served
// run filled.  Same config → bit-for-bit the same trace, forever.
#pragma once

#include <array>
#include <cstdint>

#include "common/rng.hpp"
#include "job.hpp"

namespace portabench::serve {

struct TraceConfig {
  std::uint64_t seed = 1;
  std::uint32_t min_n = 8;    ///< inclusive
  std::uint32_t max_n = 64;   ///< inclusive
  // Mix weights (relative); a weight of 0 removes the kind entirely.
  std::uint32_t gemm_weight = 6;
  std::uint32_t spmv_weight = 3;
  std::uint32_t stencil_weight = 1;
  bool tiled_only = false;  ///< GEMM jobs pin Frontend::kTiled (the bucket-batching target)
};

class TraceGen {
 public:
  explicit TraceGen(const TraceConfig& config = {})
      : config_(config), rng_(config.seed) {}

  [[nodiscard]] JobDesc next() {
    JobDesc d;
    d.id = next_id_++;
    d.kind = pick_kind();
    d.precision = pick_precision(d.kind);
    d.frontend = pick_frontend(d.kind);
    d.n = pick_n();
    d.seed = SplitMix64(config_.seed ^ d.id).next();
    return d;
  }

  [[nodiscard]] const TraceConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] JobKind pick_kind() {
    const std::uint64_t total =
        config_.gemm_weight + config_.spmv_weight + config_.stencil_weight;
    if (total == 0) return JobKind::kGemm;
    const std::uint64_t roll = rng_() % total;
    if (roll < config_.gemm_weight) return JobKind::kGemm;
    if (roll < config_.gemm_weight + config_.spmv_weight) return JobKind::kSpmv;
    return JobKind::kStencil;
  }

  [[nodiscard]] Precision pick_precision(JobKind kind) {
    switch (kind) {
      case JobKind::kGemm: {
        constexpr std::array<Precision, 3> kAll{Precision::kDouble, Precision::kSingle,
                                                Precision::kHalfIn};
        return kAll[rng_() % kAll.size()];
      }
      case JobKind::kSpmv: {
        constexpr std::array<Precision, 2> kTwo{Precision::kDouble, Precision::kSingle};
        return kTwo[rng_() % kTwo.size()];
      }
      case JobKind::kStencil:
        return Precision::kDouble;
    }
    return Precision::kDouble;
  }

  [[nodiscard]] Frontend pick_frontend(JobKind kind) {
    switch (kind) {
      case JobKind::kGemm: {
        if (config_.tiled_only) return Frontend::kTiled;
        constexpr std::array<Frontend, 5> kAll{Frontend::kOpenMP, Frontend::kKokkos,
                                               Frontend::kJulia, Frontend::kNumba,
                                               Frontend::kTiled};
        return kAll[rng_() % kAll.size()];
      }
      case JobKind::kSpmv: {
        constexpr std::array<Frontend, 3> kRow{Frontend::kOpenMP, Frontend::kKokkos,
                                               Frontend::kNumba};
        return kRow[rng_() % kRow.size()];
      }
      case JobKind::kStencil: {
        constexpr std::array<Frontend, 3> kSweep{Frontend::kOpenMP, Frontend::kKokkos,
                                                 Frontend::kTiled};
        return kSweep[rng_() % kSweep.size()];
      }
    }
    return Frontend::kOpenMP;
  }

  [[nodiscard]] std::uint32_t pick_n() {
    const std::uint32_t span = config_.max_n - config_.min_n + 1;
    return config_.min_n + static_cast<std::uint32_t>(rng_() % span);
  }

  TraceConfig config_;
  Xoshiro256 rng_;
  std::uint64_t next_id_ = 0;
};

}  // namespace portabench::serve
