// Job taxonomy of the serving layer.
//
// A job is one small kernel request — a GEMM, an SpMV, or a stencil
// sweep — at a given problem size, precision, and model frontend (the
// paper's programming-model axis).  The serving layer admits jobs
// through sharded bounded queues, buckets them by (kind, frontend,
// precision, size class), and batches each bucket into one engine
// launch; docs/SERVE.md has the architecture.
//
// Admission is total: every malformed or unsupported request maps to a
// typed AdmitError — the engine never aborts on input.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/precision.hpp"

namespace portabench::serve {

enum class JobKind : std::uint8_t { kGemm, kSpmv, kStencil };

/// Programming-model frontend the job's kernel idiom comes from.
/// kTiled is the optimized-C++ microkernel path (the batching target the
/// small-GEMM buckets are built around).
enum class Frontend : std::uint8_t { kOpenMP, kKokkos, kJulia, kNumba, kTiled };

/// One request.  `seed` fully determines the job's input data; `id` must
/// be unique per engine run (it selects the shard and keys the result).
struct JobDesc {
  std::uint64_t id = 0;
  JobKind kind = JobKind::kGemm;
  Frontend frontend = Frontend::kTiled;
  Precision precision = Precision::kDouble;
  std::uint32_t n = 0;  ///< problem size (matrix order / grid side)
  std::uint64_t seed = 0;

  friend bool operator==(const JobDesc&, const JobDesc&) = default;
};

/// Typed admission outcomes.  kNone means accepted; everything else is a
/// reject that left the engine untouched.
enum class AdmitError : std::uint8_t {
  kNone,
  kQueueFull,     ///< bounded-queue backpressure: shed this request
  kZeroSize,      ///< n == 0
  kTooLarge,      ///< n exceeds the engine's configured max_n
  kUnsupported,   ///< (kind, frontend, precision) outside the support matrix
  kShutdown,      ///< engine is draining/destructing
};

enum class JobStatus : std::uint8_t { kOk, kFailed };

/// One completed job, delivered through ServeConfig::on_complete.
struct JobResult {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::kOk;
  double checksum = 0.0;  ///< index-order double sum of the job's output
};

/// The support matrix: which (kind, frontend, precision) triples the
/// serving layer executes.  GEMM covers every frontend and precision
/// (the paper's full Fig. 2 axis); SpMV keeps the CSR row-parallel
/// frontends at FP64/FP32 (the Julia CSC path privatizes y per thread —
/// allocation per call, excluded from the zero-alloc serving contract);
/// stencil is the FP64 5-point sweep in its serial, MDRange, and SIMD
/// idioms.
[[nodiscard]] constexpr bool supported(JobKind kind, Frontend frontend,
                                       Precision precision) noexcept {
  // Requests arrive as raw structs; bit patterns outside the enum ranges
  // are unsupported, not undefined (kind is covered by the switch below).
  if (static_cast<std::uint8_t>(frontend) > static_cast<std::uint8_t>(Frontend::kTiled)) {
    return false;
  }
  if (precision != Precision::kDouble && precision != Precision::kSingle &&
      precision != Precision::kHalfIn) {
    return false;
  }
  switch (kind) {
    case JobKind::kGemm:
      return true;
    case JobKind::kSpmv:
      return (frontend == Frontend::kOpenMP || frontend == Frontend::kKokkos ||
              frontend == Frontend::kNumba) &&
             (precision == Precision::kDouble || precision == Precision::kSingle);
    case JobKind::kStencil:
      return (frontend == Frontend::kOpenMP || frontend == Frontend::kKokkos ||
              frontend == Frontend::kTiled) &&
             precision == Precision::kDouble;
  }
  return false;
}

[[nodiscard]] constexpr std::string_view name(JobKind k) noexcept {
  switch (k) {
    case JobKind::kGemm: return "gemm";
    case JobKind::kSpmv: return "spmv";
    case JobKind::kStencil: return "stencil";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view name(Frontend f) noexcept {
  switch (f) {
    case Frontend::kOpenMP: return "openmp";
    case Frontend::kKokkos: return "kokkos";
    case Frontend::kJulia: return "julia";
    case Frontend::kNumba: return "numba";
    case Frontend::kTiled: return "tiled";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view name(AdmitError e) noexcept {
  switch (e) {
    case AdmitError::kNone: return "accepted";
    case AdmitError::kQueueFull: return "queue-full";
    case AdmitError::kZeroSize: return "zero-size";
    case AdmitError::kTooLarge: return "too-large";
    case AdmitError::kUnsupported: return "unsupported";
    case AdmitError::kShutdown: return "shutdown";
  }
  return "?";
}

/// Size class for bucketing: jobs whose n shares a power-of-two bracket
/// batch into the same launch (items still carry their exact n).
[[nodiscard]] constexpr std::uint32_t size_class(std::uint32_t n) noexcept {
  std::uint32_t cls = 0;
  while ((1u << (cls + 1)) <= n) ++cls;
  return cls;
}

/// Bucket key: jobs with equal keys are batched into one launch.
[[nodiscard]] constexpr std::uint32_t bucket_key(const JobDesc& d) noexcept {
  return (static_cast<std::uint32_t>(d.kind) << 24) |
         (static_cast<std::uint32_t>(d.frontend) << 16) |
         (static_cast<std::uint32_t>(d.precision) << 8) | size_class(d.n);
}

}  // namespace portabench::serve
