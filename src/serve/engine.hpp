// ServeEngine: the high-throughput serving layer.
//
// Millions of small mixed jobs (GEMM / SpMV / stencil, varied n,
// precision, and frontend) stream through sharded bounded admission
// queues; each shard batches its jobs, size-buckets them by
// (kind, frontend, precision, size class), and runs every bucket as one
// launch over the shared LaunchEngine — the tiled-microkernel batched
// GEMM path for the small-GEMM buckets.  All job storage is carved out
// of per-shard reusable arenas: the steady state performs zero
// allocation.  Full architecture in docs/SERVE.md.
//
// Contracts:
//   - Deterministic: every job's result is a pure function of its
//     JobDesc and is bitwise-identical to serve::run_serial(desc).
//   - Backpressure is typed: a full shard queue rejects with
//     AdmitError::kQueueFull (shed + counted), never blocks or aborts.
//   - try_submit() is safe from any number of producer threads.
//     drain() must not race with try_submit (quiesce producers first);
//     completion callbacks fire on flush threads, batch-ordered.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "arena.hpp"
#include "gpusim/device.hpp"
#include "gpusim/stream.hpp"
#include "gpusim/topology.hpp"
#include "job.hpp"
#include "simrt/mpsc_queue.hpp"

namespace portabench::serve {

/// A batch whose launch failed (in production a device fault; in the
/// tests the fail-injection hook).  Thrown from the flush op so it lands
/// in the stream's error stash and surfaces at the next synchronize —
/// the recovery path tests/gpusim/stream_recovery_test.cpp pins.
class batch_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The serving layer is itself a concurrency runtime (sharded admission
/// from arbitrary producer threads, flushes on stream workers), so it
/// legitimately owns locks the way simrt/gpusim do.
using ShardMutex = std::mutex;  // portalint: raw-thread-ok(serve is a runtime layer: shard submit/flush ordering needs a real lock)

/// Flush-batch size when neither the caller nor the tuning cache picks
/// one.  The tunable itself lives in the "serve-batch" registry space.
// portalint: tn-magic-tile-ok(fallback for the serve-batch tuning space; src/tune/params.cpp pins it)
inline constexpr std::size_t kDefaultBatchJobs = 32;

/// Serving's default node shape: one A100-class device in the degenerate
/// configuration (no private engine, no pinning) — batches run through
/// LaunchEngine::shared(), exactly the pre-multi-device serving engine.
[[nodiscard]] inline gpusim::TopologyConfig serve_default_topology() {
  gpusim::TopologyConfig t;
  t.device_spec = gpusim::GpuSpec::a100();
  t.pin_workers = false;
  return t;
}

struct ServeConfig {
  std::size_t shards = 4;
  std::size_t queue_capacity = 1024;  ///< per-shard admission queue bound
  /// Jobs per flush (and the flush trigger).  0 means "resolve at engine
  /// construction": the tuning cache's serve-batch entry for this
  /// machine if present, else kDefaultBatchJobs.
  std::size_t batch_jobs = 0;
  std::uint32_t max_n = 256;          ///< admission bound on problem size
  bool async_streams = true;          ///< flush on stream workers (kAsync)
  /// Completion sink; called on the flushing thread, jobs of a batch
  /// delivered in deterministic (bucket, id) order.  Must be thread-safe
  /// across shards.  May be empty.
  std::function<void(const JobResult&)> on_complete;
  /// Test hook: jobs selected here are marked kFailed instead of run,
  /// and their batch throws batch_error into the stream error stash.
  std::function<bool(const JobDesc&)> fail_injection;
  /// Node shape the shards are dealt across: shard i's stream, arena
  /// batches and tuned tile lookups live on device i % topology.devices.
  /// The default is the degenerate single-device topology (today's
  /// single-engine behavior, bit for bit).
  gpusim::TopologyConfig topology = serve_default_topology();
  /// Cross-shard work stealing: a flushing shard whose own queue drains
  /// below batch_jobs tops its batch up from the other shards' queues,
  /// in pinned victim order (self+1, self+2, ... mod shards).  Results
  /// stay bitwise-identical to run_serial — a job is a pure function of
  /// its JobDesc and every batch is bucket-sorted before running — so
  /// stealing only moves *where* a job runs, never what it computes.
  bool work_steal = false;
};

struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;       ///< flushes that processed >= 1 job
  std::uint64_t batch_errors = 0;  ///< batches that threw batch_error
  std::uint64_t stolen = 0;        ///< jobs flushed by a non-home shard
  std::uint64_t rejected_total = 0;
  /// Sheds/rejects by reason, indexed by AdmitError (kNone slot unused).
  std::array<std::uint64_t, 6> rejected_by{};
  std::size_t arena_high_water = 0;    ///< largest per-shard batch slab
  std::uint64_t arena_grow_events = 0; ///< slab reallocations, all shards
};

class ServeEngine {
 public:
  explicit ServeEngine(ServeConfig config = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Admit one job.  Never blocks, never throws on bad input: the
  /// outcome is the returned AdmitError (kNone = accepted).  Thread-safe.
  AdmitError try_submit(const JobDesc& desc);

  /// Flush every queued job and wait for all in-flight batches.  Caller
  /// must quiesce producers first.  Stashed batch errors are absorbed
  /// into stats().batch_errors; the engine stays usable afterwards.
  void drain();

  /// Stop admission (subsequent try_submit → kShutdown) and drain.
  void shutdown();

  [[nodiscard]] ServeStats stats() const;

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

  /// The device context whose LaunchEngine runs device-0 batches (the
  /// only device in the default topology).
  [[nodiscard]] gpusim::DeviceContext& context() noexcept { return topo_->context(0); }

  /// The node topology the shards are dealt across.
  [[nodiscard]] gpusim::DeviceTopology& topology() noexcept { return *topo_; }

  /// Device that shard `shard` runs on (round-robin over the topology).
  [[nodiscard]] std::size_t device_of(std::size_t shard) const noexcept {
    return shard % topo_->devices();
  }

 private:
  /// One admitted job staged for a flush: its descriptor plus the base
  /// of its carved arena section.
  struct JobSlot {
    JobDesc desc;
    std::byte* base = nullptr;
    bool failed = false;
  };

  struct alignas(kCacheLineBytes) Shard {
    Shard(const ServeConfig& cfg, gpusim::DeviceContext& ctx, std::size_t index,
          std::size_t device);
    ~Shard();

    simrt::BoundedMpscQueue<JobDesc> queue;
    gpusim::DeviceContext* ctx;  ///< the device this shard runs on
    std::size_t index;           ///< shard's own slot (steal-order anchor)
    std::size_t device;          ///< topology device index of `ctx`
    gpusim::Stream stream;
    ShardMutex submit_mutex;  ///< guards stream.enqueue (not thread-safe)
    ShardMutex flush_mutex;   ///< serializes flush bodies (arena + staging)
    std::atomic<std::uint64_t> submitted{0};
    WorkerArena arena;
    // Flush staging, reserved once and reused (zero steady-state alloc).
    std::vector<JobSlot> slots;
    std::vector<std::size_t> exec_idx;
    /// Typed batch-item vectors (one per kernel-library item type),
    /// defined in engine.cpp to keep the kernel headers out of here.
    struct Staging;
    std::unique_ptr<Staging> staging;
  };

  struct FlushOutcome {
    std::size_t popped = 0;
    std::size_t injected = 0;
  };

  void schedule_flush(Shard& shard);
  FlushOutcome flush_shard(Shard& shard, std::size_t max_jobs);
  void order_slots_radix(Shard& shard);
  void run_bucket(Shard& shard, std::size_t lo, std::size_t hi);
  void deliver(Shard& shard);

  ServeConfig config_;
  /// Flush-batch ordering kernel ("serve-batch" space, sort_radix knob):
  /// false = std::sort by (bucket, id), true = two stable LSD radix
  /// passes over the same keys.  Both produce the identical order, so
  /// the knob is pure schedule — tests pin the equivalence.
  bool sort_radix_ = false;
  std::unique_ptr<gpusim::DeviceTopology> topo_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> accepting_{true};

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_errors_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::array<std::atomic<std::uint64_t>, 6> rejected_by_{};
};

}  // namespace portabench::serve
