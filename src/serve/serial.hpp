// Input-fill protocol and the serial oracle.
//
// The serving layer's correctness contract is bitwise: every job
// streamed through ServeEngine must produce exactly the checksum of the
// same job run one-at-a-time through the existing frontend kernels.
// Two things make that checkable:
//
//   1. The fill helpers here are the *single* definition of each job
//      kind's input data as a function of (seed, n) — the engine fills
//      arena slices and the oracle fills owning views through the same
//      code, so any divergence is in the kernels, never the inputs.
//   2. run_serial() executes one job with the plain, pre-existing
//      frontend entry points (gemm_*_style, gemm_tiled,
//      spmv_csr_row_parallel, sweep_serial/mdrange/simd) over a
//      SerialSpace — no serving-layer code in the loop.
//
// The GEMM protocol matches models/cpu_runners.cpp: Xoshiro256(seed),
// A filled before B in storage order, and the Numba FP16 quirk (numpy
// cannot generate random Float16, so matrices of ones).  SpMV mirrors
// spmv::banded_csr's exact rng sequence; the x vector comes from a
// split-off stream so it is independent of the band values.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/kernels_tiled.hpp"
#include "job.hpp"
#include "simrt/parallel.hpp"
#include "spmv/kernels.hpp"
#include "stencil/kernels.hpp"
#include "tune/tuned.hpp"

namespace portabench::serve {

/// Band half-width of every serving-layer SpMV job (the PDE-stencil
/// shape of spmv::banded_csr); nnz per row is at most 2*hb + 1.
inline constexpr std::size_t kSpmvHalfBandwidth = 2;
inline constexpr std::size_t kSpmvMaxNnzPerRow = 2 * kSpmvHalfBandwidth + 1;

/// GEMM inputs for a job: A then B from Xoshiro256(seed) in storage
/// order — the run_cpu_gemm protocol — with the Numba FP16 ones quirk.
template <class T>
void fill_gemm_inputs(Frontend frontend, Precision precision, std::uint64_t seed,
                      std::span<T> a, std::span<T> b) {
  if (frontend == Frontend::kNumba && precision == Precision::kHalfIn) {
    fill_constant(a, T(1.0f));
    fill_constant(b, T(1.0f));
    return;
  }
  Xoshiro256 rng(seed);
  fill_uniform(a, rng);
  fill_uniform(b, rng);
}

/// SpMV inputs for a job: the banded CSR structure and values in exactly
/// spmv::banded_csr(n, kSpmvHalfBandwidth, seed)'s rng order, written
/// into caller storage; x from a split-off stream.  Returns nnz.
template <class T>
std::size_t fill_spmv_inputs(std::uint64_t seed, std::size_t n, std::size_t* row_ptr,
                             std::size_t* col_idx, T* values, std::span<T> x) {
  Xoshiro256 rng(seed);
  std::size_t nnz = 0;
  row_ptr[0] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= kSpmvHalfBandwidth ? i - kSpmvHalfBandwidth : 0;
    const std::size_t hi = std::min(i + kSpmvHalfBandwidth, n - 1);
    for (std::size_t j = lo; j <= hi; ++j) {
      col_idx[nnz] = j;
      values[nnz] = static_cast<T>(rng.uniform());
      ++nnz;
    }
    row_ptr[i + 1] = nnz;
  }
  Xoshiro256 xrng(SplitMix64(seed).next());
  fill_uniform(x, xrng);
  return nnz;
}

/// Stencil input grid for a job (the output grid starts all-zero in both
/// the served and serial paths, so the untouched boundary matches too).
inline void fill_stencil_input(std::uint64_t seed, std::span<double> in) {
  Xoshiro256 rng(seed);
  fill_uniform(in, rng);
}

/// Deterministic output checksum: i-major double sum over any 2-D view
/// (the gemm::checksum convention, layout-independent iteration order).
template <class V>
[[nodiscard]] double view_checksum(const V& v) {
  double sum = 0.0;
  for (std::size_t i = 0; i < v.extent(0); ++i) {
    for (std::size_t j = 0; j < v.extent(1); ++j) sum += static_cast<double>(v(i, j));
  }
  return sum;
}

template <class T>
[[nodiscard]] double span_checksum(std::span<const T> v) {
  double sum = 0.0;
  for (const T& x : v) sum += static_cast<double>(x);
  return sum;
}

namespace serial_detail {

template <class T, class Acc, class Layout>
double gemm_serial_checksum(const JobDesc& d) {
  const std::size_t n = d.n;
  simrt::View2<T, Layout> A(n, n);
  simrt::View2<T, Layout> B(n, n);
  simrt::View2<Acc, Layout> C(n, n);
  fill_gemm_inputs<T>(d.frontend, d.precision, d.seed, std::span<T>(A.data(), n * n),
                      std::span<T>(B.data(), n * n));
  const simrt::SerialSpace space;
  switch (d.frontend) {
    case Frontend::kOpenMP:
      if constexpr (std::is_same_v<Layout, simrt::LayoutRight>) {
        gemm::gemm_openmp_style<Acc>(space, A, B, C);
      }
      break;
    case Frontend::kKokkos:
      gemm::gemm_kokkos_style<Acc>(space, A, B, C);
      break;
    case Frontend::kJulia:
      if constexpr (std::is_same_v<Layout, simrt::LayoutLeft>) {
        gemm::gemm_julia_style<Acc>(space, A, B, C);
      }
      break;
    case Frontend::kNumba:
      if constexpr (std::is_same_v<Layout, simrt::LayoutRight>) {
        gemm::gemm_numba_style<Acc>(space, A, B, C);
      }
      break;
    case Frontend::kTiled:
      // Same per-bucket tuned schedule the engine resolves — tuned
      // knobs are order-free, but using one source keeps the oracle
      // honest even if that contract ever loosens.
      gemm::gemm_tiled<Acc>(space, A, B, C,
                            tune::Tuned::instance().gemm_tile(
                                d.precision, size_class(d.n)));
      break;
  }
  return view_checksum(C);
}

template <class T>
double spmv_serial_checksum(const JobDesc& d) {
  const std::size_t n = d.n;
  spmv::CsrMatrix<T> A;
  A.rows = n;
  A.cols = n;
  A.row_ptr.resize(n + 1);
  A.col_idx.resize(n * kSpmvMaxNnzPerRow);
  A.values.resize(n * kSpmvMaxNnzPerRow);
  std::vector<T> x(n);
  std::vector<T> y(n);
  const std::size_t nnz = fill_spmv_inputs<T>(d.seed, n, A.row_ptr.data(),
                                              A.col_idx.data(), A.values.data(),
                                              std::span<T>(x));
  A.col_idx.resize(nnz);
  A.values.resize(nnz);
  spmv::spmv_csr_row_parallel<T>(simrt::SerialSpace{}, A, std::span<const T>(x),
                                 std::span<T>(y));
  return span_checksum(std::span<const T>(y));
}

inline double stencil_serial_checksum(const JobDesc& d) {
  const std::size_t n = d.n;
  if (n < 3) return 0.0;  // no interior: out stays all-zero in every frontend
  simrt::View2<double, simrt::LayoutRight> in(n, n);
  simrt::View2<double, simrt::LayoutRight> out(n, n);
  fill_stencil_input(d.seed, std::span<double>(in.data(), n * n));
  const simrt::SerialSpace space;
  switch (d.frontend) {
    case Frontend::kOpenMP:
      stencil::sweep_serial(in, out);
      break;
    case Frontend::kKokkos:
      stencil::sweep_mdrange(space, in, out);
      break;
    default:
      stencil::sweep_simd(space, in, out);
      break;
  }
  return span_checksum(std::span<const double>(out.data(), n * n));
}

}  // namespace serial_detail

/// Run one job serially through the pre-existing frontend kernels and
/// return its result — the oracle the served checksums must match bit
/// for bit, and the baseline the throughput bench measures against.
/// Requires supported(kind, frontend, precision) and n > 0.
[[nodiscard]] inline JobResult run_serial(const JobDesc& d) {
  JobResult r;
  r.id = d.id;
  switch (d.kind) {
    case JobKind::kGemm:
      switch (d.precision) {
        case Precision::kDouble:
          r.checksum = d.frontend == Frontend::kJulia
                           ? serial_detail::gemm_serial_checksum<double, double,
                                                                 simrt::LayoutLeft>(d)
                           : serial_detail::gemm_serial_checksum<double, double,
                                                                 simrt::LayoutRight>(d);
          break;
        case Precision::kSingle:
          r.checksum = d.frontend == Frontend::kJulia
                           ? serial_detail::gemm_serial_checksum<float, float,
                                                                 simrt::LayoutLeft>(d)
                           : serial_detail::gemm_serial_checksum<float, float,
                                                                 simrt::LayoutRight>(d);
          break;
        case Precision::kHalfIn:
          r.checksum = d.frontend == Frontend::kJulia
                           ? serial_detail::gemm_serial_checksum<half, float,
                                                                 simrt::LayoutLeft>(d)
                           : serial_detail::gemm_serial_checksum<half, float,
                                                                 simrt::LayoutRight>(d);
          break;
      }
      break;
    case JobKind::kSpmv:
      r.checksum = d.precision == Precision::kSingle
                       ? serial_detail::spmv_serial_checksum<float>(d)
                       : serial_detail::spmv_serial_checksum<double>(d);
      break;
    case JobKind::kStencil:
      r.checksum = serial_detail::stencil_serial_checksum(d);
      break;
  }
  return r;
}

}  // namespace portabench::serve
