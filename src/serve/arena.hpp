// Per-shard batch arena.
//
// Each flush carves all of its jobs' inputs and outputs out of one
// contiguous, cache-line-aligned slab owned by the shard.  The slab
// grows geometrically until it covers the largest batch the shard ever
// sees, then every later flush reuses it — the zero-steady-state-
// allocation contract the soak tier pins (grow_events() must go flat
// after warmup).
//
// Not thread-safe: a shard's arena is only touched under its flush
// mutex.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>

#include "common/buffer.hpp"

namespace portabench::serve {

class WorkerArena {
 public:
  /// A zero-filled span of `bytes` bytes, 64-byte aligned, valid until
  /// the next acquire().  Grows the slab if needed (counted).
  [[nodiscard]] std::span<std::byte> acquire(std::size_t bytes) {
    if (bytes > slab_.size()) {
      std::size_t cap = std::max<std::size_t>(slab_.size() * 2, kCacheLineBytes);
      while (cap < bytes) cap *= 2;
      slab_ = AlignedBuffer<std::byte>(cap);
      ++grow_events_;
    }
    high_water_ = std::max(high_water_, bytes);
    std::memset(slab_.data(), 0, bytes);
    return {slab_.data(), bytes};
  }

  /// Largest single acquire() so far.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

  /// Number of slab (re)allocations.  Flat after warmup = zero
  /// steady-state allocation.
  [[nodiscard]] std::size_t grow_events() const noexcept { return grow_events_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return slab_.size(); }

 private:
  AlignedBuffer<std::byte> slab_;
  std::size_t high_water_ = 0;
  std::size_t grow_events_ = 0;
};

/// Round `bytes` up to a cache-line multiple: every per-job section of a
/// batch slab starts 64-byte aligned, like AlignedBuffer storage, so the
/// kernels see the same alignment either way.
[[nodiscard]] constexpr std::size_t align_up(std::size_t bytes) noexcept {
  return (bytes + kCacheLineBytes - 1) & ~(kCacheLineBytes - 1);
}

}  // namespace portabench::serve
