// ServeEngine implementation: admission, flush batching, bucket
// execution, and deterministic delivery.  See engine.hpp and
// docs/SERVE.md for the architecture.
#include "engine.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "common/error.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/kernels_tiled.hpp"
#include "gpusim/batch.hpp"
#include "primitives/sort.hpp"
#include "serial.hpp"
#include "simrt/mdarray.hpp"
#include "spmv/kernels.hpp"
#include "stencil/kernels.hpp"
#include "tune/tuned.hpp"

namespace portabench::serve {

namespace {

using simrt::LayoutLeft;
using simrt::LayoutRight;
using simrt::RawView2;

/// Arena bytes one job's carved section occupies (inputs + outputs,
/// every sub-section cache-line aligned).
[[nodiscard]] std::size_t job_bytes(const JobDesc& d) {
  const std::size_t n = d.n;
  switch (d.kind) {
    case JobKind::kGemm:
      return 2 * align_up(n * n * input_bytes(d.precision)) +
             align_up(n * n * output_bytes(d.precision));
    case JobKind::kSpmv: {
      const std::size_t cap = n * kSpmvMaxNnzPerRow;
      return align_up((n + 1) * sizeof(std::size_t)) +
             align_up(cap * sizeof(std::size_t)) +
             align_up(cap * input_bytes(d.precision)) +
             2 * align_up(n * input_bytes(d.precision));
    }
    case JobKind::kStencil:
      return 2 * align_up(n * n * sizeof(double));
  }
  return 0;
}

// Section carving: fill, execution, and checksum all derive a job's
// pointers from (base, n) through these, so the layout has one
// definition.

template <class T, class Acc>
struct GemmCarve {
  T* a;
  T* b;
  Acc* c;
};

template <class T, class Acc>
[[nodiscard]] GemmCarve<T, Acc> carve_gemm(std::byte* base, std::size_t n) {
  GemmCarve<T, Acc> cv;
  cv.a = reinterpret_cast<T*>(base);
  base += align_up(n * n * sizeof(T));
  cv.b = reinterpret_cast<T*>(base);
  base += align_up(n * n * sizeof(T));
  cv.c = reinterpret_cast<Acc*>(base);
  return cv;
}

template <class T>
struct SpmvCarve {
  std::size_t* row_ptr;
  std::size_t* col_idx;
  T* values;
  T* x;
  T* y;
};

template <class T>
[[nodiscard]] SpmvCarve<T> carve_spmv(std::byte* base, std::size_t n) {
  const std::size_t cap = n * kSpmvMaxNnzPerRow;
  SpmvCarve<T> cv;
  cv.row_ptr = reinterpret_cast<std::size_t*>(base);
  base += align_up((n + 1) * sizeof(std::size_t));
  cv.col_idx = reinterpret_cast<std::size_t*>(base);
  base += align_up(cap * sizeof(std::size_t));
  cv.values = reinterpret_cast<T*>(base);
  base += align_up(cap * sizeof(T));
  cv.x = reinterpret_cast<T*>(base);
  base += align_up(n * sizeof(T));
  cv.y = reinterpret_cast<T*>(base);
  return cv;
}

struct StencilCarve {
  double* in;
  double* out;
};

[[nodiscard]] StencilCarve carve_stencil(std::byte* base, std::size_t n) {
  StencilCarve cv;
  cv.in = reinterpret_cast<double*>(base);
  cv.out = reinterpret_cast<double*>(base + align_up(n * n * sizeof(double)));
  return cv;
}

void fill_job(const JobDesc& d, std::byte* base) {
  const std::size_t n = d.n;
  switch (d.kind) {
    case JobKind::kGemm:
      switch (d.precision) {
        case Precision::kDouble: {
          const auto cv = carve_gemm<double, double>(base, n);
          fill_gemm_inputs<double>(d.frontend, d.precision, d.seed, {cv.a, n * n},
                                   {cv.b, n * n});
          break;
        }
        case Precision::kSingle: {
          const auto cv = carve_gemm<float, float>(base, n);
          fill_gemm_inputs<float>(d.frontend, d.precision, d.seed, {cv.a, n * n},
                                  {cv.b, n * n});
          break;
        }
        case Precision::kHalfIn: {
          const auto cv = carve_gemm<half, float>(base, n);
          fill_gemm_inputs<half>(d.frontend, d.precision, d.seed, {cv.a, n * n},
                                 {cv.b, n * n});
          break;
        }
      }
      break;
    case JobKind::kSpmv:
      if (d.precision == Precision::kSingle) {
        const auto cv = carve_spmv<float>(base, n);
        fill_spmv_inputs<float>(d.seed, n, cv.row_ptr, cv.col_idx, cv.values, {cv.x, n});
      } else {
        const auto cv = carve_spmv<double>(base, n);
        fill_spmv_inputs<double>(d.seed, n, cv.row_ptr, cv.col_idx, cv.values, {cv.x, n});
      }
      break;
    case JobKind::kStencil: {
      const auto cv = carve_stencil(base, n);
      fill_stencil_input(d.seed, {cv.in, n * n});
      break;
    }
  }
}

/// One non-tiled GEMM job through its frontend kernel over raw views —
/// the same kernel instantiation run_serial uses, minus the allocation.
template <class T, class Acc>
void exec_gemm_item(const JobDesc& d, std::byte* base) {
  const std::size_t n = d.n;
  const auto cv = carve_gemm<T, Acc>(base, n);
  const simrt::SerialSpace space;
  if (d.frontend == Frontend::kJulia) {
    const RawView2<const T, LayoutLeft> A(cv.a, n, n);
    const RawView2<const T, LayoutLeft> B(cv.b, n, n);
    RawView2<Acc, LayoutLeft> C(cv.c, n, n);
    gemm::gemm_julia_style<Acc>(space, A, B, C);
    return;
  }
  const RawView2<const T, LayoutRight> A(cv.a, n, n);
  const RawView2<const T, LayoutRight> B(cv.b, n, n);
  RawView2<Acc, LayoutRight> C(cv.c, n, n);
  switch (d.frontend) {
    case Frontend::kOpenMP:
      gemm::gemm_openmp_style<Acc>(space, A, B, C);
      break;
    case Frontend::kKokkos:
      gemm::gemm_kokkos_style<Acc>(space, A, B, C);
      break;
    case Frontend::kNumba:
      gemm::gemm_numba_style<Acc>(space, A, B, C);
      break;
    default:
      break;  // kTiled goes through gemm_tiled_batched, kJulia above
  }
}

void exec_gemm_frontend(const JobDesc& d, std::byte* base) {
  switch (d.precision) {
    case Precision::kDouble:
      exec_gemm_item<double, double>(d, base);
      break;
    case Precision::kSingle:
      exec_gemm_item<float, float>(d, base);
      break;
    case Precision::kHalfIn:
      exec_gemm_item<half, float>(d, base);
      break;
  }
}

template <class T, class Acc, class Layout>
[[nodiscard]] double gemm_slot_checksum(const JobDesc& d, std::byte* base) {
  const auto cv = carve_gemm<T, Acc>(base, d.n);
  const RawView2<const Acc, Layout> C(cv.c, d.n, d.n);
  return view_checksum(C);
}

[[nodiscard]] double checksum_job(const JobDesc& d, std::byte* base) {
  const std::size_t n = d.n;
  switch (d.kind) {
    case JobKind::kGemm: {
      const bool left = d.frontend == Frontend::kJulia;
      switch (d.precision) {
        case Precision::kDouble:
          return left ? gemm_slot_checksum<double, double, LayoutLeft>(d, base)
                      : gemm_slot_checksum<double, double, LayoutRight>(d, base);
        case Precision::kSingle:
          return left ? gemm_slot_checksum<float, float, LayoutLeft>(d, base)
                      : gemm_slot_checksum<float, float, LayoutRight>(d, base);
        case Precision::kHalfIn:
          return left ? gemm_slot_checksum<half, float, LayoutLeft>(d, base)
                      : gemm_slot_checksum<half, float, LayoutRight>(d, base);
      }
      return 0.0;
    }
    case JobKind::kSpmv:
      if (d.precision == Precision::kSingle) {
        const auto cv = carve_spmv<float>(base, n);
        return span_checksum(std::span<const float>(cv.y, n));
      } else {
        const auto cv = carve_spmv<double>(base, n);
        return span_checksum(std::span<const double>(cv.y, n));
      }
    case JobKind::kStencil: {
      const auto cv = carve_stencil(base, n);
      return span_checksum(std::span<const double>(cv.out, n * n));
    }
  }
  return 0.0;
}

}  // namespace

struct ServeEngine::Shard::Staging {
  std::vector<gemm::GemmBatchItem<double, double>> gemm_f64;
  std::vector<gemm::GemmBatchItem<float, float>> gemm_f32;
  std::vector<gemm::GemmBatchItem<half, float>> gemm_f16;
  std::vector<spmv::SpmvBatchItem<double>> spmv_f64;
  std::vector<spmv::SpmvBatchItem<float>> spmv_f32;
  std::vector<stencil::StencilBatchItem> sten;

  // Radix flush-ordering scratch (sort_radix path): permutation keys and
  // ping-pong buffers, grown once to the batch size and reused so the
  // steady state stays allocation-free like the rest of the staging.
  std::vector<std::uint64_t> order_ids;
  std::vector<std::uint32_t> order_buckets;
  std::vector<std::uint32_t> order_perm;
  std::vector<JobSlot> order_slots;
  primitives::HostRadixScratch<std::uint64_t, std::uint32_t> order_scratch64;
  primitives::HostRadixScratch<std::uint32_t, std::uint32_t> order_scratch32;

  explicit Staging(std::size_t batch_jobs) {
    gemm_f64.reserve(batch_jobs);
    gemm_f32.reserve(batch_jobs);
    gemm_f16.reserve(batch_jobs);
    spmv_f64.reserve(batch_jobs);
    spmv_f32.reserve(batch_jobs);
    sten.reserve(batch_jobs);
    order_ids.reserve(batch_jobs);
    order_buckets.reserve(batch_jobs);
    order_perm.reserve(batch_jobs);
    order_slots.reserve(batch_jobs);
  }
};

namespace {

/// Stage one tiled-GEMM bucket's items and run them as a single batched
/// microkernel launch.
template <class T, class Acc>
void run_tiled_bucket(gpusim::LaunchEngine& engine,
                      std::vector<gemm::GemmBatchItem<T, Acc>>& items,
                      std::span<const JobDesc> descs, std::span<std::byte* const> bases,
                      const gemm::TileConfig& tile) {
  items.clear();
  for (std::size_t k = 0; k < descs.size(); ++k) {
    const std::size_t n = descs[k].n;
    const auto cv = carve_gemm<T, Acc>(bases[k], n);
    items.push_back({cv.a, cv.b, cv.c, n});
  }
  gemm::gemm_tiled_batched(engine, std::span<const gemm::GemmBatchItem<T, Acc>>(items),
                           tile);
}

template <class T>
void run_spmv_bucket(gpusim::LaunchEngine& engine,
                     std::vector<spmv::SpmvBatchItem<T>>& items,
                     std::span<const JobDesc> descs, std::span<std::byte* const> bases) {
  items.clear();
  for (std::size_t k = 0; k < descs.size(); ++k) {
    const std::size_t n = descs[k].n;
    const auto cv = carve_spmv<T>(bases[k], n);
    items.push_back({cv.row_ptr, cv.col_idx, cv.values, cv.x, cv.y, n});
  }
  spmv::spmv_csr_batched(engine, std::span<const spmv::SpmvBatchItem<T>>(items));
}

}  // namespace

ServeEngine::Shard::Shard(const ServeConfig& cfg, gpusim::DeviceContext& shard_ctx,
                          std::size_t shard_index, std::size_t shard_device)
    : queue(cfg.queue_capacity),
      ctx(&shard_ctx),
      index(shard_index),
      device(shard_device),
      stream(shard_ctx, cfg.async_streams ? gpusim::StreamMode::kAsync
                                          : gpusim::StreamMode::kEager),
      staging(std::make_unique<Staging>(cfg.batch_jobs)) {
  slots.reserve(cfg.batch_jobs);
  exec_idx.reserve(cfg.batch_jobs);
}

ServeEngine::Shard::~Shard() = default;

ServeEngine::ServeEngine(ServeConfig config) : config_(std::move(config)) {
  if (config_.batch_jobs == 0) {
    config_.batch_jobs = tune::Tuned::instance().serve_batch_jobs(kDefaultBatchJobs);
  }
  sort_radix_ = tune::Tuned::instance().serve_sort_radix(false);
  PB_EXPECTS(config_.shards > 0);
  PB_EXPECTS(config_.queue_capacity > 0);
  PB_EXPECTS(config_.batch_jobs > 0);
  PB_EXPECTS(config_.max_n > 0);
  topo_ = std::make_unique<gpusim::DeviceTopology>(config_.topology);
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    const std::size_t device = i % topo_->devices();
    shards_.push_back(
        std::make_unique<Shard>(config_, topo_->context(device), i, device));
  }
}

ServeEngine::~ServeEngine() { shutdown(); }

AdmitError ServeEngine::try_submit(const JobDesc& desc) {
  AdmitError err = AdmitError::kNone;
  if (!accepting_.load(std::memory_order_acquire)) {
    err = AdmitError::kShutdown;
  } else if (desc.n == 0) {
    err = AdmitError::kZeroSize;
  } else if (desc.n > config_.max_n) {
    err = AdmitError::kTooLarge;
  } else if (!supported(desc.kind, desc.frontend, desc.precision)) {
    err = AdmitError::kUnsupported;
  }
  if (err != AdmitError::kNone) {
    rejected_by_[static_cast<std::size_t>(err)].fetch_add(1, std::memory_order_relaxed);
    return err;
  }

  Shard& shard = *shards_[desc.id % shards_.size()];
  if (!shard.queue.try_push(desc)) {
    rejected_by_[static_cast<std::size_t>(AdmitError::kQueueFull)].fetch_add(
        1, std::memory_order_relaxed);
    return AdmitError::kQueueFull;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t nth = shard.submitted.fetch_add(1, std::memory_order_relaxed) + 1;
  if (nth % config_.batch_jobs == 0) schedule_flush(shard);
  return AdmitError::kNone;
}

void ServeEngine::schedule_flush(Shard& shard) {
  std::lock_guard<ShardMutex> lock(shard.submit_mutex);
  try {
    shard.stream.enqueue(0.0, [this, &shard] {
      const FlushOutcome out = flush_shard(shard, config_.batch_jobs);
      if (out.injected != 0) {
        batch_errors_.fetch_add(1, std::memory_order_relaxed);
        throw batch_error("serve: injected batch failure");
      }
    });
  } catch (const batch_error&) {
    // Eager streams run the op inline, so there is no error stash: the
    // batch error surfaces here and stops with us (already counted) —
    // a submitter never sees its accept turned into a throw.
  }
}

ServeEngine::FlushOutcome ServeEngine::flush_shard(Shard& shard, std::size_t max_jobs) {
  std::lock_guard<ShardMutex> lock(shard.flush_mutex);
  std::vector<JobSlot>& slots = shard.slots;
  slots.clear();
  JobDesc d;
  while (slots.size() < max_jobs && shard.queue.try_pop(d)) {
    slots.push_back(JobSlot{d, nullptr, false});
  }
  if (config_.work_steal && slots.size() < max_jobs && shards_.size() > 1) {
    // Top the batch up from the other shards' queues when this shard's
    // bucket mix ran dry.  The victim order is pinned — self+1, self+2,
    // ... mod shards — so a replayed trace steals identically; the MPMC
    // pop side makes concurrent steals against a victim's own flush
    // safe.  A stolen job still runs bucket-sorted with bitwise
    // run_serial results; only its executing shard moved.
    std::uint64_t grabbed = 0;
    for (std::size_t off = 1; off < shards_.size() && slots.size() < max_jobs; ++off) {
      Shard& victim = *shards_[(shard.index + off) % shards_.size()];
      while (slots.size() < max_jobs && victim.queue.try_pop(d)) {
        slots.push_back(JobSlot{d, nullptr, false});
        ++grabbed;
      }
    }
    if (grabbed != 0) stolen_.fetch_add(grabbed, std::memory_order_relaxed);
  }
  FlushOutcome out;
  out.popped = slots.size();
  if (slots.empty()) return out;

  // Deterministic batch order: buckets (kind, frontend, precision, size
  // class), ids within a bucket.  Everything downstream — arena layout,
  // launches, delivery — follows this order, so a replayed trace gives a
  // byte-identical run.
  if (sort_radix_) {
    order_slots_radix(shard);
  } else {
    std::sort(slots.begin(), slots.end(), [](const JobSlot& a, const JobSlot& b) {
      const std::uint32_t ka = bucket_key(a.desc);
      const std::uint32_t kb = bucket_key(b.desc);
      return ka != kb ? ka < kb : a.desc.id < b.desc.id;
    });
  }

  std::size_t total = 0;
  for (const JobSlot& slot : slots) total += job_bytes(slot.desc);
  const std::span<std::byte> slab = shard.arena.acquire(total);
  std::byte* cursor = slab.data();
  for (JobSlot& slot : slots) {
    slot.base = cursor;
    cursor += job_bytes(slot.desc);
  }

  if (config_.fail_injection) {
    for (JobSlot& slot : slots) {
      if (config_.fail_injection(slot.desc)) {
        slot.failed = true;
        ++out.injected;
      }
    }
  }

  // Phase A: fill all job inputs — independent per job, one batch.
  {
    std::size_t fill_threads = 0;
    for (const JobSlot& slot : slots) {
      if (!slot.failed) fill_threads += std::size_t{slot.desc.n} * slot.desc.n;
    }
    const std::span<const JobSlot> sl(slots);
    gpusim::run_batch(shard.ctx->engine(), slots.size(), fill_threads,
                      [sl](std::size_t, std::size_t idx) {
                        const JobSlot& slot = sl[idx];
                        if (!slot.failed) fill_job(slot.desc, slot.base);
                      });
  }

  // Phase B: each bucket is one batched launch.
  std::size_t lo = 0;
  while (lo < slots.size()) {
    std::size_t hi = lo + 1;
    while (hi < slots.size() &&
           bucket_key(slots[hi].desc) == bucket_key(slots[lo].desc)) {
      ++hi;
    }
    run_bucket(shard, lo, hi);
    lo = hi;
  }

  // Phase C: checksums + delivery in batch order.
  deliver(shard);
  batches_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

/// Radix flush ordering: the same (bucket, id) order std::sort produces,
/// via two stable LSD passes over an index permutation — first by id,
/// then by bucket key; stability composes the keys lexicographically.
/// Runs O(n) passes instead of O(n log n) comparisons and permutes the
/// fat JobSlots exactly once at the end.
void ServeEngine::order_slots_radix(Shard& shard) {
  Shard::Staging& st = *shard.staging;
  std::vector<JobSlot>& slots = shard.slots;
  const std::size_t n = slots.size();
  if (n <= 1) return;

  st.order_ids.resize(n);
  st.order_buckets.resize(n);
  st.order_perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    st.order_ids[i] = slots[i].desc.id;
    st.order_perm[i] = static_cast<std::uint32_t>(i);
  }
  primitives::host_radix_sort_pairs(std::span<std::uint64_t>(st.order_ids),
                                    std::span<std::uint32_t>(st.order_perm),
                                    st.order_scratch64);
  for (std::size_t i = 0; i < n; ++i) {
    st.order_buckets[i] = bucket_key(slots[st.order_perm[i]].desc);
  }
  primitives::host_radix_sort_pairs(std::span<std::uint32_t>(st.order_buckets),
                                    std::span<std::uint32_t>(st.order_perm),
                                    st.order_scratch32);

  st.order_slots.resize(n);
  for (std::size_t i = 0; i < n; ++i) st.order_slots[i] = slots[st.order_perm[i]];
  slots.swap(st.order_slots);
}

void ServeEngine::run_bucket(Shard& shard, std::size_t lo, std::size_t hi) {
  std::vector<std::size_t>& idx = shard.exec_idx;
  idx.clear();
  for (std::size_t i = lo; i < hi; ++i) {
    if (!shard.slots[i].failed) idx.push_back(i);
  }
  if (idx.empty()) return;

  // A bucket is homogeneous in (kind, frontend, precision) by key
  // construction; stage its descs/bases densely for the batched calls.
  const JobDesc& proto = shard.slots[idx.front()].desc;
  gpusim::LaunchEngine& engine = shard.ctx->engine();
  Shard::Staging& st = *shard.staging;

  // Tally the bucket on its device so per-GCD counters mirror where the
  // serving work actually ran (one launch per bucket, a block per job).
  shard.ctx->note_launch(gpusim::Dim3{idx.size(), 1, 1}, gpusim::Dim3{1, 1, 1});

  // Dense desc/base arrays for the item stagers, reusing exec storage:
  // sized <= batch_jobs, so no allocation past warmup.
  static thread_local std::vector<JobDesc> descs;
  static thread_local std::vector<std::byte*> bases;
  descs.clear();
  bases.clear();
  for (std::size_t i : idx) {
    descs.push_back(shard.slots[i].desc);
    bases.push_back(shard.slots[i].base);
  }

  switch (proto.kind) {
    case JobKind::kGemm:
      if (proto.frontend == Frontend::kTiled) {
        // A bucket is homogeneous in (precision, size_class), so one
        // tuned schedule applies to every job in it.  Tuned configs
        // only move schedule knobs (row grain, SIMD tier), so the
        // bitwise run_serial contract is unaffected.  The per-GCD space
        // resolves the shard's device, falling back to the single-
        // device winner when untuned.
        const gemm::TileConfig& tile = tune::Tuned::instance().gemm_tile_device(
            shard.device, proto.precision, size_class(proto.n));
        switch (proto.precision) {
          case Precision::kDouble:
            run_tiled_bucket(engine, st.gemm_f64, descs, bases, tile);
            break;
          case Precision::kSingle:
            run_tiled_bucket(engine, st.gemm_f32, descs, bases, tile);
            break;
          case Precision::kHalfIn:
            run_tiled_bucket(engine, st.gemm_f16, descs, bases, tile);
            break;
        }
      } else {
        std::size_t threads = 0;
        for (const JobDesc& jd : descs) threads += std::size_t{jd.n} * jd.n;
        const std::span<const JobDesc> ds(descs);
        const std::span<std::byte* const> bs(bases);
        gpusim::run_batch(engine, ds.size(), threads,
                          [ds, bs](std::size_t, std::size_t k) {
                            exec_gemm_frontend(ds[k], bs[k]);
                          });
      }
      break;
    case JobKind::kSpmv:
      if (proto.precision == Precision::kSingle) {
        run_spmv_bucket(engine, st.spmv_f32, descs, bases);
      } else {
        run_spmv_bucket(engine, st.spmv_f64, descs, bases);
      }
      break;
    case JobKind::kStencil: {
      st.sten.clear();
      for (std::size_t k = 0; k < descs.size(); ++k) {
        const auto cv = carve_stencil(bases[k], descs[k].n);
        st.sten.push_back({cv.in, cv.out, descs[k].n});
      }
      stencil::sweep_batched(engine,
                             std::span<const stencil::StencilBatchItem>(st.sten));
      break;
    }
  }
}

void ServeEngine::deliver(Shard& shard) {
  for (const JobSlot& slot : shard.slots) {
    JobResult r;
    r.id = slot.desc.id;
    if (slot.failed) {
      r.status = JobStatus::kFailed;
      failed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      r.checksum = checksum_job(slot.desc, slot.base);
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (config_.on_complete) config_.on_complete(r);
  }
}

void ServeEngine::drain() {
  for (auto& sp : shards_) {
    Shard& shard = *sp;
    // Wait out scheduled flushes; a stashed batch_error was counted at
    // its throw site, so absorbing it here is not a lost error.
    try {
      shard.stream.synchronize();
    } catch (const batch_error&) {
    }
    for (;;) {
      const FlushOutcome out = flush_shard(shard, config_.batch_jobs);
      if (out.injected != 0) batch_errors_.fetch_add(1, std::memory_order_relaxed);
      if (out.popped == 0) break;
    }
  }
}

void ServeEngine::shutdown() {
  accepting_.store(false, std::memory_order_release);
  drain();
}

ServeStats ServeEngine::stats() const {
  ServeStats st;
  st.accepted = accepted_.load(std::memory_order_relaxed);
  st.completed = completed_.load(std::memory_order_relaxed);
  st.failed = failed_.load(std::memory_order_relaxed);
  st.batches = batches_.load(std::memory_order_relaxed);
  st.batch_errors = batch_errors_.load(std::memory_order_relaxed);
  st.stolen = stolen_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < st.rejected_by.size(); ++i) {
    st.rejected_by[i] = rejected_by_[i].load(std::memory_order_relaxed);
    st.rejected_total += st.rejected_by[i];
  }
  for (const auto& sp : shards_) {
    Shard& shard = *sp;
    std::lock_guard<ShardMutex> lock(shard.flush_mutex);
    st.arena_high_water = std::max(st.arena_high_water, shard.arena.high_water());
    st.arena_grow_events += shard.arena.grow_events();
  }
  return st;
}

}  // namespace portabench::serve
