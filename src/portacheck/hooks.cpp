#include "hooks.hpp"

#include <cstdlib>
#include <string>

namespace portabench::portacheck {

namespace detail {

thread_local std::uint64_t tls_lane = 0;

namespace {

void init_from_env(Globals& g) noexcept {
  if (const char* v = std::getenv("PORTABENCH_CHECK")) {
    const std::string s(v);
    g.enabled.store(!s.empty() && s != "0" && s != "off", std::memory_order_relaxed);
  }
  if (const char* v = std::getenv("PORTABENCH_CHECK_SEED")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end != v) g.seed.store(parsed, std::memory_order_relaxed);
  }
}

}  // namespace

Globals& globals() noexcept {
  // Meyers singleton: env is read once, on first use, so tests can
  // override programmatically afterwards.
  static Globals g;
  static const bool initialized = (init_from_env(g), true);
  (void)initialized;
  return g;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::globals().enabled.store(on, std::memory_order_relaxed);
}

void set_seed(std::uint64_t seed) noexcept {
  detail::globals().seed.store(seed, std::memory_order_relaxed);
}

ScopedCheck::ScopedCheck(std::uint64_t seed) noexcept
    : prev_enabled_(active()), prev_seed_(order_seed()) {
  set_enabled(true);
  set_seed(seed);
}

ScopedCheck::~ScopedCheck() {
  set_enabled(prev_enabled_);
  set_seed(prev_seed_);
}

namespace {

/// splitmix64: tiny, seedable, no dependency on common/rng so the hook
/// layer stays leaf-level.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::vector<std::size_t> permutation(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (seed == 0) return order;
  std::uint64_t state = seed;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(splitmix64(state) % i);
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

}  // namespace portabench::portacheck
