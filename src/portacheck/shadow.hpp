// Per-cell shadow access logs and the structured errors they raise.
//
// A ShadowLog mirrors one array (rank 1-3) with two atomic words per
// cell: the last writer and the last reader, each tagged with the region
// epoch and lane that performed the access.  Two accesses to one cell
// conflict when they share the current epoch, come from different lanes,
// and at least one is a write — the classic happens-before-free
// definition specialized to the fork-join regions simrt/gpusim execute
// (lanes of one region are unordered; region boundaries and cooperative
// barriers order everything, which is why begin_region() retires the
// whole log at once instead of clearing it).
//
// Detection is exact for write-write conflicts and best-effort for
// read-write (only the most recent reader of a cell is remembered), and
// crucially it is *schedule-independent*: a logically racy kernel is
// flagged even when the host interleaving happened to serialize the
// conflicting accesses — e.g. under gpusim's serial SIMT execution.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "hooks.hpp"

namespace portabench::portacheck {

/// Base of all sanitizer findings: names the array and the cell.
class check_error : public std::runtime_error {
 public:
  check_error(std::string array, std::array<std::size_t, 3> indices, std::size_t rank,
              const std::string& what)
      : std::runtime_error(what), array_(std::move(array)), indices_(indices), rank_(rank) {}

  [[nodiscard]] const std::string& array() const noexcept { return array_; }
  [[nodiscard]] const std::array<std::size_t, 3>& indices() const noexcept { return indices_; }
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }

 private:
  std::string array_;
  std::array<std::size_t, 3> indices_;
  std::size_t rank_;
};

/// Conflicting access to one cell by two lanes within one region.
class race_error : public check_error {
 public:
  enum class Kind { kWriteWrite, kReadWrite };

  race_error(std::string array, std::array<std::size_t, 3> indices, std::size_t rank,
             Kind kind, std::uint64_t lane_a, std::uint64_t lane_b, const std::string& what)
      : check_error(std::move(array), indices, rank, what),
        kind_(kind), lane_a_(lane_a), lane_b_(lane_b) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] std::uint64_t lane_a() const noexcept { return lane_a_; }
  [[nodiscard]] std::uint64_t lane_b() const noexcept { return lane_b_; }

 private:
  Kind kind_;
  std::uint64_t lane_a_;
  std::uint64_t lane_b_;
};

/// Access outside the view's extents — the violation `@inbounds` hides.
class bounds_error : public check_error {
 public:
  bounds_error(std::string array, std::array<std::size_t, 3> indices, std::size_t rank,
               std::array<std::size_t, 3> extents, const std::string& what)
      : check_error(std::move(array), indices, rank, what), extents_(extents) {}

  [[nodiscard]] const std::array<std::size_t, 3>& extents() const noexcept { return extents_; }

 private:
  std::array<std::size_t, 3> extents_;
};

/// Shadow state for one array.  Thread-safe; shared by all aliasing
/// shadow views of the array.
class ShadowLog {
 public:
  ShadowLog(std::string name, std::array<std::size_t, 3> extents, std::size_t rank);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] const std::array<std::size_t, 3>& extents() const noexcept { return extents_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return accesses_.load(std::memory_order_relaxed);
  }

  /// Validate logical indices against the extents; throws bounds_error.
  void check_bounds(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0) const;

  /// Record accesses (indices already bounds-checked).  Throw race_error
  /// on a conflict with a prior access in the current region epoch.
  void record_read(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0);
  void record_write(std::size_t i0, std::size_t i1 = 0, std::size_t i2 = 0);

 private:
  struct Cell {
    std::atomic<std::uint64_t> write{0};
    std::atomic<std::uint64_t> read{0};
  };

  // Token layout: epoch << 24 | (lane + 1).  0 means "never accessed".
  static constexpr std::uint64_t kLaneBits = 24;
  static constexpr std::uint64_t kLaneMask = (1ull << kLaneBits) - 1;

  [[nodiscard]] static std::uint64_t pack(std::uint64_t epoch, std::uint64_t lane) noexcept {
    return (epoch << kLaneBits) | ((lane % (kLaneMask - 1)) + 1);
  }
  [[nodiscard]] static std::uint64_t epoch_of(std::uint64_t token) noexcept {
    return token >> kLaneBits;
  }
  [[nodiscard]] static std::uint64_t lane_of(std::uint64_t token) noexcept {
    return (token & kLaneMask) - 1;
  }

  [[nodiscard]] Cell& cell(std::size_t i0, std::size_t i1, std::size_t i2) const noexcept {
    return cells_[(i0 * extents_[1] + i1) * extents_[2] + i2];
  }

  [[noreturn]] void raise_race(race_error::Kind kind, std::array<std::size_t, 3> idx,
                               std::uint64_t lane_a, std::uint64_t lane_b) const;

  std::string name_;
  std::array<std::size_t, 3> extents_;
  std::size_t rank_;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<std::uint64_t> accesses_{0};
};

}  // namespace portabench::portacheck
