// portacheck: opt-in race/bounds/determinism sanitizer for simrt + gpusim.
//
// Three cooperating mechanisms (docs/SANITIZER.md):
//   1. shadow access logs  — per-cell last-writer/last-reader tagged with
//      (region epoch, lane); conflicting lanes in one region raise
//      race_error with the array name and cell indices;
//   2. always-on bounds    — shadow views check extents on every access,
//      including the operator() path that models `@inbounds`;
//   3. permutation scheduler — PORTABENCH_CHECK_SEED shuffles chunk /
//      tile / team / SIMT-block execution order deterministically, so a
//      kernel whose result depends on schedule is exposed by comparing
//      runs across seeds.
//
// Enable with PORTABENCH_CHECK=1 (+ PORTABENCH_CHECK_SEED=N) or a
// portacheck::ScopedCheck.  When inactive, dispatch costs one relaxed
// load and the shadow machinery is never instantiated.
#pragma once

#include "hooks.hpp"          // IWYU pragma: export
#include "shadow.hpp"         // IWYU pragma: export
#include "shadow_device.hpp"  // IWYU pragma: export
#include "shadow_view.hpp"    // IWYU pragma: export
