// Shadow-instrumented device memory.
//
// ShadowDeviceBuffer fronts a gpusim::DeviceBuffer the way ShadowView2
// fronts a host view: every indexed access is bounds-checked against the
// allocation and attributed to the current SIMT lane (the linear global
// thread id gpusim::launch assigns under PORTABENCH_CHECK), so a device
// kernel that writes outside its buffer — the missing `if (row < m)`
// guard of a Fig. 3 kernel — raises bounds_error instead of corrupting
// host memory, and two device threads touching one cell inside a launch
// raise race_error even though the simulator may have executed them
// serially.
#pragma once

#include <span>
#include <string>

#include "gpusim/memory.hpp"
#include "shadow.hpp"
#include "shadow_view.hpp"

namespace portabench::portacheck {

/// Non-owning instrumented handle over a device buffer.  The wrapped
/// buffer must outlive the shadow handle.
template <class T>
class ShadowDeviceBuffer {
 public:
  using value_type = T;

  ShadowDeviceBuffer(gpusim::DeviceBuffer<T>& buffer, std::string name)
      : buffer_(&buffer),
        log_(std::make_shared<ShadowLog>(std::move(name), std::array<std::size_t, 3>{
                                             buffer.size(), 1, 1}, 1)) {}

  [[nodiscard]] std::size_t size() const noexcept { return buffer_->size(); }

  [[nodiscard]] Ref<T> operator[](std::size_t i) const {
    log_->check_bounds(i);
    return Ref<T>(&(*buffer_)[i], log_.get(), {i, 0, 0});
  }

  /// Transfers stay on the un-instrumented path: H2D/D2H run on the host
  /// timeline, outside any kernel region.
  void copy_from_host(std::span<const T> host) { buffer_->copy_from_host(host); }
  void copy_to_host(std::span<T> host) const { buffer_->copy_to_host(host); }
  void zero() { buffer_->zero(); }

  [[nodiscard]] gpusim::DeviceBuffer<T>& underlying() const noexcept { return *buffer_; }
  [[nodiscard]] ShadowLog& log() const noexcept { return *log_; }

 private:
  gpusim::DeviceBuffer<T>* buffer_;
  std::shared_ptr<ShadowLog> log_;
};

}  // namespace portabench::portacheck
