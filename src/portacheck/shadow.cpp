#include "shadow.hpp"

#include <sstream>

#include "common/error.hpp"

namespace portabench::portacheck {

namespace {

std::string format_indices(const std::array<std::size_t, 3>& idx, std::size_t rank) {
  std::ostringstream os;
  os << "(";
  for (std::size_t d = 0; d < rank; ++d) os << (d ? ", " : "") << idx[d];
  os << ")";
  return os.str();
}

}  // namespace

ShadowLog::ShadowLog(std::string name, std::array<std::size_t, 3> extents, std::size_t rank)
    : name_(std::move(name)), extents_(extents), rank_(rank) {
  PB_EXPECTS(rank >= 1 && rank <= 3);
  for (std::size_t d = rank; d < 3; ++d) extents_[d] = 1;
  const std::size_t count = extents_[0] * extents_[1] * extents_[2];
  PB_EXPECTS(count > 0);
  cells_ = std::make_unique<Cell[]>(count);
}

void ShadowLog::check_bounds(std::size_t i0, std::size_t i1, std::size_t i2) const {
  if (i0 < extents_[0] && i1 < extents_[1] && i2 < extents_[2]) return;
  const std::array<std::size_t, 3> idx{i0, i1, i2};
  std::ostringstream os;
  os << "portacheck: out-of-bounds access to '" << name_ << "' at " << format_indices(idx, rank_)
     << ", extents " << format_indices(extents_, rank_) << " (lane " << current_lane() << ")";
  throw bounds_error(name_, idx, rank_, extents_, os.str());
}

void ShadowLog::raise_race(race_error::Kind kind, std::array<std::size_t, 3> idx,
                           std::uint64_t lane_a, std::uint64_t lane_b) const {
  std::ostringstream os;
  os << "portacheck: "
     << (kind == race_error::Kind::kWriteWrite ? "write-write" : "read-write")
     << " race on '" << name_ << "' at " << format_indices(idx, rank_) << ": lanes " << lane_a
     << " and " << lane_b << " conflict within one parallel region";
  throw race_error(name_, idx, rank_, kind, lane_a, lane_b, os.str());
}

void ShadowLog::record_read(std::size_t i0, std::size_t i1, std::size_t i2) {
  const std::uint64_t epoch = current_region();
  const std::uint64_t lane = current_lane();
  Cell& c = cell(i0, i1, i2);
  accesses_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev_w = c.write.load(std::memory_order_relaxed);
  if (prev_w != 0 && epoch_of(prev_w) == epoch && lane_of(prev_w) != lane) {
    raise_race(race_error::Kind::kReadWrite, {i0, i1, i2}, lane_of(prev_w), lane);
  }
  c.read.store(pack(epoch, lane), std::memory_order_relaxed);
}

void ShadowLog::record_write(std::size_t i0, std::size_t i1, std::size_t i2) {
  const std::uint64_t epoch = current_region();
  const std::uint64_t lane = current_lane();
  Cell& c = cell(i0, i1, i2);
  accesses_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev_w = c.write.exchange(pack(epoch, lane), std::memory_order_relaxed);
  if (prev_w != 0 && epoch_of(prev_w) == epoch && lane_of(prev_w) != lane) {
    raise_race(race_error::Kind::kWriteWrite, {i0, i1, i2}, lane_of(prev_w), lane);
  }
  const std::uint64_t prev_r = c.read.load(std::memory_order_relaxed);
  if (prev_r != 0 && epoch_of(prev_r) == epoch && lane_of(prev_r) != lane) {
    raise_race(race_error::Kind::kReadWrite, {i0, i1, i2}, lane_of(prev_r), lane);
  }
}

}  // namespace portabench::portacheck
