// Shadow-instrumented host views.
//
// ShadowView1/2/3 wrap a simrt view (aliasing its storage — copies are
// cheap handles, Kokkos-style) and route every element access through a
// ShadowLog: extents are enforced on *both* access paths — operator()
// and at() — even in release builds, catching exactly the violations the
// paper's Julia frontend hides behind `@inbounds`; and each access is
// attributed to the current portacheck lane so conflicting accesses
// within one parallel region raise race_error.
//
// Accesses are mediated by a Ref proxy: reading (conversion to the value
// type) records a read, assignment records a write, compound assignment
// records both.  The kernel zoo is templated on its view types, so the
// same Fig. 2/3 kernel source runs over plain views (zero overhead) or
// shadow views (sanitized) without modification.
#pragma once

#include <string>
#include <type_traits>
#include <utility>

#include "shadow.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/view3.hpp"

namespace portabench::portacheck {

/// Instrumented reference to one element.
template <class T>
class Ref {
 public:
  using value_type = T;

  Ref(T* elem, ShadowLog* log, std::array<std::size_t, 3> idx) noexcept
      : elem_(elem), log_(log), idx_(idx) {}

  /// Read path: conversion to the element type records a read.
  operator T() const {  // NOLINT(google-explicit-constructor)
    log_->record_read(idx_[0], idx_[1], idx_[2]);
    return *elem_;
  }

  /// Explicit conversion to any other type static_cast can reach from T
  /// (the kernels' `static_cast<Acc>(A(i, l))` path, including half ->
  /// float which chains two user-defined conversions).
  template <class U>
    requires(!std::is_same_v<U, T> &&
             requires(const T& v) { static_cast<U>(v); })
  explicit operator U() const {
    return static_cast<U>(static_cast<T>(*this));
  }

  const Ref& operator=(const T& value) const {
    log_->record_write(idx_[0], idx_[1], idx_[2]);
    *elem_ = value;
    return *this;
  }
  // Proxy copy-assign must forward the *value*, not rebind the proxy.
  const Ref& operator=(const Ref& other) const { return *this = static_cast<T>(other); }

  const Ref& operator+=(const T& value) const { return *this = static_cast<T>(*this) + value; }
  const Ref& operator-=(const T& value) const { return *this = static_cast<T>(*this) - value; }
  const Ref& operator*=(const T& value) const { return *this = static_cast<T>(*this) * value; }
  const Ref& operator/=(const T& value) const { return *this = static_cast<T>(*this) / value; }

 private:
  T* elem_;
  ShadowLog* log_;
  std::array<std::size_t, 3> idx_;
};

/// Rank-1 shadow view (also fronts flat device buffers and spans).
template <class T>
class ShadowView1 {
 public:
  using value_type = T;

  ShadowView1(simrt::View1<T> view, std::string name)
      : view_(std::move(view)),
        log_(std::make_shared<ShadowLog>(std::move(name), std::array<std::size_t, 3>{
                                             view_.size(), 1, 1}, 1)) {}

  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
  [[nodiscard]] std::size_t extent(std::size_t dim) const { return view_.extent(dim); }

  [[nodiscard]] Ref<T> operator()(std::size_t i) const {
    log_->check_bounds(i);
    return Ref<T>(&view_(i), log_.get(), {i, 0, 0});
  }
  [[nodiscard]] Ref<T> operator[](std::size_t i) const { return (*this)(i); }
  [[nodiscard]] Ref<T> at(std::size_t i) const { return (*this)(i); }

  [[nodiscard]] const simrt::View1<T>& underlying() const noexcept { return view_; }
  [[nodiscard]] ShadowLog& log() const noexcept { return *log_; }

 private:
  simrt::View1<T> view_;
  std::shared_ptr<ShadowLog> log_;
};

/// Rank-2 shadow view: drop-in for View2 in the templated kernel zoo.
template <class T, class Layout = simrt::LayoutRight>
class ShadowView2 {
 public:
  using value_type = T;
  using layout_type = Layout;
  static constexpr bool is_row_major = std::is_same_v<Layout, simrt::LayoutRight>;

  ShadowView2(simrt::View2<T, Layout> view, std::string name)
      : view_(std::move(view)),
        log_(std::make_shared<ShadowLog>(std::move(name), std::array<std::size_t, 3>{
                                             view_.extent(0), view_.extent(1), 1}, 2)) {}

  [[nodiscard]] std::size_t extent(std::size_t dim) const { return view_.extent(dim); }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }

  [[nodiscard]] Ref<T> operator()(std::size_t i, std::size_t j) const {
    log_->check_bounds(i, j);
    return Ref<T>(&view_(i, j), log_.get(), {i, j, 0});
  }
  [[nodiscard]] Ref<T> at(std::size_t i, std::size_t j) const { return (*this)(i, j); }

  [[nodiscard]] const simrt::View2<T, Layout>& underlying() const noexcept { return view_; }
  [[nodiscard]] ShadowLog& log() const noexcept { return *log_; }

 private:
  simrt::View2<T, Layout> view_;
  std::shared_ptr<ShadowLog> log_;
};

/// Rank-3 shadow view (the batched-GEMM container).
template <class T, class Layout = simrt::LayoutRight>
class ShadowView3 {
 public:
  using value_type = T;
  using layout_type = Layout;
  static constexpr bool is_row_major = std::is_same_v<Layout, simrt::LayoutRight>;

  ShadowView3(simrt::View3<T, Layout> view, std::string name)
      : view_(std::move(view)),
        log_(std::make_shared<ShadowLog>(std::move(name), std::array<std::size_t, 3>{
                                             view_.extent(0), view_.extent(1), view_.extent(2)},
                                         3)) {}

  [[nodiscard]] std::size_t extent(std::size_t dim) const { return view_.extent(dim); }
  [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }

  [[nodiscard]] Ref<T> operator()(std::size_t i, std::size_t j, std::size_t k) const {
    log_->check_bounds(i, j, k);
    return Ref<T>(&view_(i, j, k), log_.get(), {i, j, k});
  }
  [[nodiscard]] Ref<T> at(std::size_t i, std::size_t j, std::size_t k) const {
    return (*this)(i, j, k);
  }

  [[nodiscard]] const simrt::View3<T, Layout>& underlying() const noexcept { return view_; }
  [[nodiscard]] ShadowLog& log() const noexcept { return *log_; }

 private:
  simrt::View3<T, Layout> view_;
  std::shared_ptr<ShadowLog> log_;
};

}  // namespace portabench::portacheck
