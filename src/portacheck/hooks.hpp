// portacheck runtime hooks: the tiny substrate the runtimes consult.
//
// simrt and gpusim ask three questions at the top of every parallel
// region: is checking active, what execution-order seed applies, and what
// shadow "region epoch" are we in.  When checking is off (the default)
// each dispatch pays exactly one relaxed atomic load and takes its
// original code path, so the sanitizer costs nothing unless enabled —
// the same zero-overhead-by-default contract as Julia's `@inbounds`
// ablation in the paper (bounds discipline is a *mode*, not a rebuild).
//
// Lanes: every logical unit of parallelism (one parallel_for iteration,
// one SIMT thread, one team) is assigned a lane id via a thread_local.
// The shadow layer (shadow.hpp) attributes each memory access to the
// current lane; two accesses to one cell from different lanes inside one
// region epoch are a race, because the runtime provides no ordering
// between lanes of a region.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace portabench::portacheck {

namespace detail {

struct Globals {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> seed{0};
  std::atomic<std::uint64_t> region{0};
};

/// Process-wide state; first call reads PORTABENCH_CHECK /
/// PORTABENCH_CHECK_SEED from the environment.
Globals& globals() noexcept;

extern thread_local std::uint64_t tls_lane;

}  // namespace detail

/// True when sanitized execution is active (env PORTABENCH_CHECK=1 or a
/// live ScopedCheck).  The one query on every dispatch hot path.
[[nodiscard]] inline bool active() noexcept {
  return detail::globals().enabled.load(std::memory_order_relaxed);
}

/// Seed for the permutation scheduler; 0 keeps natural order even when
/// checking is active.  Env: PORTABENCH_CHECK_SEED=N.
[[nodiscard]] inline std::uint64_t order_seed() noexcept {
  return detail::globals().seed.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;
void set_seed(std::uint64_t seed) noexcept;

/// RAII programmatic enable (tests): activates checking with `seed`,
/// restoring the previous state on destruction.
class ScopedCheck {
 public:
  explicit ScopedCheck(std::uint64_t seed = 1) noexcept;
  ScopedCheck(const ScopedCheck&) = delete;
  ScopedCheck& operator=(const ScopedCheck&) = delete;
  ~ScopedCheck();

 private:
  bool prev_enabled_;
  std::uint64_t prev_seed_;
};

// --- lanes -----------------------------------------------------------------

[[nodiscard]] inline std::uint64_t current_lane() noexcept { return detail::tls_lane; }
inline void set_current_lane(std::uint64_t lane) noexcept { detail::tls_lane = lane; }

/// Scoped lane identity for one logical unit of parallelism.
class LaneScope {
 public:
  explicit LaneScope(std::uint64_t lane) noexcept : prev_(detail::tls_lane) {
    detail::tls_lane = lane;
  }
  LaneScope(const LaneScope&) = delete;
  LaneScope& operator=(const LaneScope&) = delete;
  ~LaneScope() { detail::tls_lane = prev_; }

 private:
  std::uint64_t prev_;
};

// --- region epochs ---------------------------------------------------------

/// Open a new shadow epoch.  Called at the top of every parallel region
/// (and at every barrier of a cooperative kernel): accesses from
/// different epochs never conflict, because the region boundary is a
/// synchronization point.
inline std::uint64_t begin_region() noexcept {
  return detail::globals().region.fetch_add(1, std::memory_order_relaxed) + 1;
}

[[nodiscard]] inline std::uint64_t current_region() noexcept {
  return detail::globals().region.load(std::memory_order_relaxed);
}

// --- seeded permutation ----------------------------------------------------

/// Deterministic Fisher-Yates permutation of [0, n) from `seed`
/// (splitmix64 stream).  seed == 0 returns the identity, so "checking on,
/// no shuffle" is expressible.  Used by the permutation scheduler in
/// simrt::parallel_for / gpusim::launch to prove kernels are
/// execution-order-independent: a correct data-parallel kernel must
/// produce identical results under every block/chunk order.
[[nodiscard]] std::vector<std::size_t> permutation(std::size_t n, std::uint64_t seed);

}  // namespace portabench::portacheck
