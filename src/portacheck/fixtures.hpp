// Intentionally defective kernels — the sanitizer's negative controls.
//
// The `sanitized` ctest tier proves two things: the kernel zoo is clean
// under every scheduler seed, AND the detector actually fires.  These
// fixtures supply the second half: each contains a bug of a class the
// paper's methodology worries about (unsynchronized accumulation; the
// missing double-buffer of a stencil), written in the same style as the
// legitimate kernels.  They must NEVER be called outside a test that
// expects race_error/bounds_error.
#pragma once

#include <cstddef>

#include "gpusim/launch.hpp"
#include "simrt/parallel.hpp"

namespace portabench::portacheck::fixtures {

/// Racy fixture 1 (host): unsynchronized histogram.  Iterations i and
/// i + bins both increment bin i — a read-modify-write with no atomics,
/// i.e. the bug `#pragma omp parallel for` over a shared counter array
/// produces.  Under portacheck this raises race_error naming the bins
/// array and the conflicting bin index; unchecked it silently loses
/// increments (or happens to pass, which is the point).
template <class Space, class Bins>
void racy_histogram(const Space& space, Bins& bins, std::size_t samples) {
  const std::size_t nbins = bins.size();
  simrt::parallel_for(space, simrt::RangePolicy(0, samples), [&](std::size_t i) {
    bins[i % nbins] += 1;
  });
}

/// Racy fixture 2 (device): in-place Jacobi sweep — the Fig. 3-shaped
/// stencil with the double buffer dropped.  Thread (i, j) reads the four
/// neighbours that other threads of the same launch write: a read-write
/// race on every interior cell, undetectable by output comparison on a
/// serial simulator but flagged by the shadow log regardless of
/// execution order.
template <class Buf>
void racy_inplace_stencil(gpusim::DeviceContext& ctx, Buf& grid, std::size_t rows,
                          std::size_t cols, const gpusim::Dim3& block = {16, 16, 1}) {
  const gpusim::Dim3 launch_grid{gpusim::blocks_for(cols, block.x),
                                 gpusim::blocks_for(rows, block.y), 1};
  gpusim::launch(ctx, launch_grid, block, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t i = tc.global_y();
    const std::size_t j = tc.global_x();
    if (i >= 1 && i + 1 < rows && j >= 1 && j + 1 < cols) {
      grid[i * cols + j] = 0.25 * (grid[(i - 1) * cols + j] + grid[(i + 1) * cols + j] +
                                   grid[i * cols + j - 1] + grid[i * cols + j + 1]);
    }
  });
}

/// Bounds fixture (device): the Fig. 3a kernel with its `row < m` guard
/// deleted.  On any grid that over-covers the matrix the unguarded
/// threads index past the allocation — UB on real hardware, a structured
/// bounds_error under portacheck.
template <class Acc, class ABuf, class BBuf, class CBuf>
void unguarded_gemm(gpusim::DeviceContext& ctx, const gpusim::Dim3& grid,
                    const gpusim::Dim3& block, const ABuf& A, const BBuf& B, CBuf& C,
                    std::size_t m, std::size_t n, std::size_t k) {
  gpusim::launch(ctx, grid, block, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t row = tc.global_y();
    const std::size_t col = tc.global_x();
    // Missing: if (row < m && col < n)
    Acc sum{};
    for (std::size_t l = 0; l < k; ++l) {
      sum += static_cast<Acc>(A[row * k + l]) * static_cast<Acc>(B[l * n + col]);
    }
    C[row * n + col] = static_cast<typename CBuf::value_type>(sum);
  });
  (void)m;
}

}  // namespace portabench::portacheck::fixtures
