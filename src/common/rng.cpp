#include "rng.hpp"

#include <algorithm>

namespace portabench {

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAull, 0xD5A61266F0C9392Cull,
                                            0xA9582618E03FC9AAull, 0x39ABDC4529B1661Cull};
  std::array<std::uint64_t, 4> s{};
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (1ull << b)) {
        s[0] ^= state_[0];
        s[1] ^= state_[1];
        s[2] ^= state_[2];
        s[3] ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = s;
}

void fill_uniform(std::span<double> out, Xoshiro256& rng) {
  std::generate(out.begin(), out.end(), [&] { return rng.uniform(); });
}

void fill_uniform(std::span<float> out, Xoshiro256& rng) {
  std::generate(out.begin(), out.end(), [&] { return static_cast<float>(rng.uniform()); });
}

void fill_uniform(std::span<half> out, Xoshiro256& rng) {
  std::generate(out.begin(), out.end(), [&] { return half(static_cast<float>(rng.uniform())); });
}

void fill_constant(std::span<double> out, double value) {
  std::fill(out.begin(), out.end(), value);
}

void fill_constant(std::span<float> out, float value) {
  std::fill(out.begin(), out.end(), value);
}

void fill_constant(std::span<half> out, half value) {
  std::fill(out.begin(), out.end(), value);
}

}  // namespace portabench
