// Cache-line aligned owning buffer.
//
// Matrices in every frontend are stored in 64-byte aligned storage so the
// host kernels vectorize the same way regardless of which programming
// model allocated them (isolating the programming model, per the paper's
// methodology, rather than the allocator).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <utility>

#include "error.hpp"

namespace portabench {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Owning, 64-byte-aligned, fixed-size array of trivially copyable T.
template <class T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) : size_(count) {
    if (count == 0) return;
    void* p = ::operator new[](count * sizeof(T), std::align_val_t{kCacheLineBytes});
    data_.reset(static_cast<T*>(p));
    std::uninitialized_value_construct_n(data_.get(), count);
  }

  // Moves must zero the source's size: a defaulted move would null the
  // data pointer but *copy* size_, leaving a moved-from buffer that
  // claims elements it no longer owns.
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::move(other.data_)), size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    data_ = std::move(other.data_);
    size_ = std::exchange(other.size_, 0);
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* data() noexcept { return data_.get(); }
  [[nodiscard]] const T* data() const noexcept { return data_.get(); }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_.get(), size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept { return {data_.get(), size_}; }

 private:
  struct Deleter {
    void operator()(T* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kCacheLineBytes});
    }
  };
  std::unique_ptr<T[], Deleter> data_;
  std::size_t size_ = 0;
};

}  // namespace portabench
