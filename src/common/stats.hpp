// Run statistics with warm-up exclusion.
//
// Section IV of the paper: "All numbers were obtained by running the GEMM
// kernels several (at least 5 or 10) times and excluding an initial
// warm-up step" — the warm-up discards JIT compilation and first-touch
// costs.  RunStats encodes exactly that protocol so every harness reports
// numbers the same way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace portabench {

/// Summary statistics over a sample of timings (seconds) or rates.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Compute summary statistics of a sample.  Empty input yields a
/// zero-initialized Summary.
Summary summarize(std::span<const double> sample);

/// Accumulates repetition timings, discarding the first `warmup` entries
/// exactly as the paper's measurement protocol prescribes.
class RunStats {
 public:
  /// @param warmup number of leading repetitions to exclude (>= 0).
  explicit RunStats(std::size_t warmup = 1) : warmup_(warmup) {}

  void add(double value) {
    if (seen_ < warmup_) {
      ++seen_;
      ++discarded_;
      return;
    }
    ++seen_;
    sample_.push_back(value);
  }

  [[nodiscard]] std::size_t recorded() const noexcept { return sample_.size(); }
  [[nodiscard]] std::size_t discarded() const noexcept { return discarded_; }
  [[nodiscard]] std::span<const double> sample() const noexcept { return sample_; }
  [[nodiscard]] Summary summary() const { return summarize(sample_); }

 private:
  std::size_t warmup_;
  std::size_t seen_ = 0;
  std::size_t discarded_ = 0;
  std::vector<double> sample_;
};

/// GEMM floating-point operation count: 2*m*n*k (multiply + add), the
/// convention used throughout the paper's GFLOPS axes.
[[nodiscard]] constexpr double gemm_flops(std::size_t m, std::size_t n, std::size_t k) noexcept {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k);
}

/// Convert an operation count and elapsed seconds to GFLOP/s.
[[nodiscard]] double gflops(double flops, double seconds);

/// Arithmetic mean of a sample (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> sample);

/// Nearest-rank percentile of a sample: the smallest element with at
/// least p percent of the sample at or below it (p in [0, 100]; p = 50
/// is the upper median, p = 100 the maximum).  0 for an empty sample.
/// The serving bench reports open-loop latency as p50/p99/p999 through
/// this one definition.
[[nodiscard]] double percentile_of(std::span<const double> sample, double p);

/// Harmonic mean of a sample; 0 if empty or any element is <= 0.
/// (Pennycook's performance-portability metric uses the harmonic mean.)
[[nodiscard]] double harmonic_mean_of(std::span<const double> sample);

/// Geometric mean of a sample; 0 if empty or any element is <= 0.
[[nodiscard]] double geometric_mean_of(std::span<const double> sample);

/// Bootstrap confidence interval of the sample mean.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double level = 0.95;
};

/// Percentile-bootstrap CI of the mean: `resamples` resamples with
/// replacement, deterministic for a fixed seed.  Requires a non-empty
/// sample and level in (0, 1).
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample,
                                                   double level = 0.95,
                                                   std::size_t resamples = 2000,
                                                   std::uint64_t seed = 0xB007);

}  // namespace portabench
