#include "half.hpp"

#include <ostream>

namespace portabench::detail {

std::uint16_t float_to_half_bits(float value) noexcept {
  const std::uint32_t f = bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::uint32_t abs = f & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {
    // Inf or NaN.  Keep a NaN quiet with a nonzero payload.
    if (abs > 0x7F800000u) {
      const std::uint32_t payload = (abs >> 13) & 0x03FFu;
      return static_cast<std::uint16_t>(sign | 0x7C00u | (payload != 0 ? payload : 0x0200u));
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }

  const std::int32_t exp = static_cast<std::int32_t>(abs >> 23) - 127;

  if (exp >= 16) return static_cast<std::uint16_t>(sign | 0x7C00u);  // overflow

  if (exp >= -14) {
    // Normal half.  Keep 10 mantissa bits, round-to-nearest-even on the
    // 13 dropped bits.
    std::uint32_t mant = abs & 0x007FFFFFu;
    std::uint32_t half_exp = static_cast<std::uint32_t>(exp + 15);
    std::uint32_t out = (half_exp << 10) | (mant >> 13);
    const std::uint32_t round_bits = mant & 0x1FFFu;
    if (round_bits > 0x1000u || (round_bits == 0x1000u && (out & 1u))) {
      ++out;  // may carry into the exponent, which is exactly correct
    }
    return static_cast<std::uint16_t>(sign | out);
  }

  if (exp >= -25) {
    // Subnormal half: shift the mantissa (with implicit bit) right so the
    // exponent becomes -14, then round-to-nearest-even.
    std::uint32_t mant = (abs & 0x007FFFFFu) | 0x00800000u;
    const int shift = -exp - 14 + 13;  // total bits dropped below the half mantissa
    const std::uint32_t dropped_mask = (1u << shift) - 1u;
    std::uint32_t out = mant >> shift;
    const std::uint32_t round_bits = mant & dropped_mask;
    const std::uint32_t halfway = 1u << (shift - 1);
    if (round_bits > halfway || (round_bits == halfway && (out & 1u))) ++out;
    return static_cast<std::uint16_t>(sign | out);
  }

  // Underflow to signed zero.
  return static_cast<std::uint16_t>(sign);
}

float half_bits_to_float(std::uint16_t bits) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t exp = (bits >> 10) & 0x1Fu;
  std::uint32_t mant = bits & 0x03FFu;

  if (exp == 0x1Fu) {
    // Inf / NaN.
    return bit_cast<float>(sign | 0x7F800000u | (mant << 13));
  }
  if (exp == 0) {
    if (mant == 0) return bit_cast<float>(sign);  // signed zero
    // Subnormal: normalize by shifting the mantissa up.
    int e = -1;
    do {
      ++e;
      mant <<= 1;
    } while ((mant & 0x0400u) == 0);
    mant &= 0x03FFu;
    const std::uint32_t fexp = static_cast<std::uint32_t>(127 - 15 - e);
    return bit_cast<float>(sign | (fexp << 23) | (mant << 13));
  }
  const std::uint32_t fexp = exp + (127 - 15);
  return bit_cast<float>(sign | (fexp << 23) | (mant << 13));
}

std::uint16_t float_to_bfloat_bits(float value) noexcept {
  std::uint32_t f = bit_cast<std::uint32_t>(value);
  if ((f & 0x7F800000u) == 0x7F800000u && (f & 0x007FFFFFu) != 0) {
    // NaN: truncate but force a nonzero payload so it stays a NaN.
    return static_cast<std::uint16_t>((f >> 16) | 0x0040u);
  }
  // Round-to-nearest-even on the dropped 16 bits.
  const std::uint32_t lsb = (f >> 16) & 1u;
  f += 0x7FFFu + lsb;
  return static_cast<std::uint16_t>(f >> 16);
}

float bfloat_bits_to_float(std::uint16_t bits) noexcept {
  return bit_cast<float>(static_cast<std::uint32_t>(bits) << 16);
}

}  // namespace portabench::detail

namespace portabench {

std::ostream& operator<<(std::ostream& os, half h) {
  return os << static_cast<float>(h);
}

std::ostream& operator<<(std::ostream& os, bfloat16 b) {
  return os << static_cast<float>(b);
}

}  // namespace portabench
