// Scalar conversion entry points, expressed as the W == 1 instantiation
// of the shared branch-free cores in half_convert.hpp.  There is exactly
// one copy of the RNE / subnormal / NaN-quieting logic in the tree; the
// batched convert_n() paths are the same cores at wider lane counts, so
// scalar and batched conversion cannot drift apart.  The golden
// bit-pattern tests (half_test.cpp) pin these against the original
// branchy implementation's exhaustive image.
#include "half.hpp"

#include <ostream>

#include "half_convert.hpp"

namespace portabench::detail {

namespace {
using U1 = simrt::simd<std::uint32_t, 1>;
}  // namespace

std::uint16_t float_to_half_bits(float value) noexcept {
  const U1 out = float_to_half_core<1>(U1(bit_cast<std::uint32_t>(value)));
  return static_cast<std::uint16_t>(out[0]);
}

float half_bits_to_float(std::uint16_t bits) noexcept {
  const U1 out = half_to_float_core<1>(U1(bits));
  return bit_cast<float>(out[0]);
}

std::uint16_t float_to_bfloat_bits(float value) noexcept {
  const U1 out = float_to_bfloat_core<1>(U1(bit_cast<std::uint32_t>(value)));
  return static_cast<std::uint16_t>(out[0]);
}

float bfloat_bits_to_float(std::uint16_t bits) noexcept {
  return bit_cast<float>(static_cast<std::uint32_t>(bits) << 16);
}

}  // namespace portabench::detail

namespace portabench {

std::ostream& operator<<(std::ostream& os, half h) {
  return os << static_cast<float>(h);
}

std::ostream& operator<<(std::ostream& os, bfloat16 b) {
  return os << static_cast<float>(b);
}

}  // namespace portabench
