#include "table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "error.hpp"

namespace portabench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PB_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PB_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  if (std::isnan(value)) return "-";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  return os.str();
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(os, headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.to_markdown(); }

}  // namespace portabench
