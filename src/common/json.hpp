// Minimal JSON emitter + parser for machine-readable artifacts.
//
// Downstream tooling (plotting the figure series, CI regression tracking)
// consumes structured results; the writer covers the subset needed —
// objects, arrays, strings, numbers, booleans — with correct string
// escaping and shortest-round-trip double formatting.  The parser exists
// for exactly one consumer: the persisted tuning cache (docs/TUNING.md),
// which must load files that may be corrupt, truncated, or stale — so
// parse_json() reports failure through JsonParseResult instead of
// throwing, and the tuning layer degrades to an empty cache.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace portabench {

/// Build a JSON document incrementally.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("fig7");
///   w.key("series"); w.begin_array(); w.value(1.5); w.end_array();
///   w.end_object();
///   std::string doc = w.str();
/// Structural misuse (mismatched begin/end, key outside an object) throws
/// precondition_error.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit an object key; must be inside an object and followed by a value.
  void key(const std::string& name);

  void value(const std::string& s);
  void value(const char* s);
  void value(double number);
  void value(long number);
  void value(std::size_t number);
  void value(bool flag);
  void null();

  /// The finished document; throws unless all containers are closed.
  [[nodiscard]] std::string str() const;

  /// Escape a string per RFC 8259 (quotes, backslash, control chars).
  [[nodiscard]] static std::string escape(const std::string& raw);

 private:
  enum class Ctx { kObjectKey, kObjectValue, kArray };
  void before_value();
  void raw(const std::string& text);

  std::string out_;
  std::vector<Ctx> stack_;
  bool root_done_ = false;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// A parsed JSON document node.  Numbers are stored as double (the only
/// numeric type JSON has); object keys are sorted (std::map), which is
/// fine for the cache-file use case where key order carries no meaning.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit JsonValue(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  explicit JsonValue(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return num_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const Array& as_array() const noexcept { return arr_; }
  [[nodiscard]] const Object& as_object() const noexcept { return obj_; }

  /// Object member lookup; nullptr when not an object or key absent.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    const auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }

  /// Typed member accessors for the common "optional field with default"
  /// shape; return std::nullopt when absent or of the wrong kind.
  [[nodiscard]] std::optional<double> number_at(const std::string& key) const {
    const JsonValue* v = find(key);
    if (v == nullptr || !v->is_number()) return std::nullopt;
    return v->as_number();
  }
  [[nodiscard]] std::optional<std::string> string_at(const std::string& key) const {
    const JsonValue* v = find(key);
    if (v == nullptr || !v->is_string()) return std::nullopt;
    return v->as_string();
  }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Outcome of parse_json: `value` is set iff `ok`.  Never throws — the
/// tuning-cache loader must survive arbitrary on-disk garbage.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;  ///< "offset N: message" when !ok
};

/// Parse one JSON document (trailing whitespace allowed, nothing else).
/// Depth-limited (64 nested containers) so adversarial input cannot
/// overflow the stack.
[[nodiscard]] JsonParseResult parse_json(std::string_view text);

}  // namespace portabench
