// Minimal JSON emitter for machine-readable bench results.
//
// Downstream tooling (plotting the figure series, CI regression tracking)
// consumes structured results; this writer covers the subset needed —
// objects, arrays, strings, numbers, booleans — with correct string
// escaping and shortest-round-trip double formatting.  Emission only; the
// study never parses JSON.
#pragma once

#include <string>
#include <vector>

namespace portabench {

/// Build a JSON document incrementally.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name"); w.value("fig7");
///   w.key("series"); w.begin_array(); w.value(1.5); w.end_array();
///   w.end_object();
///   std::string doc = w.str();
/// Structural misuse (mismatched begin/end, key outside an object) throws
/// precondition_error.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit an object key; must be inside an object and followed by a value.
  void key(const std::string& name);

  void value(const std::string& s);
  void value(const char* s);
  void value(double number);
  void value(long number);
  void value(std::size_t number);
  void value(bool flag);
  void null();

  /// The finished document; throws unless all containers are closed.
  [[nodiscard]] std::string str() const;

  /// Escape a string per RFC 8259 (quotes, backslash, control chars).
  [[nodiscard]] static std::string escape(const std::string& raw);

 private:
  enum class Ctx { kObjectKey, kObjectValue, kArray };
  void before_value();
  void raw(const std::string& text);

  std::string out_;
  std::vector<Ctx> stack_;
  bool root_done_ = false;
};

}  // namespace portabench
