#include "json.hpp"

#include <cmath>
#include <cstdio>

#include "error.hpp"

namespace portabench {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    PB_EXPECTS(!root_done_);  // only one root value
    root_done_ = true;
    return;
  }
  switch (stack_.back()) {
    case Ctx::kObjectKey:
      // A value directly inside an object must follow key().
      throw precondition_error("JSON value emitted without a preceding key");
    case Ctx::kObjectValue:
      stack_.back() = Ctx::kObjectKey;  // next emission must be a key
      return;
    case Ctx::kArray:
      if (out_.back() != '[') out_ += ',';
      return;
  }
}

void JsonWriter::raw(const std::string& text) { out_ += text; }

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Ctx::kObjectKey);
  out_ += '{';
}

void JsonWriter::end_object() {
  PB_EXPECTS(!stack_.empty() && stack_.back() == Ctx::kObjectKey);
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Ctx::kArray);
  out_ += '[';
}

void JsonWriter::end_array() {
  PB_EXPECTS(!stack_.empty() && stack_.back() == Ctx::kArray);
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  PB_EXPECTS(!stack_.empty() && stack_.back() == Ctx::kObjectKey);
  if (out_.back() != '{') out_ += ',';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  stack_.back() = Ctx::kObjectValue;
}

void JsonWriter::value(const std::string& s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(const char* s) { value(std::string(s)); }

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no NaN/Inf; unsupported cells become null
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, number);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == number) {
      out_ += candidate;
      return;
    }
  }
  out_ += buf;
}

void JsonWriter::value(long number) {
  before_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::size_t number) {
  before_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  before_value();
  out_ += "null";
}

std::string JsonWriter::str() const {
  PB_EXPECTS(stack_.empty() && root_done_);
  return out_;
}

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

}  // namespace portabench
