#include "json.hpp"

#include <cmath>
#include <cstdio>

#include "error.hpp"

namespace portabench {

void JsonWriter::before_value() {
  if (stack_.empty()) {
    PB_EXPECTS(!root_done_);  // only one root value
    root_done_ = true;
    return;
  }
  switch (stack_.back()) {
    case Ctx::kObjectKey:
      // A value directly inside an object must follow key().
      throw precondition_error("JSON value emitted without a preceding key");
    case Ctx::kObjectValue:
      stack_.back() = Ctx::kObjectKey;  // next emission must be a key
      return;
    case Ctx::kArray:
      if (out_.back() != '[') out_ += ',';
      return;
  }
}

void JsonWriter::raw(const std::string& text) { out_ += text; }

void JsonWriter::begin_object() {
  before_value();
  stack_.push_back(Ctx::kObjectKey);
  out_ += '{';
}

void JsonWriter::end_object() {
  PB_EXPECTS(!stack_.empty() && stack_.back() == Ctx::kObjectKey);
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  before_value();
  stack_.push_back(Ctx::kArray);
  out_ += '[';
}

void JsonWriter::end_array() {
  PB_EXPECTS(!stack_.empty() && stack_.back() == Ctx::kArray);
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& name) {
  PB_EXPECTS(!stack_.empty() && stack_.back() == Ctx::kObjectKey);
  if (out_.back() != '{') out_ += ',';
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  stack_.back() = Ctx::kObjectValue;
}

void JsonWriter::value(const std::string& s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
}

void JsonWriter::value(const char* s) { value(std::string(s)); }

void JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no NaN/Inf; unsupported cells become null
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, number);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == number) {
      out_ += candidate;
      return;
    }
  }
  out_ += buf;
}

void JsonWriter::value(long number) {
  before_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(std::size_t number) {
  before_value();
  out_ += std::to_string(number);
}

void JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
}

void JsonWriter::null() {
  before_value();
  out_ += "null";
}

std::string JsonWriter::str() const {
  PB_EXPECTS(stack_.empty() && root_done_);
  return out_;
}

namespace {

/// Recursive-descent parser over a string_view.  All failures funnel
/// through fail(), which records the first error and poisons the cursor;
/// parse_json() turns that into JsonParseResult.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult r;
    JsonValue v = parse_value(0);
    skip_ws();
    if (ok_ && pos_ != text_.size()) fail("trailing characters after document");
    if (!ok_) {
      r.error = "offset " + std::to_string(err_pos_) + ": " + err_;
      return r;
    }
    r.ok = true;
    r.value = std::move(v);
    return r;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& msg) {
    if (ok_) {
      ok_ = false;
      err_ = msg;
      err_pos_ = pos_;
    }
    pos_ = text_.size();  // stop consuming
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    skip_ws();
    if (depth > kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth));
      return {};
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return JsonValue(parse_string());
    if (c == 't') {
      if (literal("true")) return JsonValue(true);
      fail("invalid literal");
      return {};
    }
    if (c == 'f') {
      if (literal("false")) return JsonValue(false);
      fail("invalid literal");
      return {};
    }
    if (c == 'n') {
      if (literal("null")) return JsonValue();
      fail("invalid literal");
      return {};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail(std::string("unexpected character '") + c + "'");
    return {};
  }

  JsonValue parse_object(int depth) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(obj));
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key string");
        return {};
      }
      std::string key = parse_string();
      if (!ok_) return {};
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return {};
      }
      obj[std::move(key)] = parse_value(depth + 1);
      if (!ok_) return {};
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue(std::move(obj));
      fail("expected ',' or '}' in object");
      return {};
    }
  }

  JsonValue parse_array(int depth) {
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(arr));
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      if (!ok_) return {};
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue(std::move(arr));
      fail("expected ',' or ']' in array");
      return {};
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return {};
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return {};
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("invalid \\u escape digit");
              return {};
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are out of
          // scope for the cache files this parser serves).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
          return {};
      }
    }
    fail("unterminated string");
    return {};
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string tok(text_.substr(start, pos_ - start));
    double v = 0.0;
    if (tok.empty() || tok == "-" || std::sscanf(tok.c_str(), "%lf", &v) != 1) {
      pos_ = start;
      fail("malformed number");
      return {};
    }
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string err_;
  std::size_t err_pos_ = 0;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) { return Parser(text).run(); }

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char ch : raw) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

}  // namespace portabench
