#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "error.hpp"
#include "rng.hpp"

namespace portabench {

Summary summarize(std::span<const double> sample) {
  Summary s;
  s.count = sample.size();
  if (sample.empty()) return s;

  s.mean = mean_of(sample);
  const auto [min_it, max_it] = std::minmax_element(sample.begin(), sample.end());
  s.min = *min_it;
  s.max = *max_it;

  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1) ? sorted[mid] : 0.5 * (sorted[mid - 1] + sorted[mid]);

  if (sample.size() > 1) {
    double ss = 0.0;
    for (double v : sample) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(sample.size() - 1));
  }
  return s;
}

double gflops(double flops, double seconds) {
  PB_EXPECTS(seconds > 0.0);
  return flops / seconds / 1.0e9;
}

double mean_of(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  return std::accumulate(sample.begin(), sample.end(), 0.0) / static_cast<double>(sample.size());
}

double percentile_of(std::span<const double> sample, double p) {
  PB_EXPECTS(p >= 0.0 && p <= 100.0);
  if (sample.empty()) return 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  // The epsilon keeps an exactly-satisfiable rank (e.g. p = 99.9 of
  // 1000) from rounding up when p/100 * n lands a few ulps high.
  const double rank =
      std::ceil(p / 100.0 * static_cast<double>(sorted.size()) - 1e-9);
  const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

double harmonic_mean_of(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double inv_sum = 0.0;
  for (double v : sample) {
    if (v <= 0.0) return 0.0;
    inv_sum += 1.0 / v;
  }
  return static_cast<double>(sample.size()) / inv_sum;
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> sample, double level,
                                     std::size_t resamples, std::uint64_t seed) {
  PB_EXPECTS(!sample.empty());
  PB_EXPECTS(level > 0.0 && level < 1.0);
  PB_EXPECTS(resamples >= 10);

  Xoshiro256 rng(seed);
  std::vector<double> means;
  means.reserve(resamples);
  const std::size_t n = sample.size();
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += sample[rng() % n];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());

  const double alpha = (1.0 - level) / 2.0;
  const auto index_at = [&](double q) {
    const double pos = q * static_cast<double>(resamples - 1);
    return means[static_cast<std::size_t>(pos)];
  };
  ConfidenceInterval ci;
  ci.level = level;
  ci.lower = index_at(alpha);
  ci.upper = index_at(1.0 - alpha);
  return ci;
}

double geometric_mean_of(std::span<const double> sample) {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : sample) {
    if (v <= 0.0) return 0.0;
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace portabench
