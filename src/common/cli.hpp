// Minimal command-line option parser shared by benches and examples.
//
// Syntax: `--key=value`, `--key value`, and bare `--flag`.  Unknown
// options raise config_error so a typo in a sweep script fails loudly
// instead of silently running the default experiment.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "error.hpp"  // config_error, thrown on malformed input

namespace portabench {

class CliParser {
 public:
  /// Declare an option with a help string; only declared options parse.
  CliParser& option(std::string name, std::string help, std::string default_value = "");

  /// Declare a boolean flag (present/absent).
  CliParser& flag(std::string name, std::string help);

  /// Parse argv; throws config_error on unknown or malformed options.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;

  /// Comma-separated integer list, e.g. "--sizes=1024,2048,4096".
  [[nodiscard]] std::vector<std::size_t> get_size_list(const std::string& name) const;

  /// Render a usage string of all declared options.
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Opt {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool set = false;
  };
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace portabench
