#include "ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "error.hpp"

namespace portabench {

namespace {

constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@'};

std::string engineering(double v) {
  std::ostringstream os;
  if (v >= 1.0e9) {
    os << v / 1.0e9 << "G";
  } else if (v >= 1.0e6) {
    os << v / 1.0e6 << "M";
  } else if (v >= 1.0e3) {
    os << v / 1.0e3 << "k";
  } else {
    os << v;
  }
  return os.str();
}

}  // namespace

std::string render_plot(const std::vector<PlotSeries>& series,
                        const std::vector<double>& x_ticks, const PlotOptions& options) {
  PB_EXPECTS(!series.empty());
  PB_EXPECTS(options.width >= 8 && options.height >= 4);
  const std::size_t points = series.front().values.size();
  PB_EXPECTS(points >= 1);
  PB_EXPECTS(x_ticks.size() == points);
  for (const auto& s : series) PB_EXPECTS(s.values.size() == points);

  double y_max = options.y_max;
  if (options.y_auto_max) {
    y_max = options.y_min;
    for (const auto& s : series) {
      for (double v : s.values) y_max = std::max(y_max, v);
    }
  }
  if (y_max <= options.y_min) y_max = options.y_min + 1.0;

  // Canvas of glyphs; later series overwrite earlier ones where they
  // collide (legend disambiguates).
  std::vector<std::string> canvas(options.height, std::string(options.width, ' '));
  auto col_of = [&](std::size_t point) {
    return points == 1 ? 0
                       : point * (options.width - 1) / (points - 1);
  };
  auto row_of = [&](double v) {
    const double t = std::clamp((v - options.y_min) / (y_max - options.y_min), 0.0, 1.0);
    const std::size_t from_bottom =
        static_cast<std::size_t>(std::lround(t * static_cast<double>(options.height - 1)));
    return options.height - 1 - from_bottom;
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& values = series[si].values;
    for (std::size_t p = 0; p < points; ++p) {
      canvas[row_of(values[p])][col_of(p)] = glyph;
      // Connect to the next point with interpolated glyphs.
      if (p + 1 < points) {
        const std::size_t c0 = col_of(p);
        const std::size_t c1 = col_of(p + 1);
        for (std::size_t c = c0 + 1; c < c1; ++c) {
          const double t = static_cast<double>(c - c0) / static_cast<double>(c1 - c0);
          const double v = values[p] + t * (values[p + 1] - values[p]);
          canvas[row_of(v)][c] = glyph;
        }
      }
    }
  }

  std::ostringstream os;
  if (!options.y_label.empty()) os << options.y_label << "\n";
  const std::size_t axis_width = 10;
  for (std::size_t r = 0; r < options.height; ++r) {
    const double row_value =
        options.y_min + (y_max - options.y_min) *
                            (static_cast<double>(options.height - 1 - r) /
                             static_cast<double>(options.height - 1));
    std::string label = (r == 0 || r == options.height - 1 || r == options.height / 2)
                            ? engineering(row_value)
                            : "";
    os << std::string(axis_width > label.size() ? axis_width - label.size() : 0, ' ')
       << label << " |" << canvas[r] << "\n";
  }
  os << std::string(axis_width, ' ') << " +" << std::string(options.width, '-') << "\n";
  os << std::string(axis_width + 2, ' ') << engineering(x_ticks.front());
  const std::string right = engineering(x_ticks.back());
  const std::size_t pad = options.width > engineering(x_ticks.front()).size() + right.size()
                              ? options.width - engineering(x_ticks.front()).size() -
                                    right.size()
                              : 1;
  os << std::string(pad, ' ') << right;
  if (!options.x_label.empty()) os << "  " << options.x_label;
  os << "\n  legend: ";
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (si != 0) os << ", ";
    os << kGlyphs[si % sizeof(kGlyphs)] << " " << series[si].label;
  }
  os << "\n";
  return os.str();
}

}  // namespace portabench
