// Monotonic wall-clock timer used by all harnesses.
#pragma once

#include <chrono>

namespace portabench {

/// Thin RAII-free stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace portabench
