// Table formatting: every bench binary prints the same Markdown/CSV table
// layout the paper's tables and figure series use, so EXPERIMENTS.md rows
// can be pasted straight from harness output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace portabench {

/// Column-oriented text table with Markdown and CSV renderers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with fixed precision ("-" for NaN,
  /// which is how the paper marks unsupported model/hardware pairs).
  static std::string num(double value, int precision = 3);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const noexcept { return headers_; }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const { return rows_.at(i); }

  /// Render as a GitHub-flavored Markdown table.
  [[nodiscard]] std::string to_markdown() const;

  /// Render as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Write to a stream in Markdown form.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace portabench
