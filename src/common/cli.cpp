#include "cli.hpp"

#include <sstream>
#include <stdexcept>

#include "error.hpp"

namespace portabench {

CliParser& CliParser::option(std::string name, std::string help, std::string default_value) {
  order_.push_back(name);
  opts_[std::move(name)] = Opt{std::move(help), std::move(default_value), false, false};
  return *this;
}

CliParser& CliParser::flag(std::string name, std::string help) {
  order_.push_back(name);
  opts_[std::move(name)] = Opt{std::move(help), "", true, false};
  return *this;
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw config_error("unexpected positional argument: " + arg);
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    auto it = opts_.find(arg);
    if (it == opts_.end()) throw config_error("unknown option: --" + arg);
    Opt& opt = it->second;
    if (opt.is_flag) {
      if (has_value) throw config_error("flag --" + arg + " does not take a value");
      opt.set = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) throw config_error("option --" + arg + " requires a value");
      value = argv[++i];
    }
    opt.value = std::move(value);
    opt.set = true;
  }
}

bool CliParser::has(const std::string& name) const {
  auto it = opts_.find(name);
  PB_EXPECTS(it != opts_.end());
  return it->second.set;
}

std::string CliParser::get(const std::string& name) const {
  auto it = opts_.find(name);
  PB_EXPECTS(it != opts_.end());
  return it->second.value;
}

long CliParser::get_int(const std::string& name) const {
  const std::string raw = get(name);
  try {
    std::size_t pos = 0;
    const long v = std::stol(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument(raw);
    return v;
  } catch (const std::exception&) {
    throw config_error("option --" + name + " expects an integer, got '" + raw + "'");
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string raw = get(name);
  try {
    std::size_t pos = 0;
    const double v = std::stod(raw, &pos);
    if (pos != raw.size()) throw std::invalid_argument(raw);
    return v;
  } catch (const std::exception&) {
    throw config_error("option --" + name + " expects a number, got '" + raw + "'");
  }
}

std::vector<std::size_t> CliParser::get_size_list(const std::string& name) const {
  const std::string raw = get(name);
  std::vector<std::size_t> out;
  std::istringstream is(raw);
  std::string token;
  while (std::getline(is, token, ',')) {
    try {
      std::size_t pos = 0;
      const long v = std::stol(token, &pos);
      if (pos != token.size() || v <= 0) throw std::invalid_argument(token);
      out.push_back(static_cast<std::size_t>(v));
    } catch (const std::exception&) {
      throw config_error("option --" + name + " expects positive integers, got '" + token + "'");
    }
  }
  if (out.empty()) throw config_error("option --" + name + " expects a non-empty list");
  return out;
}

std::string CliParser::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& name : order_) {
    const Opt& opt = opts_.at(name);
    os << "  --" << name;
    if (!opt.is_flag) {
      os << "=<value>";
      if (!opt.value.empty()) os << " (default: " << opt.value << ")";
    }
    os << "\n      " << opt.help << '\n';
  }
  return os.str();
}

}  // namespace portabench
