// ASCII line charts for terminal output.
//
// The figure benches print the modeled GFLOPS-vs-size series as tables
// for machines and as ASCII charts for humans, so a `bench/fig7...` run
// visually resembles the paper's Fig. 7 panels.  Multiple series share
// one canvas, each drawn with its own glyph, with a y-axis in engineering
// units and a legend.
#pragma once

#include <string>
#include <vector>

namespace portabench {

/// One line series: a label and y-values (x positions are shared).
struct PlotSeries {
  std::string label;
  std::vector<double> values;
};

struct PlotOptions {
  std::size_t width = 72;    ///< canvas columns (not counting the axis)
  std::size_t height = 16;   ///< canvas rows
  double y_min = 0.0;        ///< fixed lower bound (figures start at 0)
  bool y_auto_max = true;    ///< scale to the data's max
  double y_max = 1.0;        ///< used when y_auto_max is false
  std::string y_label;       ///< e.g. "GFLOP/s"
  std::string x_label;       ///< e.g. "matrix size n"
};

/// Render the chart.  All series must have the same, nonzero length; x
/// positions are the `x_ticks` values (used for the axis annotation).
/// Series are drawn in order with glyphs '*', '+', 'o', 'x', '#', '@'.
[[nodiscard]] std::string render_plot(const std::vector<PlotSeries>& series,
                                      const std::vector<double>& x_ticks,
                                      const PlotOptions& options = {});

}  // namespace portabench
