// Software IEEE 754 binary16 ("half") and bfloat16 types.
//
// The paper's half-precision experiments (Figs. 5c, 6c, 7c) depend on
// language-level FP16 support that neither this container's CPU nor its
// toolchain provides, so we implement binary16 from scratch: storage is a
// 16-bit pattern, arithmetic is performed by converting through float
// (which is exactly how Julia lowers Float16 on CPUs without native FP16
// ALUs, and mirrors the "half inputs, float accumulate" scheme of
// Fig. 1c).  Conversions implement round-to-nearest-even including
// subnormals, infinities, and NaN payloads.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <limits>

namespace portabench {

namespace detail {

/// Bit-identical reinterpretation between equally sized trivial types.
template <class To, class From>
inline To bit_cast(const From& from) noexcept {
  static_assert(sizeof(To) == sizeof(From));
  To to;
  std::memcpy(&to, &from, sizeof(To));
  return to;
}

/// Convert a float to the binary16 bit pattern with round-to-nearest-even.
std::uint16_t float_to_half_bits(float value) noexcept;

/// Convert a binary16 bit pattern to float (exact; every half is a float).
float half_bits_to_float(std::uint16_t bits) noexcept;

/// Convert a float to the bfloat16 bit pattern with round-to-nearest-even.
std::uint16_t float_to_bfloat_bits(float value) noexcept;

/// Convert a bfloat16 bit pattern to float (exact).
float bfloat_bits_to_float(std::uint16_t bits) noexcept;

}  // namespace detail

/// IEEE 754 binary16 value type.  All arithmetic round-trips through
/// float, matching the software-FP16 code paths the paper exercises.
class half {
 public:
  constexpr half() noexcept = default;
  explicit half(float value) noexcept : bits_(detail::float_to_half_bits(value)) {}
  explicit half(double value) noexcept : half(static_cast<float>(value)) {}
  explicit half(int value) noexcept : half(static_cast<float>(value)) {}

  /// Construct from a raw bit pattern (e.g. test vectors).
  static constexpr half from_bits(std::uint16_t bits) noexcept {
    half h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }

  explicit operator float() const noexcept { return detail::half_bits_to_float(bits_); }
  explicit operator double() const noexcept { return static_cast<double>(static_cast<float>(*this)); }

  [[nodiscard]] bool is_nan() const noexcept {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] bool is_inf() const noexcept {
    return (bits_ & 0x7FFFu) == 0x7C00u;
  }
  [[nodiscard]] bool is_zero() const noexcept { return (bits_ & 0x7FFFu) == 0; }
  [[nodiscard]] bool signbit() const noexcept { return (bits_ & 0x8000u) != 0; }
  /// True for subnormal (denormalized) values; zero is not subnormal.
  [[nodiscard]] bool is_subnormal() const noexcept {
    return (bits_ & 0x7C00u) == 0 && (bits_ & 0x03FFu) != 0;
  }

  friend half operator-(half h) noexcept {
    return from_bits(static_cast<std::uint16_t>(h.bits_ ^ 0x8000u));
  }
  friend half operator+(half a, half b) noexcept {
    return half(static_cast<float>(a) + static_cast<float>(b));
  }
  friend half operator-(half a, half b) noexcept {
    return half(static_cast<float>(a) - static_cast<float>(b));
  }
  friend half operator*(half a, half b) noexcept {
    return half(static_cast<float>(a) * static_cast<float>(b));
  }
  friend half operator/(half a, half b) noexcept {
    return half(static_cast<float>(a) / static_cast<float>(b));
  }
  half& operator+=(half o) noexcept { return *this = *this + o; }
  half& operator-=(half o) noexcept { return *this = *this - o; }
  half& operator*=(half o) noexcept { return *this = *this * o; }
  half& operator/=(half o) noexcept { return *this = *this / o; }

  // IEEE comparisons: NaN compares unordered; +0 == -0.
  friend bool operator==(half a, half b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if (a.is_zero() && b.is_zero()) return true;
    return a.bits_ == b.bits_;
  }
  friend bool operator!=(half a, half b) noexcept { return !(a == b); }
  friend bool operator<(half a, half b) noexcept {
    return static_cast<float>(a) < static_cast<float>(b);
  }
  friend bool operator>(half a, half b) noexcept { return b < a; }
  friend bool operator<=(half a, half b) noexcept {
    return static_cast<float>(a) <= static_cast<float>(b);
  }
  friend bool operator>=(half a, half b) noexcept { return b <= a; }

 private:
  std::uint16_t bits_ = 0;
};

/// bfloat16: float with the bottom 16 mantissa bits dropped.  Included
/// because the paper's half-precision discussion contrasts formats with
/// more exponent range; used by the half-precision example.
class bfloat16 {
 public:
  constexpr bfloat16() noexcept = default;
  explicit bfloat16(float value) noexcept : bits_(detail::float_to_bfloat_bits(value)) {}
  explicit bfloat16(double value) noexcept : bfloat16(static_cast<float>(value)) {}

  static constexpr bfloat16 from_bits(std::uint16_t bits) noexcept {
    bfloat16 b;
    b.bits_ = bits;
    return b;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }
  explicit operator float() const noexcept { return detail::bfloat_bits_to_float(bits_); }

  [[nodiscard]] bool is_nan() const noexcept {
    return (bits_ & 0x7F80u) == 0x7F80u && (bits_ & 0x007Fu) != 0;
  }
  [[nodiscard]] bool is_inf() const noexcept { return (bits_ & 0x7FFFu) == 0x7F80u; }

  friend bfloat16 operator+(bfloat16 a, bfloat16 b) noexcept {
    return bfloat16(static_cast<float>(a) + static_cast<float>(b));
  }
  friend bfloat16 operator*(bfloat16 a, bfloat16 b) noexcept {
    return bfloat16(static_cast<float>(a) * static_cast<float>(b));
  }
  friend bool operator==(bfloat16 a, bfloat16 b) noexcept {
    if (a.is_nan() || b.is_nan()) return false;
    if ((a.bits_ & 0x7FFFu) == 0 && (b.bits_ & 0x7FFFu) == 0) return true;
    return a.bits_ == b.bits_;
  }

 private:
  std::uint16_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, half h);
std::ostream& operator<<(std::ostream& os, bfloat16 b);

}  // namespace portabench

// numeric_limits so generic numeric code (RNG fill, stats) can treat half
// as a first-class arithmetic type.
template <>
class std::numeric_limits<portabench::half> {
 public:
  static constexpr bool is_specialized = true;
  static constexpr bool is_signed = true;
  static constexpr bool is_integer = false;
  static constexpr bool is_exact = false;
  static constexpr bool has_infinity = true;
  static constexpr bool has_quiet_NaN = true;
  static constexpr int digits = 11;       // implicit bit + 10 mantissa bits
  static constexpr int digits10 = 3;
  static constexpr int max_exponent = 16;
  static constexpr int min_exponent = -13;
  static portabench::half min() noexcept { return portabench::half::from_bits(0x0400); }
  static portabench::half max() noexcept { return portabench::half::from_bits(0x7BFF); }
  static portabench::half lowest() noexcept { return portabench::half::from_bits(0xFBFF); }
  static portabench::half epsilon() noexcept { return portabench::half::from_bits(0x1400); }
  static portabench::half infinity() noexcept { return portabench::half::from_bits(0x7C00); }
  static portabench::half quiet_NaN() noexcept { return portabench::half::from_bits(0x7E00); }
  static portabench::half denorm_min() noexcept { return portabench::half::from_bits(0x0001); }
};
