// Deterministic, splittable random number generation.
//
// The paper populates input matrices with random values (and notes that
// numpy cannot generate random Float16, forcing a matrix of ones — we
// reproduce that quirk in the Numba frontend).  xoshiro256** is used
// because it is the generator family Julia 1.7+ ships as its default,
// keeping the "Julia" frontend faithful; seeding uses splitmix64 as the
// xoshiro authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "half.hpp"

namespace portabench {

/// splitmix64: used to expand a single seed into a full xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x185AD213ull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); yields a statistically
  /// independent stream, used to give each thread its own generator.
  void jump() noexcept;

  /// Uniform in [0, 1) with 53 random mantissa bits.
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Fill a span with uniform random values in [0, 1); specialized per
/// element type so all precisions share one call site.
void fill_uniform(std::span<double> out, Xoshiro256& rng);
void fill_uniform(std::span<float> out, Xoshiro256& rng);
void fill_uniform(std::span<half> out, Xoshiro256& rng);

/// Fill with a constant; mirrors the paper's "input matrices were
/// populated with 1s" fallback for numpy Float16.
void fill_constant(std::span<double> out, double value);
void fill_constant(std::span<float> out, float value);
void fill_constant(std::span<half> out, half value);

}  // namespace portabench
