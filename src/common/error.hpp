// Contract checking in the style of the C++ Core Guidelines (I.5/I.7):
// preconditions and postconditions are stated at the interface and checked
// at run time where they cannot be checked statically (P.6).
#pragma once

#include <stdexcept>
#include <string>

namespace portabench {

/// Thrown when a stated precondition is violated by the caller.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant or postcondition fails.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown by the CLI / configuration layer on malformed user input.
class config_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void fail_expects(const char* cond, const char* file, int line) {
  throw precondition_error(std::string("precondition failed: ") + cond + " at " + file + ":" +
                           std::to_string(line));
}
[[noreturn]] inline void fail_ensures(const char* cond, const char* file, int line) {
  throw invariant_error(std::string("postcondition failed: ") + cond + " at " + file + ":" +
                        std::to_string(line));
}
}  // namespace detail

}  // namespace portabench

#define PB_EXPECTS(cond)                                                     \
  do {                                                                       \
    if (!(cond)) ::portabench::detail::fail_expects(#cond, __FILE__, __LINE__); \
  } while (false)

#define PB_ENSURES(cond)                                                     \
  do {                                                                       \
    if (!(cond)) ::portabench::detail::fail_ensures(#cond, __FILE__, __LINE__); \
  } while (false)
