// Floating-point precision taxonomy used across the whole study.
//
// The paper evaluates double (FP64), single (FP32), and — where the model
// supports it — half precision with single-precision accumulation
// (Fig. 1c).  kHalfIn keeps that asymmetry explicit: inputs are binary16,
// the output matrix is FP32.
#pragma once

#include <cstddef>
#include <string_view>

namespace portabench {

enum class Precision {
  kDouble,  ///< FP64 in, FP64 accumulate/out
  kSingle,  ///< FP32 in, FP32 accumulate/out
  kHalfIn,  ///< FP16 in, FP32 accumulate/out (paper Fig. 1c)
};

[[nodiscard]] constexpr std::string_view name(Precision p) noexcept {
  switch (p) {
    case Precision::kDouble: return "FP64";
    case Precision::kSingle: return "FP32";
    case Precision::kHalfIn: return "FP16";
  }
  return "?";
}

/// Bytes per *input* element.
[[nodiscard]] constexpr std::size_t input_bytes(Precision p) noexcept {
  switch (p) {
    case Precision::kDouble: return 8;
    case Precision::kSingle: return 4;
    case Precision::kHalfIn: return 2;
  }
  return 0;
}

/// Bytes per *output* element (half inputs accumulate into FP32).
[[nodiscard]] constexpr std::size_t output_bytes(Precision p) noexcept {
  switch (p) {
    case Precision::kDouble: return 8;
    case Precision::kSingle: return 4;
    case Precision::kHalfIn: return 4;
  }
  return 0;
}

inline constexpr Precision kAllPrecisions[] = {Precision::kDouble, Precision::kSingle,
                                               Precision::kHalfIn};

}  // namespace portabench
