// Branch-free half/bfloat16 <-> float conversion: one core, every width.
//
// The paper's FP16 scheme (Fig. 1c: half inputs, float accumulate)
// converts every operand on the way into a kernel, so conversion cost
// is inner-loop cost.  The original per-element converters in half.cpp
// were branchy out-of-line calls; this header re-expresses the exact
// same rounding logic (round-to-nearest-even, subnormals, signed zero,
// overflow-to-inf, NaN payload quieting) as straight-line mask/select
// arithmetic over simrt::simd packs, templated on the lane count:
//
//   W == 1             the scalar conversion half.cpp now calls — the
//                      single shared core, no duplicated RNE/subnormal
//                      logic anywhere.
//   W == native        the batched convert_n()/\*_n() entry points the
//                      GEMM packers and stencil fronts use, dispatched
//                      across ISA tiers (vector / AVX2 / AVX-512).
//
// Each core is verified exhaustively against the original branchy
// implementation (all 2^16 half patterns; float->half was checked over
// all 2^32 float patterns when the core was derived, and the unit tests
// pin the full 2^16-image plus boundary/NaN/subnormal sweeps).  Two
// non-obvious tricks, both bit-exact:
//
//   * float->half subnormals: scaling |f| by 2^24 is exact (power of
//     two, result has <= 24 significant bits), so adding the magic
//     constant 12582912.0f = 0x4B400000 performs the shift-and-RNE in
//     one IEEE add; the half pattern falls out of the low bits.
//   * half->float subnormals: after the exponent rebias, subtracting
//     the magic 2^-14 (0x38800000) renormalizes exactly (the subtract
//     is exact by Sterbenz-style cancellation), yielding the correctly
//     normalized float without a bit-scan loop.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/half.hpp"
#include "simrt/simd.hpp"

namespace portabench {

namespace detail {

/// float bits -> half bits, one lane per 32-bit element (result in the
/// low 16 bits of each lane).  Branch-free RNE with subnormal magic.
template <std::size_t W>
[[nodiscard]] inline simrt::simd<std::uint32_t, W> float_to_half_core(
    const simrt::simd<std::uint32_t, W>& f) noexcept {
  using U = simrt::simd<std::uint32_t, W>;
  using F = simrt::simd<float, W>;
  const U sign = (f >> 16) & U(0x8000u);
  const U abs = f & U(0x7FFFFFFFu);

  // Normal halves: rebias the exponent and round-to-nearest-even on the
  // 13 dropped mantissa bits, carrying into the exponent when it rounds
  // up (which is exactly the right overflow behaviour).
  const U num = abs - U(0x38000000u);
  const U out_normal = (num + U(0x0FFFu) + ((num >> 13) & U(1u))) >> 13;

  // Subnormal halves: exact 2^24 scale, then the shift-and-round magic.
  const F scaled = fma(abs.template bit_cast_to<float>(), F(16777216.0f), F(12582912.0f));
  const U out_sub = scaled.template bit_cast_to<std::uint32_t>() - U(0x4B400000u);

  // Inf/NaN: keep a truncated payload, quieting payloads that truncate
  // to zero so a NaN never becomes an infinity.
  const U payload = (abs >> 13) & U(0x03FFu);
  const U quiet = U::select(payload.eq(U(0u)), U(0x0200u), payload);
  const U naninf = U(0x7C00u) | U::select(U(0x7F800000u).lt(abs), quiet, U(0u));

  U out = U::select(abs.lt(U(0x38800000u)), out_sub, out_normal);
  out = U::select(abs.lt(U(0x47800000u)), out, U(0x7C00u));  // overflow -> inf
  out = U::select(abs.lt(U(0x7F800000u)), out, naninf);
  return sign | out;
}

/// half bits (zero-extended into 32-bit lanes) -> float bits.  Exact.
template <std::size_t W>
[[nodiscard]] inline simrt::simd<std::uint32_t, W> half_to_float_core(
    const simrt::simd<std::uint32_t, W>& h) noexcept {
  using U = simrt::simd<std::uint32_t, W>;
  using F = simrt::simd<float, W>;
  const U sign = (h & U(0x8000u)) << 16;
  U o = (h & U(0x7FFFu)) << 13;
  const U exp = o & U(0x0F800000u);
  o = o + U(0x38000000u);  // exponent rebias 15 -> 127
  // Inf/NaN: push the exponent to all-ones (payload already in place).
  o = o + U::select(exp.eq(U(0x0F800000u)), U(0x38000000u), U(0u));
  // Subnormals (and zero): renormalize with one exact float subtract.
  const U magic = U(0x38800000u);  // 2^-14, the smallest normal half
  const F sub = ((o - U(0x38000000u)) + magic).template bit_cast_to<float>() -
                magic.template bit_cast_to<float>();
  o = U::select(exp.eq(U(0u)), sub.template bit_cast_to<std::uint32_t>(), o);
  return sign | o;
}

/// float bits -> bfloat16 bits: RNE truncation of the low 16 bits, NaN
/// payload forced nonzero (bit 6) so a NaN never truncates to inf.
template <std::size_t W>
[[nodiscard]] inline simrt::simd<std::uint32_t, W> float_to_bfloat_core(
    const simrt::simd<std::uint32_t, W>& f) noexcept {
  using U = simrt::simd<std::uint32_t, W>;
  const U lsb = (f >> 16) & U(1u);
  const U rne = (f + U(0x7FFFu) + lsb) >> 16;
  const U nan_out = (f >> 16) | U(0x0040u);
  const auto is_nan =
      (f & U(0x7F800000u)).eq(U(0x7F800000u)) & ~(f & U(0x007FFFFFu)).eq(U(0u));
  return U::select(is_nan, nan_out, rne);
}

// --- width-generic batched loops (main blocks + masked tail) ---------------

template <std::size_t W>
inline void half_to_float_w(const std::uint16_t* src, float* dst, std::size_t n) noexcept {
  using U16 = simrt::simd<std::uint16_t, W>;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const auto h = U16::load(src + i).template convert_to<std::uint32_t>();
    half_to_float_core<W>(h).template bit_cast_to<float>().store(dst + i);
  }
  if (i < n) {
    const auto h = U16::load_partial(src + i, n - i).template convert_to<std::uint32_t>();
    half_to_float_core<W>(h).template bit_cast_to<float>().store_partial(dst + i, n - i);
  }
}

template <std::size_t W>
inline void float_to_half_w(const float* src, std::uint16_t* dst, std::size_t n) noexcept {
  using F = simrt::simd<float, W>;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const auto f = F::load(src + i).template bit_cast_to<std::uint32_t>();
    float_to_half_core<W>(f).template convert_to<std::uint16_t>().store(dst + i);
  }
  if (i < n) {
    const auto f = F::load_partial(src + i, n - i).template bit_cast_to<std::uint32_t>();
    float_to_half_core<W>(f).template convert_to<std::uint16_t>().store_partial(dst + i, n - i);
  }
}

template <std::size_t W>
inline void bfloat_to_float_w(const std::uint16_t* src, float* dst, std::size_t n) noexcept {
  using U16 = simrt::simd<std::uint16_t, W>;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const auto b = U16::load(src + i).template convert_to<std::uint32_t>();
    (b << 16).template bit_cast_to<float>().store(dst + i);
  }
  if (i < n) {
    const auto b = U16::load_partial(src + i, n - i).template convert_to<std::uint32_t>();
    (b << 16).template bit_cast_to<float>().store_partial(dst + i, n - i);
  }
}

template <std::size_t W>
inline void float_to_bfloat_w(const float* src, std::uint16_t* dst, std::size_t n) noexcept {
  using F = simrt::simd<float, W>;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const auto f = F::load(src + i).template bit_cast_to<std::uint32_t>();
    float_to_bfloat_core<W>(f).template convert_to<std::uint16_t>().store(dst + i);
  }
  if (i < n) {
    const auto f = F::load_partial(src + i, n - i).template bit_cast_to<std::uint32_t>();
    float_to_bfloat_core<W>(f).template convert_to<std::uint16_t>().store_partial(dst + i,
                                                                                  n - i);
  }
}

// --- ISA tier wrappers ------------------------------------------------------
// Conversion is pure per-element (no accumulation), so any width is
// bit-safe; AVX-512 runs 16 lanes, AVX2/vector run the native 8.

#if PORTABENCH_SIMD_HAS_X86_TIERS
PORTABENCH_SIMD_TARGET_AVX512 inline void half_to_float_avx512(const std::uint16_t* s,
                                                               float* d, std::size_t n) noexcept {
  half_to_float_w<16>(s, d, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline void half_to_float_avx2(const std::uint16_t* s, float* d,
                                                           std::size_t n) noexcept {
  half_to_float_w<8>(s, d, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline void float_to_half_avx512(const float* s,
                                                               std::uint16_t* d,
                                                               std::size_t n) noexcept {
  float_to_half_w<16>(s, d, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline void float_to_half_avx2(const float* s, std::uint16_t* d,
                                                           std::size_t n) noexcept {
  float_to_half_w<8>(s, d, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline void bfloat_to_float_avx512(const std::uint16_t* s,
                                                                 float* d,
                                                                 std::size_t n) noexcept {
  bfloat_to_float_w<16>(s, d, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline void bfloat_to_float_avx2(const std::uint16_t* s, float* d,
                                                             std::size_t n) noexcept {
  bfloat_to_float_w<8>(s, d, n);
}
PORTABENCH_SIMD_TARGET_AVX512 inline void float_to_bfloat_avx512(const float* s,
                                                                 std::uint16_t* d,
                                                                 std::size_t n) noexcept {
  float_to_bfloat_w<16>(s, d, n);
}
PORTABENCH_SIMD_TARGET_AVX2 inline void float_to_bfloat_avx2(const float* s, std::uint16_t* d,
                                                             std::size_t n) noexcept {
  float_to_bfloat_w<8>(s, d, n);
}
#endif

}  // namespace detail

// --- public batched entry points -------------------------------------------
// The *_n_tier forms take an explicit tier so tests and benches can pin
// (and cross-check) every tier the host supports; the *_n forms dispatch
// to the best available tier.  Results are bit-identical at every tier.

inline void half_to_float_n_tier(const std::uint16_t* src, float* dst, std::size_t n,
                                 simrt::SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == simrt::SimdTier::kAvx512) return detail::half_to_float_avx512(src, dst, n);
  if (tier == simrt::SimdTier::kAvx2) return detail::half_to_float_avx2(src, dst, n);
#endif
#if PORTABENCH_SIMD_HAS_VECTOR_EXT
  if (tier != simrt::SimdTier::kScalar) {
    return detail::half_to_float_w<simrt::native_lanes<float>>(src, dst, n);
  }
#endif
  (void)tier;
  detail::half_to_float_w<1>(src, dst, n);
}

inline void float_to_half_n_tier(const float* src, std::uint16_t* dst, std::size_t n,
                                 simrt::SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == simrt::SimdTier::kAvx512) return detail::float_to_half_avx512(src, dst, n);
  if (tier == simrt::SimdTier::kAvx2) return detail::float_to_half_avx2(src, dst, n);
#endif
#if PORTABENCH_SIMD_HAS_VECTOR_EXT
  if (tier != simrt::SimdTier::kScalar) {
    return detail::float_to_half_w<simrt::native_lanes<float>>(src, dst, n);
  }
#endif
  (void)tier;
  detail::float_to_half_w<1>(src, dst, n);
}

inline void bfloat_to_float_n_tier(const std::uint16_t* src, float* dst, std::size_t n,
                                   simrt::SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == simrt::SimdTier::kAvx512) return detail::bfloat_to_float_avx512(src, dst, n);
  if (tier == simrt::SimdTier::kAvx2) return detail::bfloat_to_float_avx2(src, dst, n);
#endif
#if PORTABENCH_SIMD_HAS_VECTOR_EXT
  if (tier != simrt::SimdTier::kScalar) {
    return detail::bfloat_to_float_w<simrt::native_lanes<float>>(src, dst, n);
  }
#endif
  (void)tier;
  detail::bfloat_to_float_w<1>(src, dst, n);
}

inline void float_to_bfloat_n_tier(const float* src, std::uint16_t* dst, std::size_t n,
                                   simrt::SimdTier tier) noexcept {
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if (tier == simrt::SimdTier::kAvx512) return detail::float_to_bfloat_avx512(src, dst, n);
  if (tier == simrt::SimdTier::kAvx2) return detail::float_to_bfloat_avx2(src, dst, n);
#endif
#if PORTABENCH_SIMD_HAS_VECTOR_EXT
  if (tier != simrt::SimdTier::kScalar) {
    return detail::float_to_bfloat_w<simrt::native_lanes<float>>(src, dst, n);
  }
#endif
  (void)tier;
  detail::float_to_bfloat_w<1>(src, dst, n);
}

inline void half_to_float_n(const std::uint16_t* src, float* dst, std::size_t n) noexcept {
  half_to_float_n_tier(src, dst, n, simrt::simd_dispatch_tier());
}
inline void float_to_half_n(const float* src, std::uint16_t* dst, std::size_t n) noexcept {
  float_to_half_n_tier(src, dst, n, simrt::simd_dispatch_tier());
}
inline void bfloat_to_float_n(const std::uint16_t* src, float* dst, std::size_t n) noexcept {
  bfloat_to_float_n_tier(src, dst, n, simrt::simd_dispatch_tier());
}
inline void float_to_bfloat_n(const float* src, std::uint16_t* dst, std::size_t n) noexcept {
  float_to_bfloat_n_tier(src, dst, n, simrt::simd_dispatch_tier());
}

// Typed overloads over the value types.  half/bfloat16 are single
// uint16_t bit patterns (static_asserted), and pack loads go through
// memcpy, so treating their storage as uint16 addresses is well-defined.
static_assert(sizeof(half) == sizeof(std::uint16_t) &&
              sizeof(bfloat16) == sizeof(std::uint16_t));

inline void convert_n(const half* src, float* dst, std::size_t n) noexcept {
  half_to_float_n(reinterpret_cast<const std::uint16_t*>(src), dst, n);
}
inline void convert_n(const float* src, half* dst, std::size_t n) noexcept {
  float_to_half_n(src, reinterpret_cast<std::uint16_t*>(dst), n);
}
inline void convert_n(const bfloat16* src, float* dst, std::size_t n) noexcept {
  bfloat_to_float_n(reinterpret_cast<const std::uint16_t*>(src), dst, n);
}
inline void convert_n(const float* src, bfloat16* dst, std::size_t n) noexcept {
  float_to_bfloat_n(src, reinterpret_cast<std::uint16_t*>(dst), n);
}

}  // namespace portabench
