// SpMV frontends: the second workload through the same ModelRunner-style
// interface.
//
// Each programming model keeps its native sparse convention (Section VI
// future-work extension; see src/spmv): CSR row-parallel loops for
// C/OpenMP, Kokkos, and Numba on the host; Julia ingests CSC
// (SparseMatrixCSC) and parallelizes columns with privatized output; on
// the GPU the vendor/Numba path is the scalar row-per-thread kernel and
// Julia/Kokkos use the warp-per-row vector kernel their ecosystems ship.
// Because SpMV is bandwidth-bound, the modeled per-family efficiencies
// are much flatter than GEMM's — exactly the contrast the bench shows.
#pragma once

#include <memory>

#include "runner.hpp"
#include "spmv/sparse.hpp"

namespace portabench::models {

struct SpmvRunConfig {
  std::size_t rows = 512;
  std::size_t nnz_per_row = 12;
  std::uint64_t seed = 0x5EED;
  bool verify = true;
  std::size_t host_threads = 2;
};

struct SpmvRunResult {
  double checksum = 0.0;
  double max_error = 0.0;
  bool verified = false;
  double host_seconds = 0.0;
  double model_gflops = 0.0;  ///< bandwidth-roofline prediction x family factor
  gpusim::DeviceCounters gpu;
};

/// Abstract SpMV frontend (one per family x platform, like ModelRunner).
class SpmvRunner {
 public:
  virtual ~SpmvRunner() = default;
  [[nodiscard]] virtual Family family() const noexcept = 0;
  [[nodiscard]] virtual Platform platform() const noexcept = 0;
  [[nodiscard]] std::string_view name() const {
    return perfmodel::implementation_name(platform(), family());
  }
  [[nodiscard]] virtual SpmvRunResult run(const SpmvRunConfig& config) = 0;

  /// Bandwidth-bound efficiency vs the platform's vendor SpMV: flat
  /// compared with GEMM (codegen matters little when DRAM is the wall);
  /// only Numba's checked gathers and Python-side loop overheads bite.
  [[nodiscard]] static double family_bandwidth_factor(Family f);
};

/// Build the SpMV frontend; nullptr for unsupported combinations (Numba
/// on AMD GPUs).
[[nodiscard]] std::unique_ptr<SpmvRunner> make_spmv_runner(Platform p, Family f);

}  // namespace portabench::models
