#include "cpu_runners.hpp"
#include "gpu_runners.hpp"
#include "runner.hpp"

namespace portabench::models {

std::unique_ptr<ModelRunner> make_runner(Platform p, Family f) {
  if (perfmodel::is_gpu(p)) {
    // Numba's AMD GPU target is deprecated (Section II-a).
    if (f == Family::kNumba && p == Platform::kCrusherGpu) return nullptr;
    switch (f) {
      case Family::kVendor: return std::make_unique<VendorGpuRunner>(p);
      case Family::kKokkos: return std::make_unique<KokkosGpuRunner>(p);
      case Family::kJulia: return std::make_unique<JuliaGpuRunner>(p);
      case Family::kNumba: return std::make_unique<NumbaGpuRunner>(p);
    }
    return nullptr;
  }
  switch (f) {
    case Family::kVendor: return std::make_unique<COpenMPRunner>(p);
    case Family::kKokkos: return std::make_unique<KokkosCpuRunner>(p);
    case Family::kJulia: return std::make_unique<JuliaCpuRunner>(p);
    case Family::kNumba: return std::make_unique<NumbaCpuRunner>(p);
  }
  return nullptr;
}

std::unique_ptr<ModelRunner> make_optimized_cpu_runner(Platform p) {
  if (perfmodel::is_gpu(p)) return nullptr;
  return std::make_unique<OptimizedCppRunner>(p);
}

}  // namespace portabench::models
