// GPU frontends: CUDA, HIP, Kokkos-CUDA/HIP, Julia CUDA.jl / AMDGPU.jl,
// and Numba-CUDA.
//
// Each runner drives the gpusim device with its Fig. 3 kernel under the
// model's own semantics: raw row-major pointers (CUDA/HIP, Numba) vs
// column-major device arrays (Julia), the paper's 32x32 thread blocks for
// the vendor/Julia/Numba kernels, and Kokkos' template-time flat launch
// configuration (the configuration question Section IV-B raises for the
// A100 results).  H2D/D2H transfers go through DeviceBuffer so the
// counters reproduce what the authors checked with nvprof.
#pragma once

#include "gemm/kernels_gpu.hpp"
#include "runner.hpp"

namespace portabench::models {

namespace detail {

/// Shared machinery for GPU frontends.
class GpuRunnerBase : public ModelRunner {
 public:
  explicit GpuRunnerBase(Platform platform);
  [[nodiscard]] Platform platform() const noexcept override { return platform_; }
  [[nodiscard]] RunResult run(const RunConfig& config) override;

  /// The launch geometry this model uses (32x32 unless overridden).
  [[nodiscard]] virtual gemm::GpuLaunchConfig launch_config() const {
    return gemm::GpuLaunchConfig{};
  }

  /// The simulated device (inspect counters, spec).
  [[nodiscard]] gpusim::DeviceContext& device() noexcept { return device_; }

 protected:
  [[nodiscard]] virtual double jit_cost_s() const { return 0.0; }
  [[nodiscard]] virtual bool fp16_fill_ones() const { return false; }
  /// Multiplier applied to the family's modeled rate (abstraction layers
  /// like KernelAbstractions cost a little on top of their back end).
  [[nodiscard]] virtual double model_rate_factor() const { return 1.0; }
  virtual void execute(const RunConfig& config, Precision prec, RunResult& result) = 0;

  bool jit_warmed_ = false;
  gpusim::DeviceContext device_;

 private:
  Platform platform_;
};

}  // namespace detail

/// Vendor kernel: CUDA on the A100, HIP on the MI250X (Fig. 3a).
class VendorGpuRunner final : public detail::GpuRunnerBase {
 public:
  using GpuRunnerBase::GpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kVendor; }

 private:
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

/// Kokkos with the CUDA/HIP back end.  Uses the flat 256x1 block shape
/// Kokkos' MDRange template heuristics pick, which strides the row-major C
/// poorly — the modeled source of the paper's A100 efficiency of ~0.26.
class KokkosGpuRunner final : public detail::GpuRunnerBase {
 public:
  using GpuRunnerBase::GpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kKokkos; }
  [[nodiscard]] gemm::GpuLaunchConfig launch_config() const override {
    gemm::GpuLaunchConfig cfg;
    cfg.block = {256, 1, 1};
    return cfg;
  }

 private:
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

/// Julia CUDA.jl / AMDGPU.jl (Figs. 3b/3c): column-major device arrays.
class JuliaGpuRunner final : public detail::GpuRunnerBase {
 public:
  using GpuRunnerBase::GpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kJulia; }

 private:
  double jit_cost_s() const override { return 2.5; }  // first GPU kernel compile
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

/// Julia KernelAbstractions.jl: the *portable* Julia GPU layer the paper
/// mentions alongside the vendor-specific CUDA.jl/AMDGPU.jl packages
/// ("Julia also provides the KernelAbstractions.jl package for writing
/// portable kernels while still maintaining dependence on either CUArray
/// or ROCArray", Section III-B).  One kernel source targets both GPU
/// platforms; the abstraction costs a small extra dispatch overhead over
/// the direct backends.  An extension beyond the paper's measured set,
/// used by the ka_portability example.
class KernelAbstractionsRunner final : public detail::GpuRunnerBase {
 public:
  using GpuRunnerBase::GpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kJulia; }
  [[nodiscard]] std::string_view name() const override {
    return "Julia KernelAbstractions.jl";
  }
  /// Extra dispatch overhead of the abstraction layer vs the direct
  /// back end, applied to the modeled rate.
  static constexpr double kAbstractionFactor = 0.97;

 private:
  double jit_cost_s() const override { return 3.0; }
  double model_rate_factor() const override { return kAbstractionFactor; }
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

/// Numba-CUDA (Fig. 3d): cuda.grid(2) over row-major DeviceNDArrays.
class NumbaGpuRunner final : public detail::GpuRunnerBase {
 public:
  using GpuRunnerBase::GpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kNumba; }

 private:
  double jit_cost_s() const override { return 1.2; }
  bool fp16_fill_ones() const override { return true; }
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

}  // namespace portabench::models
