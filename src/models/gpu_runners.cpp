#include "gpu_runners.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"
#include "perfmodel/predict.hpp"
#include "portacheck/portacheck.hpp"
#include "simrt/mdarray.hpp"

namespace portabench::models {

namespace detail {

namespace {

gpusim::GpuSpec functional_spec(Platform p) {
  PB_EXPECTS(perfmodel::is_gpu(p));
  return p == Platform::kCrusherGpu ? gpusim::GpuSpec::mi250x_gcd() : gpusim::GpuSpec::a100();
}

}  // namespace

GpuRunnerBase::GpuRunnerBase(Platform platform)
    : device_(functional_spec(platform)), platform_(platform) {
  PB_EXPECTS(perfmodel::is_gpu(platform));
}

RunResult GpuRunnerBase::run(const RunConfig& config) {
  PB_EXPECTS(config.n > 0);
  PB_EXPECTS(supports(config.precision));

  RunResult result;
  if (!jit_warmed_) {
    result.jit_seconds = jit_cost_s();
    jit_warmed_ = true;
  }

  device_.reset_counters();
  execute(config, config.precision, result);
  result.gpu = device_.counters();

  if (auto pred = perfmodel::predict(platform(), family(), config.precision, config.n)) {
    result.model_gflops = pred->gflops * model_rate_factor();
  }
  return result;
}

namespace {

/// Host-side preparation + device round trip + verification for a GPU
/// GEMM.  `column_major` selects the Julia storage convention; `kernel`
/// has signature kernel(ctx, cfg, dA, dB, dC, m, n, k).
template <class T, class Acc, class Kernel>
void run_gpu_gemm(gpusim::DeviceContext& device, const gemm::GpuLaunchConfig& cfg,
                  const RunConfig& config, bool column_major, bool fill_ones,
                  Kernel&& kernel, RunResult& result) {
  const std::size_t n = config.n;
  const std::size_t elems = n * n;

  // Host matrices in the model's layout (linearized).
  std::vector<T> hA(elems);
  std::vector<T> hB(elems);
  std::vector<Acc> hC(elems, Acc{});

  Xoshiro256 rng(config.seed);
  if (fill_ones) {
    fill_constant(std::span<T>(hA), T(1.0f));
    fill_constant(std::span<T>(hB), T(1.0f));
  } else {
    fill_uniform(std::span<T>(hA), rng);
    fill_uniform(std::span<T>(hB), rng);
  }

  gpusim::DeviceBuffer<T> dA(device, elems);
  gpusim::DeviceBuffer<T> dB(device, elems);
  gpusim::DeviceBuffer<Acc> dC(device, elems);

  Timer timer;
  dA.copy_from_host(hA);
  dB.copy_from_host(hB);
  if (portacheck::active()) {
    // Sanitized run: device accesses go through shadow buffers so the
    // launch's SIMT lanes are race- and bounds-checked.
    portacheck::ShadowDeviceBuffer<T> sA(dA, "dA");
    portacheck::ShadowDeviceBuffer<T> sB(dB, "dB");
    portacheck::ShadowDeviceBuffer<Acc> sC(dC, "dC");
    kernel(device, cfg, sA, sB, sC, n, n, n);
  } else {
    kernel(device, cfg, dA, dB, dC, n, n, n);
  }
  dC.copy_to_host(std::span<Acc>(hC));
  result.host_seconds = timer.seconds();
  result.checksum = gemm::checksum(std::span<const Acc>(hC));

  if (config.verify) {
    // Reinterpret the flat buffers as views in the kernel's layout and
    // compare against the reference GEMM on the same inputs.
    auto wrap = [&](std::span<T> flat) {
      if (column_major) {
        simrt::View2<T, simrt::LayoutLeft> v(n, n);
        for (std::size_t j = 0; j < n; ++j) {
          for (std::size_t i = 0; i < n; ++i) v(i, j) = flat[i + j * n];
        }
        return v;
      }
      simrt::View2<T, simrt::LayoutLeft> v(n, n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) v(i, j) = flat[i * n + j];
      }
      return v;
    };
    auto A = wrap(std::span<T>(hA));
    auto B = wrap(std::span<T>(hB));
    simrt::View2<Acc, simrt::LayoutLeft> C_ref(n, n);
    gemm::reference_gemm<Acc>(A, B, C_ref);

    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t idx = column_major ? i + j * n : i * n + j;
        worst = std::max(worst, std::abs(static_cast<double>(hC[idx]) -
                                         static_cast<double>(C_ref(i, j))));
      }
    }
    result.max_error = worst;
    result.tolerance = gemm::gemm_tolerance(config.precision, n);
    result.verified = result.max_error <= result.tolerance;
  }
}

/// Precision dispatch shared by the GPU frontends.
template <class Body>
void dispatch_gpu_precision(Precision prec, Body&& body) {
  switch (prec) {
    case Precision::kDouble: body.template operator()<double, double>(); break;
    case Precision::kSingle: body.template operator()<float, float>(); break;
    case Precision::kHalfIn: body.template operator()<half, float>(); break;
  }
}

}  // namespace

}  // namespace detail

void VendorGpuRunner::execute(const RunConfig& config, Precision prec, RunResult& result) {
  detail::dispatch_gpu_precision(prec, [&]<class T, class Acc>() {
    detail::run_gpu_gemm<T, Acc>(
        device_, launch_config(), config, /*column_major=*/false, /*fill_ones=*/false,
        [](auto& ctx, const auto& cfg, const auto& dA, const auto& dB, auto& dC,
           std::size_t m, std::size_t n, std::size_t k) {
          gemm::gemm_cuda_style<Acc>(ctx, cfg, dA, dB, dC, m, n, k);
        },
        result);
  });
}

void KokkosGpuRunner::execute(const RunConfig& config, Precision prec, RunResult& result) {
  detail::dispatch_gpu_precision(prec, [&]<class T, class Acc>() {
    detail::run_gpu_gemm<T, Acc>(
        device_, launch_config(), config, /*column_major=*/false, /*fill_ones=*/false,
        [](auto& ctx, const auto& cfg, const auto& dA, const auto& dB, auto& dC,
           std::size_t m, std::size_t n, std::size_t k) {
          // Kokkos' MDRange lowering: first index on the fast thread
          // dimension (transposed vs Fig. 3a) with a template-chosen flat
          // block — the coalescing penalty the A100 numbers reflect.
          gemm::gemm_kokkos_gpu_style<Acc>(ctx, cfg, dA, dB, dC, m, n, k);
        },
        result);
  });
}

void JuliaGpuRunner::execute(const RunConfig& config, Precision prec, RunResult& result) {
  detail::dispatch_gpu_precision(prec, [&]<class T, class Acc>() {
    detail::run_gpu_gemm<T, Acc>(
        device_, launch_config(), config, /*column_major=*/true, /*fill_ones=*/false,
        [](auto& ctx, const auto& cfg, const auto& dA, const auto& dB, auto& dC,
           std::size_t m, std::size_t n, std::size_t k) {
          gemm::gemm_julia_gpu_style<Acc>(ctx, cfg, dA, dB, dC, m, n, k);
        },
        result);
  });
}

void KernelAbstractionsRunner::execute(const RunConfig& config, Precision prec,
                                       RunResult& result) {
  // KernelAbstractions lowers to the same vendor back end kernels as
  // CUDA.jl/AMDGPU.jl (column-major device arrays, @index(Global) thread
  // mapping), so the functional path is identical; the modeled rate pays
  // the abstraction's dispatch cost.
  detail::dispatch_gpu_precision(prec, [&]<class T, class Acc>() {
    detail::run_gpu_gemm<T, Acc>(
        device_, launch_config(), config, /*column_major=*/true, /*fill_ones=*/false,
        [](auto& ctx, const auto& cfg, const auto& dA, const auto& dB, auto& dC,
           std::size_t m, std::size_t n, std::size_t k) {
          gemm::gemm_julia_gpu_style<Acc>(ctx, cfg, dA, dB, dC, m, n, k);
        },
        result);
  });
}

void NumbaGpuRunner::execute(const RunConfig& config, Precision prec, RunResult& result) {
  const bool ones = prec == Precision::kHalfIn;  // numpy Float16 RNG gap
  detail::dispatch_gpu_precision(prec, [&]<class T, class Acc>() {
    detail::run_gpu_gemm<T, Acc>(
        device_, launch_config(), config, /*column_major=*/false, ones,
        [](auto& ctx, const auto& cfg, const auto& dA, const auto& dB, auto& dC,
           std::size_t m, std::size_t n, std::size_t k) {
          gemm::gemm_numba_cuda_style<Acc>(ctx, cfg, dA, dB, dC, m, n, k);
        },
        result);
  });
}

}  // namespace portabench::models
