#include "spmv_runners.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/timer.hpp"
#include "spmv/kernels.hpp"
#include "spmv/model.hpp"

namespace portabench::models {

namespace {

using spmv::CsrMatrix;

double vendor_spmv_gflops(Platform p, std::size_t rows, std::size_t nnz) {
  if (perfmodel::is_gpu(p)) {
    const auto spec = p == Platform::kCrusherGpu ? perfmodel::GpuPerfSpec::mi250x_gcd()
                                                 : perfmodel::GpuPerfSpec::a100();
    return spmv::predict_spmv_gpu(spec, rows, nnz).gflops;
  }
  const auto spec = p == Platform::kCrusherCpu ? perfmodel::CpuSpec::epyc_7a53()
                                               : perfmodel::CpuSpec::ampere_altra();
  return spmv::predict_spmv_cpu(spec, rows, nnz).gflops;
}

/// Shared run logic: build the matrix, execute via `execute`, verify.
template <class Execute>
SpmvRunResult run_spmv(Platform platform, Family family, const SpmvRunConfig& config,
                       Execute&& execute) {
  PB_EXPECTS(config.rows > 0 && config.nnz_per_row > 0);
  const auto A = spmv::random_csr<double>(config.rows, config.rows, config.nnz_per_row,
                                          config.seed);
  std::vector<double> x(config.rows);
  Xoshiro256 rng(config.seed + 1);
  fill_uniform(std::span<double>(x), rng);
  std::vector<double> y(config.rows, -1.0);

  SpmvRunResult result;
  Timer timer;
  execute(A, std::span<const double>(x), std::span<double>(y), result);
  result.host_seconds = timer.seconds();
  for (double v : y) result.checksum += v;

  if (config.verify) {
    std::vector<double> reference(config.rows);
    spmv::spmv_reference<double>(A, std::span<const double>(x),
                                 std::span<double>(reference));
    double worst = 0.0;
    for (std::size_t i = 0; i < config.rows; ++i) {
      worst = std::max(worst, std::abs(y[i] - reference[i]));
    }
    result.max_error = worst;
    result.verified = worst <= 1e-12 * static_cast<double>(config.rows);
  }

  result.model_gflops = vendor_spmv_gflops(platform, A.rows, A.nnz()) *
                        SpmvRunner::family_bandwidth_factor(family);
  return result;
}

/// Host frontends: CSR row-parallel (vendor/Kokkos/Numba) or CSC
/// column-parallel (Julia).
class CpuSpmvRunner final : public SpmvRunner {
 public:
  CpuSpmvRunner(Platform platform, Family family) : platform_(platform), family_(family) {}
  [[nodiscard]] Family family() const noexcept override { return family_; }
  [[nodiscard]] Platform platform() const noexcept override { return platform_; }

  SpmvRunResult run(const SpmvRunConfig& config) override {
    return run_spmv(platform_, family_, config,
                    [&](const CsrMatrix<double>& A, std::span<const double> x,
                        std::span<double> y, SpmvRunResult&) {
                      simrt::ThreadsSpace space(config.host_threads);
                      if (family_ == Family::kJulia) {
                        const auto csc = spmv::csr_to_csc(A);
                        spmv::spmv_csc_column_parallel<double>(space, csc, x, y);
                      } else {
                        spmv::spmv_csr_row_parallel<double>(space, A, x, y);
                      }
                    });
  }

 private:
  Platform platform_;
  Family family_;
};

/// Device frontends: scalar kernel (vendor/Numba) or warp-per-row vector
/// kernel (Julia/Kokkos).
class GpuSpmvRunner final : public SpmvRunner {
 public:
  GpuSpmvRunner(Platform platform, Family family)
      : device_(platform == Platform::kCrusherGpu ? gpusim::GpuSpec::mi250x_gcd()
                                                  : gpusim::GpuSpec::a100()),
        platform_(platform),
        family_(family) {}
  [[nodiscard]] Family family() const noexcept override { return family_; }
  [[nodiscard]] Platform platform() const noexcept override { return platform_; }

  SpmvRunResult run(const SpmvRunConfig& config) override {
    device_.reset_counters();
    auto result = run_spmv(
        platform_, family_, config,
        [&](const CsrMatrix<double>& A, std::span<const double> x, std::span<double> y,
            SpmvRunResult&) {
          gpusim::DeviceBuffer<double> dx(device_, A.cols);
          gpusim::DeviceBuffer<double> dy(device_, A.rows);
          std::vector<double> hx(x.begin(), x.end());
          dx.copy_from_host(hx);
          if (family_ == Family::kJulia || family_ == Family::kKokkos) {
            spmv::spmv_gpu_vector<double>(device_, A, dx, dy);
          } else {
            spmv::spmv_gpu_scalar<double>(device_, A, dx, dy);
          }
          dy.copy_to_host(y);
        });
    result.gpu = device_.counters();
    return result;
  }

 private:
  gpusim::DeviceContext device_;
  Platform platform_;
  Family family_;
};

}  // namespace

double SpmvRunner::family_bandwidth_factor(Family f) {
  switch (f) {
    case Family::kVendor: return 1.00;
    case Family::kKokkos: return 0.97;  // dispatch overhead only
    case Family::kJulia: return 0.95;   // CSC transpose-access pattern
    case Family::kNumba: return 0.80;   // checked gathers + residual interpreter cost
  }
  return 0.0;
}

std::unique_ptr<SpmvRunner> make_spmv_runner(Platform p, Family f) {
  if (f == Family::kNumba && p == Platform::kCrusherGpu) return nullptr;
  if (perfmodel::is_gpu(p)) return std::make_unique<GpuSpmvRunner>(p, f);
  return std::make_unique<CpuSpmvRunner>(p, f);
}

}  // namespace portabench::models
