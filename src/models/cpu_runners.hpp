// CPU frontends: C/OpenMP, Kokkos/OpenMP, Julia @threads, Python/Numba.
//
// Each runner executes its Fig. 2 kernel functionally through simrt with
// the model's own semantics:
//   - layout: row-major (C, Kokkos host default, numpy) vs column-major
//     (Julia),
//   - bounds checks: unchecked (C, Kokkos, Julia @inbounds) vs checked
//     (Numba's numpy indexing),
//   - thread binding: close-pinned (OpenMP/Kokkos/Julia) vs unpinned
//     (Numba has no binding API),
//   - JIT: Julia/Numba pay a modeled one-time compilation cost on first
//     invocation (excluded by warm-up, as in Section IV),
//   - the numpy Float16 quirk: Numba FP16 inputs are matrices of ones.
#pragma once

#include "runner.hpp"

namespace portabench::models {

namespace detail {

/// Shared implementation machinery for the four CPU frontends.
class CpuRunnerBase : public ModelRunner {
 public:
  explicit CpuRunnerBase(Platform platform) : platform_(platform) {}
  [[nodiscard]] Platform platform() const noexcept override { return platform_; }
  [[nodiscard]] RunResult run(const RunConfig& config) override;

 protected:
  /// Modeled one-time JIT compilation cost (0 for ahead-of-time models).
  [[nodiscard]] virtual double jit_cost_s() const { return 0.0; }
  /// Whether FP16 inputs must be filled with ones (the numpy quirk).
  [[nodiscard]] virtual bool fp16_fill_ones() const { return false; }
  /// Execute the family's kernel for one precision.  Implemented per
  /// family in cpu_runners.cpp.
  virtual void execute(const RunConfig& config, Precision prec, RunResult& result) = 0;

  bool jit_warmed_ = false;

 private:
  Platform platform_;
};

}  // namespace detail

class COpenMPRunner final : public detail::CpuRunnerBase {
 public:
  using CpuRunnerBase::CpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kVendor; }

 private:
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

class KokkosCpuRunner final : public detail::CpuRunnerBase {
 public:
  using CpuRunnerBase::CpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kKokkos; }

 private:
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

class JuliaCpuRunner final : public detail::CpuRunnerBase {
 public:
  explicit JuliaCpuRunner(Platform platform, bool inbounds = true)
      : CpuRunnerBase(platform), inbounds_(inbounds) {}
  [[nodiscard]] Family family() const noexcept override { return Family::kJulia; }
  [[nodiscard]] bool inbounds() const noexcept { return inbounds_; }

 private:
  double jit_cost_s() const override { return 0.35; }  // first @threads gemm call
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
  bool inbounds_;
};

class NumbaCpuRunner final : public detail::CpuRunnerBase {
 public:
  using CpuRunnerBase::CpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kNumba; }

 private:
  double jit_cost_s() const override { return 0.80; }  // @njit(parallel=True) compile
  bool fp16_fill_ones() const override { return true; }
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

/// Optimized C++ frontend: the tiled/packed register-blocked GEMM
/// (gemm/kernels_tiled.hpp) run through the same harness as the four
/// paper models.  Not one of the paper's Fig. 2 frontends — it is the
/// measured host-performance ceiling the naive kernels are normalized
/// against in the Eq.-2 efficiency machinery (portability::ceiling_
/// efficiency).  Families/platforms reuse the Vendor slot: this is what a
/// tuned native implementation on the CPU looks like.
class OptimizedCppRunner final : public detail::CpuRunnerBase {
 public:
  using CpuRunnerBase::CpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kVendor; }
  [[nodiscard]] std::string_view name() const override { return "Optimized C++ (tiled)"; }
  /// The paper's vendor C kernels skip FP16, but the ceiling must exist at
  /// every precision the naive frontends run: packing converts T -> Acc,
  /// so binary16 operands get the FP32-accumulate scheme for free.
  [[nodiscard]] bool supports(Precision) const override { return true; }

 private:
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

}  // namespace portabench::models
