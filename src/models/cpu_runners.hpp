// CPU frontends: C/OpenMP, Kokkos/OpenMP, Julia @threads, Python/Numba.
//
// Each runner executes its Fig. 2 kernel functionally through simrt with
// the model's own semantics:
//   - layout: row-major (C, Kokkos host default, numpy) vs column-major
//     (Julia),
//   - bounds checks: unchecked (C, Kokkos, Julia @inbounds) vs checked
//     (Numba's numpy indexing),
//   - thread binding: close-pinned (OpenMP/Kokkos/Julia) vs unpinned
//     (Numba has no binding API),
//   - JIT: Julia/Numba pay a modeled one-time compilation cost on first
//     invocation (excluded by warm-up, as in Section IV),
//   - the numpy Float16 quirk: Numba FP16 inputs are matrices of ones.
#pragma once

#include "runner.hpp"

namespace portabench::models {

namespace detail {

/// Shared implementation machinery for the four CPU frontends.
class CpuRunnerBase : public ModelRunner {
 public:
  explicit CpuRunnerBase(Platform platform) : platform_(platform) {}
  [[nodiscard]] Platform platform() const noexcept override { return platform_; }
  [[nodiscard]] RunResult run(const RunConfig& config) override;

 protected:
  /// Modeled one-time JIT compilation cost (0 for ahead-of-time models).
  [[nodiscard]] virtual double jit_cost_s() const { return 0.0; }
  /// Whether FP16 inputs must be filled with ones (the numpy quirk).
  [[nodiscard]] virtual bool fp16_fill_ones() const { return false; }
  /// Execute the family's kernel for one precision.  Implemented per
  /// family in cpu_runners.cpp.
  virtual void execute(const RunConfig& config, Precision prec, RunResult& result) = 0;

  bool jit_warmed_ = false;

 private:
  Platform platform_;
};

}  // namespace detail

class COpenMPRunner final : public detail::CpuRunnerBase {
 public:
  using CpuRunnerBase::CpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kVendor; }

 private:
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

class KokkosCpuRunner final : public detail::CpuRunnerBase {
 public:
  using CpuRunnerBase::CpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kKokkos; }

 private:
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

class JuliaCpuRunner final : public detail::CpuRunnerBase {
 public:
  explicit JuliaCpuRunner(Platform platform, bool inbounds = true)
      : CpuRunnerBase(platform), inbounds_(inbounds) {}
  [[nodiscard]] Family family() const noexcept override { return Family::kJulia; }
  [[nodiscard]] bool inbounds() const noexcept { return inbounds_; }

 private:
  double jit_cost_s() const override { return 0.35; }  // first @threads gemm call
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
  bool inbounds_;
};

class NumbaCpuRunner final : public detail::CpuRunnerBase {
 public:
  using CpuRunnerBase::CpuRunnerBase;
  [[nodiscard]] Family family() const noexcept override { return Family::kNumba; }

 private:
  double jit_cost_s() const override { return 0.80; }  // @njit(parallel=True) compile
  bool fp16_fill_ones() const override { return true; }
  void execute(const RunConfig& config, Precision prec, RunResult& result) override;
};

}  // namespace portabench::models
