#include "cpu_runners.hpp"

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gemm/kernels_cpu.hpp"
#include "gemm/kernels_tiled.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"
#include "perfmodel/predict.hpp"
#include "perfmodel/traits.hpp"
#include "portacheck/portacheck.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"

namespace portabench::models {

namespace detail {

RunResult CpuRunnerBase::run(const RunConfig& config) {
  PB_EXPECTS(config.n > 0 && config.host_threads > 0);
  PB_EXPECTS(supports(config.precision));

  RunResult result;
  if (!jit_warmed_) {
    result.jit_seconds = jit_cost_s();
    jit_warmed_ = true;
  }

  execute(config, config.precision, result);

  if (auto pred = perfmodel::predict(platform(), family(), config.precision, config.n)) {
    result.model_gflops = pred->gflops;
  }
  return result;
}

namespace {

/// Allocate, fill, run, and verify one CPU GEMM with the given layout and
/// kernel.  Kernel signature: kernel(space, A, B, C).
template <class T, class Acc, class Layout, class Kernel>
void run_cpu_gemm(const RunConfig& config, bool fill_ones, Kernel&& kernel,
                  RunResult& result) {
  using simrt::View2;
  const std::size_t n = config.n;

  View2<T, Layout> A(n, n);
  View2<T, Layout> B(n, n);
  View2<Acc, Layout> C(n, n);

  Xoshiro256 rng(config.seed);
  if (fill_ones) {
    // numpy cannot generate random Float16 (Section IV-A): ones instead.
    fill_constant(std::span<T>(A.data(), n * n), T(1.0f));
    fill_constant(std::span<T>(B.data(), n * n), T(1.0f));
  } else {
    fill_uniform(std::span<T>(A.data(), n * n), rng);
    fill_uniform(std::span<T>(B.data(), n * n), rng);
  }

  // The paper pins OpenMP/Julia threads and leaves Numba unpinned; on the
  // simulation host the placement is recorded for the performance model
  // (see perfmodel::ModelTraits::bind) rather than enforced.
  simrt::ThreadsSpace space(config.host_threads);

  Timer timer;
  if (portacheck::active()) {
    // Sanitized run: route every element access of the frontend kernel
    // through shadow views (same storage, race + bounds attribution).
    portacheck::ShadowView2<T, Layout> sA(A, "A");
    portacheck::ShadowView2<T, Layout> sB(B, "B");
    portacheck::ShadowView2<Acc, Layout> sC(C, "C");
    kernel(space, sA, sB, sC);
  } else {
    kernel(space, A, B, C);
  }
  result.host_seconds = timer.seconds();
  result.checksum = gemm::checksum(C);

  if (config.verify) {
    View2<Acc, Layout> C_ref(n, n);
    gemm::reference_gemm<Acc>(A, B, C_ref);
    result.max_error = gemm::max_abs_diff(C, C_ref);
    result.tolerance = gemm::gemm_tolerance(config.precision, n);
    result.verified = result.max_error <= result.tolerance;
  }
}

/// Dispatch a row-major kernel functor over the run precision.
template <class KernelFor>
void dispatch_precision(const RunConfig& config, bool fill_ones, RunResult& result,
                        KernelFor&& kernel_for) {
  switch (config.precision) {
    case Precision::kDouble:
      kernel_for.template operator()<double, double>(config, fill_ones, result);
      break;
    case Precision::kSingle:
      kernel_for.template operator()<float, float>(config, fill_ones, result);
      break;
    case Precision::kHalfIn:
      kernel_for.template operator()<half, float>(config, fill_ones, result);
      break;
  }
}

}  // namespace

}  // namespace detail

void COpenMPRunner::execute(const RunConfig& config, Precision, RunResult& result) {
  detail::dispatch_precision(config, false, result, [&]<class T, class Acc>(
      const RunConfig& cfg, bool ones, RunResult& res) {
    detail::run_cpu_gemm<T, Acc, simrt::LayoutRight>(
        cfg, ones,
        [](const simrt::ThreadsSpace& space, auto& A, auto& B, auto& C) {
          gemm::gemm_openmp_style<Acc>(space, A, B, C);
        },
        res);
  });
}

void KokkosCpuRunner::execute(const RunConfig& config, Precision, RunResult& result) {
  detail::dispatch_precision(config, false, result, [&]<class T, class Acc>(
      const RunConfig& cfg, bool ones, RunResult& res) {
    detail::run_cpu_gemm<T, Acc, simrt::LayoutRight>(
        cfg, ones,
        [](const simrt::ThreadsSpace& space, auto& A, auto& B, auto& C) {
          gemm::gemm_kokkos_style<Acc>(space, A, B, C);
        },
        res);
  });
}

void JuliaCpuRunner::execute(const RunConfig& config, Precision, RunResult& result) {
  const bool inbounds = inbounds_;
  detail::dispatch_precision(config, false, result, [&]<class T, class Acc>(
      const RunConfig& cfg, bool ones, RunResult& res) {
    detail::run_cpu_gemm<T, Acc, simrt::LayoutLeft>(
        cfg, ones,
        [inbounds](const simrt::ThreadsSpace& space, auto& A, auto& B, auto& C) {
          gemm::gemm_julia_style<Acc>(space, A, B, C, inbounds);
        },
        res);
  });
}

void NumbaCpuRunner::execute(const RunConfig& config, Precision prec, RunResult& result) {
  const bool ones = prec == Precision::kHalfIn && fp16_fill_ones();
  detail::dispatch_precision(config, ones, result, [&]<class T, class Acc>(
      const RunConfig& cfg, bool fill_ones, RunResult& res) {
    detail::run_cpu_gemm<T, Acc, simrt::LayoutRight>(
        cfg, fill_ones,
        [](const simrt::ThreadsSpace& space, auto& A, auto& B, auto& C) {
          gemm::gemm_numba_style<Acc>(space, A, B, C);
        },
        res);
  });
}

void OptimizedCppRunner::execute(const RunConfig& config, Precision, RunResult& result) {
  detail::dispatch_precision(config, false, result, [&]<class T, class Acc>(
      const RunConfig& cfg, bool ones, RunResult& res) {
    detail::run_cpu_gemm<T, Acc, simrt::LayoutRight>(
        cfg, ones,
        [](const simrt::ThreadsSpace& space, auto& A, auto& B, auto& C) {
          gemm::gemm_tiled<Acc>(space, A, B, C);
        },
        res);
  });
}

}  // namespace portabench::models
