// ModelRunner: the uniform frontend API over all programming models.
//
// A runner executes the *functional* hand-rolled GEMM of its programming
// model (real numbers computed on this host, under the model's exact
// layout/loop/bounds-check/launch-config semantics), validates it against
// the reference GEMM, and reports the *modeled* performance of the same
// kernel on the target platform from perfmodel.  This split is the
// substitution documented in DESIGN.md: functional fidelity by execution,
// performance fidelity by calibrated model.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/precision.hpp"
#include "gpusim/device.hpp"
#include "perfmodel/platform.hpp"

namespace portabench::models {

using perfmodel::Family;
using perfmodel::Platform;

struct RunConfig {
  std::size_t n = 256;        ///< square matrix size for the functional run
  Precision precision = Precision::kDouble;
  std::uint64_t seed = 0x5EED;
  bool verify = true;         ///< compare against the reference GEMM
  std::size_t host_threads = 2;  ///< host threads for functional execution
};

struct RunResult {
  double checksum = 0.0;    ///< sum of all C elements (proof of execution)
  double max_error = 0.0;   ///< max |C - C_ref| when verify was requested
  double tolerance = 0.0;   ///< accepted bound for max_error
  bool verified = false;    ///< verify ran and max_error <= tolerance
  double host_seconds = 0.0;   ///< wall time of the functional run (this host)
  double model_gflops = 0.0;   ///< perfmodel prediction for the target platform
  double jit_seconds = 0.0;    ///< modeled JIT cost (first invocation only)
  gpusim::DeviceCounters gpu;  ///< device activity (zeroed for CPU runners)
};

/// Abstract programming-model frontend.
class ModelRunner {
 public:
  virtual ~ModelRunner() = default;

  [[nodiscard]] virtual Family family() const noexcept = 0;
  [[nodiscard]] virtual Platform platform() const noexcept = 0;
  [[nodiscard]] virtual std::string_view name() const {
    return perfmodel::implementation_name(platform(), family());
  }

  [[nodiscard]] virtual bool supports(Precision prec) const {
    return perfmodel::supported(platform(), family(), prec);
  }

  /// Execute one functional GEMM run.  Throws precondition_error when the
  /// precision is unsupported on this (platform, family).
  [[nodiscard]] virtual RunResult run(const RunConfig& config) = 0;
};

/// Build the frontend for a (platform, family).  Returns nullptr for
/// combinations the paper's support matrix rules out entirely (Numba on
/// AMD GPUs).
[[nodiscard]] std::unique_ptr<ModelRunner> make_runner(Platform p, Family f);

/// Build the optimized C++ (tiled/packed GEMM) frontend: the measured
/// host ceiling the naive frontends are normalized against.  CPU
/// platforms only — returns nullptr for GPU platforms.
[[nodiscard]] std::unique_ptr<ModelRunner> make_optimized_cpu_runner(Platform p);

}  // namespace portabench::models
