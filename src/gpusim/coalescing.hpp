// Memory-coalescing analyzer.
//
// A warp's global-memory request coalesces into as few 32-byte sectors as
// the lanes' addresses cover; scattered addresses cost one transaction
// per lane.  This is the mechanism behind the block-geometry findings:
// the paper's 32x32 blocks put consecutive threadIdx.x lanes on
// consecutive columns (unit-stride for row-major B and C), while a flat
// Kokkos-style block walking rows through threadIdx.x strides by the row
// length and explodes the transaction count.  The analyzer computes
// sectors-per-request for arbitrary lane->address mappings and provides
// the three GEMM access patterns ready-made.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "device.hpp"

namespace portabench::gpusim {

/// Result of analyzing one warp-wide access.
struct CoalescingReport {
  std::size_t lanes = 0;          ///< active lanes in the request
  std::size_t sectors = 0;        ///< 32-byte sectors touched
  std::size_t ideal_sectors = 0;  ///< minimum possible for this many lanes/width
  /// sectors / ideal_sectors: 1.0 = perfectly coalesced; warp_size =
  /// fully scattered.
  [[nodiscard]] double expansion() const {
    return ideal_sectors == 0 ? 0.0
                              : static_cast<double>(sectors) /
                                    static_cast<double>(ideal_sectors);
  }
};

inline constexpr std::size_t kSectorBytes = 32;

/// Analyze one warp request: `address_of(lane)` gives each active lane's
/// byte address; `element_bytes` the access width.
[[nodiscard]] CoalescingReport analyze_warp_access(
    std::size_t active_lanes, std::size_t element_bytes,
    const std::function<std::uint64_t(std::size_t)>& address_of);

/// The three access streams of the Fig. 3a GEMM (row-major A, B, C) for a
/// given block shape on a given device: reports for the first warp's A
/// read (broadcast within a row), B read, and C write at inner index 0.
struct GemmWarpAccesses {
  CoalescingReport a_read;
  CoalescingReport b_read;
  CoalescingReport c_write;
  /// Average expansion over the three streams, weighted by the per-thread
  /// access counts (A and B are read k times, C written once).
  [[nodiscard]] double weighted_expansion(std::size_t k) const;
};

/// Analyze the naive row-major GEMM's first warp under `block` on `spec`
/// for an n x n problem with `element_bytes` scalars.  `row_on_x` selects
/// the index mapping: false = Fig. 3a (row on threadIdx.y, column on the
/// fast x dimension — coalesced); true = the Kokkos MDRange lowering
/// (row on threadIdx.x — scattered B/C accesses).
[[nodiscard]] GemmWarpAccesses analyze_gemm_coalescing(const GpuSpec& spec, const Dim3& block,
                                                       std::size_t n,
                                                       std::size_t element_bytes,
                                                       bool row_on_x = false);

}  // namespace portabench::gpusim
