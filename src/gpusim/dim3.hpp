// CUDA/HIP-style index vocabulary for the SIMT simulator.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace portabench::gpusim {

/// 3-component extent, defaulting unset components to 1 (CUDA dim3).
struct Dim3 {
  std::size_t x = 1;
  std::size_t y = 1;
  std::size_t z = 1;

  [[nodiscard]] constexpr std::size_t volume() const noexcept { return x * y * z; }
  [[nodiscard]] constexpr bool operator==(const Dim3&) const noexcept = default;
};

/// Per-thread coordinates handed to device kernels: the simulator's
/// equivalent of blockIdx/blockDim/threadIdx/gridDim.
struct ThreadCtx {
  Dim3 grid_dim;
  Dim3 block_dim;
  Dim3 block_idx;
  Dim3 thread_idx;

  /// CUDA: blockIdx.x * blockDim.x + threadIdx.x
  [[nodiscard]] constexpr std::size_t global_x() const noexcept {
    return block_idx.x * block_dim.x + thread_idx.x;
  }
  [[nodiscard]] constexpr std::size_t global_y() const noexcept {
    return block_idx.y * block_dim.y + thread_idx.y;
  }
  [[nodiscard]] constexpr std::size_t global_z() const noexcept {
    return block_idx.z * block_dim.z + thread_idx.z;
  }

  /// Linear thread id within the block (CUDA linearization: x fastest).
  [[nodiscard]] constexpr std::size_t lane_in_block() const noexcept {
    return (thread_idx.z * block_dim.y + thread_idx.y) * block_dim.x + thread_idx.x;
  }

  /// Numba's cuda.grid(2) helper: returns (i, j) = (global_y, global_x)
  /// order per Numba convention where axis 0 maps to y for 2D grids.
  [[nodiscard]] constexpr std::pair<std::size_t, std::size_t> numba_grid2() const noexcept {
    return {global_x(), global_y()};
  }
};

/// Grid sizing helper: ceil-div the problem extent by the block extent,
/// the idiom every Fig. 3 kernel uses to compute its launch grid.
[[nodiscard]] constexpr std::size_t blocks_for(std::size_t extent, std::size_t block) {
  PB_EXPECTS(block > 0);
  return (extent + block - 1) / block;
}

}  // namespace portabench::gpusim
