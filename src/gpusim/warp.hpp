// Warp-level primitives: shuffle, ballot, and vote across the lanes of
// one warp, lowered through the thread-loop-fission model.
//
// CUDA/HIP expose __shfl_down_sync / __shfl_xor_sync / __ballot_sync as
// register exchanges inside one warp.  The simulator has no registers to
// exchange — lanes of a block run as a serial (or seed-permuted) loop —
// so each warp collective is expressed as two for_lanes() regions over a
// block-shared staging array: region one publishes every lane's operand,
// region two reads the shuffled slot.  The implicit __syncthreads()
// between regions opens a fresh portacheck epoch, which is exactly what
// makes the cross-lane read legal under the sanitizer: the serial seed
// schedule is preserved, and any permuted lane order produces the same
// bits because no lane writes a slot another lane reads within a region.
//
// Out-of-range sources follow the CUDA convention: the lane receives its
// own value and the `valid` flag passed to the visitor is false.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

#include "launch.hpp"

namespace portabench::gpusim {

/// Simulated warp width (the CUDA constant; AMD wavefronts would be 64 —
/// collectives below take the width as a parameter so both map).
inline constexpr std::size_t kWarpSize = 32;

/// Number of width-sized warps covering a block.
[[nodiscard]] constexpr std::size_t warps_in(std::size_t lanes,
                                             std::size_t width = kWarpSize) noexcept {
  return (lanes + width - 1) / width;
}

namespace detail {

inline void validate_warp_width(std::size_t width) {
  PB_EXPECTS(width >= 1 && width <= kWarpSize && std::has_single_bit(width));
}

}  // namespace detail

/// __shfl_down_sync: every lane receives the operand of lane
/// `lane + delta` within its warp.  `value_of(tc)` supplies each lane's
/// operand; `visit(tc, received, valid)` observes the shuffled value
/// (valid == false when the source lane is past the warp or block end, in
/// which case `received` is the lane's own operand, per CUDA semantics).
/// `scratch` must hold at least block_dim.volume() elements.
template <class T, class F, class G>
void warp_shfl_down(BlockCtx& bc, std::span<T> scratch, std::size_t delta, F&& value_of,
                    G&& visit, std::size_t width = kWarpSize) {
  detail::validate_warp_width(width);
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= lanes);

  bc.for_lanes([&](const ThreadCtx& tc) { scratch[tc.lane_in_block()] = value_of(tc); });
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    const std::size_t in_warp = lane % width;
    const bool valid = in_warp + delta < width && lane + delta < lanes;
    visit(tc, valid ? scratch[lane + delta] : scratch[lane], valid);
  });
}

/// __shfl_xor_sync: butterfly exchange — every lane receives the operand
/// of lane `lane ^ mask` within its warp.  Same staging and out-of-range
/// convention as warp_shfl_down.
template <class T, class F, class G>
void warp_shfl_xor(BlockCtx& bc, std::span<T> scratch, std::size_t mask, F&& value_of,
                   G&& visit, std::size_t width = kWarpSize) {
  detail::validate_warp_width(width);
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= lanes);

  bc.for_lanes([&](const ThreadCtx& tc) { scratch[tc.lane_in_block()] = value_of(tc); });
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    const std::size_t in_warp = lane % width;
    const std::size_t peer_in_warp = in_warp ^ mask;
    const std::size_t peer = lane - in_warp + peer_in_warp;
    const bool valid = peer_in_warp < width && peer < lanes;
    visit(tc, valid ? scratch[peer] : scratch[lane], valid);
  });
}

/// __ballot_sync: every lane receives a bitmask with bit i set iff lane i
/// of its warp (counting from the warp base) satisfies the predicate.
/// Region two is read-only over the staged predicate bytes, so every lane
/// of a warp may fold the same slots without a conflict.  `scratch` must
/// hold at least block_dim.volume() elements.
template <class P, class G>
void warp_ballot(BlockCtx& bc, std::span<std::uint32_t> scratch, P&& pred_of, G&& visit,
                 std::size_t width = kWarpSize) {
  detail::validate_warp_width(width);
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= lanes);

  bc.for_lanes([&](const ThreadCtx& tc) {
    scratch[tc.lane_in_block()] = pred_of(tc) ? 1u : 0u;
  });
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    const std::size_t base = lane - lane % width;
    std::uint32_t mask = 0;
    for (std::size_t i = 0; base + i < lanes && i < width; ++i) {
      mask |= scratch[base + i] << i;
    }
    visit(tc, mask);
  });
}

/// __any_sync / __all_sync, built on the ballot staging.
template <class P, class G>
void warp_any(BlockCtx& bc, std::span<std::uint32_t> scratch, P&& pred_of, G&& visit,
              std::size_t width = kWarpSize) {
  warp_ballot(
      bc, scratch, std::forward<P>(pred_of),
      [&](const ThreadCtx& tc, std::uint32_t mask) { visit(tc, mask != 0); }, width);
}

template <class P, class G>
void warp_all(BlockCtx& bc, std::span<std::uint32_t> scratch, P&& pred_of, G&& visit,
              std::size_t width = kWarpSize) {
  detail::validate_warp_width(width);
  const std::size_t lanes = bc.block_dim().volume();
  warp_ballot(
      bc, scratch, std::forward<P>(pred_of),
      [&](const ThreadCtx& tc, std::uint32_t mask) {
        const std::size_t lane = tc.lane_in_block();
        const std::size_t base = lane - lane % width;
        const std::size_t active = std::min(width, lanes - base);
        const std::uint32_t full =
            active == kWarpSize ? ~std::uint32_t{0} : (std::uint32_t{1} << active) - 1;
        visit(tc, mask == full);
      },
      width);
}

/// Warp-level reduction tree (the shfl_down halving loop): after the
/// call, scratch[w * width] holds the combined value of warp w's lanes.
/// The offsets run ASCENDING (1, 2, ..., width/2), so after the step at
/// offset `off` each surviving slot holds the ordered fold of the
/// contiguous lane range [lane, lane + 2*off) — an order-preserving
/// grouping.  (The textbook descending-offset tree folds lanes in the
/// interleaved order 0, 16, 8, 24, ..., which is only correct for
/// commutative ops; ascending offsets make plain associativity
/// sufficient, so non-commutative ops and ties resolve in lane order and
/// the warp total equals the left fold bit-for-bit for exact ops.)
/// Missing lanes at a ragged block end are simply skipped (never
/// combined with an identity), so the result is a pure function of
/// (lanes, width, op, operands).  Each halving step is one for_lanes
/// region; writers (lanes at multiples of 2*off) never touch the slots
/// they read, so the permuted sanitizer schedule is conflict-free.
template <class T, class Op, class F>
void warp_reduce_leaders(BlockCtx& bc, std::span<T> scratch, Op op, F&& value_of,
                         std::size_t width = kWarpSize) {
  detail::validate_warp_width(width);
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= lanes);

  bc.for_lanes([&](const ThreadCtx& tc) { scratch[tc.lane_in_block()] = value_of(tc); });
  for (std::size_t off = 1; off < width; off *= 2) {
    bc.for_lanes([&](const ThreadCtx& tc) {
      const std::size_t lane = tc.lane_in_block();
      const std::size_t in_warp = lane % width;
      if (in_warp % (2 * off) == 0 && in_warp + off < width && lane + off < lanes) {
        scratch[lane] = op(scratch[lane], scratch[lane + off]);
      }
    });
  }
}

}  // namespace portabench::gpusim
