// Runtime-configurable launch tunables for the gpusim block engine.
//
// The launch fork-elision cutoff and the block-dealing chunk factor in
// LaunchEngine::run_blocks were compile-time constants; like the simrt
// dispatch knobs they are machine-dependent scheduling parameters, so
// they are now process-global runtime values the autotuner (src/tune,
// docs/TUNING.md) or the environment can override:
//
//   PORTABENCH_TUNE_LAUNCH_CUTOFF   simulated threads below which a
//                                   launch runs the serial inline walk
//   PORTABENCH_TUNE_LAUNCH_CHUNKS   target block chunks per worker
//
// Same semantics as simrt/tunables.hpp: env applied once on first access,
// explicit setters win afterwards, relaxed reads, and every setting only
// changes block scheduling — per-block execution order inside a block and
// all arithmetic are untouched, so launches stay bitwise-identical.
#pragma once

#include <cstddef>

#include "simrt/tunables.hpp"

namespace portabench::gpusim {

inline constexpr std::size_t kDefaultLaunchChunksPerWorker = 8;

/// Snapshot of the launch scheduling knobs.
struct LaunchTunables {
  std::size_t fork_cutoff = simrt::kDefaultForkCutoff;  ///< 0 = always fork
  std::size_t chunks_per_worker = kDefaultLaunchChunksPerWorker;  ///< clamped >= 1
};

[[nodiscard]] LaunchTunables launch_tunables() noexcept;
void set_launch_tunables(const LaunchTunables& t) noexcept;
void reset_launch_tunables() noexcept;

/// `base` with any PORTABENCH_TUNE_LAUNCH_* values from `lookup` applied.
[[nodiscard]] LaunchTunables parse_launch_env(const LaunchTunables& base,
                                              const simrt::EnvLookup& lookup);

}  // namespace portabench::gpusim
