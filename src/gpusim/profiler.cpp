#include "profiler.hpp"

#include <algorithm>
#include <sstream>

namespace portabench::gpusim {

void Profiler::record_launch(std::string name, const Dim3& grid, const Dim3& block,
                             double modeled_seconds) {
  launches_.push_back({std::move(name), grid, block, modeled_seconds});
}

void Profiler::record_transfer(TransferRecord::Direction direction, std::size_t bytes) {
  transfers_.push_back({direction, bytes});
}

std::vector<KernelSummary> Profiler::kernel_summaries() const {
  std::map<std::string, KernelSummary> by_name;
  for (const auto& l : launches_) {
    KernelSummary& s = by_name[l.name];
    s.name = l.name;
    ++s.calls;
    s.total_threads += l.grid.volume() * l.block.volume();
    s.total_seconds += l.modeled_seconds;
  }
  std::vector<KernelSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, summary] : by_name) out.push_back(summary);
  std::sort(out.begin(), out.end(),
            [](const KernelSummary& a, const KernelSummary& b) { return a.calls > b.calls; });
  return out;
}

std::uint64_t Profiler::bytes(TransferRecord::Direction direction) const {
  std::uint64_t total = 0;
  for (const auto& t : transfers_) {
    if (t.direction == direction) total += t.bytes;
  }
  return total;
}

std::string Profiler::report() const {
  std::ostringstream os;
  os << "==PROF== GPU activities:\n";
  for (const auto& s : kernel_summaries()) {
    os << "==PROF==   " << s.calls << " call(s)  " << s.total_threads << " threads";
    if (s.total_seconds > 0.0) os << "  " << s.total_seconds * 1e3 << " ms (modeled)";
    os << "  " << s.name << "\n";
  }
  os << "==PROF== Memory:\n";
  os << "==PROF==   H2D " << bytes(TransferRecord::Direction::kH2D) << " bytes in "
     << std::count_if(transfers_.begin(), transfers_.end(),
                      [](const TransferRecord& t) {
                        return t.direction == TransferRecord::Direction::kH2D;
                      })
     << " transfer(s)\n";
  os << "==PROF==   D2H " << bytes(TransferRecord::Direction::kD2H) << " bytes in "
     << std::count_if(transfers_.begin(), transfers_.end(),
                      [](const TransferRecord& t) {
                        return t.direction == TransferRecord::Direction::kD2H;
                      })
     << " transfer(s)\n";
  return os.str();
}

void Profiler::clear() {
  launches_.clear();
  transfers_.clear();
}

}  // namespace portabench::gpusim
