// Device memory: RAII buffers plus explicit H2D/D2H transfers.
//
// Mirrors the cudaMalloc/cudaMemcpy discipline of the paper's C kernels
// and the CUArray/ROCArray containers of the Julia frontends.  "Device"
// storage lives in host RAM but is tracked against the simulated device's
// capacity, and transfers are byte-accounted so harnesses can report PCIe
// traffic alongside kernel time.
#pragma once

#include <cstring>
#include <span>

#include "common/buffer.hpp"
#include "device.hpp"

namespace portabench::gpusim {

/// Owning device-resident array of T, bound to a DeviceContext for
/// capacity accounting.  Move-only, like a cudaMalloc'd pointer wrapped
/// in a unique owner.
template <class T>
class DeviceBuffer {
 public:
  using value_type = T;

  DeviceBuffer() = default;

  DeviceBuffer(DeviceContext& ctx, std::size_t count)
      : ctx_(&ctx), storage_(count) {
    ctx_->note_alloc(count * sizeof(T));
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept
      : ctx_(other.ctx_), storage_(std::move(other.storage_)) {
    other.ctx_ = nullptr;
  }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      ctx_ = other.ctx_;
      storage_ = std::move(other.storage_);
      other.ctx_ = nullptr;
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }

  /// Device this buffer is bound to; nullptr for a freed / moved-from /
  /// default-constructed buffer.  The async copy layer (copy.hpp) uses
  /// this both to route transfer counters and to reject operations on
  /// dead buffers with a structured error instead of UB.
  [[nodiscard]] DeviceContext* context() const noexcept { return ctx_; }

  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }
  [[nodiscard]] std::span<T> span() noexcept { return storage_.span(); }
  [[nodiscard]] std::span<const T> span() const noexcept { return storage_.span(); }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return storage_.data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return storage_.data()[i];
  }

  /// cudaMemcpyHostToDevice analogue.
  void copy_from_host(std::span<const T> host) {
    PB_EXPECTS(ctx_ != nullptr && host.size() == storage_.size());
    std::memcpy(storage_.data(), host.data(), host.size_bytes());
    ctx_->note_h2d(host.size_bytes());
  }

  /// cudaMemcpyDeviceToHost analogue.
  void copy_to_host(std::span<T> host) const {
    PB_EXPECTS(ctx_ != nullptr && host.size() == storage_.size());
    std::memcpy(host.data(), storage_.data(), host.size_bytes());
    ctx_->note_d2h(host.size_bytes());
  }

  /// cudaMemset(0) analogue.
  void zero() { std::memset(storage_.data(), 0, storage_.size() * sizeof(T)); }

  /// Byte-granular H2D copy (cudaMemcpy with a byte count).  `bytes` must
  /// be a whole number of elements and fit the allocation — a misaligned
  /// or oversized count is a structured precondition_error, not UB.
  void copy_from_host_bytes(const void* src, std::size_t bytes) {
    PB_EXPECTS(ctx_ != nullptr);
    PB_EXPECTS(bytes % sizeof(T) == 0);
    PB_EXPECTS(bytes <= storage_.size() * sizeof(T));
    std::memcpy(storage_.data(), src, bytes);
    ctx_->note_h2d(bytes);
  }

  /// Byte-granular D2H copy; same element-alignment contract as above.
  void copy_to_host_bytes(void* dst, std::size_t bytes) const {
    PB_EXPECTS(ctx_ != nullptr);
    PB_EXPECTS(bytes % sizeof(T) == 0);
    PB_EXPECTS(bytes <= storage_.size() * sizeof(T));
    std::memcpy(dst, storage_.data(), bytes);
    ctx_->note_d2h(bytes);
  }

  /// cudaFree analogue: returns the arena to the device's accounting.
  /// Freeing an already-freed (or moved-from / default-constructed) buffer
  /// throws precondition_error, where the real API would corrupt the heap.
  void free() {
    PB_EXPECTS(ctx_ != nullptr);
    release();
  }

 private:
  void release() noexcept {
    if (ctx_ != nullptr && storage_.size() > 0) {
      ctx_->note_free(storage_.size() * sizeof(T));
    }
    ctx_ = nullptr;
    // Drop the storage too: a freed (or moved-from) buffer must read as
    // empty — size() == 0, data() == nullptr — not as a live view of an
    // allocation the device already reclaimed.
    storage_ = AlignedBuffer<T>();
  }

  DeviceContext* ctx_ = nullptr;
  AlignedBuffer<T> storage_;
};

}  // namespace portabench::gpusim
