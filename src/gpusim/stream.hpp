// Streams and events: ordered-queue semantics over the simulator.
//
// The paper's kernels are synchronous single-stream, but a credible
// runtime needs stream ordering for the data-transfer-overlap discussion
// in Section II ("select the overlap of data transfers with
// computations").  A Stream is an in-order work queue with a modeled
// clock (timestamps come from the performance model) and one of two
// execution modes:
//
//   kEager  (default)  operations run inline on the enqueuing thread —
//                      the host *is* the device here.  The pre-engine
//                      behaviour, and what the sanitized tier always
//                      uses (a permuted serial schedule needs in-order
//                      host execution).
//   kAsync             operations are erased into inline-storage queue
//                      nodes and executed in order by a dedicated worker
//                      thread, so H2D/compute/D2H pipelines on separate
//                      streams genuinely overlap on the host.  Event /
//                      wait() provide cross-stream ordering: wait()
//                      blocks the stream (not the enqueuing host thread)
//                      until the event's real completion.
//
// The modeled clock is advanced at enqueue time on the caller, in
// program order — modeled timestamps are deterministic and identical
// between the two modes; only the host-side execution strategy differs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "device.hpp"
#include "portacheck/hooks.hpp"

namespace portabench::gpusim {

class Stream;

enum class StreamMode { kEager, kAsync };

namespace detail {

/// Move-only type-erased operation: the async queue's node.  Callables
/// up to kInlineBytes are stored in-place — no per-op heap allocation
/// for the lambdas streams actually enqueue (std::function would
/// allocate for anything beyond its tiny SBO and always costs a
/// double-indirect dispatch).
class ErasedOp {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  ErasedOp() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, ErasedOp> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  explicit ErasedOp(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  ErasedOp(ErasedOp&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
    other.ops_ = nullptr;
  }

  ErasedOp& operator=(ErasedOp&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  ErasedOp(const ErasedOp&) = delete;
  ErasedOp& operator=(const ErasedOp&) = delete;
  ~ErasedOp() { reset(); }

  void operator()() {
    PB_EXPECTS(ops_ != nullptr);
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct OpsVTable {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct + destroy src
    void (*destroy)(void*) noexcept;
  };

  template <class Fn>
  static constexpr OpsVTable kInlineOps{
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        Fn* f = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <class Fn>
  static constexpr OpsVTable kHeapOps{
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const OpsVTable* ops_ = nullptr;
};

/// In-order queue serviced by one dedicated worker thread (the async
/// stream's engine).  push() never blocks on op execution; drain()
/// blocks until the queue is empty and the worker is idle, rethrowing
/// the first exception an op threw.
class AsyncQueue {
 public:
  AsyncQueue();
  ~AsyncQueue();
  AsyncQueue(const AsyncQueue&) = delete;
  AsyncQueue& operator=(const AsyncQueue&) = delete;

  void push(ErasedOp op);
  void drain();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // worker waits for ops / shutdown
  std::condition_variable idle_cv_;  // drain() waits for empty + idle
  std::vector<ErasedOp> queue_;      // FIFO: worker swaps it out in batches
  bool busy_ = false;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::thread worker_;
};

}  // namespace detail

/// Marks a position in a stream's modeled timeline (cudaEvent analogue).
/// Events carry shared completion state, so a recorded Event can be
/// waited on after the recording stream re-records or is destroyed.
class Event {
 public:
  Event() = default;

  [[nodiscard]] bool recorded() const noexcept { return state_ != nullptr; }

  /// Modeled device time (seconds) at which the event completes.
  [[nodiscard]] double timestamp() const {
    PB_EXPECTS(recorded());
    return state_->timestamp;
  }

  /// Host-side completion state (cudaEventQuery): for events recorded on
  /// an eager stream this is true as soon as record() returns; on an
  /// async stream it flips when the worker reaches the record marker.
  [[nodiscard]] bool query() const noexcept {
    return state_ != nullptr && state_->done.load(std::memory_order_acquire);
  }

  /// Block the host until the event really completed (cudaEventSynchronize).
  void synchronize() const {
    PB_EXPECTS(recorded());
    state_->wait_done();
  }

  /// Modeled seconds between two recorded events (cudaEventElapsedTime).
  /// Reversed arguments (stop before start) are a precondition_error.
  [[nodiscard]] static double elapsed(const Event& start, const Event& stop) {
    PB_EXPECTS(start.recorded() && stop.recorded());
    PB_EXPECTS(stop.state_->timestamp >= start.state_->timestamp);
    return stop.state_->timestamp - start.state_->timestamp;
  }

 private:
  friend class Stream;

  struct State {
    double timestamp = 0.0;
    std::atomic<bool> done{false};
    std::mutex m;
    std::condition_variable cv;

    void mark_done() {
      {
        std::lock_guard<std::mutex> lock(m);
        done.store(true, std::memory_order_release);
      }
      cv.notify_all();
    }

    void wait_done() {
      if (done.load(std::memory_order_acquire)) return;
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [this] { return done.load(std::memory_order_acquire); });
    }
  };

  std::shared_ptr<State> state_;
};

/// In-order work queue with a modeled clock.  See the header comment for
/// the two execution modes; the modeled timeline is identical in both.
class Stream {
 public:
  /// Sanitized runs (portacheck active at construction) force kEager so
  /// the permuted serial schedule stays serial — see docs/SANITIZER.md.
  explicit Stream(DeviceContext& ctx, StreamMode mode = StreamMode::kEager)
      : ctx_(&ctx) {
    if (mode == StreamMode::kAsync && !portacheck::active()) {
      queue_ = std::make_unique<detail::AsyncQueue>();
    }
  }

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  /// Destruction drains outstanding async work (errors from ops are
  /// dropped here — synchronize() first to observe them).
  ~Stream() = default;

  [[nodiscard]] DeviceContext& context() const noexcept { return *ctx_; }
  [[nodiscard]] StreamMode mode() const noexcept {
    return queue_ ? StreamMode::kAsync : StreamMode::kEager;
  }

  /// Modeled time (seconds) at which all enqueued work completes.
  [[nodiscard]] double now() const noexcept { return clock_; }

  /// Enqueue an operation and advance modeled time by `modeled_seconds`;
  /// returns the op's modeled completion timestamp.  Eager: runs `op`
  /// inline.  Async: erases `op` into an inline-storage queue node (no
  /// std::function, no heap for small captures) executed in order by the
  /// stream's worker.
  template <class F>
    requires std::is_invocable_v<std::remove_cvref_t<F>&>
  double enqueue(double modeled_seconds, F&& op) {
    PB_EXPECTS(modeled_seconds >= 0.0);
    if (queue_) {
      queue_->push(detail::ErasedOp(std::forward<F>(op)));
    } else {
      op();
    }
    clock_ += modeled_seconds;
    ++ops_;
    return clock_;
  }

  /// Modeled-time-only operation (no host payload): transfers and
  /// kernels whose cost comes purely from the performance model.
  double enqueue(double modeled_seconds) {
    return enqueue(modeled_seconds, [] {});
  }

  /// Make this stream wait for a recorded event (cudaStreamWaitEvent):
  /// modeled time jumps to the max, and in async mode the stream's
  /// worker blocks until the event's real completion — this is what
  /// makes cross-stream pipelines actually ordered, not just modeled so.
  /// An eager stream blocks the host instead (it *is* its own worker).
  void wait(const Event& event) {
    PB_EXPECTS(event.recorded());
    clock_ = std::max(clock_, event.state_->timestamp);
    if (queue_) {
      queue_->push(detail::ErasedOp(
          [state = event.state_] { state->wait_done(); }));
    } else {
      event.state_->wait_done();
    }
  }

  /// Record an event at the current end of the queue.  The modeled
  /// timestamp is taken now (program order); real completion is marked
  /// when the stream's worker reaches this point in the queue.
  void record(Event& event) {
    auto state = std::make_shared<Event::State>();
    state->timestamp = clock_;
    if (queue_) {
      queue_->push(detail::ErasedOp([state] { state->mark_done(); }));
    } else {
      state->done.store(true, std::memory_order_release);
    }
    event.state_ = std::move(state);
  }

  /// Host-synchronize: drain outstanding async work (rethrowing the
  /// first op exception), then return the modeled completion time.
  double synchronize() {
    if (queue_) queue_->drain();
    return clock_;
  }

  [[nodiscard]] std::size_t operations() const noexcept { return ops_; }

 private:
  DeviceContext* ctx_;
  std::unique_ptr<detail::AsyncQueue> queue_;  // null in eager mode
  double clock_ = 0.0;
  std::size_t ops_ = 0;
};

}  // namespace portabench::gpusim
