// Streams and events: ordered-queue semantics over the simulator.
//
// The paper's kernels are synchronous single-stream, but a credible
// runtime needs stream ordering for the data-transfer-overlap discussion
// in Section II ("select the overlap of data transfers with
// computations").  Work enqueued on a Stream executes eagerly (the host
// *is* the device here) while the object tracks modeled timestamps so the
// transfer-overlap ablation can compare overlapped vs. serialized
// schedules.
#pragma once

#include <cstddef>
#include <functional>

#include "common/error.hpp"
#include "device.hpp"

namespace portabench::gpusim {

class Stream;

/// Marks a position in a stream's modeled timeline (cudaEvent analogue).
class Event {
 public:
  Event() = default;

  [[nodiscard]] bool recorded() const noexcept { return recorded_; }
  /// Modeled device time (seconds) at which the event completes.
  [[nodiscard]] double timestamp() const {
    PB_EXPECTS(recorded_);
    return timestamp_;
  }

  /// Modeled seconds between two recorded events (cudaEventElapsedTime).
  [[nodiscard]] static double elapsed(const Event& start, const Event& stop) {
    PB_EXPECTS(start.recorded() && stop.recorded());
    PB_EXPECTS(stop.timestamp_ >= start.timestamp_);
    return stop.timestamp_ - start.timestamp_;
  }

 private:
  friend class Stream;
  bool recorded_ = false;
  double timestamp_ = 0.0;
};

/// In-order work queue with a modeled clock.  Operations run eagerly on
/// enqueue (functional execution) and advance the stream's modeled time by
/// the duration the caller supplies (typically from the performance
/// model).
class Stream {
 public:
  explicit Stream(DeviceContext& ctx) : ctx_(&ctx) {}

  [[nodiscard]] DeviceContext& context() const noexcept { return *ctx_; }
  /// Modeled time (seconds) at which all enqueued work completes.
  [[nodiscard]] double now() const noexcept { return clock_; }

  /// Enqueue an operation: runs `op` immediately, advances modeled time by
  /// `modeled_seconds`.  Returns the completion timestamp.
  double enqueue(double modeled_seconds, const std::function<void()>& op) {
    PB_EXPECTS(modeled_seconds >= 0.0);
    if (op) op();
    clock_ += modeled_seconds;
    ++ops_;
    return clock_;
  }

  /// Make this stream wait for an event recorded on another stream
  /// (cudaStreamWaitEvent): modeled time jumps to the max.
  void wait(const Event& event) {
    PB_EXPECTS(event.recorded());
    clock_ = std::max(clock_, event.timestamp());
  }

  /// Record an event at the current end of the queue.
  void record(Event& event) const noexcept {
    event.recorded_ = true;
    event.timestamp_ = clock_;
  }

  /// Host-synchronize: execution is eager, so this only returns the
  /// modeled completion time.
  double synchronize() const noexcept { return clock_; }

  [[nodiscard]] std::size_t operations() const noexcept { return ops_; }

 private:
  DeviceContext* ctx_;
  double clock_ = 0.0;
  std::size_t ops_ = 0;
};

}  // namespace portabench::gpusim
