#include "tunables.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace portabench::gpusim {

namespace {

std::atomic<std::size_t> g_launch_cutoff{simrt::kDefaultForkCutoff};
std::atomic<std::size_t> g_chunks_per_worker{kDefaultLaunchChunksPerWorker};

std::once_flag g_env_once;

void store(const LaunchTunables& t) noexcept {
  g_launch_cutoff.store(t.fork_cutoff, std::memory_order_relaxed);
  g_chunks_per_worker.store(std::max<std::size_t>(1, t.chunks_per_worker),
                            std::memory_order_relaxed);
}

void apply_env() noexcept {
  store(parse_launch_env(LaunchTunables{},
                         [](const char* name) { return std::getenv(name); }));
}

void ensure_env_applied() noexcept { std::call_once(g_env_once, apply_env); }

}  // namespace

LaunchTunables parse_launch_env(const LaunchTunables& base, const simrt::EnvLookup& lookup) {
  LaunchTunables t = base;
  (void)simrt::parse_tunable_size(lookup("PORTABENCH_TUNE_LAUNCH_CUTOFF"), &t.fork_cutoff);
  (void)simrt::parse_tunable_size(lookup("PORTABENCH_TUNE_LAUNCH_CHUNKS"),
                                  &t.chunks_per_worker);
  return t;
}

LaunchTunables launch_tunables() noexcept {
  ensure_env_applied();
  LaunchTunables t;
  t.fork_cutoff = g_launch_cutoff.load(std::memory_order_relaxed);
  t.chunks_per_worker = g_chunks_per_worker.load(std::memory_order_relaxed);
  return t;
}

void set_launch_tunables(const LaunchTunables& t) noexcept {
  ensure_env_applied();
  store(t);
}

void reset_launch_tunables() noexcept {
  ensure_env_applied();
  apply_env();
}

}  // namespace portabench::gpusim
