#include "stream.hpp"

namespace portabench::gpusim::detail {

AsyncQueue::AsyncQueue() : worker_([this] { worker_loop(); }) {}

AsyncQueue::~AsyncQueue() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Drain before shutdown so destruction has synchronize() semantics
    // (outstanding ops complete; their errors are dropped).
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
    shutdown_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void AsyncQueue::push(ErasedOp op) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(op));
  }
  work_cv_.notify_one();
}

void AsyncQueue::drain() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void AsyncQueue::worker_loop() {
  std::vector<ErasedOp> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      busy_ = false;
      if (queue_.empty()) {
        idle_cv_.notify_all();
        work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (shutdown_ && queue_.empty()) return;
      }
      // Take the whole backlog in one swap: in-order execution, one lock
      // round-trip per batch instead of per op.
      batch.swap(queue_);
      busy_ = true;
    }
    for (ErasedOp& op : batch) {
      try {
        op();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
}

}  // namespace portabench::gpusim::detail
