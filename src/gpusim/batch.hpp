// Batched item execution over the launch engine.
//
// The serving layer and the kernel libraries' batched entry points all
// share one execution shape: N independent items (one small GEMM, one
// SpMV, one stencil sweep each), run as a single "launch" — forked
// across the engine's worker team when the batch is big enough, serial
// on the caller otherwise.  run_batch() is that shape, plus the piece
// LaunchEngine::run_blocks deliberately does not own: the portacheck
// path.  Under the sanitizer every batch must execute as a seed-permuted
// *serial* schedule with one lane per item (items of a batch are
// unordered, exactly like blocks of a grid), so a batch that is only
// correct in submission order fails the sanitized tier.
//
// The body receives (worker, item): `worker` indexes the engine's
// per-worker arenas when the batch forked, or LaunchEngine::kSerialWorker
// on the serial/sanitized path (use batch_scratch() below to pick the
// right arena either way).
#pragma once

#include <cstddef>
#include <span>

#include "engine.hpp"
#include "portacheck/hooks.hpp"

namespace portabench::gpusim {

template <class Body>
void run_batch(LaunchEngine& engine, std::size_t items, std::size_t total_threads,
               Body&& body) {
  if (items == 0) return;
  if (portacheck::active()) {
    portacheck::begin_region();
    const auto order = portacheck::permutation(items, portacheck::order_seed());
    for (std::size_t slot = 0; slot < items; ++slot) {
      const std::size_t item = order[slot];
      portacheck::LaneScope lane(item);
      body(LaunchEngine::kSerialWorker, item);
    }
    return;
  }
  engine.run_blocks(items, total_threads, std::forward<Body>(body));
}

/// Zero-filled scratch for one batch item: the engine's pooled per-worker
/// arena on the forked path, the thread-local pooled arena on the serial
/// path.  Either way the steady state performs no allocation.
[[nodiscard]] inline std::span<std::byte> batch_scratch(LaunchEngine& engine,
                                                        std::size_t worker,
                                                        std::size_t bytes) {
  return worker == LaunchEngine::kSerialWorker ? LaunchEngine::local_arena(bytes)
                                               : engine.worker_arena(worker, bytes);
}

}  // namespace portabench::gpusim
