#include "engine.hpp"

#include <cstdlib>
#include <thread>

namespace portabench::gpusim {

namespace {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("PORTABENCH_GPUSIM_THREADS")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

thread_local std::size_t tls_region_depth = 0;

}  // namespace

LaunchEngine::LaunchEngine(std::size_t threads, simrt::Placement placement)
    : num_workers_(resolve_threads(threads)), placement_(std::move(placement)) {
  PB_EXPECTS(placement_.core_of_thread.empty() ||
             placement_.core_of_thread.size() >= num_workers_);
}

LaunchEngine& LaunchEngine::shared() {
  static LaunchEngine engine;
  return engine;
}

bool LaunchEngine::in_region() noexcept { return tls_region_depth != 0; }

LaunchEngine::RegionScope::RegionScope() noexcept { ++tls_region_depth; }
LaunchEngine::RegionScope::~RegionScope() { --tls_region_depth; }

simrt::ThreadPool& LaunchEngine::ensure_pool() {
  if (!pool_) {
    pool_ = std::make_unique<simrt::ThreadPool>(num_workers_, placement_);
    arenas_.resize(num_workers_);
  }
  return *pool_;
}

std::span<std::byte> LaunchEngine::worker_arena(std::size_t worker, std::size_t bytes) {
  // Inside a forked region each worker touches only its own padded slot,
  // so growth is race-free.  A worker id this engine never dealt (nested
  // launch routed through a different engine) falls back to the
  // thread-local arena rather than racing on someone else's slot.
  if (worker >= arenas_.size()) return local_arena(bytes);
  Arena& arena = arenas_[worker];
  if (arena.bytes.size() < bytes) {
    arena.bytes.resize(bytes);
    // Monotonic high-water mark; relaxed is fine, this is diagnostics.
    std::size_t seen = arena_high_water_.load(std::memory_order_relaxed);
    while (seen < bytes && !arena_high_water_.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed,
                               std::memory_order_relaxed)) {
    }
  }
  std::memset(arena.bytes.data(), 0, bytes);
  return {arena.bytes.data(), bytes};
}

std::span<std::byte> LaunchEngine::local_arena(std::size_t bytes) {
  thread_local std::vector<std::byte> arena;
  if (arena.size() < bytes) arena.resize(bytes);
  std::memset(arena.data(), 0, bytes);
  return {arena.data(), bytes};
}

}  // namespace portabench::gpusim
