// Asynchronous transfers on streams: H2D / D2H / device-peer copies.
//
// DeviceBuffer's copy_from_host/copy_to_host are synchronous whole-buffer
// memcpys on the calling thread.  The pipeline layer needs the CUDA-style
// asynchronous forms — enqueue the copy on a Stream, let Events order it
// against compute, overlap panel k+1's transfer with panel k's kernel —
// plus peer copies between devices for halo exchange.  All three entry
// points here share the same contract:
//
//  - Validation is EAGER: out-of-bounds ranges, freed/dead buffers and
//    misaligned counts throw precondition_error at the call site, in
//    program order, before anything is enqueued.  (An async error that
//    surfaces at some later synchronize() would be much harder to test
//    deterministically.)
//  - Transfer counters (bytes_h2d / bytes_d2h / bytes_d2d_*) advance at
//    enqueue time in program order, mirroring the stream's modeled clock
//    — identical between eager and async modes.
//  - The host payload (memcpy) runs when the stream executes the op.  In
//    async mode the caller must keep the host span alive until the
//    stream synchronizes, exactly like cudaMemcpyAsync.
//  - The modeled cost comes from a LinkModel; Transfer::throttle makes
//    the stream worker hold the op until the modeled seconds really
//    elapsed, so overlap benches measure genuine wall-time overlap
//    "under the modeled link bandwidth".
#pragma once

#include <cstring>
#include <span>
#include <thread>

#include "common/timer.hpp"
#include "memory.hpp"
#include "stream.hpp"
#include "topology.hpp"

namespace portabench::gpusim {

/// How a single async transfer is costed and executed.
struct Transfer {
  LinkModel link{};       ///< modeled latency + bandwidth
  bool throttle = false;  ///< enforce the modeled time in wall time
};

namespace detail {

/// Run the host payload and, when throttled, occupy the stream worker
/// until the modeled link time has really elapsed.  The spin yields: a
/// throttled transfer models an occupied DMA engine, not a hot core.
template <class Payload>
void run_throttled(double modeled_seconds, bool throttle, Payload&& payload) {
  Timer t;
  payload();
  if (!throttle) return;
  while (t.seconds() < modeled_seconds) std::this_thread::yield();
}

}  // namespace detail

/// Async H2D: copy host `src` into `dst[dst_offset ...]` on `stream`.
/// Returns the op's modeled completion timestamp on the stream clock.
template <class T>
double copy_to_device_async(Stream& stream, DeviceBuffer<T>& dst, std::size_t dst_offset,
                            std::span<const T> src, const Transfer& t = {}) {
  DeviceContext* ctx = dst.context();
  PB_EXPECTS(ctx != nullptr);  // freed / moved-from / default buffer
  PB_EXPECTS(&stream.context() == ctx);
  PB_EXPECTS(dst_offset <= dst.size() && src.size() <= dst.size() - dst_offset);
  const std::size_t bytes = src.size_bytes();
  ctx->note_h2d(bytes);
  const double modeled = t.link.seconds(bytes);
  T* out = dst.data() + dst_offset;
  return stream.enqueue(modeled, [out, src, modeled, throttle = t.throttle] {
    detail::run_throttled(modeled, throttle, [&] {
      if (!src.empty()) std::memcpy(out, src.data(), src.size_bytes());
    });
  });
}

/// Async D2H: copy `src[src_offset ...]` into host `dst` on `stream`.
template <class T>
double copy_to_host_async(Stream& stream, std::span<T> dst, const DeviceBuffer<T>& src,
                          std::size_t src_offset, const Transfer& t = {}) {
  DeviceContext* ctx = src.context();
  PB_EXPECTS(ctx != nullptr);
  PB_EXPECTS(&stream.context() == ctx);
  PB_EXPECTS(src_offset <= src.size() && dst.size() <= src.size() - src_offset);
  const std::size_t bytes = dst.size_bytes();
  ctx->note_d2h(bytes);
  const double modeled = t.link.seconds(bytes);
  const T* in = src.data() + src_offset;
  return stream.enqueue(modeled, [in, dst, modeled, throttle = t.throttle] {
    detail::run_throttled(modeled, throttle, [&] {
      if (!dst.empty()) std::memcpy(dst.data(), in, dst.size_bytes());
    });
  });
}

/// Async peer copy: `count` elements from `src[src_offset]` on one
/// device into `dst[dst_offset]` on another (halo exchange).  Enqueued
/// on `stream`, which may belong to either endpoint (or a third device
/// acting as the DMA initiator — validation only requires live
/// endpoints).  Both endpoints' d2d counters advance so a topology-wide
/// audit balances.  Same-buffer self-copies must not overlap.
template <class T>
double peer_copy_async(Stream& stream, DeviceBuffer<T>& dst, std::size_t dst_offset,
                       const DeviceBuffer<T>& src, std::size_t src_offset,
                       std::size_t count, const Transfer& t = {}) {
  DeviceContext* dst_ctx = dst.context();
  DeviceContext* src_ctx = src.context();
  PB_EXPECTS(dst_ctx != nullptr && src_ctx != nullptr);
  PB_EXPECTS(dst_offset <= dst.size() && count <= dst.size() - dst_offset);
  PB_EXPECTS(src_offset <= src.size() && count <= src.size() - src_offset);
  if (dst.data() == src.data()) {
    // One buffer: ranges must be disjoint (memcpy would be UB).
    PB_EXPECTS(dst_offset + count <= src_offset || src_offset + count <= dst_offset);
  }
  const std::size_t bytes = count * sizeof(T);
  src_ctx->note_d2d_out(bytes);
  dst_ctx->note_d2d_in(bytes);
  const double modeled = t.link.seconds(bytes);
  T* out = dst.data() + dst_offset;
  const T* in = src.data() + src_offset;
  return stream.enqueue(modeled, [out, in, bytes, modeled, throttle = t.throttle] {
    detail::run_throttled(modeled, throttle, [&] {
      if (bytes != 0) std::memcpy(out, in, bytes);
    });
  });
}

/// Topology-aware helpers: pick the link from the topology's shape and
/// honor its throttle flag.

/// H2D onto `device`, staged from a host buffer homed in `src_domain`.
template <class T>
double copy_to_device_async(DeviceTopology& topo, std::size_t device, Stream& stream,
                            DeviceBuffer<T>& dst, std::size_t dst_offset,
                            std::span<const T> src, std::size_t src_domain) {
  return copy_to_device_async(stream, dst, dst_offset, src,
                              Transfer{topo.h2d_link(device, src_domain),
                                       topo.config().throttle_links});
}

/// D2H from `device` into a host buffer homed in `dst_domain`.
template <class T>
double copy_to_host_async(DeviceTopology& topo, std::size_t device, Stream& stream,
                          std::span<T> dst, const DeviceBuffer<T>& src,
                          std::size_t src_offset, std::size_t dst_domain) {
  return copy_to_host_async(stream, dst, src, src_offset,
                            Transfer{topo.h2d_link(device, dst_domain),
                                     topo.config().throttle_links});
}

/// Peer copy from `src_device` to `dst_device` over the topology's D2D
/// link for that pair.
template <class T>
double peer_copy_async(DeviceTopology& topo, std::size_t src_device, std::size_t dst_device,
                       Stream& stream, DeviceBuffer<T>& dst, std::size_t dst_offset,
                       const DeviceBuffer<T>& src, std::size_t src_offset,
                       std::size_t count) {
  return peer_copy_async(stream, dst, dst_offset, src, src_offset, count,
                         Transfer{topo.d2d_link(src_device, dst_device),
                                  topo.config().throttle_links});
}

}  // namespace portabench::gpusim
