// Cooperative block-level primitives: reduce and scan across the lanes of
// one thread block.
//
// CUDA/HIP kernels build these from __shared__ staging plus
// __syncthreads(); under the simulator's thread-loop-fission lowering the
// same algorithms are expressed as successive for_lanes() regions over a
// shared-memory scratch array.  Used by reduction-style kernels (dot
// products, norms) that the library supports beyond the paper's GEMM.
#pragma once

#include <span>
#include <type_traits>

#include "launch.hpp"

namespace portabench::gpusim {

/// Sum-reduce one value per lane across the block.  `scratch` must hold
/// at least block_dim.volume() elements of block-shared memory.  After
/// the call scratch[0] holds the block total, which is also returned.
///
/// `value_of(ThreadCtx)` supplies each lane's contribution.  The
/// ceil-halving tree (lane i adds lane i + ceil(active/2)) matches the
/// canonical CUDA shared-memory reduction and handles non-power-of-two
/// blocks.
template <class T, class F>
T block_reduce_sum(BlockCtx& bc, std::span<T> scratch, F&& value_of) {
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= lanes);

  bc.for_lanes([&](const ThreadCtx& tc) { scratch[tc.lane_in_block()] = value_of(tc); });

  for (std::size_t active = lanes; active > 1;) {
    const std::size_t half = (active + 1) / 2;
    bc.for_lanes([&](const ThreadCtx& tc) {
      const std::size_t lane = tc.lane_in_block();
      if (lane + half < active) scratch[lane] = scratch[lane] + scratch[lane + half];
    });
    active = half;
  }
  return scratch[0];
}

/// Exclusive scan of one value per lane (Hillis-Steele over shared
/// memory; O(n log n) work, the standard block-scan shape).  `scratch`
/// must hold at least 2 * lanes elements.  On return scratch[i] holds the
/// exclusive prefix of lane i.  Correct for blocks of any dimensionality
/// (lanes are linearized in the CUDA order).
template <class T, class F>
void block_exclusive_scan(BlockCtx& bc, std::span<T> scratch, F&& value_of) {
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= 2 * lanes);
  std::span<T> ping = scratch.subspan(0, lanes);
  std::span<T> pong = scratch.subspan(lanes, lanes);

  bc.for_lanes([&](const ThreadCtx& tc) { ping[tc.lane_in_block()] = value_of(tc); });

  // Inclusive Hillis-Steele.
  for (std::size_t stride = 1; stride < lanes; stride *= 2) {
    bc.for_lanes([&](const ThreadCtx& tc) {
      const std::size_t lane = tc.lane_in_block();
      pong[lane] = lane >= stride ? ping[lane] + ping[lane - stride] : ping[lane];
    });
    std::swap(ping, pong);
  }

  // Shift right into the scratch's first half (exclusive form).  `ping`
  // holds the inclusive scan; stage through `pong` when ping aliases the
  // output region so no lane reads a slot another lane already wrote.
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    pong[lane] = lane == 0 ? T{} : ping[lane - 1];
  });
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    scratch[lane] = pong[lane];
  });
}

}  // namespace portabench::gpusim
