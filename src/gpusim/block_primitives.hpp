// Cooperative block-level primitives: reduce and scan across the lanes of
// one thread block, templated on element type and binary op.
//
// CUDA/HIP kernels build these from __shared__ staging plus
// __syncthreads(); under the simulator's thread-loop-fission lowering the
// same algorithms are expressed as successive for_lanes() regions over a
// shared-memory scratch array.
//
// Op contract (the identity-carrying reduction-op shape, see
// src/primitives/op.hpp for the concept and the stock operators):
//   T operator()(T, T) const   — the combiner; the LEFT operand is always
//                                the earlier lane, so non-commutative ops
//                                and tie-breaking resolve left-to-right
//   T identity() const         — op(identity, x) == x
// The combination TREE is a pure function of (lanes, op) — never of the
// sanitizer's permuted lane order — so for exact ops (integers, min/max,
// bit ops) the result is bitwise-identical to a plain left fold, and for
// floating-point ops it is bitwise-reproducible run-to-run.
#pragma once

#include <bit>
#include <span>
#include <type_traits>
#include <utility>

#include "launch.hpp"
#include "warp.hpp"

namespace portabench::gpusim {

namespace detail {

/// Minimal sum op backing the historical *_sum entry points (the rich
/// operator set lives one layer up in src/primitives/op.hpp; gpusim only
/// needs "plus with a zero identity" for its own aliases).
template <class T>
struct PlusOp {
  [[nodiscard]] T operator()(const T& a, const T& b) const { return a + b; }
  [[nodiscard]] T identity() const { return T{}; }
};

}  // namespace detail

/// Reduce one value per lane across the block with an arbitrary op:
/// hierarchical warp-shuffle trees (warp_reduce_leaders) followed by a
/// left-to-right fold of the warp leaders by lane 0.  `scratch` must hold
/// at least block_dim.volume() elements; after the call scratch[0] holds
/// the block result, which is also returned.
///
/// For exact ops the value equals the plain left fold of the lanes; for
/// floating-point sums it is the fixed (lanes, op)-determined tree.
template <class T, class Op, class F>
T block_reduce(BlockCtx& bc, std::span<T> scratch, Op op, F&& value_of) {
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= lanes);

  warp_reduce_leaders(bc, scratch, op, std::forward<F>(value_of));
  bc.for_lanes([&](const ThreadCtx& tc) {
    if (tc.lane_in_block() != 0) return;
    T acc = scratch[0];
    for (std::size_t base = kWarpSize; base < lanes; base += kWarpSize) {
      acc = op(acc, scratch[base]);
    }
    scratch[0] = acc;
  });
  return scratch[0];
}

/// Sum-reduce alias (the historical entry point; migrated callers keep
/// compiling unchanged).
template <class T, class F>
T block_reduce_sum(BlockCtx& bc, std::span<T> scratch, F&& value_of) {
  return block_reduce(bc, scratch, detail::PlusOp<T>{}, std::forward<F>(value_of));
}

/// Work-efficient exclusive scan of one value per lane (Blelloch
/// upsweep/downsweep over shared memory; O(n) combines versus the
/// O(n log n) of the Hillis-Steele shape it replaces).  `scratch` must
/// hold at least 2 * lanes elements (the tree is built on the
/// power-of-two ceiling, which is at most that).  On return scratch[i]
/// holds the exclusive prefix of lane i.  Non-commutative ops are
/// supported: the downsweep combines the incoming prefix on the LEFT of
/// the left-subtree total, preserving lane order.  Correct for blocks of
/// any dimensionality (lanes are linearized in the CUDA order).
template <class T, class Op, class F>
void block_exclusive_scan(BlockCtx& bc, std::span<T> scratch, Op op, F&& value_of) {
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= 2 * lanes);
  const std::size_t m = std::bit_ceil(lanes);

  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    scratch[lane] = value_of(tc);
    if (lane == 0) {
      for (std::size_t pad = lanes; pad < m; ++pad) scratch[pad] = op.identity();
    }
  });

  // Upsweep: each region is one tree level; the writer of slot
  // (j+1)*2*stride-1 reads slot (2j+1)*stride-1, which no other lane
  // writes in the same region.
  for (std::size_t stride = 1; stride < m; stride *= 2) {
    bc.for_lanes([&](const ThreadCtx& tc) {
      const std::size_t right = (tc.lane_in_block() + 1) * 2 * stride - 1;
      if (right < m) scratch[right] = op(scratch[right - stride], scratch[right]);
    });
  }

  bc.for_lanes([&](const ThreadCtx& tc) {
    if (tc.lane_in_block() == 0) scratch[m - 1] = op.identity();
  });

  // Downsweep: node slots hold the exclusive prefix of their subtree; the
  // right child's prefix is op(parent prefix, left-subtree total) — the
  // parent prefix stays on the left, which is what makes non-commutative
  // ops come out in lane order.
  for (std::size_t stride = m / 2; stride >= 1; stride /= 2) {
    bc.for_lanes([&](const ThreadCtx& tc) {
      const std::size_t right = (tc.lane_in_block() + 1) * 2 * stride - 1;
      if (right >= m) return;
      const std::size_t left = right - stride;
      const T t = scratch[left];
      scratch[left] = scratch[right];
      scratch[right] = op(scratch[right], t);
    });
  }
}

/// Sum-scan alias (the historical 3-argument entry point).
template <class T, class F>
void block_exclusive_scan(BlockCtx& bc, std::span<T> scratch, F&& value_of) {
  block_exclusive_scan(bc, scratch, detail::PlusOp<T>{}, std::forward<F>(value_of));
}

/// Inclusive scan: exclusive prefix combined (on the right) with the
/// lane's own value.
template <class T, class Op, class F>
void block_inclusive_scan(BlockCtx& bc, std::span<T> scratch, Op op, F&& value_of) {
  block_exclusive_scan(bc, scratch, op, value_of);
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    scratch[lane] = op(scratch[lane], value_of(tc));
  });
}

/// The pre-Blelloch Hillis-Steele exclusive scan, kept as the measured
/// baseline for bench/micro_primitives (O(n log n) combines, log n
/// barrier regions of full-block width).  Same scratch and result
/// contract as block_exclusive_scan.  For exact ops the two produce
/// identical bits; do not mix them inside one floating-point reduction
/// pipeline — the trees differ.
template <class T, class Op, class F>
void block_exclusive_scan_hillis(BlockCtx& bc, std::span<T> scratch, Op op,
                                 F&& value_of) {
  const std::size_t lanes = bc.block_dim().volume();
  PB_EXPECTS(scratch.size() >= 2 * lanes);
  std::span<T> ping = scratch.subspan(0, lanes);
  std::span<T> pong = scratch.subspan(lanes, lanes);

  bc.for_lanes([&](const ThreadCtx& tc) { ping[tc.lane_in_block()] = value_of(tc); });

  // Inclusive Hillis-Steele; the earlier lane's prefix stays on the left.
  for (std::size_t stride = 1; stride < lanes; stride *= 2) {
    bc.for_lanes([&](const ThreadCtx& tc) {
      const std::size_t lane = tc.lane_in_block();
      pong[lane] = lane >= stride ? op(ping[lane - stride], ping[lane]) : ping[lane];
    });
    std::swap(ping, pong);
  }

  // Shift right into the scratch's first half (exclusive form).  `ping`
  // holds the inclusive scan; stage through `pong` when ping aliases the
  // output region so no lane reads a slot another lane already wrote.
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    pong[lane] = lane == 0 ? op.identity() : ping[lane - 1];
  });
  bc.for_lanes([&](const ThreadCtx& tc) {
    const std::size_t lane = tc.lane_in_block();
    scratch[lane] = pong[lane];
  });
}

}  // namespace portabench::gpusim
