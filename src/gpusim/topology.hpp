// Multi-device topology: N simulated GCDs behind one node.
//
// The paper benchmarks Crusher's MI250X as a single GCD fed from a
// single NUMA domain, but the real node is 8 GCDs behind a 4-NUMA-domain
// EPYC 7A53 (Table II): GCD g is cabled to domain g/2, two GCDs share an
// MCM package with wide Infinity Fabric between them, and cross-package
// hops are narrower.  DeviceTopology models exactly that shape on the
// simulator: it owns one DeviceContext (memory arena + counters) and one
// LaunchEngine per device, pins each device's workers to the NUMA domain
// that feeds it (simrt::domain_placement through the engine's
// ThreadPool), and carries per-link bandwidth/latency for NUMA-local vs
// remote H2D/D2H and near (same-package) vs far (cross-package) D2D.
//
// Links are *modeled* by default — transfer calls account modeled
// seconds on the stream clock, host memcpy runs at host speed — and can
// be *throttled* (cfg.throttle_links) so the modeled time is enforced in
// wall time on the stream worker.  Throttled links are what make the
// transfer-overlap benches honest: an H2D/compute/D2H pipeline can only
// demonstrate real overlap if the transfers occupy real time.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "device.hpp"
#include "engine.hpp"
#include "simrt/affinity.hpp"

namespace portabench::gpusim {

/// One directed link's modeled characteristics (latency + bandwidth).
struct LinkModel {
  double bw_gbs = 16.0;    ///< GB/s (1e9 bytes per second)
  double latency_us = 5.0; ///< per-transfer setup latency

  [[nodiscard]] double seconds(std::size_t bytes) const noexcept {
    return latency_us * 1e-6 + static_cast<double>(bytes) / (bw_gbs * 1e9);
  }
};

/// Shape of the node: how many devices, which host CPU feeds them, and
/// the modeled link characteristics between the pieces.
struct TopologyConfig {
  GpuSpec device_spec = GpuSpec::mi250x_gcd();
  std::size_t devices = 1;

  /// Host CPU that stages transfers; its NUMA domain count drives which
  /// H2D link (local or remote) a staging buffer sees.
  simrt::CpuTopology host{1, 1};

  /// Host workers each device's LaunchEngine forks to.  0 resolves to
  /// host.cores / devices (at least 1) so the simulated node's compute
  /// splits evenly, matching one EPYC L3 complex driving each GCD.
  std::size_t workers_per_device = 0;

  /// Pin each device's workers to the device's NUMA domain
  /// (domain_placement).  Off: workers float, like OMP_PROC_BIND=false.
  bool pin_workers = true;

  // Per-link models.  Defaults follow the Crusher numbers: host-attached
  // Infinity Fabric at ~36 GB/s to the local domain, roughly a third of
  // that when the staging buffer lives in a remote domain and the
  // transfer crosses the socket fabric first; GCD pairs inside one MCM
  // see the wide in-package fabric, cross-package hops the narrow one.
  LinkModel h2d_local{36.0, 5.0};
  LinkModel h2d_remote{12.0, 8.0};
  LinkModel d2d_near{200.0, 2.0};
  LinkModel d2d_far{50.0, 3.0};

  /// Enforce modeled link time in wall time on the stream worker (spin
  /// after the host memcpy until the modeled seconds elapsed).  Benches
  /// measuring overlap turn this on; tests leave it off.
  bool throttle_links = false;

  /// Crusher node: `devices` MI250X GCDs (8 = full node) behind a
  /// 64-core 4-NUMA EPYC 7A53.
  [[nodiscard]] static TopologyConfig crusher_node(std::size_t devices = 8);
  /// Wombat-style pairing: 2 A100s behind a single-domain host over
  /// PCIe4-class links (no near/far D2D asymmetry worth modeling).
  [[nodiscard]] static TopologyConfig wombat_node(std::size_t devices = 2);
};

/// N simulated devices with per-device contexts, engines and links.
///
/// Device d is fed from NUMA domain `d * host.numa_domains / devices`
/// (Crusher: GCD g -> domain g/2) and its engine's workers are pinned
/// there when cfg.pin_workers.  The degenerate single-device topology
/// with default worker count and no pinning installs *no* private
/// engine, so context(0) launches through LaunchEngine::shared() —
/// bit-for-bit and engine-for-engine today's single-device behavior.
class DeviceTopology {
 public:
  explicit DeviceTopology(TopologyConfig cfg);
  DeviceTopology(const DeviceTopology&) = delete;
  DeviceTopology& operator=(const DeviceTopology&) = delete;

  [[nodiscard]] const TopologyConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t devices() const noexcept { return contexts_.size(); }
  [[nodiscard]] std::size_t workers_per_device() const noexcept { return workers_per_device_; }

  [[nodiscard]] DeviceContext& context(std::size_t device) const {
    PB_EXPECTS(device < contexts_.size());
    return *contexts_[device];
  }
  /// The engine device `device` launches through (private per-device
  /// engine, or the process-wide shared one in the degenerate topology).
  [[nodiscard]] LaunchEngine& engine(std::size_t device) const {
    return context(device).engine();
  }

  /// NUMA domain that feeds a device (Crusher: GCD g -> domain g/2).
  [[nodiscard]] std::size_t numa_domain_of(std::size_t device) const {
    PB_EXPECTS(device < contexts_.size());
    return device * cfg_.host.numa_domains / contexts_.size();
  }
  /// MCM package of a device (two GCDs per MI250X package).
  [[nodiscard]] std::size_t package_of(std::size_t device) const {
    PB_EXPECTS(device < contexts_.size());
    return device / 2;
  }

  /// Link a host-to-device transfer rides, given the staging buffer's
  /// home domain: local when it matches the device's feeding domain.
  [[nodiscard]] const LinkModel& h2d_link(std::size_t device, std::size_t src_domain) const {
    return src_domain == numa_domain_of(device) ? cfg_.h2d_local : cfg_.h2d_remote;
  }
  /// Device-to-device link: wide in-package fabric for an MCM pair,
  /// narrow cross-package hop otherwise.
  [[nodiscard]] const LinkModel& d2d_link(std::size_t src, std::size_t dst) const {
    return package_of(src) == package_of(dst) ? cfg_.d2d_near : cfg_.d2d_far;
  }

  [[nodiscard]] double h2d_seconds(std::size_t device, std::size_t bytes,
                                   std::size_t src_domain) const {
    return h2d_link(device, src_domain).seconds(bytes);
  }
  [[nodiscard]] double d2h_seconds(std::size_t device, std::size_t bytes,
                                   std::size_t dst_domain) const {
    // Same fabric both directions (the links are duplex); asymmetric
    // configs can diverge h2d_*/d2h_* later without changing callers.
    return h2d_link(device, dst_domain).seconds(bytes);
  }
  [[nodiscard]] double d2d_seconds(std::size_t src, std::size_t dst, std::size_t bytes) const {
    return d2d_link(src, dst).seconds(bytes);
  }

 private:
  TopologyConfig cfg_;
  std::size_t workers_per_device_ = 1;
  std::vector<std::unique_ptr<DeviceContext>> contexts_;
};

}  // namespace portabench::gpusim
