#include "topology.hpp"

namespace portabench::gpusim {

TopologyConfig TopologyConfig::crusher_node(std::size_t devices) {
  TopologyConfig cfg;
  cfg.device_spec = GpuSpec::mi250x_gcd();
  cfg.devices = devices;
  cfg.host = simrt::CpuTopology{64, 4};  // EPYC 7A53
  return cfg;
}

TopologyConfig TopologyConfig::wombat_node(std::size_t devices) {
  TopologyConfig cfg;
  cfg.device_spec = GpuSpec::a100();
  cfg.devices = devices;
  cfg.host = simrt::CpuTopology{80, 1};  // Ampere Altra: one domain
  cfg.h2d_local = LinkModel{16.0, 5.0};  // PCIe4 x16, no NUMA asymmetry
  cfg.h2d_remote = cfg.h2d_local;
  cfg.d2d_near = LinkModel{16.0, 5.0};   // peer traffic bounces through PCIe
  cfg.d2d_far = cfg.d2d_near;
  return cfg;
}

DeviceTopology::DeviceTopology(TopologyConfig cfg) : cfg_(std::move(cfg)) {
  PB_EXPECTS(cfg_.devices >= 1);
  PB_EXPECTS(cfg_.host.numa_domains >= 1 && cfg_.host.cores >= cfg_.host.numa_domains);

  const bool degenerate =
      cfg_.devices == 1 && cfg_.workers_per_device == 0 && !cfg_.pin_workers;
  workers_per_device_ = cfg_.workers_per_device != 0
                            ? cfg_.workers_per_device
                            : std::max<std::size_t>(1, cfg_.host.cores / cfg_.devices);

  contexts_.reserve(cfg_.devices);
  for (std::size_t d = 0; d < cfg_.devices; ++d) {
    contexts_.push_back(std::make_unique<DeviceContext>(cfg_.device_spec));
    if (degenerate) continue;  // leave engine() on LaunchEngine::shared()
    simrt::Placement placement;
    if (cfg_.pin_workers) {
      // numa_domain_of() divides by the final device count; contexts_ is
      // still growing here, so compute the domain from cfg_ directly.
      const std::size_t domain = d * cfg_.host.numa_domains / cfg_.devices;
      placement = simrt::domain_placement(cfg_.host, workers_per_device_, domain);
    }
    contexts_.back()->set_engine(
        std::make_shared<LaunchEngine>(workers_per_device_, std::move(placement)));
  }
}

}  // namespace portabench::gpusim
