// nvprof-style profiler for the simulated device.
//
// Section IV: "Both Kokkos and Python/Numba were verified by using
// NVIDIA's nvprof profiler to corroborate GPU activity."  The simulator
// offers the same capability: a Profiler subscribes to a DeviceContext
// and records every kernel launch (name, geometry, thread count) and
// every transfer, then prints an activity table shaped like nvprof's
// summary.  Modeled durations can be attached by the caller (the
// perfmodel supplies them); without durations the table reports activity
// counts only — which is all the paper needed from nvprof.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "device.hpp"
#include "launch.hpp"

namespace portabench::gpusim {

/// One recorded kernel launch.
struct LaunchRecord {
  std::string name;
  Dim3 grid;
  Dim3 block;
  double modeled_seconds = 0.0;  ///< 0 when no model was attached
};

/// One recorded transfer.
struct TransferRecord {
  enum class Direction { kH2D, kD2H } direction;
  std::size_t bytes = 0;
};

/// Aggregated per-kernel statistics (nvprof's "GPU activities" rows).
struct KernelSummary {
  std::string name;
  std::size_t calls = 0;
  std::uint64_t total_threads = 0;
  double total_seconds = 0.0;
};

/// Records device activity.  Attach to a context, run kernels through
/// the profiled launch helpers, then print or query.
class Profiler {
 public:
  /// Record a launch (called by profiled_launch, or manually).
  void record_launch(std::string name, const Dim3& grid, const Dim3& block,
                     double modeled_seconds = 0.0);
  void record_transfer(TransferRecord::Direction direction, std::size_t bytes);

  [[nodiscard]] const std::vector<LaunchRecord>& launches() const noexcept {
    return launches_;
  }
  [[nodiscard]] const std::vector<TransferRecord>& transfers() const noexcept {
    return transfers_;
  }

  /// Per-kernel aggregation, most-called first.
  [[nodiscard]] std::vector<KernelSummary> kernel_summaries() const;

  [[nodiscard]] std::uint64_t bytes(TransferRecord::Direction direction) const;

  /// nvprof-like text dump ("==PROF== ..." lines).
  [[nodiscard]] std::string report() const;

  void clear();

 private:
  std::vector<LaunchRecord> launches_;
  std::vector<TransferRecord> transfers_;
};

/// Launch `kernel` through `ctx` while recording it in `profiler` under
/// `name`, optionally attaching a modeled duration.
template <class F>
void profiled_launch(Profiler& profiler, DeviceContext& ctx, std::string name,
                     const Dim3& grid, const Dim3& block, F&& kernel,
                     double modeled_seconds = 0.0) {
  launch(ctx, grid, block, std::forward<F>(kernel));
  profiler.record_launch(std::move(name), grid, block, modeled_seconds);
}

}  // namespace portabench::gpusim
