#include "coalescing.hpp"

#include <algorithm>
#include <set>

namespace portabench::gpusim {

CoalescingReport analyze_warp_access(
    std::size_t active_lanes, std::size_t element_bytes,
    const std::function<std::uint64_t(std::size_t)>& address_of) {
  PB_EXPECTS(active_lanes > 0 && element_bytes > 0);
  CoalescingReport report;
  report.lanes = active_lanes;

  std::set<std::uint64_t> sectors;
  for (std::size_t lane = 0; lane < active_lanes; ++lane) {
    const std::uint64_t first = address_of(lane);
    const std::uint64_t last = first + element_bytes - 1;
    for (std::uint64_t s = first / kSectorBytes; s <= last / kSectorBytes; ++s) {
      sectors.insert(s);
    }
  }
  report.sectors = sectors.size();

  // Minimum sectors: the lanes' bytes packed contiguously.
  const std::size_t total_bytes = active_lanes * element_bytes;
  report.ideal_sectors = (total_bytes + kSectorBytes - 1) / kSectorBytes;
  return report;
}

double GemmWarpAccesses::weighted_expansion(std::size_t k) const {
  // Per output element: k A-reads + k B-reads + 1 C-write.
  const double kk = static_cast<double>(k);
  return (kk * a_read.expansion() + kk * b_read.expansion() + c_write.expansion()) /
         (2.0 * kk + 1.0);
}

GemmWarpAccesses analyze_gemm_coalescing(const GpuSpec& spec, const Dim3& block,
                                         std::size_t n, std::size_t element_bytes,
                                         bool row_on_x) {
  PB_EXPECTS(block.volume() > 0);
  GemmWarpAccesses out;
  const std::size_t warp = std::min(spec.warp_size, block.volume());

  // Lane -> (threadIdx.x, threadIdx.y) for the first warp of block (0,0),
  // CUDA linearization (x fastest).
  auto tx = [&](std::size_t lane) { return lane % block.x; };
  auto ty = [&](std::size_t lane) { return (lane / block.x) % block.y; };
  // Fig. 3a: row = threadIdx.y, col = threadIdx.x.  Kokkos MDRange
  // lowering (row_on_x): row = threadIdx.x, col = threadIdx.y.
  auto row = [&](std::size_t lane) { return row_on_x ? tx(lane) : ty(lane); };
  auto col = [&](std::size_t lane) { return row_on_x ? ty(lane) : tx(lane); };

  // Row-major storage; inner iteration i = 0.
  const std::uint64_t a_base = 0;
  const std::uint64_t b_base = static_cast<std::uint64_t>(n) * n * element_bytes;
  const std::uint64_t c_base = 2 * b_base;

  out.a_read = analyze_warp_access(warp, element_bytes, [&](std::size_t lane) {
    // A[row * k + 0]: stride n per row; lanes sharing a row broadcast.
    return a_base + static_cast<std::uint64_t>(row(lane)) * n * element_bytes;
  });
  out.b_read = analyze_warp_access(warp, element_bytes, [&](std::size_t lane) {
    // B[0 * n + col].
    return b_base + static_cast<std::uint64_t>(col(lane)) * element_bytes;
  });
  out.c_write = analyze_warp_access(warp, element_bytes, [&](std::size_t lane) {
    // C[row * n + col].
    return c_base +
           (static_cast<std::uint64_t>(row(lane)) * n + col(lane)) * element_bytes;
  });
  return out;
}

}  // namespace portabench::gpusim
