#include "occupancy.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "device.hpp"

namespace portabench::gpusim {

Occupancy compute_occupancy(const GpuSpec& spec, const KernelResources& kernel) {
  Occupancy occ;
  if (kernel.threads_per_block == 0 || kernel.threads_per_block > spec.max_threads_per_block) {
    return occ;  // invalid block: zero occupancy
  }

  // Warp-granular thread allocation: a block of 33 threads on a 32-wide
  // warp machine occupies 2 warps' worth of scheduler slots.
  const std::size_t warps_per_block =
      (kernel.threads_per_block + spec.warp_size - 1) / spec.warp_size;
  const std::size_t alloc_threads_per_block = warps_per_block * spec.warp_size;

  const std::size_t by_threads = spec.max_threads_per_sm / alloc_threads_per_block;
  const std::size_t by_blocks = spec.max_blocks_per_sm;
  const std::size_t regs_per_block = kernel.registers_per_thread * alloc_threads_per_block;
  const std::size_t by_regs =
      regs_per_block == 0 ? by_blocks : spec.registers_per_sm / regs_per_block;
  const std::size_t by_shared =
      kernel.shared_bytes_per_block == 0
          ? by_blocks
          : spec.shared_mem_per_sm / kernel.shared_bytes_per_block;

  occ.active_blocks_per_sm = std::min({by_threads, by_blocks, by_regs, by_shared});
  occ.active_threads_per_sm = occ.active_blocks_per_sm * alloc_threads_per_block;
  occ.fraction = static_cast<double>(occ.active_threads_per_sm) /
                 static_cast<double>(spec.max_threads_per_sm);

  if (occ.active_blocks_per_sm == by_threads) {
    occ.limiter = "threads";
  }
  if (occ.active_blocks_per_sm == by_blocks && by_blocks <= by_threads) {
    occ.limiter = "blocks";
  }
  if (occ.active_blocks_per_sm == by_regs && by_regs < std::min(by_threads, by_blocks)) {
    occ.limiter = "registers";
  }
  if (occ.active_blocks_per_sm == by_shared &&
      by_shared < std::min({by_threads, by_blocks, by_regs})) {
    occ.limiter = "shared";
  }
  return occ;
}

double waves_for(const GpuSpec& spec, const Occupancy& occ, std::size_t total_blocks) {
  PB_EXPECTS(occ.active_blocks_per_sm > 0);
  const double concurrent =
      static_cast<double>(occ.active_blocks_per_sm) * static_cast<double>(spec.sm_count);
  return std::ceil(static_cast<double>(total_blocks) / concurrent);
}

}  // namespace portabench::gpusim
