// Simulated GPU device.
//
// Substitute for the A100 (CUDA) and MI250X (HIP) devices of Table II.
// The simulator executes kernels *functionally* on the host — every
// numerical result in tests and benches is produced by really running the
// Fig. 3 kernels under SIMT index semantics — while accounting the
// quantities the analytical performance model consumes (launches, threads,
// transfer bytes, allocation footprint).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "dim3.hpp"
#include "occupancy.hpp"

namespace portabench::gpusim {

class LaunchEngine;

enum class Vendor { kNvidia, kAmd };

/// Functional device limits and SIMT parameters.
struct GpuSpec {
  std::string name;
  Vendor vendor = Vendor::kNvidia;
  std::size_t warp_size = 32;           ///< 32 (NVIDIA warp) or 64 (AMD wavefront)
  std::size_t sm_count = 108;           ///< A100: 108 SMs; MI250X GCD: 110 CUs
  std::size_t max_threads_per_block = 1024;
  std::size_t max_threads_per_sm = 2048;
  std::size_t max_blocks_per_sm = 32;
  std::size_t registers_per_sm = 65536;
  std::size_t shared_mem_per_block = 48 * 1024;
  std::size_t shared_mem_per_sm = 164 * 1024;
  std::size_t global_mem_bytes = std::size_t{64} * 1024 * 1024 * 1024;

  /// NVIDIA A100 (SXM4, 40 GB) functional parameters.
  static GpuSpec a100();
  /// One GCD of an AMD MI250X (the paper's single-GPU runs use one GCD).
  static GpuSpec mi250x_gcd();
};

/// Cumulative activity counters, inspectable the way the paper used
/// nvprof "to corroborate GPU activity".  Returned by value: a snapshot
/// of the device's internal atomic counters at the moment of the call.
struct DeviceCounters {
  std::uint64_t kernel_launches = 0;
  std::uint64_t blocks_executed = 0;
  std::uint64_t threads_executed = 0;
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t bytes_d2d_in = 0;   ///< peer-copy bytes landing on this device
  std::uint64_t bytes_d2d_out = 0;  ///< peer-copy bytes leaving this device
  std::uint64_t bytes_allocated = 0;
  std::uint64_t live_allocations = 0;
  std::uint64_t peak_bytes_allocated = 0;
};

/// Hit/miss counters of the launch-configuration cache (diagnostics).
struct LaunchCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// A simulated device: owns allocation bookkeeping and counters.
/// DeviceBuffer / launch() operate through a DeviceContext.
class DeviceContext {
 public:
  explicit DeviceContext(GpuSpec spec);
  DeviceContext(const DeviceContext&) = delete;
  DeviceContext& operator=(const DeviceContext&) = delete;
  ~DeviceContext();

  [[nodiscard]] const GpuSpec& spec() const noexcept { return spec_; }

  /// Consistent-enough snapshot of the activity counters.  The fields are
  /// maintained as individual atomics (concurrent launches and transfers
  /// on independent async streams bump them race-free); the snapshot
  /// reads each field once, so totals observed *between* in-flight
  /// operations are exact and a snapshot taken mid-operation is at worst
  /// one operation stale per field — never torn.
  [[nodiscard]] DeviceCounters counters() const noexcept;
  void reset_counters() noexcept;

  /// Validate a launch configuration against device limits; throws
  /// precondition_error on violation (the simulator's cudaErrorInvalidValue).
  void validate_launch(const Dim3& grid, const Dim3& block) const;

  /// Memoized validate_launch + shared-memory-limit check + occupancy,
  /// keyed on (grid, block, shared_bytes).  A steady-state launch loop
  /// (the paper's repeated-trial protocol re-launches one configuration
  /// hundreds of times) pays one hash probe instead of re-deriving the
  /// limits and the occupancy model on every launch.  Returns the cached
  /// occupancy of the configuration.  Invalid configurations throw and
  /// are never cached.
  const Occupancy& validate_launch_cached(const Dim3& grid, const Dim3& block,
                                          std::size_t shared_bytes) const;

  /// Occupancy of a (validated) launch configuration, through the same
  /// memoized cache as validate_launch_cached.
  [[nodiscard]] const Occupancy& launch_occupancy(const Dim3& grid, const Dim3& block,
                                                  std::size_t shared_bytes) const {
    return validate_launch_cached(grid, block, shared_bytes);
  }

  [[nodiscard]] LaunchCacheStats launch_cache_stats() const noexcept;

  /// The execution engine launches on this device run through: the
  /// process-wide shared engine unless one was installed (benches and
  /// tests install private engines to control the worker count).
  [[nodiscard]] LaunchEngine& engine() const noexcept;
  void set_engine(std::shared_ptr<LaunchEngine> engine) noexcept {
    engine_ = std::move(engine);
  }

  // --- bookkeeping entry points used by DeviceBuffer / launch() ---
  //
  // All of these may be called concurrently: a DeviceContext is shared by
  // every stream submitting to the device, and with the serving layer's
  // stream-per-shard model two async workers routinely note launches and
  // transfers at the same instant.  Pure tallies are relaxed atomic adds
  // (each counter is independent; only its total is observable); the
  // allocation path holds alloc_mutex_ because the OOM precondition and
  // the peak watermark read-modify-write *pairs* of fields.
  void note_alloc(std::size_t bytes);
  void note_free(std::size_t bytes);
  void note_h2d(std::size_t bytes) noexcept {
    bytes_h2d_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_d2h(std::size_t bytes) noexcept {
    bytes_d2h_.fetch_add(bytes, std::memory_order_relaxed);
  }
  /// Peer (device-to-device) copy: tallied on both endpoints so a
  /// topology-wide halo-exchange audit balances (sum of in == sum of out).
  void note_d2d_in(std::size_t bytes) noexcept {
    bytes_d2d_in_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_d2d_out(std::size_t bytes) noexcept {
    bytes_d2d_out_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void note_launch(const Dim3& grid, const Dim3& block) noexcept {
    kernel_launches_.fetch_add(1, std::memory_order_relaxed);
    blocks_executed_.fetch_add(grid.volume(), std::memory_order_relaxed);
    threads_executed_.fetch_add(grid.volume() * block.volume(), std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t bytes_in_use() const noexcept {
    return bytes_in_use_.load(std::memory_order_relaxed);
  }

 private:
  /// Direct-mapped launch-configuration cache entry.
  struct CacheEntry {
    bool valid = false;
    Dim3 grid;
    Dim3 block;
    std::size_t shared_bytes = 0;
    Occupancy occupancy;
  };
  static constexpr std::size_t kCacheSlots = 32;  // power of two

  GpuSpec spec_;
  std::atomic<std::uint64_t> kernel_launches_{0};
  std::atomic<std::uint64_t> blocks_executed_{0};
  std::atomic<std::uint64_t> threads_executed_{0};
  std::atomic<std::uint64_t> bytes_h2d_{0};
  std::atomic<std::uint64_t> bytes_d2h_{0};
  std::atomic<std::uint64_t> bytes_d2d_in_{0};
  std::atomic<std::uint64_t> bytes_d2d_out_{0};
  std::atomic<std::uint64_t> bytes_allocated_{0};
  std::atomic<std::uint64_t> live_allocations_{0};
  std::atomic<std::uint64_t> peak_bytes_allocated_{0};
  std::atomic<std::size_t> bytes_in_use_{0};
  std::mutex alloc_mutex_;  // OOM check + peak update are paired RMWs
  std::shared_ptr<LaunchEngine> engine_;  // null => LaunchEngine::shared()

  // The cache is consulted from launches on any thread (async streams),
  // so probes take a mutex; an uncontended lock is noise next to even a
  // single simulated block.
  mutable std::mutex cache_mutex_;
  mutable CacheEntry cache_[kCacheSlots];
  mutable LaunchCacheStats cache_stats_;
};

}  // namespace portabench::gpusim
