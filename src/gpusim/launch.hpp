// Kernel launch: functional SIMT execution of device kernels.
//
// launch() runs a per-thread functor for every (block, thread) coordinate
// of the grid — sufficient for every kernel in the paper (Fig. 3 kernels
// are barrier-free).  launch_blocks() additionally supports cooperative
// kernels: the functor receives a BlockCtx whose for_lanes() regions have
// barrier semantics between successive calls (the standard "thread-loop
// fission" lowering of __syncthreads used by SIMT-on-CPU runtimes), with
// block-shared scratch memory — used by the tiled shared-memory GEMM that
// the ablation benches contrast against the paper's naive kernels.
#pragma once

#include <cstddef>
#include <vector>

#include "common/buffer.hpp"
#include "device.hpp"
#include "dim3.hpp"
#include "portacheck/hooks.hpp"
#include "simrt/parallel.hpp"

namespace portabench::gpusim {

namespace detail {

/// Linear block id, x-fastest (CUDA convention).
inline std::size_t linear_block(const Dim3& grid, const Dim3& idx) noexcept {
  return idx.x + grid.x * (idx.y + grid.y * idx.z);
}

/// Shadow lane for a simulated SIMT thread: its linear global thread id.
/// Derived from the block's ORIGINAL coordinates, so a permuted schedule
/// reports the same lane ids as the canonical one.
inline std::size_t simt_lane(const Dim3& grid, const Dim3& block, const Dim3& block_idx,
                             const Dim3& thread_idx) noexcept {
  const std::size_t in_block =
      thread_idx.x + block.x * (thread_idx.y + block.y * thread_idx.z);
  return linear_block(grid, block_idx) * block.volume() + in_block;
}

}  // namespace detail

/// Execute `kernel(ThreadCtx)` for every thread of the grid, serially over
/// blocks (deterministic).  Throws precondition_error on an invalid
/// configuration, mirroring a CUDA launch failure.
template <class F>
void launch(DeviceContext& ctx, const Dim3& grid, const Dim3& block, F&& kernel) {
  ctx.validate_launch(grid, block);
  ctx.note_launch(grid, block);

  ThreadCtx tc;
  tc.grid_dim = grid;
  tc.block_dim = block;

  if (portacheck::active()) {
    // Sanitized path: blocks execute in a seed-permuted order and every
    // simulated thread carries its linear global thread id as shadow lane,
    // so write-write conflicts between SIMT threads are flagged even though
    // the simulation itself is serial.
    portacheck::begin_region();
    const auto order = portacheck::permutation(grid.volume(), portacheck::order_seed());
    for (const std::size_t linear : order) {
      tc.block_idx = {linear % grid.x, (linear / grid.x) % grid.y,
                      linear / (grid.x * grid.y)};
      for (std::size_t tz = 0; tz < block.z; ++tz) {
        for (std::size_t ty = 0; ty < block.y; ++ty) {
          for (std::size_t tx = 0; tx < block.x; ++tx) {
            tc.thread_idx = {tx, ty, tz};
            portacheck::LaneScope lane(
                detail::simt_lane(grid, block, tc.block_idx, tc.thread_idx));
            kernel(tc);
          }
        }
      }
    }
    return;
  }

  for (std::size_t bz = 0; bz < grid.z; ++bz) {
    for (std::size_t by = 0; by < grid.y; ++by) {
      for (std::size_t bx = 0; bx < grid.x; ++bx) {
        tc.block_idx = {bx, by, bz};
        for (std::size_t tz = 0; tz < block.z; ++tz) {
          for (std::size_t ty = 0; ty < block.y; ++ty) {
            for (std::size_t tx = 0; tx < block.x; ++tx) {
              tc.thread_idx = {tx, ty, tz};
              kernel(tc);
            }
          }
        }
      }
    }
  }
}

/// Execute a grid with host-side parallelism across blocks (blocks are
/// independent in the CUDA model, so this is semantics-preserving for any
/// correct kernel).
template <class F>
void launch(DeviceContext& ctx, const simrt::ThreadsSpace& host, const Dim3& grid,
            const Dim3& block, F&& kernel) {
  ctx.validate_launch(grid, block);
  ctx.note_launch(grid, block);

  const std::size_t num_blocks = grid.volume();
  const bool checked = portacheck::active();
  // Block order permutation comes from the checked parallel_for dispatch;
  // here we only refine the shadow lane from per-block to per-SIMT-thread.
  simrt::parallel_for(host, simrt::RangePolicy(0, num_blocks), [&](std::size_t linear) {
    ThreadCtx tc;
    tc.grid_dim = grid;
    tc.block_dim = block;
    tc.block_idx = {linear % grid.x, (linear / grid.x) % grid.y, linear / (grid.x * grid.y)};
    for (std::size_t tz = 0; tz < block.z; ++tz) {
      for (std::size_t ty = 0; ty < block.y; ++ty) {
        for (std::size_t tx = 0; tx < block.x; ++tx) {
          tc.thread_idx = {tx, ty, tz};
          if (checked) {
            portacheck::LaneScope lane(
                detail::simt_lane(grid, block, tc.block_idx, tc.thread_idx));
            kernel(tc);
          } else {
            kernel(tc);
          }
        }
      }
    }
  });
}

/// Per-block execution context for cooperative kernels.
class BlockCtx {
 public:
  BlockCtx(Dim3 grid, Dim3 block, Dim3 block_idx, std::size_t shared_bytes)
      : grid_(grid), block_(block), block_idx_(block_idx), shared_(shared_bytes) {}

  [[nodiscard]] const Dim3& grid_dim() const noexcept { return grid_; }
  [[nodiscard]] const Dim3& block_dim() const noexcept { return block_; }
  [[nodiscard]] const Dim3& block_idx() const noexcept { return block_idx_; }

  /// Run `region(ThreadCtx)` for every lane of the block.  Two successive
  /// for_lanes() calls are separated by an implicit __syncthreads().
  template <class G>
  void for_lanes(G&& region) {
    ThreadCtx tc;
    tc.grid_dim = grid_;
    tc.block_dim = block_;
    tc.block_idx = block_idx_;

    if (portacheck::active()) {
      // A for_lanes region is one barrier-to-barrier span: open a fresh
      // shadow epoch so accesses before the implicit __syncthreads never
      // conflict with accesses after it, permute lane order within the
      // region, and tag each lane with its global SIMT thread id.
      portacheck::begin_region();
      const auto order =
          portacheck::permutation(block_.volume(), portacheck::order_seed());
      for (const std::size_t lin : order) {
        tc.thread_idx = {lin % block_.x, (lin / block_.x) % block_.y,
                         lin / (block_.x * block_.y)};
        portacheck::LaneScope lane(
            detail::simt_lane(grid_, block_, block_idx_, tc.thread_idx));
        region(tc);
      }
      return;
    }

    for (std::size_t tz = 0; tz < block_.z; ++tz) {
      for (std::size_t ty = 0; ty < block_.y; ++ty) {
        for (std::size_t tx = 0; tx < block_.x; ++tx) {
          tc.thread_idx = {tx, ty, tz};
          region(tc);
        }
      }
    }
  }

  /// Block-shared scratch: a typed span carved from the block's shared
  /// memory arena (__shared__ analogue).  Offsets are byte-based and the
  /// caller composes multiple arrays by advancing `byte_offset`.
  template <class T>
  [[nodiscard]] std::span<T> shared(std::size_t count, std::size_t byte_offset = 0) {
    PB_EXPECTS(byte_offset % alignof(T) == 0);
    PB_EXPECTS(byte_offset + count * sizeof(T) <= shared_.size());
    return {reinterpret_cast<T*>(shared_.data() + byte_offset), count};
  }

  [[nodiscard]] std::size_t shared_bytes() const noexcept { return shared_.size(); }

 private:
  Dim3 grid_;
  Dim3 block_;
  Dim3 block_idx_;
  std::vector<std::byte> shared_;
};

/// Launch a cooperative kernel: `kernel(BlockCtx&)` runs once per block
/// with `shared_bytes` of block-shared memory.  Shared memory size is
/// validated against the device limit, mirroring a CUDA launch error for
/// oversized dynamic shared memory.
template <class F>
void launch_blocks(DeviceContext& ctx, const Dim3& grid, const Dim3& block,
                   std::size_t shared_bytes, F&& kernel) {
  ctx.validate_launch(grid, block);
  PB_EXPECTS(shared_bytes <= ctx.spec().shared_mem_per_block);
  ctx.note_launch(grid, block);

  if (portacheck::active()) {
    // Blocks of a cooperative launch are still independent — shuffle them.
    // (Cross-block conflicts through global memory are flagged only if the
    // blocks land in the same epoch; for_lanes() bumps the epoch per
    // barrier span, so this check is intra-span by design.)
    const auto order = portacheck::permutation(grid.volume(), portacheck::order_seed());
    for (const std::size_t linear : order) {
      BlockCtx bc(grid, block,
                  Dim3{linear % grid.x, (linear / grid.x) % grid.y,
                       linear / (grid.x * grid.y)},
                  shared_bytes);
      kernel(bc);
    }
    return;
  }

  for (std::size_t bz = 0; bz < grid.z; ++bz) {
    for (std::size_t by = 0; by < grid.y; ++by) {
      for (std::size_t bx = 0; bx < grid.x; ++bx) {
        BlockCtx bc(grid, block, Dim3{bx, by, bz}, shared_bytes);
        kernel(bc);
      }
    }
  }
}

}  // namespace portabench::gpusim
