// Kernel launch: functional SIMT execution of device kernels.
//
// launch() runs a per-thread functor for every (block, thread) coordinate
// of the grid — sufficient for every kernel in the paper (Fig. 3 kernels
// are barrier-free).  launch_blocks() additionally supports cooperative
// kernels: the functor receives a BlockCtx whose for_lanes() regions have
// barrier semantics between successive calls (the standard "thread-loop
// fission" lowering of __syncthreads used by SIMT-on-CPU runtimes), with
// block-shared scratch memory — used by the tiled shared-memory GEMM that
// the ablation benches contrast against the paper's naive kernels.
//
// Execution model (see docs/PERF.md, "The gpusim launch engine"): blocks
// of a CUDA grid are independent, so both entry points run blocks in
// parallel across the device's LaunchEngine by default — the host-side
// analogue of blocks landing on different SMs.  Sub-cutoff grids run
// serially inline (fork elision), the sanitized path keeps its serial
// seed-permuted schedule with per-SIMT-thread shadow lanes, and
// launch_serial()/launch_blocks_serial() pin the serial walk explicitly
// (the baseline the micro_launch bench measures against).  Block-shared
// scratch comes from the engine's pooled per-worker arenas: the
// steady-state launch path allocates nothing.
#pragma once

#include <cstddef>
#include <span>

#include "common/buffer.hpp"
#include "device.hpp"
#include "dim3.hpp"
#include "engine.hpp"
#include "portacheck/hooks.hpp"
#include "simrt/parallel.hpp"

namespace portabench::gpusim {

namespace detail {

/// Linear block id, x-fastest (CUDA convention).
inline std::size_t linear_block(const Dim3& grid, const Dim3& idx) noexcept {
  return idx.x + grid.x * (idx.y + grid.y * idx.z);
}

/// Block coordinates of a linear block id (inverse of linear_block).
inline Dim3 block_from_linear(const Dim3& grid, std::size_t linear) noexcept {
  return {linear % grid.x, (linear / grid.x) % grid.y, linear / (grid.x * grid.y)};
}

/// Shadow lane for a simulated SIMT thread: its linear global thread id.
/// Derived from the block's ORIGINAL coordinates, so a permuted schedule
/// reports the same lane ids as the canonical one.
inline std::size_t simt_lane(const Dim3& grid, const Dim3& block, const Dim3& block_idx,
                             const Dim3& thread_idx) noexcept {
  const std::size_t in_block =
      thread_idx.x + block.x * (thread_idx.y + block.y * thread_idx.z);
  return linear_block(grid, block_idx) * block.volume() + in_block;
}

/// Run `kernel(tc)` for every lane of tc's block: the 3-deep thread-index
/// nest flattened into one strength-reduced carry walk (x fastest, the
/// CUDA linearization — execution order is identical to the nested
/// loops, so results are bitwise-identical).  The caller hoists all
/// other ThreadCtx state; only thread_idx changes per lane.
template <class F>
inline void run_block_lanes(ThreadCtx& tc, F&& kernel) {
  const Dim3 block = tc.block_dim;
  const std::size_t lanes = block.volume();
  tc.thread_idx = {0, 0, 0};
  for (std::size_t lin = 0; lin < lanes; ++lin) {
    kernel(tc);
    if (++tc.thread_idx.x == block.x) {
      tc.thread_idx.x = 0;
      if (++tc.thread_idx.y == block.y) {
        tc.thread_idx.y = 0;
        ++tc.thread_idx.z;
      }
    }
  }
}

/// Sanitized lane walk of one block: seed-permuted-order-independent by
/// construction (lane order inside a barrier-free launch is arbitrary),
/// every simulated thread tagged with its linear global thread id.
template <class F>
inline void run_block_lanes_checked(ThreadCtx& tc, F&& kernel) {
  const Dim3 block = tc.block_dim;
  for (std::size_t tz = 0; tz < block.z; ++tz) {
    for (std::size_t ty = 0; ty < block.y; ++ty) {
      for (std::size_t tx = 0; tx < block.x; ++tx) {
        tc.thread_idx = {tx, ty, tz};
        portacheck::LaneScope lane(
            simt_lane(tc.grid_dim, block, tc.block_idx, tc.thread_idx));
        kernel(tc);
      }
    }
  }
}

}  // namespace detail

/// Execute `kernel(ThreadCtx)` for every thread of the grid with the
/// serial block walk (deterministic block order; the pre-engine seed
/// behaviour).  launch() routes sub-cutoff grids here; the micro_launch
/// bench uses it as the serial baseline.
template <class F>
void launch_serial(DeviceContext& ctx, const Dim3& grid, const Dim3& block, F&& kernel) {
  ctx.validate_launch_cached(grid, block, 0);
  ctx.note_launch(grid, block);

  ThreadCtx tc;
  tc.grid_dim = grid;
  tc.block_dim = block;

  if (portacheck::active()) {
    // Sanitized path: blocks execute in a seed-permuted order and every
    // simulated thread carries its linear global thread id as shadow lane,
    // so write-write conflicts between SIMT threads are flagged even though
    // the simulation itself is serial.
    portacheck::begin_region();
    const auto order = portacheck::permutation(grid.volume(), portacheck::order_seed());
    for (const std::size_t linear : order) {
      tc.block_idx = detail::block_from_linear(grid, linear);
      detail::run_block_lanes_checked(tc, kernel);
    }
    return;
  }

  const std::size_t num_blocks = grid.volume();
  for (std::size_t linear = 0; linear < num_blocks; ++linear) {
    tc.block_idx = detail::block_from_linear(grid, linear);
    detail::run_block_lanes(tc, kernel);
  }
}

/// Execute `kernel(ThreadCtx)` for every thread of the grid.  Blocks run
/// in parallel across the device's LaunchEngine (blocks are independent
/// in the CUDA model, so this is semantics-preserving for any correct
/// kernel); sub-cutoff grids run serially inline, and the sanitized path
/// is the serial seed-permuted schedule.  Throws precondition_error on an
/// invalid configuration, mirroring a CUDA launch failure.
template <class F>
void launch(DeviceContext& ctx, const Dim3& grid, const Dim3& block, F&& kernel) {
  if (portacheck::active()) {
    launch_serial(ctx, grid, block, std::forward<F>(kernel));
    return;
  }
  ctx.validate_launch_cached(grid, block, 0);
  ctx.note_launch(grid, block);

  const std::size_t num_blocks = grid.volume();
  ctx.engine().run_blocks(
      num_blocks, num_blocks * block.volume(), [&](std::size_t, std::size_t linear) {
        ThreadCtx tc;
        tc.grid_dim = grid;
        tc.block_dim = block;
        tc.block_idx = detail::block_from_linear(grid, linear);
        detail::run_block_lanes(tc, kernel);
      });
}

/// Execute a grid with host-side parallelism across blocks on an explicit
/// simrt execution space (kept for callers that manage their own host
/// resources; the 4-argument launch() is the default engine-backed path).
template <class F>
void launch(DeviceContext& ctx, const simrt::ThreadsSpace& host, const Dim3& grid,
            const Dim3& block, F&& kernel) {
  ctx.validate_launch_cached(grid, block, 0);
  ctx.note_launch(grid, block);

  const std::size_t num_blocks = grid.volume();
  const bool checked = portacheck::active();
  // Block order permutation comes from the checked parallel_for dispatch;
  // here we only refine the shadow lane from per-block to per-SIMT-thread.
  simrt::parallel_for(host, simrt::RangePolicy(0, num_blocks), [&](std::size_t linear) {
    ThreadCtx tc;
    tc.grid_dim = grid;
    tc.block_dim = block;
    tc.block_idx = detail::block_from_linear(grid, linear);
    if (checked) {
      detail::run_block_lanes_checked(tc, kernel);
    } else {
      detail::run_block_lanes(tc, kernel);
    }
  });
}

/// Per-block execution context for cooperative kernels.  The shared
/// memory span is a zero-filled slice of a pooled per-worker arena owned
/// by the launch engine — valid for the duration of the block only.
class BlockCtx {
 public:
  BlockCtx(Dim3 grid, Dim3 block, Dim3 block_idx, std::span<std::byte> shared)
      : grid_(grid), block_(block), block_idx_(block_idx), shared_(shared) {}

  [[nodiscard]] const Dim3& grid_dim() const noexcept { return grid_; }
  [[nodiscard]] const Dim3& block_dim() const noexcept { return block_; }
  [[nodiscard]] const Dim3& block_idx() const noexcept { return block_idx_; }

  /// Run `region(ThreadCtx)` for every lane of the block.  Two successive
  /// for_lanes() calls are separated by an implicit __syncthreads().
  template <class G>
  void for_lanes(G&& region) {
    ThreadCtx tc;
    tc.grid_dim = grid_;
    tc.block_dim = block_;
    tc.block_idx = block_idx_;

    if (portacheck::active()) {
      // A for_lanes region is one barrier-to-barrier span: open a fresh
      // shadow epoch so accesses before the implicit __syncthreads never
      // conflict with accesses after it, permute lane order within the
      // region, and tag each lane with its global SIMT thread id.
      portacheck::begin_region();
      const auto order =
          portacheck::permutation(block_.volume(), portacheck::order_seed());
      for (const std::size_t lin : order) {
        tc.thread_idx = {lin % block_.x, (lin / block_.x) % block_.y,
                         lin / (block_.x * block_.y)};
        portacheck::LaneScope lane(
            detail::simt_lane(grid_, block_, block_idx_, tc.thread_idx));
        region(tc);
      }
      return;
    }

    detail::run_block_lanes(tc, region);
  }

  /// Block-shared scratch: a typed span carved from the block's shared
  /// memory arena (__shared__ analogue).  Offsets are byte-based and the
  /// caller composes multiple arrays by advancing `byte_offset`.
  template <class T>
  [[nodiscard]] std::span<T> shared(std::size_t count, std::size_t byte_offset = 0) {
    PB_EXPECTS(byte_offset % alignof(T) == 0);
    PB_EXPECTS(byte_offset + count * sizeof(T) <= shared_.size());
    return {reinterpret_cast<T*>(shared_.data() + byte_offset), count};
  }

  [[nodiscard]] std::size_t shared_bytes() const noexcept { return shared_.size(); }

 private:
  Dim3 grid_;
  Dim3 block_;
  Dim3 block_idx_;
  std::span<std::byte> shared_;
};

/// Serial cooperative launch (deterministic block order); launch_blocks()
/// routes sub-cutoff grids here.  Shared memory still comes from the
/// pooled thread-local arena — zero allocations, same zero-fill contract.
template <class F>
void launch_blocks_serial(DeviceContext& ctx, const Dim3& grid, const Dim3& block,
                          std::size_t shared_bytes, F&& kernel) {
  ctx.validate_launch_cached(grid, block, shared_bytes);
  ctx.note_launch(grid, block);

  if (portacheck::active()) {
    // Blocks of a cooperative launch are still independent — shuffle them.
    // (Cross-block conflicts through global memory are flagged only if the
    // blocks land in the same epoch; for_lanes() bumps the epoch per
    // barrier span, so this check is intra-span by design.)
    const auto order = portacheck::permutation(grid.volume(), portacheck::order_seed());
    for (const std::size_t linear : order) {
      BlockCtx bc(grid, block, detail::block_from_linear(grid, linear),
                  LaunchEngine::local_arena(shared_bytes));
      kernel(bc);
    }
    return;
  }

  const std::size_t num_blocks = grid.volume();
  for (std::size_t linear = 0; linear < num_blocks; ++linear) {
    BlockCtx bc(grid, block, detail::block_from_linear(grid, linear),
                LaunchEngine::local_arena(shared_bytes));
    kernel(bc);
  }
}

/// Launch a cooperative kernel: `kernel(BlockCtx&)` runs once per block
/// with `shared_bytes` of zero-filled block-shared memory.  Blocks run in
/// parallel across the device's LaunchEngine with per-worker pooled
/// arenas (zero allocations steady-state); shared memory size is
/// validated against the device limit, mirroring a CUDA launch error for
/// oversized dynamic shared memory.
template <class F>
void launch_blocks(DeviceContext& ctx, const Dim3& grid, const Dim3& block,
                   std::size_t shared_bytes, F&& kernel) {
  if (portacheck::active()) {
    launch_blocks_serial(ctx, grid, block, shared_bytes, std::forward<F>(kernel));
    return;
  }
  ctx.validate_launch_cached(grid, block, shared_bytes);
  ctx.note_launch(grid, block);

  LaunchEngine& engine = ctx.engine();
  const std::size_t num_blocks = grid.volume();
  engine.run_blocks(
      num_blocks, num_blocks * block.volume(),
      [&](std::size_t worker, std::size_t linear) {
        // Pool workers carve from their padded arena slot; the serial /
        // nested path uses the thread-local arena so concurrent serial
        // launches never share scratch.
        const std::span<std::byte> scratch =
            worker == LaunchEngine::kSerialWorker
                ? LaunchEngine::local_arena(shared_bytes)
                : engine.worker_arena(worker, shared_bytes);
        BlockCtx bc(grid, block, detail::block_from_linear(grid, linear), scratch);
        kernel(bc);
      });
}

}  // namespace portabench::gpusim
