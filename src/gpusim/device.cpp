#include "device.hpp"

namespace portabench::gpusim {

GpuSpec GpuSpec::a100() {
  GpuSpec s;
  s.name = "NVIDIA A100";
  s.vendor = Vendor::kNvidia;
  s.warp_size = 32;
  s.sm_count = 108;
  s.max_threads_per_block = 1024;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 65536;
  s.shared_mem_per_block = 48 * 1024;
  s.shared_mem_per_sm = 164 * 1024;
  s.global_mem_bytes = std::size_t{40} * 1024 * 1024 * 1024;
  return s;
}

GpuSpec GpuSpec::mi250x_gcd() {
  GpuSpec s;
  s.name = "AMD MI250X (1 GCD)";
  s.vendor = Vendor::kAmd;
  s.warp_size = 64;  // AMD wavefront
  s.sm_count = 110;  // compute units per GCD
  s.max_threads_per_block = 1024;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 65536;
  s.shared_mem_per_block = 64 * 1024;
  s.shared_mem_per_sm = 64 * 1024;
  s.global_mem_bytes = std::size_t{64} * 1024 * 1024 * 1024;
  return s;
}

void DeviceContext::validate_launch(const Dim3& grid, const Dim3& block) const {
  PB_EXPECTS(grid.volume() > 0);
  PB_EXPECTS(block.volume() > 0);
  PB_EXPECTS(block.volume() <= spec_.max_threads_per_block);
}

void DeviceContext::note_alloc(std::size_t bytes) {
  PB_EXPECTS(bytes_in_use_ + bytes <= spec_.global_mem_bytes);  // device OOM
  bytes_in_use_ += bytes;
  counters_.bytes_allocated += bytes;
  ++counters_.live_allocations;
  counters_.peak_bytes_allocated = std::max<std::uint64_t>(counters_.peak_bytes_allocated,
                                                           bytes_in_use_);
}

void DeviceContext::note_free(std::size_t bytes) {
  PB_EXPECTS(bytes_in_use_ >= bytes);
  PB_EXPECTS(counters_.live_allocations > 0);
  bytes_in_use_ -= bytes;
  --counters_.live_allocations;
}

}  // namespace portabench::gpusim
