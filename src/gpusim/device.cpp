#include "device.hpp"

#include "engine.hpp"

namespace portabench::gpusim {

GpuSpec GpuSpec::a100() {
  GpuSpec s;
  s.name = "NVIDIA A100";
  s.vendor = Vendor::kNvidia;
  s.warp_size = 32;
  s.sm_count = 108;
  s.max_threads_per_block = 1024;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 65536;
  s.shared_mem_per_block = 48 * 1024;
  s.shared_mem_per_sm = 164 * 1024;
  s.global_mem_bytes = std::size_t{40} * 1024 * 1024 * 1024;
  return s;
}

GpuSpec GpuSpec::mi250x_gcd() {
  GpuSpec s;
  s.name = "AMD MI250X (1 GCD)";
  s.vendor = Vendor::kAmd;
  s.warp_size = 64;  // AMD wavefront
  s.sm_count = 110;  // compute units per GCD
  s.max_threads_per_block = 1024;
  s.max_threads_per_sm = 2048;
  s.max_blocks_per_sm = 32;
  s.registers_per_sm = 65536;
  s.shared_mem_per_block = 64 * 1024;
  s.shared_mem_per_sm = 64 * 1024;
  s.global_mem_bytes = std::size_t{64} * 1024 * 1024 * 1024;
  return s;
}

DeviceContext::DeviceContext(GpuSpec spec) : spec_(std::move(spec)) {
  PB_EXPECTS(spec_.warp_size > 0 && spec_.max_threads_per_block > 0);
}

DeviceContext::~DeviceContext() = default;

void DeviceContext::validate_launch(const Dim3& grid, const Dim3& block) const {
  PB_EXPECTS(grid.volume() > 0);
  PB_EXPECTS(block.volume() > 0);
  PB_EXPECTS(block.volume() <= spec_.max_threads_per_block);
}

namespace {

std::size_t cache_slot(const Dim3& grid, const Dim3& block, std::size_t shared_bytes,
                       std::size_t slots) {
  // FNV-1a over the nine key words; slots is a power of two.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::size_t v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  };
  mix(grid.x);
  mix(grid.y);
  mix(grid.z);
  mix(block.x);
  mix(block.y);
  mix(block.z);
  mix(shared_bytes);
  return static_cast<std::size_t>(h) & (slots - 1);
}

}  // namespace

const Occupancy& DeviceContext::validate_launch_cached(const Dim3& grid, const Dim3& block,
                                                       std::size_t shared_bytes) const {
  const std::size_t slot = cache_slot(grid, block, shared_bytes, kCacheSlots);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    CacheEntry& e = cache_[slot];
    if (e.valid && e.grid == grid && e.block == block && e.shared_bytes == shared_bytes) {
      ++cache_stats_.hits;
      return e.occupancy;
    }
  }
  // Miss: full validation outside the lock (it may throw), then install.
  validate_launch(grid, block);
  PB_EXPECTS(shared_bytes <= spec_.shared_mem_per_block);
  KernelResources res;
  res.threads_per_block = block.volume();
  res.shared_bytes_per_block = shared_bytes;
  const Occupancy occ = compute_occupancy(spec_, res);

  std::lock_guard<std::mutex> lock(cache_mutex_);
  CacheEntry& e = cache_[slot];
  e.valid = true;
  e.grid = grid;
  e.block = block;
  e.shared_bytes = shared_bytes;
  e.occupancy = occ;
  ++cache_stats_.misses;
  return e.occupancy;
}

LaunchCacheStats DeviceContext::launch_cache_stats() const noexcept {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return cache_stats_;
}

LaunchEngine& DeviceContext::engine() const noexcept {
  return engine_ ? *engine_ : LaunchEngine::shared();
}

DeviceCounters DeviceContext::counters() const noexcept {
  DeviceCounters c;
  c.kernel_launches = kernel_launches_.load(std::memory_order_relaxed);
  c.blocks_executed = blocks_executed_.load(std::memory_order_relaxed);
  c.threads_executed = threads_executed_.load(std::memory_order_relaxed);
  c.bytes_h2d = bytes_h2d_.load(std::memory_order_relaxed);
  c.bytes_d2h = bytes_d2h_.load(std::memory_order_relaxed);
  c.bytes_d2d_in = bytes_d2d_in_.load(std::memory_order_relaxed);
  c.bytes_d2d_out = bytes_d2d_out_.load(std::memory_order_relaxed);
  c.bytes_allocated = bytes_allocated_.load(std::memory_order_relaxed);
  c.live_allocations = live_allocations_.load(std::memory_order_relaxed);
  c.peak_bytes_allocated = peak_bytes_allocated_.load(std::memory_order_relaxed);
  return c;
}

void DeviceContext::reset_counters() noexcept {
  kernel_launches_.store(0, std::memory_order_relaxed);
  blocks_executed_.store(0, std::memory_order_relaxed);
  threads_executed_.store(0, std::memory_order_relaxed);
  bytes_h2d_.store(0, std::memory_order_relaxed);
  bytes_d2h_.store(0, std::memory_order_relaxed);
  bytes_d2d_in_.store(0, std::memory_order_relaxed);
  bytes_d2d_out_.store(0, std::memory_order_relaxed);
  bytes_allocated_.store(0, std::memory_order_relaxed);
  // Live memory is not forgotten: bytes_in_use_ and live_allocations_
  // survive (zeroing the live count would make the next note_free
  // underflow its precondition), and the peak restarts from what is
  // still resident rather than from zero.
  peak_bytes_allocated_.store(bytes_in_use_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
}

void DeviceContext::note_alloc(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  const std::size_t in_use = bytes_in_use_.load(std::memory_order_relaxed);
  PB_EXPECTS(in_use + bytes <= spec_.global_mem_bytes);  // device OOM
  bytes_in_use_.store(in_use + bytes, std::memory_order_relaxed);
  bytes_allocated_.fetch_add(bytes, std::memory_order_relaxed);
  live_allocations_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t peak = peak_bytes_allocated_.load(std::memory_order_relaxed);
  if (in_use + bytes > peak) {
    peak_bytes_allocated_.store(in_use + bytes, std::memory_order_relaxed);
  }
}

void DeviceContext::note_free(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  const std::size_t in_use = bytes_in_use_.load(std::memory_order_relaxed);
  PB_EXPECTS(in_use >= bytes);
  PB_EXPECTS(live_allocations_.load(std::memory_order_relaxed) > 0);
  bytes_in_use_.store(in_use - bytes, std::memory_order_relaxed);
  live_allocations_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace portabench::gpusim
