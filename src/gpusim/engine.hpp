// Block-parallel execution engine for the SIMT simulator.
//
// The gpusim device executes kernels functionally on the host, and after
// the simrt dispatch overhaul the serial block walk in launch() became
// the slowest layer of the stack.  Blocks of a CUDA grid are independent
// by construction, so the engine runs them across the lock-free simrt
// ThreadPool: launch() and launch_blocks() hand the engine a per-block
// body, the engine deals contiguous block chunks to the pool workers
// through one relaxed fetch_add counter, and sub-cutoff grids skip the
// fork entirely (the same grain-based elision as ThreadPool::run_auto).
//
// The engine also owns the two pieces of per-launch state that used to be
// reallocated on every launch:
//   - per-worker shared-memory arenas (BlockCtx scratch) that grow to the
//     high-water mark and are then reused — zero allocations on the
//     steady-state launch path;
//   - nothing else: the launch-configuration cache is per-DeviceContext
//     (validation depends on the GpuSpec) — see DeviceContext::
//     validate_launch_cached.
//
// One engine is shared process-wide by default (DeviceContext::engine()),
// so a test binary with dozens of DeviceContexts spawns one worker team,
// not dozens.  Concurrent launches (e.g. from two async Streams) are
// serialized on an internal mutex — the host is one simulated device, and
// real GPUs serialize kernels onto the same SMs just the same — while a
// launch issued from *inside* an engine region (a kernel launching a
// kernel, or a sub-cutoff launch on a pool worker) degrades to the serial
// inline walk instead of deadlocking on the non-reentrant pool.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/buffer.hpp"
#include "simrt/thread_pool.hpp"
#include "tunables.hpp"

namespace portabench::gpusim {

class LaunchEngine {
 public:
  /// Total simulated threads (grid * block volume) below which a launch
  /// runs serially inline on the caller: the fork-join rendezvous costs
  /// microseconds, which is thousands of cheap lane iterations.  Matches
  /// the simrt fork-elision cutoff so the two layers agree on what
  /// "too small to fork" means.  Compile-time default only: run_blocks
  /// compares against launch_tunables().fork_cutoff so the autotuner /
  /// PORTABENCH_TUNE_LAUNCH_CUTOFF can retune it per machine.
  static constexpr std::size_t kLaunchForkCutoff = simrt::ThreadPool::kForkCutoff;

  /// `threads == 0` resolves to PORTABENCH_GPUSIM_THREADS or, failing
  /// that, the host's hardware concurrency.  Workers are spawned lazily
  /// on the first launch that actually forks, so constructing an engine
  /// (or a DeviceContext) stays cheap.  A non-empty `placement` is
  /// handed to the worker pool when it spawns, pinning workers to host
  /// cores — DeviceTopology uses this to keep each simulated GCD's
  /// workers inside the NUMA domain that feeds the device.
  explicit LaunchEngine(std::size_t threads = 0, simrt::Placement placement = {});

  LaunchEngine(const LaunchEngine&) = delete;
  LaunchEngine& operator=(const LaunchEngine&) = delete;

  /// The process-wide default engine (what DeviceContext::engine()
  /// returns unless an explicit engine was installed).
  [[nodiscard]] static LaunchEngine& shared();

  /// Worker count the engine forks to (without spawning the pool).
  [[nodiscard]] std::size_t workers() const noexcept { return num_workers_; }

  /// The placement workers will be (or were) pinned with; empty when the
  /// engine leaves scheduling to the OS.
  [[nodiscard]] const simrt::Placement& placement() const noexcept { return placement_; }

  /// True while the current thread is executing inside an engine region
  /// (used by launch() to degrade nested launches to the serial walk).
  [[nodiscard]] static bool in_region() noexcept;

  /// Worker id the serial (non-forked) path reports: tells the caller
  /// the block is NOT running on a pool worker, so per-worker state
  /// (arena slots) must not be indexed with it.
  static constexpr std::size_t kSerialWorker = static_cast<std::size_t>(-1);

  /// Run body(worker, block) for every block in [0, num_blocks).
  /// Forks across the pool when `total_threads` (the launch's simulated
  /// thread count) reaches kLaunchForkCutoff and the caller is not
  /// already inside a region; otherwise runs serially on the caller with
  /// worker id kSerialWorker.  Blocks are dealt to workers in contiguous
  /// chunks via a shared counter, so guard-trimmed edge blocks
  /// load-balance.
  template <class Body>
  void run_blocks(std::size_t num_blocks, std::size_t total_threads, Body&& body) {
    if (num_blocks == 0) return;
    const LaunchTunables lt = launch_tunables();
    if (total_threads < lt.fork_cutoff || num_workers_ <= 1 || in_region()) {
      for (std::size_t b = 0; b < num_blocks; ++b) body(kSerialWorker, b);
      return;
    }
    std::lock_guard<std::mutex> lock(launch_mutex_);
    simrt::ThreadPool& pool = ensure_pool();
    const std::size_t nt = pool.size();
    // ~chunks_per_worker chunks per worker bounds the counter traffic
    // (tunable; block dealing only — per-block results are unaffected).
    const std::size_t chunk = std::max<std::size_t>(
        1, num_blocks / (nt * std::max<std::size_t>(1, lt.chunks_per_worker)));
    std::atomic<std::size_t> next{0};
    pool.run([&](std::size_t t) {
      const RegionScope scope;
      for (;;) {
        const std::size_t start = next.fetch_add(chunk, std::memory_order_relaxed);
        if (start >= num_blocks) return;
        const std::size_t stop = std::min(start + chunk, num_blocks);
        for (std::size_t b = start; b < stop; ++b) body(t, b);
      }
    });
  }

  /// Zero-filled per-worker scratch of at least `bytes`, valid until the
  /// worker's next acquire.  Arenas grow to the high-water mark and are
  /// then reused: the steady-state launch path performs no allocation.
  /// Only meaningful inside run_blocks (worker ids index the pool team).
  [[nodiscard]] std::span<std::byte> worker_arena(std::size_t worker, std::size_t bytes);

  /// The serial-path analogue of worker_arena: a thread-local pooled
  /// arena, so concurrent serial launches (two async streams, say) never
  /// share scratch.
  [[nodiscard]] static std::span<std::byte> local_arena(std::size_t bytes);

  /// High-water mark of the largest arena ever handed out by this engine
  /// (worker arenas only; diagnostics for tests and the launch bench).
  [[nodiscard]] std::size_t arena_high_water() const noexcept {
    return arena_high_water_.load(std::memory_order_relaxed);
  }

 private:
  /// RAII thread_local region marker (see in_region()).
  struct RegionScope {
    RegionScope() noexcept;
    ~RegionScope();
    RegionScope(const RegionScope&) = delete;
    RegionScope& operator=(const RegionScope&) = delete;
  };

  /// Cache-line-padded per-worker arena: workers grow their own slot
  /// concurrently, so slots must not share lines.
  struct alignas(kCacheLineBytes) Arena {
    std::vector<std::byte> bytes;
  };

  simrt::ThreadPool& ensure_pool();  // callers hold launch_mutex_

  std::size_t num_workers_;
  simrt::Placement placement_;               // forwarded to the pool when it spawns
  std::unique_ptr<simrt::ThreadPool> pool_;  // created on first forked launch
  std::vector<Arena> arenas_;                // sized with the pool
  std::atomic<std::size_t> arena_high_water_{0};
  std::mutex launch_mutex_;
};

}  // namespace portabench::gpusim
