// Occupancy calculator (cudaOccupancyMaxActiveBlocksPerMultiprocessor
// analogue).
//
// The paper attributes Kokkos' A100 slowdown to block/thread configuration
// chosen by template-time heuristics ("select the appropriate values for a
// number of blocks and threads per block ... Templates set this kind of
// optimization").  The occupancy model quantifies exactly that effect and
// feeds the GPU performance model and the block-size ablation bench.
#pragma once

#include <cstddef>

namespace portabench::gpusim {

// device.hpp includes this header (the launch-config cache stores an
// Occupancy per entry), so only a forward declaration here.
struct GpuSpec;

/// Per-kernel resource footprint.
struct KernelResources {
  std::size_t threads_per_block = 0;
  std::size_t registers_per_thread = 32;
  std::size_t shared_bytes_per_block = 0;
};

/// Result of the occupancy computation for one SM / CU.
struct Occupancy {
  std::size_t active_blocks_per_sm = 0;
  std::size_t active_threads_per_sm = 0;
  double fraction = 0.0;  ///< active threads / max threads per SM, in [0, 1]
  /// Which resource bound the result ("threads", "blocks", "registers",
  /// "shared", or "none" when the block itself is invalid).
  const char* limiter = "none";
};

/// Compute achievable occupancy of `kernel` on `spec`.
[[nodiscard]] Occupancy compute_occupancy(const GpuSpec& spec, const KernelResources& kernel);

/// Number of full waves needed to run `total_blocks` blocks, given the
/// per-SM active block count; the fractional tail models the partial last
/// wave ("tail effect").
[[nodiscard]] double waves_for(const GpuSpec& spec, const Occupancy& occ,
                               std::size_t total_blocks);

}  // namespace portabench::gpusim
