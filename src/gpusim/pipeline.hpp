// Double-buffered H2D / compute / D2H pipeline driver.
//
// The paper's Section II calls out "the overlap of data transfers with
// computations" as one of the capabilities a programming model must
// expose.  This driver is that capability for the simulator: a panel
// loop over three per-device streams (copy-in, compute, copy-out) with
// `slots` rotating staging buffers, wired together with Events so that
//
//   h2d[k]     waits  compute_done[k - slots]   (input slot free again)
//   compute[k] waits  in_ready[k]               (its input landed)
//   compute[k] waits  out_done[k - slots]       (its output slot drained)
//   d2h[k]     waits  compute_done[k]           (result ready)
//
// With slots = 2 that is classic double buffering: panel k+1's H2D and
// panel k-1's D2H both overlap panel k's kernel.  The non-overlapped
// reference (`overlap = false`) enqueues the same three stages strictly
// in order on ONE stream — the serial H2D -> compute -> D2H sequence the
// overlap bench compares against.
//
// Determinism: stage callbacks receive (stream, panel, slot) and are
// invoked in panel order on the caller; only *where* the enqueued ops
// execute differs between modes.  Under portacheck every Stream degrades
// to eager, so the whole pipeline collapses to the serial in-order walk
// the sanitizer's permuted schedules require — results are bitwise
// identical by construction because each panel's arithmetic never
// changes, only its overlap with neighbors.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "common/timer.hpp"
#include "stream.hpp"
#include "topology.hpp"

namespace portabench::gpusim {

struct PipelineOptions {
  std::size_t slots = 2;  ///< rotating staging slots (2 = double buffer)
  bool overlap = true;    ///< false: one stream, strict H2D->compute->D2H
};

struct PipelineStats {
  double wall_s = 0.0;     ///< measured host wall time, enqueue to drain
  double modeled_s = 0.0;  ///< modeled makespan (max over stream clocks)
  std::size_t panels = 0;
};

/// Run `panels` panels through the pipeline on one device.  Each stage
/// callback is invoked as stage(Stream&, panel, slot) and must enqueue
/// its work on the given stream (copy_async / launch / enqueue).
template <class H2D, class Compute, class D2H>
PipelineStats run_pipeline(DeviceContext& ctx, std::size_t panels,
                           const PipelineOptions& opt, H2D&& h2d, Compute&& compute,
                           D2H&& d2h) {
  PB_EXPECTS(opt.slots >= 1);
  PipelineStats stats;
  stats.panels = panels;
  if (panels == 0) return stats;

  Timer wall;
  if (!opt.overlap) {
    // Reference sequence: one in-order queue, no events needed — the
    // queue itself serializes h2d -> compute -> d2h per panel.
    Stream s(ctx, StreamMode::kAsync);
    for (std::size_t k = 0; k < panels; ++k) {
      const std::size_t slot = k % opt.slots;
      h2d(s, k, slot);
      compute(s, k, slot);
      d2h(s, k, slot);
    }
    stats.modeled_s = s.synchronize();
    stats.wall_s = wall.seconds();
    return stats;
  }

  Stream in(ctx, StreamMode::kAsync);
  Stream comp(ctx, StreamMode::kAsync);
  Stream out(ctx, StreamMode::kAsync);
  std::vector<Event> in_ready(panels);
  std::vector<Event> compute_done(panels);
  std::vector<Event> out_done(panels);

  for (std::size_t k = 0; k < panels; ++k) {
    const std::size_t slot = k % opt.slots;
    if (k >= opt.slots) in.wait(compute_done[k - opt.slots]);
    h2d(in, k, slot);
    in.record(in_ready[k]);

    comp.wait(in_ready[k]);
    if (k >= opt.slots) comp.wait(out_done[k - opt.slots]);
    compute(comp, k, slot);
    comp.record(compute_done[k]);

    out.wait(compute_done[k]);
    d2h(out, k, slot);
    out.record(out_done[k]);
  }
  const double t_in = in.synchronize();
  const double t_comp = comp.synchronize();
  const double t_out = out.synchronize();
  stats.modeled_s = std::max(t_in, std::max(t_comp, t_out));
  stats.wall_s = wall.seconds();
  return stats;
}

/// Multi-device pipeline: run a per-device panel loop on every device of
/// the topology concurrently.  Stage callbacks receive (stream, device,
/// panel, slot); `panels_per_device[d]` panels run on device d.  All
/// devices' queues are filled from the caller in device-major program
/// order (cheap — enqueue never blocks in async mode) and progress
/// concurrently on their own stream workers; the wall clock spans
/// enqueue-to-drain across the whole node.  Under portacheck the streams
/// are eager and the same loop IS the serial schedule, giving the fixed
/// shard combination order the bitwise-replay contract requires.
template <class H2D, class Compute, class D2H>
PipelineStats run_sharded_pipeline(DeviceTopology& topo,
                                   const std::vector<std::size_t>& panels_per_device,
                                   const PipelineOptions& opt, H2D&& h2d,
                                   Compute&& compute, D2H&& d2h) {
  PB_EXPECTS(opt.slots >= 1);
  PB_EXPECTS(panels_per_device.size() == topo.devices());
  PipelineStats stats;

  struct DeviceStreams {
    std::unique_ptr<Stream> in, comp, out;
    std::vector<Event> in_ready, compute_done, out_done;
  };
  std::vector<DeviceStreams> ds(topo.devices());
  for (std::size_t d = 0; d < topo.devices(); ++d) {
    DeviceContext& ctx = topo.context(d);
    ds[d].in = std::make_unique<Stream>(ctx, StreamMode::kAsync);
    if (opt.overlap) {
      ds[d].comp = std::make_unique<Stream>(ctx, StreamMode::kAsync);
      ds[d].out = std::make_unique<Stream>(ctx, StreamMode::kAsync);
      ds[d].in_ready.resize(panels_per_device[d]);
      ds[d].compute_done.resize(panels_per_device[d]);
      ds[d].out_done.resize(panels_per_device[d]);
    }
  }

  Timer wall;
  for (std::size_t d = 0; d < topo.devices(); ++d) {
    DeviceStreams& s = ds[d];
    const std::size_t panels = panels_per_device[d];
    stats.panels += panels;
    if (!opt.overlap) {
      for (std::size_t k = 0; k < panels; ++k) {
        const std::size_t slot = k % opt.slots;
        h2d(*s.in, d, k, slot);
        compute(*s.in, d, k, slot);
        d2h(*s.in, d, k, slot);
      }
      continue;
    }
    for (std::size_t k = 0; k < panels; ++k) {
      const std::size_t slot = k % opt.slots;
      if (k >= opt.slots) s.in->wait(s.compute_done[k - opt.slots]);
      h2d(*s.in, d, k, slot);
      s.in->record(s.in_ready[k]);

      s.comp->wait(s.in_ready[k]);
      if (k >= opt.slots) s.comp->wait(s.out_done[k - opt.slots]);
      compute(*s.comp, d, k, slot);
      s.comp->record(s.compute_done[k]);

      s.out->wait(s.compute_done[k]);
      d2h(*s.out, d, k, slot);
      s.out->record(s.out_done[k]);
    }
  }
  for (DeviceStreams& s : ds) {
    double modeled = s.in->synchronize();
    if (s.comp) modeled = std::max(modeled, s.comp->synchronize());
    if (s.out) modeled = std::max(modeled, s.out->synchronize());
    stats.modeled_s = std::max(stats.modeled_s, modeled);
  }
  stats.wall_s = wall.seconds();
  return stats;
}

}  // namespace portabench::gpusim
