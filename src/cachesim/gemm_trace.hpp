// Address-trace GEMM walks over the cache hierarchy.
//
// Replays the exact address streams of the paper's CPU kernels (Fig. 2a
// row-major i-k-j and Fig. 2c column-major j-l-i) through a simulated
// cache hierarchy, producing measured DRAM traffic to validate the
// analytical traffic law in perfmodel::CpuMachineModel::dram_traffic_bytes.
#pragma once

#include <cstddef>

#include "cache.hpp"

namespace portabench::cachesim {

struct TraceResult {
  std::uint64_t accesses = 0;    ///< total element accesses replayed
  std::uint64_t dram_bytes = 0;  ///< lines fetched from memory x line size
  std::vector<Hierarchy::LevelStats> levels;
  /// Measured bytes-per-flop of the walk (flops = 2 per inner element op).
  [[nodiscard]] double bytes_per_flop() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(dram_bytes) / static_cast<double>(accesses);
  }
};

/// Replay the C/OpenMP kernel's stream (row-major, i-k-j with a
/// thread-private temp: A[i,l] once per (i,l); B[l,j] and C[i,j]
/// read+write per element) for rows [row_begin, row_end) of an n^3 GEMM
/// with `element_bytes`-wide scalars.
TraceResult trace_openmp_gemm(Hierarchy& hierarchy, std::size_t n, std::size_t element_bytes,
                              std::size_t row_begin, std::size_t row_end);

/// Replay the Julia kernel's stream (column-major, j-l-i with temp =
/// B[l,j]) for columns [col_begin, col_end).
TraceResult trace_julia_gemm(Hierarchy& hierarchy, std::size_t n, std::size_t element_bytes,
                             std::size_t col_begin, std::size_t col_end);

}  // namespace portabench::cachesim
