#include "cache.hpp"

#include <algorithm>

namespace portabench::cachesim {

namespace {

bool is_power_of_two(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

Cache::Cache(std::size_t size_bytes, std::size_t line_bytes, std::size_t ways)
    : line_(line_bytes), ways_(ways) {
  PB_EXPECTS(is_power_of_two(line_bytes));
  PB_EXPECTS(ways >= 1);
  PB_EXPECTS(size_bytes >= line_bytes * ways);
  PB_EXPECTS(size_bytes % (line_bytes * ways) == 0);
  sets_ = size_bytes / (line_bytes * ways);
  entries_.resize(sets_ * ways_);
}

Access Cache::access(std::uint64_t address) {
  const std::uint64_t line_addr = address / line_;
  const std::size_t set = static_cast<std::size_t>(line_addr % sets_);
  const std::uint64_t tag = line_addr / sets_;
  Way* const begin = entries_.data() + set * ways_;
  ++clock_;

  for (std::size_t w = 0; w < ways_; ++w) {
    if (begin[w].valid && begin[w].tag == tag) {
      begin[w].last_use = clock_;
      ++hits_;
      return Access::kHit;
    }
  }

  // Miss: fill the invalid or least-recently-used way.
  Way* victim = begin;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!begin[w].valid) {
      victim = begin + w;
      break;
    }
    if (begin[w].last_use < victim->last_use) victim = begin + w;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = clock_;
  ++misses_;
  return Access::kMiss;
}

bool Cache::contains(std::uint64_t address) const {
  const std::uint64_t line_addr = address / line_;
  const std::size_t set = static_cast<std::size_t>(line_addr % sets_);
  const std::uint64_t tag = line_addr / sets_;
  const Way* const begin = entries_.data() + set * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (begin[w].valid && begin[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (auto& e : entries_) e = Way{};
}

void Hierarchy::add_level(std::string level_name, std::size_t size_bytes,
                          std::size_t line_bytes, std::size_t ways) {
  PB_EXPECTS(caches_.empty() || caches_.back().size_bytes() <= size_bytes);
  caches_.emplace_back(size_bytes, line_bytes, ways);
  names_.push_back(std::move(level_name));
}

std::size_t Hierarchy::access(std::uint64_t address) {
  PB_EXPECTS(!caches_.empty());
  std::size_t hit_level = caches_.size();
  for (std::size_t level = 0; level < caches_.size(); ++level) {
    if (caches_[level].access(address) == Access::kHit) {
      hit_level = level;
      break;
    }
  }
  if (hit_level == caches_.size()) {
    ++dram_lines_;
    return hit_level;
  }
  // Fill the levels above the hit (inclusive hierarchy): access() already
  // loaded them as misses on the way down.
  return hit_level;
}

std::uint64_t Hierarchy::dram_bytes() const {
  PB_EXPECTS(!caches_.empty());
  return dram_lines_ * caches_.front().line_bytes();
}

std::vector<Hierarchy::LevelStats> Hierarchy::stats() const {
  std::vector<LevelStats> out;
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    out.push_back({names_[i], caches_[i].hits(), caches_[i].misses()});
  }
  return out;
}

void Hierarchy::flush() {
  for (auto& c : caches_) c.flush();
}

Hierarchy Hierarchy::epyc_7a53_core(double l3_share) {
  Hierarchy h;
  h.add_level("L1d", 32 * 1024, 64, 8);
  h.add_level("L2", 512 * 1024, 64, 8);
  const auto l3 = static_cast<std::size_t>(256.0e6 * l3_share);
  h.add_level("L3-share", std::max<std::size_t>(l3 / (64 * 16) * (64 * 16), 64 * 16),
              64, 16);
  return h;
}

Hierarchy Hierarchy::ampere_altra_core(double slc_share) {
  Hierarchy h;
  h.add_level("L1d", 64 * 1024, 64, 4);
  h.add_level("L2", 1024 * 1024, 64, 8);
  // The 32 MB system-level cache is small relative to 80 cores: a 1/80
  // share (400 KB) is *smaller* than the private L2.  Model the SLC share
  // as at least the L2 size (the inclusive hierarchy cannot shrink), the
  // point being that Altra's LLC adds little per-core capacity — which is
  // why its traffic law enters the streaming regime earlier than EPYC's.
  const auto slc = static_cast<std::size_t>(32.0e6 * slc_share);
  const std::size_t rounded = std::max<std::size_t>(slc / (64 * 16) * (64 * 16), 64 * 16);
  h.add_level("SLC-share", std::max<std::size_t>(rounded, 1024 * 1024), 64, 16);
  return h;
}

}  // namespace portabench::cachesim
