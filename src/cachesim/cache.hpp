// Set-associative cache simulator.
//
// The CPU machine model (perfmodel) *assumes* a traffic law: B re-streams
// from DRAM once per round of concurrent output rows unless it fits in
// the last-level cache.  This module provides the substrate to *check*
// that law: an LRU set-associative cache hierarchy that the instrumented
// GEMM walk drives address-by-address at reduced sizes, producing
// hit/miss counts the ablation bench compares against the analytical
// model's cached/uncached regimes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace portabench::cachesim {

/// Outcome of one access at one level.
enum class Access { kHit, kMiss };

/// One cache level: set-associative, true-LRU replacement, write-allocate
/// write-back (the policy of the paper's CPUs' data caches).
class Cache {
 public:
  /// @param size_bytes total capacity; @param line_bytes cache-line size;
  /// @param ways associativity.  size must be divisible by line * ways.
  Cache(std::size_t size_bytes, std::size_t line_bytes, std::size_t ways);

  [[nodiscard]] std::size_t size_bytes() const noexcept { return sets_ * ways_ * line_; }
  [[nodiscard]] std::size_t line_bytes() const noexcept { return line_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }

  /// Access one byte address; loads the containing line on miss.
  Access access(std::uint64_t address);

  /// True when the line containing `address` is resident.
  [[nodiscard]] bool contains(std::uint64_t address) const;

  /// Drop all contents (not the statistics).
  void flush();

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  void reset_stats() noexcept {
    hits_ = 0;
    misses_ = 0;
  }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::size_t line_;
  std::size_t ways_;
  std::size_t sets_;
  std::vector<Way> entries_;  // sets_ x ways_, row-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// An inclusive multi-level hierarchy: access() tries each level in
/// order; a miss at every level counts as DRAM traffic (one line).
class Hierarchy {
 public:
  struct LevelStats {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  void add_level(std::string level_name, std::size_t size_bytes, std::size_t line_bytes,
                 std::size_t ways);

  /// Access one address; returns the level index that hit (levels.size()
  /// means DRAM).
  std::size_t access(std::uint64_t address);

  [[nodiscard]] std::size_t levels() const noexcept { return caches_.size(); }
  [[nodiscard]] std::uint64_t dram_lines() const noexcept { return dram_lines_; }
  /// DRAM traffic in bytes (lines x innermost line size).
  [[nodiscard]] std::uint64_t dram_bytes() const;
  [[nodiscard]] std::vector<LevelStats> stats() const;
  void flush();

  /// The cache structure of one EPYC 7A53 core + its share of L3
  /// (32 KiB L1d / 512 KiB L2 / 256 MiB shared L3, scaled by `l3_share`).
  static Hierarchy epyc_7a53_core(double l3_share = 1.0 / 64.0);
  /// Ampere Altra core: 64 KiB L1d / 1 MiB L2 / 32 MiB SLC share.
  static Hierarchy ampere_altra_core(double slc_share = 1.0 / 80.0);

 private:
  std::vector<Cache> caches_;
  std::vector<std::string> names_;
  std::uint64_t dram_lines_ = 0;
};

}  // namespace portabench::cachesim
