#include "gemm_trace.hpp"

namespace portabench::cachesim {

namespace {

struct Layout {
  std::uint64_t a_base;
  std::uint64_t b_base;
  std::uint64_t c_base;
  std::size_t elem;

  [[nodiscard]] std::uint64_t a(std::size_t i, std::size_t l, std::size_t k) const {
    return a_base + (static_cast<std::uint64_t>(i) * k + l) * elem;
  }
  [[nodiscard]] std::uint64_t b(std::size_t l, std::size_t j, std::size_t n) const {
    return b_base + (static_cast<std::uint64_t>(l) * n + j) * elem;
  }
  [[nodiscard]] std::uint64_t c(std::size_t i, std::size_t j, std::size_t n) const {
    return c_base + (static_cast<std::uint64_t>(i) * n + j) * elem;
  }
};

Layout make_layout(std::size_t n, std::size_t element_bytes) {
  const std::uint64_t matrix = static_cast<std::uint64_t>(n) * n * element_bytes;
  // Pad between matrices so conflict-miss artifacts from power-of-two
  // bases don't contaminate the measurement.
  const std::uint64_t pad = 8 * 64;
  return {0, matrix + pad, 2 * (matrix + pad), element_bytes};
}

TraceResult finish(Hierarchy& hierarchy, std::uint64_t accesses) {
  TraceResult r;
  r.accesses = accesses;
  r.dram_bytes = hierarchy.dram_bytes();
  r.levels = hierarchy.stats();
  return r;
}

}  // namespace

TraceResult trace_openmp_gemm(Hierarchy& hierarchy, std::size_t n, std::size_t element_bytes,
                              std::size_t row_begin, std::size_t row_end) {
  PB_EXPECTS(row_begin <= row_end && row_end <= n);
  const Layout layout = make_layout(n, element_bytes);
  std::uint64_t accesses = 0;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t l = 0; l < n; ++l) {
      hierarchy.access(layout.a(i, l, n));  // temp = A[i*k + l]
      ++accesses;
      for (std::size_t j = 0; j < n; ++j) {
        hierarchy.access(layout.b(l, j, n));  // read B
        hierarchy.access(layout.c(i, j, n));  // C += (read-modify-write: one line touch)
        accesses += 2;
      }
    }
  }
  return finish(hierarchy, accesses);
}

TraceResult trace_julia_gemm(Hierarchy& hierarchy, std::size_t n, std::size_t element_bytes,
                             std::size_t col_begin, std::size_t col_end) {
  PB_EXPECTS(col_begin <= col_end && col_end <= n);
  // Column-major: A[i + l*m], B[l + j*k], C[i + j*m] — reuse the Layout
  // address helpers with transposed index roles.
  const Layout layout = make_layout(n, element_bytes);
  std::uint64_t accesses = 0;
  for (std::size_t j = col_begin; j < col_end; ++j) {
    for (std::size_t l = 0; l < n; ++l) {
      hierarchy.access(layout.b(j, l, n));  // temp = B[l, j]: column-major l fastest
      ++accesses;
      for (std::size_t i = 0; i < n; ++i) {
        hierarchy.access(layout.a(l, i, n));  // A[i, l]: i fastest within column l
        hierarchy.access(layout.c(j, i, n));  // C[i, j]: i fastest within column j
        accesses += 2;
      }
    }
  }
  return finish(hierarchy, accesses);
}

}  // namespace portabench::cachesim
