// Umbrella header: the library's public API in one include.
//
//   #include <portabench.hpp>
//
// Layered bottom-up (each layer usable on its own):
//   common      - half/bfloat16, RNG, statistics, tables, CLI, JSON
//   simrt       - mini-Kokkos host runtime (views, policies, parallel_*)
//   gpusim      - functional SIMT GPU simulator
//   gemm        - the study's hand-rolled kernel zoo + reference
//   perfmodel   - machine/codegen/interconnect/variability models
//   models      - programming-model frontends (ModelRunner)
//   portability - Eq. (1)/(2) metrics, Table III, productivity
#pragma once

#include "common/buffer.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/half.hpp"
#include "common/json.hpp"
#include "common/precision.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

#include "simrt/affinity.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"
#include "simrt/policy.hpp"
#include "simrt/reducers.hpp"
#include "simrt/scan.hpp"
#include "simrt/thread_pool.hpp"
#include "simrt/view3.hpp"

#include "cachesim/cache.hpp"
#include "cachesim/gemm_trace.hpp"

#include "gpusim/block_primitives.hpp"
#include "gpusim/coalescing.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/occupancy.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/stream.hpp"

#include "spmv/kernels.hpp"
#include "spmv/model.hpp"
#include "spmv/sparse.hpp"

#include "stencil/grid.hpp"
#include "stencil/kernels.hpp"
#include "stencil/model.hpp"

#include "gemm/kernels_cpu.hpp"
#include "gemm/kernels_gpu.hpp"
#include "gemm/reference.hpp"
#include "gemm/validate.hpp"

#include "perfmodel/codegen.hpp"
#include "perfmodel/device_specs.hpp"
#include "perfmodel/interconnect.hpp"
#include "perfmodel/machine_model.hpp"
#include "perfmodel/multigpu.hpp"
#include "perfmodel/platform.hpp"
#include "perfmodel/predict.hpp"
#include "perfmodel/traits.hpp"
#include "perfmodel/variability.hpp"

#include "models/cpu_runners.hpp"
#include "models/gpu_runners.hpp"
#include "models/runner.hpp"
#include "models/spmv_runners.hpp"

#include "portability/metric.hpp"
#include "portability/productivity.hpp"
