// Hand-rolled GPU GEMM kernels, one per programming model (paper Fig. 3).
//
// All follow the fine-granularity mapping of Section III-B: one device
// thread computes one element of C.  Raw device pointers with manual
// linearization for CUDA/HIP (Fig. 3a); multidimensional device-array
// indexing for Julia CUDA.jl / AMDGPU.jl (Figs. 3b/3c, column-major) and
// Numba-CUDA (Fig. 3d, row-major).  C is overwritten (C = A*B), exactly
// as the Fig. 3a kernel writes `C[row * k + col] = sum`.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "gpusim/device.hpp"
#include "gpusim/launch.hpp"
#include "gpusim/memory.hpp"

namespace portabench::gemm {

/// Launch geometry shared by all Fig. 3 kernels: 2-D blocks covering an
/// m x n output, using the paper's 32 x 32 thread-block default.
struct GpuLaunchConfig {
  gpusim::Dim3 block{32, 32, 1};

  [[nodiscard]] gpusim::Dim3 grid_for(std::size_t m, std::size_t n) const {
    // x covers columns, y covers rows — the CUDA convention of Fig. 3a.
    return gpusim::Dim3{gpusim::blocks_for(n, block.x), gpusim::blocks_for(m, block.y), 1};
  }
};

/// CUDA/HIP-style kernel (Fig. 3a): raw pointers, row-major linearized,
/// row = blockIdx.y*blockDim.y + threadIdx.y, col from x.
/// A: m x k, B: k x n, C: m x n, all row-major in device memory.
template <class Acc, class BA, class BB, class BC>
void gemm_cuda_style(gpusim::DeviceContext& ctx, const GpuLaunchConfig& cfg,
                     const BA& A, const BB& B, BC& C, std::size_t m, std::size_t n,
                     std::size_t k) {
  using TC = typename BC::value_type;
  PB_EXPECTS(A.size() == m * k && B.size() == k * n && C.size() == m * n);
  gpusim::launch(ctx, cfg.grid_for(m, n), cfg.block, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t row = tc.global_y();
    const std::size_t col = tc.global_x();
    if (row < m && col < n) {
      Acc sum{};
      for (std::size_t i = 0; i < k; ++i) {
        sum += static_cast<Acc>(A[row * k + i]) * static_cast<Acc>(B[i * n + col]);
      }
      C[row * n + col] = static_cast<TC>(sum);
    }
  });
}

/// Kokkos MDRange-on-CUDA/HIP-style kernel: Kokkos lowers
/// MDRangePolicy<Rank<2>> with the *first* index on the fast thread
/// dimension, so the output row rides threadIdx.x while storage stays
/// row-major — consecutive lanes write C addresses n elements apart.
/// Functionally identical to Fig. 3a; the transposed mapping is the
/// modeled mechanism behind the paper's "Kokkos ... consistently
/// underperform[s], which raises questions about the configuration"
/// (Section IV-B), quantified by gpusim::analyze_gemm_coalescing.
template <class Acc, class BA, class BB, class BC>
void gemm_kokkos_gpu_style(gpusim::DeviceContext& ctx, const GpuLaunchConfig& cfg,
                           const BA& A, const BB& B, BC& C, std::size_t m, std::size_t n,
                           std::size_t k) {
  using TC = typename BC::value_type;
  PB_EXPECTS(A.size() == m * k && B.size() == k * n && C.size() == m * n);
  // x covers rows, y covers columns (the transposed MDRange lowering).
  const gpusim::Dim3 grid{gpusim::blocks_for(m, cfg.block.x),
                          gpusim::blocks_for(n, cfg.block.y), 1};
  gpusim::launch(ctx, grid, cfg.block, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t row = tc.global_x();
    const std::size_t col = tc.global_y();
    if (row < m && col < n) {
      Acc sum{};
      for (std::size_t i = 0; i < k; ++i) {
        sum += static_cast<Acc>(A[row * k + i]) * static_cast<Acc>(B[i * n + col]);
      }
      C[row * n + col] = static_cast<TC>(sum);
    }
  });
}

/// Julia CUDA.jl / AMDGPU.jl-style kernel (Figs. 3b/3c): CUArray/ROCArray
/// multidimensional indexing over column-major storage; thread x covers
/// rows (the fast, stride-1 axis in column-major), y covers columns.
template <class Acc, class BA, class BB, class BC>
void gemm_julia_gpu_style(gpusim::DeviceContext& ctx, const GpuLaunchConfig& cfg,
                          const BA& A, const BB& B, BC& C, std::size_t m, std::size_t n,
                          std::size_t k) {
  using TC = typename BC::value_type;
  PB_EXPECTS(A.size() == m * k && B.size() == k * n && C.size() == m * n);
  // Column-major storage: A[i + l*m], B[l + j*k], C[i + j*m].
  // Julia's grid is defined from total thread counts (Fig. 3c note); the
  // resulting coverage is identical to the block-count convention.
  gpusim::launch(ctx, cfg.grid_for(n, m), cfg.block, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t i = tc.global_x();  // row: stride-1 axis
    const std::size_t j = tc.global_y();  // column
    if (i < m && j < n) {
      Acc sum{};
      for (std::size_t l = 0; l < k; ++l) {
        sum += static_cast<Acc>(A[i + l * m]) * static_cast<Acc>(B[l + j * k]);
      }
      C[i + j * m] = static_cast<TC>(sum);
    }
  });
}

/// Numba-CUDA-style kernel (Fig. 3d): `i, j = cuda.grid(2)` over row-major
/// DeviceNDArrays, guarded by C.shape.
template <class Acc, class BA, class BB, class BC>
void gemm_numba_cuda_style(gpusim::DeviceContext& ctx, const GpuLaunchConfig& cfg,
                           const BA& A, const BB& B, BC& C, std::size_t m, std::size_t n,
                           std::size_t k) {
  using TC = typename BC::value_type;
  PB_EXPECTS(A.size() == m * k && B.size() == k * n && C.size() == m * n);
  gpusim::launch(ctx, cfg.grid_for(n, m), cfg.block, [&](const gpusim::ThreadCtx& tc) {
    const auto [i, j] = tc.numba_grid2();
    if (i < m && j < n) {
      Acc tmp{};
      for (std::size_t l = 0; l < k; ++l) {
        tmp += static_cast<Acc>(A[i * k + l]) * static_cast<Acc>(B[l * n + j]);
      }
      C[i * n + j] = static_cast<TC>(tmp);
    }
  });
}

/// Tiled shared-memory GEMM (cooperative kernel).  Not in the paper —
/// the paper deliberately studies naive kernels — but included as the
/// optimization-headroom ablation: how much the "hand-rolled lower bound"
/// leaves on the table.  Square tiles of cfg.block.x (== block.y required).
template <class Acc, class BA, class BB, class BC>
void gemm_tiled_shared(gpusim::DeviceContext& ctx, const GpuLaunchConfig& cfg,
                       const BA& A, const BB& B, BC& C, std::size_t m, std::size_t n,
                       std::size_t k) {
  using TC = typename BC::value_type;
  PB_EXPECTS(A.size() == m * k && B.size() == k * n && C.size() == m * n);
  PB_EXPECTS(cfg.block.x == cfg.block.y && cfg.block.z == 1);
  const std::size_t tile = cfg.block.x;

  const gpusim::Dim3 grid = cfg.grid_for(m, n);
  // Three tile-sized arrays: A tile, B tile, and the per-lane accumulators
  // (all carved from the block's pooled shared arena — no per-block heap
  // allocation; the arena arrives zero-filled, so acc starts at Acc{}).
  const std::size_t shared_bytes = 3 * tile * tile * sizeof(Acc);
  const std::size_t k_tiles = (k + tile - 1) / tile;

  gpusim::launch_blocks(ctx, grid, cfg.block, shared_bytes, [&](gpusim::BlockCtx& bc) {
    auto a_tile = bc.template shared<Acc>(tile * tile, 0);
    auto b_tile = bc.template shared<Acc>(tile * tile, tile * tile * sizeof(Acc));
    // Per-lane accumulators persist across the k-tile loop's barriers.
    auto acc = bc.template shared<Acc>(tile * tile, 2 * tile * tile * sizeof(Acc));

    for (std::size_t kt = 0; kt < k_tiles; ++kt) {
      // Phase 1: cooperative load of the A and B tiles (barrier after).
      bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
        const std::size_t row = tc.global_y();
        const std::size_t col = tc.global_x();
        const std::size_t kl = kt * tile;
        a_tile[tc.thread_idx.y * tile + tc.thread_idx.x] =
            (row < m && kl + tc.thread_idx.x < k)
                ? static_cast<Acc>(A[row * k + kl + tc.thread_idx.x])
                : Acc{};
        b_tile[tc.thread_idx.y * tile + tc.thread_idx.x] =
            (kl + tc.thread_idx.y < k && col < n)
                ? static_cast<Acc>(B[(kl + tc.thread_idx.y) * n + col])
                : Acc{};
      });
      // Phase 2: multiply the tiles (barrier before next load).
      bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
        Acc sum = acc[tc.lane_in_block()];
        for (std::size_t l = 0; l < tile; ++l) {
          sum += a_tile[tc.thread_idx.y * tile + l] * b_tile[l * tile + tc.thread_idx.x];
        }
        acc[tc.lane_in_block()] = sum;
      });
    }
    // Write-back phase.
    bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
      const std::size_t row = tc.global_y();
      const std::size_t col = tc.global_x();
      if (row < m && col < n) C[row * n + col] = static_cast<TC>(acc[tc.lane_in_block()]);
    });
  });
}

}  // namespace portabench::gemm
