// Hand-rolled CPU GEMM kernels, one per programming model (paper Fig. 2).
//
// Each kernel keeps the exact loop structure, loop order, parallelized
// axis, data layout, and bounds-check discipline of its Fig. 2 original:
//
//   - C/OpenMP (2a):       row-major, `#pragma omp parallel for` over i,
//                          i-k-j order with a thread-private temp = A[i][k],
//                          manual index linearization, no bounds checks.
//   - Kokkos (2b):         layout-generic lambda computing one C(i,j) entry
//                          per iteration, dispatched via MDRangePolicy.
//   - Julia @threads (2c): column-major, @threads over j, j-l-i order with
//                          temp = B[l, j]; bounds checks unless @inbounds.
//   - Python/Numba (2d):   row-major numpy arrays, prange over i, i-k-j
//                          order with temp = A[i, k].
//
// All kernels compute C += A * B, templated on input scalar T and
// accumulation type Acc (Acc = float for the FP16 experiments, Fig. 1c).
//
// The kernels are generic over their view types: anything with View2's
// access surface (extent/operator()/at, value_type, is_row_major) works,
// so the same source runs over plain simrt views (the benchmarked path)
// or portacheck shadow views (the sanitized path) without modification.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"

namespace portabench::gemm {

namespace detail {

template <class VA, class VB, class VC>
void check_shapes(const VA& A, const VB& B, const VC& C) {
  PB_EXPECTS(A.extent(1) == B.extent(0));
  PB_EXPECTS(C.extent(0) == A.extent(0));
  PB_EXPECTS(C.extent(1) == B.extent(1));
}

}  // namespace detail

/// C/OpenMP-style kernel (Fig. 2a): row-major, outer-i parallel, i-k-j.
template <class Acc, class Space, class VA, class VB, class VC>
void gemm_openmp_style(const Space& space, const VA& A, const VB& B, VC& C) {
  static_assert(VA::is_row_major && VB::is_row_major && VC::is_row_major,
                "the C/OpenMP kernel is row-major (Fig. 2a)");
  using TC = typename VC::value_type;
  detail::check_shapes(A, B, C);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  // The C original walks raw linearized pointers; operator() on a
  // contiguous LayoutRight view lowers to the identical address math.
  simrt::parallel_for(space, simrt::RangePolicy(0, A.extent(0)), [&](std::size_t i) {
    for (std::size_t l = 0; l < k; ++l) {
      const Acc temp = static_cast<Acc>(A(i, l));  // thread-private scalar
      for (std::size_t j = 0; j < n; ++j) {
        C(i, j) = static_cast<TC>(static_cast<Acc>(C(i, j)) + temp * static_cast<Acc>(B(l, j)));
      }
    }
  });
}

/// Kokkos-style kernel (Fig. 2b): one lambda instance per C(i,j) entry.
template <class Acc, class Space, class VA, class VB, class VC>
void gemm_kokkos_style(const Space& space, const VA& A, const VB& B, VC& C) {
  static_assert(std::is_same_v<typename VA::layout_type, typename VC::layout_type>,
                "the Kokkos kernel is layout-generic but layout-consistent");
  using TC = typename VC::value_type;
  detail::check_shapes(A, B, C);
  const std::size_t k = A.extent(1);
  simrt::parallel_for(
      space, simrt::MDRangePolicy2({0, 0}, {C.extent(0), C.extent(1)}),
      [&](std::size_t i, std::size_t j) {
        Acc sum{};
        for (std::size_t l = 0; l < k; ++l) {
          sum += static_cast<Acc>(A(i, l)) * static_cast<Acc>(B(l, j));
        }
        C(i, j) = static_cast<TC>(static_cast<Acc>(C(i, j)) + sum);
      });
}

/// Julia @threads-style kernel (Fig. 2c): column-major, @threads over the
/// output column j, j-l-i order with temp = B[l, j].  `inbounds` selects
/// the @inbounds (unchecked) or default (bounds-checked) access path.
template <class Acc, class Space, class VA, class VB, class VC>
void gemm_julia_style(const Space& space, const VA& A, const VB& B, VC& C,
                      bool inbounds = true) {
  static_assert(!VA::is_row_major && !VB::is_row_major && !VC::is_row_major,
                "the Julia kernel is column-major (Fig. 2c)");
  using TC = typename VC::value_type;
  detail::check_shapes(A, B, C);
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  simrt::parallel_for(space, simrt::RangePolicy(0, B.extent(1)), [&](std::size_t j) {
    if (inbounds) {
      for (std::size_t l = 0; l < k; ++l) {
        const Acc temp = static_cast<Acc>(B(l, j));
        for (std::size_t i = 0; i < m; ++i) {
          C(i, j) = static_cast<TC>(static_cast<Acc>(C(i, j)) + temp * static_cast<Acc>(A(i, l)));
        }
      }
    } else {
      for (std::size_t l = 0; l < k; ++l) {
        const Acc temp = static_cast<Acc>(B.at(l, j));
        for (std::size_t i = 0; i < m; ++i) {
          C.at(i, j) = static_cast<TC>(static_cast<Acc>(C.at(i, j)) +
                                       temp * static_cast<Acc>(A.at(i, l)));
        }
      }
    }
  });
}

/// Kokkos hierarchical (TeamPolicy) kernel: league of row-block teams,
/// lanes covering columns.  Not one of the paper's Fig. 2 kernels — it is
/// the "next step" Kokkos formulation the paper's Section II-b discussion
/// of back-end-specific lowering points at, used by the batched-GEMM
/// mini-app and the team-lowering tests.
template <class Acc, class Space, class VA, class VB, class VC>
void gemm_team_style(const Space& space, const VA& A, const VB& B, VC& C,
                     std::size_t team_size = 8) {
  using TC = typename VC::value_type;
  detail::check_shapes(A, B, C);
  const std::size_t m = C.extent(0);
  const std::size_t n = C.extent(1);
  const std::size_t k = A.extent(1);
  PB_EXPECTS(team_size >= 1);
  // One team per output row; lanes stride the columns (TeamThreadRange).
  simrt::parallel_for(space, simrt::TeamPolicy(m, team_size),
                      [&](const simrt::TeamMember& member) {
                        const std::size_t i = member.league_rank();
                        simrt::team_thread_range(member, n, [&](std::size_t j) {
                          Acc sum{};
                          for (std::size_t l = 0; l < k; ++l) {
                            sum += static_cast<Acc>(A(i, l)) * static_cast<Acc>(B(l, j));
                          }
                          C(i, j) = static_cast<TC>(static_cast<Acc>(C(i, j)) + sum);
                        });
                      });
}

/// Python/Numba-style kernel (Fig. 2d): row-major, prange over i, i-k-j.
/// Numba always emits bounds-safe numpy indexing; @njit(fastmath) relaxes
/// FP contraction but not the access checks, so this uses at().
template <class Acc, class Space, class VA, class VB, class VC>
void gemm_numba_style(const Space& space, const VA& A, const VB& B, VC& C) {
  static_assert(VA::is_row_major && VB::is_row_major && VC::is_row_major,
                "the Numba kernel is row-major (Fig. 2d)");
  using TC = typename VC::value_type;
  detail::check_shapes(A, B, C);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  simrt::parallel_for(space, simrt::RangePolicy(0, A.extent(0)), [&](std::size_t i) {
    for (std::size_t l = 0; l < k; ++l) {
      const Acc temp = static_cast<Acc>(A.at(i, l));
      for (std::size_t j = 0; j < n; ++j) {
        C.at(i, j) = static_cast<TC>(static_cast<Acc>(C.at(i, j)) +
                                     temp * static_cast<Acc>(B.at(l, j)));
      }
    }
  });
}

}  // namespace portabench::gemm
