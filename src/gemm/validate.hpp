// Validation helpers: error norms against the reference GEMM and
// precision-dependent tolerances.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>

#include "common/precision.hpp"
#include "simrt/mdarray.hpp"

namespace portabench::gemm {

/// Maximum absolute elementwise difference between two same-shape views.
template <class T, class LA, class LB>
[[nodiscard]] double max_abs_diff(const simrt::View2<T, LA>& a, const simrt::View2<T, LB>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.extent(0); ++i) {
    for (std::size_t j = 0; j < a.extent(1); ++j) {
      worst = std::max(worst, std::abs(static_cast<double>(a(i, j)) -
                                       static_cast<double>(b(i, j))));
    }
  }
  return worst;
}

/// Same, over flat buffers.
template <class T>
[[nodiscard]] double max_abs_diff(std::span<const T> a, std::span<const T> b) {
  double worst = 0.0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst,
                     std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return worst;
}

/// Forward-error tolerance for a k-term accumulated dot product with
/// inputs in [0, 1): ~ k * eps scaled with a safety factor.  For the
/// FP16-in/FP32-accumulate scheme the accumulation error is FP32 but the
/// *input rounding* error is FP16, giving the eps of the input format.
[[nodiscard]] inline double gemm_tolerance(Precision p, std::size_t k) {
  double eps = 0.0;
  switch (p) {
    case Precision::kDouble: eps = 2.220446049250313e-16; break;
    case Precision::kSingle: eps = 1.1920928955078125e-7; break;
    case Precision::kHalfIn: eps = 9.765625e-4; break;  // 2^-10
  }
  return 8.0 * static_cast<double>(k) * eps;
}

/// Deterministic checksum (sum of all elements in double) used by the
/// benches to prove the functional kernels really ran.
template <class T, class L>
[[nodiscard]] double checksum(const simrt::View2<T, L>& v) {
  double sum = 0.0;
  for (std::size_t i = 0; i < v.extent(0); ++i) {
    for (std::size_t j = 0; j < v.extent(1); ++j) sum += static_cast<double>(v(i, j));
  }
  return sum;
}

template <class T>
[[nodiscard]] double checksum(std::span<const T> v) {
  double sum = 0.0;
  for (const T& x : v) sum += static_cast<double>(x);
  return sum;
}

}  // namespace portabench::gemm
