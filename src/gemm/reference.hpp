// Reference GEMM used as the correctness oracle.
//
// A serial, cache-blocked C = C + A*B at full input precision with
// `Acc`-typed accumulation.  Every hand-rolled kernel in the study is
// validated against this implementation (max elementwise error under a
// precision-dependent tolerance).
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "simrt/mdarray.hpp"

namespace portabench::gemm {

/// C += A * B with A: m x k, B: k x n, C: m x n, any layout mix.
/// Acc is the accumulation type (float accumulate for half inputs).
template <class Acc, class TA, class TB, class TC, class LA, class LB, class LC>
void reference_gemm(const simrt::View2<TA, LA>& A, const simrt::View2<TB, LB>& B,
                    simrt::View2<TC, LC>& C, std::size_t block = 64) {
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  PB_EXPECTS(B.extent(0) == k);
  PB_EXPECTS(C.extent(0) == m && C.extent(1) == n);
  PB_EXPECTS(block > 0);

  for (std::size_t ii = 0; ii < m; ii += block) {
    const std::size_t i_end = std::min(ii + block, m);
    for (std::size_t kk = 0; kk < k; kk += block) {
      const std::size_t k_end = std::min(kk + block, k);
      for (std::size_t jj = 0; jj < n; jj += block) {
        const std::size_t j_end = std::min(jj + block, n);
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t l = kk; l < k_end; ++l) {
            const Acc a = static_cast<Acc>(A(i, l));
            for (std::size_t j = jj; j < j_end; ++j) {
              C(i, j) = static_cast<TC>(static_cast<Acc>(C(i, j)) +
                                        a * static_cast<Acc>(B(l, j)));
            }
          }
        }
      }
    }
  }
}

}  // namespace portabench::gemm
