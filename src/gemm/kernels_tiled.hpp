// Optimized tiled/packed CPU GEMM: the measured performance ceiling.
//
// The paper deliberately studies naive hand-rolled kernels as a lower
// bound (Section I).  This kernel is the other end of that bracket: a
// BLIS-style blocked C += A*B with packed panels and a register-blocked
// micro-kernel, the "optimized C++" frontend the naive Fig. 2 kernels are
// normalized against in the Eq.-2 efficiency machinery (how much of what
// a tuned native implementation extracts does each model's idiom reach?).
//
// Structure (classic three-loop blocking around a micro-kernel):
//   for pc over k in KC steps:         pack B[pc:pc+kc, :] into NR-wide
//                                      column panels (serial, shared)
//     parallel_for over MC row blocks: pack A[ic:ic+mc, pc:pc+kc] into
//                                      MR-tall row panels (thread-local)
//       for each NR column panel:
//         for each MR row panel:       MR x NR register-blocked
//                                      micro-kernel over the packed data
//
// Panels are zero-padded to full MR/NR width so the micro-kernel is
// branch-free; edge handling happens only at writeback.  Packing converts
// T -> Acc, so the FP16 path gets FP32 packed operands (the paper's
// FP16-in/FP32-accumulate scheme) and the micro-kernel is unit-stride
// regardless of the source view's layout — the kernel is layout-generic
// without a layout-specific loop nest.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"

namespace portabench::gemm {

namespace tiled {

inline constexpr std::size_t kMR = 4;    ///< micro-tile rows (register block)
inline constexpr std::size_t kNR = 8;    ///< micro-tile columns (register block)
inline constexpr std::size_t kKC = 256;  ///< k blocking (packed panel depth)
inline constexpr std::size_t kMC = 64;   ///< m blocking (rows per parallel unit)

}  // namespace tiled

/// Optimized tiled GEMM: C += A * B, any layout mix, accumulation in Acc.
/// Parallelized over MC row blocks of C (disjoint output rows per
/// iteration, so the kernel is race-free by construction and sanitizes
/// cleanly under portacheck).
template <class Acc, class Space, class VA, class VB, class VC>
void gemm_tiled(const Space& space, const VA& A, const VB& B, VC& C) {
  using TC = typename VC::value_type;
  using namespace tiled;
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  PB_EXPECTS(B.extent(0) == k);
  PB_EXPECTS(C.extent(0) == m && C.extent(1) == n);
  if (m == 0 || n == 0 || k == 0) return;

  const std::size_t n_panels = (n + kNR - 1) / kNR;
  const std::size_t m_blocks = (m + kMC - 1) / kMC;

  // Shared packed-B storage for one KC step: n_panels panels, each a
  // kc x kNR slab in row-major panel order (zero-padded to kNR).
  std::vector<Acc> Bp(n_panels * kKC * kNR);

  for (std::size_t pc = 0; pc < k; pc += kKC) {
    const std::size_t kc = std::min(kKC, k - pc);

    // Pack B serially: read-only inside the parallel region below.
    for (std::size_t jp = 0; jp < n_panels; ++jp) {
      Acc* panel = Bp.data() + jp * kKC * kNR;
      const std::size_t j0 = jp * kNR;
      const std::size_t nr = std::min(kNR, n - j0);
      for (std::size_t l = 0; l < kc; ++l) {
        for (std::size_t jj = 0; jj < nr; ++jj) {
          panel[l * kNR + jj] = static_cast<Acc>(B(pc + l, j0 + jj));
        }
        for (std::size_t jj = nr; jj < kNR; ++jj) panel[l * kNR + jj] = Acc{};
      }
    }

    simrt::parallel_for(space, simrt::RangePolicy(0, m_blocks), [&](std::size_t bi) {
      const std::size_t ic = bi * kMC;
      const std::size_t mc = std::min(kMC, m - ic);
      const std::size_t m_panels = (mc + kMR - 1) / kMR;

      // Thread-local packed A block: m_panels panels of kc x kMR.
      std::vector<Acc> Ap(m_panels * kc * kMR);
      for (std::size_t ip = 0; ip < m_panels; ++ip) {
        Acc* panel = Ap.data() + ip * kc * kMR;
        const std::size_t i0 = ic + ip * kMR;
        const std::size_t mr = std::min(kMR, m - i0);
        for (std::size_t l = 0; l < kc; ++l) {
          for (std::size_t ii = 0; ii < mr; ++ii) {
            panel[l * kMR + ii] = static_cast<Acc>(A(i0 + ii, pc + l));
          }
          for (std::size_t ii = mr; ii < kMR; ++ii) panel[l * kMR + ii] = Acc{};
        }
      }

      for (std::size_t jp = 0; jp < n_panels; ++jp) {
        const Acc* bp = Bp.data() + jp * kKC * kNR;
        const std::size_t j0 = jp * kNR;
        const std::size_t nr = std::min(kNR, n - j0);
        for (std::size_t ip = 0; ip < m_panels; ++ip) {
          const Acc* ap = Ap.data() + ip * kc * kMR;
          const std::size_t i0 = ic + ip * kMR;
          const std::size_t mr = std::min(kMR, m - i0);

          // Branch-free MR x NR micro-kernel over the packed panels.
          Acc acc[kMR][kNR] = {};
          for (std::size_t l = 0; l < kc; ++l) {
            const Acc* a = ap + l * kMR;
            const Acc* b = bp + l * kNR;
            for (std::size_t ii = 0; ii < kMR; ++ii) {
              const Acc av = a[ii];
              for (std::size_t jj = 0; jj < kNR; ++jj) {
                acc[ii][jj] += av * b[jj];
              }
            }
          }

          // Edge-aware writeback: only the valid mr x nr corner lands in C.
          for (std::size_t ii = 0; ii < mr; ++ii) {
            for (std::size_t jj = 0; jj < nr; ++jj) {
              C(i0 + ii, j0 + jj) = static_cast<TC>(
                  static_cast<Acc>(C(i0 + ii, j0 + jj)) + acc[ii][jj]);
            }
          }
        }
      }
    });
  }
}

}  // namespace portabench::gemm
