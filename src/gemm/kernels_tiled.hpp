// Optimized tiled/packed CPU GEMM: the measured performance ceiling.
//
// The paper deliberately studies naive hand-rolled kernels as a lower
// bound (Section I).  This kernel is the other end of that bracket: a
// BLIS-style blocked C += A*B with packed panels and a register-blocked
// micro-kernel, the "optimized C++" frontend the naive Fig. 2 kernels are
// normalized against in the Eq.-2 efficiency machinery (how much of what
// a tuned native implementation extracts does each model's idiom reach?).
//
// Structure (classic three-loop blocking around a micro-kernel):
//   for pc over k in KC steps:         pack B[pc:pc+kc, :] into NR-wide
//                                      column panels (serial, shared)
//     parallel_for over MC row blocks: pack A[ic:ic+mc, pc:pc+kc] into
//                                      MR-tall row panels (thread-local)
//       for each NR column panel:
//         for each MR row panel:       MR x NR register-blocked
//                                      micro-kernel over the packed data
//
// Panels are zero-padded to full MR/NR width so the micro-kernel is
// branch-free; edge handling happens only at writeback.  Packing converts
// T -> Acc, so the FP16 path gets FP32 packed operands (the paper's
// FP16-in/FP32-accumulate scheme) and the micro-kernel is unit-stride
// regardless of the source view's layout — the kernel is layout-generic
// without a layout-specific loop nest.
//
// The micro-kernel is tier-dispatched through simrt::simd (docs/PERF.md
// "Portable SIMD layer"): float/double get register-blocked AVX2/AVX-512
// variants picked once per process; the scalar micro-kernel remains the
// baseline (and the bit-exact reference — at -O3 the compiler already
// auto-vectorizes it to the baseline ISA, which is why the generic
// vector tier reuses it rather than shipping a same-width copy).  Panel
// width NR follows the kernel (8 scalar/AVX2, 16 for AVX-512 float).
//
// Determinism contract: every tier produces bit-identical C.  Each
// C(i,j) accumulates a(i,l)*b(l,j) over l strictly ascending into one
// accumulator as two rounded IEEE ops (mul then add — fma() here is the
// two-op form and -ffp-contract=off keeps hardware FMA out), and that
// per-element order is invariant under lane width, unroll factor, and
// panel geometry; zero-padded lanes feed only discarded accumulators.
// The sanitized test tier pins scalar vs every available SIMD tier.
//
// Half/bfloat16 operands with addressable row-major storage are packed
// through the batched convert_n() converters (common/half_convert.hpp)
// instead of per-element round trips; views without raw storage (e.g.
// portacheck shadow views) or non-unit row stride fall back to the
// generic per-element packing loops, preserving instrumentation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/half_convert.hpp"
#include "gpusim/batch.hpp"
#include "simrt/mdarray.hpp"
#include "simrt/parallel.hpp"
#include "simrt/simd.hpp"

namespace portabench::gemm {

namespace tiled {

// These are the *defaults* TileConfig starts from; the autotuner
// (src/tune/params.hpp) owns the candidate ranges.
// portalint: tn-magic-tile-ok(TileConfig defaults; the tuning registry in src/tune/params.hpp pins these)
inline constexpr std::size_t kMR = 4;     ///< micro-tile rows (register block)
// portalint: tn-magic-tile-ok(TileConfig defaults; the tuning registry in src/tune/params.hpp pins these)
inline constexpr std::size_t kNR = 8;     ///< micro-tile columns (scalar/AVX2 panel width)
// portalint: tn-magic-tile-ok(TileConfig defaults; the tuning registry in src/tune/params.hpp pins these)
inline constexpr std::size_t kNRMax = 16; ///< widest panel any tier uses (AVX-512 float)
// portalint: tn-magic-tile-ok(TileConfig defaults; the tuning registry in src/tune/params.hpp pins these)
inline constexpr std::size_t kKC = 256;   ///< k blocking (packed panel depth)
// portalint: tn-magic-tile-ok(TileConfig defaults; the tuning registry in src/tune/params.hpp pins these)
inline constexpr std::size_t kMC = 64;    ///< m blocking (rows per parallel unit)

}  // namespace tiled

/// Schedule parameters for the tiled GEMM, produced by the autotuner
/// (src/tune, docs/TUNING.md); the defaults reproduce the historical
/// compile-time constants, so `TileConfig{}` is always valid.
///
/// Determinism contract: only order-free knobs are searchable.
///   - mc: rows per parallel/serial unit — pure work partitioning; each
///     C(i,j) still accumulates its l-terms in the same order.
///   - tier: micro-kernel SIMD tier (-1 = host dispatch tier); every
///     tier is contract-pinned bit-identical to scalar, so this is a
///     speed knob, not a semantics knob.  Unavailable tiers fall back
///     to the host dispatch tier.
///   - kc is ORDER-AFFECTING (C is read/add/written once per KC block,
///     so the pc grouping changes fp combination order); the registry
///     freezes it at the default.  It is carried here so scratch sizing
///     and the loops agree on one value, not so the search varies it.
struct TileConfig {
  std::size_t mc = tiled::kMC;
  std::size_t kc = tiled::kKC;
  int tier = -1;
};

namespace tiled_detail {

/// Micro-kernel signature: acc (kMR x NR, row-major, zero on entry)
/// += ap (kc x kMR panel) * bp (kc x NR panel).
template <class Acc>
using microkernel_fn = void (*)(const Acc* ap, const Acc* bp, std::size_t kc, Acc* acc);

/// A selected micro-kernel plus the panel geometry it expects.
template <class Acc>
struct MicroKernel {
  microkernel_fn<Acc> fn;
  std::size_t nr;        ///< packed-B panel width (acc row stride)
  simrt::SimdTier tier;  ///< tier the kernel was compiled for (reporting)
};

/// Baseline micro-kernel: plain scalar loops, NR-generic.  This is the
/// bit-exact reference every SIMD variant must reproduce.
template <class Acc, std::size_t NR>
inline void microkernel_scalar(const Acc* ap, const Acc* bp, std::size_t kc, Acc* acc) {
  using namespace tiled;
  // Accumulate in a local block: the out-pointer cannot alias the
  // panels, but the compiler can't prove that — a local array keeps the
  // accumulators in registers (and lets -O3 auto-vectorize the jj loop).
  Acc c[kMR][NR] = {};
  for (std::size_t l = 0; l < kc; ++l) {
    const Acc* a = ap + l * kMR;
    const Acc* b = bp + l * NR;
    for (std::size_t ii = 0; ii < kMR; ++ii) {
      const Acc av = a[ii];
      for (std::size_t jj = 0; jj < NR; ++jj) {
        c[ii][jj] += av * b[jj];
      }
    }
  }
  for (std::size_t ii = 0; ii < kMR; ++ii) {
    for (std::size_t jj = 0; jj < NR; ++jj) acc[ii * NR + jj] = c[ii][jj];
  }
}

/// Width-generic SIMD micro-kernel body: kMR x (NR/W vectors) accumulator
/// block, k-loop unrolled by U to hide load latency.  Each accumulator
/// lane still sums its l-terms strictly ascending (the U products are
/// added sequentially into the same register), so the result is
/// bit-identical to microkernel_scalar for every (W, NR, U).
template <class Acc, std::size_t W, std::size_t NR, std::size_t U>
inline void microkernel_simd_body(const Acc* ap, const Acc* bp, std::size_t kc, Acc* acc) {
  using namespace tiled;
  using V = simrt::simd<Acc, W>;
  static_assert(NR % W == 0 && NR <= kNRMax);
  constexpr std::size_t NV = NR / W;

  V c[kMR][NV];
  for (std::size_t ii = 0; ii < kMR; ++ii) {
    for (std::size_t jv = 0; jv < NV; ++jv) c[ii][jv] = V();
  }

  auto step = [&](std::size_t l) {
    const Acc* a = ap + l * kMR;
    const Acc* b = bp + l * NR;
    V bv[NV];
    for (std::size_t jv = 0; jv < NV; ++jv) bv[jv] = V::load(b + jv * W);
    for (std::size_t ii = 0; ii < kMR; ++ii) {
      const V av(a[ii]);
      for (std::size_t jv = 0; jv < NV; ++jv) c[ii][jv] = fma(av, bv[jv], c[ii][jv]);
    }
  };

  std::size_t l = 0;
  for (; l + U <= kc; l += U) {
    for (std::size_t u = 0; u < U; ++u) step(l + u);
  }
  for (; l < kc; ++l) step(l);

  for (std::size_t ii = 0; ii < kMR; ++ii) {
    for (std::size_t jv = 0; jv < NV; ++jv) c[ii][jv].store(acc + ii * NR + jv * W);
  }
}

#if PORTABENCH_SIMD_HAS_X86_TIERS
// Tier wrappers: same generic body recompiled per ISA (flatten inlines
// it under the wider target).  Geometry per tier was measured on the
// perf harness: float AVX2 4x8/u4, float AVX-512 4x16/u2, double AVX2
// 4x8 as two 4-lane vectors/u4, double AVX-512 4x8/u2.
PORTABENCH_SIMD_TARGET_AVX2 inline void microkernel_f32_avx2(const float* ap, const float* bp,
                                                             std::size_t kc, float* acc) {
  microkernel_simd_body<float, 8, 8, 4>(ap, bp, kc, acc);
}
PORTABENCH_SIMD_TARGET_AVX512 inline void microkernel_f32_avx512(const float* ap,
                                                                 const float* bp,
                                                                 std::size_t kc, float* acc) {
  microkernel_simd_body<float, 16, 16, 2>(ap, bp, kc, acc);
}
PORTABENCH_SIMD_TARGET_AVX2 inline void microkernel_f64_avx2(const double* ap,
                                                             const double* bp, std::size_t kc,
                                                             double* acc) {
  microkernel_simd_body<double, 4, 8, 4>(ap, bp, kc, acc);
}
PORTABENCH_SIMD_TARGET_AVX512 inline void microkernel_f64_avx512(const double* ap,
                                                                 const double* bp,
                                                                 std::size_t kc, double* acc) {
  microkernel_simd_body<double, 8, 8, 2>(ap, bp, kc, acc);
}
#endif

/// Micro-kernel for an explicit tier (tests/bench cross-check every
/// available tier for bit identity; pass a tier the host supports).
/// Tiers below kAvx2 — and accumulator types without a tuned variant —
/// use the scalar micro-kernel: the compiler already auto-vectorizes it
/// to the baseline ISA, and the measured generic-vector variant was
/// slower than that baseline.
template <class Acc>
[[nodiscard]] inline MicroKernel<Acc> microkernel_for_tier(simrt::SimdTier tier) noexcept {
  using simrt::SimdTier;
#if PORTABENCH_SIMD_HAS_X86_TIERS
  if constexpr (std::is_same_v<Acc, float>) {
    if (tier == SimdTier::kAvx512) {
      return {&microkernel_f32_avx512, tiled::kNRMax, SimdTier::kAvx512};
    }
    if (tier == SimdTier::kAvx2) return {&microkernel_f32_avx2, tiled::kNR, SimdTier::kAvx2};
  } else if constexpr (std::is_same_v<Acc, double>) {
    if (tier == SimdTier::kAvx512) {
      return {&microkernel_f64_avx512, tiled::kNR, SimdTier::kAvx512};
    }
    if (tier == SimdTier::kAvx2) return {&microkernel_f64_avx2, tiled::kNR, SimdTier::kAvx2};
  }
#endif
  (void)tier;
  return {&microkernel_scalar<Acc, tiled::kNR>, tiled::kNR, SimdTier::kScalar};
}

/// The micro-kernel gemm_tiled dispatches to on this host (cached).
template <class Acc>
[[nodiscard]] inline const MicroKernel<Acc>& pick_microkernel() noexcept {
  static const MicroKernel<Acc> mk = microkernel_for_tier<Acc>(simrt::simd_dispatch_tier());
  return mk;
}

/// Micro-kernel a TileConfig asks for: the host dispatch tier when
/// cfg.tier is -1 (or names a tier this host cannot run), otherwise the
/// requested tier.  Every choice is bit-identical by the SIMD contract.
template <class Acc>
[[nodiscard]] inline MicroKernel<Acc> microkernel_for_config(const TileConfig& cfg) noexcept {
  if (cfg.tier < 0) return pick_microkernel<Acc>();
  const auto tier = static_cast<simrt::SimdTier>(cfg.tier);
  if (!simrt::simd_tier_available(tier)) return pick_microkernel<Acc>();
  return microkernel_for_tier<Acc>(tier);
}

/// True when V exposes raw row-major storage (data() + stride()) whose
/// rows the batched converters can walk.  Deliberately excludes wrapper
/// views without data() — portacheck's ShadowView2 keeps per-element
/// instrumentation by failing this gate.
template <class V>
inline constexpr bool has_raw_rows_v = requires(const V& v) {
  { v.data() };
  { v.stride(std::size_t{0}) } -> std::convertible_to<std::size_t>;
} && V::is_row_major;

/// True when packing V's elements into Acc panels can go through the
/// batched half/bfloat16 converters.
template <class V, class Acc>
inline constexpr bool batched_pack_ok_v =
    std::is_same_v<Acc, float> && has_raw_rows_v<V> &&
    (std::is_same_v<typename V::value_type, half> ||
     std::is_same_v<typename V::value_type, bfloat16>);

}  // namespace tiled_detail

/// Optimized tiled GEMM: C += A * B, any layout mix, accumulation in Acc.
/// Parallelized over MC row blocks of C (disjoint output rows per
/// iteration, so the kernel is race-free by construction and sanitizes
/// cleanly under portacheck).
template <class Acc, class Space, class VA, class VB, class VC>
void gemm_tiled(const Space& space, const VA& A, const VB& B, VC& C,
                const TileConfig& cfg = {}) {
  using TC = typename VC::value_type;
  using namespace tiled;
  namespace td = tiled_detail;
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  PB_EXPECTS(B.extent(0) == k);
  PB_EXPECTS(C.extent(0) == m && C.extent(1) == n);
  PB_EXPECTS(cfg.mc > 0 && cfg.kc > 0);
  if (m == 0 || n == 0 || k == 0) return;

  const td::MicroKernel<Acc> mk = td::microkernel_for_config<Acc>(cfg);
  const std::size_t kc_blk = cfg.kc;
  const std::size_t mc_blk = cfg.mc;
  const std::size_t nr_panel = mk.nr;
  const std::size_t n_panels = (n + nr_panel - 1) / nr_panel;
  const std::size_t m_blocks = (m + mc_blk - 1) / mc_blk;

  // Shared packed-B storage for one KC step: n_panels panels, each a
  // kc x nr_panel slab in row-major panel order (zero-padded to nr_panel).
  std::vector<Acc> Bp(n_panels * kc_blk * nr_panel);

  for (std::size_t pc = 0; pc < k; pc += kc_blk) {
    const std::size_t kc = std::min(kc_blk, k - pc);

    // Pack B serially: read-only inside the parallel region below.
    bool b_packed = false;
    if constexpr (td::batched_pack_ok_v<VB, Acc>) {
      if (B.stride(1) == 1) {
        // Batched path: convert each source row once (SIMD convert_n),
        // then scatter contiguous float segments into the panels.
        std::vector<Acc> rowbuf(n);
        for (std::size_t l = 0; l < kc; ++l) {
          convert_n(B.data() + (pc + l) * B.stride(0), rowbuf.data(), n);
          for (std::size_t jp = 0; jp < n_panels; ++jp) {
            Acc* row = Bp.data() + jp * kc_blk * nr_panel + l * nr_panel;
            const std::size_t j0 = jp * nr_panel;
            const std::size_t nr = std::min(nr_panel, n - j0);
            std::memcpy(row, rowbuf.data() + j0, nr * sizeof(Acc));
            for (std::size_t jj = nr; jj < nr_panel; ++jj) row[jj] = Acc{};
          }
        }
        b_packed = true;
      }
    }
    if (!b_packed) {
      for (std::size_t jp = 0; jp < n_panels; ++jp) {
        Acc* panel = Bp.data() + jp * kc_blk * nr_panel;
        const std::size_t j0 = jp * nr_panel;
        const std::size_t nr = std::min(nr_panel, n - j0);
        for (std::size_t l = 0; l < kc; ++l) {
          for (std::size_t jj = 0; jj < nr; ++jj) {
            panel[l * nr_panel + jj] = static_cast<Acc>(B(pc + l, j0 + jj));
          }
          for (std::size_t jj = nr; jj < nr_panel; ++jj) panel[l * nr_panel + jj] = Acc{};
        }
      }
    }

    simrt::parallel_for(space, simrt::RangePolicy(0, m_blocks), [&](std::size_t bi) {
      const std::size_t ic = bi * mc_blk;
      const std::size_t mc = std::min(mc_blk, m - ic);
      const std::size_t m_panels = (mc + kMR - 1) / kMR;

      // Thread-local packed A block: m_panels panels of kc x kMR.
      std::vector<Acc> Ap(m_panels * kc * kMR);
      bool a_packed = false;
      if constexpr (td::batched_pack_ok_v<VA, Acc>) {
        if (A.stride(1) == 1) {
          // Batched path: convert each A row's k-segment once, then
          // scatter down the MR-interleaved panel layout.
          std::vector<Acc> rowbuf(kc);
          for (std::size_t ip = 0; ip < m_panels; ++ip) {
            Acc* panel = Ap.data() + ip * kc * kMR;
            const std::size_t i0 = ic + ip * kMR;
            const std::size_t mr = std::min(kMR, m - i0);
            for (std::size_t ii = 0; ii < mr; ++ii) {
              convert_n(A.data() + (i0 + ii) * A.stride(0) + pc, rowbuf.data(), kc);
              for (std::size_t l = 0; l < kc; ++l) panel[l * kMR + ii] = rowbuf[l];
            }
            for (std::size_t ii = mr; ii < kMR; ++ii) {
              for (std::size_t l = 0; l < kc; ++l) panel[l * kMR + ii] = Acc{};
            }
          }
          a_packed = true;
        }
      }
      if (!a_packed) {
        for (std::size_t ip = 0; ip < m_panels; ++ip) {
          Acc* panel = Ap.data() + ip * kc * kMR;
          const std::size_t i0 = ic + ip * kMR;
          const std::size_t mr = std::min(kMR, m - i0);
          for (std::size_t l = 0; l < kc; ++l) {
            for (std::size_t ii = 0; ii < mr; ++ii) {
              panel[l * kMR + ii] = static_cast<Acc>(A(i0 + ii, pc + l));
            }
            for (std::size_t ii = mr; ii < kMR; ++ii) panel[l * kMR + ii] = Acc{};
          }
        }
      }

      for (std::size_t jp = 0; jp < n_panels; ++jp) {
        const Acc* bp = Bp.data() + jp * kc_blk * nr_panel;
        const std::size_t j0 = jp * nr_panel;
        const std::size_t nr = std::min(nr_panel, n - j0);
        for (std::size_t ip = 0; ip < m_panels; ++ip) {
          const Acc* ap = Ap.data() + ip * kc * kMR;
          const std::size_t i0 = ic + ip * kMR;
          const std::size_t mr = std::min(kMR, m - i0);

          // Branch-free MR x NR micro-kernel over the packed panels.
          Acc acc[kMR * kNRMax] = {};
          mk.fn(ap, bp, kc, acc);

          // Edge-aware writeback: only the valid mr x nr corner lands in C.
          for (std::size_t ii = 0; ii < mr; ++ii) {
            for (std::size_t jj = 0; jj < nr; ++jj) {
              C(i0 + ii, j0 + jj) = static_cast<TC>(
                  static_cast<Acc>(C(i0 + ii, j0 + jj)) + acc[ii * nr_panel + jj]);
            }
          }
        }
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Scratch-based serial variant + batched entry point (the serving layer's
// "one tiled-microkernel launch per size bucket").
//
// gemm_tiled above allocates its packing panels per call — fine for the
// one-shot paper protocol, fatal for a request engine that must stream
// millions of small GEMMs with zero steady-state allocation.  The serial
// variant takes caller scratch (a pooled arena slice) instead, runs the
// MC blocks in their natural order on one thread, and reuses the exact
// packing loops and micro-kernel of gemm_tiled, so its C is bit-identical
// to gemm_tiled over a SerialSpace (the determinism contract above makes
// that equivalence total, not incidental).
// ---------------------------------------------------------------------------

namespace tiled_detail {

/// Align `p` up inside a byte span; panels hold Acc so alignment is cheap
/// slack, not a correctness requirement for the SIMD loads (the
/// micro-kernels use unaligned loads, same as the vector-backed path).
inline std::byte* scratch_align(std::byte* p, std::size_t alignment) noexcept {
  const auto v = reinterpret_cast<std::uintptr_t>(p);
  const std::uintptr_t rem = v & (alignment - 1);
  return rem == 0 ? p : p + (alignment - rem);
}

}  // namespace tiled_detail

/// Scratch bytes gemm_tiled_serial_scratch needs for an m x n x k GEMM
/// accumulating in Acc (an upper bound valid for every micro-kernel tier).
template <class Acc>
[[nodiscard]] constexpr std::size_t gemm_tiled_scratch_bytes(std::size_t m, std::size_t n,
                                                             std::size_t k,
                                                             const TileConfig& cfg = {}) {
  using namespace tiled;
  (void)k;  // panels are bounded by the KC blocking, not total depth
  const std::size_t bp = (n + kNRMax) * cfg.kc;                    // packed B
  const std::size_t ap = (std::min(m, cfg.mc) + kMR) * cfg.kc;     // packed A
  const std::size_t rowbuf = std::max(n, cfg.kc);                  // half convert staging
  return (bp + ap + rowbuf) * sizeof(Acc) + 3 * 64;                // + alignment slack
}

/// Single-thread gemm_tiled over caller-provided scratch: C += A * B with
/// zero allocation.  Bit-identical to gemm_tiled(SerialSpace, ...).
template <class Acc, class VA, class VB, class VC>
void gemm_tiled_serial_scratch(const VA& A, const VB& B, VC& C, std::span<std::byte> scratch,
                               const TileConfig& cfg = {}) {
  using TC = typename VC::value_type;
  using namespace tiled;
  namespace td = tiled_detail;
  const std::size_t m = A.extent(0);
  const std::size_t k = A.extent(1);
  const std::size_t n = B.extent(1);
  PB_EXPECTS(B.extent(0) == k);
  PB_EXPECTS(C.extent(0) == m && C.extent(1) == n);
  PB_EXPECTS(cfg.mc > 0 && cfg.kc > 0);
  if (m == 0 || n == 0 || k == 0) return;
  PB_EXPECTS(scratch.size() >= gemm_tiled_scratch_bytes<Acc>(m, n, k, cfg));

  const td::MicroKernel<Acc> mk = td::microkernel_for_config<Acc>(cfg);
  const std::size_t kc_blk = cfg.kc;
  const std::size_t mc_blk = cfg.mc;
  const std::size_t nr_panel = mk.nr;
  const std::size_t n_panels = (n + nr_panel - 1) / nr_panel;
  const std::size_t m_blocks = (m + mc_blk - 1) / mc_blk;

  // Carve the three packing areas out of the scratch span.
  std::byte* cursor = td::scratch_align(scratch.data(), 64);
  Acc* const Bp = reinterpret_cast<Acc*>(cursor);
  cursor = td::scratch_align(cursor + n_panels * kc_blk * nr_panel * sizeof(Acc), 64);
  Acc* const Ap = reinterpret_cast<Acc*>(cursor);
  cursor = td::scratch_align(
      cursor + ((std::min(m, mc_blk) + kMR) / kMR) * kc_blk * kMR * sizeof(Acc), 64);
  Acc* const rowbuf = reinterpret_cast<Acc*>(cursor);

  for (std::size_t pc = 0; pc < k; pc += kc_blk) {
    const std::size_t kc = std::min(kc_blk, k - pc);

    bool b_packed = false;
    if constexpr (td::batched_pack_ok_v<VB, Acc>) {
      if (B.stride(1) == 1) {
        for (std::size_t l = 0; l < kc; ++l) {
          convert_n(B.data() + (pc + l) * B.stride(0), rowbuf, n);
          for (std::size_t jp = 0; jp < n_panels; ++jp) {
            Acc* row = Bp + jp * kc_blk * nr_panel + l * nr_panel;
            const std::size_t j0 = jp * nr_panel;
            const std::size_t nr = std::min(nr_panel, n - j0);
            std::memcpy(row, rowbuf + j0, nr * sizeof(Acc));
            for (std::size_t jj = nr; jj < nr_panel; ++jj) row[jj] = Acc{};
          }
        }
        b_packed = true;
      }
    }
    if (!b_packed) {
      for (std::size_t jp = 0; jp < n_panels; ++jp) {
        Acc* panel = Bp + jp * kc_blk * nr_panel;
        const std::size_t j0 = jp * nr_panel;
        const std::size_t nr = std::min(nr_panel, n - j0);
        for (std::size_t l = 0; l < kc; ++l) {
          for (std::size_t jj = 0; jj < nr; ++jj) {
            panel[l * nr_panel + jj] = static_cast<Acc>(B(pc + l, j0 + jj));
          }
          for (std::size_t jj = nr; jj < nr_panel; ++jj) panel[l * nr_panel + jj] = Acc{};
        }
      }
    }

    for (std::size_t bi = 0; bi < m_blocks; ++bi) {
      const std::size_t ic = bi * mc_blk;
      const std::size_t mc = std::min(mc_blk, m - ic);
      const std::size_t m_panels = (mc + kMR - 1) / kMR;

      bool a_packed = false;
      if constexpr (td::batched_pack_ok_v<VA, Acc>) {
        if (A.stride(1) == 1) {
          for (std::size_t ip = 0; ip < m_panels; ++ip) {
            Acc* panel = Ap + ip * kc * kMR;
            const std::size_t i0 = ic + ip * kMR;
            const std::size_t mr = std::min(kMR, m - i0);
            for (std::size_t ii = 0; ii < mr; ++ii) {
              convert_n(A.data() + (i0 + ii) * A.stride(0) + pc, rowbuf, kc);
              for (std::size_t l = 0; l < kc; ++l) panel[l * kMR + ii] = rowbuf[l];
            }
            for (std::size_t ii = mr; ii < kMR; ++ii) {
              for (std::size_t l = 0; l < kc; ++l) panel[l * kMR + ii] = Acc{};
            }
          }
          a_packed = true;
        }
      }
      if (!a_packed) {
        for (std::size_t ip = 0; ip < m_panels; ++ip) {
          Acc* panel = Ap + ip * kc * kMR;
          const std::size_t i0 = ic + ip * kMR;
          const std::size_t mr = std::min(kMR, m - i0);
          for (std::size_t l = 0; l < kc; ++l) {
            for (std::size_t ii = 0; ii < mr; ++ii) {
              panel[l * kMR + ii] = static_cast<Acc>(A(i0 + ii, pc + l));
            }
            for (std::size_t ii = mr; ii < kMR; ++ii) panel[l * kMR + ii] = Acc{};
          }
        }
      }

      for (std::size_t jp = 0; jp < n_panels; ++jp) {
        const Acc* bp = Bp + jp * kc_blk * nr_panel;
        const std::size_t j0 = jp * nr_panel;
        const std::size_t nr = std::min(nr_panel, n - j0);
        for (std::size_t ip = 0; ip < m_panels; ++ip) {
          const Acc* ap = Ap + ip * kc * kMR;
          const std::size_t i0 = ic + ip * kMR;
          const std::size_t mr = std::min(kMR, m - i0);

          Acc acc[kMR * kNRMax] = {};
          mk.fn(ap, bp, kc, acc);

          for (std::size_t ii = 0; ii < mr; ++ii) {
            for (std::size_t jj = 0; jj < nr; ++jj) {
              C(i0 + ii, j0 + jj) = static_cast<TC>(
                  static_cast<Acc>(C(i0 + ii, j0 + jj)) + acc[ii * nr_panel + jj]);
            }
          }
        }
      }
    }
  }
}

/// One square n x n GEMM of a batch: dense row-major raw buffers,
/// C += A * B accumulating in Acc.
template <class T, class Acc>
struct GemmBatchItem {
  const T* a = nullptr;
  const T* b = nullptr;
  Acc* c = nullptr;
  std::size_t n = 0;
};

/// Batched entry point: run every item as one engine launch (one item per
/// block, packing scratch from the pooled per-worker arenas — zero
/// steady-state allocation).  Under portacheck the batch executes as a
/// seed-permuted serial schedule; either way each item's C is
/// bit-identical to gemm_tiled(SerialSpace) on the same operands.
template <class T, class Acc>
void gemm_tiled_batched(gpusim::LaunchEngine& engine,
                        std::span<const GemmBatchItem<T, Acc>> items,
                        const TileConfig& cfg = {}) {
  std::size_t total_threads = 0;
  for (const auto& item : items) total_threads += item.n * item.n;
  gpusim::run_batch(engine, items.size(), total_threads,
                    [&engine, items, cfg](std::size_t worker, std::size_t idx) {
                      const GemmBatchItem<T, Acc>& item = items[idx];
                      if (item.n == 0) return;
                      const std::size_t bytes =
                          gemm_tiled_scratch_bytes<Acc>(item.n, item.n, item.n, cfg);
                      auto scratch = gpusim::batch_scratch(engine, worker, bytes);
                      const simrt::RawView2<const T> A(item.a, item.n, item.n);
                      const simrt::RawView2<const T> B(item.b, item.n, item.n);
                      simrt::RawView2<Acc> C(item.c, item.n, item.n);
                      gemm_tiled_serial_scratch<Acc>(A, B, C, scratch, cfg);
                    });
}

}  // namespace portabench::gemm
