// Device-wide histogram with privatized per-block counting and a
// deterministic block-ordered combine.
//
// Structure (docs/PRIMITIVES.md):
//   count    — one block per chunk-sized tile; lanes own CONTIGUOUS
//              sub-slices and count into a privatized shared-memory
//              histogram row per lane (no atomics, no cross-lane
//              writes), then fold the rows in ascending lane order into
//              a bin-major partials array partials[bin * blocks + block]
//   combine  — a second launch folds each bin's partials in ascending
//              BLOCK order into the output
// Counts are integers, so the result is schedule-independent by
// exactness; the fixed lane/block fold order additionally pins the
// intermediate states, which is what portacheck's permuted schedules
// verify.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "gpusim/launch.hpp"
#include "reduce.hpp"
#include "tunables.hpp"

namespace portabench::primitives {

/// Schedule-only knobs.
struct HistogramConfig {
  std::size_t lanes = kDefaultLanes;
  std::size_t chunk = kDefaultSortChunk;  ///< elements per block tile
};

namespace detail {

/// Deterministic block-ordered combine: each bin folds its per-block
/// partials (bin-major, partials[bin * blocks + block]) in ascending
/// block order into hist[bin].
template <class Count>
void histogram_combine(gpusim::DeviceContext& ctx, std::span<const Count> partials,
                       std::span<Count> hist, std::size_t blocks, std::size_t lanes) {
  const std::size_t bins = hist.size();
  const std::size_t comb_lanes = std::max<std::size_t>(1, lanes);
  const std::size_t comb_blocks = ceil_div(bins, comb_lanes);
  gpusim::launch(ctx, {comb_blocks, 1, 1}, {comb_lanes, 1, 1},
                 [&](const gpusim::ThreadCtx& tc) {
                   const std::size_t k = tc.global_x();
                   if (k >= bins) return;
                   Count c{0};
                   for (std::size_t b = 0; b < blocks; ++b) {
                     c = static_cast<Count>(c + partials[k * blocks + b]);
                   }
                   hist[k] = c;
                 });
}

}  // namespace detail

/// Count in[i] into hist[bin_of(in[i])].  `hist` is overwritten (not
/// accumulated into); bin_of must return a value < hist.size() for every
/// input.  Count must be an integral type wide enough for n.
template <class T, class Count, class BinOf>
  requires std::is_integral_v<Count>
void device_histogram(gpusim::DeviceContext& ctx, std::span<const T> in,
                      std::span<Count> hist, BinOf bin_of,
                      const HistogramConfig& cfg = {}) {
  const std::size_t bins = hist.size();
  PB_EXPECTS(bins >= 1);
  const std::size_t n = in.size();
  if (n == 0) {
    std::fill(hist.begin(), hist.end(), Count{0});
    return;
  }

  const std::size_t tile = std::max<std::size_t>(1, cfg.chunk);
  const std::size_t blocks = detail::ceil_div(n, tile);
  const std::size_t want = std::max<std::size_t>(1, cfg.lanes);
  const std::size_t row_bytes = bins * sizeof(Count);

  std::vector<Count> partials(bins * blocks);
  if (row_bytes > ctx.spec().shared_mem_per_block) {
    // Not even ONE privatized row fits in shared memory: degenerate to a
    // single lane per block counting straight into its partials column
    // (each block owns the slots partials[k * blocks + blk], so the
    // launch stays conflict-free and the counts stay exact).
    gpusim::launch(ctx, {blocks, 1, 1}, {1, 1, 1}, [&](const gpusim::ThreadCtx& tc) {
      const std::size_t blk = tc.block_idx.x;
      const std::size_t lo = blk * tile;
      const std::size_t hi = std::min(n, lo + tile);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t bin = static_cast<std::size_t>(bin_of(in[i]));
        PB_EXPECTS(bin < bins);
        partials[bin * blocks + blk] =
            static_cast<Count>(partials[bin * blocks + blk] + 1);
      }
    });
    detail::histogram_combine(ctx, std::span<const Count>(partials), hist, blocks, want);
    return;
  }

  const std::size_t cap =
      std::max<std::size_t>(1, ctx.spec().shared_mem_per_block / row_bytes);
  const std::size_t lanes = std::min(want, cap);
  const std::size_t shared_bytes = lanes * bins * sizeof(Count);

  gpusim::launch_blocks(
      ctx, {blocks, 1, 1}, {lanes, 1, 1}, shared_bytes, [&](gpusim::BlockCtx& bc) {
        auto priv = bc.template shared<Count>(lanes * bins);
        const std::size_t blk = bc.block_idx().x;
        const std::size_t lo = blk * tile;
        const std::size_t len = std::min(n, lo + tile) - lo;
        const std::size_t per = detail::ceil_div(len, lanes);
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          const std::size_t lane = tc.thread_idx.x;
          auto row = priv.subspan(lane * bins, bins);
          for (std::size_t k = 0; k < bins; ++k) row[k] = Count{0};
          const std::size_t a = lo + std::min(len, lane * per);
          const std::size_t b = lo + std::min(len, (lane + 1) * per);
          for (std::size_t i = a; i < b; ++i) {
            const std::size_t bin = static_cast<std::size_t>(bin_of(in[i]));
            PB_EXPECTS(bin < bins);
            ++row[bin];
          }
        });
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          for (std::size_t k = tc.thread_idx.x; k < bins; k += lanes) {
            Count c{0};
            for (std::size_t l = 0; l < lanes; ++l) {
              c = static_cast<Count>(c + priv[l * bins + k]);
            }
            partials[k * blocks + blk] = c;
          }
        });
      });

  detail::histogram_combine(ctx, std::span<const Count>(partials), hist, blocks,
                            cfg.lanes);
}

}  // namespace portabench::primitives
