// Device-wide sorting: LSD radix sort (key and key-value, configurable
// digit width) built from the device scan, plus a comparison-based merge
// sort fallback for key types without a radix bijection.
//
// Radix pass structure (docs/PRIMITIVES.md):
//   count   — one block per chunk-sized tile; lanes own CONTIGUOUS
//             sub-slices and count digits into a privatized
//             shared-memory histogram (one row per lane), then fold the
//             rows in ascending lane order into a digit-major global
//             counts array counts[digit * blocks + block]
//   scan    — device_exclusive_scan over the counts array (integer sum:
//             exact), so offsets order ranks by (digit, block, lane,
//             position) — which is precisely LSD stability
//   scatter — lanes recount their slice, turn the privatized rows into
//             per-(lane, digit) start positions, and scatter their slice
//             in element order; every output slot is written exactly once
// All three passes are deterministic by construction — ranks are a pure
// function of the key array — so the sorted output is bitwise-identical
// to std::stable_sort over the key bijection under every schedule.
//
// Signed and floating-point keys sort through the usual monotone bit
// bijections (sign-flip for two's complement, sign-fold for IEEE-754),
// applied once before the passes and inverted once after.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "gpusim/launch.hpp"
#include "op.hpp"
#include "scan.hpp"
#include "tunables.hpp"

namespace portabench::primitives {

/// Schedule-only knobs (searchable; see the `primitives-radix` space).
/// radix_bits is schedule-only too: any digit width yields the identical
/// sorted output (the keys are integers after the bijection).
struct SortConfig {
  unsigned radix_bits = kDefaultRadixBits;
  std::size_t chunk = kDefaultSortChunk;  ///< elements per block tile
  std::size_t lanes = kDefaultSortLanes;  ///< lanes per count/scatter block
};

// ---------------------------------------------------------------------------
// Key bijections.
// ---------------------------------------------------------------------------

/// Maps a key type onto an unsigned integer so that unsigned order of the
/// bits equals the key's total order (for floats: -NaN < -inf < ... <
/// +inf < +NaN, the IEEE total order on the sign-folded bits).
template <class K>
struct RadixTraits;

template <>
struct RadixTraits<std::uint32_t> {
  using Bits = std::uint32_t;
  [[nodiscard]] static Bits to_bits(std::uint32_t k) noexcept { return k; }
  [[nodiscard]] static std::uint32_t from_bits(Bits b) noexcept { return b; }
};

template <>
struct RadixTraits<std::uint64_t> {
  using Bits = std::uint64_t;
  [[nodiscard]] static Bits to_bits(std::uint64_t k) noexcept { return k; }
  [[nodiscard]] static std::uint64_t from_bits(Bits b) noexcept { return b; }
};

template <>
struct RadixTraits<std::int32_t> {
  using Bits = std::uint32_t;
  [[nodiscard]] static Bits to_bits(std::int32_t k) noexcept {
    return static_cast<Bits>(k) ^ (Bits{1} << 31);
  }
  [[nodiscard]] static std::int32_t from_bits(Bits b) noexcept {
    return static_cast<std::int32_t>(b ^ (Bits{1} << 31));
  }
};

template <>
struct RadixTraits<std::int64_t> {
  using Bits = std::uint64_t;
  [[nodiscard]] static Bits to_bits(std::int64_t k) noexcept {
    return static_cast<Bits>(k) ^ (Bits{1} << 63);
  }
  [[nodiscard]] static std::int64_t from_bits(Bits b) noexcept {
    return static_cast<std::int64_t>(b ^ (Bits{1} << 63));
  }
};

template <>
struct RadixTraits<float> {
  using Bits = std::uint32_t;
  [[nodiscard]] static Bits to_bits(float k) noexcept {
    const Bits b = std::bit_cast<Bits>(k);
    return (b & (Bits{1} << 31)) ? ~b : (b | (Bits{1} << 31));
  }
  [[nodiscard]] static float from_bits(Bits b) noexcept {
    return std::bit_cast<float>((b & (Bits{1} << 31)) ? (b ^ (Bits{1} << 31)) : ~b);
  }
};

template <>
struct RadixTraits<double> {
  using Bits = std::uint64_t;
  [[nodiscard]] static Bits to_bits(double k) noexcept {
    const Bits b = std::bit_cast<Bits>(k);
    return (b & (Bits{1} << 63)) ? ~b : (b | (Bits{1} << 63));
  }
  [[nodiscard]] static double from_bits(Bits b) noexcept {
    return std::bit_cast<double>((b & (Bits{1} << 63)) ? (b ^ (Bits{1} << 63)) : ~b);
  }
};

template <class K>
concept RadixSortable = requires { typename RadixTraits<K>::Bits; };

namespace detail {

struct NoValues {};

/// Lanes for a privatized shared histogram: clamp the requested count so
/// lanes * digits counters fit the device's shared-memory-per-block
/// limit (the real GPU constraint that couples radix width to block
/// size).
[[nodiscard]] inline std::size_t priv_lanes(const gpusim::DeviceContext& ctx,
                                            std::size_t want, std::size_t digits) {
  const std::size_t cap =
      ctx.spec().shared_mem_per_block / (digits * sizeof(std::size_t));
  return std::max<std::size_t>(1, std::min(want, cap));
}

template <class B>
[[nodiscard]] constexpr std::size_t digit_of(B bits, unsigned shift,
                                             std::size_t digits) noexcept {
  return static_cast<std::size_t>(bits >> shift) & (digits - 1);
}

/// One LSD pass: stable-partition `src` into `dst` by the digit at
/// `shift`.  Values (if any) ride along through the same permutation.
template <class B, class V>
void radix_pass(gpusim::DeviceContext& ctx, std::span<const B> src, std::span<B> dst,
                std::span<const V> vsrc, std::span<V> vdst, unsigned shift,
                std::size_t digits, const SortConfig& cfg, std::span<std::size_t> counts,
                std::span<std::size_t> offsets) {
  constexpr bool kWithValues = !std::is_same_v<V, NoValues>;
  const std::size_t n = src.size();
  const std::size_t tile = std::max<std::size_t>(1, cfg.chunk);
  const std::size_t blocks = ceil_div(n, tile);
  const std::size_t lanes = priv_lanes(ctx, std::max<std::size_t>(1, cfg.lanes), digits);
  const std::size_t shared_bytes = lanes * digits * sizeof(std::size_t);

  // count: privatized per-lane rows, folded in ascending lane order into
  // the digit-major global array.
  gpusim::launch_blocks(
      ctx, {blocks, 1, 1}, {lanes, 1, 1}, shared_bytes, [&](gpusim::BlockCtx& bc) {
        auto priv = bc.template shared<std::size_t>(lanes * digits);
        const std::size_t blk = bc.block_idx().x;
        const std::size_t lo = blk * tile;
        const std::size_t len = std::min(n, lo + tile) - lo;
        const std::size_t per = ceil_div(len, lanes);
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          const std::size_t lane = tc.thread_idx.x;
          auto row = priv.subspan(lane * digits, digits);
          for (std::size_t d = 0; d < digits; ++d) row[d] = 0;
          const std::size_t a = lo + std::min(len, lane * per);
          const std::size_t b = lo + std::min(len, (lane + 1) * per);
          for (std::size_t i = a; i < b; ++i) ++row[digit_of(src[i], shift, digits)];
        });
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          for (std::size_t d = tc.thread_idx.x; d < digits; d += lanes) {
            std::size_t c = 0;
            for (std::size_t l = 0; l < lanes; ++l) c += priv[l * digits + d];
            counts[d * blocks + blk] = c;
          }
        });
      });

  // scan: global ranks from the digit-major exclusive scan — built on the
  // device-wide scan itself (integer sum: exact).
  device_exclusive_scan(ctx, std::span<const std::size_t>(counts), offsets,
                        SumOp<std::size_t>{});

  // scatter: recount, turn the rows into per-(lane, digit) starts, then
  // scatter each lane's contiguous slice in element order (stability).
  gpusim::launch_blocks(
      ctx, {blocks, 1, 1}, {lanes, 1, 1}, shared_bytes, [&](gpusim::BlockCtx& bc) {
        auto priv = bc.template shared<std::size_t>(lanes * digits);
        const std::size_t blk = bc.block_idx().x;
        const std::size_t lo = blk * tile;
        const std::size_t len = std::min(n, lo + tile) - lo;
        const std::size_t per = ceil_div(len, lanes);
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          const std::size_t lane = tc.thread_idx.x;
          auto row = priv.subspan(lane * digits, digits);
          for (std::size_t d = 0; d < digits; ++d) row[d] = 0;
          const std::size_t a = lo + std::min(len, lane * per);
          const std::size_t b = lo + std::min(len, (lane + 1) * per);
          for (std::size_t i = a; i < b; ++i) ++row[digit_of(src[i], shift, digits)];
        });
        // Each lane owns the digit COLUMNS d, d+lanes, ...: walk the
        // column in ascending lane order rewriting counts into start
        // positions.  Columns are disjoint across lanes, so the permuted
        // sanitizer schedule sees no conflicts.
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          for (std::size_t d = tc.thread_idx.x; d < digits; d += lanes) {
            std::size_t run = offsets[d * blocks + blk];
            for (std::size_t l = 0; l < lanes; ++l) {
              const std::size_t c = priv[l * digits + d];
              priv[l * digits + d] = run;
              run += c;
            }
          }
        });
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          const std::size_t lane = tc.thread_idx.x;
          auto row = priv.subspan(lane * digits, digits);
          const std::size_t a = lo + std::min(len, lane * per);
          const std::size_t b = lo + std::min(len, (lane + 1) * per);
          for (std::size_t i = a; i < b; ++i) {
            const std::size_t pos = row[digit_of(src[i], shift, digits)]++;
            dst[pos] = src[i];
            if constexpr (kWithValues) vdst[pos] = vsrc[i];
          }
        });
      });
}

template <class K, class V>
void radix_sort_impl(gpusim::DeviceContext& ctx, std::span<K> keys, std::span<V> values,
                     const SortConfig& cfg) {
  using TR = RadixTraits<K>;
  using B = typename TR::Bits;
  constexpr bool kWithValues = !std::is_same_v<V, NoValues>;
  const std::size_t n = keys.size();
  if constexpr (kWithValues) PB_EXPECTS(values.size() == n);
  if (n <= 1) return;
  PB_EXPECTS(cfg.radix_bits >= 1 && cfg.radix_bits <= 8);
  const std::size_t digits = std::size_t{1} << cfg.radix_bits;
  const unsigned key_bits = std::numeric_limits<B>::digits;
  const unsigned passes = (key_bits + cfg.radix_bits - 1) / cfg.radix_bits;

  std::vector<B> ping(n);
  std::vector<B> pong(n);
  const std::size_t tile = std::max<std::size_t>(1, cfg.chunk);
  const std::size_t blocks = ceil_div(n, tile);
  gpusim::launch(ctx, {blocks, 1, 1}, {std::max<std::size_t>(1, cfg.lanes), 1, 1},
                 [&](const gpusim::ThreadCtx& tc) {
                   const std::size_t lanes = tc.block_dim.x;
                   const std::size_t lo = tc.block_idx.x * tile;
                   const std::size_t hi = std::min(n, lo + tile);
                   for (std::size_t i = lo + tc.thread_idx.x; i < hi; i += lanes) {
                     ping[i] = TR::to_bits(keys[i]);
                   }
                 });

  std::vector<V> vping;
  std::vector<V> vpong;
  if constexpr (kWithValues) {
    vping.assign(values.begin(), values.end());
    vpong.resize(n);
  }

  std::vector<std::size_t> counts(digits * blocks);
  std::vector<std::size_t> offsets(digits * blocks);

  std::span<B> a(ping);
  std::span<B> b(pong);
  std::span<V> va(vping);
  std::span<V> vb(vpong);
  for (unsigned p = 0; p < passes; ++p) {
    radix_pass<B, V>(ctx, a, b, va, vb, p * cfg.radix_bits, digits, cfg,
                     std::span<std::size_t>(counts), std::span<std::size_t>(offsets));
    std::swap(a, b);
    if constexpr (kWithValues) std::swap(va, vb);
  }

  gpusim::launch(ctx, {blocks, 1, 1}, {std::max<std::size_t>(1, cfg.lanes), 1, 1},
                 [&](const gpusim::ThreadCtx& tc) {
                   const std::size_t block_lanes = tc.block_dim.x;
                   const std::size_t lo = tc.block_idx.x * tile;
                   const std::size_t hi = std::min(n, lo + tile);
                   for (std::size_t i = lo + tc.thread_idx.x; i < hi; i += block_lanes) {
                     keys[i] = TR::from_bits(a[i]);
                     if constexpr (kWithValues) values[i] = va[i];
                   }
                 });
}

}  // namespace detail

/// Sort keys ascending (stable by construction).
template <class K>
  requires RadixSortable<K>
void device_radix_sort_keys(gpusim::DeviceContext& ctx, std::span<K> keys,
                            const SortConfig& cfg = {}) {
  detail::radix_sort_impl<K, detail::NoValues>(ctx, keys, {}, cfg);
}

/// Sort (key, value) pairs ascending by key; equal keys keep their input
/// order (LSD radix sorts are stable).
template <class K, class V>
  requires RadixSortable<K>
void device_radix_sort_pairs(gpusim::DeviceContext& ctx, std::span<K> keys,
                             std::span<V> values, const SortConfig& cfg = {}) {
  detail::radix_sort_impl<K, V>(ctx, keys, values, cfg);
}

// ---------------------------------------------------------------------------
// Merge-sort fallback: comparison-based, for key types with no radix
// bijection.  Tile-local std::stable_sort (one block per tile, blocks in
// parallel), then log2 passes of pairwise run merges taking the LEFT
// element on ties — stable, and deterministic under every schedule
// because the merge tree is a pure function of n and chunk.
// ---------------------------------------------------------------------------

namespace detail {

template <class T, class Less>
void merge_runs(std::span<const T> src, std::span<T> dst, std::size_t lo, std::size_t mid,
                std::size_t hi, Less& less) {
  std::size_t i = lo;
  std::size_t j = mid;
  std::size_t o = lo;
  while (i < mid && j < hi) {
    // !less(right, left): take the left run on ties — stability.
    if (!less(src[j], src[i])) {
      dst[o++] = src[i++];
    } else {
      dst[o++] = src[j++];
    }
  }
  while (i < mid) dst[o++] = src[i++];
  while (j < hi) dst[o++] = src[j++];
}

template <class T, class Less>
void merge_sort_spans(gpusim::DeviceContext& ctx, std::span<T> data, Less less,
                      const SortConfig& cfg) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  const std::size_t tile = std::max<std::size_t>(1, cfg.chunk);
  const std::size_t blocks = ceil_div(n, tile);

  // Tile-local stable sort: one single-lane block per tile (the
  // simulator analogue of a per-block sorting network); blocks run in
  // parallel across the engine.
  gpusim::launch_blocks(ctx, {blocks, 1, 1}, {1, 1, 1}, 0, [&](gpusim::BlockCtx& bc) {
    const std::size_t lo = bc.block_idx().x * tile;
    const std::size_t hi = std::min(n, lo + tile);
    bc.for_lanes([&](const gpusim::ThreadCtx&) {
      std::stable_sort(data.begin() + static_cast<std::ptrdiff_t>(lo),
                       data.begin() + static_cast<std::ptrdiff_t>(hi), less);
    });
  });

  std::vector<T> aux(n);
  std::span<T> src = data;
  std::span<T> dst(aux);
  for (std::size_t width = tile; width < n; width *= 2) {
    const std::size_t merges = ceil_div(n, 2 * width);
    gpusim::launch_blocks(
        ctx, {merges, 1, 1}, {1, 1, 1}, 0, [&](gpusim::BlockCtx& bc) {
          const std::size_t lo = bc.block_idx().x * 2 * width;
          const std::size_t mid = std::min(n, lo + width);
          const std::size_t hi = std::min(n, lo + 2 * width);
          bc.for_lanes([&](const gpusim::ThreadCtx&) {
            merge_runs(std::span<const T>(src), dst, lo, mid, hi, less);
          });
        });
    std::swap(src, dst);
  }
  if (src.data() != data.data()) {
    std::copy(src.begin(), src.end(), data.begin());
  }
}

}  // namespace detail

/// Comparison-based sort for non-radix-friendly key types.  Stable.
template <class K, class Less = std::less<K>>
void device_merge_sort_keys(gpusim::DeviceContext& ctx, std::span<K> keys,
                            Less less = {}, const SortConfig& cfg = {}) {
  detail::merge_sort_spans(ctx, keys, less, cfg);
}

/// Key-value merge sort: sorts materialized pairs by key (stable), then
/// writes keys and values back.
template <class K, class V, class Less = std::less<K>>
void device_merge_sort_pairs(gpusim::DeviceContext& ctx, std::span<K> keys,
                             std::span<V> values, Less less = {},
                             const SortConfig& cfg = {}) {
  PB_EXPECTS(values.size() == keys.size());
  std::vector<std::pair<K, V>> zipped(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) zipped[i] = {keys[i], values[i]};
  auto pair_less = [&less](const std::pair<K, V>& a, const std::pair<K, V>& b) {
    return less(a.first, b.first);
  };
  detail::merge_sort_spans(ctx, std::span<std::pair<K, V>>(zipped), pair_less, cfg);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = zipped[i].first;
    values[i] = zipped[i].second;
  }
}

// ---------------------------------------------------------------------------
// Host-serial radix core: the same LSD passes without launches, for call
// sites that sort small batches on the host (the serve engine's
// sort-by-(bucket_key, id) flush path).  Stable; no allocation beyond
// the ping-pong buffers the caller can reuse.
// ---------------------------------------------------------------------------

/// Reusable scratch for host_radix_sort_pairs (steady-state: no
/// allocations once the capacity has grown to the largest batch).
template <class B, class V>
struct HostRadixScratch {
  std::vector<B> keys;
  std::vector<V> values;
  std::vector<std::size_t> counts;
};

template <class K, class V>
  requires RadixSortable<K>
void host_radix_sort_pairs(std::span<K> keys, std::span<V> values,
                           HostRadixScratch<typename RadixTraits<K>::Bits, V>& scratch,
                           unsigned radix_bits = kDefaultRadixBits) {
  using TR = RadixTraits<K>;
  using B = typename TR::Bits;
  const std::size_t n = keys.size();
  PB_EXPECTS(values.size() == n);
  if (n <= 1) return;
  PB_EXPECTS(radix_bits >= 1 && radix_bits <= 8);
  const std::size_t digits = std::size_t{1} << radix_bits;
  const unsigned key_bits = std::numeric_limits<B>::digits;
  const unsigned passes = (key_bits + radix_bits - 1) / radix_bits;

  scratch.keys.resize(2 * n);
  scratch.values.resize(n);
  scratch.counts.resize(digits);
  std::span<B> a(scratch.keys.data(), n);
  std::span<B> b(scratch.keys.data() + n, n);
  for (std::size_t i = 0; i < n; ++i) a[i] = TR::to_bits(keys[i]);
  std::span<V> va = values;
  std::span<V> vb(scratch.values.data(), n);

  for (unsigned p = 0; p < passes; ++p) {
    const unsigned shift = p * radix_bits;
    std::fill(scratch.counts.begin(), scratch.counts.end(), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      ++scratch.counts[detail::digit_of(a[i], shift, digits)];
    }
    std::size_t run = 0;
    for (std::size_t d = 0; d < digits; ++d) {
      const std::size_t c = scratch.counts[d];
      scratch.counts[d] = run;
      run += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos = scratch.counts[detail::digit_of(a[i], shift, digits)]++;
      b[pos] = a[i];
      vb[pos] = va[i];
    }
    std::swap(a, b);
    std::swap(va, vb);
  }

  for (std::size_t i = 0; i < n; ++i) keys[i] = TR::from_bits(a[i]);
  if (va.data() != values.data()) {
    std::copy(va.begin(), va.end(), values.begin());
  }
}

template <class K, class V>
  requires RadixSortable<K>
void host_radix_sort_pairs(std::span<K> keys, std::span<V> values,
                           unsigned radix_bits = kDefaultRadixBits) {
  HostRadixScratch<typename RadixTraits<K>::Bits, V> scratch;
  host_radix_sort_pairs(keys, values, scratch, radix_bits);
}

}  // namespace portabench::primitives
