// Serial oracles for the device-wide primitives.
//
// Each oracle is a plain single-threaded loop that replays the EXACT
// association the device path commits to — the same kSegment slice
// folds (through the same segment_fold, including its SIMD routing) and
// the same ascending combine — so device results must match the oracle
// bit-for-bit under every schedule, thread count, and sanitizer
// permutation seed.  The property tests and bench/micro_primitives
// verify exactly that.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "op.hpp"
#include "reduce.hpp"
#include "scan.hpp"
#include "sort.hpp"
#include "tunables.hpp"

namespace portabench::primitives {

/// What device_reduce computes, serially.
template <class T, class Op>
  requires ReductionOpFor<Op, T>
[[nodiscard]] T reduce_oracle(std::span<const T> in, Op op) {
  const std::size_t n = in.size();
  if (n == 0) return op.identity();
  const std::size_t segments = detail::ceil_div(n, kSegment);
  std::vector<T> partials(segments);
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const std::size_t lo = seg * kSegment;
    partials[seg] = detail::segment_fold(in, lo, std::min(n, lo + kSegment), op);
  }
  return detail::fold_ascending(std::span<const T>(partials), op);
}

/// What device_transform_reduce computes, serially.
template <class T, class Op, class F>
  requires ReductionOpFor<Op, T>
[[nodiscard]] T transform_reduce_oracle(std::size_t n, Op op, F&& f) {
  if (n == 0) return op.identity();
  const std::size_t segments = detail::ceil_div(n, kSegment);
  std::vector<T> partials(segments);
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const std::size_t lo = seg * kSegment;
    const std::size_t hi = std::min(n, lo + kSegment);
    T acc = op.identity();
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, f(i));
    partials[seg] = acc;
  }
  return detail::fold_ascending(std::span<const T>(partials), op);
}

/// What device_max_abs_diff computes, serially.
template <class T>
[[nodiscard]] T max_abs_diff_oracle(std::span<const T> a, std::span<const T> b) {
  PB_EXPECTS(a.size() == b.size());
  const std::size_t n = a.size();
  const MaxOp<T> op;
  if (n == 0) return op.identity();
  const std::size_t segments = detail::ceil_div(n, kSegment);
  std::vector<T> partials(segments);
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const std::size_t lo = seg * kSegment;
    const std::size_t hi = std::min(n, lo + kSegment);
    partials[seg] = simrt::simd_max_abs_diff(a.data() + lo, b.data() + lo, hi - lo);
  }
  return detail::fold_ascending(std::span<const T>(partials), op);
}

namespace detail {

template <bool Inclusive, class T, class Op>
void scan_oracle(std::span<const T> in, std::span<T> out, Op op) {
  PB_EXPECTS(out.size() == in.size());
  const std::size_t n = in.size();
  if (n == 0) return;
  const std::size_t segments = ceil_div(n, kSegment);
  std::vector<T> totals(segments);
  for (std::size_t seg = 0; seg < segments; ++seg) {
    const std::size_t lo = seg * kSegment;
    const std::size_t hi = std::min(n, lo + kSegment);
    T acc = op.identity();
    for (std::size_t i = lo; i < hi; ++i) {
      const T x = in[i];
      if constexpr (Inclusive) {
        acc = op(acc, x);
        out[i] = acc;
      } else {
        out[i] = acc;
        acc = op(acc, x);
      }
    }
    totals[seg] = acc;
  }
  const std::vector<T> offsets = segment_offsets(std::span<const T>(totals), op);
  for (std::size_t seg = 1; seg < segments; ++seg) {
    const std::size_t lo = seg * kSegment;
    const std::size_t hi = std::min(n, lo + kSegment);
    const T offset = offsets[seg];
    std::size_t i = lo;
    if constexpr (!Inclusive) {
      out[i] = offset;
      ++i;
    }
    for (; i < hi; ++i) out[i] = op(offset, out[i]);
  }
}

}  // namespace detail

/// What device_exclusive_scan computes, serially.  For exact ops this
/// equals the plain sequential exclusive scan.
template <class T, class Op>
  requires ReductionOpFor<Op, T>
void exclusive_scan_oracle(std::span<const T> in, std::span<T> out, Op op) {
  detail::scan_oracle<false>(in, out, op);
}

/// What device_inclusive_scan computes, serially.
template <class T, class Op>
  requires ReductionOpFor<Op, T>
void inclusive_scan_oracle(std::span<const T> in, std::span<T> out, Op op) {
  detail::scan_oracle<true>(in, out, op);
}

/// Stable sort of keys by the radix bijection's total order — what both
/// device_radix_sort_keys and the merge fallback (under the same order)
/// must produce bit-for-bit.
template <class K>
  requires RadixSortable<K>
void sort_keys_oracle(std::span<K> keys) {
  using TR = RadixTraits<K>;
  std::stable_sort(keys.begin(), keys.end(), [](const K& a, const K& b) {
    return TR::to_bits(a) < TR::to_bits(b);
  });
}

/// Stable sort of (key, value) pairs by key.  Equal keys keep input
/// order.
template <class K, class V>
  requires RadixSortable<K>
void sort_pairs_oracle(std::span<K> keys, std::span<V> values) {
  using TR = RadixTraits<K>;
  PB_EXPECTS(values.size() == keys.size());
  const std::size_t n = keys.size();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
    return TR::to_bits(keys[a]) < TR::to_bits(keys[b]);
  });
  std::vector<K> k2(n);
  std::vector<V> v2(n);
  for (std::size_t i = 0; i < n; ++i) {
    k2[i] = keys[perm[i]];
    v2[i] = values[perm[i]];
  }
  std::copy(k2.begin(), k2.end(), keys.begin());
  std::copy(v2.begin(), v2.end(), values.begin());
}

/// What device_histogram computes, serially.
template <class T, class Count, class BinOf>
void histogram_oracle(std::span<const T> in, std::span<Count> hist, BinOf bin_of) {
  std::fill(hist.begin(), hist.end(), Count{0});
  for (const T& x : in) {
    const std::size_t bin = static_cast<std::size_t>(bin_of(x));
    PB_EXPECTS(bin < hist.size());
    ++hist[bin];
  }
}

}  // namespace portabench::primitives
