// Device-wide exclusive/inclusive scan with a fixed combination order.
//
// The classic two-pass grid scan (docs/PRIMITIVES.md):
//   pass 1  — lanes own whole kSegment-element slices and scan them
//             sequentially (left fold), writing local prefixes into
//             `out` and the slice total into a totals array
//   pass 2  — the totals are exclusive-scanned on the host in ascending
//             slice order (tiny: n / kSegment elements)
//   pass 3  — a fixup launch combines each slice's offset on the LEFT of
//             its local prefixes (slice 0 is skipped: no combine with
//             the identity ever happens on the live path)
// The association is a pure function of (T, op, n, kSegment); `chunk`
// and `lanes` only remap slices onto blocks.  Non-commutative ops are
// supported because the offset — the fold of every EARLIER element —
// always enters on the left.  The serial oracle (serial.hpp) replays the
// identical association, so results are bitwise-identical under every
// schedule, including the sanitizer's permuted seeds.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "gpusim/launch.hpp"
#include "op.hpp"
#include "reduce.hpp"
#include "tunables.hpp"

namespace portabench::primitives {

/// Schedule-only knobs (searchable; see the `primitives-scan` space).
struct ScanConfig {
  std::size_t lanes = kDefaultLanes;
  std::size_t chunk = kDefaultScanChunk;  ///< elements per block tile
};

namespace detail {

/// offsets[s] = op-fold of totals[0..s), ascending, with offsets[1] set
/// directly to totals[0] so no live value is ever combined with the
/// identity.  Shared by the device path and the serial oracle.
template <class T, class Op>
[[nodiscard]] std::vector<T> segment_offsets(std::span<const T> totals, Op op) {
  std::vector<T> off(totals.size());
  if (off.empty()) return off;
  off[0] = op.identity();
  if (off.size() > 1) off[1] = totals[0];
  for (std::size_t s = 2; s < off.size(); ++s) off[s] = op(off[s - 1], totals[s - 1]);
  return off;
}

/// Run `body(seg, lo, hi)` for every segment, segments dealt to blocks in
/// chunk-sized tiles and lane-strided within a tile.
template <class Body>
void for_scan_segments(gpusim::DeviceContext& ctx, std::size_t n, std::size_t segments,
                       const ScanConfig& cfg, Body&& body) {
  const std::size_t lanes = std::max<std::size_t>(1, cfg.lanes);
  const std::size_t segs_per_block =
      std::max<std::size_t>(1, cfg.chunk / kSegment);
  const std::size_t blocks = ceil_div(segments, segs_per_block);
  gpusim::launch(ctx, {blocks, 1, 1}, {lanes, 1, 1}, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t base = tc.block_idx.x * segs_per_block;
    for (std::size_t s = tc.thread_idx.x; s < segs_per_block; s += lanes) {
      const std::size_t seg = base + s;
      if (seg >= segments) break;
      const std::size_t lo = seg * kSegment;
      body(seg, lo, std::min(n, lo + kSegment));
    }
  });
}

template <bool Inclusive, class T, class Op>
void device_scan(gpusim::DeviceContext& ctx, std::span<const T> in, std::span<T> out,
                 Op op, const ScanConfig& cfg) {
  PB_EXPECTS(out.size() == in.size());
  const std::size_t n = in.size();
  if (n == 0) return;
  const std::size_t segments = ceil_div(n, kSegment);
  std::vector<T> totals(segments);

  for_scan_segments(ctx, n, segments, cfg,
                    [&](std::size_t seg, std::size_t lo, std::size_t hi) {
                      T acc = op.identity();
                      for (std::size_t i = lo; i < hi; ++i) {
                        const T x = in[i];  // read first: in-place scans are fine
                        if constexpr (Inclusive) {
                          acc = op(acc, x);
                          out[i] = acc;
                        } else {
                          out[i] = acc;
                          acc = op(acc, x);
                        }
                      }
                      totals[seg] = acc;
                    });

  const std::vector<T> offsets = segment_offsets(std::span<const T>(totals), op);

  for_scan_segments(ctx, n, segments, cfg,
                    [&](std::size_t seg, std::size_t lo, std::size_t hi) {
                      if (seg == 0) return;
                      const T offset = offsets[seg];
                      std::size_t i = lo;
                      if constexpr (!Inclusive) {
                        // The slice-first exclusive prefix IS the offset —
                        // assigning it directly keeps the no-identity-combine
                        // property on the live path.
                        out[i] = offset;
                        ++i;
                      }
                      for (; i < hi; ++i) out[i] = op(offset, out[i]);
                    });
}

}  // namespace detail

/// out[i] = op-fold of in[0..i).  out[0] is the identity.  In-place
/// (out == in) is supported.
template <class T, class Op>
  requires ReductionOpFor<Op, T>
void device_exclusive_scan(gpusim::DeviceContext& ctx, std::span<const T> in,
                           std::span<T> out, Op op, const ScanConfig& cfg = {}) {
  detail::device_scan<false>(ctx, in, out, op, cfg);
}

/// out[i] = op-fold of in[0..i].  In-place is supported.
template <class T, class Op>
  requires ReductionOpFor<Op, T>
void device_inclusive_scan(gpusim::DeviceContext& ctx, std::span<const T> in,
                           std::span<T> out, Op op, const ScanConfig& cfg = {}) {
  detail::device_scan<true>(ctx, in, out, op, cfg);
}

}  // namespace portabench::primitives
