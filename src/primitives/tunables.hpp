// Schedule constants for the device-wide primitives.
//
// kSegment is the ONE order-affecting constant: every floating-point
// device-wide reduction/scan folds within kSegment-element slices and
// combines slice partials in ascending slice order, so the result is a
// pure function of (T, op, n, kSegment) — never of block size, grain, or
// thread count.  It is registered FROZEN in the tuning registry (the
// same contract as the GEMM kc panel depth); changing it changes
// floating-point bits and invalidates every golden value.
//
// Everything else here is a schedule-only default: it remaps which
// worker computes which slice and is searchable through the
// `primitives-scan` / `primitives-radix` spaces (docs/TUNING.md).
#pragma once

#include <cstddef>

namespace portabench::primitives {

/// ORDER-AFFECTING (frozen): elements per association segment.
inline constexpr std::size_t kSegment = 1024;

/// Lanes per block for reduce/scan/histogram launches (schedule-only).
inline constexpr std::size_t kDefaultLanes = 128;

/// Segments each lane folds in the reduce partials pass (schedule-only).
inline constexpr std::size_t kDefaultItemsPerLane = 4;

/// Elements per block tile in the grid scan (schedule-only; rounded to a
/// whole number of segments).
inline constexpr std::size_t kDefaultScanChunk = 4096;

/// Elements per block tile in the radix/merge sorts (schedule-only).
inline constexpr std::size_t kDefaultSortChunk = 8192;

/// Lanes per block in the sort count/scatter passes (schedule-only; the
/// privatized shared-memory histograms clamp this against the device's
/// shared-memory-per-block limit).
inline constexpr std::size_t kDefaultSortLanes = 32;

/// Digit width of the LSD radix sort in bits (schedule-only for the
/// integer key path: any width yields the identical sorted output).
inline constexpr unsigned kDefaultRadixBits = 4;

}  // namespace portabench::primitives
