// Device-wide hierarchical reduction over arbitrary types and operators.
//
// Structure (docs/PRIMITIVES.md):
//   partials  — the input is cut into kSegment-element slices; each lane
//               folds whole slices sequentially (fp sum/max slices route
//               through the pinned-width simrt::simd_* kernels, so the
//               SIMD layer's fixed association IS the slice fold)
//   combine   — exact ops (Op::kExact) run a second hierarchical
//               block→grid pass built on the warp-shuffle reduction
//               trees, then a host fold of the block totals in ascending
//               order: any tree equals the left fold bit-for-bit.
//               Non-exact ops (fp sum/prod) fold the slice partials on
//               the host in ascending slice order — the fixed two-level
//               association the serial oracle replays.
// Either way the result is a pure function of (T, op, n, kSegment):
// lanes, grain, block count, and the sanitizer's permuted schedules never
// touch the bits.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "gpusim/block_primitives.hpp"
#include "gpusim/launch.hpp"
#include "op.hpp"
#include "simrt/simd_reduce.hpp"
#include "tunables.hpp"

namespace portabench::primitives {

/// Schedule-only knobs (searchable; see the `primitives-scan` space).
struct ReduceConfig {
  std::size_t lanes = kDefaultLanes;
  std::size_t items_per_lane = kDefaultItemsPerLane;  ///< segments per lane
};

namespace detail {

[[nodiscard]] constexpr std::size_t ceil_div(std::size_t a, std::size_t b) noexcept {
  return (a + b - 1) / b;
}

/// Fold one [lo, hi) slice of `in` with `op` (identity-seeded left
/// fold).  Floating-point sum/max slices route through the pinned-width
/// simrt SIMD kernels — a pure function of (T, slice), shared verbatim by
/// the device path and the serial oracle, so both see identical bits.
template <class T, class Op>
[[nodiscard]] T segment_fold(std::span<const T> in, std::size_t lo, std::size_t hi,
                             Op op) {
  if (lo >= hi) return op.identity();
  if constexpr (std::is_same_v<Op, SumOp<T>> && std::is_floating_point_v<T>) {
    return simrt::simd_sum(in.data() + lo, hi - lo);
  } else if constexpr (std::is_same_v<Op, MaxOp<T>> && std::is_floating_point_v<T>) {
    return simrt::simd_max(in.data() + lo, hi - lo);
  } else {
    T acc = op.identity();
    for (std::size_t i = lo; i < hi; ++i) acc = op(acc, in[i]);
    return acc;
  }
}

/// Ascending left fold of a partials array (the grid-level combine both
/// the non-exact device path and the oracle use).
template <class T, class Op>
[[nodiscard]] T fold_ascending(std::span<const T> partials, Op op) {
  T acc = partials[0];
  for (std::size_t i = 1; i < partials.size(); ++i) acc = op(acc, partials[i]);
  return acc;
}

/// Hierarchical combine of a partials array for exact ops: one
/// cooperative launch of warp-tree block reductions, then an ascending
/// host fold of the block totals.  Exactness makes this bitwise-equal to
/// fold_ascending for any block size.
template <class T, class Op>
[[nodiscard]] T combine_exact(gpusim::DeviceContext& ctx, std::span<const T> partials,
                              Op op, std::size_t lanes) {
  const std::size_t m = partials.size();
  if (m == 1) return partials[0];
  const std::size_t blocks = ceil_div(m, lanes);
  std::vector<T> block_totals(blocks);
  gpusim::launch_blocks(
      ctx, {blocks, 1, 1}, {lanes, 1, 1}, lanes * sizeof(T),
      [&](gpusim::BlockCtx& bc) {
        auto scratch = bc.template shared<T>(lanes);
        const std::size_t base = bc.block_idx().x * lanes;
        const T total =
            gpusim::block_reduce(bc, scratch, op, [&](const gpusim::ThreadCtx& tc) {
              const std::size_t i = base + tc.thread_idx.x;
              return i < m ? partials[i] : op.identity();
            });
        bc.for_lanes([&](const gpusim::ThreadCtx& tc) {
          if (tc.thread_idx.x == 0) block_totals[bc.block_idx().x] = total;
        });
      });
  return fold_ascending(std::span<const T>(block_totals), op);
}

/// Compute one partial per segment: lane-strided segment ownership inside
/// items_per_lane * lanes sized block tiles.  `fold(seg, lo, hi)` must
/// write the segment's partial (each segment is written exactly once).
template <class Fold>
void for_segments(gpusim::DeviceContext& ctx, std::size_t n, std::size_t segments,
                  std::size_t lanes, std::size_t grain, Fold&& fold) {
  const std::size_t per_block = lanes * grain;
  const std::size_t blocks = ceil_div(segments, per_block);
  gpusim::launch(ctx, {blocks, 1, 1}, {lanes, 1, 1}, [&](const gpusim::ThreadCtx& tc) {
    const std::size_t base = tc.block_idx.x * per_block;
    for (std::size_t k = 0; k < grain; ++k) {
      const std::size_t seg = base + k * lanes + tc.thread_idx.x;
      if (seg >= segments) break;
      const std::size_t lo = seg * kSegment;
      fold(seg, lo, std::min(n, lo + kSegment));
    }
  });
}

}  // namespace detail

/// Reduce `in` with `op`.  Returns op.identity() for an empty input.
template <class T, class Op>
  requires ReductionOpFor<Op, T>
[[nodiscard]] T device_reduce(gpusim::DeviceContext& ctx, std::span<const T> in, Op op,
                              const ReduceConfig& cfg = {}) {
  const std::size_t n = in.size();
  if (n == 0) return op.identity();
  const std::size_t lanes = std::max<std::size_t>(1, cfg.lanes);
  const std::size_t grain = std::max<std::size_t>(1, cfg.items_per_lane);
  const std::size_t segments = detail::ceil_div(n, kSegment);

  std::vector<T> partials(segments);
  detail::for_segments(ctx, n, segments, lanes, grain,
                       [&](std::size_t seg, std::size_t lo, std::size_t hi) {
                         partials[seg] = detail::segment_fold(in, lo, hi, op);
                       });

  if constexpr (Op::kExact) {
    return detail::combine_exact(ctx, std::span<const T>(partials), op, lanes);
  } else {
    return detail::fold_ascending(std::span<const T>(partials), op);
  }
}

/// Reduce f(0), ..., f(n-1) with `op` without materializing the values.
/// Same segment association as device_reduce.
template <class T, class Op, class F>
  requires ReductionOpFor<Op, T>
[[nodiscard]] T device_transform_reduce(gpusim::DeviceContext& ctx, std::size_t n, Op op,
                                        F&& f, const ReduceConfig& cfg = {}) {
  if (n == 0) return op.identity();
  const std::size_t lanes = std::max<std::size_t>(1, cfg.lanes);
  const std::size_t grain = std::max<std::size_t>(1, cfg.items_per_lane);
  const std::size_t segments = detail::ceil_div(n, kSegment);

  std::vector<T> partials(segments);
  detail::for_segments(ctx, n, segments, lanes, grain,
                       [&](std::size_t seg, std::size_t lo, std::size_t hi) {
                         T acc = op.identity();
                         for (std::size_t i = lo; i < hi; ++i) acc = op(acc, f(i));
                         partials[seg] = acc;
                       });

  if constexpr (Op::kExact) {
    return detail::combine_exact(ctx, std::span<const T>(partials), op, lanes);
  } else {
    return detail::fold_ascending(std::span<const T>(partials), op);
  }
}

/// max |a[i] - b[i]| — the stencil residual shape.  Segment partials run
/// through simrt::simd_max_abs_diff (the same pinned-width kernel the
/// host residual path uses); max is exact, so the hierarchical combine is
/// value-identical to the host fold.
template <class T>
  requires std::is_floating_point_v<T>
[[nodiscard]] T device_max_abs_diff(gpusim::DeviceContext& ctx, std::span<const T> a,
                                    std::span<const T> b, const ReduceConfig& cfg = {}) {
  PB_EXPECTS(a.size() == b.size());
  const std::size_t n = a.size();
  const MaxOp<T> op;
  if (n == 0) return op.identity();
  const std::size_t lanes = std::max<std::size_t>(1, cfg.lanes);
  const std::size_t grain = std::max<std::size_t>(1, cfg.items_per_lane);
  const std::size_t segments = detail::ceil_div(n, kSegment);

  std::vector<T> partials(segments);
  detail::for_segments(ctx, n, segments, lanes, grain,
                       [&](std::size_t seg, std::size_t lo, std::size_t hi) {
                         partials[seg] =
                             simrt::simd_max_abs_diff(a.data() + lo, b.data() + lo, hi - lo);
                       });
  return detail::combine_exact(ctx, std::span<const T>(partials), op, lanes);
}

}  // namespace portabench::primitives
