// The identity-carrying reduction-op vocabulary for the device-wide
// primitives (the arbitrary-type/arbitrary-operator surface of Pilliat's
// portable-primitives question, PAPERS.md).
//
// An op is a small value type with
//   T operator()(T, T) const   — combiner; callers always put the
//                                EARLIER element on the LEFT, so
//                                non-commutative ops and tie-breaks
//                                resolve in element order
//   T identity() const         — op(identity, x) == x (bitwise for every
//                                op below except fp sum/prod, which only
//                                promise it for finite x; the device
//                                paths never combine a live value with
//                                the identity on the fp path)
//   static constexpr bool kExact
//       — true when the op is exactly associative over order-preserving
//         groupings (integers mod 2^w, bit ops, min/max incl. the
//         NaN-propagating forms).  Exact ops take the hierarchical
//         warp/block tree combine (any tree equals the left fold
//         bit-for-bit); non-exact ops (fp sum/prod) take the pinned
//         segment-ordered combine (docs/PRIMITIVES.md).
#pragma once

#include <cmath>
#include <concepts>
#include <limits>
#include <type_traits>

namespace portabench::primitives {

template <class Op, class T>
concept ReductionOpFor = requires(const Op op, const T a, const T b) {
  { op(a, b) } -> std::convertible_to<T>;
  { op.identity() } -> std::convertible_to<T>;
  requires std::same_as<std::remove_cv_t<decltype(Op::kExact)>, const bool> ||
               std::same_as<std::remove_cv_t<decltype(Op::kExact)>, bool>;
};

namespace detail {

template <class T>
[[nodiscard]] constexpr T lowest_value() noexcept {
  if constexpr (std::numeric_limits<T>::has_infinity) {
    return -std::numeric_limits<T>::infinity();
  } else {
    return std::numeric_limits<T>::lowest();
  }
}

template <class T>
[[nodiscard]] constexpr T highest_value() noexcept {
  if constexpr (std::numeric_limits<T>::has_infinity) {
    return std::numeric_limits<T>::infinity();
  } else {
    return std::numeric_limits<T>::max();
  }
}

}  // namespace detail

template <class T>
struct SumOp {
  static constexpr bool kExact = std::is_integral_v<T>;
  [[nodiscard]] T operator()(const T& a, const T& b) const { return a + b; }
  [[nodiscard]] T identity() const { return T{}; }
};

template <class T>
struct ProdOp {
  static constexpr bool kExact = std::is_integral_v<T>;
  [[nodiscard]] T operator()(const T& a, const T& b) const { return a * b; }
  [[nodiscard]] T identity() const { return T{1}; }
};

/// Minimum, leftmost-wins on ties (compares-equal ±0 keeps the earlier
/// element).  NaN inputs are outside the contract — use NanMinOp.
template <class T>
struct MinOp {
  static constexpr bool kExact = true;
  [[nodiscard]] T operator()(const T& a, const T& b) const { return b < a ? b : a; }
  [[nodiscard]] T identity() const { return detail::highest_value<T>(); }
};

template <class T>
struct MaxOp {
  static constexpr bool kExact = true;
  [[nodiscard]] T operator()(const T& a, const T& b) const { return a < b ? b : a; }
  [[nodiscard]] T identity() const { return detail::lowest_value<T>(); }
};

/// NaN-propagating min/max: any NaN input poisons the result, and the
/// LEFTMOST NaN's bit pattern is the one that survives under every
/// order-preserving grouping — which is what keeps these exactly
/// associative (and therefore kExact) even on NaN-bearing data.
template <class T>
struct NanMinOp {
  static_assert(std::is_floating_point_v<T>);
  static constexpr bool kExact = true;
  [[nodiscard]] T operator()(const T& a, const T& b) const {
    if (std::isnan(a)) return a;
    if (std::isnan(b)) return b;
    return b < a ? b : a;
  }
  [[nodiscard]] T identity() const { return detail::highest_value<T>(); }
};

template <class T>
struct NanMaxOp {
  static_assert(std::is_floating_point_v<T>);
  static constexpr bool kExact = true;
  [[nodiscard]] T operator()(const T& a, const T& b) const {
    if (std::isnan(a)) return a;
    if (std::isnan(b)) return b;
    return a < b ? b : a;
  }
  [[nodiscard]] T identity() const { return detail::lowest_value<T>(); }
};

template <class T>
struct BitAndOp {
  static_assert(std::is_integral_v<T>);
  static constexpr bool kExact = true;
  [[nodiscard]] T operator()(const T& a, const T& b) const { return a & b; }
  [[nodiscard]] T identity() const { return static_cast<T>(~T{}); }
};

template <class T>
struct BitOrOp {
  static_assert(std::is_integral_v<T>);
  static constexpr bool kExact = true;
  [[nodiscard]] T operator()(const T& a, const T& b) const { return a | b; }
  [[nodiscard]] T identity() const { return T{}; }
};

template <class T>
struct BitXorOp {
  static_assert(std::is_integral_v<T>);
  static constexpr bool kExact = true;
  [[nodiscard]] T operator()(const T& a, const T& b) const { return a ^ b; }
  [[nodiscard]] T identity() const { return T{}; }
};

/// Affine map x -> mul*x + add as a scannable element: composition is
/// associative but NON-commutative, the canonical stress test for prefix
/// structures (linear recurrences solve as an affine scan).
template <class T>
struct Affine {
  T mul{1};
  T add{0};
  [[nodiscard]] T operator()(const T& x) const { return mul * x + add; }
  [[nodiscard]] bool operator==(const Affine&) const = default;
};

/// op(a, b) = "apply a, then b": b(a(x)).
template <class T>
struct AffineComposeOp {
  static constexpr bool kExact = std::is_integral_v<T>;
  [[nodiscard]] Affine<T> operator()(const Affine<T>& a, const Affine<T>& b) const {
    return {static_cast<T>(a.mul * b.mul), static_cast<T>(a.add * b.mul + b.add)};
  }
  [[nodiscard]] Affine<T> identity() const { return {}; }
};

}  // namespace portabench::primitives
