// portatune: tune, inspect, and verify the persisted tuning cache.
//
//   portatune tune   [--spaces=a,b] [--cache=F] [--budget-ms=N] [--n=N]
//   portatune show   [--cache=F]
//   portatune verify [--cache=F] [--reps=N]
//
// `tune` searches each requested registry space with the same harness
// the benches use (default measured first, IQR noise floor, hill-climb
// on large spaces) and merges the winners into the cache keyed by this
// machine's fingerprint.  `show` prints the cache against the registry.
// `verify` re-measures every local-fingerprint entry against the space
// default and fails if a cached winner has gone stale (slower than the
// default beyond the re-measured noise floor).
#include <algorithm>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/precision.hpp"
#include "serve/job.hpp"
#include "tune/cache.hpp"
#include "tune/fingerprint.hpp"
#include "tune/model_objectives.hpp"
#include "tune/objectives.hpp"
#include "tune/params.hpp"
#include "tune/search.hpp"

namespace {

using namespace portabench;
using namespace portabench::tune;

constexpr const char* kDefaultCachePath = "tune_cache.json";

struct Workload {
  std::string space;
  std::string precision = "-";   // cache key ("FP64"... or "-")
  std::uint32_t size_class = 0;
  Objective objective;
  bool deterministic = false;    // modeled objective: exact, zero floor
};

/// Every tunable workload this host can run, at GEMM edge `n`.
std::vector<Workload> all_workloads(std::size_t n) {
  std::vector<Workload> out;
  const std::uint32_t sc = serve::size_class(static_cast<std::uint32_t>(n));
  for (const Precision p : {Precision::kDouble, Precision::kSingle, Precision::kHalfIn}) {
    out.push_back({"gemm-tile", std::string(name(p)), sc,
                   gemm_tile_objective(p, n), false});
    // Same kernel, sharded regime: the per-GCD space re-measures the
    // tile objective so multi-device dispatch can diverge from the
    // single-device winner when the node shape rewards it.
    out.push_back({"gemm-tile-gcd", std::string(name(p)), sc,
                   gemm_tile_objective(p, n), false});
  }
  out.push_back({"dispatch", "-", 0, dispatch_objective(), false});
  out.push_back({"launch", "-", 0, launch_objective(), false});
  out.push_back({"serve-batch", "-", 0, serve_batch_objective(), false});
  out.push_back({"primitives-radix", "-", 0, primitives_radix_objective(), false});
  out.push_back({"primitives-scan", "-", 0, primitives_scan_objective(), false});
  out.push_back({"gpu-unroll", "-", 0,
                 [](const Config& c) {
                   return modeled_unroll_cost(config_value(
                       *find_space("gpu-unroll"), c, "unroll"));
                 },
                 true});
  out.push_back({"gpu-block", "-", 0,
                 [](const Config& c) {
                   return modeled_block_cost(config_value(
                       *find_space("gpu-block"), c, "block_edge"));
                 },
                 true});
  return out;
}

bool wanted(const std::string& space, const std::vector<std::string>& filter) {
  if (filter.empty()) return true;
  for (const std::string& f : filter) {
    if (f == space) return true;
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t lo = 0;
  while (lo <= text.size()) {
    const std::size_t hi = text.find(',', lo);
    const std::string tok = text.substr(lo, hi == std::string::npos ? hi : hi - lo);
    if (!tok.empty()) out.push_back(tok);
    if (hi == std::string::npos) break;
    lo = hi + 1;
  }
  return out;
}

std::string config_string(const Config& cfg) {
  std::string out;
  for (const auto& [k, v] : cfg) {
    if (!out.empty()) out += " ";
    out += k + "=" + std::to_string(v);
  }
  return out;
}

void warn_if_bad_load(const TuningCache& cache, const CacheLoadResult& r) {
  (void)cache;
  if (r.status != CacheLoadStatus::kOk && r.status != CacheLoadStatus::kMissing) {
    std::fprintf(stderr, "portatune: %s\n", r.warning.c_str());
  }
}

int cmd_tune(const CliParser& cli) {
  const std::string path = cli.get("cache");
  const std::vector<std::string> filter = split_csv(cli.get("spaces"));
  const auto n = static_cast<std::size_t>(cli.get_int("n"));

  TuningCache cache;
  warn_if_bad_load(cache, cache.load(path));

  const MachineFingerprint fp = local_fingerprint();
  const std::uint64_t fp_hash = fingerprint_hash(fp);
  std::printf("machine: %s (0x%016llx)\n", fingerprint_key(fp).c_str(),
              static_cast<unsigned long long>(fp_hash));

  SearchOptions opt;
  opt.budget_ms = cli.get_double("budget-ms");
  opt.reps = static_cast<int>(cli.get_int("reps"));
  if (cli.has("quick")) {
    opt.reps = 2;
    opt.budget_ms = std::min(opt.budget_ms, 500.0);
  }

  int tuned = 0;
  for (Workload& w : all_workloads(n)) {
    if (!wanted(w.space, filter)) continue;
    const SpaceDesc* space = find_space(w.space);
    if (space == nullptr) continue;
    SearchOptions wopt = opt;
    wopt.deterministic = w.deterministic;
    const TuneResult r = tune_space(*space, w.objective, wopt);

    CacheEntry e;
    e.space = w.space;
    e.precision = w.precision;
    e.size_class = w.size_class;
    e.fingerprint = fp_hash;
    e.machine = fingerprint_key(fp);
    e.config = r.best;
    e.tuned_ms = r.best_ms;
    e.default_ms = r.default_ms;
    cache.put(std::move(e));
    ++tuned;

    const double speedup = r.best_ms > 0.0 ? r.default_ms / r.best_ms : 1.0;
    std::printf("%-11s %-5s sc=%-2u  %-40s %8.3f ms (default %8.3f, x%.2f%s%s)\n",
                w.space.c_str(), w.precision.c_str(), w.size_class,
                config_string(r.best).c_str(), r.best_ms, r.default_ms, speedup,
                r.improved ? ", improved" : "",
                r.budget_exhausted ? ", budget hit" : "");
  }

  if (tuned == 0) {
    std::fprintf(stderr, "portatune: no spaces matched --spaces filter\n");
    return 2;
  }
  if (!cache.save(path)) {
    std::fprintf(stderr, "portatune: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu entr%s to %s\n", cache.size(), cache.size() == 1 ? "y" : "ies",
              path.c_str());
  return 0;
}

int cmd_show(const CliParser& cli) {
  const std::string path = cli.get("cache");
  TuningCache cache;
  const CacheLoadResult r = cache.load(path);
  warn_if_bad_load(cache, r);
  if (r.status == CacheLoadStatus::kMissing) {
    std::printf("%s: no cache (%s)\n", path.c_str(), cache_status_name(r.status));
    return 0;
  }

  const std::uint64_t local = fingerprint_hash(local_fingerprint());
  std::printf("%s: %zu entries (schema v%d); local machine 0x%016llx\n", path.c_str(),
              cache.size(), kCacheSchemaVersion,
              static_cast<unsigned long long>(local));
  for (const CacheEntry& e : cache.entries()) {
    std::printf("  %-11s %-5s sc=%-2u %s 0x%016llx  %-40s %8.3f ms (default %8.3f)\n",
                e.space.c_str(), e.precision.c_str(), e.size_class,
                e.fingerprint == local ? "*" : " ",
                static_cast<unsigned long long>(e.fingerprint),
                config_string(e.config).c_str(), e.tuned_ms, e.default_ms);
  }
  std::printf("(* = matches this machine; other fingerprints are ignored at dispatch)\n");
  return 0;
}

int cmd_verify(const CliParser& cli) {
  const std::string path = cli.get("cache");
  const auto n = static_cast<std::size_t>(cli.get_int("n"));
  const int reps = static_cast<int>(cli.get_int("reps"));

  TuningCache cache;
  const CacheLoadResult r = cache.load(path);
  warn_if_bad_load(cache, r);
  if (r.status != CacheLoadStatus::kOk) {
    std::fprintf(stderr, "portatune: nothing to verify (%s)\n",
                 cache_status_name(r.status));
    return r.status == CacheLoadStatus::kMissing ? 0 : 1;
  }

  const std::uint64_t local = fingerprint_hash(local_fingerprint());
  std::vector<Workload> workloads = all_workloads(n);
  int checked = 0;
  int stale = 0;
  for (const CacheEntry& e : cache.entries()) {
    if (e.fingerprint != local) continue;
    const SpaceDesc* space = find_space(e.space);
    if (space == nullptr) continue;
    Workload* w = nullptr;
    for (Workload& cand : workloads) {
      if (cand.space == e.space && cand.precision == e.precision) w = &cand;
    }
    if (w == nullptr) continue;

    const int eff_reps = w->deterministic ? 1 : reps;
    const Config defaults = default_config(*space);
    const Measurement dm =
        measure([&] { return w->objective(defaults); }, eff_reps, w->deterministic ? 0 : 1);
    const Measurement tm =
        measure([&] { return w->objective(e.config); }, eff_reps, w->deterministic ? 0 : 1);
    ++checked;
    const bool ok = tm.median_ms <= dm.median_ms + dm.noise_ms;
    if (!ok) ++stale;
    std::printf("%-11s %-5s  tuned %8.3f ms vs default %8.3f ms (floor %.3f)  %s\n",
                e.space.c_str(), e.precision.c_str(), tm.median_ms, dm.median_ms,
                dm.noise_ms, ok ? "ok" : "STALE");
  }
  std::printf("%d entr%s checked, %d stale\n", checked, checked == 1 ? "y" : "ies", stale);
  return stale == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd != "tune" && cmd != "show" && cmd != "verify") {
    std::fprintf(stderr,
                 "usage: portatune <tune|show|verify> [options]\n"
                 "  tune    search registry spaces, merge winners into the cache\n"
                 "  show    print the cache against the local fingerprint\n"
                 "  verify  re-measure local entries, fail on stale winners\n");
    return cmd.empty() ? 2 : (cmd == "--help" || cmd == "-h" ? 0 : 2);
  }

  CliParser cli;
  cli.option("cache", "tuning cache path", kDefaultCachePath)
      .option("spaces", "comma-separated registry spaces (default: all)", "")
      .option("budget-ms", "wall-clock budget per space", "2000")
      .option("reps", "samples per config (median taken)", "5")
      .option("n", "GEMM edge used for gemm-tile workloads", "320")
      .flag("quick", "cap reps/budget for smoke runs");
  try {
    cli.parse(argc - 1, argv + 1);
    if (cmd == "tune") return cmd_tune(cli);
    if (cmd == "show") return cmd_show(cli);
    return cmd_verify(cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "portatune: %s\n%s", e.what(),
                 cli.usage("portatune <tune|show|verify>").c_str());
    return 2;
  }
}
