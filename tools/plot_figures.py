#!/usr/bin/env python3
"""Plot the reproduced figures from export_figures_json output.

Usage:
    build/bench/export_figures_json > figures.json
    tools/plot_figures.py figures.json --out-dir plots/

Produces one PNG per figure panel (fig4_FP64.png, ...) shaped like the
paper's Figs. 4-7: GFLOPS vs matrix size, one line per programming model.
Requires matplotlib; falls back to a textual summary without it.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def text_summary(doc):
    for fig in doc["figures"]:
        print(f'{fig["id"]}: {fig["platform"]}')
        for panel in fig["panels"]:
            largest = panel["sizes"][-1]
            print(f'  {panel["precision"]} @ n={largest}:')
            for series in panel["series"]:
                print(f'    {series["model"]:<24} {series["gflops"][-1]:9.1f} GFLOP/s')
    print("\nTable III (Phi):")
    for row in doc["table3"]:
        print(f'  {row["family"]:<14} {row["precision"]}: Phi = {row["phi"]:.3f}')


def plot(doc, out_dir):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    os.makedirs(out_dir, exist_ok=True)
    markers = ["o", "s", "^", "d", "v", "x"]
    for fig in doc["figures"]:
        for panel in fig["panels"]:
            plt.figure(figsize=(6, 4))
            for i, series in enumerate(panel["series"]):
                plt.plot(
                    panel["sizes"],
                    series["gflops"],
                    marker=markers[i % len(markers)],
                    markersize=3,
                    label=series["model"],
                )
            plt.xlabel("matrix size n")
            plt.ylabel("GFLOP/s (modeled)")
            plt.title(f'{fig["platform"]} — {panel["precision"]}')
            plt.ylim(bottom=0)
            plt.legend(fontsize=8)
            plt.grid(alpha=0.3)
            path = os.path.join(out_dir, f'{fig["id"]}_{panel["precision"]}.png')
            plt.savefig(path, dpi=150, bbox_inches="tight")
            plt.close()
            print(f"wrote {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="output of build/bench/export_figures_json")
    parser.add_argument("--out-dir", default="plots", help="PNG output directory")
    args = parser.parse_args()

    doc = load(args.json_path)
    try:
        plot(doc, args.out_dir)
    except ImportError:
        print("matplotlib not available; textual summary instead:\n", file=sys.stderr)
        text_summary(doc)


if __name__ == "__main__":
    main()
