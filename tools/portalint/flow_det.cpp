// portaflow pass 3: interprocedural determinism taint (fl-det-taint).
//
// The token rules (det-rand, det-unordered) see a nondeterministic
// source only at the line that uses it.  This pass propagates taint
// (rand/srand, std::random_device, clock ::now(), time(), range-for
// over unordered containers) through the call graph and flags dispatch
// or kernel lambdas that call a transitively-tainted helper: results of
// such launches are not bitwise reproducible, which breaks the
// determinism contract the bench tiers compare against.
//
// Functions defined in the sanctioned rng module (src/common/rng) seed
// no taint — routing randomness through portabench::common streams is
// exactly the fix the det-* rules prescribe.
#include <set>
#include <string>

#include "flow.hpp"
#include "rules.hpp"

namespace portalint {

namespace {

std::string join_kinds(const std::set<std::string>& kinds) {
  std::string out;
  for (const std::string& k : kinds) {
    if (!out.empty()) out += ", ";
    out += k;
  }
  return out;
}

}  // namespace

void flow_det_taint(const FlowContext& ctx, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const FileUnit& u = ctx.unit(i);
    if (scope_rng_exempt(u)) continue;
    const FileIR& ir = ctx.ir(i);
    for (const LaunchIR& l : ir.launches) {
      // Serialized queue ops legitimately reach the wall clock: link
      // throttling spins on a Timer until the modeled seconds elapse,
      // which never feeds the computed data (the payload runs first and
      // the stream's modeled clock is the deterministic one).  Replay
      // determinism for streams is pinned by the gpusim replay tests.
      if (l.serialized) continue;
      std::set<std::string> reported;
      for (const CallIR& c : l.calls) {
        const FunctionSummary* g = ctx.graph.resolve(c.callee);
        if (g == nullptr || !g->tainted()) continue;
        if (!reported.insert(c.callee).second) continue;
        Finding f;
        f.rule = "fl-det-taint";
        f.family = "determinism";
        f.message = "parallel lambda (" + l.call + ") calls '" + c.callee +
                    "', which transitively reaches nondeterministic source(s): " +
                    join_kinds(g->taint) +
                    " — results are not bitwise reproducible; seed a "
                    "portabench::common rng stream or hoist the source out of "
                    "the kernel";
        f.unit = &u;
        f.line = c.line;
        f.excerpt = normalize_excerpt(u.line_text(c.line));
        RelatedSite site;
        site.unit = g->unit;
        site.line = g->taint_line != 0 ? g->taint_line : g->fn->line;
        site.note = g->taint_via.empty()
                        ? "nondeterministic source used in '" + c.callee + "'"
                        : "taint enters '" + c.callee + "' via call to '" +
                              g->taint_via + "'";
        f.related.push_back(std::move(site));
        out.push_back(std::move(f));
      }
    }
  }
}

}  // namespace portalint
