#include "lexer.hpp"

#include <array>
#include <cctype>

namespace portalint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first within each leading char.
constexpr std::array<std::string_view, 22> kMultiPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "##",
};

}  // namespace

LexOutput lex(std::string_view src) {
  LexOutput out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since last newline

  auto peek = [&](std::size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      std::size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      out.comments.push_back({line, line, std::string(src.substr(i + 2, j - i - 2))});
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back(
          {start_line, line, std::string(src.substr(i + 2, j - i - 2))});
      i = j + 1 < n ? j + 2 : n;
      continue;
    }

    // Preprocessor directive: '#' first on its line; fold continuations.
    if (c == '#' && at_line_start) {
      const int start_line = line;
      std::string text;
      std::size_t j = i + 1;
      bool hit_comment = false;
      for (;;) {
        while (j < n && src[j] != '\n') {
          // A trailing // comment is not part of the directive: leave it
          // for the comment lexer so suppressions on #include lines work.
          if (src[j] == '/' && j + 1 < n && src[j + 1] == '/') {
            hit_comment = true;
            break;
          }
          text += src[j];
          ++j;
        }
        if (hit_comment) break;
        if (!text.empty() && text.back() == '\\') {
          text.pop_back();
          text += ' ';
          if (j < n) {
            ++line;
            ++j;  // consume the newline, keep folding
            continue;
          }
        }
        break;
      }
      // Trim and collapse leading whitespace ("  pragma   once" -> "pragma once").
      std::string norm;
      bool in_ws = true;
      for (char ch : text) {
        if (std::isspace(static_cast<unsigned char>(ch))) {
          if (!in_ws) norm += ' ';
          in_ws = true;
        } else {
          norm += ch;
          in_ws = false;
        }
      }
      while (!norm.empty() && norm.back() == ' ') norm.pop_back();
      out.directives.push_back({start_line, norm});
      i = j;
      continue;
    }
    at_line_start = false;

    // Raw string literal: [prefix]R"delim( ... )delim".
    if ((c == 'R' || ((c == 'u' || c == 'U' || c == 'L') &&
                      (peek(1) == 'R' || (c == 'u' && peek(1) == '8' && peek(2) == 'R')))) &&
        src.substr(i).find('"') != std::string_view::npos) {
      std::size_t r = i;
      while (r < n && src[r] != 'R' && ident_char(src[r])) ++r;
      if (r < n && src[r] == 'R' && r + 1 < n && src[r + 1] == '"') {
        std::size_t j = r + 2;
        std::string delim;
        while (j < n && src[j] != '(') delim += src[j++];
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src.find(closer, j);
        const std::size_t stop = end == std::string_view::npos ? n : end + closer.size();
        const int start_line = line;
        for (std::size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') ++line;
        }
        out.tokens.push_back({Tok::kString, std::string(src.substr(i, stop - i)), start_line});
        i = stop;
        continue;
      }
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        ++j;
      }
      const std::size_t stop = j < n ? j + 1 : n;
      out.tokens.push_back({quote == '"' ? Tok::kString : Tok::kChar,
                            std::string(src.substr(i, stop - i)), start_line});
      i = stop;
      continue;
    }

    // Number (incl. hex, digit separators, suffixes, leading-dot floats).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' || src[j] == '\'' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
                         src[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({Tok::kNumber, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({Tok::kIdent, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Punctuator, longest match.
    std::string_view rest = src.substr(i);
    std::string_view matched;
    for (std::string_view p : kMultiPunct) {
      if (rest.starts_with(p)) {
        matched = p;
        break;
      }
    }
    if (!matched.empty()) {
      out.tokens.push_back({Tok::kPunct, std::string(matched), line});
      i += matched.size();
    } else {
      out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace portalint
