#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>

#include "analysis.hpp"
#include "ir.hpp"

namespace portalint {

namespace {

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == Tok::kPunct && tok.text == text;
}

bool is_ident(const Token& tok) { return tok.kind == Tok::kIdent; }

const std::set<std::string>& assign_ops() {
  static const std::set<std::string> kOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=", "++", "--",
  };
  return kOps;
}

const std::set<std::string>& atomic_member_ops() {
  static const std::set<std::string> kOps = {
      "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or", "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
      "test_and_set",
  };
  return kOps;
}

// --- path scopes -----------------------------------------------------------
//
// Tests are exempt from the concurrency-ordering and raw-primitive rules:
// test code legitimately uses seq_cst defaults for assertions and spawns
// raw threads to stress the runtimes.  Fixture files opt back into every
// rule regardless of location.  docs/LINT.md documents the scoping.

bool in_tests(const FileUnit& u) { return u.has_component("tests") && !u.is_fixture; }

bool in_runtime_dirs(const FileUnit& u) {
  return !u.is_fixture && (u.has_component("simrt") || u.has_component("gpusim"));
}

bool rng_exempt(const FileUnit& u) {
  return !u.is_fixture && u.rel.find("common/rng") != std::string::npos;
}

// tn-magic-tile exemptions: the tuning registry (src/tune/) is where
// schedule constants legitimately live, the simrt/gpusim tunables
// modules define the compiled-in defaults the registry pins, and tests
// freely pin schedules to make scenarios reproducible.
bool tn_exempt(const FileUnit& u) {
  if (u.is_fixture) return false;
  return u.has_component("tune") || u.rel.find("tunables") != std::string::npos ||
         in_tests(u);
}

Finding make(const FileUnit& u, int line, std::string rule, std::string family,
             std::string message) {
  Finding f;
  f.rule = std::move(rule);
  f.family = std::move(family);
  f.message = std::move(message);
  f.unit = &u;
  f.line = line;
  f.excerpt = normalize_excerpt(u.line_text(line));
  return f;
}

// --- lane-safety -----------------------------------------------------------

void rule_lane_safety(const FileUnit& u, std::vector<Finding>& out) {
  const auto& t = u.lex.tokens;
  const auto lambdas = find_dispatch_lambdas(t);
  if (lambdas.empty()) return;
  const auto atomics = atomic_var_names(t);
  const auto pointers = pointer_var_names(t);

  for (const LambdaInfo& l : lambdas) {
    std::set<std::string> locals = body_local_names(t, l.body_begin, l.body_end);
    locals.insert(l.params.begin(), l.params.end());
    std::set<std::string> ptr_reported;

    for (std::size_t j = l.body_begin + 1; j + 1 < l.body_end; ++j) {
      if (!is_ident(t[j])) {
        // Prefix increment/decrement of a captured scalar.
        if ((is_punct(t[j], "++") || is_punct(t[j], "--")) && is_ident(t[j + 1])) {
          const std::string& name = t[j + 1].text;
          if (!locals.count(name) && !atomics.count(name) && captures_by_ref(l, name) &&
              !(j > 0 && (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->")))) {
            out.push_back(make(u, t[j].line, "ls-capture-write", "lane-safety",
                               "parallel lambda (" + l.call + ") mutates by-reference " +
                                   "capture '" + name + "' non-atomically: every lane " +
                                   "races on it"));
          }
        }
        continue;
      }
      const std::string& name = t[j].text;
      const Token& prev = t[j - 1];
      const Token& next = t[j + 1];
      if (is_punct(prev, ".") || is_punct(prev, "->") || is_punct(prev, "::")) continue;
      const bool decl_site = is_ident(prev) || is_punct(prev, ">") || is_punct(prev, "*") ||
                             is_punct(prev, "&") || is_punct(prev, "&&");

      // ls-capture-write: plain write to a by-ref-captured non-local.
      if (next.kind == Tok::kPunct && assign_ops().count(next.text)) {
        if (decl_site || locals.count(name) || atomics.count(name)) continue;
        if (!captures_by_ref(l, name)) continue;
        out.push_back(make(u, t[j].line, "ls-capture-write", "lane-safety",
                           "parallel lambda (" + l.call + ") mutates by-reference " +
                               "capture '" + name + "' non-atomically: every lane races " +
                               "on it"));
        continue;
      }

      // ls-nonlane-store: indexed store where no index depends on a lane.
      if (is_punct(next, "(") || is_punct(next, "[")) {
        if (decl_site || locals.count(name)) continue;
        if (!captures_by_ref(l, name) && !captures_by_value(l, name)) continue;
        std::size_t k = j + 1;
        std::size_t groups = 0;
        std::set<std::string> index_idents;
        while (k < l.body_end) {
          if (is_punct(t[k], "(") || is_punct(t[k], "[")) {
            const std::size_t m = match_forward(t, k);
            if (m == kNpos || m >= l.body_end) break;
            for (std::size_t q = k + 1; q < m; ++q) {
              if (is_ident(t[q])) index_idents.insert(t[q].text);
            }
            ++groups;
            k = m + 1;
          } else if ((is_punct(t[k], ".") || is_punct(t[k], "->")) && k + 1 < l.body_end &&
                     is_ident(t[k + 1])) {
            k += 2;
          } else {
            break;
          }
        }
        if (groups >= 1 && k < l.body_end && t[k].kind == Tok::kPunct &&
            assign_ops().count(t[k].text)) {
          bool lane_indexed = false;
          for (const std::string& id : index_idents) {
            if (locals.count(id)) {
              lane_indexed = true;
              break;
            }
          }
          if (!lane_indexed) {
            out.push_back(make(u, t[j].line, "ls-nonlane-store", "lane-safety",
                               "store to captured '" + name + "' is indexed by no lane " +
                                   "or iteration variable: lanes collide on one element"));
          }
        }
        // fall through: the same identifier may also be a pointer capture
      }

      // ls-ptr-capture: by-value raw pointer inside a device kernel.
      if ((l.call == "launch" || l.call == "launch_blocks") && pointers.count(name) &&
          !locals.count(name) && captures_by_value(l, name) && !ptr_reported.count(name)) {
        ptr_reported.insert(name);
        out.push_back(make(u, t[j].line, "ls-ptr-capture", "lane-safety",
                           "device kernel captures raw pointer '" + name + "' by value; " +
                               "use a device view/buffer so the access is portable and " +
                               "checkable"));
      }
    }
  }
}

// --- concurrency: explicit memory orders -----------------------------------

struct MoSite {
  const FileUnit* unit;
  int line;
  bool acq;
  bool rel;
};

void scan_memory_orders(const FileUnit& u, bool check_explicit,
                        std::map<std::string, std::vector<MoSite>>& per_var,
                        std::vector<Finding>& out) {
  const auto& t = u.lex.tokens;
  const auto atomics = atomic_var_names(t);

  for (std::size_t j = 1; j + 1 < t.size(); ++j) {
    // Named member operations: x.load(...), slot.go.store(...), ...
    if (is_ident(t[j]) && atomic_member_ops().count(t[j].text) &&
        (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->")) && is_punct(t[j + 1], "(")) {
      const std::size_t close = match_forward(t, j + 1);
      if (close == kNpos) continue;
      // Variable the operation applies to: identifier before the '.'.
      std::string var;
      if (j >= 2 && is_ident(t[j - 2])) var = t[j - 2].text;

      std::vector<std::string> orders;
      for (std::size_t q = j + 2; q < close; ++q) {
        if (!is_ident(t[q])) continue;
        const std::string& s = t[q].text;
        if (s.rfind("memory_order_", 0) == 0) {
          orders.push_back(s.substr(13));
        } else if (s == "memory_order" && q + 2 < close && is_punct(t[q + 1], "::") &&
                   is_ident(t[q + 2])) {
          orders.push_back(t[q + 2].text);
        }
      }
      // "load"/"store" are also the member names of non-atomic value
      // types (simrt::simd, views).  Count them as atomic only with
      // evidence: an explicit memory_order argument, or a receiver
      // declared std::atomic in this TU.  The other member ops
      // (fetch_add, exchange, ...) are unambiguous.
      if ((t[j].text == "load" || t[j].text == "store") && orders.empty() &&
          !atomics.count(var)) {
        continue;
      }
      if (check_explicit && orders.empty()) {
        out.push_back(make(u, t[j].line, "mo-explicit", "concurrency",
                           "atomic " + t[j].text + "() without an explicit memory_order " +
                               "(implicit seq_cst): state the ordering the algorithm needs"));
      }
      const std::string& op = t[j].text;
      const bool is_load = op == "load";
      const bool is_store = op == "store";
      bool acq = false;
      bool rel = false;
      if (orders.empty()) {  // implicit seq_cst
        acq = !is_store;
        rel = !is_load;
      }
      for (const std::string& o : orders) {
        const bool strong = o == "seq_cst" || o == "acq_rel";
        if (!is_store && (o == "acquire" || o == "consume" || strong)) acq = true;
        if (!is_load && (o == "release" || strong)) rel = true;
      }
      if (!var.empty() && (acq || rel)) per_var[var].push_back({&u, t[j].line, acq, rel});
      continue;
    }

    // Operator forms on locally-declared atomics: ++x, x++, x += 1, x = v.
    if (is_ident(t[j]) && atomics.count(t[j].text)) {
      const Token& prev = t[j - 1];
      const Token& next = t[j + 1];
      const bool decl_site = is_ident(prev) || is_punct(prev, ">");
      const bool member = is_punct(prev, ".") || is_punct(prev, "->") || is_punct(prev, "::");
      const bool op_next = next.kind == Tok::kPunct && assign_ops().count(next.text);
      const bool op_prev = is_punct(prev, "++") || is_punct(prev, "--");
      if (!decl_site && !member && (op_next || op_prev)) {
        if (check_explicit) {
          const std::string op = op_prev ? prev.text : next.text;
          out.push_back(make(u, t[j].line, "mo-explicit", "concurrency",
                             "operator " + op + " on atomic '" + t[j].text + "' is an " +
                                 "implicit seq_cst RMW; use an explicit fetch_/store with " +
                                 "a named memory_order"));
        }
        per_var[t[j].text].push_back({&u, t[j].line, true, true});
      }
    }
  }
}

void rule_mo_balance(const std::map<std::string, std::vector<MoSite>>& per_var,
                     std::vector<Finding>& out) {
  for (const auto& [name, sites] : per_var) {
    int acq = 0;
    int rel = 0;
    for (const MoSite& s : sites) {
      acq += s.acq ? 1 : 0;
      rel += s.rel ? 1 : 0;
    }
    const bool acq_only = acq > 0 && rel == 0;
    const bool rel_only = rel > 0 && acq == 0;
    if (!acq_only && !rel_only) continue;
    bool suppressed = false;
    for (const MoSite& s : sites) {
      if (s.unit->find_suppression(s.line, "mo-balance") != nullptr) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) continue;
    const MoSite& first = sites.front();
    out.push_back(make(*first.unit, first.line, "mo-balance", "concurrency",
                       acq_only
                           ? "atomic '" + name + "' has acquire-side loads but no " +
                                 "release-side store anywhere in the scanned tree: the " +
                                 "acquire synchronizes with nothing"
                           : "atomic '" + name + "' has release-side stores but no " +
                                 "acquire-side load anywhere in the scanned tree: the " +
                                 "release publishes to nobody"));
  }
}

// --- concurrency: raw primitives -------------------------------------------

void rule_raw_thread(const FileUnit& u, std::vector<Finding>& out) {
  static const std::set<std::string> kRawTypes = {
      "thread", "jthread", "mutex", "recursive_mutex", "timed_mutex",
      "recursive_timed_mutex", "shared_mutex", "shared_timed_mutex",
  };
  const auto& t = u.lex.tokens;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (!is_ident(t[j])) continue;
    if (t[j].text == "volatile") {
      out.push_back(make(u, t[j].line, "raw-thread", "concurrency",
                         "volatile is not a synchronization primitive; use std::atomic " +
                             std::string("or route the work through simrt")));
      continue;
    }
    if (kRawTypes.count(t[j].text) && j >= 2 && is_punct(t[j - 1], "::") &&
        is_ident(t[j - 2]) && t[j - 2].text == "std" &&
        !(j + 1 < t.size() && is_punct(t[j + 1], "::"))) {
      out.push_back(make(u, t[j].line, "raw-thread", "concurrency",
                         "raw std::" + t[j].text + " outside src/simrt and src/gpusim: " +
                             "concurrency belongs to the runtime layers"));
    }
  }
}

// --- determinism ------------------------------------------------------------

void rule_det_rand(const FileUnit& u, std::vector<Finding>& out) {
  const auto& t = u.lex.tokens;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (!is_ident(t[j])) continue;
    const bool member = j > 0 && (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->"));
    if ((t[j].text == "rand" || t[j].text == "srand") && !member && j + 1 < t.size() &&
        is_punct(t[j + 1], "(")) {
      out.push_back(make(u, t[j].line, "det-rand", "determinism",
                         t[j].text + "() is unseeded global state; use " +
                             "portabench::common rng streams so runs are reproducible"));
    } else if (t[j].text == "random_device" && !member) {
      out.push_back(make(u, t[j].line, "det-rand", "determinism",
                         "std::random_device draws nondeterministic entropy; seed a " +
                             std::string("portabench::common rng stream instead")));
    }
  }
}

void rule_det_unordered(const FileUnit& u, std::vector<Finding>& out) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
  };
  const auto& t = u.lex.tokens;
  std::set<std::string> names;
  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (!is_ident(t[j]) || !kUnordered.count(t[j].text)) continue;
    std::size_t k = j + 1;
    if (is_punct(t[k], "<")) {
      const std::size_t m = match_forward(t, k);
      if (m == kNpos) continue;
      k = m + 1;
    }
    if (k < t.size() && is_ident(t[k])) names.insert(t[k].text);
  }
  if (names.empty()) return;
  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (!is_ident(t[j]) || t[j].text != "for" || !is_punct(t[j + 1], "(")) continue;
    const std::size_t close = match_forward(t, j + 1);
    if (close == kNpos) continue;
    int depth = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (is_punct(t[k], "(")) ++depth;
      if (is_punct(t[k], ")")) --depth;
      if (depth == 1 && is_punct(t[k], ":")) {
        for (std::size_t q = k + 1; q < close; ++q) {
          if (is_ident(t[q])) {
            if (names.count(t[q].text)) {
              out.push_back(make(u, t[q].line, "det-unordered", "determinism",
                                 "iteration over unordered container '" + t[q].text +
                                     "': the order is unspecified, so anything reduced " +
                                     "or emitted from it is nondeterministic — sort first"));
            }
            break;
          }
        }
        break;
      }
    }
  }
}

// --- hygiene ----------------------------------------------------------------

// simd-raw-vector-ext: explicit SIMD belongs behind simrt::simd.  Raw
// GCC generic vectors and x86 intrinsics outside src/simrt/simd_backends
// fork the determinism contract (lane order, fp-contract, tier identity)
// the abstraction pins; one sanctioned home keeps it auditable.
// __builtin_ia32_pause is a spin-wait hint, not a SIMD operation.
void rule_simd_raw_vector_ext(const FileUnit& u, std::vector<Finding>& out) {
  const auto& t = u.lex.tokens;
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (!is_ident(t[j])) continue;
    const std::string& s = t[j].text;
    if (s == "__builtin_ia32_pause") continue;
    const bool call_like = j + 1 < t.size() && is_punct(t[j + 1], "(");
    std::string what;
    if (s == "vector_size" && call_like) {
      what = "__attribute__((vector_size)) generic vector";
    } else if ((s == "__builtin_shuffle" || s == "__builtin_convertvector") && call_like) {
      what = s + " on a generic vector";
    } else if (s.rfind("__m128", 0) == 0 || s.rfind("__m256", 0) == 0 ||
               s.rfind("__m512", 0) == 0) {
      what = "x86 vector type " + s;
    } else if ((s.rfind("_mm_", 0) == 0 || s.rfind("_mm256_", 0) == 0 ||
                s.rfind("_mm512_", 0) == 0 || s.rfind("__builtin_ia32_", 0) == 0) &&
               call_like) {
      what = "x86 intrinsic " + s;
    } else {
      continue;
    }
    out.push_back(make(u, t[j].line, "simd-raw-vector-ext", "hygiene",
                       what + " outside src/simrt/simd_backends: write the kernel " +
                           "against simrt::simd so lane order, fp-contract, and tier " +
                           "dispatch stay under the portable contract"));
  }
}

void rule_pragma_once(const FileUnit& u, std::vector<Finding>& out) {
  if (!u.is_header || u.has_pragma_once) return;
  out.push_back(make(u, 1, "hy-pragma-once", "hygiene",
                     "header lacks #pragma once (this repository's include-guard style)"));
}

void rule_using_ns(const FileUnit& u, std::vector<Finding>& out) {
  if (!u.is_header) return;
  const auto& t = u.lex.tokens;
  std::vector<char> stack;  // 'F' function-like, 'N' namespace, 'O' other
  static const std::set<std::string> kSkippable = {"const", "noexcept", "mutable",
                                                   "override", "final"};
  for (std::size_t j = 0; j < t.size(); ++j) {
    if (is_punct(t[j], "{")) {
      char kind = 'O';
      std::size_t k = j;
      while (k > 0) {
        const Token& p = t[k - 1];
        if (is_ident(p) && kSkippable.count(p.text)) {
          --k;
          continue;
        }
        if (is_punct(p, "&") || is_punct(p, "&&")) {
          --k;
          continue;
        }
        if (is_punct(p, ")") || is_punct(p, "]") ||
            (is_ident(p) && (p.text == "else" || p.text == "do" || p.text == "try"))) {
          kind = 'F';
        } else if (is_ident(p) &&
                   (p.text == "namespace" ||
                    (k >= 2 && is_ident(t[k - 2]) && t[k - 2].text == "namespace"))) {
          kind = 'N';
        }
        break;
      }
      stack.push_back(kind);
      continue;
    }
    if (is_punct(t[j], "}")) {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (is_ident(t[j]) && t[j].text == "using" && j + 1 < t.size() &&
        is_ident(t[j + 1]) && t[j + 1].text == "namespace") {
      const bool in_function =
          std::find(stack.begin(), stack.end(), 'F') != stack.end();
      if (!in_function) {
        out.push_back(make(u, t[j].line, "hy-using-ns", "hygiene",
                           "using namespace at file/namespace scope in a header leaks " +
                               std::string("into every includer")));
      }
    }
  }
}

void rule_include_cycle(const Project& p, std::vector<Finding>& out) {
  namespace fs = std::filesystem;
  // Resolve quoted includes to scanned units.
  std::map<std::string, std::size_t> by_path;
  for (std::size_t i = 0; i < p.files.size(); ++i) {
    std::error_code ec;
    fs::path canon = fs::weakly_canonical(p.files[i].path, ec);
    by_path[(ec ? p.files[i].path : canon).lexically_normal().string()] = i;
  }
  std::vector<fs::path> roots;
  for (const FileUnit& u : p.files) roots.push_back(u.path.parent_path());
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  if (fs::exists(p.root / "src")) roots.push_back(p.root / "src");
  roots.push_back(p.root);

  struct Edge {
    std::size_t to;
    int line;
  };
  std::vector<std::vector<Edge>> adj(p.files.size());
  for (std::size_t i = 0; i < p.files.size(); ++i) {
    for (const auto& [line, inc] : p.files[i].quoted_includes) {
      std::vector<fs::path> cands;
      cands.push_back(p.files[i].path.parent_path() / inc);
      for (const fs::path& r : roots) cands.push_back(r / inc);
      for (const fs::path& c : cands) {
        std::error_code ec;
        fs::path canon = fs::weakly_canonical(c, ec);
        auto it = by_path.find((ec ? c : canon).lexically_normal().string());
        if (it != by_path.end()) {
          adj[i].push_back({it->second, line});
          break;
        }
      }
    }
  }

  // Iterative DFS with a gray-path stack; cycles deduped by member set.
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(p.files.size(), kWhite);
  std::vector<std::size_t> path_stack;
  std::set<std::string> seen_cycles;

  std::function<void(std::size_t)> dfs = [&](std::size_t v) {
    color[v] = kGray;
    path_stack.push_back(v);
    for (const Edge& e : adj[v]) {
      if (color[e.to] == kGray) {
        auto it = std::find(path_stack.begin(), path_stack.end(), e.to);
        std::vector<std::size_t> cycle(it, path_stack.end());
        std::vector<std::string> rels;
        for (std::size_t m : cycle) rels.push_back(p.files[m].rel);
        std::vector<std::string> key = rels;
        std::sort(key.begin(), key.end());
        std::string keystr;
        for (const auto& r : key) keystr += r + "|";
        if (!seen_cycles.insert(keystr).second) continue;
        // Anchor on the lexicographically first member's include edge.
        std::size_t anchor_pos = 0;
        for (std::size_t q = 1; q < cycle.size(); ++q) {
          if (p.files[cycle[q]].rel < p.files[cycle[anchor_pos]].rel) anchor_pos = q;
        }
        const std::size_t anchor = cycle[anchor_pos];
        const std::size_t next_member = cycle[(anchor_pos + 1) % cycle.size()];
        int line = 1;
        for (const Edge& ae : adj[anchor]) {
          if (ae.to == next_member) {
            line = ae.line;
            break;
          }
        }
        std::string chain;
        for (std::size_t q = 0; q < cycle.size(); ++q) {
          chain += p.files[cycle[(anchor_pos + q) % cycle.size()]].rel + " -> ";
        }
        chain += p.files[anchor].rel;
        bool suppressed = false;
        for (std::size_t m : cycle) {
          for (const Edge& me : adj[m]) {
            if (p.files[m].find_suppression(me.line, "hy-include-cycle") != nullptr) {
              suppressed = true;
            }
          }
        }
        if (!suppressed) {
          out.push_back(make(p.files[anchor], line, "hy-include-cycle", "hygiene",
                             "include cycle: " + chain));
        }
      } else if (color[e.to] == kWhite) {
        dfs(e.to);
      }
    }
    path_stack.pop_back();
    color[v] = kBlack;
  };
  for (std::size_t i = 0; i < p.files.size(); ++i) {
    if (color[i] == kWhite) dfs(i);
  }
}

}  // namespace

// --- tn-magic-tile ---------------------------------------------------------
//
// A schedule knob (tile/chunk/grain/cutoff/unroll/batch/block size)
// assigned a bare nonzero integer literal is a tuning decision frozen
// into source.  Those belong in the src/tune registry (searched, cached
// per machine) or the tunables modules; everything else should resolve
// through them.  Zero is exempt — it is the conventional "resolve at
// runtime" sentinel.

bool tn_knob_ident(const std::string& name) {
  // The tiled-GEMM blocking constants, exact (kMR alone would also match
  // e.g. kMRU-style names via substrings, so these are not fragments).
  static const std::set<std::string> kExact = {"kMR", "kNR", "kNRMax",
                                               "kKC", "kMC", "kNC"};
  if (kExact.count(name)) return true;
  std::string low;
  low.reserve(name.size());
  for (const char c : name) {
    low += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  static const char* const kFragments[] = {"tile",   "chunk",      "grain",
                                           "cutoff", "unroll",     "batch_jobs",
                                           "block_size"};
  for (const char* frag : kFragments) {
    if (low.find(frag) != std::string::npos) return true;
  }
  return false;
}

void rule_tn_magic_tile(const FileUnit& u, std::vector<Finding>& out) {
  const auto& t = u.lex.tokens;
  for (std::size_t j = 0; j + 2 < t.size(); ++j) {
    if (!is_ident(t[j]) || !tn_knob_ident(t[j].text)) continue;
    if (!(is_punct(t[j + 1], "=") || is_punct(t[j + 1], "{"))) continue;
    const Token& num = t[j + 2];
    if (num.kind != Tok::kNumber) continue;
    // Integer literals only: floats are measurements, not schedule knobs.
    if (num.text.find('.') != std::string::npos ||
        num.text.find('e') != std::string::npos ||
        num.text.find('E') != std::string::npos) {
      continue;
    }
    const long long value = std::strtoll(num.text.c_str(), nullptr, 0);
    if (value == 0) continue;  // 0 = "resolve at runtime" sentinel
    out.push_back(make(u, t[j].line, "tn-magic-tile", "hygiene",
                       "schedule knob '" + t[j].text + "' pinned to literal " +
                           num.text + "; route it through the src/tune registry " +
                           "or a tunables module so it stays searchable"));
  }
}

bool scope_in_tests(const FileUnit& u) { return in_tests(u); }

bool scope_rng_exempt(const FileUnit& u) { return rng_exempt(u); }

const std::vector<RuleDesc>& all_rules() {
  static const std::vector<RuleDesc> kRules = {
      {"ls-capture-write", "lane-safety",
       "parallel/launch lambda mutates a by-reference-captured local non-atomically"},
      {"ls-nonlane-store", "lane-safety",
       "indexed store in a parallel lambda where no index depends on the lane"},
      {"ls-ptr-capture", "lane-safety",
       "device kernel ([=] launch lambda) captures a raw pointer by value"},
      {"mo-explicit", "concurrency",
       "atomic operation without an explicit memory_order (src/ and bench/ only)"},
      {"mo-balance", "concurrency",
       "per-variable acquire/release pairing imbalance across the scanned tree"},
      {"raw-thread", "concurrency",
       "raw std::thread/std::mutex/volatile outside src/simrt and src/gpusim"},
      {"det-rand", "determinism",
       "rand()/srand()/std::random_device outside src/common/rng"},
      {"det-unordered", "determinism",
       "range-for over an unordered container (order feeds results)"},
      {"simd-raw-vector-ext", "hygiene",
       "raw __attribute__((vector_size)) vectors or x86 intrinsics outside "
       "src/simrt/simd_backends"},
      {"tn-magic-tile", "hygiene",
       "schedule knob (tile/chunk/grain/cutoff/unroll/batch/block size) "
       "hard-coded to an integer literal outside src/tune and the tunables "
       "modules"},
      {"hy-pragma-once", "hygiene", "header missing #pragma once"},
      {"hy-using-ns", "hygiene",
       "using namespace at file/namespace scope in a header"},
      {"hy-include-cycle", "hygiene", "include cycle among scanned files"},
      {"fl-shared-write-escape", "lane-safety",
       "kernel/dispatch lambda passes a by-ref-captured shared variable to a "
       "helper that writes it non-atomically (interprocedural)"},
      {"fl-unpaired-ordering", "concurrency",
       "per-variable acquire/release summary on the call graph is one-sided "
       "(sites resolved through std::atomic& helper parameters)"},
      {"fl-unproved-bounds", "lane-safety",
       "index expression in a launch body is not provably within the view's "
       "extent for every lane (symbolic affine analysis)"},
      {"fl-det-taint", "determinism",
       "kernel/dispatch lambda calls a helper that transitively reaches a "
       "nondeterministic source (rand, clock, unordered iteration)"},
  };
  return kRules;
}

std::vector<Finding> run_file_rules(const FileUnit& u) {
  std::vector<Finding> out;
  // Ordering sites for mo-balance are reconstructed from the IR by the
  // global/flow layer; this throwaway map only feeds mo-explicit.
  std::map<std::string, std::vector<MoSite>> per_var;
  rule_lane_safety(u, out);
  if (!in_tests(u)) {
    scan_memory_orders(u, /*check_explicit=*/true, per_var, out);
    if (!in_runtime_dirs(u)) rule_raw_thread(u, out);
  }
  if (!rng_exempt(u)) rule_det_rand(u, out);
  if (!tn_exempt(u)) rule_tn_magic_tile(u, out);
  if (!u.has_component("simd_backends")) rule_simd_raw_vector_ext(u, out);
  rule_det_unordered(u, out);
  rule_pragma_once(u, out);
  rule_using_ns(u, out);
  return out;
}

std::vector<Finding> run_global_rules(const Project& project,
                                      const std::vector<FileIR>& irs,
                                      bool legacy_mo_balance) {
  std::vector<Finding> out;
  if (legacy_mo_balance) {
    // The historical token-scan mo-balance, reconstructed from exactly
    // the sites that scan counted (OrderIR::token_visible), grouped by
    // receiver name with no call-graph resolution.
    std::map<std::string, std::vector<MoSite>> per_var;
    for (std::size_t i = 0; i < project.files.size() && i < irs.size(); ++i) {
      const FileUnit& u = project.files[i];
      if (in_tests(u)) continue;
      for (const OrderIR& o : irs[i].orders) {
        if (!o.token_visible || o.var.empty() || (!o.acq && !o.rel)) continue;
        per_var[o.var].push_back({&u, o.line, o.acq, o.rel});
      }
    }
    rule_mo_balance(per_var, out);
  }
  rule_include_cycle(project, out);
  return out;
}

std::vector<Finding> run_rules(const Project& project) {
  std::vector<Finding> out;
  std::vector<FileIR> irs;
  irs.reserve(project.files.size());
  for (const FileUnit& u : project.files) {
    auto file_findings = run_file_rules(u);
    out.insert(out.end(), std::make_move_iterator(file_findings.begin()),
               std::make_move_iterator(file_findings.end()));
    irs.push_back(build_ir(u));
  }
  auto global = run_global_rules(project, irs, /*legacy_mo_balance=*/true);
  out.insert(out.end(), std::make_move_iterator(global.begin()),
             std::make_move_iterator(global.end()));
  std::stable_sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.unit->rel != b.unit->rel) return a.unit->rel < b.unit->rel;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

}  // namespace portalint
