// portaflow passes: interprocedural flow analyses over the per-file IR
// (ir.hpp) linked by the call graph (callgraph.hpp).  Four rules:
//
//   fl-shared-write-escape  a kernel/dispatch lambda passes a by-ref-
//                           captured shared variable to a helper that
//                           writes it non-atomically (lane race the
//                           token-level ls-* rules cannot see)
//   fl-unpaired-ordering    per-variable acquire/release happens-before
//                           summary computed on the call graph: sites
//                           inside helpers taking std::atomic& are
//                           attributed to the caller's variable, and a
//                           one-sided variable is flagged
//   fl-unproved-bounds      symbolic affine bounds: index expressions in
//                           launch bodies checked against view/buffer
//                           extents under lane ranges and guards; fires
//                           only when every lane in the index has a
//                           known range and the proof still fails
//   fl-det-taint            determinism taint (rand, time, unordered
//                           iteration) propagated through helper calls
//                           into dispatch-lambda bodies
//
// Like the token rules, the passes are asymmetric: anything they cannot
// lower or link is simply not reasoned about, keeping them quiet.
#pragma once

#include <vector>

#include "callgraph.hpp"
#include "ir.hpp"
#include "model.hpp"

namespace portalint {

/// Everything a pass needs: the scanned project, one FileIR per file
/// (same order as project.files), and the linked call graph.
struct FlowContext {
  const Project* project = nullptr;
  const std::vector<FileIR>* irs = nullptr;
  CallGraph graph;

  [[nodiscard]] const FileUnit& unit(std::size_t i) const { return project->files[i]; }
  [[nodiscard]] const FileIR& ir(std::size_t i) const { return (*irs)[i]; }
  [[nodiscard]] std::size_t size() const { return project->files.size(); }
};

/// Individual passes (exposed for targeted tests).
void flow_shared_write_escape(const FlowContext& ctx, std::vector<Finding>& out);
void flow_unpaired_ordering(const FlowContext& ctx, std::vector<Finding>& out);
void flow_unproved_bounds(const FlowContext& ctx, std::vector<Finding>& out);
void flow_det_taint(const FlowContext& ctx, std::vector<Finding>& out);

/// Build the call graph and run all four passes.  `irs` must be aligned
/// with `project.files`.  Emitted findings are unfiltered (the engine
/// applies inline suppressions and the baseline), except that
/// multi-site ordering findings honor suppressions on any participating
/// line themselves, mirroring mo-balance.
[[nodiscard]] std::vector<Finding> run_flow(const Project& project,
                                            const std::vector<FileIR>& irs);

}  // namespace portalint
