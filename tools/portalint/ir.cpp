#include "ir.hpp"

#include <algorithm>
#include <array>

#include "analysis.hpp"

namespace portalint {

namespace {

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == Tok::kPunct && tok.text == text;
}

bool is_ident(const Token& tok) { return tok.kind == Tok::kIdent; }

const std::set<std::string>& assign_ops() {
  static const std::set<std::string> kOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=",
  };
  return kOps;
}

const std::set<std::string>& atomic_member_ops() {
  static const std::set<std::string> kOps = {
      "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or", "fetch_xor", "compare_exchange_weak", "compare_exchange_strong",
      "test_and_set",
  };
  return kOps;
}

/// Identifiers that look like calls but are not function definitions or
/// helper calls worth linking.
const std::set<std::string>& non_callees() {
  static const std::set<std::string> kSkip = {
      "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
      "decltype", "static_assert", "new", "delete", "operator", "throw",
      "assert", "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
      "defined", "alignas", "noexcept", "typeid",
  };
  return kSkip;
}

std::string excerpt_at(const FileUnit& u, int line) {
  return normalize_excerpt(u.line_text(line));
}

/// Split the token range (open+1, close) by top-level commas into
/// flattened token-text groups.
std::vector<std::vector<std::string>> split_args(const std::vector<Token>& t,
                                                 std::size_t open, std::size_t close) {
  std::vector<std::vector<std::string>> out;
  std::size_t start = open + 1;
  int depth = 0;
  for (std::size_t q = open + 1; q <= close; ++q) {
    const bool at_end = q == close;
    if (!at_end) {
      if (is_punct(t[q], "(") || is_punct(t[q], "[") || is_punct(t[q], "{") ) ++depth;
      if (is_punct(t[q], ")") || is_punct(t[q], "]") || is_punct(t[q], "}") ) --depth;
    }
    if (at_end || (depth == 0 && is_punct(t[q], ","))) {
      std::vector<std::string> arg;
      for (std::size_t r = start; r < q; ++r) arg.push_back(t[r].text);
      if (!arg.empty()) out.push_back(std::move(arg));
      start = q + 1;
    }
  }
  return out;
}

// --- guard tracking ---------------------------------------------------------

/// A guard constraint active over a token range.
struct ActiveGuard {
  GuardIR guard;
  std::size_t until;  // token index the constraint stops dominating at
};

/// Parse `if (...)` conditions into `var < bound` facts.  Handles
/// conjunctions of `ID < EXPR` / `ID <= EXPR`; any top-level `||`
/// invalidates the whole condition.  Returns constraints for the guarded
/// region (the `{...}` block or single statement after the `)`).
std::vector<GuardIR> guards_from_condition(const std::vector<Token>& t,
                                           std::size_t open, std::size_t close) {
  std::vector<GuardIR> out;
  int depth = 0;
  std::size_t start = open + 1;
  std::vector<std::pair<std::size_t, std::size_t>> conjuncts;
  for (std::size_t q = open + 1; q <= close; ++q) {
    const bool at_end = q == close;
    if (!at_end) {
      if (is_punct(t[q], "(")) ++depth;
      if (is_punct(t[q], ")")) --depth;
      if (depth == 0 && is_punct(t[q], "||")) return {};  // unsound under ||
    }
    if (at_end || (depth == 0 && is_punct(t[q], "&&"))) {
      if (q > start) conjuncts.emplace_back(start, q);
      start = q + 1;
    }
  }
  for (const auto& [b, e] : conjuncts) {
    // ID < EXPR  |  ID <= EXPR
    if (e - b < 3 || !is_ident(t[b])) continue;
    if (!(is_punct(t[b + 1], "<") || is_punct(t[b + 1], "<="))) continue;
    GuardIR g;
    g.var = t[b].text;
    for (std::size_t r = b + 2; r < e; ++r) g.bound.push_back(t[r].text);
    if (is_punct(t[b + 1], "<=")) {
      g.bound.insert(g.bound.begin(), "(");
      g.bound.push_back(")");
      g.bound.push_back("+");
      g.bound.push_back("1");
    }
    if (!g.bound.empty()) out.push_back(std::move(g));
  }
  return out;
}

/// Parse early-exit guards: `if (ID >= EXPR) return;` (with or without
/// braces) yields `ID < EXPR` for the rest of the enclosing range.
std::vector<GuardIR> guards_from_early_exit(const std::vector<Token>& t,
                                            std::size_t open, std::size_t close) {
  // Condition must be exactly `ID >= EXPR`.
  if (close < open + 4 || !is_ident(t[open + 1]) || !is_punct(t[open + 2], ">=")) return {};
  // Statement after ')' must be return/continue (optionally braced).
  std::size_t s = close + 1;
  if (s < t.size() && is_punct(t[s], "{")) ++s;
  if (s >= t.size() || !is_ident(t[s]) ||
      (t[s].text != "return" && t[s].text != "continue")) {
    return {};
  }
  GuardIR g;
  g.var = t[open + 1].text;
  for (std::size_t r = open + 3; r < close; ++r) g.bound.push_back(t[r].text);
  if (g.bound.empty()) return {};
  return {g};
}

// --- body facts -------------------------------------------------------------

/// Collection target for one body walk (function or launch lambda).
struct BodyFacts {
  std::vector<AccessIR> accesses;
  std::vector<CallIR> calls;
  std::vector<ExtentIR> extents;
  std::set<std::string> taint_sources;
  std::set<std::string> return_idents;
};

/// Recognized extent-bearing container declarations.
/// `vector<T> name(E)`, `array<T, N> name`, `View2<..> name(E0, E1)`,
/// `RawView2<..> name(ptr, E0, E1)`, `DeviceBuffer<T> name(E)`.
void collect_extent(const std::vector<Token>& t, std::size_t j, std::size_t end,
                    BodyFacts& out) {
  const std::string& type = t[j].text;
  const bool is_vector = type == "vector";
  const bool is_array = type == "array";
  const bool is_view2 = type == "View2" || type == "RawView2";
  const bool is_devbuf = type == "DeviceBuffer";
  if (!is_vector && !is_array && !is_view2 && !is_devbuf) return;
  std::size_t k = j + 1;
  std::vector<std::vector<std::string>> targs;
  if (k < end && is_punct(t[k], "<")) {
    const std::size_t m = match_forward(t, k);
    if (m == kNpos || m >= end) return;
    targs = split_args(t, k, m);
    k = m + 1;
  }
  if (k >= end || !is_ident(t[k])) return;
  ExtentIR e;
  e.name = t[k].text;
  e.line = t[k].line;
  if (is_array) {
    // extent is the second template argument
    if (targs.size() != 2) return;
    e.dims.push_back(targs[1]);
    out.extents.push_back(std::move(e));
    return;
  }
  ++k;
  if (k >= end || !(is_punct(t[k], "(") || is_punct(t[k], "{"))) return;
  const std::size_t m = match_forward(t, k);
  if (m == kNpos || m > end) return;
  auto args = split_args(t, k, m);
  if (is_vector || is_devbuf) {
    // vector<T> v(n) or vector<T> v(n, fill): the first arg is the size.
    if (args.empty()) return;
    e.dims.push_back(args[0]);
  } else {  // View2 / RawView2
    if (t[j].text == "RawView2") {
      if (args.size() != 3) return;  // (ptr, n0, n1)
      e.dims.push_back(args[1]);
      e.dims.push_back(args[2]);
    } else {
      if (args.size() != 2) return;  // (n0, n1)
      e.dims.push_back(args[0]);
      e.dims.push_back(args[1]);
    }
  }
  out.extents.push_back(std::move(e));
}

/// Walk one body range and collect accesses (with dominating guards),
/// calls, extents, taint sources and return identifiers.
void collect_body(const FileUnit& u, std::size_t begin, std::size_t end,
                  const std::set<std::string>& unordered_names, BodyFacts& out) {
  const auto& t = u.lex.tokens;
  std::vector<ActiveGuard> guards;

  auto active_guards = [&](std::size_t at) {
    std::vector<GuardIR> gs;
    for (const ActiveGuard& a : guards) {
      if (at < a.until) gs.push_back(a.guard);
    }
    return gs;
  };

  for (std::size_t j = begin + 1; j < end; ++j) {
    // Guard recognition: if (...) ...
    if (is_ident(t[j]) && t[j].text == "if" && j + 1 < end && is_punct(t[j + 1], "(")) {
      const std::size_t close = match_forward(t, j + 1);
      if (close == kNpos || close >= end) continue;
      for (GuardIR& g : guards_from_early_exit(t, j + 1, close)) {
        guards.push_back({std::move(g), end});
      }
      auto conds = guards_from_condition(t, j + 1, close);
      if (!conds.empty() && close + 1 < end) {
        if (is_punct(t[close + 1], "{")) {
          const std::size_t bend = match_forward(t, close + 1);
          if (bend != kNpos && bend <= end) {
            for (GuardIR& g : conds) guards.push_back({std::move(g), bend});
          }
        } else {
          // Braceless form: the guard dominates the single statement up
          // to its terminating top-level ';'.
          std::size_t stop = close + 1;
          int d = 0;
          while (stop < end) {
            if (is_punct(t[stop], "(") || is_punct(t[stop], "[") || is_punct(t[stop], "{")) ++d;
            if (is_punct(t[stop], ")") || is_punct(t[stop], "]") || is_punct(t[stop], "}")) --d;
            if (d == 0 && is_punct(t[stop], ";")) break;
            ++stop;
          }
          for (GuardIR& g : conds) guards.push_back({std::move(g), stop});
        }
      }
      continue;
    }

    // return <expr>;
    if (is_ident(t[j]) && t[j].text == "return") {
      for (std::size_t q = j + 1; q < end && !is_punct(t[q], ";"); ++q) {
        if (is_ident(t[q])) out.return_idents.insert(t[q].text);
      }
      continue;
    }

    // Taint sources.
    if (is_ident(t[j])) {
      const bool member = j > 0 && (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->"));
      const bool scoped = j > 0 && is_punct(t[j - 1], "::");
      const bool call_like = j + 1 < end && is_punct(t[j + 1], "(");
      if ((t[j].text == "rand" || t[j].text == "srand") && !member && call_like) {
        out.taint_sources.insert("rand");
      } else if (t[j].text == "random_device" && !member) {
        out.taint_sources.insert("random_device");
      } else if (t[j].text == "now" && scoped && call_like) {
        out.taint_sources.insert("clock-now");
      } else if (t[j].text == "time" && !member && !scoped && call_like) {
        out.taint_sources.insert("time");
      } else if (t[j].text == "for" && call_like) {
        // Range-for over an unordered container: `for (auto& kv : m)`.
        const std::size_t close = match_forward(t, j + 1);
        if (close != kNpos && close < end) {
          int depth = 0;
          for (std::size_t q = j + 2; q < close; ++q) {
            if (is_punct(t[q], "(")) ++depth;
            if (is_punct(t[q], ")")) --depth;
            if (depth == 0 && is_punct(t[q], ":")) {
              for (std::size_t r = q + 1; r < close; ++r) {
                if (is_ident(t[r]) && unordered_names.count(t[r].text)) {
                  out.taint_sources.insert("unordered-iter");
                }
              }
              break;
            }
          }
        }
      }
    }

    // Extent declarations.
    if (is_ident(t[j])) collect_extent(t, j, end, out);

    // Deref store: *p = v;
    if (is_punct(t[j], "*") && j + 2 < end && is_ident(t[j + 1]) &&
        t[j + 2].kind == Tok::kPunct && assign_ops().count(t[j + 2].text)) {
      const Token& before = j > begin + 1 ? t[j - 1] : t[begin];
      const bool mult = is_ident(before) || is_punct(before, ")") || is_punct(before, "]") ||
                        before.kind == Tok::kNumber;
      if (!mult) {
        AccessIR a;
        a.base = t[j + 1].text;
        a.is_store = true;
        a.is_deref = true;
        a.line = t[j + 1].line;
        a.excerpt = excerpt_at(u, a.line);
        a.guards = active_guards(j);
        for (std::size_t q = j + 3; q < end && !is_punct(t[q], ";"); ++q) {
          if (is_ident(t[q])) a.rhs_idents.push_back(t[q].text);
        }
        out.accesses.push_back(std::move(a));
        continue;
      }
    }

    // Prefix increment/decrement: ++x / --x.
    if ((is_punct(t[j], "++") || is_punct(t[j], "--")) && j + 1 < end && is_ident(t[j + 1]) &&
        !(j + 2 < end && (is_punct(t[j + 2], ".") || is_punct(t[j + 2], "->")))) {
      AccessIR a;
      a.base = t[j + 1].text;
      a.is_store = true;
      a.line = t[j].line;
      a.excerpt = excerpt_at(u, a.line);
      a.guards = active_guards(j);
      out.accesses.push_back(std::move(a));
      continue;
    }

    if (!is_ident(t[j]) || non_callees().count(t[j].text)) continue;
    const Token& prev = t[j - 1];
    if (is_punct(prev, ".") || is_punct(prev, "->")) continue;  // member access
    const std::string& name = t[j].text;

    // Postfix ++/-- and direct/compound assignment: name = v, name += v.
    if (j + 1 < end && t[j + 1].kind == Tok::kPunct &&
        (assign_ops().count(t[j + 1].text) || t[j + 1].text == "++" || t[j + 1].text == "--")) {
      // Skip declaration sites (`int x = 0`): preceded by a type-ish token.
      const bool decl_site = is_ident(prev) || is_punct(prev, ">") || is_punct(prev, "*") ||
                             is_punct(prev, "&") || is_punct(prev, "&&");
      if (!decl_site && !is_punct(t[j + 1], "==")) {
        AccessIR a;
        a.base = name;
        a.is_store = true;
        a.line = t[j].line;
        a.excerpt = excerpt_at(u, a.line);
        a.guards = active_guards(j);
        if (assign_ops().count(t[j + 1].text)) {
          for (std::size_t q = j + 2; q < end && !is_punct(t[q], ";"); ++q) {
            if (is_ident(t[q])) a.rhs_idents.push_back(t[q].text);
          }
        }
        out.accesses.push_back(std::move(a));
      }
      continue;
    }

    // Indexed access chains and calls: name(...)... / name[...]...
    if (j + 1 < end && (is_punct(t[j + 1], "(") || is_punct(t[j + 1], "["))) {
      // `std::vector<Acc> buf(kc)` / `int buf[4]`: a constructor or
      // array declarator (type-ish token before the name), not an
      // access.  The declaration is still picked up as an extent fact.
      if ((is_ident(prev) && non_callees().count(prev.text) == 0) || is_punct(prev, ">")) {
        continue;
      }
      const bool paren_first = is_punct(t[j + 1], "(");
      std::size_t k = j + 1;
      std::vector<std::vector<std::vector<std::string>>> groups;  // per group: args
      std::size_t first_close = kNpos;
      while (k < end && (is_punct(t[k], "(") || is_punct(t[k], "["))) {
        const std::size_t m = match_forward(t, k);
        if (m == kNpos || m > end) break;
        groups.push_back(split_args(t, k, m));
        if (first_close == kNpos) first_close = m;
        k = m + 1;
      }
      if (groups.empty()) continue;
      const bool stored = k < end && t[k].kind == Tok::kPunct && assign_ops().count(t[k].text);

      // A single paren group not written through is call-shaped: record
      // a CallIR (the call graph ignores names that resolve to nothing).
      if (paren_first && groups.size() == 1 && !stored) {
        CallIR c;
        c.callee = name;
        c.args = groups[0];
        c.line = t[j].line;
        c.excerpt = excerpt_at(u, c.line);
        out.calls.push_back(std::move(c));
      }

      // Any indexed group is also an access the bounds pass can check.
      AccessIR a;
      a.base = name;
      a.via_paren = paren_first;
      a.is_store = stored;
      a.line = t[j].line;
      a.excerpt = excerpt_at(u, a.line);
      a.guards = active_guards(j);
      for (auto& g : groups) {
        for (auto& idx : g) a.indices.push_back(idx);
      }
      if (stored) {
        for (std::size_t q = k + 1; q < end && !is_punct(t[q], ";"); ++q) {
          if (is_ident(t[q])) a.rhs_idents.push_back(t[q].text);
        }
      }
      out.accesses.push_back(std::move(a));
      j = k > j ? k - 1 : j;
    }
  }
}

// --- function discovery -----------------------------------------------------

struct FuncSpan {
  FunctionIR ir;
  std::size_t body_begin;
  std::size_t body_end;
};

/// Parse the parameter list in (open, close) into ParamIR entries.
std::vector<ParamIR> parse_params(const std::vector<Token>& t, std::size_t open,
                                  std::size_t close) {
  std::vector<ParamIR> out;
  for (const auto& item : split_args(t, open, close)) {
    if (item.empty()) continue;
    ParamIR p;
    bool has_const = false;
    bool has_ref = false;
    std::size_t eq = item.size();
    for (std::size_t q = 0; q < item.size(); ++q) {
      if (item[q] == "=") {
        eq = q;
        break;
      }
      if (item[q] == "const") has_const = true;
      if (item[q] == "&" || item[q] == "*" || item[q] == "&&") has_ref = true;
      if (item[q] == "atomic") p.is_atomic = true;
    }
    // Name: last identifier before any default argument.
    for (std::size_t q = eq; q > 0; --q) {
      const std::string& s = item[q - 1];
      if (!s.empty() && (std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) {
        p.name = s;
        break;
      }
    }
    if (p.name.empty() || p.name == "void") continue;
    p.writable = has_ref && !has_const;
    out.push_back(std::move(p));
  }
  return out;
}

/// Discover function definitions: `NAME(params) [specifiers] { body }`
/// where NAME is preceded by a type-ish token.  Constructor member-init
/// lists are tolerated; misparses simply drop the function from the IR.
std::vector<FuncSpan> find_functions(const FileUnit& u,
                                     const std::set<std::string>& unordered_names) {
  const auto& t = u.lex.tokens;
  std::vector<FuncSpan> out;
  for (std::size_t j = 1; j + 1 < t.size(); ++j) {
    if (!is_ident(t[j]) || non_callees().count(t[j].text)) continue;
    if (!is_punct(t[j + 1], "(")) continue;
    const Token& prev = t[j - 1];
    const bool type_before = is_ident(prev) || is_punct(prev, ">") || is_punct(prev, "*") ||
                             is_punct(prev, "&") || is_punct(prev, "&&") ||
                             is_punct(prev, "::") || is_punct(prev, "~");
    if (!type_before) continue;
    if (is_ident(prev) && non_callees().count(prev.text)) continue;
    const std::size_t close = match_forward(t, j + 1);
    if (close == kNpos) continue;

    // Skip specifiers / trailing return / constructor init list to the
    // body '{'.  Inside an init list, `a_{0}` / `a_(0)` braces and
    // parens are initializers, not the body: a '{' preceded by an
    // identifier while in_init is skipped over.
    std::size_t k = close + 1;
    bool in_init = false;
    bool ok = true;
    while (k < t.size()) {
      if (is_punct(t[k], "{")) {
        if (in_init && is_ident(t[k - 1])) {
          const std::size_t m = match_forward(t, k);
          if (m == kNpos) {
            ok = false;
            break;
          }
          k = m + 1;
          continue;
        }
        break;  // the body
      }
      if (is_punct(t[k], "(")) {
        const std::size_t m = match_forward(t, k);
        if (m == kNpos) {
          ok = false;
          break;
        }
        k = m + 1;
        continue;
      }
      if (is_punct(t[k], ":")) in_init = true;
      if (is_punct(t[k], ";") || is_punct(t[k], ")") || is_punct(t[k], "=") ||
          (is_punct(t[k], ",") && !in_init)) {
        ok = false;
        break;
      }
      ++k;
    }
    if (!ok || k >= t.size() || !is_punct(t[k], "{")) continue;
    const std::size_t bend = match_forward(t, k);
    if (bend == kNpos) continue;

    FuncSpan fs;
    fs.ir.name = t[j].text;
    fs.ir.line = t[j].line;
    fs.ir.params = parse_params(t, j + 1, close);
    fs.body_begin = k;
    fs.body_end = bend;
    fs.ir.locals = body_local_names(t, k, bend);
    for (const ParamIR& p : fs.ir.params) fs.ir.locals.insert(p.name);
    BodyFacts facts;
    collect_body(u, k, bend, unordered_names, facts);
    fs.ir.accesses = std::move(facts.accesses);
    fs.ir.calls = std::move(facts.calls);
    fs.ir.extents = std::move(facts.extents);
    fs.ir.taint_sources = std::move(facts.taint_sources);
    fs.ir.return_idents = std::move(facts.return_idents);
    out.push_back(std::move(fs));
    j = bend;
  }
  return out;
}

// --- ordering sites ---------------------------------------------------------

/// File-wide atomic-ordering scan — the exact site set the token-level
/// mo rules used before portaflow, plus enclosing-function attribution.
void collect_orders(const FileUnit& u, const std::vector<FuncSpan>& funcs,
                    FileIR& out) {
  const auto& t = u.lex.tokens;
  const auto atomics = atomic_var_names(t);

  auto enclosing = [&](std::size_t tok_index) -> const FuncSpan* {
    for (const FuncSpan& f : funcs) {
      if (tok_index > f.body_begin && tok_index < f.body_end) return &f;
    }
    return nullptr;
  };

  auto attribute = [&](OrderIR& o, std::size_t tok_index) {
    if (const FuncSpan* f = enclosing(tok_index)) {
      o.enclosing = f->ir.name;
      const int pi = f->ir.param_index(o.var);
      if (pi >= 0) {
        o.is_param = true;
        o.param_index = pi;
      }
    }
  };

  for (std::size_t j = 1; j + 1 < t.size(); ++j) {
    if (is_ident(t[j]) && atomic_member_ops().count(t[j].text) &&
        (is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->")) && is_punct(t[j + 1], "(")) {
      const std::size_t close = match_forward(t, j + 1);
      if (close == kNpos) continue;
      std::string var;
      if (j >= 2 && is_ident(t[j - 2])) var = t[j - 2].text;

      std::vector<std::string> orders;
      for (std::size_t q = j + 2; q < close; ++q) {
        if (!is_ident(t[q])) continue;
        const std::string& s = t[q].text;
        if (s.rfind("memory_order_", 0) == 0) {
          orders.push_back(s.substr(13));
        } else if (s == "memory_order" && q + 2 < close && is_punct(t[q + 1], "::") &&
                   is_ident(t[q + 2])) {
          orders.push_back(t[q + 2].text);
        }
      }
      // load/store need atomic evidence (see rules.cpp commentary): an
      // explicit memory_order, a receiver declared std::atomic in this
      // TU, or a receiver that is a std::atomic& parameter.
      bool param_atomic = false;
      if (const FuncSpan* f = enclosing(j)) {
        const int pi = f->ir.param_index(var);
        if (pi >= 0) param_atomic = f->ir.params[static_cast<std::size_t>(pi)].is_atomic;
      }
      const bool token_evidence =
          !(t[j].text == "load" || t[j].text == "store") || !orders.empty() ||
          atomics.count(var) > 0;
      if (!token_evidence && !param_atomic) continue;
      OrderIR o;
      o.var = var;
      o.op = t[j].text;
      o.token_visible = token_evidence;
      o.has_explicit_order = !orders.empty();
      o.line = t[j].line;
      o.excerpt = excerpt_at(u, o.line);
      const bool is_load = o.op == "load";
      const bool is_store = o.op == "store";
      if (orders.empty()) {  // implicit seq_cst
        o.acq = !is_store;
        o.rel = !is_load;
      }
      for (const std::string& ord : orders) {
        const bool strong = ord == "seq_cst" || ord == "acq_rel";
        if (!is_store && (ord == "acquire" || ord == "consume" || strong)) o.acq = true;
        if (!is_load && (ord == "release" || strong)) o.rel = true;
      }
      attribute(o, j);
      out.orders.push_back(std::move(o));
      continue;
    }

    // Operator forms on locally-declared atomics: ++x, x++, x += 1, x = v.
    if (is_ident(t[j]) && atomics.count(t[j].text)) {
      const Token& prev = t[j - 1];
      const Token& next = t[j + 1];
      const bool decl_site = is_ident(prev) || is_punct(prev, ">");
      const bool member = is_punct(prev, ".") || is_punct(prev, "->") || is_punct(prev, "::");
      static const std::set<std::string> kAtomicAssign = {
          "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=", "++", "--",
      };
      const bool op_next = next.kind == Tok::kPunct && kAtomicAssign.count(next.text);
      const bool op_prev = is_punct(prev, "++") || is_punct(prev, "--");
      if (!decl_site && !member && (op_next || op_prev)) {
        OrderIR o;
        o.var = t[j].text;
        o.op = op_prev ? prev.text : next.text;
        o.operator_form = true;
        o.acq = true;
        o.rel = true;
        o.line = t[j].line;
        o.excerpt = excerpt_at(u, o.line);
        attribute(o, j);
        out.orders.push_back(std::move(o));
      }
    }
  }
}

// --- launch lowering --------------------------------------------------------

/// Grid-index helper members whose results are lane-varying.
const std::set<std::string>& lane_helpers() {
  static const std::set<std::string> kHelpers = {
      "numba_grid2", "global_x", "global_y", "global_z", "lane_in_block",
      "global_id",
  };
  return kHelpers;
}

/// Multiply two dim expressions into one token vector: (a) * (b).
std::vector<std::string> dim_product(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  std::vector<std::string> out;
  out.push_back("(");
  out.insert(out.end(), a.begin(), a.end());
  out.push_back(")");
  out.push_back("*");
  out.push_back("(");
  out.insert(out.end(), b.begin(), b.end());
  out.push_back(")");
  return out;
}

void lower_launch(const FileUnit& u, const DispatchSite& site,
                  std::vector<FuncSpan>& funcs,
                  const std::set<std::string>& unordered_names, FileIR& out) {
  const auto& t = u.lex.tokens;
  const LambdaInfo& l = site.lambda;
  LaunchIR lr;
  lr.call = l.call;
  lr.line = l.line;
  lr.serialized = site.serialized;
  lr.cap_default = l.cap_default;
  lr.ref_caps = l.ref_caps;
  lr.val_caps = l.val_caps;
  lr.params = l.params;
  lr.locals = body_local_names(t, l.body_begin, l.body_end);
  for (const std::string& p : l.params) lr.locals.insert(p);

  for (const FuncSpan& f : funcs) {
    if (l.body_begin > f.body_begin && l.body_end < f.body_end) {
      lr.enclosing_function = f.ir.name;
      break;
    }
  }

  // Lane names and bounds.
  // parallel_for(space, RangePolicy{b, e}, [..](i) {..}): param i < e.
  // launch(ctx, {gx,..}, {bx,..}, [..](tc) {..}): grid/block products.
  std::vector<std::vector<std::string>> grid_dims;
  std::vector<std::vector<std::string>> block_dims;
  if (l.call == "parallel_for" || l.call == "parallel_reduce" || l.call == "parallel_scan") {
    for (const std::string& p : l.params) lr.lane_names.insert(p);
    // Find the RangePolicy argument: RangePolicy {|( B , E )|}.
    for (const auto& arg : site.leading_args) {
      for (std::size_t q = 0; q + 1 < arg.size(); ++q) {
        if (arg[q] == "RangePolicy" && (arg[q + 1] == "{" || arg[q + 1] == "(")) {
          // Split the interior on the top-level comma.
          int depth = 0;
          std::size_t comma = 0;
          for (std::size_t r = q + 2; r + 1 < arg.size(); ++r) {
            if (arg[r] == "(" || arg[r] == "{" || arg[r] == "[") ++depth;
            if (arg[r] == ")" || arg[r] == "}" || arg[r] == "]") --depth;
            if (depth == 0 && arg[r] == ",") {
              comma = r;
              break;
            }
          }
          if (comma != 0 && q + 2 < comma && arg[q + 2] == "0" && comma - (q + 2) == 1 &&
              !l.params.empty()) {
            // Begin is literal 0: the sole lane param is < end.
            std::vector<std::string> end_expr(arg.begin() + static_cast<long>(comma) + 1,
                                              arg.end() - 1);
            if (!end_expr.empty()) lr.lane_bounds.emplace_back(l.params[0], end_expr);
          }
        }
      }
    }
  } else if (l.call == "launch" || l.call == "launch_blocks") {
    // Leading args: (engine/ctx, grid, block[, shared]).  Dims given as
    // brace lists of 1-3 expressions; bare identifiers are opaque.
    std::vector<std::vector<std::vector<std::string>>> dim_args;
    for (const auto& arg : site.leading_args) {
      if (arg.size() >= 2 && arg.front() == "{" && arg.back() == "}") {
        std::vector<std::vector<std::string>> dims;
        std::vector<std::string> cur;
        int depth = 0;
        for (std::size_t q = 1; q + 1 < arg.size(); ++q) {
          if (arg[q] == "(" || arg[q] == "{" || arg[q] == "[") ++depth;
          if (arg[q] == ")" || arg[q] == "}" || arg[q] == "]") --depth;
          if (depth == 0 && arg[q] == ",") {
            dims.push_back(cur);
            cur.clear();
          } else {
            cur.push_back(arg[q]);
          }
        }
        if (!cur.empty()) dims.push_back(cur);
        dim_args.push_back(std::move(dims));
      }
    }
    if (dim_args.size() >= 2) {
      grid_dims = dim_args[0];
      block_dims = dim_args[1];
    }
  }

  // Structured bindings from grid helpers: auto [i, j] = tc.numba_grid2();
  // and scalar forms: const auto i = tc.global_x();
  for (std::size_t j = l.body_begin + 1; j + 1 < l.body_end; ++j) {
    if (!is_ident(t[j]) || !lane_helpers().count(t[j].text)) continue;
    if (!(is_punct(t[j - 1], ".") || is_punct(t[j - 1], "->"))) continue;
    // Walk back over `= receiver.` to the declared name(s).
    std::size_t q = j - 2;           // receiver ident
    if (q == 0 || !is_ident(t[q])) continue;
    if (q < 2 || !is_punct(t[q - 1], "=")) continue;
    const std::size_t lhs = q - 2;  // last token of the LHS
    const std::string& helper = t[j].text;
    auto dim_bound = [&](std::size_t axis) -> std::vector<std::string> {
      if (axis < grid_dims.size() && axis < block_dims.size()) {
        return dim_product(grid_dims[axis], block_dims[axis]);
      }
      return {};
    };
    if (is_punct(t[lhs], "]")) {
      // auto [i, j] = tc.numba_grid2(): i <- axis x, j <- axis y.
      std::size_t open = lhs;
      int depth = 0;
      while (open > l.body_begin) {
        if (is_punct(t[open], "]")) ++depth;
        if (is_punct(t[open], "[") && --depth == 0) break;
        --open;
      }
      std::vector<std::string> names;
      for (std::size_t r = open + 1; r < lhs; ++r) {
        if (is_ident(t[r])) names.push_back(t[r].text);
      }
      if (helper == "numba_grid2" && names.size() == 2) {
        lr.lane_names.insert(names[0]);
        lr.lane_names.insert(names[1]);
        auto bx = dim_bound(0);
        auto by = dim_bound(1);
        if (!bx.empty()) lr.lane_bounds.emplace_back(names[0], bx);
        if (!by.empty()) lr.lane_bounds.emplace_back(names[1], by);
      }
    } else if (is_ident(t[lhs])) {
      lr.lane_names.insert(t[lhs].text);
      std::size_t axis = 3;
      if (helper == "global_x") axis = 0;
      if (helper == "global_y") axis = 1;
      if (helper == "global_z") axis = 2;
      if (axis < 3) {
        auto b = dim_bound(axis);
        if (!b.empty()) lr.lane_bounds.emplace_back(t[lhs].text, b);
      }
    }
  }

  BodyFacts facts;
  collect_body(u, l.body_begin, l.body_end, unordered_names, facts);
  lr.accesses = std::move(facts.accesses);
  lr.calls = std::move(facts.calls);
  for (ExtentIR& e : facts.extents) {
    // Extents declared inside the body belong to the enclosing function
    // scope for lookup purposes; attach them to the launch's function.
    for (FuncSpan& f : funcs) {
      if (f.ir.name == lr.enclosing_function) {
        f.ir.extents.push_back(e);
        break;
      }
    }
  }
  out.launches.push_back(std::move(lr));
}

/// Names declared as unordered containers anywhere in the file (for the
/// unordered-iter taint source).
std::set<std::string> unordered_container_names(const std::vector<Token>& t) {
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
  };
  std::set<std::string> names;
  for (std::size_t j = 0; j + 1 < t.size(); ++j) {
    if (!is_ident(t[j]) || !kUnordered.count(t[j].text)) continue;
    std::size_t k = j + 1;
    if (is_punct(t[k], "<")) {
      const std::size_t m = match_forward(t, k);
      if (m == kNpos) continue;
      k = m + 1;
    }
    if (k < t.size() && is_ident(t[k])) names.insert(t[k].text);
  }
  return names;
}

}  // namespace

bool LaunchIR::captures_by_ref(const std::string& name) const {
  if (std::find(ref_caps.begin(), ref_caps.end(), name) != ref_caps.end()) return true;
  if (cap_default == '&' &&
      std::find(val_caps.begin(), val_caps.end(), name) == val_caps.end()) {
    return true;
  }
  return false;
}

bool LaunchIR::captures_by_value(const std::string& name) const {
  if (std::find(val_caps.begin(), val_caps.end(), name) != val_caps.end()) return true;
  if (cap_default == '=' &&
      std::find(ref_caps.begin(), ref_caps.end(), name) == ref_caps.end()) {
    return true;
  }
  return false;
}

FileIR build_ir(const FileUnit& u) {
  FileIR out;
  out.rel = u.rel;
  const auto& t = u.lex.tokens;
  out.atomics = atomic_var_names(t);
  const auto unordered_names = unordered_container_names(t);

  std::vector<FuncSpan> funcs = find_functions(u, unordered_names);
  for (const DispatchSite& site : find_dispatch_sites(t)) {
    lower_launch(u, site, funcs, unordered_names, out);
  }
  // Queue/stream ops lower through the same path but land in the
  // serialized launch class (see LaunchIR::serialized).
  for (const DispatchSite& site : find_queue_sites(t)) {
    lower_launch(u, site, funcs, unordered_names, out);
  }
  collect_orders(u, funcs, out);
  for (FuncSpan& f : funcs) out.functions.push_back(std::move(f.ir));
  return out;
}

}  // namespace portalint
