// portaflow incremental analysis cache.
//
// Keyed by (root-relative path, FNV-1a content hash).  A warm entry lets
// the engine skip the expensive per-file work — lexing, the token rules,
// and IR lowering — while still reading the file once (the hash needs
// the bytes, and excerpts/suppression filtering need the lines).  The
// whole-tree passes (mo-balance, hy-include-cycle, the fl-* flow rules)
// always run fresh over the cached IRs, so cross-file findings are never
// staler than the tree.
//
// The on-disk format is line-based text with a version stamp; any parse
// problem or version mismatch silently discards the cache (a cold run is
// always correct).  kCacheVersion must be bumped whenever rule output,
// IR shape, or this format changes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ir.hpp"
#include "model.hpp"

namespace portalint {

inline constexpr std::string_view kCacheVersion = "portalint-cache v2";  // v2: ln serialized bit

/// A finding minus its FileUnit binding (re-bound on load).
struct CachedFinding {
  std::string rule;
  std::string family;
  std::string message;
  int line = 0;
  std::string excerpt;
};

/// Everything per-file analysis produces for one content hash.
struct CacheEntry {
  std::uint64_t hash = 0;
  std::vector<CachedFinding> findings;  // run_file_rules output
  FileIR ir;
  std::map<int, std::vector<Suppression>> suppressions;
  std::vector<std::pair<int, std::string>> quoted_includes;
};

[[nodiscard]] std::uint64_t fnv1a(std::string_view s);

class AnalysisCache {
 public:
  /// Load from disk.  Returns false (leaving the cache empty) when the
  /// file is missing, unreadable, version-mismatched, or corrupt.
  bool load(const std::filesystem::path& file);

  /// Persist every entry.  Best-effort: failures are silent (the next
  /// run is merely cold).
  void save(const std::filesystem::path& file) const;

  /// Entry for `rel` if present with a matching content hash.
  [[nodiscard]] const CacheEntry* lookup(const std::string& rel, std::uint64_t hash) const;

  void put(const std::string& rel, CacheEntry entry);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// True when put() added or replaced anything since load() — a fully
  /// warm run leaves the cache clean and can skip rewriting it.
  [[nodiscard]] bool dirty() const { return dirty_; }

 private:
  std::map<std::string, CacheEntry> entries_;
  bool dirty_ = false;
};

}  // namespace portalint
