#include "sarif.hpp"

#include <map>
#include <ostream>

#include "rules.hpp"

namespace portalint {

namespace {

const char* level_for(const std::string& family) {
  // Hygiene nits are notes; everything else can be a real bug.
  return family == "hygiene" ? "note" : "warning";
}

void print_location(const FileUnit& unit, int line, const std::string& snippet,
                    std::ostream& os) {
  os << "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"" << json_escape(unit.rel)
     << "\",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":" << (line > 0 ? line : 1);
  if (!snippet.empty()) {
    os << ",\"snippet\":{\"text\":\"" << json_escape(snippet) << "\"}";
  }
  os << "}}}";
}

}  // namespace

void print_sarif(const Result& r, std::ostream& os) {
  const auto& rules = all_rules();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rules.size(); ++i) rule_index[rules[i].id] = i;

  os << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
        "\"version\":\"2.1.0\",\"runs\":[{";
  os << "\"tool\":{\"driver\":{\"name\":\"portalint\","
        "\"informationUri\":\"https://example.invalid/portabench/docs/LINT.md\","
        "\"version\":\"1.0.0\",\"rules\":[";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (i) os << ",";
    os << "{\"id\":\"" << json_escape(rules[i].id) << "\",\"shortDescription\":{\"text\":\""
       << json_escape(rules[i].summary) << "\"},\"properties\":{\"family\":\""
       << json_escape(rules[i].family) << "\"}}";
  }
  os << "]}},";

  os << "\"originalUriBaseIds\":{\"SRCROOT\":{\"uri\":\"file://"
     << json_escape(r.root.generic_string()) << "/\"}},";

  os << "\"results\":[";
  for (std::size_t i = 0; i < r.active.size(); ++i) {
    const Finding& f = r.active[i];
    if (i) os << ",";
    os << "{\"ruleId\":\"" << json_escape(f.rule) << "\"";
    const auto it = rule_index.find(f.rule);
    if (it != rule_index.end()) os << ",\"ruleIndex\":" << it->second;
    os << ",\"level\":\"" << level_for(f.family) << "\",\"message\":{\"text\":\""
       << json_escape(f.message) << "\"},\"locations\":[";
    print_location(*f.unit, f.line, f.excerpt, os);
    os << "]";
    if (!f.related.empty()) {
      os << ",\"relatedLocations\":[";
      for (std::size_t ri = 0; ri < f.related.size(); ++ri) {
        const RelatedSite& s = f.related[ri];
        if (ri) os << ",";
        os << "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
           << json_escape(s.unit->rel)
           << "\",\"uriBaseId\":\"SRCROOT\"},\"region\":{\"startLine\":"
           << (s.line > 0 ? s.line : 1) << "}},\"message\":{\"text\":\""
           << json_escape(s.note) << "\"}}";
      }
      os << "]";
    }
    os << "}";
  }
  os << "]}]}\n";
}

}  // namespace portalint
