// portalint rule registry.
//
// Four families (see docs/LINT.md):
//   lane-safety   ls-capture-write, ls-nonlane-store, ls-ptr-capture,
//                 fl-shared-write-escape, fl-unproved-bounds
//   concurrency   mo-explicit, mo-balance, raw-thread, fl-unpaired-ordering
//   determinism   det-rand, det-unordered, fl-det-taint
//   hygiene       hy-pragma-once, hy-using-ns, hy-include-cycle
//
// The fl-* rules are implemented by the portaflow passes (flow.hpp) over
// the per-file IR; everything else is token-level.
#pragma once

#include <string>
#include <vector>

#include "ir.hpp"
#include "model.hpp"

namespace portalint {

struct RuleDesc {
  std::string id;
  std::string family;
  std::string summary;
};

/// Static descriptions of every rule (for --list-rules and docs tests).
[[nodiscard]] const std::vector<RuleDesc>& all_rules();

/// Path-scope predicates shared between the token rules and the flow
/// passes (documented in docs/LINT.md).  Tests are exempt from the
/// concurrency rules; fixture files opt back into everything.
[[nodiscard]] bool scope_in_tests(const FileUnit& u);
/// src/common/rng is the sanctioned home for randomness.
[[nodiscard]] bool scope_rng_exempt(const FileUnit& u);

/// Per-file token rules only (everything except mo-balance and
/// hy-include-cycle).  Cacheable: depends on nothing but the file.
[[nodiscard]] std::vector<Finding> run_file_rules(const FileUnit& u);

/// Whole-tree rules: hy-include-cycle, and — when `legacy_mo_balance`
/// — the name-matching mo-balance reconstructed from the IR ordering
/// sites (identical to the historical token scan).  With portaflow
/// enabled the engine passes false and the ordering pass in
/// flow_lane.cpp emits mo-balance/fl-unpaired-ordering instead.
[[nodiscard]] std::vector<Finding> run_global_rules(const Project& project,
                                                    const std::vector<FileIR>& irs,
                                                    bool legacy_mo_balance);

/// Run every token rule over the project (no flow passes): per-file
/// rules plus legacy global rules.  Emitted findings are NOT yet
/// filtered by inline suppressions or the baseline (the engine does
/// that), with one exception: multi-site rules (mo-balance,
/// hy-include-cycle) honor suppressions on any participating line
/// themselves, since a single anchor line cannot represent them.
[[nodiscard]] std::vector<Finding> run_rules(const Project& project);

}  // namespace portalint
