// portalint rule registry.
//
// Four families (see docs/LINT.md):
//   lane-safety   ls-capture-write, ls-nonlane-store, ls-ptr-capture
//   concurrency   mo-explicit, mo-balance, raw-thread
//   determinism   det-rand, det-unordered
//   hygiene       hy-pragma-once, hy-using-ns, hy-include-cycle
#pragma once

#include <string>
#include <vector>

#include "model.hpp"

namespace portalint {

struct RuleDesc {
  std::string id;
  std::string family;
  std::string summary;
};

/// Static descriptions of every rule (for --list-rules and docs tests).
[[nodiscard]] const std::vector<RuleDesc>& all_rules();

/// Run every rule over the project.  Emitted findings are NOT yet
/// filtered by inline suppressions or the baseline (the engine does
/// that), with one exception: multi-site rules (mo-balance,
/// hy-include-cycle) honor suppressions on any participating line
/// themselves, since a single anchor line cannot represent them.
[[nodiscard]] std::vector<Finding> run_rules(const Project& project);

}  // namespace portalint
