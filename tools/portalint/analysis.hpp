// Token-stream analyses shared by the rule implementations: balanced
// bracket matching, dispatch-lambda extraction, and heuristic collection
// of declared names (locals, atomics, raw pointers).
//
// The heuristics are deliberately asymmetric: when classification is
// ambiguous they err toward treating a name as locally-owned / benign,
// so rules stay quiet rather than noisy.  Known-bad patterns are pinned
// by the fixture corpus in tests/portalint/fixtures/.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace portalint {

inline constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// Index of the token matching the opener at `open` ('(', '[', '{' or
/// '<'), or kNpos if unbalanced.
[[nodiscard]] std::size_t match_forward(const std::vector<Token>& t, std::size_t open);

/// A lambda passed as a direct argument to a parallel-dispatch or kernel
/// launch call (parallel_for, parallel_reduce, launch, pool.run, ...).
struct LambdaInfo {
  std::string call;  // the dispatch call's identifier
  int line = 0;      // line of the '[' capture introducer
  char cap_default = 0;  // '&', '=' or 0
  std::vector<std::string> ref_caps;
  std::vector<std::string> val_caps;
  std::vector<std::string> params;
  std::size_t body_begin = kNpos;  // token index of '{'
  std::size_t body_end = kNpos;    // token index of matching '}'
};

/// All lambdas appearing as direct arguments of calls in the dispatch
/// call-name set.  Named lambdas bound to variables first are not traced.
[[nodiscard]] std::vector<LambdaInfo> find_dispatch_lambdas(const std::vector<Token>& t);

/// A dispatch call site together with the arguments preceding its lambda
/// (execution space, RangePolicy, grid/block dims, ...), which the
/// portaflow bounds pass reads launch extents from.
struct DispatchSite {
  LambdaInfo lambda;
  /// Flattened token texts per top-level argument before the lambda.
  std::vector<std::vector<std::string>> leading_args;
  /// True for queue/stream entry points (enqueue, copy_*_async,
  /// run_pipeline, ...): the lambda executes serialized in stream order
  /// rather than as parallel lanes.
  bool serialized = false;
};

/// Like find_dispatch_lambdas, but keeps the leading call arguments.
[[nodiscard]] std::vector<DispatchSite> find_dispatch_sites(const std::vector<Token>& t);

/// Lambdas passed to queue/stream entry points (Stream::enqueue, the
/// copy_async family, the pipeline drivers).  Same scan as
/// find_dispatch_sites but over the serialized call-name set; sites
/// come back with `serialized = true`.
[[nodiscard]] std::vector<DispatchSite> find_queue_sites(const std::vector<Token>& t);

/// Heuristic set of names declared inside the token range (begin, end):
/// an identifier preceded by a type-ish token (identifier, '>', '*', '&',
/// '&&', ']') and followed by '=', '{', ';', ',', ')' or ':', plus every
/// name introduced by a structured binding (`auto [i, j] = ...`).
[[nodiscard]] std::set<std::string> body_local_names(const std::vector<Token>& t,
                                                     std::size_t begin, std::size_t end);

/// Names declared as std::atomic<...>/atomic_flag anywhere in the file.
[[nodiscard]] std::set<std::string> atomic_var_names(const std::vector<Token>& t);

/// Names declared as raw pointers (`T* p = ...`, `T* p;`, `T* p,`/`)`)
/// anywhere in the file — function locals and parameters alike.
[[nodiscard]] std::set<std::string> pointer_var_names(const std::vector<Token>& t);

/// True if the lambda captures `name` by reference ([&] default not
/// overridden by a by-value capture, or an explicit &name capture).
[[nodiscard]] bool captures_by_ref(const LambdaInfo& l, const std::string& name);

/// True if the lambda captures `name` by value ([=] default not
/// overridden by a by-reference capture, or an explicit value capture).
[[nodiscard]] bool captures_by_value(const LambdaInfo& l, const std::string& name);

}  // namespace portalint
