#include "engine.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "cache.hpp"
#include "flow.hpp"
#include "rules.hpp"

namespace portalint {

namespace fs = std::filesystem;

// --- model helpers ----------------------------------------------------------

std::string normalize_excerpt(std::string_view s) {
  std::string out;
  bool in_ws = true;
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!in_ws) out += ' ';
      in_ws = true;
    } else {
      out += c;
      in_ws = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool FileUnit::has_component(std::string_view comp) const {
  std::size_t start = 0;
  while (start <= rel.size()) {
    const std::size_t slash = rel.find('/', start);
    const std::string_view part =
        std::string_view(rel).substr(start, slash == std::string::npos ? rel.size() - start
                                                                       : slash - start);
    if (part == comp) return true;
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return false;
}

std::string FileUnit::line_text(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return {};
  return lines[static_cast<std::size_t>(line) - 1];
}

std::string finding_path_key(const Finding& f) {
  std::string key = f.unit->rel;
  std::set<std::string> extra;
  for (const RelatedSite& s : f.related) {
    if (s.unit != nullptr && s.unit->rel != f.unit->rel) extra.insert(s.unit->rel);
  }
  for (const std::string& rel : extra) {
    key += "+";
    key += rel;
  }
  return key;
}

const Suppression* FileUnit::find_suppression(int line, std::string_view rule) const {
  for (int probe : {line, line - 1}) {
    auto it = suppressions.find(probe);
    if (it == suppressions.end()) continue;
    for (const Suppression& s : it->second) {
      if (rule == s.rule_prefix) return &s;
      if (rule.size() > s.rule_prefix.size() && rule.substr(0, s.rule_prefix.size()) == s.rule_prefix &&
          rule[s.rule_prefix.size()] == '-') {
        return &s;
      }
    }
  }
  return nullptr;
}

// --- file loading -----------------------------------------------------------

namespace {

/// Parse "portalint: <rule>-ok(reason) [<rule>-ok(reason) ...]" comments.
std::vector<Suppression> parse_suppressions(const std::string& text) {
  std::vector<Suppression> out;
  const std::size_t tag = text.find("portalint:");
  if (tag == std::string::npos) return out;
  std::size_t pos = tag + 10;
  for (;;) {
    const std::size_t ok = text.find("-ok(", pos);
    if (ok == std::string::npos) break;
    std::size_t start = ok;
    while (start > pos) {
      const char c = text[start - 1];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-') {
        --start;
      } else {
        break;
      }
    }
    const std::size_t close = text.find(')', ok + 4);
    if (start == ok || close == std::string::npos) break;
    out.push_back({text.substr(start, ok - start), text.substr(ok + 4, close - ok - 4)});
    pos = close + 1;
  }
  return out;
}

bool header_extension(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".h" || e == ".hxx" || e == ".hh";
}

bool scannable_extension(const fs::path& p) {
  const std::string e = p.extension().string();
  return header_extension(p) || e == ".cpp" || e == ".cc" || e == ".cxx" || e == ".ipp";
}

bool path_has_component(const fs::path& p, std::string_view comp) {
  for (const auto& part : p) {
    if (part.string() == comp) return true;
  }
  return false;
}

/// Path/rel/lines only — everything that does not require lexing.
FileUnit make_unit_base(const fs::path& path, const fs::path& root, const std::string& source) {
  FileUnit u;
  u.path = fs::absolute(path).lexically_normal();
  fs::path rel = u.path.lexically_relative(fs::absolute(root).lexically_normal());
  u.rel = (rel.empty() || rel.native().starts_with("..")) ? u.path.generic_string()
                                                          : rel.generic_string();
  u.is_header = header_extension(path);
  u.is_fixture = path_has_component(u.path, "fixtures");

  std::string line;
  std::istringstream ls(source);
  while (std::getline(ls, line)) u.lines.push_back(line);
  return u;
}

/// Lex and derive the token-dependent fields (directives, suppressions).
/// A cache hit skips this and restores the derived fields from the entry.
void lex_unit(FileUnit& u, const std::string& source) {
  u.lex = lex(source);
  for (const Directive& d : u.lex.directives) {
    if (d.text == "pragma once") u.has_pragma_once = true;
    if (d.text.rfind("include", 0) == 0) {
      const std::size_t q1 = d.text.find('"');
      const std::size_t q2 = q1 == std::string::npos ? q1 : d.text.find('"', q1 + 1);
      if (q2 != std::string::npos) {
        u.quoted_includes.emplace_back(d.line, d.text.substr(q1 + 1, q2 - q1 - 1));
      }
    }
  }
  for (const Comment& c : u.lex.comments) {
    auto sups = parse_suppressions(c.text);
    if (!sups.empty()) {
      auto& slot = u.suppressions[c.end_line];
      slot.insert(slot.end(), sups.begin(), sups.end());
    }
  }
}

}  // namespace

std::optional<FileUnit> load_file(const fs::path& path, const fs::path& root) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();
  FileUnit u = make_unit_base(path, root, source);
  lex_unit(u, source);
  return u;
}

// --- baseline ---------------------------------------------------------------

std::vector<BaselineEntry> parse_baseline(const std::string& text,
                                          std::vector<std::string>& errors) {
  std::vector<BaselineEntry> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = normalize_excerpt(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    // rule :: path :: excerpt :: justification
    std::vector<std::string> fields;
    std::size_t pos = 0;
    for (int i = 0; i < 3; ++i) {
      const std::size_t sep = trimmed.find(" :: ", pos);
      if (sep == std::string::npos) break;
      fields.push_back(trimmed.substr(pos, sep - pos));
      pos = sep + 4;
    }
    if (fields.size() != 3) {
      errors.push_back("portalint.baseline:" + std::to_string(lineno) +
                       ": malformed entry (want 'rule :: path :: excerpt :: why')");
      continue;
    }
    BaselineEntry e;
    e.rule = fields[0];
    e.rel = fields[1];
    e.excerpt = fields[2];
    e.justification = trimmed.substr(pos);
    e.source_line = lineno;
    if (e.justification.empty()) {
      errors.push_back("portalint.baseline:" + std::to_string(lineno) +
                       ": entry for " + e.rule + " lacks a justification");
      continue;
    }
    out.push_back(std::move(e));
  }
  return out;
}

// --- pipeline ---------------------------------------------------------------

namespace {

void discover(const fs::path& input, bool include_fixtures, std::vector<fs::path>& files,
              std::vector<std::string>& errors) {
  std::error_code ec;
  if (fs::is_regular_file(input, ec)) {
    files.push_back(input);
    return;
  }
  if (!fs::is_directory(input, ec)) {
    errors.push_back("cannot read input: " + input.string());
    return;
  }
  // An input that already points into a fixtures tree is explicit intent.
  const bool inside_fixtures = path_has_component(fs::absolute(input), "fixtures");
  auto it = fs::recursive_directory_iterator(
      input, fs::directory_options::skip_permission_denied, ec);
  if (ec) {
    errors.push_back("cannot walk input: " + input.string());
    return;
  }
  for (; it != fs::recursive_directory_iterator(); ++it) {
    const fs::path& p = it->path();
    const std::string name = p.filename().string();
    if (it->is_directory()) {
      if (name.starts_with(".") || name == "build" ||
          (name == "fixtures" && !include_fixtures && !inside_fixtures)) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!it->is_regular_file() || !scannable_extension(p)) continue;
    // Recursion pruning hides fixtures *directories*, but a symlink file
    // inside a scanned directory can still point into one — resolve it
    // and apply the same skip.
    if (!include_fixtures && !inside_fixtures && fs::is_symlink(it->symlink_status())) {
      const fs::path target = fs::weakly_canonical(p, ec);
      if (!ec && path_has_component(target, "fixtures")) continue;
    }
    files.push_back(p);
  }
}

fs::path find_baseline_upward(const fs::path& start) {
  std::error_code ec;
  fs::path dir = fs::absolute(start, ec);
  if (!fs::is_directory(dir, ec)) dir = dir.parent_path();
  for (int depth = 0; depth < 64 && !dir.empty(); ++depth) {
    const fs::path cand = dir / "portalint.baseline";
    if (fs::is_regular_file(cand, ec)) return cand;
    const fs::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return {};
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void print_finding_json(const Finding& f, std::ostream& os) {
  os << "{\"rule\":\"" << json_escape(f.rule) << "\",\"family\":\"" << json_escape(f.family)
     << "\",\"file\":\"" << json_escape(f.unit->rel) << "\",\"line\":" << f.line
     << ",\"message\":\"" << json_escape(f.message) << "\",\"excerpt\":\""
     << json_escape(f.excerpt) << "\"";
  if (!f.related.empty()) {
    os << ",\"path_key\":\"" << json_escape(finding_path_key(f)) << "\",\"related\":[";
    for (std::size_t i = 0; i < f.related.size(); ++i) {
      if (i) os << ",";
      os << "{\"file\":\"" << json_escape(f.related[i].unit->rel)
         << "\",\"line\":" << f.related[i].line << ",\"note\":\""
         << json_escape(f.related[i].note) << "\"}";
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

Result run_portalint(const Options& opts) {
  Result r;

  // Baseline + root resolution.
  fs::path baseline_path = opts.baseline_path;
  if (opts.use_baseline && baseline_path.empty() && !opts.inputs.empty()) {
    baseline_path = find_baseline_upward(opts.inputs.front());
  }
  r.root = !opts.root.empty()
               ? fs::absolute(opts.root)
               : (!baseline_path.empty()
                      ? fs::absolute(baseline_path).parent_path()
                      : (!opts.inputs.empty() ? fs::absolute(opts.inputs.front()).parent_path()
                                              : fs::current_path()));

  std::vector<fs::path> files;
  for (const fs::path& input : opts.inputs) {
    discover(input, opts.include_fixtures, files, r.errors);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  AnalysisCache cache;
  const bool use_cache = !opts.cache_path.empty();
  if (use_cache) cache.load(opts.cache_path);  // failure leaves it empty: cold run

  // Phase 1: load every unit first so FileUnit pointers are stable before
  // any Finding or flow pass captures them.
  auto project_owner = std::make_shared<Project>();
  Project& project = *project_owner;
  r.project = project_owner;
  project.root = r.root;
  std::vector<std::uint64_t> hashes;
  std::vector<const CacheEntry*> hits;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      r.errors.push_back("cannot read file: " + f.string());
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    const std::uint64_t hash = fnv1a(source);

    FileUnit u = make_unit_base(f, r.root, source);
    const CacheEntry* hit = use_cache ? cache.lookup(u.rel, hash) : nullptr;
    if (hit != nullptr) {
      // Warm: skip the lexer; restore the token-derived fields the
      // global passes still need.
      u.suppressions = hit->suppressions;
      u.quoted_includes = hit->quoted_includes;
    } else {
      lex_unit(u, source);
    }
    project.files.push_back(std::move(u));
    hashes.push_back(hash);
    hits.push_back(hit);
  }
  r.files_scanned = project.files.size();

  std::vector<BaselineEntry> baseline;
  if (opts.use_baseline && !baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      baseline = parse_baseline(buf.str(), r.errors);
    } else {
      r.errors.push_back("cannot read baseline: " + baseline_path.string());
    }
  }

  // Phase 2: per-file rules + IR, served from the cache when warm.
  std::vector<Finding> findings;
  std::vector<FileIR> irs;
  irs.reserve(project.files.size());
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    FileUnit& u = project.files[i];
    if (hits[i] != nullptr) {
      ++r.cache_hits;
      for (const CachedFinding& cf : hits[i]->findings) {
        findings.push_back({cf.rule, cf.family, cf.message, &u, cf.line, cf.excerpt, {}});
      }
      irs.push_back(hits[i]->ir);
      continue;
    }
    std::vector<Finding> ff = run_file_rules(u);
    FileIR ir = build_ir(u);
    if (use_cache) {
      CacheEntry e;
      e.hash = hashes[i];
      for (const Finding& f : ff) {
        e.findings.push_back({f.rule, f.family, f.message, f.line, f.excerpt});
      }
      e.ir = ir;
      e.suppressions = u.suppressions;
      e.quoted_includes = u.quoted_includes;
      cache.put(u.rel, std::move(e));
    }
    findings.insert(findings.end(), ff.begin(), ff.end());
    irs.push_back(std::move(ir));
  }

  // Whole-tree passes always run fresh over the (possibly cached) IRs.
  {
    std::vector<Finding> global = run_global_rules(project, irs, !opts.run_flow);
    findings.insert(findings.end(), global.begin(), global.end());
  }
  if (opts.run_flow) {
    std::vector<Finding> flow = run_flow(project, irs);
    findings.insert(findings.end(), flow.begin(), flow.end());
  }
  std::stable_sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.unit->rel != b.unit->rel) return a.unit->rel < b.unit->rel;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });

  std::vector<bool> baseline_hit(baseline.size(), false);
  for (Finding& f : findings) {
    if (const Suppression* s = f.unit->find_suppression(f.line, f.rule)) {
      f.message += " [suppressed: " + s->reason + "]";
      r.suppressed.push_back(f);
      continue;
    }
    const std::string path_key = finding_path_key(f);
    bool matched = false;
    for (std::size_t b = 0; b < baseline.size(); ++b) {
      if (baseline[b].rule == f.rule && baseline[b].rel == path_key &&
          baseline[b].excerpt == f.excerpt) {
        baseline_hit[b] = true;
        matched = true;
      }
    }
    if (matched) {
      r.baselined.push_back(f);
    } else {
      r.active.push_back(f);
    }
  }
  for (std::size_t b = 0; b < baseline.size(); ++b) {
    if (!baseline_hit[b]) r.stale.push_back(baseline[b]);
  }

  if (use_cache && cache.dirty()) cache.save(opts.cache_path);
  return r;
}

// --- reports ----------------------------------------------------------------

void print_text(const Result& r, std::ostream& os) {
  for (const std::string& e : r.errors) os << "portalint: error: " << e << "\n";
  for (const Finding& f : r.active) {
    os << f.unit->rel << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    if (!f.excerpt.empty()) os << "    " << f.excerpt << "\n";
  }
  for (const BaselineEntry& e : r.stale) {
    os << "portalint.baseline:" << e.source_line << ": stale entry: [" << e.rule << "] "
       << e.rel << " no longer triggers — remove it (" << e.excerpt << ")\n";
  }
  os << "portalint: " << r.files_scanned << " files, " << r.active.size() << " finding"
     << (r.active.size() == 1 ? "" : "s") << " (" << r.suppressed.size() << " suppressed, "
     << r.baselined.size() << " baselined, " << r.stale.size() << " stale baseline entr"
     << (r.stale.size() == 1 ? "y" : "ies") << ")\n";
}

void print_json(const Result& r, std::ostream& os) {
  os << "{\"version\":1,\"root\":\"" << json_escape(r.root.generic_string()) << "\",";
  os << "\"findings\":[";
  for (std::size_t i = 0; i < r.active.size(); ++i) {
    if (i) os << ",";
    print_finding_json(r.active[i], os);
  }
  os << "],\"suppressed\":[";
  for (std::size_t i = 0; i < r.suppressed.size(); ++i) {
    if (i) os << ",";
    print_finding_json(r.suppressed[i], os);
  }
  os << "],\"baselined\":[";
  for (std::size_t i = 0; i < r.baselined.size(); ++i) {
    if (i) os << ",";
    print_finding_json(r.baselined[i], os);
  }
  os << "],\"stale_baseline\":[";
  for (std::size_t i = 0; i < r.stale.size(); ++i) {
    if (i) os << ",";
    os << "{\"rule\":\"" << json_escape(r.stale[i].rule) << "\",\"file\":\""
       << json_escape(r.stale[i].rel) << "\",\"excerpt\":\""
       << json_escape(r.stale[i].excerpt) << "\"}";
  }
  os << "],\"errors\":[";
  for (std::size_t i = 0; i < r.errors.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(r.errors[i]) << "\"";
  }
  os << "],\"summary\":{\"files\":" << r.files_scanned << ",\"findings\":" << r.active.size()
     << ",\"suppressed\":" << r.suppressed.size() << ",\"baselined\":" << r.baselined.size()
     << ",\"stale\":" << r.stale.size() << "}}\n";
}

int exit_code(const Result& r) { return r.clean() ? 0 : 1; }

}  // namespace portalint
