#include "cache.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace portalint {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// Strings are written as '~' + percent-escaped content, so an empty
/// string is the single character '~' and fields never contain spaces.
std::string esc(std::string_view s) {
  std::string out = "~";
  for (const char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case ' ': out += "%20"; break;
      case '\t': out += "%09"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      default: out += c;
    }
  }
  return out;
}

bool unesc(std::string_view field, std::string& out) {
  if (field.empty() || field[0] != '~') return false;
  out.clear();
  for (std::size_t i = 1; i < field.size(); ++i) {
    if (field[i] != '%') {
      out += field[i];
      continue;
    }
    if (i + 2 >= field.size()) return false;
    const auto hex = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = hex(field[i + 1]);
    const int lo = hex(field[i + 2]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>(hi * 16 + lo);
    i += 2;
  }
  return true;
}

std::vector<std::string> split(const std::string& line) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t sp = line.find(' ', start);
    if (sp == std::string::npos) {
      out.push_back(line.substr(start));
      break;
    }
    out.push_back(line.substr(start, sp - start));
    start = sp + 1;
  }
  return out;
}

bool to_int(const std::string& s, int& v) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long parsed = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  v = static_cast<int>(parsed);
  return true;
}

void write_str_list(std::ostream& os, const char* tag,
                    const std::vector<std::string>& items) {
  if (items.empty()) return;
  os << tag;
  for (const std::string& s : items) os << ' ' << esc(s);
  os << '\n';
}

void write_str_set(std::ostream& os, const char* tag, const std::set<std::string>& items) {
  write_str_list(os, tag, std::vector<std::string>(items.begin(), items.end()));
}

void write_access(std::ostream& os, const AccessIR& a) {
  os << "ac " << (a.is_store ? 1 : 0) << (a.via_paren ? 1 : 0) << (a.is_deref ? 1 : 0)
     << ' ' << a.line << ' ' << esc(a.base) << ' ' << esc(a.excerpt) << '\n';
  for (const auto& group : a.indices) write_str_list(os, "ai", group);
  write_str_list(os, "ar", a.rhs_idents);
  for (const GuardIR& g : a.guards) {
    os << "ag " << esc(g.var);
    for (const std::string& tok : g.bound) os << ' ' << esc(tok);
    os << '\n';
  }
}

void write_call(std::ostream& os, const CallIR& c) {
  os << "cl " << c.line << ' ' << esc(c.callee) << ' ' << esc(c.excerpt) << '\n';
  for (const auto& group : c.args) write_str_list(os, "ca", group);
}

bool read_str_list(const std::vector<std::string>& f, std::size_t from,
                   std::vector<std::string>& out) {
  for (std::size_t i = from; i < f.size(); ++i) {
    std::string s;
    if (!unesc(f[i], s)) return false;
    out.push_back(std::move(s));
  }
  return true;
}

bool read_str_set(const std::vector<std::string>& f, std::size_t from,
                  std::set<std::string>& out) {
  std::vector<std::string> items;
  if (!read_str_list(f, from, items)) return false;
  out.insert(items.begin(), items.end());
  return true;
}

}  // namespace

const CacheEntry* AnalysisCache::lookup(const std::string& rel, std::uint64_t hash) const {
  const auto it = entries_.find(rel);
  if (it == entries_.end() || it->second.hash != hash) return nullptr;
  return &it->second;
}

void AnalysisCache::put(const std::string& rel, CacheEntry entry) {
  entries_[rel] = std::move(entry);
  dirty_ = true;
}

void AnalysisCache::save(const std::filesystem::path& file) const {
  std::ofstream os(file, std::ios::binary);
  if (!os) return;
  os << kCacheVersion << '\n';
  for (const auto& [rel, e] : entries_) {
    char hex[32];
    std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(e.hash));
    os << "file " << esc(rel) << ' ' << hex << '\n';
    for (const CachedFinding& f : e.findings) {
      os << "F " << f.line << ' ' << esc(f.rule) << ' ' << esc(f.family) << ' '
         << esc(f.message) << ' ' << esc(f.excerpt) << '\n';
    }
    for (const auto& [line, sups] : e.suppressions) {
      for (const Suppression& s : sups) {
        os << "S " << line << ' ' << esc(s.rule_prefix) << ' ' << esc(s.reason) << '\n';
      }
    }
    for (const auto& [line, inc] : e.quoted_includes) {
      os << "I " << line << ' ' << esc(inc) << '\n';
    }
    write_str_set(os, "A", e.ir.atomics);

    for (const FunctionIR& fn : e.ir.functions) {
      os << "fn " << fn.line << ' ' << esc(fn.name) << '\n';
      for (const ParamIR& p : fn.params) {
        os << "fp " << esc(p.name) << ' ' << (p.writable ? 1 : 0) << (p.is_atomic ? 1 : 0)
           << '\n';
      }
      write_str_set(os, "flo", fn.locals);
      write_str_set(os, "ft", fn.taint_sources);
      write_str_set(os, "fret", fn.return_idents);
      for (const AccessIR& a : fn.accesses) write_access(os, a);
      for (const CallIR& c : fn.calls) write_call(os, c);
      for (const ExtentIR& ex : fn.extents) {
        os << "ex " << ex.line << ' ' << esc(ex.name) << '\n';
        for (const auto& dim : ex.dims) write_str_list(os, "ed", dim);
      }
      os << "endfn\n";
    }

    for (const LaunchIR& l : e.ir.launches) {
      os << "ln " << l.line << ' ' << static_cast<int>(l.cap_default) << ' '
         << (l.serialized ? 1 : 0) << ' ' << esc(l.call) << ' '
         << esc(l.enclosing_function) << '\n';
      write_str_list(os, "lrc", l.ref_caps);
      write_str_list(os, "lvc", l.val_caps);
      write_str_list(os, "lp", l.params);
      write_str_set(os, "llo", l.locals);
      write_str_set(os, "lln", l.lane_names);
      for (const auto& [lane, bound] : l.lane_bounds) {
        os << "lb " << esc(lane);
        for (const std::string& tok : bound) os << ' ' << esc(tok);
        os << '\n';
      }
      for (const AccessIR& a : l.accesses) write_access(os, a);
      for (const CallIR& c : l.calls) write_call(os, c);
      os << "endln\n";
    }

    for (const OrderIR& o : e.ir.orders) {
      os << "o " << o.line << ' ' << (o.acq ? 1 : 0) << (o.rel ? 1 : 0)
         << (o.has_explicit_order ? 1 : 0) << (o.operator_form ? 1 : 0)
         << (o.token_visible ? 1 : 0) << ' ' << o.param_index << ' ' << esc(o.var) << ' '
         << esc(o.op) << ' ' << esc(o.enclosing) << ' ' << esc(o.excerpt) << '\n';
    }
    os << "endfile\n";
  }
}

bool AnalysisCache::load(const std::filesystem::path& file) {
  entries_.clear();
  std::ifstream is(file, std::ios::binary);
  if (!is) return false;
  std::string line;
  if (!std::getline(is, line) || line != kCacheVersion) return false;

  std::map<std::string, CacheEntry> loaded;
  CacheEntry* entry = nullptr;
  FunctionIR* fn = nullptr;
  LaunchIR* launch = nullptr;
  // The access/call the ai/ar/ag/ca continuation lines attach to.
  AccessIR* access = nullptr;
  CallIR* call = nullptr;

  auto fail = [&] {
    entries_.clear();
    return false;
  };

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto f = split(line);
    const std::string& tag = f[0];

    if (tag == "file") {
      if (f.size() != 3) return fail();
      std::string rel;
      if (!unesc(f[1], rel)) return fail();
      CacheEntry e;
      e.hash = std::strtoull(f[2].c_str(), nullptr, 16);
      e.ir.rel = rel;
      entry = &loaded.emplace(rel, std::move(e)).first->second;
      fn = nullptr;
      launch = nullptr;
      access = nullptr;
      call = nullptr;
      continue;
    }
    if (entry == nullptr) return fail();

    auto body_accesses = [&]() -> std::vector<AccessIR>* {
      if (launch != nullptr) return &launch->accesses;
      if (fn != nullptr) return &fn->accesses;
      return nullptr;
    };
    auto body_calls = [&]() -> std::vector<CallIR>* {
      if (launch != nullptr) return &launch->calls;
      if (fn != nullptr) return &fn->calls;
      return nullptr;
    };

    if (tag == "F") {
      if (f.size() != 6) return fail();
      CachedFinding cf;
      if (!to_int(f[1], cf.line) || !unesc(f[2], cf.rule) || !unesc(f[3], cf.family) ||
          !unesc(f[4], cf.message) || !unesc(f[5], cf.excerpt)) {
        return fail();
      }
      entry->findings.push_back(std::move(cf));
    } else if (tag == "S") {
      if (f.size() != 4) return fail();
      int ln = 0;
      Suppression s;
      if (!to_int(f[1], ln) || !unesc(f[2], s.rule_prefix) || !unesc(f[3], s.reason)) {
        return fail();
      }
      entry->suppressions[ln].push_back(std::move(s));
    } else if (tag == "I") {
      if (f.size() != 3) return fail();
      int ln = 0;
      std::string inc;
      if (!to_int(f[1], ln) || !unesc(f[2], inc)) return fail();
      entry->quoted_includes.emplace_back(ln, std::move(inc));
    } else if (tag == "A") {
      if (!read_str_set(f, 1, entry->ir.atomics)) return fail();
    } else if (tag == "fn") {
      if (f.size() != 3) return fail();
      FunctionIR nf;
      if (!to_int(f[1], nf.line) || !unesc(f[2], nf.name)) return fail();
      entry->ir.functions.push_back(std::move(nf));
      fn = &entry->ir.functions.back();
      access = nullptr;
      call = nullptr;
    } else if (tag == "fp") {
      if (fn == nullptr || f.size() != 3 || f[2].size() != 2) return fail();
      ParamIR p;
      if (!unesc(f[1], p.name)) return fail();
      p.writable = f[2][0] == '1';
      p.is_atomic = f[2][1] == '1';
      fn->params.push_back(std::move(p));
    } else if (tag == "flo") {
      if (fn == nullptr || !read_str_set(f, 1, fn->locals)) return fail();
    } else if (tag == "ft") {
      if (fn == nullptr || !read_str_set(f, 1, fn->taint_sources)) return fail();
    } else if (tag == "fret") {
      if (fn == nullptr || !read_str_set(f, 1, fn->return_idents)) return fail();
    } else if (tag == "ex") {
      if (fn == nullptr || f.size() != 3) return fail();
      ExtentIR ex;
      if (!to_int(f[1], ex.line) || !unesc(f[2], ex.name)) return fail();
      fn->extents.push_back(std::move(ex));
    } else if (tag == "ed") {
      if (fn == nullptr || fn->extents.empty()) return fail();
      std::vector<std::string> dim;
      if (!read_str_list(f, 1, dim)) return fail();
      fn->extents.back().dims.push_back(std::move(dim));
    } else if (tag == "endfn") {
      fn = nullptr;
      access = nullptr;
      call = nullptr;
    } else if (tag == "ln") {
      if (f.size() != 6) return fail();
      LaunchIR nl;
      int cap = 0;
      int serialized = 0;
      if (!to_int(f[1], nl.line) || !to_int(f[2], cap) || !to_int(f[3], serialized) ||
          !unesc(f[4], nl.call) || !unesc(f[5], nl.enclosing_function)) {
        return fail();
      }
      nl.cap_default = static_cast<char>(cap);
      nl.serialized = serialized != 0;
      entry->ir.launches.push_back(std::move(nl));
      launch = &entry->ir.launches.back();
      access = nullptr;
      call = nullptr;
    } else if (tag == "lrc") {
      if (launch == nullptr || !read_str_list(f, 1, launch->ref_caps)) return fail();
    } else if (tag == "lvc") {
      if (launch == nullptr || !read_str_list(f, 1, launch->val_caps)) return fail();
    } else if (tag == "lp") {
      if (launch == nullptr || !read_str_list(f, 1, launch->params)) return fail();
    } else if (tag == "llo") {
      if (launch == nullptr || !read_str_set(f, 1, launch->locals)) return fail();
    } else if (tag == "lln") {
      if (launch == nullptr || !read_str_set(f, 1, launch->lane_names)) return fail();
    } else if (tag == "lb") {
      if (launch == nullptr || f.size() < 2) return fail();
      std::string lane;
      std::vector<std::string> bound;
      if (!unesc(f[1], lane) || !read_str_list(f, 2, bound)) return fail();
      launch->lane_bounds.emplace_back(std::move(lane), std::move(bound));
    } else if (tag == "endln") {
      launch = nullptr;
      access = nullptr;
      call = nullptr;
    } else if (tag == "ac") {
      auto* dest = body_accesses();
      if (dest == nullptr || f.size() != 5 || f[1].size() != 3) return fail();
      AccessIR a;
      a.is_store = f[1][0] == '1';
      a.via_paren = f[1][1] == '1';
      a.is_deref = f[1][2] == '1';
      // f layout: ac <flags> <line> <base> <excerpt>
      if (!to_int(f[2], a.line) || !unesc(f[3], a.base) || !unesc(f[4], a.excerpt)) {
        return fail();
      }
      dest->push_back(std::move(a));
      access = &dest->back();
      call = nullptr;
    } else if (tag == "ai") {
      if (access == nullptr) return fail();
      std::vector<std::string> group;
      if (!read_str_list(f, 1, group)) return fail();
      access->indices.push_back(std::move(group));
    } else if (tag == "ar") {
      if (access == nullptr || !read_str_list(f, 1, access->rhs_idents)) return fail();
    } else if (tag == "ag") {
      if (access == nullptr || f.size() < 2) return fail();
      GuardIR g;
      if (!unesc(f[1], g.var) || !read_str_list(f, 2, g.bound)) return fail();
      access->guards.push_back(std::move(g));
    } else if (tag == "cl") {
      auto* dest = body_calls();
      if (dest == nullptr || f.size() != 4) return fail();
      CallIR c;
      if (!to_int(f[1], c.line) || !unesc(f[2], c.callee) || !unesc(f[3], c.excerpt)) {
        return fail();
      }
      dest->push_back(std::move(c));
      call = &dest->back();
      access = nullptr;
    } else if (tag == "ca") {
      if (call == nullptr) return fail();
      std::vector<std::string> group;
      if (!read_str_list(f, 1, group)) return fail();
      call->args.push_back(std::move(group));
    } else if (tag == "o") {
      if (f.size() != 8) return fail();
      OrderIR o;
      if (!to_int(f[1], o.line) || f[2].size() != 5 || !to_int(f[3], o.param_index) ||
          !unesc(f[4], o.var) || !unesc(f[5], o.op) || !unesc(f[6], o.enclosing) ||
          !unesc(f[7], o.excerpt)) {
        return fail();
      }
      o.acq = f[2][0] == '1';
      o.rel = f[2][1] == '1';
      o.has_explicit_order = f[2][2] == '1';
      o.operator_form = f[2][3] == '1';
      o.token_visible = f[2][4] == '1';
      o.is_param = o.param_index >= 0;
      entry->ir.orders.push_back(std::move(o));
    } else if (tag == "endfile") {
      entry = nullptr;
      fn = nullptr;
      launch = nullptr;
      access = nullptr;
      call = nullptr;
    } else {
      return fail();
    }
  }
  entries_ = std::move(loaded);
  return true;
}

}  // namespace portalint
