// portaflow pass 1: interprocedural lane-safety and ordering.
//
// fl-shared-write-escape — at every dispatch/launch lambda, calls that
// pass a by-reference-captured shared variable to a helper are checked
// against the helper's write-effect summary (callgraph.hpp).  A helper
// that writes the parameter directly, at a constant index, or at an
// index fed only by lane-invariant arguments races every lane on the
// same element — invisible to the token-level ls-* rules, which stop at
// the lambda body.
//
// fl-unpaired-ordering / mo-balance — every atomic-ordering site in the
// tree is grouped per variable.  Sites whose receiver is a
// std::atomic<>& parameter are resolved through the call graph to the
// caller's variable (transitively through forwarding helpers).  Groups
// containing at least one resolved site are judged under the
// fl-unpaired-ordering rule; purely name-matched groups keep the
// original mo-balance id and semantics, so behaviour on code without
// atomic-reference helpers is byte-identical to the token-level rule.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "flow.hpp"
#include "rules.hpp"

namespace portalint {

namespace {

Finding make_flow(const FileUnit& u, int line, std::string rule, std::string family,
                  std::string message) {
  Finding f;
  f.rule = std::move(rule);
  f.family = std::move(family);
  f.message = std::move(message);
  f.unit = &u;
  f.line = line;
  f.excerpt = normalize_excerpt(u.line_text(line));
  return f;
}

// --- fl-shared-write-escape --------------------------------------------------

/// Identifiers in the token group, in order.
std::vector<std::string> idents_of(const std::vector<std::string>& tokens) {
  std::vector<std::string> out;
  for (const std::string& tok : tokens) {
    if (!tok.empty() && (std::isalpha(static_cast<unsigned char>(tok[0])) || tok[0] == '_')) {
      out.push_back(tok);
    }
  }
  return out;
}

void check_launch_calls(const FlowContext& ctx, const FileUnit& u, const FileIR& ir,
                        const LaunchIR& l, std::vector<Finding>& out) {
  // Serialized queue ops (Stream::enqueue, copy_async, pipeline stages)
  // run one-at-a-time in stream order: handing a by-reference staging
  // buffer to a helper is the double-buffer handoff, not a lane race.
  if (l.serialized) return;
  for (const CallIR& c : l.calls) {
    const FunctionSummary* g = ctx.graph.resolve(c.callee);
    if (g == nullptr) continue;
    const std::size_t n = std::min(g->effects.size(), c.args.size());
    for (std::size_t ai = 0; ai < n; ++ai) {
      const ParamEffect& e = g->effects[ai];
      if (!e.any()) continue;

      // Shared receivers: by-ref captures that are not lambda-local and
      // not declared atomic in this TU.
      std::vector<std::string> shared;
      for (const std::string& id : idents_of(c.args[ai])) {
        if (!l.locals.count(id) && !ir.atomics.count(id) && l.captures_by_ref(id)) {
          shared.push_back(id);
        }
      }
      if (shared.empty()) continue;

      std::string how;
      if (e.direct_write) {
        how = "writes it directly";
      } else if (e.indexed_const) {
        how = "writes it at a constant index";
      } else if (!e.index_params.empty() && !e.indexed_internal) {
        // Indexed writes traceable to call arguments: safe only if some
        // index-feeding argument varies with the lane.
        bool lane_varying = false;
        for (int qi : e.index_params) {
          if (static_cast<std::size_t>(qi) >= c.args.size()) continue;
          for (const std::string& id : idents_of(c.args[static_cast<std::size_t>(qi)])) {
            if (l.lane_names.count(id) || l.locals.count(id)) lane_varying = true;
          }
        }
        if (lane_varying) continue;
        how = "writes it at an index that never varies with the lane";
      } else {
        continue;  // index depends on helper-internal state: stay quiet
      }

      for (const std::string& id : shared) {
        Finding f = make_flow(
            u, c.line, "fl-shared-write-escape", "lane-safety",
            "parallel lambda (" + l.call + ") passes by-reference capture '" + id +
                "' to '" + c.callee + "', which " + how +
                " non-atomically: every lane races on it (write escapes the lambda "
                "through the call)");
        RelatedSite site;
        site.unit = e.write_unit != nullptr ? e.write_unit : g->unit;
        site.line = e.write_line != 0 ? e.write_line : g->fn->line;
        site.note = "non-atomic write through parameter '" +
                    g->fn->params[ai].name + "' of '" + g->fn->name + "'";
        f.related.push_back(std::move(site));
        out.push_back(std::move(f));
      }
    }
  }
}

// --- fl-unpaired-ordering ----------------------------------------------------

struct OrdSite {
  const FileUnit* unit = nullptr;  // where the group sees the site
  int line = 0;
  bool acq = false;
  bool rel = false;
  bool resolved = false;           // attributed through a std::atomic& param
  const FileUnit* origin_unit = nullptr;  // helper-side site when resolved
  int origin_line = 0;
  std::string helper;              // helper function name when resolved
};

/// A concrete receiver a (function, param) pair resolves to.
struct Receiver {
  std::string name;
  const FileUnit* unit = nullptr;
  int line = 0;  // call-site line
};

class OrderingResolver {
 public:
  explicit OrderingResolver(const FlowContext& ctx) : ctx_(ctx) {}

  const std::vector<Receiver>& contexts(const FunctionSummary* f, int pi) {
    const Key key{f->fn, pi};
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    auto [slot, inserted] = memo_.emplace(key, std::vector<Receiver>());
    (void)inserted;
    if (!visiting_.insert(key).second) return slot->second;  // cycle
    std::vector<Receiver> result;
    for (std::size_t j = 0; j < ctx_.size(); ++j) {
      const FileUnit& u = ctx_.unit(j);
      if (scope_in_tests(u)) continue;
      const FileIR& ir = ctx_.ir(j);
      for (const FunctionIR& g : ir.functions) {
        collect(f, pi, g.calls, &g, u, result);
      }
      for (const LaunchIR& l : ir.launches) {
        collect(f, pi, l.calls, nullptr, u, result);
      }
    }
    visiting_.erase(key);
    // Re-find: recursion may have rehashed the map.
    auto& stored = memo_[key];
    stored = std::move(result);
    return stored;
  }

 private:
  using Key = std::pair<const FunctionIR*, int>;

  void collect(const FunctionSummary* f, int pi, const std::vector<CallIR>& calls,
               const FunctionIR* caller, const FileUnit& u, std::vector<Receiver>& out) {
    for (const CallIR& c : calls) {
      if (ctx_.graph.resolve(c.callee) != f) continue;
      if (static_cast<std::size_t>(pi) >= c.args.size()) continue;
      const auto ids = idents_of(c.args[static_cast<std::size_t>(pi)]);
      if (ids.size() != 1) continue;  // not a plain variable: stay quiet
      const std::string& n = ids.front();
      const int gi = caller != nullptr ? caller->param_index(n) : -1;
      if (gi >= 0) {
        // Forwarded through the caller's own parameter: resolve upward.
        const FunctionSummary* gsum = ctx_.graph.resolve(caller->name);
        if (gsum == nullptr || gsum->fn != caller) continue;
        for (const Receiver& r : contexts(gsum, gi)) out.push_back(r);
      } else {
        out.push_back({n, &u, c.line});
      }
    }
  }

  const FlowContext& ctx_;
  std::map<Key, std::vector<Receiver>> memo_;
  std::set<Key> visiting_;
};

void run_ordering(const FlowContext& ctx, std::vector<Finding>& out) {
  std::map<std::string, std::vector<OrdSite>> groups;
  OrderingResolver resolver(ctx);

  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const FileUnit& u = ctx.unit(i);
    if (scope_in_tests(u)) continue;
    for (const OrderIR& o : ctx.ir(i).orders) {
      if (o.var.empty() || (!o.acq && !o.rel)) continue;
      if (!o.is_param) {
        groups[o.var].push_back({&u, o.line, o.acq, o.rel, false, nullptr, 0, ""});
        continue;
      }
      const FunctionSummary* f = ctx.graph.resolve(o.enclosing);
      if (f == nullptr || f->unit != &u) continue;  // ambiguous: stay quiet
      for (const Receiver& r : resolver.contexts(f, o.param_index)) {
        groups[r.name].push_back(
            {r.unit, r.line, o.acq, o.rel, true, &u, o.line, o.enclosing});
      }
    }
  }

  for (const auto& [name, sites] : groups) {
    int acq = 0;
    int rel = 0;
    bool any_resolved = false;
    for (const OrdSite& s : sites) {
      acq += s.acq ? 1 : 0;
      rel += s.rel ? 1 : 0;
      any_resolved = any_resolved || s.resolved;
    }
    const bool acq_only = acq > 0 && rel == 0;
    const bool rel_only = rel > 0 && acq == 0;
    if (!acq_only && !rel_only) continue;
    const std::string rule = any_resolved ? "fl-unpaired-ordering" : "mo-balance";
    bool suppressed = false;
    for (const OrdSite& s : sites) {
      if (s.unit->find_suppression(s.line, rule) != nullptr ||
          (s.resolved && s.origin_unit->find_suppression(s.origin_line, rule) != nullptr)) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) continue;
    const OrdSite& first = sites.front();

    if (!any_resolved) {
      // Byte-identical to the token-level mo-balance rule.
      out.push_back(make_flow(
          *first.unit, first.line, "mo-balance", "concurrency",
          acq_only ? "atomic '" + name + "' has acquire-side loads but no " +
                         "release-side store anywhere in the scanned tree: the " +
                         "acquire synchronizes with nothing"
                   : "atomic '" + name + "' has release-side stores but no " +
                         "acquire-side load anywhere in the scanned tree: the " +
                         "release publishes to nobody"));
      continue;
    }
    Finding f = make_flow(
        *first.unit, first.line, "fl-unpaired-ordering", "concurrency",
        acq_only ? "atomic '" + name + "' has acquire-side operations (including " +
                       "sites resolved through std::atomic& helpers on the call " +
                       "graph) but no release-side store anywhere in the scanned " +
                       "tree: the acquire synchronizes with nothing"
                 : "atomic '" + name + "' has release-side operations (including " +
                       "sites resolved through std::atomic& helpers on the call " +
                       "graph) but no acquire-side load anywhere in the scanned " +
                       "tree: the release publishes to nobody");
    for (const OrdSite& s : sites) {
      if (&s == &first && !s.resolved) continue;
      RelatedSite site;
      if (s.resolved) {
        site.unit = s.origin_unit;
        site.line = s.origin_line;
        site.note = std::string(s.rel ? "release" : "acquire") +
                    "-side site inside helper '" + s.helper + "' (resolved to '" + name +
                    "' through its std::atomic& parameter)";
      } else {
        site.unit = s.unit;
        site.line = s.line;
        site.note = std::string(s.rel ? "release" : "acquire") + "-side site on '" +
                    name + "'";
      }
      f.related.push_back(std::move(site));
    }
    out.push_back(std::move(f));
  }
}

}  // namespace

void flow_shared_write_escape(const FlowContext& ctx, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    const FileUnit& u = ctx.unit(i);
    const FileIR& ir = ctx.ir(i);
    for (const LaunchIR& l : ir.launches) {
      check_launch_calls(ctx, u, ir, l, out);
    }
  }
}

void flow_unpaired_ordering(const FlowContext& ctx, std::vector<Finding>& out) {
  run_ordering(ctx, out);
}

}  // namespace portalint
