#include "analysis.hpp"

#include <algorithm>
#include <array>

namespace portalint {

namespace {

bool is_punct(const Token& tok, std::string_view text) {
  return tok.kind == Tok::kPunct && tok.text == text;
}

bool is_ident(const Token& tok) { return tok.kind == Tok::kIdent; }

/// Calls whose lambda arguments execute as parallel lanes / SIMT threads.
const std::set<std::string>& dispatch_calls() {
  static const std::set<std::string> kCalls = {
      "parallel_for", "parallel_reduce", "parallel_scan", "launch",
      "launch_blocks", "run", "run_auto", "run_inline", "work_steal_run",
      "checked_range_run",
  };
  return kCalls;
}

/// Calls whose lambda arguments execute *serialized*, in stream order,
/// on a single queue worker: gpusim stream ops and the pipeline stage
/// callbacks.  These bind host callbacks, not parallel lanes, so the
/// lane-safety rules treat them as a separate launch class.
const std::set<std::string>& queue_calls() {
  static const std::set<std::string> kCalls = {
      "enqueue",       "copy_async",          "copy_to_device_async",
      "copy_to_host_async", "peer_copy_async", "run_pipeline",
      "run_sharded_pipeline",
  };
  return kCalls;
}

char opener_close(const std::string& open) {
  if (open == "(") return ')';
  if (open == "[") return ']';
  if (open == "{") return '}';
  return '>';
}

/// Parse the lambda whose '[' introducer is at index `j`; returns kNpos
/// in body_begin on parse failure.
LambdaInfo parse_lambda(const std::vector<Token>& t, std::size_t j) {
  LambdaInfo l;
  l.line = t[j].line;
  const std::size_t cap_end = match_forward(t, j);
  if (cap_end == kNpos) return l;

  // Capture list: items separated by top-level commas.
  std::size_t item = j + 1;
  while (item < cap_end) {
    std::size_t stop = item;
    int depth = 0;
    while (stop < cap_end &&
           !(depth == 0 && is_punct(t[stop], ","))) {
      if (is_punct(t[stop], "(") || is_punct(t[stop], "[") || is_punct(t[stop], "{")) ++depth;
      if (is_punct(t[stop], ")") || is_punct(t[stop], "]") || is_punct(t[stop], "}")) --depth;
      ++stop;
    }
    if (stop > item) {
      if (stop == item + 1 && is_punct(t[item], "&")) {
        l.cap_default = '&';
      } else if (stop == item + 1 && is_punct(t[item], "=")) {
        l.cap_default = '=';
      } else if (is_punct(t[item], "&") && item + 1 < stop && is_ident(t[item + 1])) {
        l.ref_caps.push_back(t[item + 1].text);
      } else if (is_ident(t[item]) && t[item].text == "this") {
        l.ref_caps.push_back("this");
      } else if (is_punct(t[item], "*") && item + 1 < stop && t[item + 1].text == "this") {
        l.val_caps.push_back("this");
      } else if (is_ident(t[item])) {
        l.val_caps.push_back(t[item].text);  // value or init capture
      }
    }
    item = stop + 1;
  }

  // Optional parameter list.
  std::size_t k = cap_end + 1;
  if (k < t.size() && is_punct(t[k], "(")) {
    const std::size_t pend = match_forward(t, k);
    if (pend == kNpos) return l;
    std::size_t p = k + 1;
    while (p < pend) {
      std::size_t stop = p;
      int depth = 0;
      std::size_t eq = kNpos;
      while (stop < pend && !(depth == 0 && is_punct(t[stop], ","))) {
        if (is_punct(t[stop], "(") || is_punct(t[stop], "[") || is_punct(t[stop], "{") ||
            is_punct(t[stop], "<")) {
          ++depth;
        }
        if (is_punct(t[stop], ")") || is_punct(t[stop], "]") || is_punct(t[stop], "}") ||
            is_punct(t[stop], ">")) {
          --depth;
        }
        if (depth == 0 && eq == kNpos && is_punct(t[stop], "=")) eq = stop;
        ++stop;
      }
      // Parameter name: last identifier before the default-arg '=' (if any).
      const std::size_t name_end = eq == kNpos ? stop : eq;
      for (std::size_t q = name_end; q > p; --q) {
        if (is_ident(t[q - 1])) {
          l.params.push_back(t[q - 1].text);
          break;
        }
      }
      p = stop + 1;
    }
    k = pend + 1;
  }

  // Skip specifiers (mutable, noexcept(...), -> ret) up to the body '{'.
  while (k < t.size() && !is_punct(t[k], "{")) {
    if (is_punct(t[k], "(")) {
      const std::size_t m = match_forward(t, k);
      if (m == kNpos) return l;
      k = m + 1;
    } else if (is_punct(t[k], ";") || is_punct(t[k], ")") || is_punct(t[k], ",")) {
      return l;  // not a lambda with a body here (e.g. array subscript)
    } else {
      ++k;
    }
  }
  if (k >= t.size()) return l;
  const std::size_t bend = match_forward(t, k);
  if (bend == kNpos) return l;
  l.body_begin = k;
  l.body_end = bend;
  return l;
}

}  // namespace

std::size_t match_forward(const std::vector<Token>& t, std::size_t open) {
  if (open >= t.size() || t[open].kind != Tok::kPunct) return kNpos;
  const std::string& o = t[open].text;
  const char close = opener_close(o);
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != Tok::kPunct) continue;
    if (t[i].text == o) {
      ++depth;
    } else if (t[i].text.size() == 1 && t[i].text[0] == close) {
      if (--depth == 0) return i;
    }
  }
  return kNpos;
}

std::vector<LambdaInfo> find_dispatch_lambdas(const std::vector<Token>& t) {
  std::vector<LambdaInfo> out;
  for (DispatchSite& s : find_dispatch_sites(t)) out.push_back(std::move(s.lambda));
  return out;
}

namespace {

/// Shared scan body for the two launch classes: direct-lambda arguments
/// of calls in `calls`, tagged with `serialized`.
std::vector<DispatchSite> find_sites(const std::vector<Token>& t,
                                     const std::set<std::string>& calls,
                                     bool serialized) {
  std::vector<DispatchSite> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i]) || !calls.count(t[i].text)) continue;
    if (!is_punct(t[i + 1], "(")) continue;
    const std::size_t close = match_forward(t, i + 1);
    if (close == kNpos) continue;
    for (std::size_t j = i + 2; j < close; ++j) {
      if (!is_punct(t[j], "[")) continue;
      if (!(is_punct(t[j - 1], "(") || is_punct(t[j - 1], ","))) continue;
      LambdaInfo l = parse_lambda(t, j);
      if (l.body_begin == kNpos) continue;
      l.call = t[i].text;
      DispatchSite site;
      site.lambda = std::move(l);
      site.serialized = serialized;
      // Split the tokens between the call's '(' and the lambda's '['
      // into top-level argument groups.
      std::size_t arg_start = i + 2;
      int depth = 0;
      for (std::size_t q = i + 2; q < j; ++q) {
        if (is_punct(t[q], "(") || is_punct(t[q], "[") || is_punct(t[q], "{")) ++depth;
        if (is_punct(t[q], ")") || is_punct(t[q], "]") || is_punct(t[q], "}")) --depth;
        if (depth == 0 && is_punct(t[q], ",")) {
          std::vector<std::string> arg;
          for (std::size_t r = arg_start; r < q; ++r) arg.push_back(t[r].text);
          if (!arg.empty()) site.leading_args.push_back(std::move(arg));
          arg_start = q + 1;
        }
      }
      out.push_back(std::move(site));
      j = out.back().lambda.body_end;  // keep scanning for further lambda args
    }
  }
  return out;
}

}  // namespace

std::vector<DispatchSite> find_dispatch_sites(const std::vector<Token>& t) {
  return find_sites(t, dispatch_calls(), /*serialized=*/false);
}

std::vector<DispatchSite> find_queue_sites(const std::vector<Token>& t) {
  return find_sites(t, queue_calls(), /*serialized=*/true);
}

std::set<std::string> body_local_names(const std::vector<Token>& t,
                                       std::size_t begin, std::size_t end) {
  static const std::array<std::string_view, 6> kAfter = {"=", "{", ";", ",", ")", ":"};
  static const std::array<std::string_view, 5> kBeforePunct = {">", "*", "&", "&&", "]"};
  std::set<std::string> names;
  // Structured bindings: `auto [i, j] = ...` (with optional cv/ref between
  // `auto` and `[`) declare every identifier inside the bracket list.
  for (std::size_t j = begin + 1; j + 1 < end; ++j) {
    if (!is_punct(t[j], "[")) continue;
    std::size_t p = j;
    while (p > begin + 1 && (is_punct(t[p - 1], "&") || is_punct(t[p - 1], "&&"))) --p;
    if (p == begin + 1 || !is_ident(t[p - 1]) || t[p - 1].text != "auto") continue;
    const std::size_t close = match_forward(t, j);
    if (close == kNpos || close >= end) continue;
    for (std::size_t q = j + 1; q < close; ++q) {
      if (is_ident(t[q])) names.insert(t[q].text);
    }
  }
  for (std::size_t j = begin + 1; j + 1 < end; ++j) {
    if (!is_ident(t[j]) || j == begin + 1) continue;
    const Token& prev = t[j - 1];
    const Token& next = t[j + 1];
    const bool type_before =
        is_ident(prev) ||
        (prev.kind == Tok::kPunct &&
         std::find(kBeforePunct.begin(), kBeforePunct.end(), prev.text) !=
             kBeforePunct.end());
    if (!type_before) continue;
    const bool decl_after =
        next.kind == Tok::kPunct &&
        std::find(kAfter.begin(), kAfter.end(), next.text) != kAfter.end();
    if (decl_after) names.insert(t[j].text);
  }
  return names;
}

std::set<std::string> atomic_var_names(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& s = t[i].text;
    if (s != "atomic" && s != "atomic_flag" && s != "atomic_bool" && s != "atomic_int" &&
        s != "atomic_uint" && s != "atomic_size_t") {
      continue;
    }
    std::size_t j = i + 1;
    if (j < t.size() && is_punct(t[j], "<")) {
      const std::size_t m = match_forward(t, j);
      if (m == kNpos) continue;
      j = m + 1;
    }
    if (j < t.size() && is_ident(t[j])) names.insert(t[j].text);
  }
  return names;
}

std::set<std::string> pointer_var_names(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (std::size_t i = 1; i + 2 < t.size(); ++i) {
    if (!is_punct(t[i], "*")) continue;
    const Token& before = t[i - 1];
    const bool type_before =
        is_ident(before) || is_punct(before, ">") || is_punct(before, "*");
    if (!type_before) continue;
    if (!is_ident(t[i + 1])) continue;
    const Token& after = t[i + 2];
    if (after.kind == Tok::kPunct &&
        (after.text == "=" || after.text == ";" || after.text == "," || after.text == ")")) {
      names.insert(t[i + 1].text);
    }
  }
  return names;
}

bool captures_by_ref(const LambdaInfo& l, const std::string& name) {
  if (std::find(l.ref_caps.begin(), l.ref_caps.end(), name) != l.ref_caps.end()) return true;
  if (l.cap_default == '&' &&
      std::find(l.val_caps.begin(), l.val_caps.end(), name) == l.val_caps.end()) {
    return true;
  }
  return false;
}

bool captures_by_value(const LambdaInfo& l, const std::string& name) {
  if (std::find(l.val_caps.begin(), l.val_caps.end(), name) != l.val_caps.end()) return true;
  if (l.cap_default == '=' &&
      std::find(l.ref_caps.begin(), l.ref_caps.end(), name) == l.ref_caps.end()) {
    return true;
  }
  return false;
}

}  // namespace portalint
