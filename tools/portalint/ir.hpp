// portaflow IR: a small typed intermediate representation lowered from
// the token stream, one FileIR per translation unit.  It captures the
// facts the interprocedural flow passes (flow.hpp) reason about —
// functions with their parameters and writes, call sites with argument
// expressions, lambda bodies bound to their parallel_for/launch/enqueue
// launch sites, atomic-ordering operations, extent declarations, and
// determinism taint sources — and nothing else.  Everything is stored
// as plain strings/ints so a FileIR can round-trip through the
// incremental analysis cache (cache.hpp) without re-lexing the file.
//
// Like the token-stream heuristics in analysis.hpp, lowering is
// deliberately asymmetric: constructs it cannot classify are simply not
// represented, so the flow passes stay quiet rather than noisy.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "model.hpp"

namespace portalint {

/// A dominating range constraint on an identifier, recorded from guard
/// patterns (`if (i < n) { ... }`, `if (i >= n) return;`) while walking
/// a body.  Always means `var < bound` at the guarded access.
struct GuardIR {
  std::string var;
  std::vector<std::string> bound;  // token texts of the exclusive bound
};

/// A store or indexed load: `base[i*n+j] = v`, `view(i, j) = v`,
/// `acc += v`, `*p = v`, `++count`.
struct AccessIR {
  std::string base;    // the accessed identifier
  bool is_store = false;
  bool via_paren = false;  // base(...) rather than base[...]
  bool is_deref = false;   // *base = ... (counts as a direct store)
  /// One entry per index group, each the flattened token texts of the
  /// expression inside the (...)/[...].  Empty for direct writes.
  std::vector<std::vector<std::string>> indices;
  /// Identifiers appearing on the right-hand side of a store.
  std::vector<std::string> rhs_idents;
  /// Guards dominating this access (innermost last).
  std::vector<GuardIR> guards;
  int line = 0;
  std::string excerpt;
};

/// A call to a named free function: `helper(a, b)`, `ns::helper(x)`.
/// Member calls (`obj.method(...)`) are not represented.
struct CallIR {
  std::string callee;  // unqualified name
  /// Flattened token texts per top-level argument.
  std::vector<std::vector<std::string>> args;
  int line = 0;
  std::string excerpt;
};

/// An atomic-ordering operation: `x.load(acquire)`, `flag.store(1,
/// release)`, `count.fetch_add(1, relaxed)`, or an operator form on a
/// declared atomic (`++hits`).  `acq`/`rel` reflect the side the op
/// counts on for happens-before pairing (seq_cst/acq_rel on both,
/// relaxed on neither); both false means the op was seen but orders
/// nothing (still relevant for mo-explicit).  Sites are collected over
/// the whole file — exactly the set the token-level scan found before
/// portaflow existed — and then attributed to their enclosing function
/// so the ordering pass can resolve parameter receivers through the
/// call graph.
struct OrderIR {
  std::string var;  // receiver identifier ("" if not recoverable)
  std::string op;   // "load", "store", "fetch_add", "++", "+=", ...
  bool acq = false;
  bool rel = false;
  bool has_explicit_order = false;
  bool operator_form = false;   // ++x / x += 1 on a declared atomic
  /// True when the pre-portaflow token scan would also have counted this
  /// site (mo-balance is reconstructed from exactly these on warm runs).
  /// False for sites only the IR sees, e.g. a bare .load() whose atomic
  /// evidence is a std::atomic& parameter declaration.
  bool token_visible = true;
  std::string enclosing;        // enclosing function name, "" at file scope
  bool is_param = false;        // receiver is a parameter of `enclosing`
  int param_index = -1;         // index into that function's params
  int line = 0;
  std::string excerpt;
};

/// A recognized extent declaration binding a name to symbolic dims:
/// `std::vector<double> C(n * n)`, `RawView2<float> a(p, n, m)`,
/// `View2<double> b(n, m)`, `std::array<int, 16> s`.
struct ExtentIR {
  std::string name;
  /// One entry per dimension, each the flattened token texts of the
  /// extent expression (exclusive upper bound on that index).
  std::vector<std::vector<std::string>> dims;
  int line = 0;
};

/// One parameter of a function.
struct ParamIR {
  std::string name;
  bool writable = false;  // T& / T* with no const in the declarator
  bool is_atomic = false; // std::atomic<...>& — writes through it are safe
};

/// A free function (or method — linking is by unqualified name) with a
/// body in this translation unit.
struct FunctionIR {
  std::string name;
  int line = 0;
  std::vector<ParamIR> params;
  std::set<std::string> locals;  // body-declared names (incl. structured bindings)
  std::vector<AccessIR> accesses;
  std::vector<CallIR> calls;
  std::vector<ExtentIR> extents;
  /// Determinism taint sources used directly in the body: "rand",
  /// "srand", "random_device", "clock-now", "time", "unordered-iter".
  std::set<std::string> taint_sources;
  /// Identifiers appearing in return expressions (taint propagation).
  std::set<std::string> return_idents;

  [[nodiscard]] int param_index(const std::string& n) const {
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (params[i].name == n) return static_cast<int>(i);
    }
    return -1;
  }
};

/// A lambda bound to a parallel-dispatch or kernel launch site, with
/// the body facts the flow passes need.
struct LaunchIR {
  std::string call;  // parallel_for / launch / launch_blocks / run / ...
  int line = 0;      // line of the '[' capture introducer
  char cap_default = 0;
  std::vector<std::string> ref_caps;
  std::vector<std::string> val_caps;
  std::vector<std::string> params;
  std::set<std::string> locals;
  /// Lane-varying names: lambda params, structured bindings from
  /// numba_grid2(), and locals assigned from global_x/y/z()/lane ids.
  std::set<std::string> lane_names;
  /// Exclusive symbolic upper bound per lane name (token texts), when
  /// derivable from the launch site (RangePolicy extent, grid x block).
  /// Missing entry: range unknown — only guards can bound the name.
  std::vector<std::pair<std::string, std::vector<std::string>>> lane_bounds;
  std::vector<AccessIR> accesses;
  std::vector<CallIR> calls;
  std::string enclosing_function;  // "" at namespace scope
  /// True for the serialized launch class (Stream::enqueue ops, the
  /// copy_async family, pipeline stage callbacks): the body runs on one
  /// queue worker in stream order, so there are no lanes to race and
  /// the lane-safety passes skip it.  Determinism and ordering passes
  /// still see its calls.
  bool serialized = false;

  [[nodiscard]] bool captures_by_ref(const std::string& name) const;
  [[nodiscard]] bool captures_by_value(const std::string& name) const;
};

/// The per-file IR.  `rel` mirrors FileUnit::rel so cached IRs can be
/// re-associated with their units.
struct FileIR {
  std::string rel;
  std::vector<FunctionIR> functions;
  std::vector<LaunchIR> launches;
  /// Every atomic-ordering site in the file (see OrderIR).
  std::vector<OrderIR> orders;
  /// Names declared std::atomic<...>/atomic_flag anywhere in the file.
  std::set<std::string> atomics;
};

/// Lower one lexed file.  Never fails: unrecognized constructs are
/// simply absent from the IR.
[[nodiscard]] FileIR build_ir(const FileUnit& u);

}  // namespace portalint
