// SARIF 2.1.0 report rendering for code-scanning upload.
#pragma once

#include <iosfwd>

#include "engine.hpp"

namespace portalint {

/// Render the result as a SARIF 2.1.0 log.  Active findings become
/// results; the full rule catalogue is embedded as the tool driver's
/// rule metadata.  Suppressed/baselined findings are omitted (they are
/// accepted, and code-scanning would resurface them forever).
void print_sarif(const Result& r, std::ostream& os);

}  // namespace portalint
