// portalint CLI — static lane-safety & concurrency linter for the
// portabench kernels and runtimes.  See docs/LINT.md.
//
// Usage: portalint [options] <path>...
//   --json               emit a JSON report instead of text
//   --sarif              emit a SARIF 2.1.0 report instead of text
//   --baseline <file>    baseline file (default: portalint.baseline found
//                        upward from the first input)
//   --no-baseline        ignore any baseline file
//   --include-fixtures   also scan directories named "fixtures"
//   --cache <file>       incremental analysis cache (read + rewritten)
//   --no-flow            disable the portaflow interprocedural passes
//   --root <dir>         root for relative paths in reports
//   --list-rules         print the rule catalogue and exit
//
// Exit status: 0 clean, 1 findings or stale baseline entries, 2 usage error.

#include <iostream>
#include <string>

#include "engine.hpp"
#include "rules.hpp"
#include "sarif.hpp"

int main(int argc, char** argv) {
  portalint::Options opts;
  bool json = false;
  bool sarif = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--no-baseline") {
      opts.use_baseline = false;
    } else if (arg == "--include-fixtures") {
      opts.include_fixtures = true;
    } else if (arg == "--no-flow") {
      opts.run_flow = false;
    } else if (arg == "--cache" && i + 1 < argc) {
      opts.cache_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      opts.baseline_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& r : portalint::all_rules()) {
        std::cout << r.id << "  [" << r.family << "]  " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: portalint [--json | --sarif] [--baseline FILE | --no-baseline] "
                   "[--include-fixtures] [--cache FILE] [--no-flow] [--root DIR] "
                   "[--list-rules] <path>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "portalint: unknown option: " << arg << "\n";
      return 2;
    } else {
      opts.inputs.emplace_back(arg);
    }
  }
  if (opts.inputs.empty()) {
    std::cerr << "portalint: no input paths (try --help)\n";
    return 2;
  }

  const portalint::Result r = portalint::run_portalint(opts);
  if (sarif) {
    portalint::print_sarif(r, std::cout);
  } else if (json) {
    portalint::print_json(r, std::cout);
  } else {
    portalint::print_text(r, std::cout);
  }
  return portalint::exit_code(r);
}
