// portalint CLI — static lane-safety & concurrency linter for the
// portabench kernels and runtimes.  See docs/LINT.md.
//
// Usage: portalint [options] <path>...
//   --json               emit a JSON report instead of text
//   --baseline <file>    baseline file (default: portalint.baseline found
//                        upward from the first input)
//   --no-baseline        ignore any baseline file
//   --include-fixtures   also scan directories named "fixtures"
//   --root <dir>         root for relative paths in reports
//   --list-rules         print the rule catalogue and exit
//
// Exit status: 0 clean, 1 findings or stale baseline entries, 2 usage error.

#include <iostream>
#include <string>

#include "engine.hpp"
#include "rules.hpp"

int main(int argc, char** argv) {
  portalint::Options opts;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--no-baseline") {
      opts.use_baseline = false;
    } else if (arg == "--include-fixtures") {
      opts.include_fixtures = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      opts.baseline_path = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& r : portalint::all_rules()) {
        std::cout << r.id << "  [" << r.family << "]  " << r.summary << "\n";
      }
      return 0;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: portalint [--json] [--baseline FILE | --no-baseline] "
                   "[--include-fixtures] [--root DIR] [--list-rules] <path>...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "portalint: unknown option: " << arg << "\n";
      return 2;
    } else {
      opts.inputs.emplace_back(arg);
    }
  }
  if (opts.inputs.empty()) {
    std::cerr << "portalint: no input paths (try --help)\n";
    return 2;
  }

  const portalint::Result r = portalint::run_portalint(opts);
  if (json) {
    portalint::print_json(r, std::cout);
  } else {
    portalint::print_text(r, std::cout);
  }
  return portalint::exit_code(r);
}
