#include "callgraph.hpp"

#include <algorithm>
#include <cctype>

#include "rules.hpp"

namespace portalint {

namespace {

/// Parameter indices of `fn` whose names appear in the token group.
std::set<int> params_in(const FunctionIR& fn, const std::vector<std::string>& tokens) {
  std::set<int> out;
  for (const std::string& tok : tokens) {
    const int pi = fn.param_index(tok);
    if (pi >= 0) out.insert(pi);
  }
  return out;
}

bool has_any_ident(const std::vector<std::string>& tokens) {
  for (const std::string& tok : tokens) {
    if (!tok.empty() && (std::isalpha(static_cast<unsigned char>(tok[0])) || tok[0] == '_')) {
      return true;
    }
  }
  return false;
}

/// Merge `src` into `dst` mapping src's index_params through the call's
/// argument expressions into caller-parameter indices.  Returns true on
/// change (for the fixpoint loop).
bool merge_effect(ParamEffect& dst, const ParamEffect& src, const FunctionIR& caller,
                  const std::vector<std::vector<std::string>>& args) {
  bool changed = false;
  auto set_flag = [&changed](bool& flag) {
    if (!flag) {
      flag = true;
      changed = true;
    }
  };
  if (src.direct_write) set_flag(dst.direct_write);
  if (src.indexed_const) set_flag(dst.indexed_const);
  if (src.indexed_internal) set_flag(dst.indexed_internal);
  if (dst.write_unit == nullptr && src.write_unit != nullptr) {
    dst.write_unit = src.write_unit;
    dst.write_line = src.write_line;
    changed = true;
  }
  for (int qi : src.index_params) {
    if (static_cast<std::size_t>(qi) >= args.size()) continue;
    const auto& arg = args[static_cast<std::size_t>(qi)];
    const std::set<int> mapped = params_in(caller, arg);
    if (!mapped.empty()) {
      for (int m : mapped) {
        if (dst.index_params.insert(m).second) changed = true;
      }
    } else if (has_any_ident(arg)) {
      set_flag(dst.indexed_internal);  // index fed by a caller local
    } else {
      set_flag(dst.indexed_const);  // index fed by a literal
    }
  }
  return changed;
}

}  // namespace

void CallGraph::build(const std::vector<const FileUnit*>& units,
                      const std::vector<const FileIR*>& irs) {
  all_.clear();
  by_name_.clear();

  for (std::size_t i = 0; i < irs.size(); ++i) {
    for (const FunctionIR& fn : irs[i]->functions) {
      FunctionSummary s;
      s.fn = &fn;
      s.unit = units[i];
      s.effects.resize(fn.params.size());
      all_.push_back(std::move(s));
    }
  }
  for (std::size_t i = 0; i < all_.size(); ++i) {
    auto [it, inserted] = by_name_.emplace(all_[i].fn->name, static_cast<int>(i));
    if (!inserted) it->second = -1;  // multiply defined: never resolved
  }

  // Seed direct effects and direct taint.
  for (FunctionSummary& s : all_) {
    const FunctionIR& fn = *s.fn;
    for (const AccessIR& a : fn.accesses) {
      const int pi = fn.param_index(a.base);
      if (pi < 0 || !a.is_store) continue;
      const ParamIR& p = fn.params[static_cast<std::size_t>(pi)];
      if (!p.writable || p.is_atomic) continue;
      ParamEffect& e = s.effects[static_cast<std::size_t>(pi)];
      if (e.write_unit == nullptr) {
        e.write_unit = s.unit;
        e.write_line = a.line;
      }
      if (a.indices.empty()) {
        e.direct_write = true;
        continue;
      }
      std::set<int> feeders;
      bool any_ident = false;
      for (const auto& group : a.indices) {
        for (int q : params_in(fn, group)) feeders.insert(q);
        any_ident = any_ident || has_any_ident(group);
      }
      if (!feeders.empty()) {
        e.index_params.insert(feeders.begin(), feeders.end());
      } else if (any_ident) {
        e.indexed_internal = true;
      } else {
        e.indexed_const = true;
      }
    }
    // The sanctioned rng module seeds no taint: routing randomness
    // through it is the det-* rules' prescribed fix.
    if (!fn.taint_sources.empty() && !scope_rng_exempt(*s.unit)) {
      s.taint = fn.taint_sources;
      s.taint_line = fn.line;
    }
  }

  // Fixpoint: propagate callee effects and taint to callers.  Effects
  // only grow, so this terminates even on recursive call cycles.
  bool changed = true;
  while (changed) {
    changed = false;
    for (FunctionSummary& s : all_) {
      const FunctionIR& fn = *s.fn;
      for (const CallIR& c : fn.calls) {
        const FunctionSummary* g = resolve(c.callee);
        if (g == nullptr || g->fn == s.fn) continue;
        // Taint.
        for (const std::string& kind : g->taint) {
          if (s.taint.insert(kind).second) {
            changed = true;
            if (s.taint_line == 0) {
              s.taint_line = c.line;
              s.taint_via = c.callee;
            }
          }
        }
        // Write effects through argument binding.
        const std::size_t n = std::min(g->effects.size(), c.args.size());
        for (std::size_t ai = 0; ai < n; ++ai) {
          const ParamEffect& ge = g->effects[ai];
          if (!ge.any()) continue;
          for (int p : params_in(fn, c.args[ai])) {
            const ParamIR& pp = fn.params[static_cast<std::size_t>(p)];
            if (!pp.writable || pp.is_atomic) continue;
            if (merge_effect(s.effects[static_cast<std::size_t>(p)], ge, fn, c.args)) {
              changed = true;
            }
          }
        }
      }
    }
  }
}

const FunctionSummary* CallGraph::resolve(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || it->second < 0) return nullptr;
  return &all_[static_cast<std::size_t>(it->second)];
}

}  // namespace portalint
