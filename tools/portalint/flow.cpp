#include "flow.hpp"

namespace portalint {

std::vector<Finding> run_flow(const Project& project, const std::vector<FileIR>& irs) {
  FlowContext ctx;
  ctx.project = &project;
  ctx.irs = &irs;
  std::vector<const FileUnit*> units;
  std::vector<const FileIR*> ir_ptrs;
  units.reserve(project.files.size());
  ir_ptrs.reserve(irs.size());
  for (const FileUnit& u : project.files) units.push_back(&u);
  for (const FileIR& ir : irs) ir_ptrs.push_back(&ir);
  ctx.graph.build(units, ir_ptrs);

  std::vector<Finding> out;
  flow_shared_write_escape(ctx, out);
  flow_unpaired_ordering(ctx, out);
  flow_unproved_bounds(ctx, out);
  flow_det_taint(ctx, out);
  return out;
}

}  // namespace portalint
